// The paper's worked example end-to-end: grades the three Fig. 2
// submissions of Assignment 1 with the knowledge-base specification and
// prints the personalized feedback each student would receive.

#include <cstdio>

#include "core/submission_matcher.h"
#include "kb/assignments.h"

namespace {

constexpr const char* kFigure2a = R"(
void assignment1(int[] a) {
  int even = 0;
  int odd = 0;
  for (int i = 0; i <= a.length; i++) {
    if (i % 2 == 1)
      odd += a[i];
    if (i % 2 == 1)
      even *= a[i];
  }
  System.out.println(odd);
  System.out.println(even);
})";

constexpr const char* kFigure2b = R"(
void assignment1(int[] a) {
  int o = 0, e = 1;
  int i = 0;
  while (i < a.length) {
    if (i % 2 == 1)
      o += a[i];
    if (i % 2 == 0)
      e *= a[i];
    i++;
  }
  System.out.print(o + ", " + e);
})";

constexpr const char* kFigure2c = R"(
void assignment1(int[] a) {
  int x = 0, y = 1;
  for (int i = 0; i < a.length; i++)
    if (i % 2 == 1)
      x *= a[i];
  for (int i = 0; i < a.length; i++)
    if (i % 2 == 0)
      y += a[i];
  System.out.print("O: " + x + ", E: " + y);
})";

void Grade(const jfeed::kb::Assignment& assignment, const char* label,
           const char* source) {
  std::printf("==== %s ====\n", label);
  auto feedback = jfeed::core::MatchSubmissionSource(assignment.spec, source);
  if (!feedback.ok()) {
    std::printf("  could not grade: %s\n",
                feedback.status().ToString().c_str());
    return;
  }
  if (!feedback->matched) {
    std::printf("  submission does not adhere to the specification\n");
    return;
  }
  std::printf("%s", jfeed::core::RenderFeedback(feedback->comments).c_str());
  std::printf("Λ score: %.1f — verdict: %s\n\n", feedback->score,
              feedback->AllCorrect() ? "all correct" : "needs work");
}

}  // namespace

int main() {
  const auto& assignment =
      jfeed::kb::KnowledgeBase::Get().assignment("assignment1");
  std::printf("%s\n%s\n\n", assignment.title.c_str(),
              assignment.description.c_str());
  Grade(assignment, "Fig. 2a (incorrect: bad init, bound, conditions)",
        kFigure2a);
  Grade(assignment, "Fig. 2b (correct)", kFigure2b);
  Grade(assignment, "Fig. 2c (incorrect: swapped accumulators)", kFigure2c);
  return 0;
}
