// The instructor workflow (paper Fig. 1): author a *new* pattern with
// feedback templates, correlate it with a library pattern through
// constraints, assemble an assignment specification, and grade submissions
// with it — everything an instructor needs to support a brand-new
// assignment ("compute the average of the positive elements").

#include <cstdio>

#include "core/pattern.h"
#include "core/submission_matcher.h"
#include "kb/patterns.h"

int main() {
  namespace core = jfeed::core;

  // 1. Author a pattern: "conditionally accumulate only positive values".
  //    Exact templates say what a correct solution looks like; approximate
  //    templates (r̂) catch the common off-by-one comparison.
  auto positive_only =
      core::PatternBuilder("positive-accum",
                           "Accumulate only the positive elements")
          .Var("acc")
          .Var("val")
          // Pattern variables bind *variables* of the submission, so the
          // guarded value is written as an array access val[...] (with the
          // plain-variable form as an alternation).
          .Node(core::PatternNodeType::kCond,
                "val\\[.*\\] > 0|val > 0", "val\\[.*\\] >= 0|val >= 0",
                "you only accept strictly positive values",
                ">= 0 also accepts zero — the assignment asks for "
                "strictly positive elements")
          .Node(core::PatternNodeType::kAssign,
                "acc \\+= val|acc = acc \\+ val", "acc \\+=",
                "{acc} accumulates the accepted value",
                "{acc} should accumulate exactly the accepted value")
          .CtrlEdge(0, 1)
          .Present("You accumulate only the positive elements into {acc}")
          .Missing("Accumulating only the positive elements (guarded by "
                   "value > 0) is missing")
          .Build();
  if (!positive_only.ok()) {
    std::fprintf(stderr, "pattern failed to build: %s\n",
                 positive_only.status().ToString().c_str());
    return 1;
  }

  // 2. Reuse library patterns and correlate them with constraints.
  const core::Pattern& counting =
      jfeed::kb::PatternLibrary::Get().at("counter-loop");
  const core::Pattern& printing =
      jfeed::kb::PatternLibrary::Get().at("assign-print");

  core::MethodSpec method;
  method.expected_name = "averagePositive";
  method.patterns = {{&*positive_only, 1}, {&counting, 2}, {&printing, 2}};
  method.constraints = {core::MakeEdgeConstraint(
      "sum-reaches-print", "positive-accum", 1, "assign-print", 1,
      jfeed::pdg::EdgeType::kData,
      "Your accumulated sum flows into the printed average",
      "The printed average should be computed from the accumulated sum")};

  core::AssignmentSpec spec;
  spec.id = "average-positive";
  spec.title = "Average of the positive elements";
  spec.methods.push_back(std::move(method));

  // 3. Grade two submissions.
  const char* kCorrect = R"(
    void averagePositive(double[] a) {
      double sum = 0.0;
      int count = 0;
      for (int i = 0; i < a.length; i++) {
        if (a[i] > 0) {
          sum += a[i];
          count++;
        }
      }
      System.out.println(sum / count);
    })";
  const char* kOffByOne = R"(
    void averagePositive(double[] a) {
      double sum = 0.0;
      int count = 0;
      for (int i = 0; i < a.length; i++) {
        if (a[i] >= 0) {
          sum += a[i];
          count++;
        }
      }
      System.out.println(sum / count);
    })";

  for (const auto& [label, source] :
       {std::pair{"correct submission", kCorrect},
        std::pair{"off-by-one submission (>= 0)", kOffByOne}}) {
    std::printf("==== %s ====\n", label);
    auto feedback = core::MatchSubmissionSource(spec, source);
    if (!feedback.ok()) {
      std::printf("  %s\n", feedback.status().ToString().c_str());
      continue;
    }
    std::printf("%s\n",
                core::RenderFeedback(feedback->comments).c_str());
  }
  return 0;
}
