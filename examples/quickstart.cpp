// Quickstart: parse a student submission, build its extended program
// dependence graph, match one knowledge-base pattern over it, and print the
// personalized feedback — the minimal end-to-end tour of the public API.

#include <cstdio>

#include "core/pattern_matcher.h"
#include "javalang/parser.h"
#include "kb/patterns.h"
#include "pdg/epdg.h"

int main() {
  namespace java = jfeed::java;
  namespace pdg = jfeed::pdg;
  namespace core = jfeed::core;

  // A student submission: sums the odd positions of an array, but walks one
  // element past the end (i <= a.length).
  const char* kSubmission = R"(
    void sumOdd(int[] a) {
      int total = 0;
      for (int i = 0; i <= a.length; i++)
        if (i % 2 == 1)
          total += a[i];
      System.out.println(total);
    })";

  // 1. Parse.
  auto unit = java::Parse(kSubmission);
  if (!unit.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 unit.status().ToString().c_str());
    return 1;
  }
  std::printf("Parsed method: %s\n\n", unit->methods[0].Signature().c_str());

  // 2. Build the extended program dependence graph (Sec. III-A).
  auto graph = pdg::BuildEpdg(unit->methods[0]);
  if (!graph.ok()) {
    std::fprintf(stderr, "EPDG error: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  std::printf("EPDG: %zu nodes, %zu edges (%zu Ctrl, %zu Data)\n",
              graph->NodeCount(), graph->EdgeCount(),
              graph->CountEdges(pdg::EdgeType::kCtrl),
              graph->CountEdges(pdg::EdgeType::kData));
  for (size_t i = 0; i < graph->NodeCount(); ++i) {
    const pdg::Node node = graph->NodeAt(static_cast<int>(i));
    std::printf("  v%zu [%s] %.*s\n", i, pdg::NodeTypeName(node.type),
                static_cast<int>(node.content.size()), node.content.data());
  }

  // 3. Match the Fig. 4 pattern ("accessing odd positions sequentially").
  const core::Pattern& pattern =
      jfeed::kb::PatternLibrary::Get().at("odd-positions");
  std::vector<core::Embedding> embeddings =
      core::MatchPattern(pattern, *graph);
  std::printf("\nPattern '%s': %zu embedding(s)\n", pattern.id.c_str(),
              embeddings.size());

  // 4. Turn the embedding into personalized feedback.
  for (const core::Embedding& m : embeddings) {
    std::printf("  γ:");
    for (const auto& [pattern_var, submission_var] : m.gamma) {
      std::printf(" %s→%s", pattern_var.c_str(), submission_var.c_str());
    }
    std::printf("\n  %s\n",
                m.IsFullyCorrect()
                    ? core::InstantiateFeedback(pattern.feedback_present,
                                                m.gamma)
                          .c_str()
                    : "The pattern is present, but with mistakes:");
    for (size_t u = 0; u < pattern.nodes.size(); ++u) {
      const core::PatternNode& node = pattern.nodes[u];
      bool incorrect = m.incorrect_nodes.count(static_cast<int>(u)) > 0;
      const std::string& tmpl =
          incorrect ? node.feedback_incorrect : node.feedback_correct;
      if (tmpl.empty()) continue;
      std::printf("    [%s] %s\n", incorrect ? "fix" : "ok",
                  core::InstantiateFeedback(tmpl, m.gamma).c_str());
    }
  }

  // 5. The graph is exportable to GraphViz for inspection.
  std::printf("\nDOT export (render with `dot -Tpng`):\n%s",
              graph->ToDot().c_str());
  return 0;
}
