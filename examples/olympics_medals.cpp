// Reproduces the paper's Fig. 7 discussion: a submission to
// rit-all-g-medals that is *functionally correct* — it passes every test
// because duplicated position conditions still advance the Scanner the
// right number of times — but semantically incorrect. Functional testing
// says "correct"; the pattern/constraint feedback pinpoints the confusion.

#include <cstdio>

#include "core/submission_matcher.h"
#include "javalang/parser.h"
#include "kb/assignments.h"
#include "testing/functional.h"

namespace {

// Fig. 7 (adapted to our record layout): the first-name position
// (i % 5 == 1) is read twice — consuming both name tokens — and both
// medal/year reads happen at i % 5 == 3, yet the token stream stays
// perfectly aligned, so every functional test passes.
constexpr const char* kFigure7 = R"(
void countGoldMedals(int year) {
  int i = 1;
  int medals = 0;
  int p = 0;
  int y = 0;
  String e = "";
  Scanner s = new Scanner(new File("summer_olympics.txt"));
  while (s.hasNext()) {
    if (i % 5 == 1)
      e = s.next();
    if (i % 5 == 1)
      e = s.next();
    if (i % 5 == 3)
      p = s.nextInt();
    if (i % 5 == 3)
      y = s.nextInt();
    if (i % 5 == 0)
      e = s.next();
    if (i % 5 == 0 && y == year && p == 1)
      medals += 1;
    i++;
  }
  s.close();
  System.out.println(medals);
})";

}  // namespace

int main() {
  namespace testing = jfeed::testing;
  namespace java = jfeed::java;

  const auto& assignment =
      jfeed::kb::KnowledgeBase::Get().assignment("rit-all-g-medals");
  std::printf("%s\n\nSubmission (Fig. 7, adapted):\n%s\n\n",
              assignment.title.c_str(), kFigure7);

  auto submission = java::Parse(kFigure7);
  if (!submission.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 submission.status().ToString().c_str());
    return 1;
  }
  auto reference = java::Parse(assignment.Reference());
  auto expected =
      testing::ComputeExpectedOutputs(*reference, assignment.suite);
  if (!expected.ok()) return 1;

  testing::FunctionalVerdict verdict =
      testing::RunSuite(*submission, assignment.suite, *expected);
  std::printf("Functional testing: %d/%d tests passed -> %s\n",
              verdict.tests_run - verdict.tests_failed, verdict.tests_run,
              verdict.passed ? "CORRECT" : "incorrect");
  if (!verdict.passed) {
    std::printf("  first failure: %s\n", verdict.first_failure.c_str());
  }

  auto feedback =
      jfeed::core::MatchSubmission(assignment.spec, *submission);
  if (!feedback.ok()) return 1;
  std::printf("\nPersonalized feedback (semantic view):\n%s",
              jfeed::core::RenderFeedback(feedback->comments).c_str());
  std::printf("\nVerdict: %s — %s\n",
              feedback->AllCorrect() ? "all correct" : "semantic problems",
              verdict.passed && !feedback->AllCorrect()
                  ? "functionally correct but semantically incorrect, "
                    "exactly the class the paper's D column counts"
                  : "functional and semantic verdicts agree");
  return 0;
}
