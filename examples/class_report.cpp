// An instructor-facing report over a whole class: generates a cohort of
// synthetic submissions for an assignment (the paper's evaluation
// methodology), grades all of them, and aggregates which feedback comments
// fire most often — the "what is my class struggling with?" view that
// per-student personalized feedback enables at MOOC scale.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <vector>

#include "core/submission_matcher.h"
#include "javalang/parser.h"
#include "kb/assignments.h"
#include "synth/generator.h"

int main(int argc, char** argv) {
  const char* id = argc > 1 ? argv[1] : "assignment1";
  uint64_t cohort = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 400;

  const auto& assignment = jfeed::kb::KnowledgeBase::Get().assignment(id);
  std::printf("Class report — %s (%s)\n", assignment.id.c_str(),
              assignment.title.c_str());
  std::printf("Cohort: %llu synthetic submissions\n\n",
              static_cast<unsigned long long>(cohort));

  std::map<std::string, int> issue_counts;
  std::map<std::string, std::string> issue_examples;
  int graded = 0;
  int all_correct = 0;
  double total_ms = 0;

  for (uint64_t index : jfeed::synth::SampleIndexes(
           assignment.generator.SpaceSize(), cohort)) {
    std::string source = assignment.generator.Generate(index);
    auto unit = jfeed::java::Parse(source);
    if (!unit.ok()) continue;
    auto start = std::chrono::steady_clock::now();
    auto feedback = jfeed::core::MatchSubmission(assignment.spec, *unit);
    total_ms += std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    if (!feedback.ok() || !feedback->matched) continue;
    ++graded;
    if (feedback->AllCorrect()) {
      ++all_correct;
      continue;
    }
    for (const auto& comment : feedback->comments) {
      if (comment.kind == jfeed::core::FeedbackKind::kCorrect) continue;
      std::string key = comment.source_id;
      ++issue_counts[key];
      if (issue_examples.count(key) == 0) {
        issue_examples[key] =
            std::string("[") + jfeed::core::FeedbackKindName(comment.kind) +
            "] " + comment.message;
      }
    }
  }

  std::printf("Graded %d submissions in %.0f ms total (%.2f ms each); "
              "%d (%.1f%%) fully correct.\n\n",
              graded, total_ms, total_ms / std::max(graded, 1), all_correct,
              100.0 * all_correct / std::max(graded, 1));

  std::vector<std::pair<int, std::string>> ranked;
  for (const auto& [key, count] : issue_counts) {
    ranked.emplace_back(count, key);
  }
  std::sort(ranked.rbegin(), ranked.rend());
  std::printf("Most common problems (pattern/constraint, share of cohort):\n");
  for (size_t i = 0; i < ranked.size() && i < 10; ++i) {
    std::printf("  %5.1f%%  %-32s %s\n",
                100.0 * ranked[i].first / std::max(graded, 1),
                ranked[i].second.c_str(),
                issue_examples[ranked[i].second].c_str());
  }
  return 0;
}
