// Demonstrates the Sec. VII extension implemented in this library: pattern
// *variations*. The paper's Assignment 1 discussion reports three
// discrepancies caused by submissions that access even positions "updating
// twice the value of i, which is a different way of accessing even
// positions not currently allowed by our patterns. ... we intend to deal
// with pattern variability as future work." This example grades the same
// submission with the base specification (negative feedback, the paper's
// behaviour) and with variations attached (accepted).

#include <cstdio>

#include "core/submission_matcher.h"
#include "kb/assignments.h"
#include "kb/extensions.h"

namespace {

constexpr const char* kStepByTwo = R"(
void assignment1(int[] a) {
  int o = 0;
  int e = 1;
  for (int i = 1; i < a.length; i += 2)
    o += a[i];
  for (int j = 0; j < a.length; j += 2)
    e *= a[j];
  System.out.println(o);
  System.out.println(e);
})";

void Grade(const jfeed::core::AssignmentSpec& spec, const char* label) {
  std::printf("==== %s ====\n", label);
  auto feedback = jfeed::core::MatchSubmissionSource(spec, kStepByTwo);
  if (!feedback.ok()) {
    std::printf("  %s\n", feedback.status().ToString().c_str());
    return;
  }
  std::printf("%s", jfeed::core::RenderFeedback(feedback->comments).c_str());
  std::printf("verdict: %s\n\n",
              feedback->AllCorrect() ? "all correct" : "negative feedback");
}

}  // namespace

int main() {
  std::printf("Submission (accesses every second position by i += 2):\n%s\n\n",
              kStepByTwo);

  const auto& assignment =
      jfeed::kb::KnowledgeBase::Get().assignment("assignment1");
  Grade(assignment.spec, "base specification (paper behaviour)");

  jfeed::core::AssignmentSpec with_variations = assignment.spec;
  jfeed::kb::ExtensionLibrary::Get().AttachAssignment1Variations(
      &with_variations);
  Grade(with_variations, "with pattern variations (Sec. VII extension)");
  return 0;
}
