// Explores the synthetic-submission search space of an assignment: the
// paper's evaluation methodology made concrete. Prints the error model, a
// few generated submissions with their functional verdict and feedback
// verdict, and the agreement statistics over a sample.

#include <cstdio>
#include <cstring>

#include "core/submission_matcher.h"
#include "javalang/parser.h"
#include "kb/assignments.h"
#include "synth/generator.h"
#include "testing/functional.h"

int main(int argc, char** argv) {
  namespace testing = jfeed::testing;
  namespace java = jfeed::java;

  const char* id = argc > 1 ? argv[1] : "esc-LAB-3-P1-V1";
  const auto& kb = jfeed::kb::KnowledgeBase::Get();
  const auto& assignment = kb.assignment(id);

  std::printf("%s — %s\n\n", assignment.id.c_str(),
              assignment.title.c_str());
  std::printf("Error model (%zu sites, search space %llu):\n",
              assignment.generator.sites().size(),
              static_cast<unsigned long long>(
                  assignment.generator.SpaceSize()));
  for (const auto& site : assignment.generator.sites()) {
    std::printf("  %-12s:", site.name.c_str());
    for (size_t v = 0; v < site.variants.size(); ++v) {
      std::printf(" %s[%s]", v == 0 ? "*" : "",
                  site.variants[v].empty() ? "<empty>"
                                           : site.variants[v].c_str());
    }
    std::printf("\n");
  }

  auto reference = java::Parse(assignment.Reference());
  auto expected =
      testing::ComputeExpectedOutputs(*reference, assignment.suite);
  if (!expected.ok()) {
    std::fprintf(stderr, "reference broken: %s\n",
                 expected.status().ToString().c_str());
    return 1;
  }

  std::printf("\nSampling 500 submissions...\n");
  int func_pass = 0, feedback_pos = 0, agree = 0, shown = 0, total = 0;
  for (uint64_t index :
       jfeed::synth::SampleIndexes(assignment.generator.SpaceSize(), 500)) {
    std::string source = assignment.generator.Generate(index);
    auto unit = java::Parse(source);
    if (!unit.ok()) continue;
    ++total;
    bool passed =
        testing::RunSuite(*unit, assignment.suite, *expected).passed;
    auto feedback = jfeed::core::MatchSubmission(assignment.spec, *unit);
    bool positive = feedback.ok() && feedback->AllCorrect();
    func_pass += passed;
    feedback_pos += positive;
    agree += passed == positive;
    if (passed != positive && shown < 3) {
      ++shown;
      std::printf(
          "\n--- disagreement at index %llu (errors injected: %d) ---\n"
          "functional: %s, feedback: %s\n%s",
          static_cast<unsigned long long>(index),
          assignment.generator.ErrorCount(index),
          passed ? "PASS" : "fail", positive ? "positive" : "negative",
          source.c_str());
    }
  }
  std::printf(
      "\nOut of %d submissions: %d pass functional tests, %d get "
      "all-positive feedback,\n%d agree (%.1f%%) — the disagreements are "
      "Table I's column D.\n",
      total, func_pass, feedback_pos, agree, 100.0 * agree / total);
  return 0;
}
