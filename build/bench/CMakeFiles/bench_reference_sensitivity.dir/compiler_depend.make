# Empty compiler generated dependencies file for bench_reference_sensitivity.
# This may be replaced when dependencies are built.
