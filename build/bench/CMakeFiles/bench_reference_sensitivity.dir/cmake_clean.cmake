file(REMOVE_RECURSE
  "CMakeFiles/bench_reference_sensitivity.dir/bench_reference_sensitivity.cc.o"
  "CMakeFiles/bench_reference_sensitivity.dir/bench_reference_sensitivity.cc.o.d"
  "bench_reference_sensitivity"
  "bench_reference_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reference_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
