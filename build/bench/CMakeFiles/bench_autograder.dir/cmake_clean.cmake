file(REMOVE_RECURSE
  "CMakeFiles/bench_autograder.dir/bench_autograder.cc.o"
  "CMakeFiles/bench_autograder.dir/bench_autograder.cc.o.d"
  "bench_autograder"
  "bench_autograder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_autograder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
