# Empty compiler generated dependencies file for bench_autograder.
# This may be replaced when dependencies are built.
