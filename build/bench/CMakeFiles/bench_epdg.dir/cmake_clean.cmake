file(REMOVE_RECURSE
  "CMakeFiles/bench_epdg.dir/bench_epdg.cc.o"
  "CMakeFiles/bench_epdg.dir/bench_epdg.cc.o.d"
  "bench_epdg"
  "bench_epdg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_epdg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
