# Empty dependencies file for bench_epdg.
# This may be replaced when dependencies are built.
