file(REMOVE_RECURSE
  "CMakeFiles/bench_clara.dir/bench_clara.cc.o"
  "CMakeFiles/bench_clara.dir/bench_clara.cc.o.d"
  "bench_clara"
  "bench_clara.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_clara.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
