# Empty dependencies file for bench_clara.
# This may be replaced when dependencies are built.
