file(REMOVE_RECURSE
  "CMakeFiles/grade.dir/grade.cc.o"
  "CMakeFiles/grade.dir/grade.cc.o.d"
  "grade"
  "grade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
