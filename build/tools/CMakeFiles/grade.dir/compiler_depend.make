# Empty compiler generated dependencies file for grade.
# This may be replaced when dependencies are built.
