# Empty compiler generated dependencies file for export_kb.
# This may be replaced when dependencies are built.
