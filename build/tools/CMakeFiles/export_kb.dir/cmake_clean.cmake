file(REMOVE_RECURSE
  "CMakeFiles/export_kb.dir/export_kb.cc.o"
  "CMakeFiles/export_kb.dir/export_kb.cc.o.d"
  "export_kb"
  "export_kb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_kb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
