file(REMOVE_RECURSE
  "CMakeFiles/pdg_test.dir/pdg/epdg_builder_test.cc.o"
  "CMakeFiles/pdg_test.dir/pdg/epdg_builder_test.cc.o.d"
  "CMakeFiles/pdg_test.dir/pdg/epdg_property_test.cc.o"
  "CMakeFiles/pdg_test.dir/pdg/epdg_property_test.cc.o.d"
  "CMakeFiles/pdg_test.dir/pdg/worked_example_test.cc.o"
  "CMakeFiles/pdg_test.dir/pdg/worked_example_test.cc.o.d"
  "pdg_test"
  "pdg_test.pdb"
  "pdg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
