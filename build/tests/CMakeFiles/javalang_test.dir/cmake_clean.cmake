file(REMOVE_RECURSE
  "CMakeFiles/javalang_test.dir/javalang/analysis_test.cc.o"
  "CMakeFiles/javalang_test.dir/javalang/analysis_test.cc.o.d"
  "CMakeFiles/javalang_test.dir/javalang/lexer_test.cc.o"
  "CMakeFiles/javalang_test.dir/javalang/lexer_test.cc.o.d"
  "CMakeFiles/javalang_test.dir/javalang/parser_test.cc.o"
  "CMakeFiles/javalang_test.dir/javalang/parser_test.cc.o.d"
  "CMakeFiles/javalang_test.dir/javalang/printer_test.cc.o"
  "CMakeFiles/javalang_test.dir/javalang/printer_test.cc.o.d"
  "CMakeFiles/javalang_test.dir/javalang/switch_test.cc.o"
  "CMakeFiles/javalang_test.dir/javalang/switch_test.cc.o.d"
  "javalang_test"
  "javalang_test.pdb"
  "javalang_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/javalang_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
