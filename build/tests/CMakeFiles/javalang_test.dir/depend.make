# Empty dependencies file for javalang_test.
# This may be replaced when dependencies are built.
