
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/ast_matcher_test.cc" "tests/CMakeFiles/core_test.dir/core/ast_matcher_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/ast_matcher_test.cc.o.d"
  "/root/repo/tests/core/ast_pattern_test.cc" "tests/CMakeFiles/core_test.dir/core/ast_pattern_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/ast_pattern_test.cc.o.d"
  "/root/repo/tests/core/constraint_test.cc" "tests/CMakeFiles/core_test.dir/core/constraint_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/constraint_test.cc.o.d"
  "/root/repo/tests/core/expr_pattern_test.cc" "tests/CMakeFiles/core_test.dir/core/expr_pattern_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/expr_pattern_test.cc.o.d"
  "/root/repo/tests/core/pattern_matcher_test.cc" "tests/CMakeFiles/core_test.dir/core/pattern_matcher_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/pattern_matcher_test.cc.o.d"
  "/root/repo/tests/core/pattern_test.cc" "tests/CMakeFiles/core_test.dir/core/pattern_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/pattern_test.cc.o.d"
  "/root/repo/tests/core/submission_matcher_test.cc" "tests/CMakeFiles/core_test.dir/core/submission_matcher_test.cc.o" "gcc" "tests/CMakeFiles/core_test.dir/core/submission_matcher_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/jfeed_support.dir/DependInfo.cmake"
  "/root/repo/build/src/javalang/CMakeFiles/jfeed_javalang.dir/DependInfo.cmake"
  "/root/repo/build/src/pdg/CMakeFiles/jfeed_pdg.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/jfeed_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
