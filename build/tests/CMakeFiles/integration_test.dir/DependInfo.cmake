
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/end_to_end_test.cc" "tests/CMakeFiles/integration_test.dir/integration/end_to_end_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/end_to_end_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/jfeed_support.dir/DependInfo.cmake"
  "/root/repo/build/src/javalang/CMakeFiles/jfeed_javalang.dir/DependInfo.cmake"
  "/root/repo/build/src/pdg/CMakeFiles/jfeed_pdg.dir/DependInfo.cmake"
  "/root/repo/build/src/kb/CMakeFiles/jfeed_kb.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/jfeed_core.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/jfeed_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/jfeed_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/testing/CMakeFiles/jfeed_testing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
