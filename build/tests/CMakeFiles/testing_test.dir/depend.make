# Empty dependencies file for testing_test.
# This may be replaced when dependencies are built.
