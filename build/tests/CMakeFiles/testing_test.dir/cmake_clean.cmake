file(REMOVE_RECURSE
  "CMakeFiles/testing_test.dir/testing/functional_test.cc.o"
  "CMakeFiles/testing_test.dir/testing/functional_test.cc.o.d"
  "testing_test"
  "testing_test.pdb"
  "testing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/testing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
