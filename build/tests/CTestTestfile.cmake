# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/javalang_test[1]_include.cmake")
include("/root/repo/build/tests/interp_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/pdg_test[1]_include.cmake")
include("/root/repo/build/tests/kb_test[1]_include.cmake")
include("/root/repo/build/tests/synth_test[1]_include.cmake")
include("/root/repo/build/tests/testing_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
