# Empty compiler generated dependencies file for jfeed_javalang.
# This may be replaced when dependencies are built.
