
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/javalang/analysis.cc" "src/javalang/CMakeFiles/jfeed_javalang.dir/analysis.cc.o" "gcc" "src/javalang/CMakeFiles/jfeed_javalang.dir/analysis.cc.o.d"
  "/root/repo/src/javalang/ast.cc" "src/javalang/CMakeFiles/jfeed_javalang.dir/ast.cc.o" "gcc" "src/javalang/CMakeFiles/jfeed_javalang.dir/ast.cc.o.d"
  "/root/repo/src/javalang/lexer.cc" "src/javalang/CMakeFiles/jfeed_javalang.dir/lexer.cc.o" "gcc" "src/javalang/CMakeFiles/jfeed_javalang.dir/lexer.cc.o.d"
  "/root/repo/src/javalang/parser.cc" "src/javalang/CMakeFiles/jfeed_javalang.dir/parser.cc.o" "gcc" "src/javalang/CMakeFiles/jfeed_javalang.dir/parser.cc.o.d"
  "/root/repo/src/javalang/printer.cc" "src/javalang/CMakeFiles/jfeed_javalang.dir/printer.cc.o" "gcc" "src/javalang/CMakeFiles/jfeed_javalang.dir/printer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/jfeed_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
