file(REMOVE_RECURSE
  "libjfeed_javalang.a"
)
