file(REMOVE_RECURSE
  "CMakeFiles/jfeed_javalang.dir/analysis.cc.o"
  "CMakeFiles/jfeed_javalang.dir/analysis.cc.o.d"
  "CMakeFiles/jfeed_javalang.dir/ast.cc.o"
  "CMakeFiles/jfeed_javalang.dir/ast.cc.o.d"
  "CMakeFiles/jfeed_javalang.dir/lexer.cc.o"
  "CMakeFiles/jfeed_javalang.dir/lexer.cc.o.d"
  "CMakeFiles/jfeed_javalang.dir/parser.cc.o"
  "CMakeFiles/jfeed_javalang.dir/parser.cc.o.d"
  "CMakeFiles/jfeed_javalang.dir/printer.cc.o"
  "CMakeFiles/jfeed_javalang.dir/printer.cc.o.d"
  "libjfeed_javalang.a"
  "libjfeed_javalang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jfeed_javalang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
