file(REMOVE_RECURSE
  "libjfeed_kb.a"
)
