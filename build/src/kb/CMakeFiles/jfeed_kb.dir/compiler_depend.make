# Empty compiler generated dependencies file for jfeed_kb.
# This may be replaced when dependencies are built.
