file(REMOVE_RECURSE
  "CMakeFiles/jfeed_kb.dir/assignments.cc.o"
  "CMakeFiles/jfeed_kb.dir/assignments.cc.o.d"
  "CMakeFiles/jfeed_kb.dir/extensions.cc.o"
  "CMakeFiles/jfeed_kb.dir/extensions.cc.o.d"
  "CMakeFiles/jfeed_kb.dir/patterns.cc.o"
  "CMakeFiles/jfeed_kb.dir/patterns.cc.o.d"
  "CMakeFiles/jfeed_kb.dir/serialization.cc.o"
  "CMakeFiles/jfeed_kb.dir/serialization.cc.o.d"
  "libjfeed_kb.a"
  "libjfeed_kb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jfeed_kb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
