# Empty dependencies file for jfeed_interp.
# This may be replaced when dependencies are built.
