file(REMOVE_RECURSE
  "libjfeed_interp.a"
)
