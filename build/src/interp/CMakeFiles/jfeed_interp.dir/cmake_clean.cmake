file(REMOVE_RECURSE
  "CMakeFiles/jfeed_interp.dir/interpreter.cc.o"
  "CMakeFiles/jfeed_interp.dir/interpreter.cc.o.d"
  "CMakeFiles/jfeed_interp.dir/value.cc.o"
  "CMakeFiles/jfeed_interp.dir/value.cc.o.d"
  "libjfeed_interp.a"
  "libjfeed_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jfeed_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
