file(REMOVE_RECURSE
  "CMakeFiles/jfeed_synth.dir/generator.cc.o"
  "CMakeFiles/jfeed_synth.dir/generator.cc.o.d"
  "libjfeed_synth.a"
  "libjfeed_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jfeed_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
