# Empty compiler generated dependencies file for jfeed_synth.
# This may be replaced when dependencies are built.
