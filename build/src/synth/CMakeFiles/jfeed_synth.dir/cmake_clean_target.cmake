file(REMOVE_RECURSE
  "libjfeed_synth.a"
)
