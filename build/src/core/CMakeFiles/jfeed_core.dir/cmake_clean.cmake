file(REMOVE_RECURSE
  "CMakeFiles/jfeed_core.dir/ast_matcher.cc.o"
  "CMakeFiles/jfeed_core.dir/ast_matcher.cc.o.d"
  "CMakeFiles/jfeed_core.dir/constraint.cc.o"
  "CMakeFiles/jfeed_core.dir/constraint.cc.o.d"
  "CMakeFiles/jfeed_core.dir/expr_pattern.cc.o"
  "CMakeFiles/jfeed_core.dir/expr_pattern.cc.o.d"
  "CMakeFiles/jfeed_core.dir/feedback.cc.o"
  "CMakeFiles/jfeed_core.dir/feedback.cc.o.d"
  "CMakeFiles/jfeed_core.dir/pattern.cc.o"
  "CMakeFiles/jfeed_core.dir/pattern.cc.o.d"
  "CMakeFiles/jfeed_core.dir/pattern_matcher.cc.o"
  "CMakeFiles/jfeed_core.dir/pattern_matcher.cc.o.d"
  "CMakeFiles/jfeed_core.dir/submission_matcher.cc.o"
  "CMakeFiles/jfeed_core.dir/submission_matcher.cc.o.d"
  "libjfeed_core.a"
  "libjfeed_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jfeed_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
