# Empty compiler generated dependencies file for jfeed_core.
# This may be replaced when dependencies are built.
