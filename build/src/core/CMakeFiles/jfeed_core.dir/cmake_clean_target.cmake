file(REMOVE_RECURSE
  "libjfeed_core.a"
)
