
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ast_matcher.cc" "src/core/CMakeFiles/jfeed_core.dir/ast_matcher.cc.o" "gcc" "src/core/CMakeFiles/jfeed_core.dir/ast_matcher.cc.o.d"
  "/root/repo/src/core/constraint.cc" "src/core/CMakeFiles/jfeed_core.dir/constraint.cc.o" "gcc" "src/core/CMakeFiles/jfeed_core.dir/constraint.cc.o.d"
  "/root/repo/src/core/expr_pattern.cc" "src/core/CMakeFiles/jfeed_core.dir/expr_pattern.cc.o" "gcc" "src/core/CMakeFiles/jfeed_core.dir/expr_pattern.cc.o.d"
  "/root/repo/src/core/feedback.cc" "src/core/CMakeFiles/jfeed_core.dir/feedback.cc.o" "gcc" "src/core/CMakeFiles/jfeed_core.dir/feedback.cc.o.d"
  "/root/repo/src/core/pattern.cc" "src/core/CMakeFiles/jfeed_core.dir/pattern.cc.o" "gcc" "src/core/CMakeFiles/jfeed_core.dir/pattern.cc.o.d"
  "/root/repo/src/core/pattern_matcher.cc" "src/core/CMakeFiles/jfeed_core.dir/pattern_matcher.cc.o" "gcc" "src/core/CMakeFiles/jfeed_core.dir/pattern_matcher.cc.o.d"
  "/root/repo/src/core/submission_matcher.cc" "src/core/CMakeFiles/jfeed_core.dir/submission_matcher.cc.o" "gcc" "src/core/CMakeFiles/jfeed_core.dir/submission_matcher.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pdg/CMakeFiles/jfeed_pdg.dir/DependInfo.cmake"
  "/root/repo/build/src/javalang/CMakeFiles/jfeed_javalang.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/jfeed_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
