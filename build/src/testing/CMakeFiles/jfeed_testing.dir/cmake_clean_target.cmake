file(REMOVE_RECURSE
  "libjfeed_testing.a"
)
