# Empty compiler generated dependencies file for jfeed_testing.
# This may be replaced when dependencies are built.
