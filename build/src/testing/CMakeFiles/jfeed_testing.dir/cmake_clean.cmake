file(REMOVE_RECURSE
  "CMakeFiles/jfeed_testing.dir/functional.cc.o"
  "CMakeFiles/jfeed_testing.dir/functional.cc.o.d"
  "libjfeed_testing.a"
  "libjfeed_testing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jfeed_testing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
