file(REMOVE_RECURSE
  "libjfeed_support.a"
)
