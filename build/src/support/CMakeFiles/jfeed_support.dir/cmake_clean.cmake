file(REMOVE_RECURSE
  "CMakeFiles/jfeed_support.dir/status.cc.o"
  "CMakeFiles/jfeed_support.dir/status.cc.o.d"
  "CMakeFiles/jfeed_support.dir/strings.cc.o"
  "CMakeFiles/jfeed_support.dir/strings.cc.o.d"
  "libjfeed_support.a"
  "libjfeed_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jfeed_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
