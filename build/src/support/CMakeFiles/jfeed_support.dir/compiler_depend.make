# Empty compiler generated dependencies file for jfeed_support.
# This may be replaced when dependencies are built.
