# Empty dependencies file for jfeed_pdg.
# This may be replaced when dependencies are built.
