file(REMOVE_RECURSE
  "libjfeed_pdg.a"
)
