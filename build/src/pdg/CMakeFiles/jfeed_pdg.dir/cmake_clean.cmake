file(REMOVE_RECURSE
  "CMakeFiles/jfeed_pdg.dir/epdg.cc.o"
  "CMakeFiles/jfeed_pdg.dir/epdg.cc.o.d"
  "libjfeed_pdg.a"
  "libjfeed_pdg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jfeed_pdg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
