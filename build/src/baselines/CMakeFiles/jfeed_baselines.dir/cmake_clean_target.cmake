file(REMOVE_RECURSE
  "libjfeed_baselines.a"
)
