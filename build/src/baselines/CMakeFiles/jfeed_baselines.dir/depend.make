# Empty dependencies file for jfeed_baselines.
# This may be replaced when dependencies are built.
