file(REMOVE_RECURSE
  "CMakeFiles/jfeed_baselines.dir/autograder_lite.cc.o"
  "CMakeFiles/jfeed_baselines.dir/autograder_lite.cc.o.d"
  "CMakeFiles/jfeed_baselines.dir/clara_lite.cc.o"
  "CMakeFiles/jfeed_baselines.dir/clara_lite.cc.o.d"
  "libjfeed_baselines.a"
  "libjfeed_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jfeed_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
