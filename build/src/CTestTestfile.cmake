# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("javalang")
subdirs("interp")
subdirs("graph")
subdirs("pdg")
subdirs("core")
subdirs("kb")
subdirs("synth")
subdirs("testing")
subdirs("baselines")
