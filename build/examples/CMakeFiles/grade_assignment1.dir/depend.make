# Empty dependencies file for grade_assignment1.
# This may be replaced when dependencies are built.
