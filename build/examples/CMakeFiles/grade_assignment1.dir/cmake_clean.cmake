file(REMOVE_RECURSE
  "CMakeFiles/grade_assignment1.dir/grade_assignment1.cpp.o"
  "CMakeFiles/grade_assignment1.dir/grade_assignment1.cpp.o.d"
  "grade_assignment1"
  "grade_assignment1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grade_assignment1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
