# Empty dependencies file for pattern_variations.
# This may be replaced when dependencies are built.
