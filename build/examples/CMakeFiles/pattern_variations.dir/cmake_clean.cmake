file(REMOVE_RECURSE
  "CMakeFiles/pattern_variations.dir/pattern_variations.cpp.o"
  "CMakeFiles/pattern_variations.dir/pattern_variations.cpp.o.d"
  "pattern_variations"
  "pattern_variations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pattern_variations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
