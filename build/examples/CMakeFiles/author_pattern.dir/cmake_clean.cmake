file(REMOVE_RECURSE
  "CMakeFiles/author_pattern.dir/author_pattern.cpp.o"
  "CMakeFiles/author_pattern.dir/author_pattern.cpp.o.d"
  "author_pattern"
  "author_pattern.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/author_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
