# Empty compiler generated dependencies file for author_pattern.
# This may be replaced when dependencies are built.
