# Empty dependencies file for synth_explorer.
# This may be replaced when dependencies are built.
