file(REMOVE_RECURSE
  "CMakeFiles/synth_explorer.dir/synth_explorer.cpp.o"
  "CMakeFiles/synth_explorer.dir/synth_explorer.cpp.o.d"
  "synth_explorer"
  "synth_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synth_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
