# Empty compiler generated dependencies file for class_report.
# This may be replaced when dependencies are built.
