file(REMOVE_RECURSE
  "CMakeFiles/class_report.dir/class_report.cpp.o"
  "CMakeFiles/class_report.dir/class_report.cpp.o.d"
  "class_report"
  "class_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/class_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
