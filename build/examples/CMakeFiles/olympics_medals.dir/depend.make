# Empty dependencies file for olympics_medals.
# This may be replaced when dependencies are built.
