file(REMOVE_RECURSE
  "CMakeFiles/olympics_medals.dir/olympics_medals.cpp.o"
  "CMakeFiles/olympics_medals.dir/olympics_medals.cpp.o.d"
  "olympics_medals"
  "olympics_medals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olympics_medals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
