#include "fleet/scrape.h"

#include <string>

#include "gtest/gtest.h"

namespace jfeed::fleet {
namespace {

TEST(MergeWorkerMetricsTest, InjectsWorkerLabelIntoUnlabelledSamples) {
  std::string merged = MergeWorkerMetrics({
      {"0", "# HELP jfeed_up Up.\n# TYPE jfeed_up gauge\njfeed_up 1\n"},
      {"1", "# HELP jfeed_up Up.\n# TYPE jfeed_up gauge\njfeed_up 1\n"},
  });
  EXPECT_NE(merged.find("jfeed_up{worker=\"0\"} 1"), std::string::npos)
      << merged;
  EXPECT_NE(merged.find("jfeed_up{worker=\"1\"} 1"), std::string::npos)
      << merged;
}

TEST(MergeWorkerMetricsTest, WorkerLabelPrependsExistingLabels) {
  std::string merged = MergeWorkerMetrics({
      {"2", "jfeed_jobs_total{stage=\"parse\"} 7\n"},
  });
  EXPECT_NE(
      merged.find("jfeed_jobs_total{worker=\"2\",stage=\"parse\"} 7"),
      std::string::npos)
      << merged;
}

TEST(MergeWorkerMetricsTest, AssignmentLabeledFamiliesMergeAcrossWorkers) {
  // Multi-tenant workers expose both an unlabeled aggregate and
  // assignment-labeled samples in the same family (DESIGN.md §6). The
  // merge must keep both, with the worker label prepended so per-worker
  // per-assignment series stay distinguishable fleet-wide.
  const std::string dump =
      "# HELP jfeed_shed_total Admission sheds.\n"
      "# TYPE jfeed_shed_total counter\n"
      "jfeed_shed_total 3\n"
      "jfeed_shed_total{assignment=\"assignment1\"} 2\n"
      "jfeed_shed_total{assignment=\"mitx-polynomials\"} 1\n";
  std::string merged = MergeWorkerMetrics({{"0", dump}, {"1", dump}});
  EXPECT_NE(merged.find("jfeed_shed_total{worker=\"0\"} 3"),
            std::string::npos)
      << merged;
  EXPECT_NE(merged.find(
                "jfeed_shed_total{worker=\"0\",assignment=\"assignment1\"} 2"),
            std::string::npos)
      << merged;
  EXPECT_NE(merged.find("jfeed_shed_total{worker=\"1\",assignment="
                        "\"mitx-polynomials\"} 1"),
            std::string::npos)
      << merged;
}

TEST(MergeWorkerMetricsTest, FamiliesStayContiguousUnderOneCommentBlock) {
  // Two workers each emit two families; naive concatenation would repeat
  // the # HELP blocks and interleave families. The merge must group all of
  // family a, then all of family b, with exactly one comment block each.
  std::string worker_dump =
      "# HELP a A.\n# TYPE a counter\na 1\n"
      "# HELP b B.\n# TYPE b counter\nb 2\n";
  std::string merged =
      MergeWorkerMetrics({{"0", worker_dump}, {"1", worker_dump}});
  EXPECT_EQ(merged,
            "# HELP a A.\n# TYPE a counter\n"
            "a{worker=\"0\"} 1\na{worker=\"1\"} 1\n"
            "# HELP b B.\n# TYPE b counter\n"
            "b{worker=\"0\"} 2\nb{worker=\"1\"} 2\n");
}

TEST(MergeWorkerMetricsTest, HistogramSeriesStayWithTheirFamily) {
  std::string dump =
      "# HELP lat Latency.\n# TYPE lat histogram\n"
      "lat_bucket{le=\"1\"} 3\nlat_sum 9\nlat_count 3\n";
  std::string merged = MergeWorkerMetrics({{"0", dump}, {"1", dump}});
  // _bucket/_sum/_count of both workers group under the single lat block.
  size_t help = merged.find("# HELP lat");
  ASSERT_NE(help, std::string::npos);
  EXPECT_EQ(merged.find("# HELP lat", help + 1), std::string::npos) << merged;
  EXPECT_NE(merged.find("lat_bucket{worker=\"0\",le=\"1\"} 3"),
            std::string::npos)
      << merged;
  EXPECT_NE(merged.find("lat_count{worker=\"1\"} 3"), std::string::npos)
      << merged;
}

TEST(MergeWorkerMetricsTest, TolerantOfGarbageAndEmptyInput) {
  EXPECT_EQ(MergeWorkerMetrics({}), "");
  // Lines without a value or name are dropped, not corrupted.
  std::string merged = MergeWorkerMetrics({{"0", "justonename\n\n ok 1\n"}});
  EXPECT_EQ(merged.find("justonename"), std::string::npos);
}

TEST(StitchChromeTracesTest, SplicesEventsFromEveryExportIntoOneArray) {
  // Two Tracer::ExportChromeJson-shaped documents, one per process; the
  // stitch must yield a single well-formed trace with both processes'
  // events (and their metadata records) side by side.
  std::string broker =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
      "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\","
      "\"args\":{\"name\":\"jfeed-broker\"}},\n"
      "{\"ph\":\"X\",\"pid\":0,\"tid\":1,\"name\":\"fleet.route\","
      "\"ts\":100.000,\"dur\":5.000}\n"
      "]}\n";
  std::string worker =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
      "{\"ph\":\"M\",\"pid\":2,\"tid\":0,\"name\":\"process_name\","
      "\"args\":{\"name\":\"jfeedd-worker-1\"}},\n"
      "{\"ph\":\"X\",\"pid\":2,\"tid\":4,\"name\":\"daemon.grade\","
      "\"ts\":101.000,\"dur\":3.000}\n"
      "]}\n";
  std::string stitched = StitchChromeTraces({broker, worker});

  // Exactly one traceEvents array remains...
  size_t array_pos = stitched.find("\"traceEvents\":[");
  ASSERT_NE(array_pos, std::string::npos);
  EXPECT_EQ(stitched.find("\"traceEvents\":[", array_pos + 1),
            std::string::npos);
  // ...holding both processes' names and spans.
  EXPECT_NE(stitched.find("jfeed-broker"), std::string::npos) << stitched;
  EXPECT_NE(stitched.find("jfeedd-worker-1"), std::string::npos) << stitched;
  EXPECT_NE(stitched.find("\"fleet.route\""), std::string::npos);
  EXPECT_NE(stitched.find("\"daemon.grade\""), std::string::npos);
  // The splice point gets a comma, keeping the array parseable.
  EXPECT_NE(stitched.find("\"dur\":5.000}\n,\n{\"ph\":\"M\",\"pid\":2"),
            std::string::npos)
      << stitched;
}

TEST(StitchChromeTracesTest, SkipsGarbageAndEmptyExports) {
  std::string good =
      "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
      "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"name\":\"s\",\"ts\":1.000,"
      "\"dur\":1.000}\n"
      "]}\n";
  // A worker mid-restart answers garbage or an empty ring; the fleet trace
  // must still come out parseable with the healthy workers' events.
  std::string empty = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n]}\n";
  std::string stitched =
      StitchChromeTraces({"<html>503</html>", empty, good, ""});
  EXPECT_NE(stitched.find("\"name\":\"s\""), std::string::npos) << stitched;
  EXPECT_EQ(stitched.find("html"), std::string::npos);
  // No dangling comma from the skipped exports.
  EXPECT_EQ(stitched.find("[,"), std::string::npos) << stitched;
  EXPECT_EQ(stitched.find(",,"), std::string::npos) << stitched;

  // All-garbage input still renders an empty-but-valid trace document.
  std::string none = StitchChromeTraces({"nope", ""});
  EXPECT_NE(none.find("\"traceEvents\":["), std::string::npos);
}

}  // namespace
}  // namespace jfeed::fleet
