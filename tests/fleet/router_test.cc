#include "fleet/router.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.h"

namespace jfeed::fleet {
namespace {

#ifndef JFEED_OBS_DISABLED

/// A scriptable in-process stand-in for one jfeedd worker: /healthz and
/// /grade behaviour are switchable at runtime, so one test can walk a
/// worker through healthy -> failing -> recovered without real processes.
class FakeWorker {
 public:
  FakeWorker() {
    server_.Handle("/healthz", [this](const obs::HttpRequest&) {
      obs::HttpResponse response;
      response.status = healthz_status_.load();
      response.body = "{}";
      return response;
    });
    server_.Handle("/grade", [this](const obs::HttpRequest& request) {
      grade_calls_.fetch_add(1);
      obs::HttpResponse response;
      response.status = grade_status_.load();
      std::lock_guard<std::mutex> lock(mutex_);
      response.body = grade_body_.empty()
                          ? "worker:" + name_ + ":" + request.body
                          : grade_body_;
      for (const auto& header : grade_headers_) response.headers.push_back(header);
      return response;
    });
  }

  void Start(const std::string& name) {
    name_ = name;
    ASSERT_TRUE(server_.Start().ok());
  }
  void Stop() { server_.Stop(); }
  uint16_t port() const { return server_.port(); }

  void set_healthz_status(int status) { healthz_status_.store(status); }
  void set_grade_status(int status) { grade_status_.store(status); }
  /// Scripted /grade response body ("" = echo the request) and extra headers.
  void set_grade_body(std::string body) {
    std::lock_guard<std::mutex> lock(mutex_);
    grade_body_ = std::move(body);
  }
  void add_grade_header(std::string name, std::string value) {
    std::lock_guard<std::mutex> lock(mutex_);
    grade_headers_.emplace_back(std::move(name), std::move(value));
  }
  int grade_calls() const { return grade_calls_.load(); }

 private:
  std::string name_;
  obs::HttpServer server_;
  std::atomic<int> healthz_status_{200};
  std::atomic<int> grade_status_{200};
  std::atomic<int> grade_calls_{0};
  std::mutex mutex_;
  std::string grade_body_;
  std::vector<std::pair<std::string, std::string>> grade_headers_;
};

RouterPolicy FastPolicy() {
  RouterPolicy policy;
  policy.request_deadline_ms = 2000;
  policy.max_attempts = 3;
  policy.retry_backoff = {1, 4, 0.0};
  policy.breaker.failure_threshold = 2;
  policy.breaker.open_cooldown_ms = 50;
  policy.probe_deadline_ms = 500;
  policy.down_after_probe_failures = 1;
  return policy;
}

class RouterTest : public ::testing::Test {
 protected:
  void TearDown() override { obs::Registry::Global().ResetForTest(); }
};

TEST_F(RouterTest, WorkersBecomeRoutableViaProbesAndServeGrades) {
  FakeWorker worker;
  worker.Start("a");
  Router router(FastPolicy());
  router.AddWorker(0, worker.port());
  EXPECT_EQ(router.RoutableCount(), 0u);  // kDown until probed.

  router.ProbeOnce();
  EXPECT_EQ(router.RoutableCount(), 1u);

  obs::HttpResponse response = router.RouteGrade("{\"id\":\"s1\"}");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "worker:a:{\"id\":\"s1\"}");
}

TEST_F(RouterTest, NoRoutableWorkerShedsWith503AndRetryAfter) {
  Router router(FastPolicy());
  router.AddWorker(0, 1);  // Port 1: nothing listens; never probed up.
  obs::HttpResponse response = router.RouteGrade("x");
  EXPECT_EQ(response.status, 503);
  ASSERT_EQ(response.headers.size(), 1u);
  EXPECT_EQ(response.headers[0].first, "Retry-After");
}

TEST_F(RouterTest, DeadWorkerRetriesOntoSurvivor) {
  FakeWorker a, b;
  a.Start("a");
  b.Start("b");
  Router router(FastPolicy());
  router.AddWorker(0, a.port());
  router.AddWorker(1, b.port());
  router.ProbeOnce();
  ASSERT_EQ(router.RoutableCount(), 2u);

  // Worker a dies after probes marked it up: the next grade routed to it
  // fails at the transport level and must be retried on b transparently.
  a.Stop();
  for (int i = 0; i < 4; ++i) {
    obs::HttpResponse response = router.RouteGrade("s");
    EXPECT_EQ(response.status, 200) << response.body;
    EXPECT_EQ(response.body, "worker:b:s");
  }
  EXPECT_GE(b.grade_calls(), 4);
}

TEST_F(RouterTest, RepeatedFailuresTripTheBreakerThenProbeRecovers) {
  FakeWorker worker;
  worker.Start("a");
  worker.set_grade_status(500);  // Healthy transport, broken grading.
  RouterPolicy policy = FastPolicy();
  policy.max_attempts = 1;
  Router router(policy);
  router.AddWorker(0, worker.port());
  router.ProbeOnce();

  // failure_threshold=2: two failed grades trip the breaker.
  EXPECT_EQ(router.RouteGrade("x").status, 502);
  EXPECT_EQ(router.RouteGrade("x").status, 502);
  auto snapshot = router.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].breaker, BreakerState::kOpen);
  EXPECT_EQ(snapshot[0].breaker_trips, 1);
  EXPECT_EQ(router.RoutableCount(), 0u);
  // Tripped: requests shed instead of hammering the worker.
  EXPECT_EQ(router.RouteGrade("x").status, 503);

  // The worker recovers; once the cooldown elapses a probe takes the
  // half-open trial and re-admits it — no student submission was gambled.
  worker.set_grade_status(200);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  router.ProbeOnce();
  snapshot = router.Snapshot();
  EXPECT_EQ(snapshot[0].breaker, BreakerState::kClosed);
  EXPECT_EQ(router.RoutableCount(), 1u);
  EXPECT_EQ(router.RouteGrade("x").status, 200);
}

TEST_F(RouterTest, ClientErrorsRelayWithoutRetry) {
  FakeWorker worker;
  worker.Start("a");
  worker.set_grade_status(400);
  Router router(FastPolicy());
  router.AddWorker(0, worker.port());
  router.ProbeOnce();

  obs::HttpResponse response = router.RouteGrade("not json");
  EXPECT_EQ(response.status, 400);
  // A 4xx is the client's fault: exactly one attempt, breaker untouched.
  EXPECT_EQ(worker.grade_calls(), 1);
  EXPECT_EQ(router.Snapshot()[0].breaker, BreakerState::kClosed);
}

TEST_F(RouterTest, DegradedWorkerIsNotRoutedButBreakerStaysClosed) {
  FakeWorker worker;
  worker.Start("a");
  worker.set_healthz_status(503);  // Alive but draining/saturated.
  Router router(FastPolicy());
  router.AddWorker(0, worker.port());
  router.ProbeOnce();

  auto snapshot = router.Snapshot();
  EXPECT_EQ(snapshot[0].health, WorkerHealth::kDegraded);
  EXPECT_EQ(snapshot[0].breaker, BreakerState::kClosed);
  EXPECT_EQ(router.RoutableCount(), 0u);

  // The drain ends; the next probe restores routing.
  worker.set_healthz_status(200);
  router.ProbeOnce();
  EXPECT_EQ(router.RoutableCount(), 1u);
}

TEST_F(RouterTest, UnreachableWorkerGoesDownAndTripsViaProbes) {
  Router router(FastPolicy());
  FakeWorker worker;
  worker.Start("a");
  router.AddWorker(0, worker.port());
  router.ProbeOnce();
  ASSERT_EQ(router.RoutableCount(), 1u);

  // The process dies while idle: probe failures alone (no grade traffic)
  // must take it out of rotation and trip its breaker.
  worker.Stop();
  router.ProbeOnce();
  router.ProbeOnce();
  auto snapshot = router.Snapshot();
  EXPECT_EQ(snapshot[0].health, WorkerHealth::kDown);
  EXPECT_EQ(snapshot[0].breaker, BreakerState::kOpen);
}

TEST_F(RouterTest, SupervisorRestartHookResetsBreakerAndHealth) {
  FakeWorker old_worker;
  old_worker.Start("old");
  old_worker.set_grade_status(500);
  RouterPolicy policy = FastPolicy();
  policy.max_attempts = 1;
  Router router(policy);
  router.AddWorker(0, old_worker.port());
  router.ProbeOnce();
  router.RouteGrade("x");
  router.RouteGrade("x");
  ASSERT_EQ(router.Snapshot()[0].breaker, BreakerState::kOpen);

  // Supervisor replaces the process: fresh port, fresh breaker; the first
  // probe re-admits it with no cooldown debt from the dead predecessor.
  FakeWorker new_worker;
  new_worker.Start("new");
  router.SetWorkerPort(0, new_worker.port());
  EXPECT_EQ(router.Snapshot()[0].breaker, BreakerState::kClosed);
  router.ProbeOnce();
  EXPECT_EQ(router.RoutableCount(), 1u);
  EXPECT_EQ(router.RouteGrade("x").status, 200);
  old_worker.Stop();
}

TEST_F(RouterTest, InflightCapSheds) {
  RouterPolicy policy = FastPolicy();
  policy.max_inflight = 0;  // Degenerate cap: every request sheds.
  FakeWorker worker;
  worker.Start("a");
  Router router(policy);
  router.AddWorker(0, worker.port());
  router.ProbeOnce();

  obs::HttpResponse response = router.RouteGrade("x");
  EXPECT_EQ(response.status, 503);
  ASSERT_EQ(response.headers.size(), 1u);
  EXPECT_EQ(response.headers[0].first, "Retry-After");
  EXPECT_EQ(worker.grade_calls(), 0);
}

TEST_F(RouterTest, MixedAssignmentBodyIsForwardedVerbatim) {
  // Multi-tenant routing lives in the workers: the broker must pass each
  // line's "assignment" key through byte-for-byte, both directions.
  FakeWorker worker;
  worker.Start("a");
  Router router(FastPolicy());
  router.AddWorker(0, worker.port());
  router.ProbeOnce();

  const std::string body =
      "{\"id\":\"s1\",\"assignment\":\"assignment1\",\"source\":\"a\"}\n"
      "{\"id\":\"s2\",\"assignment\":\"mitx-polynomials\",\"source\":\"b\"}\n";
  obs::HttpResponse response = router.RouteGrade(body);
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "worker:a:" + body);
  EXPECT_EQ(worker.grade_calls(), 1);
}

TEST_F(RouterTest, WorkerBackpressureRelaysWithoutRetry) {
  // A worker-side 429 (every line shed at admission) is the student's
  // backpressure signal, not a broker failure: exactly one attempt, the
  // Retry-After header relayed, breaker untouched.
  FakeWorker a, b;
  a.Start("a");
  b.Start("b");
  a.set_grade_status(429);
  a.add_grade_header("Retry-After", "7");
  b.set_grade_status(429);
  b.add_grade_header("Retry-After", "7");
  Router router(FastPolicy());
  router.AddWorker(0, a.port());
  router.AddWorker(1, b.port());
  router.ProbeOnce();

  obs::HttpResponse response = router.RouteGrade("x");
  EXPECT_EQ(response.status, 429);
  // One attempt total: the shed was not retried onto the other worker.
  EXPECT_EQ(a.grade_calls() + b.grade_calls(), 1);
  std::string retry_after;
  for (const auto& [name, value] : response.headers) {
    if (name == "Retry-After") retry_after = value;
  }
  EXPECT_EQ(retry_after, "7");
  EXPECT_EQ(router.Snapshot()[0].breaker, BreakerState::kClosed);
  EXPECT_EQ(router.Snapshot()[1].breaker, BreakerState::kClosed);
}

TEST_F(RouterTest, PerLineShedObjectsInsideOkResponseRelayUntouched) {
  // Partial shed: the worker answers 200 with a mix of graded lines and
  // per-line code:429 objects. The broker must not reorder, rewrite or
  // retry any of it — per-line dispositions are the worker's contract
  // with the client.
  FakeWorker worker;
  worker.Start("a");
  const std::string mixed_outcome =
      "{\"id\":\"s1\",\"index\":0,\"assignment\":\"assignment1\","
      "\"verdict\":\"correct\"}\n"
      "{\"id\":\"s2\",\"index\":1,\"assignment\":\"assignment1\","
      "\"code\":429,\"retry_after_s\":1,\"error\":\"admission quota\"}\n";
  worker.set_grade_body(mixed_outcome);
  Router router(FastPolicy());
  router.AddWorker(0, worker.port());
  router.ProbeOnce();

  obs::HttpResponse response = router.RouteGrade("two lines");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, mixed_outcome);
  EXPECT_EQ(worker.grade_calls(), 1);
}

TEST_F(RouterTest, FleetMetricsArePublished) {
  obs::Registry::Global().set_enabled(true);
  FakeWorker worker;
  worker.Start("a");
  Router router(FastPolicy());
  router.AddWorker(0, worker.port());
  router.ProbeOnce();
  router.RouteGrade("x");

  auto& registry = obs::Registry::Global();
  EXPECT_EQ(registry.GetGauge("jfeed_fleet_workers", "")->Value(), 1);
  EXPECT_EQ(registry
                .GetGauge("jfeed_fleet_worker_state", "",
                          {{"worker", "0"}})
                ->Value(),
            2);
  EXPECT_EQ(registry
                .GetCounter("jfeed_fleet_requests_total", "",
                            {{"result", "ok"}})
                ->Value(),
            1);
}

#endif  // JFEED_OBS_DISABLED

}  // namespace
}  // namespace jfeed::fleet
