#include "fleet/router.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "gtest/gtest.h"
#include "obs/metrics.h"

namespace jfeed::fleet {
namespace {

#ifndef JFEED_OBS_DISABLED

/// A scriptable in-process stand-in for one jfeedd worker: /healthz and
/// /grade behaviour are switchable at runtime, so one test can walk a
/// worker through healthy -> failing -> recovered without real processes.
class FakeWorker {
 public:
  FakeWorker() {
    server_.Handle("/healthz", [this](const obs::HttpRequest&) {
      obs::HttpResponse response;
      response.status = healthz_status_.load();
      response.body = "{}";
      return response;
    });
    server_.Handle("/grade", [this](const obs::HttpRequest& request) {
      grade_calls_.fetch_add(1);
      obs::HttpResponse response;
      response.status = grade_status_.load();
      response.body = "worker:" + name_ + ":" + request.body;
      return response;
    });
  }

  void Start(const std::string& name) {
    name_ = name;
    ASSERT_TRUE(server_.Start().ok());
  }
  void Stop() { server_.Stop(); }
  uint16_t port() const { return server_.port(); }

  void set_healthz_status(int status) { healthz_status_.store(status); }
  void set_grade_status(int status) { grade_status_.store(status); }
  int grade_calls() const { return grade_calls_.load(); }

 private:
  std::string name_;
  obs::HttpServer server_;
  std::atomic<int> healthz_status_{200};
  std::atomic<int> grade_status_{200};
  std::atomic<int> grade_calls_{0};
};

RouterPolicy FastPolicy() {
  RouterPolicy policy;
  policy.request_deadline_ms = 2000;
  policy.max_attempts = 3;
  policy.retry_backoff = {1, 4, 0.0};
  policy.breaker.failure_threshold = 2;
  policy.breaker.open_cooldown_ms = 50;
  policy.probe_deadline_ms = 500;
  policy.down_after_probe_failures = 1;
  return policy;
}

class RouterTest : public ::testing::Test {
 protected:
  void TearDown() override { obs::Registry::Global().ResetForTest(); }
};

TEST_F(RouterTest, WorkersBecomeRoutableViaProbesAndServeGrades) {
  FakeWorker worker;
  worker.Start("a");
  Router router(FastPolicy());
  router.AddWorker(0, worker.port());
  EXPECT_EQ(router.RoutableCount(), 0u);  // kDown until probed.

  router.ProbeOnce();
  EXPECT_EQ(router.RoutableCount(), 1u);

  obs::HttpResponse response = router.RouteGrade("{\"id\":\"s1\"}");
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "worker:a:{\"id\":\"s1\"}");
}

TEST_F(RouterTest, NoRoutableWorkerShedsWith503AndRetryAfter) {
  Router router(FastPolicy());
  router.AddWorker(0, 1);  // Port 1: nothing listens; never probed up.
  obs::HttpResponse response = router.RouteGrade("x");
  EXPECT_EQ(response.status, 503);
  ASSERT_EQ(response.headers.size(), 1u);
  EXPECT_EQ(response.headers[0].first, "Retry-After");
}

TEST_F(RouterTest, DeadWorkerRetriesOntoSurvivor) {
  FakeWorker a, b;
  a.Start("a");
  b.Start("b");
  Router router(FastPolicy());
  router.AddWorker(0, a.port());
  router.AddWorker(1, b.port());
  router.ProbeOnce();
  ASSERT_EQ(router.RoutableCount(), 2u);

  // Worker a dies after probes marked it up: the next grade routed to it
  // fails at the transport level and must be retried on b transparently.
  a.Stop();
  for (int i = 0; i < 4; ++i) {
    obs::HttpResponse response = router.RouteGrade("s");
    EXPECT_EQ(response.status, 200) << response.body;
    EXPECT_EQ(response.body, "worker:b:s");
  }
  EXPECT_GE(b.grade_calls(), 4);
}

TEST_F(RouterTest, RepeatedFailuresTripTheBreakerThenProbeRecovers) {
  FakeWorker worker;
  worker.Start("a");
  worker.set_grade_status(500);  // Healthy transport, broken grading.
  RouterPolicy policy = FastPolicy();
  policy.max_attempts = 1;
  Router router(policy);
  router.AddWorker(0, worker.port());
  router.ProbeOnce();

  // failure_threshold=2: two failed grades trip the breaker.
  EXPECT_EQ(router.RouteGrade("x").status, 502);
  EXPECT_EQ(router.RouteGrade("x").status, 502);
  auto snapshot = router.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].breaker, BreakerState::kOpen);
  EXPECT_EQ(snapshot[0].breaker_trips, 1);
  EXPECT_EQ(router.RoutableCount(), 0u);
  // Tripped: requests shed instead of hammering the worker.
  EXPECT_EQ(router.RouteGrade("x").status, 503);

  // The worker recovers; once the cooldown elapses a probe takes the
  // half-open trial and re-admits it — no student submission was gambled.
  worker.set_grade_status(200);
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  router.ProbeOnce();
  snapshot = router.Snapshot();
  EXPECT_EQ(snapshot[0].breaker, BreakerState::kClosed);
  EXPECT_EQ(router.RoutableCount(), 1u);
  EXPECT_EQ(router.RouteGrade("x").status, 200);
}

TEST_F(RouterTest, ClientErrorsRelayWithoutRetry) {
  FakeWorker worker;
  worker.Start("a");
  worker.set_grade_status(400);
  Router router(FastPolicy());
  router.AddWorker(0, worker.port());
  router.ProbeOnce();

  obs::HttpResponse response = router.RouteGrade("not json");
  EXPECT_EQ(response.status, 400);
  // A 4xx is the client's fault: exactly one attempt, breaker untouched.
  EXPECT_EQ(worker.grade_calls(), 1);
  EXPECT_EQ(router.Snapshot()[0].breaker, BreakerState::kClosed);
}

TEST_F(RouterTest, DegradedWorkerIsNotRoutedButBreakerStaysClosed) {
  FakeWorker worker;
  worker.Start("a");
  worker.set_healthz_status(503);  // Alive but draining/saturated.
  Router router(FastPolicy());
  router.AddWorker(0, worker.port());
  router.ProbeOnce();

  auto snapshot = router.Snapshot();
  EXPECT_EQ(snapshot[0].health, WorkerHealth::kDegraded);
  EXPECT_EQ(snapshot[0].breaker, BreakerState::kClosed);
  EXPECT_EQ(router.RoutableCount(), 0u);

  // The drain ends; the next probe restores routing.
  worker.set_healthz_status(200);
  router.ProbeOnce();
  EXPECT_EQ(router.RoutableCount(), 1u);
}

TEST_F(RouterTest, UnreachableWorkerGoesDownAndTripsViaProbes) {
  Router router(FastPolicy());
  FakeWorker worker;
  worker.Start("a");
  router.AddWorker(0, worker.port());
  router.ProbeOnce();
  ASSERT_EQ(router.RoutableCount(), 1u);

  // The process dies while idle: probe failures alone (no grade traffic)
  // must take it out of rotation and trip its breaker.
  worker.Stop();
  router.ProbeOnce();
  router.ProbeOnce();
  auto snapshot = router.Snapshot();
  EXPECT_EQ(snapshot[0].health, WorkerHealth::kDown);
  EXPECT_EQ(snapshot[0].breaker, BreakerState::kOpen);
}

TEST_F(RouterTest, SupervisorRestartHookResetsBreakerAndHealth) {
  FakeWorker old_worker;
  old_worker.Start("old");
  old_worker.set_grade_status(500);
  RouterPolicy policy = FastPolicy();
  policy.max_attempts = 1;
  Router router(policy);
  router.AddWorker(0, old_worker.port());
  router.ProbeOnce();
  router.RouteGrade("x");
  router.RouteGrade("x");
  ASSERT_EQ(router.Snapshot()[0].breaker, BreakerState::kOpen);

  // Supervisor replaces the process: fresh port, fresh breaker; the first
  // probe re-admits it with no cooldown debt from the dead predecessor.
  FakeWorker new_worker;
  new_worker.Start("new");
  router.SetWorkerPort(0, new_worker.port());
  EXPECT_EQ(router.Snapshot()[0].breaker, BreakerState::kClosed);
  router.ProbeOnce();
  EXPECT_EQ(router.RoutableCount(), 1u);
  EXPECT_EQ(router.RouteGrade("x").status, 200);
  old_worker.Stop();
}

TEST_F(RouterTest, InflightCapSheds) {
  RouterPolicy policy = FastPolicy();
  policy.max_inflight = 0;  // Degenerate cap: every request sheds.
  FakeWorker worker;
  worker.Start("a");
  Router router(policy);
  router.AddWorker(0, worker.port());
  router.ProbeOnce();

  obs::HttpResponse response = router.RouteGrade("x");
  EXPECT_EQ(response.status, 503);
  ASSERT_EQ(response.headers.size(), 1u);
  EXPECT_EQ(response.headers[0].first, "Retry-After");
  EXPECT_EQ(worker.grade_calls(), 0);
}

TEST_F(RouterTest, FleetMetricsArePublished) {
  obs::Registry::Global().set_enabled(true);
  FakeWorker worker;
  worker.Start("a");
  Router router(FastPolicy());
  router.AddWorker(0, worker.port());
  router.ProbeOnce();
  router.RouteGrade("x");

  auto& registry = obs::Registry::Global();
  EXPECT_EQ(registry.GetGauge("jfeed_fleet_workers", "")->Value(), 1);
  EXPECT_EQ(registry
                .GetGauge("jfeed_fleet_worker_state", "",
                          {{"worker", "0"}})
                ->Value(),
            2);
  EXPECT_EQ(registry
                .GetCounter("jfeed_fleet_requests_total", "",
                            {{"result", "ok"}})
                ->Value(),
            1);
}

#endif  // JFEED_OBS_DISABLED

}  // namespace
}  // namespace jfeed::fleet
