#include "fleet/supervisor.h"

#include <signal.h>
#include <sys/types.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace jfeed::fleet {
namespace {

/// Waits up to `budget_ms` for `predicate` to become true.
template <typename Predicate>
bool WaitFor(Predicate predicate, int64_t budget_ms) {
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(budget_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return predicate();
}

/// A worker command that just sleeps: supervision is about pids and exit
/// statuses, so /bin/sh is as good a worker as jfeedd and much cheaper.
CommandBuilder SleepCommand(const std::string& seconds = "3600") {
  return [seconds](int, uint16_t) {
    return std::vector<std::string>{"/bin/sh", "-c", "sleep " + seconds};
  };
}

SupervisorOptions FastOptions(int workers = 2) {
  SupervisorOptions options;
  options.workers = workers;
  options.restart_backoff = {20, 200, 0.0};
  options.healthy_uptime_ms = 100;
  options.reap_interval_ms = 10;
  options.drain_grace_ms = 2000;
  return options;
}

TEST(SupervisorTest, SpawnsAllWorkersAndReportsThemUp) {
  std::mutex mu;
  std::vector<std::pair<int, uint16_t>> up;
  Supervisor supervisor(FastOptions(3), SleepCommand());
  supervisor.OnWorkerUp([&](int id, uint16_t port) {
    std::lock_guard<std::mutex> lock(mu);
    up.emplace_back(id, port);
  });
  ASSERT_TRUE(supervisor.Start().ok());

  {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_EQ(up.size(), 3u);
    for (int id = 0; id < 3; ++id) {
      EXPECT_EQ(up[id].first, id);
      EXPECT_NE(up[id].second, 0);  // A real picked port.
    }
  }
  for (const auto& snapshot : supervisor.Snapshot()) {
    EXPECT_GT(snapshot.pid, 0);
    EXPECT_EQ(snapshot.restarts, 0);
    // The pid is alive (kill 0 = existence probe).
    EXPECT_EQ(::kill(snapshot.pid, 0), 0);
  }
  supervisor.Stop();
}

TEST(SupervisorTest, KilledWorkerIsReportedDownAndRestarted) {
  std::atomic<int> downs{0};
  std::atomic<int> ups{0};
  Supervisor supervisor(FastOptions(2), SleepCommand());
  supervisor.OnWorkerDown([&](int) { downs.fetch_add(1); });
  supervisor.OnWorkerUp([&](int, uint16_t) { ups.fetch_add(1); });
  ASSERT_TRUE(supervisor.Start().ok());
  ASSERT_EQ(ups.load(), 2);

  pid_t victim = supervisor.WorkerPid(1);
  ASSERT_GT(victim, 0);
  // Kill the worker's whole process group: this /bin/sh forks `sleep` as a
  // child rather than exec'ing it, and a bare kill(pid) would orphan it.
  ASSERT_EQ(::kill(-victim, SIGKILL), 0);

  // Death is noticed (OnWorkerDown before restart), then the slot refills.
  EXPECT_TRUE(WaitFor([&] { return downs.load() >= 1; }, 2000));
  EXPECT_TRUE(WaitFor([&] { return ups.load() >= 3; }, 2000));
  EXPECT_TRUE(WaitFor([&] { return supervisor.WorkerPid(1) > 0; }, 2000));
  EXPECT_NE(supervisor.WorkerPid(1), victim);
  EXPECT_EQ(supervisor.TotalRestarts(), 1);
  // The untouched worker kept its pid.
  EXPECT_EQ(supervisor.Snapshot()[0].restarts, 0);
  supervisor.Stop();
}

TEST(SupervisorTest, CrashLoopIsPacedByBackoff) {
  // A worker that exits immediately. With base 50ms restarts are paced:
  // in ~400ms we must see far fewer restarts than the reap interval alone
  // would allow (10ms polling -> ~40 unpaced restarts).
  SupervisorOptions options = FastOptions(1);
  options.restart_backoff = {50, 400, 0.0};
  options.healthy_uptime_ms = 10'000;  // Nothing counts as healthy.
  Supervisor supervisor(options, SleepCommand("0"));
  ASSERT_TRUE(supervisor.Start().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  int64_t restarts = supervisor.TotalRestarts();
  supervisor.Stop();
  EXPECT_GE(restarts, 1);
  // 50+100+200 pacing admits at most ~4 restarts in 400ms; leave slack.
  EXPECT_LE(restarts, 6);
}

TEST(SupervisorTest, DrainTerminatesEveryWorkerAndBlocksRestarts) {
  std::atomic<int> ups{0};
  Supervisor supervisor(FastOptions(2), SleepCommand());
  supervisor.OnWorkerUp([&](int, uint16_t) { ups.fetch_add(1); });
  ASSERT_TRUE(supervisor.Start().ok());
  std::vector<pid_t> pids;
  for (const auto& snapshot : supervisor.Snapshot()) {
    pids.push_back(snapshot.pid);
  }

  supervisor.Drain();
  // sh dies on the forwarded SIGTERM; every pid is gone and none respawn.
  EXPECT_TRUE(WaitFor(
      [&] {
        for (pid_t pid : pids) {
          if (::kill(pid, 0) == 0) return false;
        }
        return true;
      },
      3000));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(ups.load(), 2);  // No post-drain respawns.
  EXPECT_EQ(supervisor.TotalRestarts(), 0);
  supervisor.Stop();
}

TEST(SupervisorTest, PickFreePortReturnsBindablePorts) {
  auto a = Supervisor::PickFreePort();
  auto b = Supervisor::PickFreePort();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.value(), 0);
  EXPECT_NE(b.value(), 0);
}

TEST(SupervisorTest, ExecFailureIsASupervisedCrashNotAHang) {
  // A nonexistent binary: fork succeeds, exec fails, the child exits 127
  // and the supervisor treats it like any other crash (paced restarts).
  SupervisorOptions options = FastOptions(1);
  options.restart_backoff = {20, 100, 0.0};
  options.healthy_uptime_ms = 10'000;
  Supervisor supervisor(options, [](int, uint16_t) {
    return std::vector<std::string>{"/nonexistent/jfeedd"};
  });
  ASSERT_TRUE(supervisor.Start().ok());
  EXPECT_TRUE(WaitFor([&] { return supervisor.TotalRestarts() >= 2; }, 3000));
  supervisor.Stop();
}

}  // namespace
}  // namespace jfeed::fleet
