#include "fleet/breaker.h"

#include "gtest/gtest.h"

namespace jfeed::fleet {
namespace {

BreakerPolicy Policy(int threshold = 3, int64_t cooldown_ms = 1000) {
  BreakerPolicy policy;
  policy.failure_threshold = threshold;
  policy.open_cooldown_ms = cooldown_ms;
  return policy;
}

TEST(CircuitBreakerTest, ClosedAllowsAndAbsorbsScatteredFailures) {
  CircuitBreaker breaker(Policy(3));
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.Allow(0));
  // Failures interleaved with successes never reach the consecutive
  // threshold.
  for (int round = 0; round < 5; ++round) {
    breaker.RecordFailure(round);
    breaker.RecordFailure(round);
    breaker.RecordSuccess();
  }
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.trips(), 0);
}

TEST(CircuitBreakerTest, ConsecutiveFailuresTrip) {
  CircuitBreaker breaker(Policy(3));
  breaker.RecordFailure(10);
  breaker.RecordFailure(20);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  breaker.RecordFailure(30);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 1);
  EXPECT_FALSE(breaker.Allow(31));
}

TEST(CircuitBreakerTest, CooldownGrantsExactlyOneTrial) {
  CircuitBreaker breaker(Policy(1, /*cooldown_ms=*/1000));
  breaker.RecordFailure(0);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_FALSE(breaker.Allow(999));
  // Cooldown elapsed: the first Allow is the half-open trial...
  EXPECT_TRUE(breaker.Allow(1000));
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  // ...and only the first — no second request slips through while the
  // trial is outstanding.
  EXPECT_FALSE(breaker.Allow(1001));
  EXPECT_FALSE(breaker.Allow(5000));
}

TEST(CircuitBreakerTest, TrialSuccessCloses) {
  CircuitBreaker breaker(Policy(1, 1000));
  breaker.RecordFailure(0);
  ASSERT_TRUE(breaker.Allow(1000));
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.Allow(1001));
  // The failure streak was reset: one new failure re-trips (threshold 1)…
  breaker.RecordFailure(1002);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 2);
}

TEST(CircuitBreakerTest, TrialFailureReopensAndRestartsCooldown) {
  CircuitBreaker breaker(Policy(1, 1000));
  breaker.RecordFailure(0);
  ASSERT_TRUE(breaker.Allow(1000));
  breaker.RecordFailure(1100);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 2);
  // The cooldown restarts from the re-trip, not the original trip.
  EXPECT_FALSE(breaker.Allow(1999));
  EXPECT_TRUE(breaker.Allow(2100));
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
}

TEST(CircuitBreakerTest, LateFailureReportInOpenIsANoOp) {
  // An attempt dispatched before the trip may report its failure after: it
  // must not extend the cooldown or double-count a trip.
  CircuitBreaker breaker(Policy(1, 1000));
  breaker.RecordFailure(0);
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);
  breaker.RecordFailure(500);
  EXPECT_EQ(breaker.trips(), 1);
  EXPECT_TRUE(breaker.Allow(1000));  // Cooldown still counted from t=0.
}

TEST(BreakerStateTest, NamesAndGaugeValues) {
  EXPECT_STREQ(BreakerStateName(BreakerState::kClosed), "closed");
  EXPECT_STREQ(BreakerStateName(BreakerState::kHalfOpen), "half_open");
  EXPECT_STREQ(BreakerStateName(BreakerState::kOpen), "open");
  EXPECT_EQ(BreakerStateValue(BreakerState::kClosed), 0);
  EXPECT_EQ(BreakerStateValue(BreakerState::kHalfOpen), 1);
  EXPECT_EQ(BreakerStateValue(BreakerState::kOpen), 2);
}

}  // namespace
}  // namespace jfeed::fleet
