#include "fleet/backoff.h"

#include <vector>

#include "gtest/gtest.h"

namespace jfeed::fleet {
namespace {

TEST(BackoffTest, ExactDoublingWithoutJitter) {
  Backoff backoff({/*base_ms=*/50, /*max_ms=*/2000, /*jitter=*/0.0});
  EXPECT_EQ(backoff.NextDelayMs(), 50);
  EXPECT_EQ(backoff.NextDelayMs(), 100);
  EXPECT_EQ(backoff.NextDelayMs(), 200);
  EXPECT_EQ(backoff.NextDelayMs(), 400);
}

TEST(BackoffTest, SaturatesAtMax) {
  Backoff backoff({/*base_ms=*/50, /*max_ms=*/300, /*jitter=*/0.0});
  backoff.NextDelayMs();  // 50
  backoff.NextDelayMs();  // 100
  backoff.NextDelayMs();  // 200
  EXPECT_EQ(backoff.NextDelayMs(), 300);
  EXPECT_EQ(backoff.NextDelayMs(), 300);
  // Deep attempt counts must not overflow the doubling into negatives.
  for (int i = 0; i < 80; ++i) EXPECT_EQ(backoff.NextDelayMs(), 300);
}

TEST(BackoffTest, JitterStaysInsideTheBand) {
  Backoff backoff({/*base_ms=*/100, /*max_ms=*/10'000, /*jitter=*/0.2}, 7);
  int64_t expected = 100;
  for (int i = 0; i < 6; ++i) {
    int64_t delay = backoff.NextDelayMs();
    EXPECT_GE(delay, expected * 8 / 10) << "attempt " << i;
    EXPECT_LE(delay, expected * 12 / 10) << "attempt " << i;
    expected *= 2;
  }
}

TEST(BackoffTest, SameSeedSameSequenceDifferentSeedDiverges) {
  BackoffPolicy policy{/*base_ms=*/100, /*max_ms=*/10'000, /*jitter=*/0.5};
  Backoff a(policy, 42);
  Backoff b(policy, 42);
  Backoff c(policy, 43);
  std::vector<int64_t> from_a, from_b, from_c;
  for (int i = 0; i < 8; ++i) {
    from_a.push_back(a.NextDelayMs());
    from_b.push_back(b.NextDelayMs());
    from_c.push_back(c.NextDelayMs());
  }
  EXPECT_EQ(from_a, from_b);
  EXPECT_NE(from_a, from_c);
}

TEST(BackoffTest, ResetRestartsTheSchedule) {
  Backoff backoff({/*base_ms=*/50, /*max_ms=*/2000, /*jitter=*/0.0});
  backoff.NextDelayMs();
  backoff.NextDelayMs();
  EXPECT_EQ(backoff.attempt(), 2);
  backoff.Reset();
  EXPECT_EQ(backoff.attempt(), 0);
  EXPECT_EQ(backoff.NextDelayMs(), 50);
}

TEST(BackoffTest, DelayIsAlwaysPositive) {
  // Even a degenerate policy (base 0, full jitter) must sleep at least 1ms,
  // or a retry loop would spin.
  Backoff backoff({/*base_ms=*/0, /*max_ms=*/0, /*jitter=*/0.99}, 3);
  for (int i = 0; i < 20; ++i) EXPECT_GE(backoff.NextDelayMs(), 1);
}

}  // namespace
}  // namespace jfeed::fleet
