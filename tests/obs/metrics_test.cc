#include "obs/metrics.h"

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

// The metrics tests run against the real (JFEED_OBS=ON) implementation;
// under JFEED_OBS=OFF the whole suite degenerates to stub smoke tests,
// which is itself worth compiling (it proves the stub API surface matches).

namespace jfeed::obs {
namespace {

#ifndef JFEED_OBS_DISABLED

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::Global().ResetForTest();
    Registry::Global().set_enabled(true);
  }
  void TearDown() override {
    Registry::Global().set_enabled(false);
    Registry::Global().ResetForTest();
  }
};

TEST_F(MetricsTest, CounterStartsAtZeroAndAccumulates) {
  Counter* c = Registry::Global().GetCounter("t_counter_basic", "help");
  EXPECT_EQ(c->Value(), 0);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->Value(), 42);
}

TEST_F(MetricsTest, CounterIsNoOpWhileRegistryDisabled) {
  Counter* c = Registry::Global().GetCounter("t_counter_gated", "help");
  Registry::Global().set_enabled(false);
  c->Increment(100);
  EXPECT_EQ(c->Value(), 0);
  Registry::Global().set_enabled(true);
  c->Increment(7);
  EXPECT_EQ(c->Value(), 7);
}

TEST_F(MetricsTest, GetCounterIsIdempotentPerNameAndLabels) {
  Counter* a = Registry::Global().GetCounter("t_counter_idem", "help");
  Counter* b = Registry::Global().GetCounter("t_counter_idem", "help");
  EXPECT_EQ(a, b);
  Counter* labeled = Registry::Global().GetCounter("t_counter_idem", "help",
                                                   {{"stage", "parse"}});
  EXPECT_NE(a, labeled);
  EXPECT_EQ(labeled, Registry::Global().GetCounter("t_counter_idem", "help",
                                                   {{"stage", "parse"}}));
}

TEST_F(MetricsTest, CounterAggregatesAcrossThreadsAndSurvivesThreadExit) {
  Counter* c = Registry::Global().GetCounter("t_counter_threads", "help");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([c] {
        for (int i = 0; i < kPerThread; ++i) c->Increment();
      });
    }
    for (auto& thread : threads) thread.join();
  }
  // All worker threads have exited: their shards folded into the retired
  // sum, and nothing was lost on the way.
  EXPECT_EQ(c->Value(), int64_t{kThreads} * kPerThread);
}

TEST_F(MetricsTest, GaugeSetAddValue) {
  Gauge* g = Registry::Global().GetGauge("t_gauge", "help");
  EXPECT_EQ(g->Value(), 0);
  g->Set(17);
  EXPECT_EQ(g->Value(), 17);
  g->Add(3);
  EXPECT_EQ(g->Value(), 20);
  g->Add(-25);
  EXPECT_EQ(g->Value(), -5);
}

TEST_F(MetricsTest, HistogramBucketIndexIsLog2Scale) {
  // Bucket i counts samples <= 2^i; bucket 0 also absorbs <= 1 (including
  // zero and negatives, clamped).
  EXPECT_EQ(Histogram::BucketIndex(-5), 0);
  EXPECT_EQ(Histogram::BucketIndex(0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1), 0);
  EXPECT_EQ(Histogram::BucketIndex(2), 1);
  EXPECT_EQ(Histogram::BucketIndex(3), 2);
  EXPECT_EQ(Histogram::BucketIndex(4), 2);
  EXPECT_EQ(Histogram::BucketIndex(5), 3);
  EXPECT_EQ(Histogram::BucketIndex(1024), 10);
  EXPECT_EQ(Histogram::BucketIndex(1025), 11);
  // Everything beyond the largest finite bound lands in the +Inf bucket.
  EXPECT_EQ(Histogram::BucketIndex(INT64_MAX), Histogram::kBucketCount - 1);
}

TEST_F(MetricsTest, HistogramBucketBoundsAreInclusivePowersOfTwo) {
  EXPECT_EQ(Histogram::BucketBound(0), 1);
  EXPECT_EQ(Histogram::BucketBound(1), 2);
  EXPECT_EQ(Histogram::BucketBound(10), 1024);
  EXPECT_EQ(Histogram::BucketBound(Histogram::kBucketCount - 1), INT64_MAX);
  // Bound/index agree: every finite bound is counted by its own bucket.
  for (int i = 0; i + 1 < Histogram::kBucketCount; ++i) {
    EXPECT_EQ(Histogram::BucketIndex(Histogram::BucketBound(i)), i) << i;
  }
}

TEST_F(MetricsTest, HistogramCountSumAndCumulativeCounts) {
  Histogram* h = Registry::Global().GetHistogram("t_histo", "help");
  h->Record(1);     // bucket 0
  h->Record(2);     // bucket 1
  h->Record(100);   // bucket 7 (<= 128)
  h->Record(100);   // bucket 7
  EXPECT_EQ(h->Count(), 4);
  EXPECT_EQ(h->Sum(), 203);
  EXPECT_EQ(h->CumulativeCount(0), 1);
  EXPECT_EQ(h->CumulativeCount(1), 2);
  EXPECT_EQ(h->CumulativeCount(6), 2);   // <= 64: the two small samples
  EXPECT_EQ(h->CumulativeCount(7), 4);   // <= 128: everything
  EXPECT_EQ(h->CumulativeCount(Histogram::kBucketCount - 1), 4);
}

TEST_F(MetricsTest, HistogramAggregatesAcrossThreads) {
  Histogram* h = Registry::Global().GetHistogram("t_histo_threads", "help");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1'000;
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([h] {
        for (int i = 0; i < kPerThread; ++i) h->Record(64);
      });
    }
    for (auto& thread : threads) thread.join();
  }
  EXPECT_EQ(h->Count(), kThreads * kPerThread);
  EXPECT_EQ(h->Sum(), int64_t{kThreads} * kPerThread * 64);
  EXPECT_EQ(h->CumulativeCount(6), kThreads * kPerThread);
  EXPECT_EQ(h->CumulativeCount(5), 0);
}

TEST_F(MetricsTest, RenderEmitsPrometheusTextFormat) {
  Registry::Global().GetCounter("t_render_requests_total", "Requests seen")
      ->Increment(3);
  Registry::Global().GetGauge("t_render_depth", "Queue depth")->Set(5);
  Histogram* h = Registry::Global().GetHistogram("t_render_us", "Latency");
  h->Record(3);

  std::string text = Registry::Global().Render();
  EXPECT_NE(text.find("# HELP t_render_requests_total Requests seen\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE t_render_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("t_render_requests_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE t_render_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("t_render_depth 5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE t_render_us histogram\n"), std::string::npos);
  // The sample 3 lands in the <= 4 bucket; cumulative counts follow.
  EXPECT_NE(text.find("t_render_us_bucket{le=\"2\"} 0\n"), std::string::npos);
  EXPECT_NE(text.find("t_render_us_bucket{le=\"4\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("t_render_us_bucket{le=\"+Inf\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("t_render_us_sum 3\n"), std::string::npos);
  EXPECT_NE(text.find("t_render_us_count 1\n"), std::string::npos);
}

TEST_F(MetricsTest, RenderIncludesLabelsAndEscapesValues) {
  Registry::Global()
      .GetCounter("t_labeled_total", "help", {{"stage", "parse"}})
      ->Increment(2);
  Registry::Global()
      .GetCounter("t_labeled_total", "help", {{"stage", "with\"quote"}})
      ->Increment();
  std::string text = Registry::Global().Render();
  EXPECT_NE(text.find("t_labeled_total{stage=\"parse\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("t_labeled_total{stage=\"with\\\"quote\"} 1\n"),
            std::string::npos);
}

TEST_F(MetricsTest, RenderEscapesBackslashAndNewlineInLabelValues) {
  // The Prometheus text format requires \\, \", and \n escaped inside label
  // values; a raw newline would end the sample line mid-value and corrupt
  // the whole exposition.
  Registry::Global()
      .GetCounter("t_escape_total", "help", {{"path", "a\\b"}})
      ->Increment();
  Registry::Global()
      .GetCounter("t_escape_total", "help", {{"path", "line1\nline2"}})
      ->Increment(2);
  std::string text = Registry::Global().Render();
  EXPECT_NE(text.find("t_escape_total{path=\"a\\\\b\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("t_escape_total{path=\"line1\\nline2\"} 2\n"),
            std::string::npos);
}

TEST_F(MetricsTest, RenderEscapesHelpText) {
  // HELP text has its own (smaller) escape set: backslash and newline.
  // Quotes are legal raw in HELP, so they must pass through untouched.
  Registry::Global().GetCounter("t_help_esc_total",
                                "first\nsecond \\ \"quoted\"");
  std::string text = Registry::Global().Render();
  EXPECT_NE(text.find("# HELP t_help_esc_total "
                      "first\\nsecond \\\\ \"quoted\"\n"),
            std::string::npos);
  // No raw newline may survive inside the HELP line.
  EXPECT_EQ(text.find("# HELP t_help_esc_total first\nsecond"),
            std::string::npos);
}

TEST_F(MetricsTest, ResetForTestZeroesButKeepsPointersValid) {
  Counter* c = Registry::Global().GetCounter("t_reset_total", "help");
  Histogram* h = Registry::Global().GetHistogram("t_reset_us", "help");
  Gauge* g = Registry::Global().GetGauge("t_reset_depth", "help");
  c->Increment(9);
  h->Record(9);
  g->Set(9);
  Registry::Global().ResetForTest();
  EXPECT_EQ(c->Value(), 0);
  EXPECT_EQ(h->Count(), 0);
  EXPECT_EQ(h->Sum(), 0);
  EXPECT_EQ(g->Value(), 0);
  // The registry must return the same instruments and they must still work.
  EXPECT_EQ(Registry::Global().GetCounter("t_reset_total", "help"), c);
  c->Increment();
  EXPECT_EQ(c->Value(), 1);
}

#else  // JFEED_OBS_DISABLED

TEST(MetricsStubTest, StubsCompileAndDoNothing) {
  Counter* c = Registry::Global().GetCounter("stub", "help");
  c->Increment(5);
  EXPECT_EQ(c->Value(), 0);
  EXPECT_FALSE(Registry::Global().enabled());
  EXPECT_NE(Registry::Global().Render().find("compiled out"),
            std::string::npos);
}

#endif  // JFEED_OBS_DISABLED

}  // namespace
}  // namespace jfeed::obs
