#include "obs/trace.h"

#include <algorithm>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace jfeed::obs {
namespace {

#ifndef JFEED_OBS_DISABLED

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Global().Clear();
    Tracer::Global().Enable();
  }
  void TearDown() override {
    Tracer::Global().Disable();
    Tracer::Global().Clear();
  }

  static const SpanRecord* Find(const std::vector<SpanRecord>& records,
                                const std::string& name) {
    for (const auto& record : records) {
      if (name == record.name) return &record;
    }
    return nullptr;
  }
};

TEST_F(TraceTest, SpanRecordsOnEnd) {
  {
    Span span("unit");
    EXPECT_TRUE(span.recording());
    EXPECT_NE(span.id(), 0u);
    EXPECT_EQ(Tracer::Global().OpenSpanCount(), 1);
  }
  EXPECT_EQ(Tracer::Global().OpenSpanCount(), 0);
  auto records = Tracer::Global().Snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_STREQ(records[0].name, "unit");
  EXPECT_EQ(records[0].parent_id, 0u);
  EXPECT_GE(records[0].end_ns, records[0].start_ns);
}

TEST_F(TraceTest, EndIsIdempotent) {
  Span span("once");
  span.End();
  span.End();  // Second End (and the destructor later) must not re-record.
  EXPECT_EQ(Tracer::Global().Snapshot().size(), 1u);
}

TEST_F(TraceTest, ImplicitParentFollowsThreadNesting) {
  {
    Span outer("outer");
    Span inner("inner");
    // inner picked up outer as its parent without being told.
    inner.End();
    outer.End();
  }
  auto records = Tracer::Global().Snapshot();
  const SpanRecord* outer = Find(records, "outer");
  const SpanRecord* inner = Find(records, "inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->parent_id, 0u);
  EXPECT_EQ(inner->parent_id, outer->id);
}

TEST_F(TraceTest, ImplicitChainRestoresAfterEnd) {
  Span outer("outer");
  {
    Span first("first");
  }
  // After `first` ended, new spans must nest under `outer` again, not
  // under the dead `first`.
  Span second("second");
  second.End();
  outer.End();
  auto records = Tracer::Global().Snapshot();
  const SpanRecord* out = Find(records, "outer");
  const SpanRecord* second_record = Find(records, "second");
  ASSERT_NE(out, nullptr);
  ASSERT_NE(second_record, nullptr);
  EXPECT_EQ(second_record->parent_id, out->id);
}

TEST_F(TraceTest, ExplicitParentOverridesImplicitChain) {
  Span root("root");
  Span sibling("sibling");
  // Explicit parent: nests under root even though sibling is innermost.
  Span child("child", root);
  child.End();
  sibling.End();
  root.End();
  auto records = Tracer::Global().Snapshot();
  const SpanRecord* root_record = Find(records, "root");
  const SpanRecord* child_record = Find(records, "child");
  ASSERT_NE(root_record, nullptr);
  ASSERT_NE(child_record, nullptr);
  EXPECT_EQ(child_record->parent_id, root_record->id);
}

TEST_F(TraceTest, DisabledTracerRecordsNothing) {
  Tracer::Global().Disable();
  {
    Span span("ghost");
    EXPECT_FALSE(span.recording());
    EXPECT_EQ(span.id(), 0u);
  }
  EXPECT_EQ(Tracer::Global().OpenSpanCount(), 0);
  EXPECT_TRUE(Tracer::Global().Snapshot().empty());
}

TEST_F(TraceTest, SpanBegunWhileDisabledYieldsRootChildren) {
  Tracer::Global().Disable();
  Span dead("dead");
  Tracer::Global().Enable();
  // A recording span whose explicit parent never recorded is a root.
  Span child("child", dead);
  child.End();
  dead.End();
  auto records = Tracer::Global().Snapshot();
  const SpanRecord* child_record = Find(records, "child");
  ASSERT_NE(child_record, nullptr);
  EXPECT_EQ(child_record->parent_id, 0u);
}

TEST_F(TraceTest, SnapshotIsSortedByStartTime) {
  for (int i = 0; i < 16; ++i) {
    Span span("tick");
  }
  auto records = Tracer::Global().Snapshot();
  ASSERT_EQ(records.size(), 16u);
  EXPECT_TRUE(std::is_sorted(
      records.begin(), records.end(),
      [](const SpanRecord& a, const SpanRecord& b) {
        return a.start_ns < b.start_ns || (a.start_ns == b.start_ns &&
                                           a.id < b.id);
      }));
}

TEST_F(TraceTest, RingOverflowDropsOldestAndCounts) {
  Tracer::Global().Disable();
  Tracer::Global().Clear();
  Tracer::Global().Enable(/*ring_capacity=*/4);
  // A fresh thread gets a ring with the new capacity (Enable only applies
  // to rings created after the call).
  std::thread([] {
    for (int i = 0; i < 10; ++i) {
      Span span("wrap");
    }
  }).join();
  EXPECT_EQ(Tracer::Global().Snapshot().size(), 4u);
  EXPECT_EQ(Tracer::Global().DroppedCount(), 6);
}

TEST_F(TraceTest, SpansFromMultipleThreadsGetDistinctTids) {
  {
    Span main_span("main");
    std::thread([] { Span worker_span("worker"); }).join();
  }
  auto records = Tracer::Global().Snapshot();
  const SpanRecord* main_record = Find(records, "main");
  const SpanRecord* worker_record = Find(records, "worker");
  ASSERT_NE(main_record, nullptr);
  ASSERT_NE(worker_record, nullptr);
  EXPECT_NE(main_record->tid, worker_record->tid);
  // Worker spans are roots of their own thread: the implicit chain is
  // thread-local and never leaks across threads.
  EXPECT_EQ(worker_record->parent_id, 0u);
}

TEST_F(TraceTest, ExportChromeJsonEmitsCompleteEvents) {
  {
    Span outer("grade");
    Span inner("parse");
  }
  std::string json = Tracer::Global().ExportChromeJson();
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"grade\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"parse\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{"), std::string::npos);
  EXPECT_NE(json.find("\"parent\":"), std::string::npos);
  // Balanced brackets — cheap structural sanity without a JSON parser.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST_F(TraceTest, ClearDropsRecordsAndDroppedCount) {
  {
    Span span("gone");
  }
  ASSERT_EQ(Tracer::Global().Snapshot().size(), 1u);
  Tracer::Global().Clear();
  EXPECT_TRUE(Tracer::Global().Snapshot().empty());
  EXPECT_EQ(Tracer::Global().DroppedCount(), 0);
}

#else  // JFEED_OBS_DISABLED

TEST(TraceStubTest, StubsCompileAndDoNothing) {
  Span span("stub");
  EXPECT_FALSE(span.recording());
  EXPECT_TRUE(Tracer::Global().Snapshot().empty());
  EXPECT_NE(Tracer::Global().ExportChromeJson().find("traceEvents"),
            std::string::npos);
}

#endif  // JFEED_OBS_DISABLED

}  // namespace
}  // namespace jfeed::obs
