#include "obs/http_server.h"

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "tests/testutil/http_client.h"

namespace jfeed::obs {
namespace {

#ifndef JFEED_OBS_DISABLED

using jfeed::testutil::HttpFetch;

/// Starts a server on an ephemeral loopback port with the given routes.
class HttpServerTest : public ::testing::Test {
 protected:
  void StartServer() {
    server_ = std::make_unique<HttpServer>();
    server_->Handle("/hello", [](const HttpRequest&) {
      HttpResponse response;
      response.body = "hi\n";
      return response;
    });
    server_->Handle("/echo", [](const HttpRequest& request) {
      HttpResponse response;
      response.body = request.method + "|" + request.path + "|" +
                      request.query + "|" + request.body;
      return response;
    });
    server_->Handle("/teapot", [](const HttpRequest&) {
      HttpResponse response;
      response.status = 418;
      response.body = "short and stout\n";
      return response;
    });
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_NE(server_->port(), 0);
  }

  std::unique_ptr<HttpServer> server_;
};

TEST_F(HttpServerTest, ServesRegisteredRoute) {
  StartServer();
  auto result = HttpFetch(server_->port(), "GET", "/hello");
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.status, 200);
  EXPECT_EQ(result.body, "hi\n");
  EXPECT_NE(result.headers.find("Content-Length: 3"), std::string::npos);
  EXPECT_NE(result.headers.find("Connection: close"), std::string::npos);
}

TEST_F(HttpServerTest, PassesMethodQueryAndBodyToHandler) {
  StartServer();
  auto result =
      HttpFetch(server_->port(), "POST", "/echo?limit=5&x=1", "the body");
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.status, 200);
  EXPECT_EQ(result.body, "POST|/echo|limit=5&x=1|the body");
}

TEST_F(HttpServerTest, HandlerStatusCodePropagates) {
  StartServer();
  auto result = HttpFetch(server_->port(), "GET", "/teapot");
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.status, 418);
}

TEST_F(HttpServerTest, UnknownPathIs404) {
  StartServer();
  auto result = HttpFetch(server_->port(), "GET", "/nope");
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.status, 404);
}

TEST_F(HttpServerTest, MalformedRequestLineIs400) {
  StartServer();
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server_->port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const char garbage[] = "this is not http\r\n\r\n";
  ASSERT_GT(::send(fd, garbage, sizeof(garbage) - 1, 0), 0);
  std::string response;
  char buffer[1024];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(response.find("HTTP/1.1 400"), std::string::npos);
}

TEST_F(HttpServerTest, OversizedRequestIs413) {
  HttpServer::Options options;
  options.max_request_bytes = 256;
  server_ = std::make_unique<HttpServer>(options);
  server_->Handle("/hello", [](const HttpRequest&) { return HttpResponse(); });
  ASSERT_TRUE(server_->Start().ok());
  auto result = HttpFetch(server_->port(), "POST", "/hello",
                          std::string(4096, 'x'));
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.status, 413);
}

/// Connects and sends `partial` without ever completing the request, then
/// reads whatever the server eventually answers. Returns the raw response.
std::string HalfSendAndRead(uint16_t port, const std::string& partial) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  EXPECT_GT(::send(fd, partial.data(), partial.size(), 0), 0);
  std::string response;
  char buffer[1024];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST_F(HttpServerTest, SlowlorisHeadersGet408) {
  HttpServer::Options options;
  options.io_deadline_ms = 300;
  server_ = std::make_unique<HttpServer>(options);
  server_->Handle("/hello", [](const HttpRequest&) { return HttpResponse(); });
  ASSERT_TRUE(server_->Start().ok());
  // Headers never finish (no terminating blank line).
  std::string response =
      HalfSendAndRead(server_->port(), "GET /hello HTTP/1.1\r\nHost: x\r\n");
  EXPECT_NE(response.find("HTTP/1.1 408"), std::string::npos) << response;
}

TEST_F(HttpServerTest, SlowlorisBodyGets408) {
  HttpServer::Options options;
  options.io_deadline_ms = 300;
  server_ = std::make_unique<HttpServer>(options);
  server_->Handle("/grade", [](const HttpRequest&) { return HttpResponse(); });
  ASSERT_TRUE(server_->Start().ok());
  // Headers promise a body that never arrives in full.
  std::string response = HalfSendAndRead(
      server_->port(),
      "POST /grade HTTP/1.1\r\nHost: x\r\nContent-Length: 1000\r\n\r\nhalf");
  EXPECT_NE(response.find("HTTP/1.1 408"), std::string::npos) << response;
}

TEST_F(HttpServerTest, HalfSentRequestCannotOccupyTheOnlyWorkerForever) {
  // One connection worker and a stuck client: without the I/O deadline the
  // half-sent request would park the worker indefinitely and the healthy
  // request below would never be served.
  HttpServer::Options options;
  options.workers = 1;
  options.io_deadline_ms = 300;
  server_ = std::make_unique<HttpServer>(options);
  server_->Handle("/hello", [](const HttpRequest&) {
    HttpResponse response;
    response.body = "hi\n";
    return response;
  });
  ASSERT_TRUE(server_->Start().ok());

  std::thread stuck([this] {
    HalfSendAndRead(server_->port(), "GET /hello HTTP/1.1\r\n");
  });
  // Give the stuck connection time to claim the lone worker, then demand
  // service. HttpFetch blocks until the 408 frees the slot; transport-level
  // success + 200 here is exactly the "slot freed" guarantee.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  auto result = HttpFetch(server_->port(), "GET", "/hello");
  stuck.join();
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.status, 200);
  EXPECT_EQ(result.body, "hi\n");
}

TEST_F(HttpServerTest, ConcurrentClientsAllGetAnswers) {
  StartServer();
  constexpr int kThreads = 8;
  constexpr int kRequestsPerThread = 10;
  std::vector<std::thread> clients;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([this, t, &failures] {
      for (int i = 0; i < kRequestsPerThread; ++i) {
        auto result = HttpFetch(server_->port(), "GET", "/hello");
        if (!result.ok || result.status != 200 || result.body != "hi\n") {
          ++failures[t];
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[t], 0) << t;
}

TEST_F(HttpServerTest, StopIsIdempotentAndRefusesSecondStart) {
  StartServer();
  uint16_t port = server_->port();
  EXPECT_TRUE(server_->serving());
  EXPECT_FALSE(server_->Start().ok());  // Already started.
  server_->Stop();
  EXPECT_FALSE(server_->serving());
  server_->Stop();  // Second Stop is a no-op.
  // The port is actually released: no one answers anymore.
  auto result = HttpFetch(port, "GET", "/hello");
  EXPECT_FALSE(result.ok);
}

TEST(HttpStatusTextTest, KnownAndUnknownCodes) {
  EXPECT_STREQ(HttpStatusText(200), "OK");
  EXPECT_STREQ(HttpStatusText(404), "Not Found");
  EXPECT_STREQ(HttpStatusText(503), "Service Unavailable");
  // Unknown codes still produce a non-empty reason phrase.
  EXPECT_NE(HttpStatusText(299)[0], '\0');
}

#else  // JFEED_OBS_DISABLED

TEST(HttpServerStubTest, StartFailsLoudly) {
  HttpServer server;
  server.Handle("/metrics", [](const HttpRequest&) { return HttpResponse(); });
  Status status = server.Start();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("compiled out"), std::string::npos);
  EXPECT_FALSE(server.serving());
  EXPECT_EQ(server.port(), 0);
  server.Stop();
}

#endif  // JFEED_OBS_DISABLED

}  // namespace
}  // namespace jfeed::obs
