#include "obs/trace_context.h"

#include <set>
#include <string>

#include "gtest/gtest.h"
#include "obs/metrics.h"

// W3C trace-context propagation tests. TraceContext is deliberately
// available in both JFEED_OBS modes (it is plain string/arithmetic code),
// so everything here runs under JFEED_OBS=OFF too — only the
// jfeed_trace_context_invalid_total counter assertions are gated, because
// the metrics stubs swallow increments in that mode.

namespace jfeed::obs {
namespace {

constexpr char kValid[] =
    "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01";

TEST(TraceContextTest, MintedContextsAreValidRootsAndDistinct) {
  std::set<std::string> seen;
  for (int i = 0; i < 64; ++i) {
    TraceContext ctx = MintTraceContext();
    EXPECT_TRUE(ctx.valid());
    EXPECT_EQ(ctx.span_id, 0u);  // A minted context is a root: no parent.
    seen.insert(TraceIdHex(ctx));
  }
  EXPECT_EQ(seen.size(), 64u);
}

TEST(TraceContextTest, HexRenderingIsFixedWidthLowercase) {
  TraceContext ctx;
  ctx.trace_hi = 0x4bf92f3577b34da6ULL;
  ctx.trace_lo = 0xa3ce929d0e0e4736ULL;
  EXPECT_EQ(TraceIdHex(ctx), "4bf92f3577b34da6a3ce929d0e0e4736");
  EXPECT_EQ(SpanIdHex(0x00f067aa0ba902b7ULL), "00f067aa0ba902b7");
  // Small values pad to full width — the ids are fixed-width join keys.
  ctx.trace_hi = 0;
  ctx.trace_lo = 0xb7;
  EXPECT_EQ(TraceIdHex(ctx), "000000000000000000000000000000b7");
  EXPECT_EQ(SpanIdHex(1), "0000000000000001");
}

TEST(TraceContextTest, FormatParseRoundTrip) {
  TraceContext ctx;
  ctx.trace_hi = 0x4bf92f3577b34da6ULL;
  ctx.trace_lo = 0xa3ce929d0e0e4736ULL;
  ctx.span_id = 0x00f067aa0ba902b7ULL;
  std::string header = FormatTraceparent(ctx);
  EXPECT_EQ(header, kValid);

  TraceContext parsed;
  ASSERT_TRUE(ParseTraceparent(header, &parsed));
  EXPECT_EQ(parsed.trace_hi, ctx.trace_hi);
  EXPECT_EQ(parsed.trace_lo, ctx.trace_lo);
  EXPECT_EQ(parsed.span_id, ctx.span_id);
}

TEST(TraceContextTest, RootContextRendersTraceLowWordAsParent) {
  // W3C forbids an all-zero parent-id, so a root (span_id == 0) renders
  // with the trace id's low word standing in — and still parses as valid.
  TraceContext root = MintTraceContext();
  TraceContext parsed;
  ASSERT_TRUE(ParseTraceparent(FormatTraceparent(root), &parsed));
  EXPECT_EQ(parsed.trace_hi, root.trace_hi);
  EXPECT_EQ(parsed.trace_lo, root.trace_lo);
  EXPECT_EQ(parsed.span_id, root.trace_lo);
}

TEST(TraceContextTest, RejectsTruncatedHeaders) {
  TraceContext out;
  EXPECT_FALSE(ParseTraceparent("", &out));
  EXPECT_FALSE(ParseTraceparent("00", &out));
  EXPECT_FALSE(ParseTraceparent("00-4bf92f35", &out));
  // One character short of the version-00 length.
  EXPECT_FALSE(
      ParseTraceparent(std::string(kValid).substr(0, 54), &out));
  // Version 00 must be exactly 55 characters: no trailing data.
  EXPECT_FALSE(ParseTraceparent(std::string(kValid) + "-x", &out));
}

TEST(TraceContextTest, RejectsAllZeroTraceAndParentIds) {
  TraceContext out;
  EXPECT_FALSE(ParseTraceparent(
      "00-00000000000000000000000000000000-00f067aa0ba902b7-01", &out));
  EXPECT_FALSE(ParseTraceparent(
      "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", &out));
}

TEST(TraceContextTest, RejectsForbiddenAndMalformedVersions) {
  TraceContext out;
  // Version ff is explicitly forbidden by the spec.
  EXPECT_FALSE(ParseTraceparent(
      "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", &out));
  // Uppercase hex anywhere is invalid (W3C requires lowercase).
  EXPECT_FALSE(ParseTraceparent(
      "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", &out));
  EXPECT_FALSE(ParseTraceparent(
      "00-4bf92f3577b34da6a3ce929d0e0e4736-00F067AA0BA902B7-01", &out));
  // Garbage version / separators.
  EXPECT_FALSE(ParseTraceparent(
      "zz-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", &out));
  EXPECT_FALSE(ParseTraceparent(
      "00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", &out));
}

TEST(TraceContextTest, AcceptsWellFormedFutureVersions) {
  TraceContext out;
  // A future version is read through its version-00 prefix…
  ASSERT_TRUE(ParseTraceparent(
      "cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", &out));
  EXPECT_EQ(out.span_id, 0x00f067aa0ba902b7ULL);
  // …including when it appends dash-separated extra fields…
  EXPECT_TRUE(ParseTraceparent(
      "cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra",
      &out));
  // …but longer headers must continue with a dash right after the prefix.
  EXPECT_FALSE(ParseTraceparent(
      "cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01extra",
      &out));
}

TEST(TraceContextTest, ContextFromHeaderAdoptsValidHeaders) {
  TraceContext ctx = ContextFromHeader(kValid);
  EXPECT_EQ(TraceIdHex(ctx), "4bf92f3577b34da6a3ce929d0e0e4736");
  EXPECT_EQ(ctx.span_id, 0x00f067aa0ba902b7ULL);
}

TEST(TraceContextTest, ContextFromHeaderMintsOnMissingOrInvalid) {
  // Missing header: a fresh root, not a failure.
  TraceContext minted = ContextFromHeader("");
  EXPECT_TRUE(minted.valid());
  EXPECT_EQ(minted.span_id, 0u);
  // Invalid header: also a fresh root — the grade is never rejected over a
  // bad traceparent — and distinct from the garbage input.
  TraceContext recovered = ContextFromHeader("00-garbage");
  EXPECT_TRUE(recovered.valid());
}

#ifndef JFEED_OBS_DISABLED

TEST(TraceContextTest, InvalidHeadersAreCountedValidAndMissingAreNot) {
  Registry::Global().ResetForTest();
  Registry::Global().set_enabled(true);
  Counter* invalid = Registry::Global().GetCounter(
      "jfeed_trace_context_invalid_total",
      "traceparent headers rejected by W3C validation", {});
  EXPECT_EQ(invalid->Value(), 0);

  ContextFromHeader("");  // Absent: nothing to reject.
  EXPECT_EQ(invalid->Value(), 0);
  ContextFromHeader(kValid);  // Valid: adopted.
  EXPECT_EQ(invalid->Value(), 0);

  ContextFromHeader("00-truncated");
  ContextFromHeader(
      "00-00000000000000000000000000000000-00f067aa0ba902b7-01");
  ContextFromHeader(
      "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01");
  EXPECT_EQ(invalid->Value(), 3);

  Registry::Global().set_enabled(false);
  Registry::Global().ResetForTest();
}

#endif  // JFEED_OBS_DISABLED

}  // namespace
}  // namespace jfeed::obs
