#include "obs/event_log.h"

#include <cstdint>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.h"

// Flight-recorder tests. The NDJSON schema (field names + round-trip) is
// part of the monitoring contract (DESIGN.md §6b), so the round-trip test
// below touches every WideEvent field on purpose: a field silently dropped
// from ToJson or FromJson fails here, not on a dashboard.

namespace jfeed::obs {
namespace {

/// One event with every field set to a distinct, non-default value.
WideEvent FullEvent() {
  WideEvent e;
  e.seq = 41;  // Overwritten by Append; meaningful for bare ToJson.
  e.unix_ms = 1754500000123;
  e.submission_id = "s-17 \"quoted\" \\ tab\there\nnewline";
  e.trace_id = "4bf92f3577b34da6a3ce929d0e0e4736";
  e.span_id = "00f067aa0ba902b7";
  e.assignment = "assignment-1";
  e.verdict = "incorrect";
  e.tier = "full_epdg";
  e.failure_class = "wrong_output";
  e.cache = "miss";
  e.degraded = true;
  e.diagnostic = "functional: 2/5 failed";
  e.score = 3.5;
  e.match_steps = 1234;
  e.match_regex_checks = 56;
  e.interp_steps = 7890;
  e.interp_heap_bytes = 65536;
  e.interp_output_bytes = 321;
  e.functional_tests_run = 5;
  e.functional_tests_failed = 2;
  e.arena_bytes_peak = 49152;
  e.methods_reused = 2;
  e.methods_regraded = 1;
  e.parse_ms = 0.125;
  e.epdg_ms = 1.5;
  e.match_ms = 2.25;
  e.functional_ms = 10.75;
  return e;
}

TEST(WideEventJsonTest, EveryFieldRoundTripsThroughNdjson) {
  WideEvent original = FullEvent();
  std::string line = ToJson(original);
  // NDJSON: exactly one line, no embedded raw newlines.
  EXPECT_EQ(line.find('\n'), std::string::npos);

  WideEvent parsed;
  ASSERT_TRUE(FromJson(line, &parsed));
  EXPECT_EQ(parsed.seq, original.seq);
  EXPECT_EQ(parsed.unix_ms, original.unix_ms);
  EXPECT_EQ(parsed.submission_id, original.submission_id);
  EXPECT_EQ(parsed.trace_id, original.trace_id);
  EXPECT_EQ(parsed.span_id, original.span_id);
  EXPECT_EQ(parsed.assignment, original.assignment);
  EXPECT_EQ(parsed.verdict, original.verdict);
  EXPECT_EQ(parsed.tier, original.tier);
  EXPECT_EQ(parsed.failure_class, original.failure_class);
  EXPECT_EQ(parsed.cache, original.cache);
  EXPECT_EQ(parsed.degraded, original.degraded);
  EXPECT_EQ(parsed.diagnostic, original.diagnostic);
  EXPECT_DOUBLE_EQ(parsed.score, original.score);
  EXPECT_EQ(parsed.match_steps, original.match_steps);
  EXPECT_EQ(parsed.match_regex_checks, original.match_regex_checks);
  EXPECT_EQ(parsed.interp_steps, original.interp_steps);
  EXPECT_EQ(parsed.interp_heap_bytes, original.interp_heap_bytes);
  EXPECT_EQ(parsed.interp_output_bytes, original.interp_output_bytes);
  EXPECT_EQ(parsed.functional_tests_run, original.functional_tests_run);
  EXPECT_EQ(parsed.functional_tests_failed,
            original.functional_tests_failed);
  EXPECT_EQ(parsed.arena_bytes_peak, original.arena_bytes_peak);
  EXPECT_EQ(parsed.methods_reused, original.methods_reused);
  EXPECT_EQ(parsed.methods_regraded, original.methods_regraded);
  EXPECT_DOUBLE_EQ(parsed.parse_ms, original.parse_ms);
  EXPECT_DOUBLE_EQ(parsed.epdg_ms, original.epdg_ms);
  EXPECT_DOUBLE_EQ(parsed.match_ms, original.match_ms);
  EXPECT_DOUBLE_EQ(parsed.functional_ms, original.functional_ms);
}

TEST(WideEventJsonTest, ContractFieldNamesArePresent) {
  // Renaming any of these is a breaking change to the /events consumers;
  // this test is the tripwire (see DESIGN.md §6b).
  std::string line = ToJson(WideEvent());
  for (const char* field :
       {"\"seq\":", "\"unix_ms\":", "\"id\":", "\"trace_id\":",
        "\"span_id\":", "\"assignment\":",
        "\"verdict\":", "\"tier\":", "\"failure_class\":", "\"cache\":",
        "\"degraded\":", "\"diagnostic\":", "\"score\":", "\"match_steps\":",
        "\"match_regex_checks\":", "\"interp_steps\":",
        "\"interp_heap_bytes\":", "\"interp_output_bytes\":",
        "\"functional_tests_run\":", "\"functional_tests_failed\":",
        "\"arena_bytes_peak\":", "\"methods_reused\":",
        "\"methods_regraded\":", "\"parse_ms\":", "\"epdg_ms\":",
        "\"match_ms\":", "\"functional_ms\":"}) {
    EXPECT_NE(line.find(field), std::string::npos) << field;
  }
}

TEST(WideEventJsonTest, FromJsonIgnoresUnknownFieldsAndRejectsGarbage) {
  WideEvent e;
  ASSERT_TRUE(FromJson(
      "{\"verdict\":\"correct\",\"future_field\":\"x\",\"future_num\":7,"
      "\"future_flag\":true}",
      &e));
  EXPECT_EQ(e.verdict, "correct");

  EXPECT_FALSE(FromJson("", &e));
  EXPECT_FALSE(FromJson("not json", &e));
  EXPECT_FALSE(FromJson("[1,2,3]", &e));
  EXPECT_FALSE(FromJson("{\"verdict\":", &e));
}

#ifndef JFEED_OBS_DISABLED

class EventLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::Global().ResetForTest();
    Registry::Global().set_enabled(true);
    EventLog::Global().Clear();
    EventLog::Global().SetCapacity(EventLog::kDefaultCapacity);
    EventLog::Global().set_enabled(true);
  }
  void TearDown() override {
    EventLog::Global().set_enabled(false);
    EventLog::Global().Clear();
    Registry::Global().set_enabled(false);
    Registry::Global().ResetForTest();
  }
};

TEST_F(EventLogTest, AppendStampsDenseSequenceNumbers) {
  WideEvent e;
  e.verdict = "correct";
  EventLog::Global().Append(e);
  EventLog::Global().Append(e);
  auto events = EventLog::Global().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].seq, 1u);
  EXPECT_EQ(events[1].seq, 2u);
}

TEST_F(EventLogTest, DisabledLogRecordsNothing) {
  EventLog::Global().set_enabled(false);
  EventLog::Global().Append(WideEvent());
  EXPECT_EQ(EventLog::Global().size(), 0u);
}

TEST_F(EventLogTest, OverflowKeepsNewestAndCountsDropsInContractMetric) {
  EventLog::Global().SetCapacity(4);
  Counter* dropped_total = Registry::Global().GetCounter(
      "jfeed_events_dropped_total",
      "Flight-recorder wide events overwritten by ring wrap-around");
  int64_t before = dropped_total->Value();

  for (int i = 0; i < 10; ++i) {
    WideEvent e;
    e.submission_id = "s-" + std::to_string(i);
    EventLog::Global().Append(e);
  }

  auto events = EventLog::Global().Snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest-to-newest: the last four appends survived, in order.
  EXPECT_EQ(events[0].submission_id, "s-6");
  EXPECT_EQ(events[3].submission_id, "s-9");
  EXPECT_EQ(events[0].seq, 7u);
  EXPECT_EQ(events[3].seq, 10u);
  EXPECT_EQ(EventLog::Global().DroppedCount(), 6);
  // The documented contract metric moved by exactly the drop count.
  EXPECT_EQ(dropped_total->Value() - before, 6);
}

TEST_F(EventLogTest, RenderNdjsonEmitsOneParsableLinePerEventNewestLast) {
  for (int i = 0; i < 3; ++i) {
    WideEvent e = FullEvent();
    e.submission_id = "s-" + std::to_string(i);
    EventLog::Global().Append(e);
  }
  std::string ndjson = EventLog::Global().RenderNdjson();
  std::vector<std::string> lines;
  size_t pos = 0;
  while (pos < ndjson.size()) {
    size_t eol = ndjson.find('\n', pos);
    ASSERT_NE(eol, std::string::npos);  // Every record newline-terminated.
    lines.push_back(ndjson.substr(pos, eol - pos));
    pos = eol + 1;
  }
  ASSERT_EQ(lines.size(), 3u);
  for (size_t i = 0; i < lines.size(); ++i) {
    WideEvent parsed;
    ASSERT_TRUE(FromJson(lines[i], &parsed)) << lines[i];
    EXPECT_EQ(parsed.submission_id, "s-" + std::to_string(i));
    // The routing key the multi-tenant /events filter keys on must survive
    // the ring + render round-trip, not just bare ToJson/FromJson.
    EXPECT_EQ(parsed.assignment, "assignment-1");
  }

  // limit keeps only the newest N records.
  std::string limited = EventLog::Global().RenderNdjson(1);
  WideEvent last;
  ASSERT_TRUE(FromJson(limited, &last));
  EXPECT_EQ(last.submission_id, "s-2");
}

TEST_F(EventLogTest, SetCapacityKeepsNewestEvents) {
  for (int i = 0; i < 6; ++i) {
    WideEvent e;
    e.submission_id = "s-" + std::to_string(i);
    EventLog::Global().Append(e);
  }
  EventLog::Global().SetCapacity(2);
  auto events = EventLog::Global().Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].submission_id, "s-4");
  EXPECT_EQ(events[1].submission_id, "s-5");
  EXPECT_EQ(EventLog::Global().capacity(), 2u);
}

#else  // JFEED_OBS_DISABLED

TEST(EventLogStubTest, StubsCompileAndDoNothing) {
  EventLog& log = EventLog::Global();
  log.set_enabled(true);
  EXPECT_FALSE(log.enabled());
  log.Append(WideEvent());
  EXPECT_EQ(log.size(), 0u);
  EXPECT_TRUE(log.Snapshot().empty());
  EXPECT_EQ(log.RenderNdjson(), "");
  EXPECT_EQ(log.DroppedCount(), 0);
}

#endif  // JFEED_OBS_DISABLED

}  // namespace
}  // namespace jfeed::obs
