#include "obs/slo.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.h"

// SLO / error-budget tests. All time flows through explicit now_s values
// (SloTracker takes the clock as a parameter for exactly this reason), so
// window roll-over and burn-rate math are exercised without sleeping. The
// accounting itself is mode-independent; only the jfeed_slo_* metric
// assertions are gated on JFEED_OBS, since the stubs swallow writes.

namespace jfeed::obs {
namespace {

/// A policy with small, hand-checkable numbers: 10% error budget
/// (target 900000 ppm), 100 ms latency objective, 60 s budget window,
/// 10 s fast / 30 s slow burn windows, alerts armed after 4 events.
SloPolicy TestPolicy() {
  SloPolicy p;
  p.latency_threshold_us = 100'000;
  p.availability_target_ppm = 900'000;
  p.window_s = 60;
  p.fast_window_s = 10;
  p.slow_window_s = 30;
  p.fast_burn_threshold_milli = 14'000;
  p.slow_burn_threshold_milli = 6'000;
  p.min_events = 4;
  return p;
}

class SloTrackerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::Global().ResetForTest();
    Registry::Global().set_enabled(true);
    tracker_.Configure(TestPolicy());
  }
  void TearDown() override {
    tracker_.Disable();
    Registry::Global().set_enabled(false);
    Registry::Global().ResetForTest();
  }

  SloTracker tracker_;
};

TEST_F(SloTrackerTest, DisabledTrackerRecordsNothing) {
  SloTracker off;
  EXPECT_FALSE(off.enabled());
  off.RecordGrade("assignment1", 50'000, 100);
  off.RecordShed("assignment1", 100);
  EXPECT_TRUE(off.Snapshot(100).empty());
  EXPECT_FALSE(off.FastBurnAny(100));
}

TEST_F(SloTrackerTest, ConfigureDropsPriorState) {
  tracker_.RecordGrade("assignment1", 50'000, 100);
  ASSERT_EQ(tracker_.Snapshot(100).size(), 1u);
  tracker_.Configure(TestPolicy());
  EXPECT_TRUE(tracker_.Snapshot(100).empty());
}

TEST_F(SloTrackerTest, LatencyClassifiesGoodAndBad) {
  // At the threshold is good; over it burns budget.
  tracker_.RecordGrade("assignment1", 100'000, 100);
  tracker_.RecordGrade("assignment1", 100'001, 100);
  tracker_.RecordGrade("assignment1", 1, 100);

  auto snaps = tracker_.Snapshot(100);
  ASSERT_EQ(snaps.size(), 1u);
  const AssignmentSlo& s = snaps[0];
  EXPECT_EQ(s.assignment, "assignment1");
  EXPECT_EQ(s.events_total, 3);
  EXPECT_EQ(s.good_total, 2);
  EXPECT_EQ(s.bad_total, 1);
  EXPECT_EQ(s.shed_total, 0);
  EXPECT_EQ(s.window_events, 3);
  EXPECT_EQ(s.window_bad, 1);
}

TEST_F(SloTrackerTest, ShedsAreAlwaysBadAndCountedSeparately) {
  tracker_.RecordGrade("assignment1", 1, 100);
  tracker_.RecordShed("assignment1", 100);
  tracker_.RecordShed("assignment1", 100);

  auto snaps = tracker_.Snapshot(100);
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].bad_total, 2);
  EXPECT_EQ(snaps[0].shed_total, 2);
  EXPECT_EQ(snaps[0].good_total, 1);
}

TEST_F(SloTrackerTest, BudgetArithmeticMatchesHandComputation) {
  // 20 events, 1 bad, 10% budget: consumed_ppm = 1e6 * (1/20) / 0.10 =
  // 500000 — exactly half the budget gone.
  for (int i = 0; i < 19; ++i) tracker_.RecordGrade("a", 1, 100);
  tracker_.RecordGrade("a", 200'000, 100);

  auto snaps = tracker_.Snapshot(100);
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].window_events, 20);
  EXPECT_EQ(snaps[0].window_bad, 1);
  EXPECT_EQ(snaps[0].budget_consumed_ppm, 500'000);
  EXPECT_EQ(snaps[0].budget_remaining_ppm, 500'000);
  // Burn rate over both windows: (1/20) / 0.10 = 0.5x = 500 milli.
  EXPECT_EQ(snaps[0].burn_rate_fast_milli, 500);
  EXPECT_EQ(snaps[0].burn_rate_slow_milli, 500);
  EXPECT_FALSE(snaps[0].fast_burn);
}

TEST_F(SloTrackerTest, BlownBudgetClampsRemainingAtZero) {
  // All-bad traffic: consumed = 1e6 / 0.10 = 10,000,000 ppm — ten times
  // the budget. Remaining clamps at zero; consumed reports the overshoot.
  for (int i = 0; i < 8; ++i) tracker_.RecordShed("a", 100);
  auto snaps = tracker_.Snapshot(100);
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].budget_consumed_ppm, 10'000'000);
  EXPECT_EQ(snaps[0].budget_remaining_ppm, 0);
}

TEST_F(SloTrackerTest, FastBurnRequiresMinEvents) {
  // Three sheds: 100% bad, but below min_events=4 — no alert.
  for (int i = 0; i < 3; ++i) tracker_.RecordShed("a", 100);
  EXPECT_FALSE(tracker_.FastBurnAny(100));
  auto snaps = tracker_.Snapshot(100);
  EXPECT_FALSE(snaps[0].fast_burn);
  // min_events met, but all-bad traffic on a 10% budget burns at
  // 1.0/0.10 = 10x = 10000 milli — still under the 14000 milli fast
  // threshold, so the alert stays quiet on burn rate, not on volume.
  tracker_.RecordShed("a", 100);
  EXPECT_FALSE(tracker_.FastBurnAny(100));
}

TEST_F(SloTrackerTest, FastBurnFiresOverThresholdAndClearsAfterWindow) {
  // Loosen the budget so all-bad traffic burns >14x: target 950000 ppm
  // gives a 5% budget; all-bad burn = 1/0.05 = 20x = 20000 milli.
  SloPolicy p = TestPolicy();
  p.availability_target_ppm = 950'000;
  tracker_.Configure(p);

  for (int i = 0; i < 5; ++i) tracker_.RecordShed("a", 100);
  EXPECT_TRUE(tracker_.FastBurnAny(100));
  auto snaps = tracker_.Snapshot(100);
  EXPECT_EQ(snaps[0].burn_rate_fast_milli, 20'000);
  EXPECT_TRUE(snaps[0].fast_burn);
  EXPECT_TRUE(snaps[0].slow_burn);

  // Advance past the fast window (10 s): the alert clears on its own.
  EXPECT_FALSE(tracker_.FastBurnAny(100 + 11));
  // ...and past the slow window too.
  auto later = tracker_.Snapshot(100 + 31);
  EXPECT_FALSE(later[0].fast_burn);
  EXPECT_FALSE(later[0].slow_burn);
  // Cumulative totals survive the roll-over even as windows empty.
  EXPECT_EQ(later[0].shed_total, 5);
}

TEST_F(SloTrackerTest, WindowRollOverExpiresOldEvents) {
  tracker_.RecordShed("a", 100);
  tracker_.RecordGrade("a", 1, 100);
  auto now = tracker_.Snapshot(100);
  EXPECT_EQ(now[0].window_events, 2);

  // One second past the 60 s budget window: both events age out.
  auto later = tracker_.Snapshot(100 + 61);
  EXPECT_EQ(later[0].window_events, 0);
  EXPECT_EQ(later[0].window_bad, 0);
  EXPECT_EQ(later[0].budget_consumed_ppm, 0);
  EXPECT_EQ(later[0].budget_remaining_ppm, 1'000'000);
  // Cumulative counters are forever.
  EXPECT_EQ(later[0].events_total, 2);

  // The ring laps: an event 60+ s later lands on a recycled slot and must
  // not resurrect the old slot's counts.
  tracker_.RecordGrade("a", 1, 100 + 60);
  auto relapped = tracker_.Snapshot(100 + 60);
  EXPECT_EQ(relapped[0].window_events, 1);
  EXPECT_EQ(relapped[0].window_bad, 0);
}

TEST_F(SloTrackerTest, TenantsAreIndependentAndSorted) {
  tracker_.RecordGrade("zeta", 1, 100);
  tracker_.RecordShed("alpha", 100);
  auto snaps = tracker_.Snapshot(100);
  ASSERT_EQ(snaps.size(), 2u);
  EXPECT_EQ(snaps[0].assignment, "alpha");
  EXPECT_EQ(snaps[1].assignment, "zeta");
  EXPECT_EQ(snaps[0].bad_total, 1);
  EXPECT_EQ(snaps[1].bad_total, 0);
}

TEST_F(SloTrackerTest, RenderSlozJsonCarriesPolicyAndBudgets) {
  tracker_.RecordGrade("assignment1", 1, 100);
  tracker_.RecordShed("assignment1", 100);
  std::string json = tracker_.RenderSlozJson(100);

  EXPECT_NE(json.find("\"policy\":"), std::string::npos);
  EXPECT_NE(json.find("\"latency_threshold_us\":100000"), std::string::npos);
  EXPECT_NE(json.find("\"availability_target_ppm\":900000"),
            std::string::npos);
  EXPECT_NE(json.find("\"assignments\":["), std::string::npos);
  EXPECT_NE(json.find("\"assignment\":\"assignment1\""), std::string::npos);
  EXPECT_NE(json.find("\"budget_remaining_ppm\":"), std::string::npos);
  EXPECT_NE(json.find("\"burn_rate_fast_milli\":"), std::string::npos);
  EXPECT_NE(json.find("\"shed_total\":1"), std::string::npos);
}

#ifndef JFEED_OBS_DISABLED

TEST_F(SloTrackerTest, SnapshotExportsContractMetrics) {
  tracker_.RecordGrade("assignment1", 1, 100);
  tracker_.RecordGrade("assignment1", 200'000, 100);  // Burns budget.

  std::string text = Registry::Global().Render();
  EXPECT_NE(text.find("jfeed_slo_budget_remaining_ppm{"
                      "assignment=\"assignment1\"}"),
            std::string::npos);
  EXPECT_NE(
      text.find("jfeed_slo_burn_rate_milli{assignment=\"assignment1\","
                "window=\"fast\"}"),
      std::string::npos);
  EXPECT_NE(
      text.find("jfeed_slo_burn_rate_milli{assignment=\"assignment1\","
                "window=\"slow\"}"),
      std::string::npos);
  EXPECT_NE(text.find("jfeed_slo_fast_burn{assignment=\"assignment1\"}"),
            std::string::npos);
  EXPECT_NE(
      text.find("jfeed_slo_events_total{assignment=\"assignment1\","
                "result=\"good\"} 1"),
      std::string::npos);
  EXPECT_NE(
      text.find("jfeed_slo_events_total{assignment=\"assignment1\","
                "result=\"bad\"} 1"),
      std::string::npos);
}

#endif  // JFEED_OBS_DISABLED

TEST(AggregateSlozTest, SumsWorkersAndRederivesBudget) {
  SloTracker a;
  SloTracker b;
  SloPolicy p = TestPolicy();
  a.Configure(p);
  b.Configure(p);
  // Worker 0: 3 good. Worker 1: 1 good + 1 shed. Combined: 5 events,
  // 1 bad -> consumed = 1e6 * (1/5) / 0.10 = 2,000,000 ppm (blown).
  a.RecordGrade("assignment1", 1, 100);
  a.RecordGrade("assignment1", 1, 100);
  a.RecordGrade("assignment1", 1, 100);
  b.RecordGrade("assignment1", 1, 100);
  b.RecordShed("assignment1", 100);

  std::string merged = AggregateSloz({{0, a.RenderSlozJson(100)},
                                      {1, b.RenderSlozJson(100)}});
  EXPECT_NE(merged.find("\"workers\":2"), std::string::npos);
  EXPECT_NE(merged.find("\"policy\":"), std::string::npos);
  EXPECT_NE(merged.find("\"assignment\":\"assignment1\""),
            std::string::npos);
  EXPECT_NE(merged.find("\"events_total\":5"), std::string::npos);
  EXPECT_NE(merged.find("\"good_total\":4"), std::string::npos);
  EXPECT_NE(merged.find("\"bad_total\":1"), std::string::npos);
  EXPECT_NE(merged.find("\"shed_total\":1"), std::string::npos);
  EXPECT_NE(merged.find("\"budget_consumed_ppm\":2000000"),
            std::string::npos);
  EXPECT_NE(merged.find("\"budget_remaining_ppm\":0"), std::string::npos);

  a.Disable();
  b.Disable();
}

TEST(AggregateSlozTest, SkipsGarbageBodiesAndSurvivesEmptyInput) {
  SloTracker a;
  a.Configure(TestPolicy());
  a.RecordGrade("assignment1", 1, 100);

  // A worker mid-restart answers garbage; the fleet view must not break.
  std::string merged = AggregateSloz({{0, "<html>503</html>"},
                                      {1, a.RenderSlozJson(100)},
                                      {2, ""}});
  EXPECT_NE(merged.find("\"workers\":1"), std::string::npos);
  EXPECT_NE(merged.find("\"assignment\":\"assignment1\""),
            std::string::npos);

  std::string empty = AggregateSloz({});
  EXPECT_NE(empty.find("\"workers\":0"), std::string::npos);
  EXPECT_NE(empty.find("\"assignments\":["), std::string::npos);

  a.Disable();
}

}  // namespace
}  // namespace jfeed::obs
