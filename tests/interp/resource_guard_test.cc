// Resource-guard behaviour of the interpreter: every budget in ExecOptions
// must turn an adversarial program into a precise, classified error instead
// of an OOM, a hang, or a flood.

#include <gtest/gtest.h>

#include <chrono>

#include "interp/interpreter.h"
#include "javalang/parser.h"

namespace jfeed::interp {
namespace {

Result<ExecResult> RunMethod(const std::string& source,
                             const std::string& method,
                             const std::vector<Value>& args,
                             const ExecOptions& options) {
  auto unit = java::Parse(source);
  if (!unit.ok()) return unit.status();
  Interpreter interp(*unit);
  return interp.Call(method, args, options);
}

TEST(ResourceGuardTest, HugeArrayAllocationIsResourceExhausted) {
  ExecOptions options;
  options.max_heap_bytes = 1 << 20;  // 1 MiB.
  auto r = RunMethod("int f() { int[] a = new int[1073741824]; return 0; }",
                     "f", {}, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(r.status().message().find("heap budget"), std::string::npos);
}

TEST(ResourceGuardTest, AllocationLoopCannotDodgeBudgetByDroppingRefs) {
  // Each iteration drops the previous array; the budget is cumulative, so
  // the loop still exhausts it instead of churning forever.
  ExecOptions options;
  options.max_heap_bytes = 1 << 20;
  auto r = RunMethod(
      "int f() { int s = 0; while (true) { int[] a = new int[1000]; "
      "s = s + a.length; } return s; }",
      "f", {}, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(ResourceGuardTest, StringDoublingIsResourceExhausted) {
  ExecOptions options;
  options.max_heap_bytes = 1 << 20;
  auto r = RunMethod(
      "int f() { String s = \"x\"; while (true) { s = s + s; } return 0; }",
      "f", {}, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(ResourceGuardTest, OutputFloodIsResourceExhausted) {
  ExecOptions options;
  options.max_output_bytes = 4096;
  auto r = RunMethod(
      "void f() { while (true) { System.out.println(\"spam\"); } }", "f", {},
      options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(r.status().message().find("output budget"), std::string::npos);
}

TEST(ResourceGuardTest, WallClockDeadlineIsTimeout) {
  ExecOptions options;
  options.max_steps = 1ll << 40;  // Effectively unlimited steps.
  options.deadline_ms = 50;
  auto start = std::chrono::steady_clock::now();
  auto r = RunMethod("void f() { int i = 0; while (true) { i = i + 1; } }",
                     "f", {}, options);
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimeout);
  EXPECT_NE(r.status().message().find("deadline"), std::string::npos);
  // Generous bound: the deadline is 50ms, the check fires within a few
  // thousand steps of it; anything near seconds means the guard is broken.
  EXPECT_LT(elapsed.count(), 5000);
}

TEST(ResourceGuardTest, StepBudgetRemainsTimeout) {
  ExecOptions options;
  options.max_steps = 1000;
  auto r = RunMethod("void f() { while (true) { } }", "f", {}, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimeout);
}

TEST(ResourceGuardTest, UnlimitedBudgetsPreserveOldBehaviour) {
  ExecOptions options;
  options.max_heap_bytes = 0;
  options.max_output_bytes = 0;
  auto r = RunMethod(
      "int f() { int[] a = new int[100]; System.out.println(a.length); "
      "return a.length; }",
      "f", {}, options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->return_value.AsInt(), 100);
}

TEST(ResourceGuardTest, WellBehavedProgramFitsDefaultBudgets) {
  auto r = RunMethod(
      "int f() { int[] a = new int[64]; String s = \"\"; "
      "for (int i = 0; i < a.length; i++) { s = s + \"x\"; } "
      "System.out.println(s); return a.length; }",
      "f", {}, ExecOptions());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->return_value.AsInt(), 64);
}

}  // namespace
}  // namespace jfeed::interp
