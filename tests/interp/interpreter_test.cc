#include "interp/interpreter.h"

#include <gtest/gtest.h>

#include "javalang/parser.h"

namespace jfeed::interp {
namespace {

/// Parses `source`, runs `method` with `args`, and returns stdout.
std::string RunStdout(const std::string& source, const std::string& method,
                      const std::vector<Value>& args,
                      std::map<std::string, std::string> files = {}) {
  auto unit = java::Parse(source);
  EXPECT_TRUE(unit.ok()) << unit.status().ToString();
  Interpreter interp(*unit, std::move(files));
  auto result = interp.Call(method, args);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? result->stdout_text : "<error>";
}

Result<ExecResult> RunMethod(const std::string& source, const std::string& method,
                       const std::vector<Value>& args,
                       const ExecOptions& options = ExecOptions()) {
  auto unit = java::Parse(source);
  EXPECT_TRUE(unit.ok()) << unit.status().ToString();
  Interpreter interp(*unit);
  return interp.Call(method, args, options);
}

TEST(InterpreterTest, HelloWorld) {
  EXPECT_EQ(RunStdout("void f() { System.out.println(\"hello\"); }", "f", {}),
            "hello\n");
}

TEST(InterpreterTest, PrintVsPrintln) {
  EXPECT_EQ(RunStdout(
                "void f() { System.out.print(1); System.out.print(2); "
                "System.out.println(3); }",
                "f", {}),
            "123\n");
}

TEST(InterpreterTest, ArithmeticAndPrecedence) {
  auto r = RunMethod("int f() { return 2 + 3 * 4; }", "f", {});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->return_value.AsInt(), 14);
}

TEST(InterpreterTest, IntegerDivisionTruncates) {
  auto r = RunMethod("int f() { return 7 / 2; }", "f", {});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->return_value.AsInt(), 3);
}

TEST(InterpreterTest, DoubleDivision) {
  auto r = RunMethod("double f() { return 7.0 / 2; }", "f", {});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->return_value.AsDouble(), 3.5);
}

TEST(InterpreterTest, DivisionByZeroIsExecutionError) {
  auto r = RunMethod("int f(int x) { return 1 / x; }", "f", {Value::Int(0)});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kExecutionError);
  EXPECT_NE(r.status().message().find("by zero"), std::string::npos);
}

TEST(InterpreterTest, ModByZeroIsExecutionError) {
  auto r = RunMethod("int f(int x) { return 1 % x; }", "f", {Value::Int(0)});
  EXPECT_FALSE(r.ok());
}

TEST(InterpreterTest, WhileLoopSum) {
  auto r = RunMethod(
      "int f(int n) { int s = 0; int i = 1; while (i <= n) { s += i; i++; } "
      "return s; }",
      "f", {Value::Int(100)});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->return_value.AsInt(), 5050);
}

TEST(InterpreterTest, ForLoopFactorial) {
  auto r = RunMethod(
      "int f(int n) { int p = 1; for (int i = 1; i <= n; i++) p *= i; "
      "return p; }",
      "f", {Value::Int(6)});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->return_value.AsInt(), 720);
}

TEST(InterpreterTest, DoWhileExecutesBodyFirst) {
  auto r = RunMethod(
      "int f() { int i = 10; int n = 0; do { n++; } while (i < 5); "
      "return n; }",
      "f", {});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->return_value.AsInt(), 1);
}

TEST(InterpreterTest, BreakAndContinue) {
  auto r = RunMethod(
      "int f() { int s = 0; for (int i = 0; i < 10; i++) { "
      "if (i % 2 == 0) continue; if (i > 7) break; s += i; } return s; }",
      "f", {});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->return_value.AsInt(), 1 + 3 + 5 + 7);
}

TEST(InterpreterTest, InfiniteLoopHitsStepBudget) {
  ExecOptions options;
  options.max_steps = 10'000;
  auto r = RunMethod("void f() { while (true) { } }", "f", {}, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimeout);
}

TEST(InterpreterTest, ArrayAccessAndLength) {
  auto r = RunMethod(
      "int f(int[] a) { int s = 0; for (int i = 0; i < a.length; i++) "
      "s += a[i]; return s; }",
      "f", {Value::IntArray({1, 2, 3, 4})});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->return_value.AsInt(), 10);
}

TEST(InterpreterTest, ArrayOutOfBoundsIsExecutionError) {
  // This is exactly the Fig. 2a bug: `i <= a.length` walks past the end.
  auto r = RunMethod(
      "int f(int[] a) { int s = 0; for (int i = 0; i <= a.length; i++) "
      "s += a[i]; return s; }",
      "f", {Value::IntArray({1, 2})});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kExecutionError);
  EXPECT_NE(r.status().message().find("ArrayIndexOutOfBounds"),
            std::string::npos);
}

TEST(InterpreterTest, ArraysShareReferenceSemantics) {
  auto r = RunMethod(
      "int f(int[] a) { int[] b = a; b[0] = 99; return a[0]; }", "f",
      {Value::IntArray({1})});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->return_value.AsInt(), 99);
}

TEST(InterpreterTest, NewArrayDefaultInitialized) {
  auto r = RunMethod("int f() { int[] a = new int[5]; return a[3]; }", "f", {});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->return_value.AsInt(), 0);
}

TEST(InterpreterTest, NegativeArraySizeIsError) {
  EXPECT_FALSE(RunMethod("int f() { int[] a = new int[-1]; return 0; }", "f", {})
                   .ok());
}

TEST(InterpreterTest, StringConcatenation) {
  EXPECT_EQ(RunStdout(
                "void f(int x, int y) { System.out.print(\"O: \" + x + "
                "\", E: \" + y); }",
                "f", {Value::Int(3), Value::Int(8)}),
            "O: 3, E: 8");
}

TEST(InterpreterTest, DoublePrintsWithDecimalPoint) {
  EXPECT_EQ(RunStdout("void f() { System.out.println(4.0); }", "f", {}),
            "4.0\n");
  EXPECT_EQ(RunStdout("void f() { double d = 4; System.out.println(d); }",
                      "f", {}),
            "4.0\n");
}

TEST(InterpreterTest, BooleanPrinting) {
  EXPECT_EQ(RunStdout("void f() { System.out.println(1 < 2); }", "f", {}),
            "true\n");
}

TEST(InterpreterTest, MathBuiltins) {
  auto r = RunMethod("double f() { return Math.pow(2, 10); }", "f", {});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->return_value.AsDouble(), 1024.0);
  auto r2 = RunMethod("int f() { return (int) Math.floor(Math.log10(12345)); }",
                "f", {});
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->return_value.AsInt(), 4);
}

TEST(InterpreterTest, UserMethodCalls) {
  auto r = RunMethod(
      "int fact(int n) { int f = 1; for (int i = 1; i <= n; i++) f *= i; "
      "return f; }\n"
      "int f(int k) { return fact(k) + fact(3); }",
      "f", {Value::Int(4)});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->return_value.AsInt(), 30);
}

TEST(InterpreterTest, RecursionWorks) {
  auto r = RunMethod(
      "int fib(int n) { if (n <= 2) return 1; return fib(n - 1) + "
      "fib(n - 2); }",
      "fib", {Value::Int(10)});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->return_value.AsInt(), 55);
}

TEST(InterpreterTest, RunawayRecursionIsResourceExhaustion) {
  // Call-depth blowup is a *space* failure (each frame holds live state), so
  // it reports kResourceExhausted — distinguishable from deadline/step
  // timeouts downstream.
  auto r = RunMethod("int f(int n) { return f(n + 1); }", "f", {Value::Int(0)});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST(InterpreterTest, MissingMethodIsNotFound) {
  auto r = RunMethod("void f() { }", "g", {});
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(InterpreterTest, WrongArgumentCountIsError) {
  EXPECT_FALSE(RunMethod("void f(int x) { }", "f", {}).ok());
}

TEST(InterpreterTest, UndefinedVariableIsError) {
  auto r = RunMethod("int f() { return nope; }", "f", {});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("undefined variable"),
            std::string::npos);
}

TEST(InterpreterTest, ScopedShadowing) {
  auto r = RunMethod(
      "int f() { int x = 1; { int y = 10; x += y; } return x; }", "f", {});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->return_value.AsInt(), 11);
}

TEST(InterpreterTest, IntOverflowWrapsLikeJava) {
  auto r = RunMethod("int f() { int x = 2147483647; x += 1; return x; }", "f", {});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->return_value.AsInt(), -2147483648LL);
}

TEST(InterpreterTest, TernaryAndShortCircuit) {
  auto r = RunMethod("int f(int x) { return x > 0 && 10 / x > 1 ? 1 : 0; }", "f",
               {Value::Int(0)});
  ASSERT_TRUE(r.ok());  // Short circuit avoids the division by zero.
  EXPECT_EQ(r->return_value.AsInt(), 0);
}

TEST(InterpreterTest, IncrementSemantics) {
  auto r = RunMethod("int f() { int i = 5; int a = i++; int b = ++i; "
               "return a * 100 + b * 10 + i; }",
               "f", {});
  ASSERT_TRUE(r.ok());
  // a = 5, b = 7, i = 7.
  EXPECT_EQ(r->return_value.AsInt(), 5 * 100 + 7 * 10 + 7);
}

TEST(InterpreterTest, ScannerReadsInMemoryFile) {
  const char* kProgram = R"(
    void f() {
      Scanner s = new Scanner(new File("data.txt"));
      int sum = 0;
      while (s.hasNextInt()) {
        sum += s.nextInt();
      }
      s.close();
      System.out.println(sum);
    })";
  EXPECT_EQ(RunStdout(kProgram, "f", {}, {{"data.txt", "1 2 3 4 5"}}),
            "15\n");
}

TEST(InterpreterTest, ScannerMixedTokens) {
  const char* kProgram = R"(
    void f() {
      Scanner s = new Scanner(new File("r.txt"));
      String name = s.next();
      int year = s.nextInt();
      System.out.println(name + ":" + year);
    })";
  EXPECT_EQ(RunStdout(kProgram, "f", {}, {{"r.txt", "usain 2008"}}),
            "usain:2008\n");
}

TEST(InterpreterTest, ScannerMissingFileIsError) {
  auto unit = java::Parse(
      "void f() { Scanner s = new Scanner(new File(\"no.txt\")); }");
  ASSERT_TRUE(unit.ok());
  Interpreter interp(*unit);
  auto r = interp.Call("f", {});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("FileNotFoundException"),
            std::string::npos);
}

TEST(InterpreterTest, ScannerExhaustionIsError) {
  auto unit = java::Parse(
      "void f() { Scanner s = new Scanner(new File(\"d\")); s.next(); "
      "s.next(); }");
  ASSERT_TRUE(unit.ok());
  Interpreter interp(*unit, {{"d", "only_one"}});
  auto r = interp.Call("f", {});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("NoSuchElementException"),
            std::string::npos);
}

TEST(InterpreterTest, StringEqualsAndLength) {
  auto r = RunMethod(
      "boolean f(String a, String b) { return a.equals(b) && "
      "a.length() == 3; }",
      "f", {Value::Str("abc"), Value::Str("abc")});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->return_value.AsBool());
}

TEST(InterpreterTest, Figure2bCorrectSubmission) {
  const char* kSource = R"(
    void assignment1(int[] a) {
      int o = 0, e = 1;
      int i = 0;
      while (i < a.length) {
        if (i % 2 == 1)
          o += a[i];
        if (i % 2 == 0)
          e *= a[i];
        i++;
      }
      System.out.print(o + ", " + e);
    })";
  // a = {3, 5, 2, 4}: odd positions 5 + 4 = 9, even positions 3 * 2 = 6.
  EXPECT_EQ(RunStdout(kSource, "assignment1",
                      {Value::IntArray({3, 5, 2, 4})}),
            "9, 6");
}

TEST(InterpreterTest, Figure2aIncorrectSubmissionOutOfBounds) {
  const char* kSource = R"(
    void assignment1(int[] a) {
      int even = 0;
      int odd = 0;
      for (int i = 0; i <= a.length; i++) {
        if (i % 2 == 1)
          odd += a[i];
        if (i % 2 == 1)
          even *= a[i];
      }
      System.out.println(odd);
      System.out.println(even);
    })";
  auto unit = java::Parse(kSource);
  ASSERT_TRUE(unit.ok());
  Interpreter interp(*unit);
  // With an odd-length array the final iteration (i == a.length, odd)
  // dereferences a[a.length] and throws; with an even-length array the
  // submission is merely wrong (even stays 0), not crashing.
  auto r = interp.Call("assignment1", {Value::IntArray({3, 5, 2})});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kExecutionError);
  auto r2 = interp.Call("assignment1", {Value::IntArray({3, 5, 2, 4})});
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->stdout_text, "9\n0\n");
}

TEST(InterpreterTest, StepsAreReported) {
  auto r = RunMethod("void f() { for (int i = 0; i < 100; i++) { } }", "f", {});
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->steps, 100);
}

}  // namespace
}  // namespace jfeed::interp
