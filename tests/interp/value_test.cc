#include "interp/value.h"

#include <gtest/gtest.h>

namespace jfeed::interp {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.ToJavaString(), "null");
}

TEST(ValueTest, IntRendering) {
  EXPECT_EQ(Value::Int(42).ToJavaString(), "42");
  EXPECT_EQ(Value::Int(-7).ToJavaString(), "-7");
}

TEST(ValueTest, DoubleRenderingAlwaysHasDecimal) {
  EXPECT_EQ(Value::Double(4.0).ToJavaString(), "4.0");
  EXPECT_EQ(Value::Double(3.5).ToJavaString(), "3.5");
  EXPECT_EQ(Value::Double(-0.25).ToJavaString(), "-0.25");
}

TEST(ValueTest, CharRendersAsCharacter) {
  EXPECT_EQ(Value::Char('A').ToJavaString(), "A");
}

TEST(ValueTest, BoolRendering) {
  EXPECT_EQ(Value::Bool(true).ToJavaString(), "true");
  EXPECT_EQ(Value::Bool(false).ToJavaString(), "false");
}

TEST(ValueTest, NumericPredicates) {
  EXPECT_TRUE(Value::Int(1).is_numeric());
  EXPECT_TRUE(Value::Int(1).is_integral());
  EXPECT_TRUE(Value::Double(1).is_numeric());
  EXPECT_FALSE(Value::Double(1).is_integral());
  EXPECT_FALSE(Value::Str("x").is_numeric());
  EXPECT_FALSE(Value::Bool(true).is_numeric());
}

TEST(ValueTest, JavaEqualsMixedNumeric) {
  EXPECT_TRUE(Value::Int(2).JavaEquals(Value::Double(2.0)));
  EXPECT_TRUE(Value::Int(2).JavaEquals(Value::Long(2)));
  EXPECT_FALSE(Value::Int(2).JavaEquals(Value::Int(3)));
}

TEST(ValueTest, JavaEqualsStrings) {
  EXPECT_TRUE(Value::Str("a").JavaEquals(Value::Str("a")));
  EXPECT_FALSE(Value::Str("a").JavaEquals(Value::Str("b")));
  EXPECT_FALSE(Value::Str("1").JavaEquals(Value::Int(1)));
}

TEST(ValueTest, ArrayEqualityIsReference) {
  Value a = Value::IntArray({1, 2});
  Value b = Value::IntArray({1, 2});
  EXPECT_TRUE(a.JavaEquals(a));
  EXPECT_FALSE(a.JavaEquals(b));
}

TEST(ValueTest, ArrayFactories) {
  Value a = Value::IntArray({1, 2, 3});
  ASSERT_EQ(a.kind(), Value::Kind::kArray);
  EXPECT_EQ(a.AsArray()->elems.size(), 3u);
  EXPECT_EQ(a.AsArray()->elems[1].AsInt(), 2);
  Value d = Value::DoubleArray({1.5});
  EXPECT_EQ(d.AsArray()->elem_kind, java::TypeKind::kDouble);
  Value s = Value::StringArray({"x", "y"});
  EXPECT_EQ(s.AsArray()->elems[0].AsString(), "x");
}

TEST(ValueTest, AsDoubleConvertsIntegrals) {
  EXPECT_DOUBLE_EQ(Value::Int(3).AsDouble(), 3.0);
  EXPECT_EQ(Value::Double(3.9).AsInt(), 3);
}

TEST(ValueTest, ScannerState) {
  auto state = std::make_shared<ScannerState>();
  state->tokens = {"a", "b"};
  Value v = Value::Scanner(state);
  EXPECT_TRUE(v.AsScanner()->HasNext());
  state->pos = 2;
  EXPECT_FALSE(v.AsScanner()->HasNext());
  state->pos = 0;
  state->closed = true;
  EXPECT_FALSE(v.AsScanner()->HasNext());
}

}  // namespace
}  // namespace jfeed::interp
