// Unit tests for the hardened grading pipeline: the degradation ladder,
// failure classification, stage timings, batch isolation and the JSON
// rendering of outcomes.

#include <gtest/gtest.h>

#include "kb/assignments.h"
#include "service/pipeline.h"
#include "support/fault.h"

namespace jfeed::service {
namespace {

const kb::Assignment& Assignment1() {
  return kb::KnowledgeBase::Get().assignment("assignment1");
}

TEST(GradingPipelineTest, ReferenceSolutionIsCorrectAtFullTier) {
  GradingPipeline pipeline(Assignment1());
  GradingOutcome outcome = pipeline.Grade(Assignment1().Reference());
  EXPECT_EQ(outcome.verdict, Verdict::kCorrect);
  EXPECT_EQ(outcome.tier, FeedbackTier::kFullEpdg);
  EXPECT_EQ(outcome.stage_reached, Stage::kComplete);
  EXPECT_EQ(outcome.failure, FailureClass::kNone);
  EXPECT_FALSE(outcome.degraded());
  EXPECT_TRUE(outcome.functional_ran);
  EXPECT_TRUE(outcome.functional.passed);
  // Parse, EPDG, match and functional all ran and were timed.
  EXPECT_EQ(outcome.timings.size(), 4u);
}

TEST(GradingPipelineTest, GarbageDegradesToParseDiagnostic) {
  GradingPipeline pipeline(Assignment1());
  GradingOutcome outcome = pipeline.Grade("int f( { ][ this is not java");
  EXPECT_EQ(outcome.verdict, Verdict::kNotGraded);
  EXPECT_EQ(outcome.tier, FeedbackTier::kParseDiagnostic);
  EXPECT_EQ(outcome.failure, FailureClass::kParseError);
  EXPECT_TRUE(outcome.degraded());
  EXPECT_FALSE(outcome.diagnostic.empty());
}

TEST(GradingPipelineTest, WrongMethodCountIsSpecMismatch) {
  // Two-method spec, one-method submission: parses fine but cannot adhere.
  kb::Assignment two_methods = Assignment1();
  two_methods.spec.methods.push_back(two_methods.spec.methods[0]);
  GradingPipeline pipeline(two_methods);
  GradingOutcome outcome =
      pipeline.Grade("void assignment1(int[] a) { int x = 0; }");
  EXPECT_EQ(outcome.verdict, Verdict::kSpecMismatch);
  EXPECT_EQ(outcome.failure, FailureClass::kNone);
  EXPECT_FALSE(outcome.feedback.matched);
  EXPECT_FALSE(outcome.functional_ran);
}

TEST(GradingPipelineTest, EpdgFaultDegradesToAstOnlyFeedback) {
  fault::FaultConfig config;
  config.only_point = fault::points::kEpdgBuilder;
  fault::ScopedFaultInjection injection(config);

  GradingPipeline pipeline(Assignment1());
  GradingOutcome outcome = pipeline.Grade(Assignment1().Reference());
  EXPECT_EQ(outcome.tier, FeedbackTier::kAstOnly);
  EXPECT_EQ(outcome.failure, FailureClass::kInternalFault);
  EXPECT_TRUE(outcome.degraded());
  // Still graded: AST-only feedback covers every pattern use of the spec.
  EXPECT_NE(outcome.verdict, Verdict::kNotGraded);
  EXPECT_TRUE(outcome.feedback.matched);
  EXPECT_FALSE(outcome.feedback.comments.empty());
}

TEST(GradingPipelineTest, AstOnlyTierFindsReferencePatternsPresent) {
  fault::FaultConfig config;
  config.only_point = fault::points::kEpdgBuilder;
  fault::ScopedFaultInjection injection(config);

  GradingPipeline pipeline(Assignment1());
  GradingOutcome outcome = pipeline.Grade(Assignment1().Reference());
  ASSERT_EQ(outcome.tier, FeedbackTier::kAstOnly);
  // The reference realizes every expected pattern, so no comment may claim
  // a pattern is missing (kNotExpected) in the degraded tier either.
  for (const auto& comment : outcome.feedback.comments) {
    EXPECT_NE(comment.kind, core::FeedbackKind::kNotExpected)
        << comment.source_id << ": " << comment.message;
  }
}

TEST(GradingPipelineTest, MatcherFaultAlsoDegradesToAstOnly) {
  fault::FaultConfig config;
  config.only_point = fault::points::kMatcher;
  fault::ScopedFaultInjection injection(config);

  GradingPipeline pipeline(Assignment1());
  GradingOutcome outcome = pipeline.Grade(Assignment1().Reference());
  EXPECT_EQ(outcome.tier, FeedbackTier::kAstOnly);
  EXPECT_EQ(outcome.failure, FailureClass::kInternalFault);
  EXPECT_NE(outcome.verdict, Verdict::kNotGraded);
}

TEST(GradingPipelineTest, ParserFaultDegradesToParseDiagnostic) {
  fault::FaultConfig config;
  config.only_point = fault::points::kParser;
  fault::ScopedFaultInjection injection(config);

  GradingPipeline pipeline(Assignment1());
  GradingOutcome outcome = pipeline.Grade(Assignment1().Reference());
  EXPECT_EQ(outcome.verdict, Verdict::kNotGraded);
  EXPECT_EQ(outcome.tier, FeedbackTier::kParseDiagnostic);
  EXPECT_EQ(outcome.failure, FailureClass::kInternalFault);
}

TEST(GradingPipelineTest, AdversarialSubmissionIsClassifiedNotCrashed) {
  PipelineOptions options;
  options.exec.deadline_ms = 200;
  GradingPipeline pipeline(Assignment1(), options);
  // Parses and adheres to the spec, but loops forever when executed.
  GradingOutcome outcome = pipeline.Grade(
      "void assignment1(int[] a) { while (true) { } }");
  EXPECT_EQ(outcome.stage_reached, Stage::kComplete);
  EXPECT_NE(outcome.verdict, Verdict::kCorrect);
  EXPECT_TRUE(outcome.functional_ran);
  EXPECT_FALSE(outcome.functional.passed);
  EXPECT_GT(outcome.functional.timeouts, 0);
}

TEST(GradingPipelineTest, BatchIsolatesAdversarialMembers) {
  PipelineOptions options;
  options.exec.deadline_ms = 200;
  GradingPipeline pipeline(Assignment1(), options);
  auto outcomes = pipeline.GradeBatch({
      "void assignment1(int[] a) { while (true) { } }",
      Assignment1().Reference(),
      "not even java (",
  });
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_NE(outcomes[0].verdict, Verdict::kCorrect);
  EXPECT_EQ(outcomes[1].verdict, Verdict::kCorrect);  // Unaffected neighbor.
  EXPECT_FALSE(outcomes[1].degraded());
  EXPECT_EQ(outcomes[2].verdict, Verdict::kNotGraded);
}

TEST(GradingPipelineTest, OutcomeJsonIsWellFormedAndEscaped) {
  GradingPipeline pipeline(Assignment1());
  GradingOutcome outcome = pipeline.Grade("int f( \"uh \\oh\n");
  std::string json = OutcomeToJson(outcome);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"verdict\":\"not_graded\""), std::string::npos);
  EXPECT_NE(json.find("\"tier\":\"parse_diagnostic\""), std::string::npos);
  EXPECT_NE(json.find("\"failure_class\":\"parse_error\""),
            std::string::npos);
  // No raw control characters or unescaped quotes may survive.
  for (size_t i = 0; i < json.size(); ++i) {
    EXPECT_GE(static_cast<unsigned char>(json[i]), 0x20) << "at " << i;
  }
}

TEST(GradingPipelineTest, OutcomeJsonCarriesStageTimings) {
  GradingPipeline pipeline(Assignment1());
  GradingOutcome outcome = pipeline.Grade(Assignment1().Reference());
  std::string json = OutcomeToJson(outcome);
  // A full grade ran all four stages; each appears once in the summary
  // object, keyed by stage name.
  EXPECT_NE(json.find("\"stage_timings\":{\"parse\":"), std::string::npos);
  EXPECT_NE(json.find("\"epdg\":"), std::string::npos);
  EXPECT_NE(json.find("\"match\":"), std::string::npos);
  EXPECT_NE(json.find("\"functional\":"), std::string::npos);

  // A parse failure never reaches the later stages, so they are absent.
  GradingOutcome failed = pipeline.Grade("int f( \"uh\n");
  std::string failed_json = OutcomeToJson(failed);
  size_t summary = failed_json.find("\"stage_timings\":{\"parse\":");
  ASSERT_NE(summary, std::string::npos);
  EXPECT_EQ(failed_json.find("\"epdg\":", summary), std::string::npos);
}

TEST(GradingPipelineTest, TimingsCoverEveryStageThatRan) {
  GradingPipeline pipeline(Assignment1());
  GradingOutcome outcome = pipeline.Grade(Assignment1().Reference());
  ASSERT_EQ(outcome.timings.size(), 4u);
  EXPECT_EQ(outcome.timings[0].stage, Stage::kParse);
  EXPECT_EQ(outcome.timings[1].stage, Stage::kEpdg);
  EXPECT_EQ(outcome.timings[2].stage, Stage::kMatch);
  EXPECT_EQ(outcome.timings[3].stage, Stage::kFunctional);
  for (const auto& timing : outcome.timings) {
    EXPECT_GE(timing.wall_ms, 0.0);
    EXPECT_TRUE(timing.status.ok());
  }
}

}  // namespace
}  // namespace jfeed::service
