#include "service/method_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "javalang/ast.h"
#include "javalang/parser.h"
#include "support/fault.h"

namespace jfeed::service {
namespace {

java::Method ParseOne(const std::string& source) {
  auto unit = java::Parse(source);
  EXPECT_TRUE(unit.ok()) << unit.status().ToString();
  EXPECT_EQ(unit->methods.size(), 1u);
  return std::move(unit->methods[0]);
}

TEST(MethodCacheTest, BuildEntryPinsAFrozenSingleMethodGraph) {
  java::Method method = ParseOne("int f(int a) { int b = a + 1; return b; }");
  auto entry = MethodCache::BuildEntry(method);
  ASSERT_TRUE(entry.ok()) << entry.status().ToString();
  ASSERT_NE((*entry)->graph, nullptr);
  EXPECT_EQ((*entry)->unit.methods.size(), 1u);
  EXPECT_EQ((*entry)->graph->method_name(), "f");
  EXPECT_EQ((*entry)->cells.size(), 0u);
  // The entry's AST and graph storage live in its own arena, not whatever
  // scope was active at build time.
  EXPECT_GT((*entry)->memory.arena.bytes_allocated(), 0u);
}

TEST(MethodCacheTest, BuildEntryRejectsHandBuiltMethods) {
  java::Method hand_built;
  hand_built.name = "f";
  auto entry = MethodCache::BuildEntry(hand_built);
  EXPECT_FALSE(entry.ok());
  EXPECT_EQ(entry.status().code(), StatusCode::kInvalidArgument);
}

TEST(MethodCacheTest, LookupMissThenInsertThenHit) {
  MethodCache cache;
  java::Method method = ParseOne("int f() { return 1; }");

  auto miss = cache.Lookup("a1", method.fingerprint);
  ASSERT_TRUE(miss.ok());
  EXPECT_EQ(*miss, nullptr);

  auto built = MethodCache::BuildEntry(method);
  ASSERT_TRUE(built.ok());
  cache.Insert("a1", method.fingerprint, *built);

  auto hit = cache.Lookup("a1", method.fingerprint);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(*hit, *built);

  MethodCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
}

TEST(MethodCacheTest, AssignmentIdIsolatesIdenticalMethods) {
  // Same fingerprint under two assignment ids: the tenant-isolation
  // contract — a cell is only meaningful against its own spec.
  MethodCache cache;
  java::Method method = ParseOne("int f() { return 1; }");
  auto built = MethodCache::BuildEntry(method);
  ASSERT_TRUE(built.ok());
  cache.Insert("a1", method.fingerprint, *built);

  auto other = cache.Lookup("a2", method.fingerprint);
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(*other, nullptr) << "cross-assignment reuse must never happen";
}

TEST(MethodCacheTest, InsertRaceKeepsFirstWriter) {
  MethodCache cache;
  java::Method method = ParseOne("int f() { return 1; }");
  auto first = MethodCache::BuildEntry(method);
  auto second = MethodCache::BuildEntry(method);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());

  EXPECT_EQ(cache.Insert("a1", method.fingerprint, *first), *first);
  // The losing writer gets the published entry back, so both graders
  // converge on one cell store.
  EXPECT_EQ(cache.Insert("a1", method.fingerprint, *second), *first);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(MethodCacheTest, EvictionBoundsTheCache) {
  MethodCache cache(/*max_entries=*/4);
  java::Method method = ParseOne("int f() { return 1; }");
  auto built = MethodCache::BuildEntry(method);
  ASSERT_TRUE(built.ok());
  for (uint64_t fp = 1; fp <= 10; ++fp) cache.Insert("a1", fp, *built);
  EXPECT_LE(cache.size(), 4u);
  EXPECT_EQ(cache.stats().evictions, 6u);
}

TEST(MethodCacheTest, EvictedEntryStaysAliveWhileReferenced) {
  MethodCache cache(/*max_entries=*/1);
  java::Method method = ParseOne("int f() { return 1; }");
  auto built = MethodCache::BuildEntry(method);
  ASSERT_TRUE(built.ok());
  std::shared_ptr<MethodEntry> pinned =
      cache.Insert("a1", /*fingerprint=*/1, *built);
  auto other = MethodCache::BuildEntry(method);
  ASSERT_TRUE(other.ok());
  cache.Insert("a1", /*fingerprint=*/2, *other);  // Evicts entry 1.
  EXPECT_EQ(cache.size(), 1u);
  // The pinned handle still works: a grade using the entry mid-eviction
  // reads valid memory.
  EXPECT_EQ(pinned->graph->method_name(), "f");
}

TEST(MethodCacheTest, InjectedLookupFaultCountsAsFallback) {
  MethodCache cache;
  java::Method method = ParseOne("int f() { return 1; }");
  auto built = MethodCache::BuildEntry(method);
  ASSERT_TRUE(built.ok());
  cache.Insert("a1", method.fingerprint, *built);

  {
    fault::FaultConfig config;
    config.probability = 1.0;
    config.only_point = fault::points::kMethodCacheLookup;
    fault::ScopedFaultInjection campaign(config);
    auto result = cache.Lookup("a1", method.fingerprint);
    EXPECT_FALSE(result.ok());
  }
  EXPECT_EQ(cache.stats().fallbacks, 1u);
  // The entry was not poisoned; a post-campaign lookup hits normally.
  auto hit = cache.Lookup("a1", method.fingerprint);
  ASSERT_TRUE(hit.ok());
  EXPECT_NE(*hit, nullptr);
}

TEST(MethodCacheTest, CampaignOnOtherPointsPassesThrough) {
  MethodCache cache;
  java::Method method = ParseOne("int f() { return 1; }");
  fault::FaultConfig config;
  config.probability = 1.0;
  config.only_point = fault::points::kParser;
  fault::ScopedFaultInjection campaign(config);
  auto result = cache.Lookup("a1", method.fingerprint);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, nullptr);
}

}  // namespace
}  // namespace jfeed::service
