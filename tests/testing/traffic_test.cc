// Traffic-model properties the loadgen and its baseline comparison depend
// on: determinism from the seed, a sorted causally-ordered timeline, the
// deadline-spike shape, and mutations that stay inside the generator's
// submission space (or differ only by comments).

#include "testing/traffic.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "synth/generator.h"

namespace jfeed::testing {
namespace {

/// A small synthetic space: 2 sites, 3 variants each → 9 submissions.
synth::SubmissionTemplate MakeTemplate(const std::string& marker) {
  return synth::SubmissionTemplate(
      "void " + marker + "(int a) {\n  int x = ${init};\n  x = x ${op} a;\n}\n",
      {
          {"init", {"0", "1", "-1"}},
          {"op", {"+", "-", "*"}},
      });
}

TEST(TrafficTest, SameSeedSameSchedule) {
  auto alpha = MakeTemplate("alpha");
  auto beta = MakeTemplate("beta");
  std::vector<TrafficAssignment> assignments = {{"alpha", &alpha},
                                                {"beta", &beta}};
  TrafficOptions options;
  options.seed = 42;
  options.submissions = 200;
  auto first = BuildDeadlineSpikeSchedule(assignments, options);
  auto second = BuildDeadlineSpikeSchedule(assignments, options);
  ASSERT_EQ(first.size(), second.size());
  ASSERT_EQ(first.size(), 200u);
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].offset_ms, second[i].offset_ms);
    EXPECT_EQ(first[i].assignment, second[i].assignment);
    EXPECT_EQ(first[i].id, second[i].id);
    EXPECT_EQ(first[i].source, second[i].source);
  }

  options.seed = 43;
  auto different = BuildDeadlineSpikeSchedule(assignments, options);
  bool any_difference = false;
  for (size_t i = 0; i < first.size(); ++i) {
    any_difference |= first[i].id != different[i].id ||
                      first[i].offset_ms != different[i].offset_ms;
  }
  EXPECT_TRUE(any_difference);
}

TEST(TrafficTest, TimelineIsSortedAndSpikeShaped) {
  auto alpha = MakeTemplate("alpha");
  std::vector<TrafficAssignment> assignments = {{"alpha", &alpha}};
  TrafficOptions options;
  options.submissions = 1000;
  options.idle_ms = 1000;
  options.idle_fraction = 0.10;
  options.spike_ms = 4000;
  auto schedule = BuildDeadlineSpikeSchedule(assignments, options);
  ASSERT_EQ(schedule.size(), 1000u);

  size_t idle = 0;
  size_t first_half = 0;
  size_t second_half = 0;
  for (size_t i = 0; i < schedule.size(); ++i) {
    if (i > 0) EXPECT_GE(schedule[i].offset_ms, schedule[i - 1].offset_ms);
    EXPECT_GE(schedule[i].offset_ms, 0);
    EXPECT_LE(schedule[i].offset_ms, options.idle_ms + options.spike_ms);
    if (schedule[i].offset_ms < options.idle_ms) {
      ++idle;
    } else if (schedule[i].offset_ms <
               options.idle_ms + options.spike_ms / 2) {
      ++first_half;
    } else {
      ++second_half;
    }
  }
  // The lead-in holds roughly its configured share, and the spike's back
  // half is denser than its front half (density rises to the deadline).
  EXPECT_NEAR(static_cast<double>(idle), 100.0, 40.0);
  EXPECT_GT(second_half, first_half);
}

TEST(TrafficTest, ResubmissionChainsAreCausallyOrderedAndConverge) {
  auto alpha = MakeTemplate("alpha");
  std::vector<TrafficAssignment> assignments = {{"alpha", &alpha}};
  TrafficOptions options;
  options.submissions = 400;
  options.resubmit_prob = 0.8;
  auto schedule = BuildDeadlineSpikeSchedule(assignments, options);

  // Group by student: attempts must appear in order r1, r2, ... and each
  // source must either be a rendering of some space index (possibly with a
  // trailing comment) — never free-form garbage.
  std::map<std::string, int> last_attempt;
  size_t resubmissions = 0;
  for (const auto& event : schedule) {
    size_t r = event.id.rfind("-r");
    ASSERT_NE(r, std::string::npos) << event.id;
    std::string student = event.id.substr(0, r);
    int attempt = std::stoi(event.id.substr(r + 2));
    EXPECT_EQ(attempt, last_attempt[student] + 1)
        << "chain out of order for " << student;
    last_attempt[student] = attempt;
    if (attempt > 1) ++resubmissions;

    std::string body = event.source;
    size_t comment = body.find("// attempt");
    if (comment != std::string::npos) body.resize(comment);
    bool in_space = false;
    for (uint64_t index = 0; index < alpha.SpaceSize(); ++index) {
      std::string rendered = alpha.Generate(index);
      if (body == rendered || body == rendered + "\n") {
        in_space = true;
        break;
      }
    }
    EXPECT_TRUE(in_space) << "source not in the submission space:\n"
                          << event.source;
  }
  EXPECT_GT(resubmissions, 0u);
}

TEST(TrafficTest, MixesAcrossAllAssignments) {
  auto alpha = MakeTemplate("alpha");
  auto beta = MakeTemplate("beta");
  auto gamma = MakeTemplate("gamma");
  std::vector<TrafficAssignment> assignments = {
      {"alpha", &alpha}, {"beta", &beta}, {"gamma", &gamma}};
  TrafficOptions options;
  options.submissions = 300;
  auto schedule = BuildDeadlineSpikeSchedule(assignments, options);
  std::map<std::string, size_t> counts;
  for (const auto& event : schedule) ++counts[event.assignment];
  ASSERT_EQ(counts.size(), 3u);
  for (const auto& [id, count] : counts) {
    EXPECT_GT(count, 50u) << id;  // Roughly uniform across 3 tenants.
  }
}

TEST(TrafficTest, EmptyInputsYieldEmptySchedules) {
  auto alpha = MakeTemplate("alpha");
  EXPECT_TRUE(BuildDeadlineSpikeSchedule({}, {}).empty());
  TrafficOptions options;
  options.submissions = 0;
  EXPECT_TRUE(
      BuildDeadlineSpikeSchedule({{"alpha", &alpha}}, options).empty());
}

}  // namespace
}  // namespace jfeed::testing
