#include "testing/functional.h"

#include <gtest/gtest.h>

#include "javalang/parser.h"

namespace jfeed::testing {
namespace {

using interp::Value;

java::CompilationUnit ParseOrDie(const std::string& source) {
  auto unit = java::Parse(source);
  EXPECT_TRUE(unit.ok()) << unit.status().ToString();
  return std::move(*unit);
}

FunctionalSuite SquareSuite() {
  FunctionalSuite suite;
  suite.method = "f";
  suite.inputs = {{Value::Int(2)}, {Value::Int(5)}, {Value::Int(-3)}};
  return suite;
}

TEST(FunctionalTest, ReferenceDefinesExpectedOutputs) {
  auto reference =
      ParseOrDie("void f(int x) { System.out.println(x * x); }");
  auto expected = ComputeExpectedOutputs(reference, SquareSuite());
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(*expected, (std::vector<std::string>{"4\n", "25\n", "9\n"}));
}

TEST(FunctionalTest, EquivalentSubmissionPasses) {
  auto reference =
      ParseOrDie("void f(int x) { System.out.println(x * x); }");
  auto expected = ComputeExpectedOutputs(reference, SquareSuite());
  ASSERT_TRUE(expected.ok());
  auto submission = ParseOrDie(
      "void f(int x) { int y = x; System.out.println(y * x); }");
  auto verdict = RunSuite(submission, SquareSuite(), *expected);
  EXPECT_TRUE(verdict.passed);
  EXPECT_EQ(verdict.tests_failed, 0);
  EXPECT_EQ(verdict.tests_run, 3);
}

TEST(FunctionalTest, WrongSubmissionFailsWithDiagnostic) {
  auto reference =
      ParseOrDie("void f(int x) { System.out.println(x * x); }");
  auto expected = ComputeExpectedOutputs(reference, SquareSuite());
  ASSERT_TRUE(expected.ok());
  auto submission = ParseOrDie("void f(int x) { System.out.println(x); }");
  auto verdict = RunSuite(submission, SquareSuite(), *expected);
  EXPECT_FALSE(verdict.passed);
  EXPECT_GT(verdict.tests_failed, 0);
  EXPECT_NE(verdict.first_failure.find("expected"), std::string::npos);
}

TEST(FunctionalTest, RuntimeErrorCountsAsFailure) {
  auto reference =
      ParseOrDie("void f(int x) { System.out.println(x * x); }");
  auto expected = ComputeExpectedOutputs(reference, SquareSuite());
  ASSERT_TRUE(expected.ok());
  auto submission = ParseOrDie(
      "void f(int x) { int[] a = new int[1]; System.out.println(a[5]); }");
  auto verdict = RunSuite(submission, SquareSuite(), *expected);
  EXPECT_FALSE(verdict.passed);
  EXPECT_EQ(verdict.tests_failed, 3);
}

TEST(FunctionalTest, InfiniteLoopCountsAsFailure) {
  auto reference =
      ParseOrDie("void f(int x) { System.out.println(x * x); }");
  FunctionalSuite suite = SquareSuite();
  suite.exec_options.max_steps = 20000;
  auto expected = ComputeExpectedOutputs(reference, suite);
  ASSERT_TRUE(expected.ok());
  auto submission =
      ParseOrDie("void f(int x) { while (true) { x = x; } }");
  auto verdict = RunSuite(submission, suite, *expected);
  EXPECT_FALSE(verdict.passed);
}

TEST(FunctionalTest, TrailingWhitespaceIsNormalized) {
  // print vs println of the same value should not be a functional failure.
  auto reference = ParseOrDie("void f(int x) { System.out.println(x); }");
  auto expected = ComputeExpectedOutputs(reference, SquareSuite());
  ASSERT_TRUE(expected.ok());
  auto submission = ParseOrDie("void f(int x) { System.out.print(x); }");
  EXPECT_TRUE(RunSuite(submission, SquareSuite(), *expected).passed);
}

TEST(FunctionalTest, ReferenceErrorIsInternal) {
  auto broken = ParseOrDie("void f(int x) { System.out.println(1 / 0); }");
  auto expected = ComputeExpectedOutputs(broken, SquareSuite());
  EXPECT_FALSE(expected.ok());
  EXPECT_EQ(expected.status().code(), StatusCode::kInternal);
}

TEST(FunctionalTest, SuiteWithFilesFlowsToScanner) {
  FunctionalSuite suite;
  suite.method = "f";
  suite.inputs = {{}};
  suite.files["d.txt"] = "10 20 30";
  auto reference = ParseOrDie(
      "void f() { Scanner s = new Scanner(new File(\"d.txt\")); int t = 0; "
      "while (s.hasNextInt()) t += s.nextInt(); System.out.println(t); }");
  auto expected = ComputeExpectedOutputs(reference, suite);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ((*expected)[0], "60\n");
}

}  // namespace
}  // namespace jfeed::testing
