#include "testing/resubmission.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "javalang/fingerprint.h"
#include "javalang/lexer.h"
#include "javalang/parser.h"
#include "synth/generator.h"

namespace jfeed::testing {
namespace {

synth::SubmissionTemplate TwoSiteTemplate() {
  return synth::SubmissionTemplate(
      "int target(int n) {\n"
      "  int s = ${init};\n"
      "  return s ${op} n;\n"
      "}\n",
      {{"init", {"0", "1", "2"}}, {"op", {"+", "-", "*"}}});
}

TEST(ResubmissionTest, SameSeedSameChain) {
  auto generator = TwoSiteTemplate();
  ResubmissionChainOptions options;
  options.seed = 42;
  options.steps = 12;
  auto a = BuildResubmissionChain("a1", generator, options);
  auto b = BuildResubmissionChain("a1", generator, options);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind) << i;
    EXPECT_EQ(a[i].id, b[i].id) << i;
    EXPECT_EQ(a[i].source, b[i].source) << i;
  }
}

TEST(ResubmissionTest, ChainShapeAndIds) {
  auto generator = TwoSiteTemplate();
  ResubmissionChainOptions options;
  options.steps = 5;
  auto chain = BuildResubmissionChain("a1", generator, options);
  ASSERT_EQ(chain.size(), 6u);
  EXPECT_EQ(chain[0].kind, ResubmitKind::kInitial);
  EXPECT_EQ(chain[0].id, "a1-r1");
  EXPECT_EQ(chain[5].id, "a1-r6");
}

TEST(ResubmissionTest, EverySubmissionParsesWithThreeMethods) {
  auto generator = TwoSiteTemplate();
  ResubmissionChainOptions options;
  options.seed = 7;
  options.steps = 10;
  for (const auto& step : BuildResubmissionChain("a1", generator, options)) {
    auto unit = java::Parse(step.source);
    ASSERT_TRUE(unit.ok())
        << step.id << ": " << unit.status().ToString() << "\n" << step.source;
    // Template method + the two appended helpers.
    ASSERT_EQ(unit->methods.size(), 3u) << step.id;
    EXPECT_EQ(unit->methods[0].name, "target") << step.id;
    EXPECT_EQ(unit->methods[1].name, "chainHelperSum") << step.id;
    EXPECT_EQ(unit->methods[2].name, "chainHelperScale") << step.id;
  }
}

TEST(ResubmissionTest, FixOneSiteChainConvergesAndReusesHelpers) {
  auto generator = TwoSiteTemplate();
  ResubmissionChainOptions options;
  options.seed = 3;
  options.steps = 8;
  // Pure fix-one-site chain — the bench's shape.
  options.duplicate_prob = 0.0;
  options.comment_prob = 0.0;
  options.rename_prob = 0.0;
  auto chain = BuildResubmissionChain("a1", generator, options);

  std::vector<std::vector<uint64_t>> fingerprints;
  for (const auto& step : chain) {
    auto unit = java::Parse(step.source);
    ASSERT_TRUE(unit.ok()) << step.id;
    std::vector<uint64_t> fps;
    for (const auto& m : unit->methods) fps.push_back(m.fingerprint);
    fingerprints.push_back(std::move(fps));
  }
  size_t fixes = 0;
  for (size_t i = 1; i < chain.size(); ++i) {
    // Helpers are byte-identical across a fix-one-site edit: at least two
    // of three methods reuse — the >= 60% floor the bench gates on.
    EXPECT_EQ(fingerprints[i][1], fingerprints[0][1]) << chain[i].id;
    EXPECT_EQ(fingerprints[i][2], fingerprints[0][2]) << chain[i].id;
    if (chain[i].kind == ResubmitKind::kFixOneSite) {
      ++fixes;
      EXPECT_NE(fingerprints[i][0], fingerprints[i - 1][0]) << chain[i].id;
    } else {
      // Once every site is repaired, further draws degrade to duplicates.
      EXPECT_EQ(chain[i].kind, ResubmitKind::kDuplicate) << chain[i].id;
      EXPECT_EQ(chain[i].source, chain[i - 1].source) << chain[i].id;
    }
  }
  // The two-site template needs at most two repairs; the chain must have
  // actually exercised the fix edit.
  EXPECT_GE(fixes, 1u);
  EXPECT_LE(fixes, 2u);
  // And the last attempt is the reference solution with helpers appended.
  EXPECT_EQ(chain.back().source.find(generator.Generate(0)), 0u);
}

TEST(ResubmissionTest, CommentOnlyEditKeepsTokenFingerprints) {
  auto generator = TwoSiteTemplate();
  ResubmissionChainOptions options;
  options.seed = 11;
  options.steps = 20;
  options.duplicate_prob = 0.0;
  options.comment_prob = 1.0;  // Every edit appends a comment.
  options.rename_prob = 0.0;
  auto chain = BuildResubmissionChain("a1", generator, options);
  auto first = java::Lex(chain.front().source);
  ASSERT_TRUE(first.ok());
  for (const auto& step : chain) {
    EXPECT_EQ(step.kind == ResubmitKind::kInitial
                  ? ResubmitKind::kInitial
                  : ResubmitKind::kCommentOnly,
              step.kind);
    auto tokens = java::Lex(step.source);
    ASSERT_TRUE(tokens.ok()) << step.id;
    EXPECT_EQ(java::FingerprintTokenStream(*tokens),
              java::FingerprintTokenStream(*first))
        << step.id;
  }
}

TEST(ResubmissionTest, RenameLocalTouchesOnlyTheSecondHelper) {
  auto generator = TwoSiteTemplate();
  ResubmissionChainOptions options;
  options.seed = 5;
  options.steps = 3;
  options.duplicate_prob = 0.0;
  options.comment_prob = 0.0;
  options.rename_prob = 1.0;  // Every edit toggles the rename.
  auto chain = BuildResubmissionChain("a1", generator, options);
  std::vector<std::vector<uint64_t>> fingerprints;
  for (const auto& step : chain) {
    auto unit = java::Parse(step.source);
    ASSERT_TRUE(unit.ok()) << step.id;
    std::vector<uint64_t> fps;
    for (const auto& m : unit->methods) fps.push_back(m.fingerprint);
    fingerprints.push_back(std::move(fps));
  }
  for (size_t i = 1; i < chain.size(); ++i) {
    EXPECT_EQ(chain[i].kind, ResubmitKind::kRenameLocal);
    EXPECT_EQ(fingerprints[i][0], fingerprints[0][0]);  // template method
    EXPECT_EQ(fingerprints[i][1], fingerprints[0][1]);  // first helper
    EXPECT_NE(fingerprints[i][2], fingerprints[i - 1][2]);
  }
  // The rename toggles between two variants: attempt 3 matches attempt 1.
  EXPECT_EQ(fingerprints[2][2], fingerprints[0][2]);
}

TEST(ResubmissionTest, FixOneErrorStepsTowardReference) {
  auto generator = TwoSiteTemplate();
  XorShiftRng rng(1);
  uint64_t index = generator.SpaceSize() - 1;  // Every site wrong.
  uint64_t once = FixOneError(generator, index, &rng);
  EXPECT_NE(once, index);
  uint64_t twice = FixOneError(generator, once, &rng);
  EXPECT_EQ(twice, 0u);  // Two sites, two repairs.
  EXPECT_EQ(FixOneError(generator, 0, &rng), 0u);
}

}  // namespace
}  // namespace jfeed::testing
