// Switch-statement support across the stack: parsing, printing,
// interpretation (fall-through, default, break) and EPDG construction
// (Definition 1 lists switch under the Cond node type).

#include <gtest/gtest.h>

#include "interp/interpreter.h"
#include "javalang/parser.h"
#include "javalang/printer.h"
#include "pdg/epdg.h"

namespace jfeed::java {
namespace {

using interp::Value;

TEST(SwitchTest, ParsesCasesAndDefault) {
  auto s = ParseStatement(
      "switch (x) { case 1: y = 1; break; case 2: y = 2; break; "
      "default: y = 0; }");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  EXPECT_EQ((*s)->kind, StmtKind::kSwitch);
  ASSERT_EQ((*s)->switch_cases.size(), 3u);
  EXPECT_NE((*s)->switch_cases[0].label, nullptr);
  EXPECT_EQ((*s)->switch_cases[2].label, nullptr);  // default
  EXPECT_EQ((*s)->switch_cases[0].body.size(), 2u);
}

TEST(SwitchTest, RejectsDuplicateDefaultAndStray) {
  EXPECT_FALSE(ParseStatement(
                   "switch (x) { default: y = 1; default: y = 2; }")
                   .ok());
  EXPECT_FALSE(ParseStatement("switch (x) { y = 1; }").ok());
  EXPECT_FALSE(ParseStatement("switch (x) { case 1 y = 1; }").ok());
}

TEST(SwitchTest, PrintRoundTrip) {
  const char* kSource =
      "switch (x % 3) { case 0: y = 1; break; default: y = 0; }";
  auto first = ParseStatement(kSource);
  ASSERT_TRUE(first.ok());
  std::string printed = StmtToString(**first);
  EXPECT_NE(printed.find("switch (x % 3) {"), std::string::npos);
  EXPECT_NE(printed.find("case 0:"), std::string::npos);
  EXPECT_NE(printed.find("default:"), std::string::npos);
  auto second = ParseStatement(printed);
  ASSERT_TRUE(second.ok()) << printed;
  EXPECT_EQ(StmtToString(**second), printed);
}

interp::Value RunSwitch(int64_t input) {
  auto unit = Parse(R"(
      int grade(int score) {
        int points = 0;
        switch (score) {
          case 1:
            points = 10;
            break;
          case 2:
            points = 20;
            break;
          default:
            points = -1;
        }
        return points;
      })");
  EXPECT_TRUE(unit.ok());
  interp::Interpreter interpreter(*unit);
  auto result = interpreter.Call("grade", {Value::Int(input)});
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result->return_value;
}

TEST(SwitchTest, InterpreterSelectsMatchingCase) {
  EXPECT_EQ(RunSwitch(1).AsInt(), 10);
  EXPECT_EQ(RunSwitch(2).AsInt(), 20);
  EXPECT_EQ(RunSwitch(9).AsInt(), -1);
}

TEST(SwitchTest, InterpreterFallThroughWithoutBreak) {
  auto unit = Parse(R"(
      int f(int x) {
        int n = 0;
        switch (x) {
          case 1:
            n += 1;
          case 2:
            n += 2;
            break;
          case 3:
            n += 100;
        }
        return n;
      })");
  ASSERT_TRUE(unit.ok());
  interp::Interpreter interpreter(*unit);
  EXPECT_EQ(interpreter.Call("f", {Value::Int(1)})->return_value.AsInt(), 3);
  EXPECT_EQ(interpreter.Call("f", {Value::Int(2)})->return_value.AsInt(), 2);
  EXPECT_EQ(interpreter.Call("f", {Value::Int(3)})->return_value.AsInt(),
            100);
  EXPECT_EQ(interpreter.Call("f", {Value::Int(4)})->return_value.AsInt(), 0);
}

TEST(SwitchTest, InterpreterNoMatchingCaseNoDefault) {
  auto unit = Parse(
      "int f(int x) { int n = 5; switch (x) { case 1: n = 1; } return n; }");
  ASSERT_TRUE(unit.ok());
  interp::Interpreter interpreter(*unit);
  EXPECT_EQ(interpreter.Call("f", {Value::Int(7)})->return_value.AsInt(), 5);
}

TEST(SwitchTest, ReturnInsideSwitchPropagates) {
  auto unit = Parse(
      "int f(int x) { switch (x) { case 1: return 11; } return 0; }");
  ASSERT_TRUE(unit.ok());
  interp::Interpreter interpreter(*unit);
  EXPECT_EQ(interpreter.Call("f", {Value::Int(1)})->return_value.AsInt(),
            11);
  EXPECT_EQ(interpreter.Call("f", {Value::Int(2)})->return_value.AsInt(), 0);
}

TEST(SwitchTest, EpdgSelectorIsCondNode) {
  auto unit = Parse(R"(
      void f(int x) {
        int y = 0;
        switch (x % 2) {
          case 0:
            y = 2;
            break;
          default:
            y = 1;
        }
        System.out.println(y);
      })");
  ASSERT_TRUE(unit.ok());
  auto graph = pdg::BuildEpdg(unit->methods[0]);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();

  graph::NodeId cond = graph::kInvalidNode;
  graph::NodeId case0 = graph::kInvalidNode;
  graph::NodeId case_default = graph::kInvalidNode;
  graph::NodeId print = graph::kInvalidNode;
  for (size_t i = 0; i < graph->NodeCount(); ++i) {
    auto id = static_cast<graph::NodeId>(i);
    const auto& node = graph->NodeAt(id);
    if (node.content == "x % 2") cond = id;
    if (node.content == "y = 2") case0 = id;
    if (node.content == "y = 1") case_default = id;
    if (node.content == "System.out.println(y)") print = id;
  }
  ASSERT_NE(cond, graph::kInvalidNode);
  EXPECT_EQ(graph->NodeAt(cond).type, pdg::NodeType::kCond);
  // Both arms are controlled by the selector.
  EXPECT_TRUE(graph->HasEdge(cond, case0, pdg::EdgeType::kCtrl));
  EXPECT_TRUE(graph->HasEdge(cond, case_default, pdg::EdgeType::kCtrl));
  // Both arms' definitions reach the print (alternative branches merge).
  EXPECT_TRUE(graph->HasEdge(case0, print, pdg::EdgeType::kData));
  EXPECT_TRUE(graph->HasEdge(case_default, print, pdg::EdgeType::kData));
}

TEST(SwitchTest, PatternCondNodeMatchesSwitchSelector) {
  // A Cond-typed pattern node can bind a switch selector, per Definition 1.
  auto unit = Parse(R"(
      void f(int x) {
        int n = 0;
        switch (x % 2) {
          case 1:
            n += x;
            break;
        }
        System.out.println(n);
      })");
  ASSERT_TRUE(unit.ok());
  auto graph = pdg::BuildEpdg(unit->methods[0]);
  ASSERT_TRUE(graph.ok());
  bool found_cond = false;
  for (size_t i = 0; i < graph->NodeCount(); ++i) {
    if (graph->NodeAt(static_cast<graph::NodeId>(i)).type ==
        pdg::NodeType::kCond) {
      found_cond = true;
    }
  }
  EXPECT_TRUE(found_cond);
}

}  // namespace
}  // namespace jfeed::java
