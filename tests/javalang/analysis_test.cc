#include "javalang/analysis.h"

#include <gtest/gtest.h>

#include "javalang/parser.h"

namespace jfeed::java {
namespace {

std::set<std::string> Reads(const std::string& src) {
  auto r = ParseExpression(src);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return VarsRead(**r);
}

std::set<std::string> Writes(const std::string& src) {
  auto r = ParseExpression(src);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return VarsWritten(**r);
}

std::set<std::string> Mentioned(const std::string& src) {
  auto r = ParseExpression(src);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return VarsMentioned(**r);
}

using Set = std::set<std::string>;

TEST(AnalysisTest, PlainAssignReadsOnlyRhs) {
  EXPECT_EQ(Reads("x = y + z"), (Set{"y", "z"}));
  EXPECT_EQ(Writes("x = y + z"), (Set{"x"}));
}

TEST(AnalysisTest, CompoundAssignReadsTarget) {
  EXPECT_EQ(Reads("odd += a[i]"), (Set{"odd", "a", "i"}));
  EXPECT_EQ(Writes("odd += a[i]"), (Set{"odd"}));
}

TEST(AnalysisTest, IncrementReadsAndWrites) {
  EXPECT_EQ(Reads("i++"), (Set{"i"}));
  EXPECT_EQ(Writes("i++"), (Set{"i"}));
  EXPECT_EQ(Writes("--j"), (Set{"j"}));
}

TEST(AnalysisTest, ArrayElementStoreIsWeakWrite) {
  // `b[i - 1] = a[i] * i` writes b, reads b (the object), i and a.
  EXPECT_EQ(Writes("b[i - 1] = a[i] * i"), (Set{"b"}));
  EXPECT_EQ(Reads("b[i - 1] = a[i] * i"), (Set{"a", "b", "i"}));
}

TEST(AnalysisTest, WellKnownClassesAreNotVariables) {
  EXPECT_EQ(Mentioned("System.out.println(odd)"), (Set{"odd"}));
  EXPECT_EQ(Mentioned("Math.pow(x, 2)"), (Set{"x"}));
  EXPECT_TRUE(IsWellKnownClassName("System"));
  EXPECT_TRUE(IsWellKnownClassName("Math"));
  EXPECT_FALSE(IsWellKnownClassName("odd"));
}

TEST(AnalysisTest, FieldAccessReadsReceiver) {
  EXPECT_EQ(Reads("i <= a.length"), (Set{"a", "i"}));
}

TEST(AnalysisTest, MethodCallReadsReceiverAndArgs) {
  EXPECT_EQ(Reads("s.nextInt()"), (Set{"s"}));
  EXPECT_EQ(Reads("f(x, y + z)"), (Set{"x", "y", "z"}));
}

TEST(AnalysisTest, ConditionalReadsAllBranches) {
  EXPECT_EQ(Reads("c ? a : b"), (Set{"a", "b", "c"}));
}

TEST(AnalysisTest, LiteralsHaveNoVariables) {
  EXPECT_TRUE(Mentioned("1 + 2").empty());
  EXPECT_TRUE(Mentioned("\"text\"").empty());
}

TEST(AnalysisTest, NestedAssignment) {
  EXPECT_EQ(Writes("x = y = 0"), (Set{"x", "y"}));
  EXPECT_EQ(Reads("x = y = 0"), (Set{}));
}

TEST(AnalysisTest, NewExpressions) {
  EXPECT_EQ(Reads("new int[n + 1]"), (Set{"n"}));
  EXPECT_EQ(Reads("new Scanner(new File(name))"), (Set{"name"}));
}

TEST(AnalysisTest, MentionedIsUnionOfReadsAndWrites) {
  EXPECT_EQ(Mentioned("x = y + 1"), (Set{"x", "y"}));
  EXPECT_EQ(Mentioned("i++"), (Set{"i"}));
}

}  // namespace
}  // namespace jfeed::java
