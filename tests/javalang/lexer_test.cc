#include "javalang/lexer.h"

#include <gtest/gtest.h>

namespace jfeed::java {
namespace {

std::vector<TokenKind> Kinds(const std::vector<Token>& tokens) {
  std::vector<TokenKind> out;
  for (const auto& t : tokens) out.push_back(t.kind);
  return out;
}

TEST(LexerTest, EmptyInputYieldsEof) {
  auto r = Lex("");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ(r->front().kind, TokenKind::kEof);
}

TEST(LexerTest, IdentifiersAndKeywords) {
  auto r = Lex("int foo while forX");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Kinds(*r),
            (std::vector<TokenKind>{TokenKind::kKwInt, TokenKind::kIdentifier,
                                    TokenKind::kKwWhile,
                                    TokenKind::kIdentifier, TokenKind::kEof}));
  EXPECT_EQ((*r)[1].text, "foo");
  EXPECT_EQ((*r)[3].text, "forX");
}

TEST(LexerTest, IntAndLongLiterals) {
  auto r = Lex("42 0 123L");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].kind, TokenKind::kIntLiteral);
  EXPECT_EQ((*r)[0].int_value, 42);
  EXPECT_EQ((*r)[1].int_value, 0);
  EXPECT_EQ((*r)[2].kind, TokenKind::kLongLiteral);
  EXPECT_EQ((*r)[2].int_value, 123);
}

TEST(LexerTest, DoubleLiterals) {
  auto r = Lex("3.14 2.0 1e3 2.5e-2");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].kind, TokenKind::kDoubleLiteral);
  EXPECT_DOUBLE_EQ((*r)[0].double_value, 3.14);
  EXPECT_DOUBLE_EQ((*r)[1].double_value, 2.0);
  EXPECT_DOUBLE_EQ((*r)[2].double_value, 1000.0);
  EXPECT_DOUBLE_EQ((*r)[3].double_value, 0.025);
}

TEST(LexerTest, DotAfterIntegerIsFieldAccessNotDouble) {
  // `a.length` style: "1." without digits must not consume the dot.
  auto r = Lex("a.length");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(Kinds(*r), (std::vector<TokenKind>{
                           TokenKind::kIdentifier, TokenKind::kDot,
                           TokenKind::kIdentifier, TokenKind::kEof}));
}

TEST(LexerTest, StringLiteralWithEscapes) {
  auto r = Lex(R"("a\nb\"c")");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].kind, TokenKind::kStringLiteral);
  EXPECT_EQ((*r)[0].string_value, "a\nb\"c");
}

TEST(LexerTest, UnterminatedStringIsParseError) {
  auto r = Lex("\"abc");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(LexerTest, CharLiterals) {
  auto r = Lex(R"('a' '\n' '\'')");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].int_value, 'a');
  EXPECT_EQ((*r)[1].int_value, '\n');
  EXPECT_EQ((*r)[2].int_value, '\'');
}

TEST(LexerTest, OperatorsGreedy) {
  auto r = Lex("<= >= == != ++ -- += -= *= /= %= && || < > = ! + - * / % ?");
  ASSERT_TRUE(r.ok());
  std::vector<TokenKind> expect = {
      TokenKind::kLe,       TokenKind::kGe,          TokenKind::kEq,
      TokenKind::kNe,       TokenKind::kPlusPlus,    TokenKind::kMinusMinus,
      TokenKind::kPlusAssign, TokenKind::kMinusAssign, TokenKind::kStarAssign,
      TokenKind::kSlashAssign, TokenKind::kPercentAssign, TokenKind::kAndAnd,
      TokenKind::kOrOr,     TokenKind::kLt,          TokenKind::kGt,
      TokenKind::kAssign,   TokenKind::kNot,         TokenKind::kPlus,
      TokenKind::kMinus,    TokenKind::kStar,        TokenKind::kSlash,
      TokenKind::kPercent,  TokenKind::kQuestion,    TokenKind::kEof};
  EXPECT_EQ(Kinds(*r), expect);
}

TEST(LexerTest, CommentsAreSkipped) {
  auto r = Lex("a // line comment\n b /* block\n comment */ c");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 4u);
  EXPECT_EQ((*r)[0].text, "a");
  EXPECT_EQ((*r)[1].text, "b");
  EXPECT_EQ((*r)[2].text, "c");
}

TEST(LexerTest, UnterminatedBlockCommentIsError) {
  EXPECT_FALSE(Lex("a /* b").ok());
}

TEST(LexerTest, LineAndColumnTracking) {
  auto r = Lex("a\n  b");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].line, 1);
  EXPECT_EQ((*r)[0].column, 1);
  EXPECT_EQ((*r)[1].line, 2);
  EXPECT_EQ((*r)[1].column, 3);
}

TEST(LexerTest, BitwiseOperatorsRejected) {
  EXPECT_FALSE(Lex("a & b").ok());
  EXPECT_FALSE(Lex("a | b").ok());
}

TEST(LexerTest, UnknownCharacterRejected) {
  EXPECT_FALSE(Lex("a # b").ok());
  EXPECT_FALSE(Lex("a @ b").ok());
}

}  // namespace
}  // namespace jfeed::java
