#include "javalang/parser.h"

#include <gtest/gtest.h>

#include "javalang/printer.h"

namespace jfeed::java {
namespace {

/// Round-trips an expression through parse + print.
std::string RoundTripExpr(const std::string& source) {
  auto r = ParseExpression(source);
  EXPECT_TRUE(r.ok()) << r.status().ToString() << " for: " << source;
  if (!r.ok()) return "<error>";
  return ExprToString(**r);
}

TEST(ParserTest, Literals) {
  EXPECT_EQ(RoundTripExpr("42"), "42");
  EXPECT_EQ(RoundTripExpr("3.5"), "3.5");
  EXPECT_EQ(RoundTripExpr("true"), "true");
  EXPECT_EQ(RoundTripExpr("false"), "false");
  EXPECT_EQ(RoundTripExpr("null"), "null");
  EXPECT_EQ(RoundTripExpr("\"hi\""), "\"hi\"");
  EXPECT_EQ(RoundTripExpr("'x'"), "'x'");
  EXPECT_EQ(RoundTripExpr("7L"), "7L");
}

TEST(ParserTest, PrecedenceMultiplicationBindsTighter) {
  auto r = ParseExpression("1 + 2 * 3");
  ASSERT_TRUE(r.ok());
  const Expr& e = **r;
  ASSERT_EQ(e.kind, ExprKind::kBinary);
  EXPECT_EQ(e.binary_op, BinaryOp::kAdd);
  EXPECT_EQ(e.rhs->binary_op, BinaryOp::kMul);
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  auto r = ParseExpression("(1 + 2) * 3");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->binary_op, BinaryOp::kMul);
  EXPECT_EQ((*r)->lhs->binary_op, BinaryOp::kAdd);
}

TEST(ParserTest, LeftAssociativity) {
  auto r = ParseExpression("10 - 4 - 3");
  ASSERT_TRUE(r.ok());
  // (10 - 4) - 3
  EXPECT_EQ((*r)->rhs->kind, ExprKind::kIntLit);
  EXPECT_EQ((*r)->rhs->int_value, 3);
}

TEST(ParserTest, AssignmentIsRightAssociative) {
  auto r = ParseExpression("a = b = 1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->kind, ExprKind::kAssign);
  EXPECT_EQ((*r)->rhs->kind, ExprKind::kAssign);
}

TEST(ParserTest, CompoundAssignments) {
  for (const char* src : {"x += 1", "x -= 1", "x *= 2", "x /= 2", "x %= 2"}) {
    auto r = ParseExpression(src);
    ASSERT_TRUE(r.ok()) << src;
    EXPECT_EQ((*r)->kind, ExprKind::kAssign);
  }
}

TEST(ParserTest, AssignTargetMustBeLValue) {
  EXPECT_FALSE(ParseExpression("1 = 2").ok());
  EXPECT_FALSE(ParseExpression("f(x) = 2").ok());
  EXPECT_TRUE(ParseExpression("a[i] = 2").ok());
}

TEST(ParserTest, IncrementForms) {
  EXPECT_EQ(RoundTripExpr("i++"), "i++");
  EXPECT_EQ(RoundTripExpr("++i"), "++i");
  EXPECT_EQ(RoundTripExpr("i--"), "i--");
  EXPECT_EQ(RoundTripExpr("--i"), "--i");
  EXPECT_FALSE(ParseExpression("5++").ok());
}

TEST(ParserTest, ArrayAndFieldAccess) {
  EXPECT_EQ(RoundTripExpr("a[i + 1]"), "a[i + 1]");
  EXPECT_EQ(RoundTripExpr("a.length"), "a.length");
  EXPECT_EQ(RoundTripExpr("a[i].length"), "a[i].length");
}

TEST(ParserTest, MethodCalls) {
  EXPECT_EQ(RoundTripExpr("f()"), "f()");
  EXPECT_EQ(RoundTripExpr("f(1, 2)"), "f(1, 2)");
  EXPECT_EQ(RoundTripExpr("System.out.println(x)"), "System.out.println(x)");
  EXPECT_EQ(RoundTripExpr("Math.pow(x, 2)"), "Math.pow(x, 2)");
  EXPECT_EQ(RoundTripExpr("s.nextInt()"), "s.nextInt()");
}

TEST(ParserTest, NewExpressions) {
  EXPECT_EQ(RoundTripExpr("new int[10]"), "new int[10]");
  EXPECT_EQ(RoundTripExpr("new int[] {1, 2}"), "new int[] {1, 2}");
  EXPECT_EQ(RoundTripExpr("new Scanner(new File(\"f.txt\"))"),
            "new Scanner(new File(\"f.txt\"))");
  EXPECT_FALSE(ParseExpression("new int(5)").ok());
}

TEST(ParserTest, CastExpressions) {
  EXPECT_EQ(RoundTripExpr("(int) x"), "(int) x");
  EXPECT_EQ(RoundTripExpr("(double) (a / b)"), "(double) (a / b)");
}

TEST(ParserTest, ConditionalExpression) {
  EXPECT_EQ(RoundTripExpr("a < b ? a : b"), "a < b ? a : b");
}

TEST(ParserTest, UnaryMinusFoldsLiterals) {
  auto r = ParseExpression("-5");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->kind, ExprKind::kIntLit);
  EXPECT_EQ((*r)->int_value, -5);
}

TEST(ParserTest, LogicalOperators) {
  auto r = ParseExpression("a && b || c");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->binary_op, BinaryOp::kOr);
  EXPECT_EQ((*r)->lhs->binary_op, BinaryOp::kAnd);
}

TEST(ParserTest, StatementForms) {
  EXPECT_TRUE(ParseStatement("int i = 0;").ok());
  EXPECT_TRUE(ParseStatement("int a = 0, b = 1;").ok());
  EXPECT_TRUE(ParseStatement("x += 1;").ok());
  EXPECT_TRUE(ParseStatement("if (x > 0) y = 1;").ok());
  EXPECT_TRUE(ParseStatement("if (x > 0) y = 1; else y = 2;").ok());
  EXPECT_TRUE(ParseStatement("while (x < 10) x++;").ok());
  EXPECT_TRUE(ParseStatement("do x++; while (x < 10);").ok());
  EXPECT_TRUE(ParseStatement("for (int i = 0; i < n; i++) s += i;").ok());
  EXPECT_TRUE(ParseStatement("for (;;) break;").ok());
  EXPECT_TRUE(ParseStatement("return x + y;").ok());
  EXPECT_TRUE(ParseStatement("return;").ok());
  EXPECT_TRUE(ParseStatement("break;").ok());
  EXPECT_TRUE(ParseStatement("continue;").ok());
  EXPECT_TRUE(ParseStatement("{ int a = 1; a++; }").ok());
}

TEST(ParserTest, ForWithMultipleUpdates) {
  auto r = ParseStatement("for (i = 0; i < n; i++, j--) s += i;");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->for_update.size(), 2u);
}

TEST(ParserTest, MissingSemicolonIsError) {
  EXPECT_FALSE(ParseStatement("int i = 0").ok());
  EXPECT_FALSE(ParseStatement("x++").ok());
}

TEST(ParserTest, MethodParsing) {
  auto r = Parse("void assignment1(int[] a) { int even = 0; }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->methods.size(), 1u);
  const Method& m = r->methods[0];
  EXPECT_EQ(m.name, "assignment1");
  EXPECT_EQ(m.return_type.kind, TypeKind::kVoid);
  ASSERT_EQ(m.params.size(), 1u);
  EXPECT_EQ(m.params[0].type.kind, TypeKind::kInt);
  EXPECT_EQ(m.params[0].type.array_dims, 1);
  EXPECT_EQ(m.params[0].name, "a");
  EXPECT_EQ(m.Signature(), "void assignment1(int[] a)");
}

TEST(ParserTest, MultipleMethods) {
  auto r = Parse(
      "int factorial(int n) { int f = 1; for (int i = 1; i <= n; i++) "
      "f *= i; return f; }\n"
      "void main(int k) { System.out.println(factorial(k)); }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->methods.size(), 2u);
  EXPECT_NE(r->FindMethod("factorial"), nullptr);
  EXPECT_NE(r->FindMethod("main"), nullptr);
  EXPECT_EQ(r->FindMethod("nothere"), nullptr);
}

TEST(ParserTest, ClassWrapperAcceptedAndRecorded) {
  auto r = Parse("public class Foo { static int f() { return 1; } }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->class_name, "Foo");
  EXPECT_EQ(r->methods.size(), 1u);
}

TEST(ParserTest, ScannerTypedLocal) {
  auto r = Parse(
      "void f() { Scanner s = new Scanner(new File(\"x.txt\")); "
      "while (s.hasNext()) { int v = s.nextInt(); } s.close(); }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
}

TEST(ParserTest, EmptySubmissionIsError) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("class Foo { }").ok());
}

TEST(ParserTest, Figure2aParses) {
  const char* kSource = R"(
    void assignment1(int[] a) {
      int even = 0;
      int odd = 0;
      for (int i = 0; i <= a.length; i++) {
        if (i % 2 == 1)
          odd += a[i];
        if (i % 2 == 1)
          even *= a[i];
      }
      System.out.println(odd);
      System.out.println(even);
    })";
  auto r = Parse(kSource);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->methods[0].name, "assignment1");
}

TEST(ParserTest, Figure2bParses) {
  const char* kSource = R"(
    void assignment1(int[] a) {
      int o = 0, e = 1;
      int i = 0;
      while (i < a.length) {
        if (i % 2 == 1)
          o += a[i];
        if (i % 2 == 0)
          e *= a[i];
        i++;
      }
      System.out.print(o + ", " + e);
    })";
  ASSERT_TRUE(Parse(kSource).ok());
}

TEST(ParserTest, Figure7Parses) {
  const char* kSource = R"(
    void countGoldMedals(int year) {
      int i = 1, medals = 0, p = 0, y = 0;
      String fn = "", ln = "", e = "";
      Scanner s = new Scanner(new File("summer_olympics.txt"));
      while (s.hasNext()) {
        if (i % 5 == 4)
          e = s.next();
        if (i % 5 == 1)
          e = s.next();
        if (i % 5 == 1)
          e = s.next();
        if (i % 5 == 3)
          y = s.nextInt();
        if (i % 5 == 3)
          p = s.nextInt();
        if (i % 5 == 4 && y == year && p == 1)
          medals += 1;
        i++;
      }
      s.close();
      System.out.println(medals);
    })";
  ASSERT_TRUE(Parse(kSource).ok());
}

}  // namespace
}  // namespace jfeed::java
