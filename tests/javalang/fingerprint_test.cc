#include "javalang/fingerprint.h"

#include <gtest/gtest.h>

#include <string>

#include "javalang/ast.h"
#include "javalang/lexer.h"
#include "javalang/parser.h"

namespace jfeed::java {
namespace {

Method ParseOne(const std::string& source) {
  auto unit = Parse(source);
  EXPECT_TRUE(unit.ok()) << unit.status().ToString();
  EXPECT_EQ(unit->methods.size(), 1u);
  return std::move(unit->methods[0]);
}

TEST(FingerprintTest, ParserStampsFingerprintAndNormSource) {
  Method m = ParseOne("int f(int a) { return a + 1; }");
  EXPECT_NE(m.fingerprint, 0u);
  EXPECT_FALSE(m.norm_source.empty());
}

TEST(FingerprintTest, WhitespaceAndCommentsDoNotChangeFingerprint) {
  Method a = ParseOne("int f(int a) { return a + 1; }");
  Method b = ParseOne(
      "int f(int a) {\n"
      "  // a cosmetic comment\n"
      "  return a + 1;\n"
      "}\n");
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.norm_source, b.norm_source);
}

TEST(FingerprintTest, ModifiersDoNotChangeFingerprint) {
  // The parser discards modifiers, so `static int f` and `int f` yield the
  // same method semantics — and, by design, the same cache entry.
  Method plain = ParseOne("int f() { return 1; }");
  Method modified = ParseOne("public static int f() { return 1; }");
  EXPECT_EQ(plain.fingerprint, modified.fingerprint);
  EXPECT_EQ(plain.norm_source, modified.norm_source);
}

TEST(FingerprintTest, BodyEditChangesFingerprint) {
  Method a = ParseOne("int f(int a) { return a + 1; }");
  Method b = ParseOne("int f(int a) { return a + 2; }");
  Method c = ParseOne("int f(int b) { return b + 1; }");  // renamed param
  EXPECT_NE(a.fingerprint, b.fingerprint);
  EXPECT_NE(a.fingerprint, c.fingerprint);
}

TEST(FingerprintTest, NormSourceReparsesToSameFingerprint) {
  // The cache rebuilds a method's AST from norm_source; if re-lexing it
  // shifted the fingerprint, an entry would never match its own key.
  const char* sources[] = {
      "int f(int a) { return a + 1; }",
      "int f(int n) { int s = 0; for (int i = 0; i < n; i = i + 1) "
      "{ s = s + i; } return s; }",
      "boolean g(String s) { return s.equals(\"a \\\"quoted\\\" word\"); }",
  };
  for (const char* source : sources) {
    Method original = ParseOne(source);
    Method reparsed = ParseOne(original.norm_source);
    EXPECT_EQ(original.fingerprint, reparsed.fingerprint) << source;
    EXPECT_EQ(original.norm_source, reparsed.norm_source) << source;
  }
}

TEST(FingerprintTest, CharLiteralsSurviveNormalization) {
  // Char-literal tokens carry the bare decoded character as text; the
  // normalizer must re-quote and re-escape them or norm_source would not
  // re-lex (a bare '\n' would split the line).
  const char* sources[] = {
      "char f() { return 'a'; }",
      "char f() { return '\\n'; }",
      "char f() { return '\\t'; }",
      "char f() { return '\\\\'; }",
      "char f() { return '\\''; }",
      "boolean g(char c) { return c == ' '; }",
  };
  for (const char* source : sources) {
    Method original = ParseOne(source);
    Method reparsed = ParseOne(original.norm_source);
    EXPECT_EQ(original.fingerprint, reparsed.fingerprint) << source;
    EXPECT_EQ(original.norm_source, reparsed.norm_source) << source;
  }
}

TEST(FingerprintTest, ClonePreservesFingerprint) {
  Method m = ParseOne("int f(int a) { return a * 3; }");
  Method copy = m.Clone();
  EXPECT_EQ(copy.fingerprint, m.fingerprint);
  EXPECT_EQ(copy.norm_source, m.norm_source);
}

TEST(FingerprintTest, TokenStreamFingerprintIsWhitespaceInvariant) {
  auto a = Lex("int f ( ) { return 1 ; }");
  auto b = Lex("int f(){return 1;}  // trailing comment");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(FingerprintTokenStream(*a), FingerprintTokenStream(*b));
}

TEST(FingerprintTest, RawBytesFallbackIsDomainSeparated) {
  // A source that happens to equal some token spelling must not collide
  // with the lexed domain.
  auto tokens = Lex("int");
  ASSERT_TRUE(tokens.ok());
  EXPECT_NE(FingerprintRawBytes("int"), FingerprintTokenStream(*tokens));
  EXPECT_NE(FingerprintRawBytes("a"), FingerprintRawBytes("b"));
}

TEST(FingerprintTest, SubsliceFingerprintMatchesMethodBoundary) {
  // Two methods in one unit: each method's recorded fingerprint must equal
  // the fingerprint of the same method parsed alone (the property that
  // makes per-method caching coherent across multi-method submissions).
  auto unit = Parse(
      "int f(int a) { return a + 1; }\n"
      "int g(int b) { return b * 2; }\n");
  ASSERT_TRUE(unit.ok());
  ASSERT_EQ(unit->methods.size(), 2u);
  Method f_alone = ParseOne("int f(int a) { return a + 1; }");
  Method g_alone = ParseOne("int g(int b) { return b * 2; }");
  EXPECT_EQ(unit->methods[0].fingerprint, f_alone.fingerprint);
  EXPECT_EQ(unit->methods[1].fingerprint, g_alone.fingerprint);
  EXPECT_EQ(unit->methods[0].norm_source, f_alone.norm_source);
  EXPECT_EQ(unit->methods[1].norm_source, g_alone.norm_source);
}

}  // namespace
}  // namespace jfeed::java
