#include "javalang/printer.h"

#include <gtest/gtest.h>

#include "javalang/parser.h"

namespace jfeed::java {
namespace {

/// Property: print(parse(print(parse(s)))) == print(parse(s)) — the printed
/// form is a fixed point (idempotent normalization).
class ExprRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(ExprRoundTrip, PrintedFormIsAFixedPoint) {
  auto first = ParseExpression(GetParam());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  std::string printed = ExprToString(**first);
  auto second = ParseExpression(printed);
  ASSERT_TRUE(second.ok()) << "re-parse failed for: " << printed;
  EXPECT_EQ(ExprToString(**second), printed);
}

INSTANTIATE_TEST_SUITE_P(
    Expressions, ExprRoundTrip,
    ::testing::Values(
        "1 + 2 * 3", "(1 + 2) * 3", "a[i]", "a[i + 1]", "a.length",
        "i % 2 == 1", "i <= a.length", "odd += a[i]",
        "System.out.println(odd)", "x = y = 0", "-x * 3", "-(x + y)",
        "!(a && b)", "!a || b", "a - (b - c)", "a - b - c", "a / b / c",
        "a / (b / c)", "f(g(x), h(y))", "new int[n + 1]",
        "new Scanner(new File(\"data.txt\"))", "(int) (x / 2)",
        "a < b ? a : b", "x % 10", "n / 10", "rev * 10 + n % 10",
        "s.hasNext()", "y == year && p == 1", "i % 5 == 4 && y == year",
        "\"O: \" + x + \", E: \" + y", "Math.pow(x, i)", "i++", "--j",
        "a[i]++", "b[i - 1] = a[i] * i"));

TEST(PrinterTest, BinarySpacingIsNormalized) {
  auto r = ParseExpression("i%2==1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(ExprToString(**r), "i % 2 == 1");
}

TEST(PrinterTest, RedundantParenthesesDropped) {
  auto r = ParseExpression("((a) + ((b * c)))");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(ExprToString(**r), "a + b * c");
}

TEST(PrinterTest, NecessaryParenthesesKept) {
  auto r = ParseExpression("(a + b) * c");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(ExprToString(**r), "(a + b) * c");
}

TEST(PrinterTest, StatementPrinting) {
  auto r = ParseStatement("if (x > 0) { y = 1; } else { y = 2; }");
  ASSERT_TRUE(r.ok());
  std::string printed = StmtToString(**r);
  EXPECT_NE(printed.find("if (x > 0) {"), std::string::npos);
  EXPECT_NE(printed.find("} else {"), std::string::npos);
}

TEST(PrinterTest, ForStatementPrinting) {
  auto r = ParseStatement("for (int i = 0; i < n; i++) s += i;");
  ASSERT_TRUE(r.ok());
  std::string printed = StmtToString(**r);
  EXPECT_NE(printed.find("for (int i = 0; i < n; i++)"), std::string::npos)
      << printed;
}

TEST(PrinterTest, MethodRoundTrip) {
  const char* kSource =
      "void assignment1(int[] a) {\n"
      "    int even = 0;\n"
      "    for (int i = 0; i <= a.length; i++) {\n"
      "        if (i % 2 == 1)\n"
      "            even *= a[i];\n"
      "    }\n"
      "    System.out.println(even);\n"
      "}\n";
  auto first = Parse(kSource);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  std::string printed = UnitToString(*first);
  auto second = Parse(printed);
  ASSERT_TRUE(second.ok()) << "re-parse failed:\n" << printed;
  EXPECT_EQ(UnitToString(*second), printed);
}

TEST(PrinterTest, ClassWrapperRoundTrip) {
  auto first = Parse("class Foo { int f(int x) { return x + 1; } }");
  ASSERT_TRUE(first.ok());
  std::string printed = UnitToString(*first);
  EXPECT_NE(printed.find("class Foo {"), std::string::npos);
  auto second = Parse(printed);
  ASSERT_TRUE(second.ok()) << printed;
  EXPECT_EQ(second->class_name, "Foo");
}

TEST(PrinterTest, DoWhileRoundTrip) {
  auto first = ParseStatement("do { x++; } while (x < 10);");
  ASSERT_TRUE(first.ok());
  std::string printed = StmtToString(**first);
  auto second = ParseStatement(printed);
  ASSERT_TRUE(second.ok()) << printed;
}

}  // namespace
}  // namespace jfeed::java
