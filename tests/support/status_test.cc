#include "support/status.h"

#include <gtest/gtest.h>

#include "support/result.h"

namespace jfeed {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kParseError,
        StatusCode::kSemanticError, StatusCode::kExecutionError,
        StatusCode::kTimeout, StatusCode::kResourceExhausted,
        StatusCode::kNotFound, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

Status FailWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnIfError(int x) {
  JFEED_RETURN_IF_ERROR(FailWhenNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> DoublePositive(int x) {
  JFEED_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 21);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-3);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, AssignOrReturnChains) {
  EXPECT_EQ(*DoublePositive(4), 8);
  EXPECT_FALSE(DoublePositive(0).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

}  // namespace
}  // namespace jfeed
