#include "support/lite_regex.h"

#include <gtest/gtest.h>

#include <regex>
#include <string>
#include <vector>

namespace jfeed {
namespace {

/// Oracle check: LiteRegex must agree with std::regex (ECMAScript,
/// regex_search semantics) on every pattern it accepts.
void ExpectAgreesWithStdRegex(const std::string& pattern,
                              const std::vector<std::string>& texts) {
  LiteRegex lite;
  ASSERT_TRUE(LiteRegex::Compile(pattern, &lite)) << pattern;
  std::regex re(pattern, std::regex::ECMAScript);
  LiteRegexScratch scratch;
  for (const auto& text : texts) {
    EXPECT_EQ(lite.Search(text, &scratch), std::regex_search(text, re))
        << "pattern=" << pattern << " text=" << text;
  }
}

const std::vector<std::string>& JavaContents() {
  static const std::vector<std::string> texts = {
      "",
      "x",
      "int i = 0",
      "i = i + 1",
      "i++",
      "++i",
      "odd += a[i]",
      "i < s.length",
      "i <= s.length",
      "int even = 0",
      "return total",
      "System.out.println(medals)",
      "x = -5",
      "x = 12",
      "count = count + 2",
      "for (int j = 0; j < n; j++)",
      "a[i] = a[i] + 1",
      "s.length",
      "interval",  // 'i' inside a word: \b must reject.
      "int x=0",
  };
  return texts;
}

TEST(LiteRegexTest, LiteralsAndEscapes) {
  ExpectAgreesWithStdRegex("i \\+= 1", JavaContents());
  ExpectAgreesWithStdRegex("s\\[x\\]", JavaContents());
  ExpectAgreesWithStdRegex("x\\+\\+|\\+\\+x|x \\+= 1|x = x \\+ 1",
                           JavaContents());
  ExpectAgreesWithStdRegex("i < s\\.length", JavaContents());
  ExpectAgreesWithStdRegex("\\bi\\b", JavaContents());
  ExpectAgreesWithStdRegex("\\bi\\b \\+= \\bs\\b", JavaContents());
}

TEST(LiteRegexTest, ClassesQuantifiersAnchors) {
  ExpectAgreesWithStdRegex("x = -?\\d+", JavaContents());
  ExpectAgreesWithStdRegex("[a-z]+ = \\d+", JavaContents());
  ExpectAgreesWithStdRegex("^int", JavaContents());
  ExpectAgreesWithStdRegex("length$", JavaContents());
  ExpectAgreesWithStdRegex("i (<|<=) s\\.length", JavaContents());
  ExpectAgreesWithStdRegex("[^0-9]+", JavaContents());
  ExpectAgreesWithStdRegex("a*b?c+", {"", "b", "c", "ac", "aaacc", "ab",
                                      "abc", "xyz"});
  ExpectAgreesWithStdRegex("\\w+\\s*=\\s*\\w+", JavaContents());
  ExpectAgreesWithStdRegex("(foo|bar)+baz", {"foobaz", "barbaz", "baz",
                                             "foobarbaz", "fooba"});
  ExpectAgreesWithStdRegex("x(?:yz)?w", {"xw", "xyzw", "xyz", "xyw"});
}

TEST(LiteRegexTest, EmptyAndDegenerate) {
  ExpectAgreesWithStdRegex("", JavaContents());
  ExpectAgreesWithStdRegex("a|", JavaContents());
  ExpectAgreesWithStdRegex("(a|)*b", {"b", "aab", "c", ""});
  ExpectAgreesWithStdRegex("()", {"", "x"});
}

TEST(LiteRegexTest, DotDoesNotCrossLineTerminators) {
  ExpectAgreesWithStdRegex("a.b", {"axb", "a\nb", "ab", "a b"});
}

TEST(LiteRegexTest, UnsupportedSyntaxFallsBack) {
  LiteRegex lite;
  EXPECT_FALSE(LiteRegex::Compile("(?=x)", &lite));    // Lookahead.
  EXPECT_FALSE(LiteRegex::Compile("(a)\\1", &lite));   // Backreference.
  EXPECT_FALSE(LiteRegex::Compile("\\x41", &lite));    // Hex escape.
  EXPECT_FALSE(LiteRegex::Compile("\\u0041", &lite));  // Unicode escape.
  EXPECT_FALSE(LiteRegex::Compile("(a", &lite));       // Unbalanced group.
  EXPECT_FALSE(LiteRegex::Compile("[a", &lite));       // Unterminated class.
  EXPECT_FALSE(LiteRegex::Compile("*a", &lite));       // Dangling quantifier.
}

TEST(LiteRegexTest, SteadyStateSearchTouchesOnlyScratch) {
  LiteRegex lite;
  ASSERT_TRUE(LiteRegex::Compile("\\bi\\b (<|<=) \\bs\\b\\.length", &lite));
  LiteRegexScratch scratch;
  // Warm the scratch, then hammer it; the scratch vectors must not shrink
  // or thrash (sizes are monotone in program size).
  EXPECT_TRUE(lite.Search("i < s.length", &scratch));
  size_t mark_size = scratch.mark.size();
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(lite.Search("i < s.length", &scratch));
    EXPECT_FALSE(lite.Search("j < t.length", &scratch));
  }
  EXPECT_EQ(scratch.mark.size(), mark_size);
}

TEST(LiteRegexTest, SubstitutedTemplateShapes) {
  // The exact shapes ExprPattern emits: escaped variable names wrapped in
  // word boundaries, spliced between template fragments.
  ExpectAgreesWithStdRegex("\\bodd\\b \\+= \\ba\\b\\[\\bi\\b\\]",
                           JavaContents());
  ExpectAgreesWithStdRegex("\\bi\\b % 2 == 1", JavaContents());
  ExpectAgreesWithStdRegex("\\bcount\\b \\+=|\\bcount\\b = \\bcount\\b \\+",
                           JavaContents());
}

}  // namespace
}  // namespace jfeed
