#include "support/fault.h"

#include <gtest/gtest.h>

#include <vector>

namespace jfeed {
namespace {

using fault::FaultConfig;
using fault::Injector;
using fault::ScopedFaultInjection;

/// A function with an injection point, as production code would write it.
Status GuardedOperation() {
  JFEED_FAULT_POINT(fault::points::kLexer);
  return Status::OK();
}

TEST(FaultTest, DisabledInjectorNeverFails) {
  Injector::Get().Disable();
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(GuardedOperation().ok());
  }
}

TEST(FaultTest, ProbabilityOneFailsEveryHit) {
  FaultConfig config;
  config.probability = 1.0;
  ScopedFaultInjection scoped(config);
  for (int i = 0; i < 10; ++i) {
    Status s = GuardedOperation();
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kInternal);
    EXPECT_NE(s.message().find(fault::points::kLexer), std::string::npos);
  }
  EXPECT_EQ(Injector::Get().Hits(fault::points::kLexer), 10);
}

TEST(FaultTest, OnlyPointFilterSparesOtherPoints) {
  FaultConfig config;
  config.probability = 1.0;
  config.only_point = fault::points::kParser;
  ScopedFaultInjection scoped(config);
  EXPECT_TRUE(GuardedOperation().ok());  // kLexer point, filtered out.
  EXPECT_EQ(Injector::Get().Hits(fault::points::kLexer), 1);
}

TEST(FaultTest, SameSeedGivesSameFiringPattern) {
  auto run_campaign = [](uint64_t seed) {
    FaultConfig config;
    config.seed = seed;
    config.probability = 0.5;
    ScopedFaultInjection scoped(config);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) fired.push_back(!GuardedOperation().ok());
    return fired;
  };
  EXPECT_EQ(run_campaign(42), run_campaign(42));
  EXPECT_NE(run_campaign(42), run_campaign(43));  // Astronomically unlikely.
}

TEST(FaultTest, FractionalProbabilityFiresSomeButNotAll) {
  FaultConfig config;
  config.probability = 0.5;
  ScopedFaultInjection scoped(config);
  int failures = 0;
  for (int i = 0; i < 200; ++i) failures += GuardedOperation().ok() ? 0 : 1;
  EXPECT_GT(failures, 0);
  EXPECT_LT(failures, 200);
}

TEST(FaultTest, ConfiguredCodeIsCarried) {
  FaultConfig config;
  config.code = StatusCode::kResourceExhausted;
  ScopedFaultInjection scoped(config);
  EXPECT_EQ(GuardedOperation().code(), StatusCode::kResourceExhausted);
}

TEST(FaultTest, AllPointsListsTheRegisteredPipelineStages) {
  auto points = Injector::AllPoints();
  EXPECT_EQ(points.size(), 5u);
  for (const char* expected :
       {fault::points::kLexer, fault::points::kParser,
        fault::points::kEpdgBuilder, fault::points::kInterpreterCall,
        fault::points::kMatcher}) {
    bool found = false;
    for (const auto& p : points) found |= p == expected;
    EXPECT_TRUE(found) << expected;
  }
}

}  // namespace
}  // namespace jfeed
