#include "support/strings.h"

#include <gtest/gtest.h>

namespace jfeed {
namespace {

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"a"}, ", "), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, " + "), "a + b + c");
}

TEST(StringsTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  hi  "), "hi");
  EXPECT_EQ(Trim("\t\nhi"), "hi");
  EXPECT_EQ(Trim("hi"), "hi");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("ar", "bar"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(StringsTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("a.b.c", ".", "->"), "a->b->c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");
  EXPECT_EQ(ReplaceAll("abc", "", "x"), "abc");
  EXPECT_EQ(ReplaceAll("", "a", "x"), "");
}

TEST(StringsTest, RegexEscapeProtectsMetacharacters) {
  EXPECT_EQ(RegexEscape("a[i]"), "a\\[i\\]");
  EXPECT_EQ(RegexEscape("x + 1"), "x \\+ 1");
  EXPECT_EQ(RegexEscape("f(x)"), "f\\(x\\)");
  EXPECT_EQ(RegexEscape("plain"), "plain");
  EXPECT_EQ(RegexEscape("a.b"), "a\\.b");
}

TEST(StringsTest, IdentifierPredicates) {
  EXPECT_TRUE(IsIdentStart('a'));
  EXPECT_TRUE(IsIdentStart('_'));
  EXPECT_TRUE(IsIdentStart('$'));
  EXPECT_FALSE(IsIdentStart('1'));
  EXPECT_TRUE(IsIdentPart('1'));
  EXPECT_FALSE(IsIdentPart('-'));
}

}  // namespace
}  // namespace jfeed
