#include "support/regex_cache.h"

#include <gtest/gtest.h>

namespace jfeed {
namespace {

TEST(RegexCacheTest, CompilesAndCaches) {
  RegexCache cache;
  const std::regex* first = cache.Get("a+b");
  ASSERT_NE(first, nullptr);
  EXPECT_TRUE(std::regex_search(std::string("xaaab"), *first));
  // Second lookup returns the same compiled object.
  EXPECT_EQ(cache.Get("a+b"), first);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(RegexCacheTest, InvalidPatternsAreNegativeCached) {
  RegexCache cache;
  EXPECT_EQ(cache.Get("(["), nullptr);
  EXPECT_EQ(cache.Get("(["), nullptr);  // No recompilation attempt throw.
  EXPECT_EQ(cache.size(), 1u);
}

TEST(RegexCacheTest, EvictsWhenFull) {
  RegexCache cache(/*max_entries=*/4);
  for (int i = 0; i < 4; ++i) {
    ASSERT_NE(cache.Get("p" + std::to_string(i)), nullptr);
  }
  EXPECT_EQ(cache.size(), 4u);
  // The fifth insertion clears and restarts the cache.
  ASSERT_NE(cache.Get("p4"), nullptr);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(RegexCacheTest, GlobalIsSingleton) {
  EXPECT_EQ(&RegexCache::Global(), &RegexCache::Global());
  EXPECT_NE(RegexCache::Global().Get("x = 0"), nullptr);
}

}  // namespace
}  // namespace jfeed
