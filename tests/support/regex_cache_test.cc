#include "support/regex_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>

namespace jfeed {
namespace {

TEST(RegexCacheTest, CompilesAndCaches) {
  RegexCache cache;
  const std::regex* first = cache.Get("a+b");
  ASSERT_NE(first, nullptr);
  EXPECT_TRUE(std::regex_search(std::string("xaaab"), *first));
  // Second lookup returns the same compiled object.
  EXPECT_EQ(cache.Get("a+b"), first);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(RegexCacheTest, InvalidPatternsAreNegativeCached) {
  RegexCache cache;
  EXPECT_EQ(cache.Get("(["), nullptr);
  EXPECT_EQ(cache.Get("(["), nullptr);  // No recompilation attempt throw.
  EXPECT_EQ(cache.size(), 1u);
}

TEST(RegexCacheTest, EvictsOneEntryWhenFullInsteadOfClearing) {
  RegexCache cache(/*max_entries=*/4);
  for (int i = 0; i < 4; ++i) {
    ASSERT_NE(cache.Get("p" + std::to_string(i)), nullptr);
  }
  EXPECT_EQ(cache.size(), 4u);
  // Overflow evicts exactly one entry, never the whole cache.
  ASSERT_NE(cache.Get("p4"), nullptr);
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(RegexCacheTest, SecondChanceEvictionKeepsHotEntries) {
  RegexCache cache(/*max_entries=*/4);
  for (int i = 0; i < 4; ++i) {
    ASSERT_NE(cache.Get("p" + std::to_string(i)), nullptr);
  }
  // Touch p0 and p1: their reference bits protect them from the next
  // eviction scans; the cold p2/p3 go first.
  cache.Get("p0");
  cache.Get("p1");
  cache.Get("p4");
  cache.Get("p5");
  uint64_t hits_before = cache.hits();
  cache.Get("p0");
  cache.Get("p1");
  EXPECT_EQ(cache.hits(), hits_before + 2) << "hot entries were evicted";
}

TEST(RegexCacheTest, ThreadLocalIsPerThread) {
  RegexCache* main_instance = &RegexCache::ThreadLocal();
  EXPECT_EQ(main_instance, &RegexCache::ThreadLocal());
  EXPECT_NE(RegexCache::ThreadLocal().Get("x = 0"), nullptr);
  RegexCache* worker_instance = nullptr;
  std::thread worker(
      [&worker_instance] { worker_instance = &RegexCache::ThreadLocal(); });
  worker.join();
  EXPECT_NE(worker_instance, nullptr);
  EXPECT_NE(worker_instance, main_instance);
}

}  // namespace
}  // namespace jfeed
