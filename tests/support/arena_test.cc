#include "support/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace jfeed {
namespace {

TEST(ArenaTest, BumpAllocationIsContiguousWithinAChunk) {
  Arena arena;
  char* a = static_cast<char*>(arena.Allocate(16, 1));
  char* b = static_cast<char*>(arena.Allocate(16, 1));
  EXPECT_EQ(b, a + 16);
  EXPECT_EQ(arena.bytes_allocated(), 32u);
}

TEST(ArenaTest, AlignmentIsRespected) {
  Arena arena;
  arena.Allocate(1, 1);
  void* p8 = arena.Allocate(8, 8);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p8) % 8, 0u);
  arena.Allocate(3, 1);
  void* p16 = arena.Allocate(16, 16);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p16) % 16, 0u);
}

TEST(ArenaTest, ChunkGrowthServesRequestsLargerThanOneChunk) {
  Arena arena;
  // Far more than the first chunk: forces the chunk list to grow.
  std::vector<char*> blocks;
  for (int i = 0; i < 100; ++i) {
    char* p = static_cast<char*>(arena.Allocate(1024, 1));
    std::memset(p, i, 1024);
    blocks.push_back(p);
  }
  // Every block is still intact (no chunk was recycled mid-cycle).
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(blocks[i][0], static_cast<char>(i));
    EXPECT_EQ(blocks[i][1023], static_cast<char>(i));
  }
  EXPECT_GE(arena.chunk_count(), 2u);
}

TEST(ArenaTest, ResetReusesMemoryWithoutNewChunks) {
  Arena arena;
  for (int i = 0; i < 50; ++i) arena.Allocate(1000, 8);
  size_t chunks = arena.chunk_count();
  size_t reserved = arena.bytes_reserved();
  for (int cycle = 0; cycle < 10; ++cycle) {
    arena.Reset();
    EXPECT_EQ(arena.bytes_allocated(), 0u);
    for (int i = 0; i < 50; ++i) arena.Allocate(1000, 8);
    // Steady state: the same chunks serve every cycle.
    EXPECT_EQ(arena.chunk_count(), chunks);
    EXPECT_EQ(arena.bytes_reserved(), reserved);
  }
}

TEST(ArenaTest, LargeObjectFallbackIsReleasedOnReset) {
  Arena arena;
  void* big = arena.Allocate(8u << 20, 16);  // 8 MiB > max chunk size.
  ASSERT_NE(big, nullptr);
  std::memset(big, 0xAB, 8u << 20);
  size_t reserved_with_big = arena.bytes_reserved();
  arena.Reset();
  // The dedicated chunk is gone; normal chunks stay.
  EXPECT_LT(arena.bytes_reserved(), reserved_with_big);
}

TEST(ArenaTest, PeakBytesTracksHighWaterAcrossResets) {
  Arena arena;
  arena.Allocate(10'000, 8);
  EXPECT_GE(arena.peak_bytes(), 10'000u);
  arena.Reset();
  arena.Allocate(100, 8);
  EXPECT_GE(arena.peak_bytes(), 10'000u);  // Peak survives reset.
  EXPECT_EQ(arena.bytes_allocated(), 100u);
}

TEST(ArenaTest, StrDupCopiesIntoArena) {
  Arena arena;
  std::string source = "int i = 0";
  std::string_view copy = arena.StrDup(source);
  source.assign("clobbered");
  EXPECT_EQ(copy, "int i = 0");
  EXPECT_TRUE(arena.StrDup("").empty());
}

TEST(ArenaVecTest, PushGrowAndIterate) {
  Arena arena;
  ArenaVec<int32_t> v(&arena);
  for (int32_t i = 0; i < 1000; ++i) v.push_back(i);
  ASSERT_EQ(v.size(), 1000u);
  for (int32_t i = 0; i < 1000; ++i) EXPECT_EQ(v[i], i);
  int64_t sum = 0;
  for (int32_t x : v) sum += x;
  EXPECT_EQ(sum, 999 * 1000 / 2);
}

TEST(ArenaVecTest, AppendAndResize) {
  Arena arena;
  ArenaVec<uint32_t> v(&arena);
  uint32_t* span = v.Append(3);
  span[0] = 7; span[1] = 8; span[2] = 9;
  EXPECT_EQ(v.size(), 3u);
  v.resize(5, 42);
  EXPECT_EQ(v[0], 7u);
  EXPECT_EQ(v[3], 42u);
  EXPECT_EQ(v[4], 42u);
  v.clear();
  EXPECT_TRUE(v.empty());
}

}  // namespace
}  // namespace jfeed
