// In-process integration tests for the jfeedd grading daemon: the full
// serving surface (POST /grade + the five introspection endpoints) on an
// ephemeral loopback port, including the drain lifecycle the acceptance
// criteria in DESIGN.md §6b describe.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "kb/assignments.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/daemon.h"
#include "tests/testutil/http_client.h"

namespace jfeed {
namespace {

#ifndef JFEED_OBS_DISABLED

using jfeed::testutil::HttpFetch;

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string GradeLine(const std::string& id, const std::string& source) {
  return "{\"id\":\"" + id + "\",\"source\":\"" + JsonEscape(source) +
         "\"}\n";
}

class DaemonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::EventLog::Global().Clear();
    service::DaemonOptions options;
    options.assignment_id = "assignment1";
    options.jobs = 2;
    daemon_ = std::make_unique<service::GradingDaemon>(options);
    ASSERT_TRUE(daemon_->Start().ok());
    ASSERT_NE(daemon_->port(), 0);
  }

  void TearDown() override {
    daemon_->Stop();
    daemon_.reset();
    // The daemon enables the global observability sinks; put them back so
    // the other suites in this binary start from the quiet default.
    obs::EventLog::Global().set_enabled(false);
    obs::EventLog::Global().Clear();
    obs::Registry::Global().set_enabled(false);
  }

  const kb::Assignment& assignment() const {
    return kb::KnowledgeBase::Get().assignment("assignment1");
  }

  std::unique_ptr<service::GradingDaemon> daemon_;
};

TEST_F(DaemonTest, GradesCorrectAndIncorrectSubmissionsEndToEnd) {
  // One correct submission (the reference) and one seeded single-error
  // variant, in one NDJSON POST body.
  std::string body = GradeLine("ok-1", assignment().Reference()) +
                     GradeLine("bad-1", assignment().generator.Generate(1));
  auto graded = HttpFetch(daemon_->port(), "POST", "/grade", body);
  ASSERT_TRUE(graded.ok);
  EXPECT_EQ(graded.status, 200);

  // Two NDJSON outcome lines, in input order, joinable by id.
  std::vector<std::string> lines;
  size_t pos = 0;
  while (pos < graded.body.size()) {
    size_t eol = graded.body.find('\n', pos);
    if (eol == std::string::npos) break;
    lines.push_back(graded.body.substr(pos, eol - pos));
    pos = eol + 1;
  }
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"id\":\"ok-1\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"verdict\":\"correct\""), std::string::npos)
      << lines[0];
  EXPECT_NE(lines[1].find("\"id\":\"bad-1\""), std::string::npos);
  EXPECT_EQ(lines[1].find("\"verdict\":\"correct\""), std::string::npos)
      << lines[1];

  // The grading moved the contract metrics.
  auto metrics = HttpFetch(daemon_->port(), "GET", "/metrics");
  ASSERT_TRUE(metrics.ok);
  EXPECT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.headers.find("text/plain; version=0.0.4"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("jfeed_sched_jobs_total 2"), std::string::npos)
      << metrics.body.substr(0, 512);
  EXPECT_NE(metrics.body.find("jfeed_outcomes_total"), std::string::npos);
  EXPECT_NE(metrics.body.find("jfeed_verdicts_total"), std::string::npos);
  EXPECT_NE(metrics.body.find("jfeed_events_dropped_total"),
            std::string::npos);

  // The flight recorder holds one wide event per submission, with the
  // verdict, the degradation rung and per-stage timings.
  auto events = HttpFetch(daemon_->port(), "GET", "/events");
  ASSERT_TRUE(events.ok);
  std::vector<obs::WideEvent> recorded;
  pos = 0;
  while (pos < events.body.size()) {
    size_t eol = events.body.find('\n', pos);
    if (eol == std::string::npos) break;
    obs::WideEvent event;
    ASSERT_TRUE(obs::FromJson(events.body.substr(pos, eol - pos), &event));
    recorded.push_back(event);
    pos = eol + 1;
  }
  ASSERT_EQ(recorded.size(), 2u);
  for (const auto& event : recorded) {
    EXPECT_EQ(event.assignment, "assignment1");
    EXPECT_FALSE(event.verdict.empty());
    EXPECT_FALSE(event.tier.empty());
    EXPECT_EQ(event.cache, "miss");  // First sight of both submissions.
    // Stage timings were measured, not defaulted: a graded submission
    // always paid for parse + match at least.
    EXPECT_GT(event.parse_ms + event.epdg_ms + event.match_ms +
                  event.functional_ms,
              0.0);
  }
  bool saw_correct = false;
  bool saw_incorrect = false;
  for (const auto& event : recorded) {
    if (event.submission_id == "ok-1") {
      saw_correct = event.verdict == "correct";
    }
    if (event.submission_id == "bad-1") {
      saw_incorrect = event.verdict != "correct";
    }
  }
  EXPECT_TRUE(saw_correct);
  EXPECT_TRUE(saw_incorrect);
}

TEST_F(DaemonTest, StatuszReportsBuildAndSchedulerState) {
  auto result = HttpFetch(daemon_->port(), "GET", "/statusz");
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.status, 200);
  EXPECT_NE(result.body.find("\"version\":\""), std::string::npos);
  EXPECT_NE(result.body.find("\"assignment\":\"assignment1\""),
            std::string::npos);
  EXPECT_NE(result.body.find("\"utilization\":"), std::string::npos);
  EXPECT_NE(result.body.find("\"cache\":{\"enabled\":true"),
            std::string::npos);
  EXPECT_NE(result.body.find("\"draining\":false"), std::string::npos);
}

TEST_F(DaemonTest, TracezServesSpansAfterGrading) {
  std::string body = GradeLine("t-1", assignment().Reference());
  ASSERT_TRUE(HttpFetch(daemon_->port(), "POST", "/grade", body).ok);
  // No ?limit= here: the scheduler job span starts before the dozens of
  // inner pipeline spans, so a newest-N cut could drop it.
  auto result = HttpFetch(daemon_->port(), "GET", "/tracez");
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.status, 200);
  EXPECT_NE(result.body.find("\"open_spans\":"), std::string::npos);
  EXPECT_NE(result.body.find("\"name\":\"sched.job\""), std::string::npos)
      << result.body.substr(0, 512);

  // A limited scrape returns at most that many spans.
  auto limited = HttpFetch(daemon_->port(), "GET", "/tracez?limit=1");
  ASSERT_TRUE(limited.ok);
  size_t names = 0;
  for (size_t pos = 0;
       (pos = limited.body.find("\"name\":", pos)) != std::string::npos;
       ++pos) {
    ++names;
  }
  EXPECT_LE(names, 1u);
}

TEST_F(DaemonTest, TraceparentHeaderThreadsThroughOutcomeAndEvents) {
  // A client-minted W3C traceparent must be adopted, not re-minted: the
  // outcome line and the wide event both join on the caller's trace id,
  // and /events?trace_id= narrows the flight recorder to that one trace.
  const std::string trace = "4bf92f3577b34da6a3ce929d0e0e4736";
  const std::string header = "00-" + trace + "-00f067aa0ba902b7-01";
  auto traced = HttpFetch(daemon_->port(), "POST", "/grade",
                          GradeLine("traced-1", assignment().Reference()),
                          {{"traceparent", header}});
  ASSERT_TRUE(traced.ok);
  EXPECT_EQ(traced.status, 200);
  EXPECT_NE(traced.body.find("\"trace_id\":\"" + trace + "\""),
            std::string::npos)
      << traced.body;

  // A second submission without a header gets its own (minted) trace.
  auto untraced = HttpFetch(daemon_->port(), "POST", "/grade",
                            GradeLine("untraced-1", assignment().Reference()));
  ASSERT_TRUE(untraced.ok);
  EXPECT_EQ(untraced.body.find(trace), std::string::npos) << untraced.body;

  // The trace filter returns exactly the traced submission's event.
  auto events =
      HttpFetch(daemon_->port(), "GET", "/events?trace_id=" + trace);
  ASSERT_TRUE(events.ok);
  EXPECT_EQ(events.status, 200);
  obs::WideEvent event;
  ASSERT_TRUE(obs::FromJson(events.body, &event)) << events.body;
  EXPECT_EQ(event.submission_id, "traced-1");
  EXPECT_EQ(event.trace_id, trace);
  EXPECT_FALSE(event.span_id.empty());
  EXPECT_EQ(events.body.find("untraced-1"), std::string::npos);

  // A malformed traceparent is never an excuse to reject the grade: the
  // daemon mints a fresh root and counts the rejection.
  auto recovered = HttpFetch(daemon_->port(), "POST", "/grade",
                             GradeLine("garbled-1", assignment().Reference()),
                             {{"traceparent", "00-garbage"}});
  ASSERT_TRUE(recovered.ok);
  EXPECT_EQ(recovered.status, 200);
  EXPECT_NE(recovered.body.find("\"verdict\":\"correct\""), std::string::npos);
  auto metrics = HttpFetch(daemon_->port(), "GET", "/metrics");
  ASSERT_TRUE(metrics.ok);
  EXPECT_NE(metrics.body.find("jfeed_trace_context_invalid_total 1"),
            std::string::npos)
      << metrics.body.substr(0, 512);
}

TEST_F(DaemonTest, TracezChromeFormatExportsPerfettoDocument) {
  ASSERT_TRUE(HttpFetch(daemon_->port(), "POST", "/grade",
                        GradeLine("chrome-1", assignment().Reference()))
                  .ok);
  auto result =
      HttpFetch(daemon_->port(), "GET", "/tracez?format=chrome&pid=3");
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.status, 200);
  EXPECT_NE(result.body.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(result.body.find("\"process_name\""), std::string::npos);
  EXPECT_NE(result.body.find("\"pid\":3"), std::string::npos);
  EXPECT_NE(result.body.find("\"sched.job\""), std::string::npos)
      << result.body.substr(0, 512);
}

TEST_F(DaemonTest, SlozReportsPerAssignmentBudgets) {
  ASSERT_TRUE(HttpFetch(daemon_->port(), "POST", "/grade",
                        GradeLine("slo-1", assignment().Reference()))
                  .ok);
  auto result = HttpFetch(daemon_->port(), "GET", "/sloz");
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.status, 200);
  EXPECT_NE(result.body.find("\"policy\":"), std::string::npos);
  EXPECT_NE(result.body.find("\"assignment\":\"assignment1\""),
            std::string::npos)
      << result.body;
  // One fast grade against the generous default policy: the budget is
  // untouched and nothing burns.
  EXPECT_NE(result.body.find("\"budget_remaining_ppm\":1000000"),
            std::string::npos)
      << result.body;
  EXPECT_NE(result.body.find("\"fast_burn\":false"), std::string::npos);
  // The grade's latency histogram exemplar links budget to a trace id.
  EXPECT_NE(result.body.find("\"exemplars\":["), std::string::npos);
  EXPECT_NE(result.body.find("\"trace_id\":\""), std::string::npos);
}

TEST_F(DaemonTest, FastBudgetBurnDegradesHealthzBeforeShedding) {
  // A deliberately impossible SLO: every grade is an SLO-bad event
  // (latency objective 0 ms) and one event arms the alert. Health must
  // degrade on burn while /grade still answers — the load balancer steers
  // away *before* the admission quota starts shedding student work.
  service::DaemonOptions options;
  options.assignment_id = "assignment1";
  options.jobs = 2;
  options.slo.latency_threshold_us = 0;
  options.slo.min_events = 1;
  service::GradingDaemon strict(options);
  ASSERT_TRUE(strict.Start().ok());

  auto graded = HttpFetch(strict.port(), "POST", "/grade",
                          GradeLine("burn-1", assignment().Reference()));
  ASSERT_TRUE(graded.ok);
  EXPECT_EQ(graded.status, 200) << "burning budget must not refuse grades";

  auto health = HttpFetch(strict.port(), "GET", "/healthz");
  ASSERT_TRUE(health.ok);
  EXPECT_EQ(health.status, 503);
  EXPECT_NE(health.body.find("\"status\":\"slo_fast_burn\""),
            std::string::npos)
      << health.body;

  // The same policy with the health hook disabled stays green.
  strict.Stop();
  options.slo_health = false;
  service::GradingDaemon tolerant(options);
  ASSERT_TRUE(tolerant.Start().ok());
  ASSERT_TRUE(HttpFetch(tolerant.port(), "POST", "/grade",
                        GradeLine("burn-2", assignment().Reference()))
                  .ok);
  auto tolerated = HttpFetch(tolerant.port(), "GET", "/healthz");
  ASSERT_TRUE(tolerated.ok);
  EXPECT_EQ(tolerated.status, 200) << tolerated.body;
  tolerant.Stop();
}

TEST_F(DaemonTest, HealthzFlipsUnreadyDuringDrainAndGradeIsRefused) {
  auto healthy = HttpFetch(daemon_->port(), "GET", "/healthz");
  ASSERT_TRUE(healthy.ok);
  EXPECT_EQ(healthy.status, 200);
  EXPECT_NE(healthy.body.find("\"status\":\"ok\""), std::string::npos);

  daemon_->BeginDrain();

  auto draining = HttpFetch(daemon_->port(), "GET", "/healthz");
  ASSERT_TRUE(draining.ok);
  EXPECT_EQ(draining.status, 503);
  EXPECT_NE(draining.body.find("\"status\":\"draining\""),
            std::string::npos);

  // New grade work is refused while draining...
  auto refused = HttpFetch(daemon_->port(), "POST", "/grade",
                           GradeLine("late", assignment().Reference()));
  ASSERT_TRUE(refused.ok);
  EXPECT_EQ(refused.status, 503);

  // ...but the introspection surface keeps answering, so the drain itself
  // is observable.
  auto metrics = HttpFetch(daemon_->port(), "GET", "/metrics");
  ASSERT_TRUE(metrics.ok);
  EXPECT_EQ(metrics.status, 200);
}

TEST_F(DaemonTest, MalformedNdjsonLineYieldsPerLineErrorNotBatchFailure) {
  // Regression pin for the grade --batch parity contract: one bad line in
  // a POST /grade body must produce an error object AT ITS POSITION while
  // every other line still grades — never a whole-batch 4xx, never a
  // dropped or reordered line.
  std::string body = GradeLine("ok-1", assignment().Reference());
  body += "this is not json\n";
  body += "{\"id\":\"no-source\"}\n";
  body += GradeLine("ok-2", assignment().Reference());

  auto graded = HttpFetch(daemon_->port(), "POST", "/grade", body);
  ASSERT_TRUE(graded.ok);
  EXPECT_EQ(graded.status, 200);

  std::vector<std::string> lines;
  size_t pos = 0;
  while (pos < graded.body.size()) {
    size_t eol = graded.body.find('\n', pos);
    if (eol == std::string::npos) break;
    lines.push_back(graded.body.substr(pos, eol - pos));
    pos = eol + 1;
  }
  ASSERT_EQ(lines.size(), 4u) << graded.body;

  EXPECT_NE(lines[0].find("\"id\":\"ok-1\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"verdict\":\"correct\""), std::string::npos);

  // Line 1: not JSON. An error object carrying the line's index and an
  // InvalidArgument diagnostic, id null because none could be parsed.
  EXPECT_NE(lines[1].find("\"index\":1"), std::string::npos) << lines[1];
  EXPECT_NE(lines[1].find("\"error\""), std::string::npos) << lines[1];
  EXPECT_NE(lines[1].find("InvalidArgument"), std::string::npos) << lines[1];
  EXPECT_EQ(lines[1].find("\"verdict\""), std::string::npos) << lines[1];

  // Line 2: valid JSON, missing the source field — same per-line contract.
  EXPECT_NE(lines[2].find("\"index\":2"), std::string::npos) << lines[2];
  EXPECT_NE(lines[2].find("\"error\""), std::string::npos) << lines[2];

  EXPECT_NE(lines[3].find("\"id\":\"ok-2\""), std::string::npos);
  EXPECT_NE(lines[3].find("\"verdict\":\"correct\""), std::string::npos);
}

TEST_F(DaemonTest, DrainUnderLoadAnswersEveryAcceptedSubmission) {
  // SIGTERM semantics under fire: N concurrent POSTs are in flight when
  // the drain begins. Every request that was accepted must still get a
  // complete NDJSON response (one line per submission) — a drain loses no
  // student work — while /healthz flips to 503 immediately and requests
  // arriving after the flip are refused with 503.
  constexpr int kClients = 8;
  std::vector<std::thread> clients;
  std::vector<testutil::HttpResult> results(kClients);
  std::atomic<int> started{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([this, c, &results, &started] {
      std::string body;
      for (int i = 0; i < 4; ++i) {
        body += GradeLine("d-" + std::to_string(c) + "-" + std::to_string(i),
                          assignment().generator.Generate(c * 4 + i));
      }
      started.fetch_add(1);
      results[c] = HttpFetch(daemon_->port(), "POST", "/grade", body);
    });
  }
  // Let the clients fire, then drain mid-flight.
  while (started.load() < kClients) std::this_thread::yield();
  daemon_->BeginDrain();

  auto draining = HttpFetch(daemon_->port(), "GET", "/healthz");
  ASSERT_TRUE(draining.ok);
  EXPECT_EQ(draining.status, 503);
  EXPECT_NE(draining.body.find("\"status\":\"draining\""), std::string::npos);

  for (auto& client : clients) client.join();
  for (int c = 0; c < kClients; ++c) {
    // Accepted -> a complete 200 with all four outcome lines; refused (the
    // POST raced past the drain flip) -> a clean 503. Nothing in between:
    // no dropped connections, no truncated bodies.
    ASSERT_TRUE(results[c].ok) << "client " << c;
    if (results[c].status == 200) {
      size_t outcome_lines = 0;
      for (char ch : results[c].body) outcome_lines += ch == '\n';
      EXPECT_EQ(outcome_lines, 4u) << results[c].body;
    } else {
      EXPECT_EQ(results[c].status, 503);
    }
  }

  daemon_->Stop();
  EXPECT_EQ(obs::Tracer::Global().OpenSpanCount(), 0);
}

TEST_F(DaemonTest, ShutdownLeavesNoOpenSpans) {
  std::string body = GradeLine("s-1", assignment().Reference()) +
                     GradeLine("s-2", assignment().generator.Generate(2));
  ASSERT_TRUE(HttpFetch(daemon_->port(), "POST", "/grade", body).ok);
  daemon_->Stop();
  EXPECT_EQ(obs::Tracer::Global().OpenSpanCount(), 0);
}

TEST_F(DaemonTest, MethodGuards) {
  auto get_grade = HttpFetch(daemon_->port(), "GET", "/grade");
  ASSERT_TRUE(get_grade.ok);
  EXPECT_EQ(get_grade.status, 405);
  auto empty_post = HttpFetch(daemon_->port(), "POST", "/grade", "\n\n");
  ASSERT_TRUE(empty_post.ok);
  EXPECT_EQ(empty_post.status, 400);
}

// The TSan target: concurrent scrapes of every introspection endpoint while
// a batch grades. Races between Registry::Render, EventLog::Append,
// Tracer::Snapshot and the grading workers show up here.
TEST_F(DaemonTest, ConcurrentScrapesDuringBatch) {
  std::atomic<bool> done{false};
  std::atomic<int> scrape_failures{0};
  const char* endpoints[] = {"/metrics", "/healthz", "/statusz", "/tracez",
                             "/events"};
  std::vector<std::thread> scrapers;
  for (const char* endpoint : endpoints) {
    scrapers.emplace_back([this, endpoint, &done, &scrape_failures] {
      while (!done.load(std::memory_order_relaxed)) {
        auto result = HttpFetch(daemon_->port(), "GET", endpoint);
        // /healthz may legitimately answer 503 under load; transport
        // failures are the bug.
        if (!result.ok) scrape_failures.fetch_add(1);
      }
    });
  }

  std::string body;
  for (int i = 0; i < 12; ++i) {
    body += GradeLine("c-" + std::to_string(i),
                      assignment().generator.Generate(i));
  }
  auto graded = HttpFetch(daemon_->port(), "POST", "/grade", body);
  done.store(true, std::memory_order_relaxed);
  for (auto& scraper : scrapers) scraper.join();

  ASSERT_TRUE(graded.ok);
  EXPECT_EQ(graded.status, 200);
  EXPECT_EQ(scrape_failures.load(), 0);
}

#else  // JFEED_OBS_DISABLED

TEST(DaemonStubTest, StartRefusesWithClearError) {
  service::DaemonOptions options;
  options.assignment_id = "assignment1";
  service::GradingDaemon daemon(options);
  Status status = daemon.Start();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("JFEED_OBS=OFF"), std::string::npos);
  EXPECT_FALSE(daemon.serving());
  daemon.Stop();
}

#endif  // JFEED_OBS_DISABLED

}  // namespace
}  // namespace jfeed
