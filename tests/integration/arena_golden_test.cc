// Arena-vs-heap golden test: grading on pooled, recycled arena memory —
// the steady-state configuration of the grading pipeline (shared
// EpdgMemory, shared match scratch arena, AST nodes bump-allocated under
// an AstArenaScope, everything Reset() between submissions) — must produce
// byte-identical SubmissionFeedback to grading with fresh private heap
// state, across the full synthetic corpus of every assignment. Any
// divergence means arena reuse leaked state from one submission into the
// next, or the arena-backed structures changed observable semantics.

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

#include "core/submission_matcher.h"
#include "javalang/ast.h"
#include "javalang/parser.h"
#include "kb/assignments.h"
#include "pdg/epdg.h"
#include "support/arena.h"
#include "synth/generator.h"

namespace jfeed {
namespace {

constexpr uint64_t kSamplesPerAssignment = 10;

std::string DescribeFeedback(const core::SubmissionFeedback& f) {
  std::string out = f.matched ? "matched " : "unmatched ";
  out += std::to_string(f.score) + "\n";
  for (const auto& [q, h] : f.method_assignment) out += q + "=" + h + "\n";
  for (const auto& c : f.comments) {
    out += c.source_id + "|" + c.method + "|" +
           std::to_string(static_cast<int>(c.kind)) + "|" + c.message + "\n";
    for (const auto& d : c.details) out += "  " + d + "\n";
  }
  return out;
}

class ArenaGoldenTest : public ::testing::TestWithParam<const char*> {
 protected:
  const kb::Assignment& assignment() const {
    return kb::KnowledgeBase::Get().assignment(GetParam());
  }
};

TEST_P(ArenaGoldenTest, PooledFeedbackIsByteIdenticalToHeapFeedback) {
  const auto& a = assignment();

  // One pooled memory for the whole corpus, recycled between submissions —
  // exactly what a pipeline worker does in steady state.
  pdg::EpdgMemory pooled;
  Arena scratch;
  core::SubmissionMatchOptions pooled_options;
  pooled_options.epdg_memory = &pooled;
  pooled_options.match.scratch_arena = &scratch;
  const core::SubmissionMatchOptions heap_options;

  auto indexes =
      synth::SampleIndexes(a.generator.SpaceSize(), kSamplesPerAssignment);
  for (uint64_t index : indexes) {
    std::string source = a.generator.Generate(index);

    auto heap_fb = core::MatchSubmissionSource(a.spec, source, heap_options);
    ASSERT_TRUE(heap_fb.ok()) << a.id << " index " << index;

    pooled.Reset();
    scratch.Reset();
    std::string pooled_description;
    {
      // The scope must close (destroying the AST) before the next Reset.
      java::AstArenaScope ast_scope(&pooled.arena);
      auto unit = java::Parse(source);
      ASSERT_TRUE(unit.ok()) << a.id << " index " << index;
      auto pooled_fb = core::MatchSubmission(a.spec, *unit, pooled_options);
      ASSERT_TRUE(pooled_fb.ok()) << a.id << " index " << index;
      pooled_description = DescribeFeedback(*pooled_fb);
    }

    EXPECT_EQ(DescribeFeedback(*heap_fb), pooled_description)
        << a.id << " index " << index;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAssignments, ArenaGoldenTest,
    ::testing::ValuesIn([]() {
      std::vector<const char*> ids;
      for (const auto& id : kb::KnowledgeBase::Get().assignment_ids()) {
        ids.push_back(id.c_str());
      }
      return ids;
    }()),
    [](const ::testing::TestParamInfo<const char*>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace jfeed
