// End-to-end distributed tracing across the fleet: one trace id, minted at
// the broker edge, must survive routing, a mid-request worker crash, the
// retry onto a surviving worker, the worker's grading pipeline, the
// flight-recorder wide event, and the federated Chrome-trace export. The
// setup mirrors fleet_chaos_test.cc — real in-process GradingDaemons under
// fleet::Router with deterministic fault injection — so every per-request
// retry decision is exactly reproducible. Real multi-process federation
// (broker /tracez scraping worker rings over HTTP) is exercised by the CI
// fleet-smoke job; in-process the workers share one Tracer, so the stitch
// here runs over one export per logical process role.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "fleet/router.h"
#include "fleet/scrape.h"
#include "kb/assignments.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "service/daemon.h"
#include "support/fault.h"

namespace jfeed {
namespace {

#ifndef JFEED_OBS_DISABLED

class FleetTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::EventLog::Global().Clear();
    obs::Registry::Global().ResetForTest();
    obs::Tracer::Global().Clear();
  }

  void TearDown() override {
    fault::Injector::Get().Disable();
    workers_.clear();
    obs::Tracer::Global().Disable();
    obs::Tracer::Global().Clear();
    obs::EventLog::Global().set_enabled(false);
    obs::EventLog::Global().Clear();
    obs::Registry::Global().set_enabled(false);
    obs::Registry::Global().ResetForTest();
  }

  /// Starts `count` real grading daemons on ephemeral ports. Daemon Start
  /// enables the process-wide Tracer, so spans record from here on.
  void StartWorkers(int count) {
    for (int i = 0; i < count; ++i) {
      service::DaemonOptions options;
      options.assignment_id = "assignment1";
      options.jobs = 2;
      auto worker = std::make_unique<service::GradingDaemon>(options);
      ASSERT_TRUE(worker->Start().ok());
      workers_.push_back(std::move(worker));
    }
  }

  fleet::RouterPolicy TracePolicy() {
    fleet::RouterPolicy policy;
    policy.request_deadline_ms = 10'000;
    policy.max_attempts = 4;
    policy.retry_backoff = {1, 4, 0.0};
    policy.breaker.failure_threshold = 1000;  // Retries without breaker noise.
    policy.probe_deadline_ms = 2000;
    return policy;
  }

  std::string GradeBody(const std::string& id) {
    const auto& assignment = kb::KnowledgeBase::Get().assignment("assignment1");
    std::string source = assignment.Reference();
    std::string escaped;
    for (char c : source) {
      switch (c) {
        case '"': escaped += "\\\""; break;
        case '\\': escaped += "\\\\"; break;
        case '\n': escaped += "\\n"; break;
        case '\t': escaped += "\\t"; break;
        default: escaped.push_back(c);
      }
    }
    return "{\"id\":\"" + id + "\",\"source\":\"" + escaped + "\"}\n";
  }

  std::vector<std::unique_ptr<service::GradingDaemon>> workers_;
};

TEST_F(FleetTraceTest, OneTraceIdSurvivesWorkerCrashAndRetry) {
  StartWorkers(2);
  fleet::Router router(TracePolicy());
  router.AddWorker(0, workers_[0]->port());
  router.AddWorker(1, workers_[1]->port());
  router.ProbeOnce();
  ASSERT_EQ(router.RoutableCount(), 2u);

  // Half of all dispatches crash the worker mid-request; the same seeded
  // decision sequence as fleet_chaos_test guarantees at least one request
  // survives only via retry.
  fault::FaultConfig config;
  config.seed = 7;
  config.probability = 0.5;
  config.only_point = fault::points::kFleetWorkerGrade;
  config.code = StatusCode::kUnavailable;
  fault::ScopedFaultInjection chaos(config);

  // Drive requests until one grades after a mid-flight crash, carrying a
  // broker-minted trace context the whole way.
  std::string survivor_id;
  std::string survivor_trace;
  obs::HttpResponse survivor_response;
  for (int i = 0; i < 24 && survivor_id.empty(); ++i) {
    obs::TraceContext ctx = obs::MintTraceContext();
    std::string id = "trace-" + std::to_string(i);
    int64_t hits_before =
        fault::Injector::Get().Hits(fault::points::kFleetWorkerGrade);
    obs::HttpResponse response = router.RouteGrade(GradeBody(id), ctx);
    int64_t attempts =
        fault::Injector::Get().Hits(fault::points::kFleetWorkerGrade) -
        hits_before;
    if (response.status == 200 && attempts > 1) {
      survivor_id = id;
      survivor_trace = obs::TraceIdHex(ctx);
      survivor_response = response;
    }
  }
  ASSERT_FALSE(survivor_id.empty())
      << "no submission graded after a mid-flight crash in 24 requests";

  // 1. The graded response line carries the broker's trace id.
  EXPECT_NE(
      survivor_response.body.find("\"trace_id\":\"" + survivor_trace + "\""),
      std::string::npos)
      << survivor_response.body;

  // 2. The surviving worker's flight-recorder wide event joins on it.
  bool event_found = false;
  for (const auto& event : obs::EventLog::Global().Snapshot()) {
    if (event.submission_id != survivor_id) continue;
    event_found = true;
    EXPECT_EQ(event.trace_id, survivor_trace);
    EXPECT_FALSE(event.span_id.empty());
  }
  EXPECT_TRUE(event_found)
      << "no wide event for " << survivor_id << " in the flight recorder";

  // 3. The span tree: one fleet.route root, the failed and retried
  //    attempts as sibling children under it, and the worker-side
  //    daemon.grade span — all on the one trace.
  uint64_t route_span_id = 0;
  std::vector<obs::SpanRecord> attempt_spans;
  bool worker_span_on_trace = false;
  for (const auto& span : obs::Tracer::Global().Snapshot()) {
    if (obs::TraceIdHex(
            obs::TraceContext{span.trace_hi, span.trace_lo, 0}) !=
        survivor_trace) {
      continue;
    }
    std::string name = span.name;
    if (name == "fleet.route") {
      route_span_id = span.id;
    } else if (name == "fleet.attempt") {
      attempt_spans.push_back(span);
    } else if (name == "daemon.grade") {
      worker_span_on_trace = true;
    }
  }
  ASSERT_NE(route_span_id, 0u) << "no fleet.route span on the trace";
  ASSERT_GE(attempt_spans.size(), 2u)
      << "crash + retry must record at least two attempt spans";
  int retried = 0;
  for (const auto& attempt : attempt_spans) {
    EXPECT_EQ(attempt.parent_id, route_span_id)
        << "attempts must be siblings under the route span";
    EXPECT_NE(attempt.detail.find("worker="), std::string::npos)
        << attempt.detail;
    if (attempt.detail.find("retry_cause=") != std::string::npos) ++retried;
  }
  EXPECT_GE(retried, 1) << "the retried attempt must name its cause";
  EXPECT_TRUE(worker_span_on_trace)
      << "the surviving worker's daemon.grade span must share the trace";

  // 4. The federated export: stitching the per-process Chrome exports
  //    (broker lane + worker lane) keeps the trace id visible in one
  //    Perfetto-loadable document.
  std::string stitched = fleet::StitchChromeTraces(
      {obs::Tracer::Global().ExportChromeJson(0, "jfeed-broker")});
  EXPECT_NE(stitched.find(survivor_trace), std::string::npos);
  EXPECT_NE(stitched.find("\"fleet.attempt\""), std::string::npos);
  EXPECT_NE(stitched.find("\"daemon.grade\""), std::string::npos);

  // No fault path may leak an open span.
  EXPECT_EQ(obs::Tracer::Global().OpenSpanCount(), 0);
}

TEST_F(FleetTraceTest, LegacyUntracedRouteStillGrades) {
  // The single-argument RouteGrade (no caller context) must keep working:
  // the route span mints its own trace and the grade succeeds.
  StartWorkers(1);
  fleet::Router router(TracePolicy());
  router.AddWorker(0, workers_[0]->port());
  router.ProbeOnce();
  obs::HttpResponse response = router.RouteGrade(GradeBody("untraced-0"));
  ASSERT_EQ(response.status, 200) << response.body;
  // The worker still stamps a (minted) trace id into the outcome.
  EXPECT_NE(response.body.find("\"trace_id\":\""), std::string::npos);
}

#endif  // JFEED_OBS_DISABLED

}  // namespace
}  // namespace jfeed
