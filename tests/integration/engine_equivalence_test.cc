// The PR's equivalence gate: the indexed match engine must produce
// byte-identical canonical embeddings and feedback to the legacy
// backtracker across the full synthetic corpus (every assignment in the
// knowledge base). The legacy engine is the pre-index matcher kept as the
// reference implementation, so any divergence here means the index pruning
// or the allocation-free search changed observable semantics.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/pattern_matcher.h"
#include "core/submission_matcher.h"
#include "javalang/parser.h"
#include "kb/assignments.h"
#include "pdg/epdg.h"
#include "pdg/match_index.h"
#include "synth/generator.h"

namespace jfeed {
namespace {

constexpr uint64_t kSamplesPerAssignment = 10;

std::string DescribeEmbeddings(const std::vector<core::Embedding>& ms) {
  std::string out;
  for (const auto& m : ms) {
    out += "m{";
    for (const auto& [u, v] : m.iota) {
      out += std::to_string(u) + "->" + std::to_string(v) + ",";
    }
    out += "|";
    for (const auto& [pv, sv] : m.gamma) out += pv + "=" + sv + ",";
    out += "|";
    for (int u : m.incorrect_nodes) out += std::to_string(u) + ",";
    out += "}\n";
  }
  return out;
}

std::string DescribeFeedback(const core::SubmissionFeedback& f) {
  std::string out = f.matched ? "matched " : "unmatched ";
  out += std::to_string(f.score) + "\n";
  for (const auto& [q, h] : f.method_assignment) out += q + "=" + h + "\n";
  for (const auto& c : f.comments) {
    out += c.source_id + "|" + c.method + "|" +
           std::to_string(static_cast<int>(c.kind)) + "|" + c.message + "\n";
    for (const auto& d : c.details) out += "  " + d + "\n";
  }
  return out;
}

class EngineEquivalenceTest : public ::testing::TestWithParam<const char*> {
 protected:
  const kb::Assignment& assignment() const {
    return kb::KnowledgeBase::Get().assignment(GetParam());
  }
};

TEST_P(EngineEquivalenceTest, FeedbackIsByteIdenticalAcrossCorpus) {
  const auto& a = assignment();
  core::SubmissionMatchOptions legacy;
  legacy.match.engine = core::MatchEngine::kLegacy;
  core::SubmissionMatchOptions indexed;
  indexed.match.engine = core::MatchEngine::kIndexed;

  auto indexes =
      synth::SampleIndexes(a.generator.SpaceSize(), kSamplesPerAssignment);
  for (uint64_t index : indexes) {
    std::string source = a.generator.Generate(index);
    auto legacy_fb = core::MatchSubmissionSource(a.spec, source, legacy);
    auto indexed_fb = core::MatchSubmissionSource(a.spec, source, indexed);
    ASSERT_TRUE(legacy_fb.ok()) << a.id << " index " << index;
    ASSERT_TRUE(indexed_fb.ok()) << a.id << " index " << index;
    EXPECT_EQ(DescribeFeedback(*legacy_fb), DescribeFeedback(*indexed_fb))
        << a.id << " index " << index;
    // The engines may count steps differently (that is the point), but
    // both totals must be populated.
    EXPECT_GT(indexed_fb->match_stats.steps, 0) << a.id;
    EXPECT_GT(legacy_fb->match_stats.steps, 0) << a.id;
    EXPECT_LE(indexed_fb->match_stats.steps, legacy_fb->match_stats.steps)
        << a.id << " index " << index
        << ": pruning must never add backtracking steps";
  }
}

TEST_P(EngineEquivalenceTest, PerPatternEmbeddingsAreByteIdentical) {
  const auto& a = assignment();
  auto indexes =
      synth::SampleIndexes(a.generator.SpaceSize(), kSamplesPerAssignment);
  for (uint64_t index : indexes) {
    auto unit = java::Parse(a.generator.Generate(index));
    ASSERT_TRUE(unit.ok());
    auto graphs = pdg::BuildAllEpdgs(*unit);
    ASSERT_TRUE(graphs.ok());
    for (const auto& g : *graphs) {
      pdg::MatchIndex match_index(g);
      for (const auto& method : a.spec.methods) {
        for (const auto& use : method.patterns) {
          if (use.pattern == nullptr) continue;
          core::MatchOptions legacy;
          legacy.engine = core::MatchEngine::kLegacy;
          auto legacy_ms = core::MatchPattern(*use.pattern, g, legacy);
          auto indexed_ms =
              core::MatchPattern(*use.pattern, g, match_index, {});
          EXPECT_EQ(DescribeEmbeddings(legacy_ms),
                    DescribeEmbeddings(indexed_ms))
              << a.id << " index " << index << " pattern "
              << use.pattern->id << " method " << g.method_name();
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAssignments, EngineEquivalenceTest,
    ::testing::ValuesIn([]() {
      std::vector<const char*> ids;
      for (const auto& id : kb::KnowledgeBase::Get().assignment_ids()) {
        ids.push_back(id.c_str());
      }
      return ids;
    }()),
    [](const ::testing::TestParamInfo<const char*>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace jfeed
