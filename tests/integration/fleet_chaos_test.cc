// Fleet-level chaos: the jfeed-broker routing machinery (fleet::Router)
// over real in-process GradingDaemon workers, with deterministic fault
// injection at the fleet points (support/fault.h). The acceptance story:
// a worker "dies" mid-submission (injected kUnavailable on the dispatch
// path), the router retries onto a surviving worker, every accepted
// submission gets exactly one final response, and the per-worker circuit
// breaker trips and recovers through a half-open health probe — all of it
// observable in the jfeed_fleet_* metrics.
//
// Real process supervision (fork/exec jfeedd, kill -9, restart storms) is
// exercised by tests/fleet/supervisor_test.cc and the CI fleet-smoke job;
// here the workers are in-process so the chaos is exactly reproducible.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fleet/router.h"
#include "kb/assignments.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "service/daemon.h"
#include "support/fault.h"

namespace jfeed {
namespace {

#ifndef JFEED_OBS_DISABLED

int64_t CounterValue(const std::string& name, const obs::Labels& labels) {
  return obs::Registry::Global().GetCounter(name, "", labels)->Value();
}

int64_t GaugeValue(const std::string& name, const obs::Labels& labels) {
  return obs::Registry::Global().GetGauge(name, "", labels)->Value();
}

class FleetChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::EventLog::Global().Clear();
    obs::Registry::Global().ResetForTest();
  }

  void TearDown() override {
    fault::Injector::Get().Disable();
    workers_.clear();
    obs::EventLog::Global().set_enabled(false);
    obs::EventLog::Global().Clear();
    obs::Registry::Global().set_enabled(false);
    obs::Registry::Global().ResetForTest();
  }

  /// Starts `count` real grading daemons on ephemeral ports.
  void StartWorkers(int count) {
    for (int i = 0; i < count; ++i) {
      service::DaemonOptions options;
      options.assignment_id = "assignment1";
      options.jobs = 2;
      auto worker = std::make_unique<service::GradingDaemon>(options);
      ASSERT_TRUE(worker->Start().ok());
      workers_.push_back(std::move(worker));
    }
  }

  fleet::RouterPolicy ChaosPolicy() {
    fleet::RouterPolicy policy;
    policy.request_deadline_ms = 10'000;
    policy.max_attempts = 4;
    policy.retry_backoff = {1, 4, 0.0};
    // High threshold: the retry story is tested without breaker
    // interference; the trip/recover story sets its own policy.
    policy.breaker.failure_threshold = 1000;
    policy.probe_deadline_ms = 2000;
    return policy;
  }

  std::string GradeBody(const std::string& id) {
    const auto& assignment = kb::KnowledgeBase::Get().assignment("assignment1");
    std::string source = assignment.Reference();
    std::string escaped;
    for (char c : source) {
      switch (c) {
        case '"': escaped += "\\\""; break;
        case '\\': escaped += "\\\\"; break;
        case '\n': escaped += "\\n"; break;
        case '\t': escaped += "\\t"; break;
        default: escaped.push_back(c);
      }
    }
    return "{\"id\":\"" + id + "\",\"source\":\"" + escaped + "\"}\n";
  }

  std::vector<std::unique_ptr<service::GradingDaemon>> workers_;
};

TEST_F(FleetChaosTest, WorkerCrashMidSubmissionIsHiddenByRetry) {
  StartWorkers(2);
  fleet::Router router(ChaosPolicy());
  router.AddWorker(0, workers_[0]->port());
  router.AddWorker(1, workers_[1]->port());
  router.ProbeOnce();
  ASSERT_EQ(router.RoutableCount(), 2u);

  // Half of all dispatches "crash the worker" (deterministic per hit
  // ordinal). Requests run serially, so the decision sequence — and
  // therefore every per-request outcome — is exactly reproducible.
  fault::FaultConfig config;
  config.seed = 7;
  config.probability = 0.5;
  config.only_point = fault::points::kFleetWorkerGrade;
  config.code = StatusCode::kUnavailable;
  fault::ScopedFaultInjection chaos(config);

  constexpr int kRequests = 24;
  int ok = 0, failed = 0, retried_and_survived = 0;
  for (int i = 0; i < kRequests; ++i) {
    int64_t hits_before =
        fault::Injector::Get().Hits(fault::points::kFleetWorkerGrade);
    obs::HttpResponse response =
        router.RouteGrade(GradeBody("chaos-" + std::to_string(i)));
    int64_t attempts =
        fault::Injector::Get().Hits(fault::points::kFleetWorkerGrade) -
        hits_before;

    // Exactly one final response per submission, and nothing in between:
    // a clean grade (every attempt bounded by max_attempts) or a clean
    // 502 after exhausting retries.
    ASSERT_GE(attempts, 1);
    ASSERT_LE(attempts, 4);
    if (response.status == 200) {
      ++ok;
      EXPECT_NE(response.body.find("\"id\":\"chaos-" + std::to_string(i)),
                std::string::npos);
      EXPECT_NE(response.body.find("\"verdict\":\"correct\""),
                std::string::npos)
          << response.body;
      if (attempts > 1) ++retried_and_survived;
    } else {
      EXPECT_EQ(response.status, 502) << response.body;
      ++failed;
    }
  }

  // The chaos is real (some dispatches crashed) yet absorbed: with p=0.5
  // and 4 attempts the vast majority of submissions still grade.
  EXPECT_EQ(ok + failed, kRequests);
  EXPECT_GE(ok, kRequests * 2 / 3) << "ok=" << ok << " failed=" << failed;
  EXPECT_GE(retried_and_survived, 1)
      << "no submission survived a mid-flight worker crash via retry";

  // The same story on the wire: jfeed_fleet_* accounts for every request.
  EXPECT_EQ(CounterValue("jfeed_fleet_requests_total", {{"result", "ok"}}),
            ok);
  EXPECT_EQ(CounterValue("jfeed_fleet_requests_total", {{"result", "error"}}),
            failed);
  EXPECT_EQ(CounterValue("jfeed_fleet_requests_total", {{"result", "shed"}}),
            0);
  EXPECT_GE(CounterValue("jfeed_fleet_retries_total", {}), 1);
}

TEST_F(FleetChaosTest, BreakerTripsOnCrashesAndRecoversViaHalfOpenProbe) {
  StartWorkers(1);
  fleet::RouterPolicy policy = ChaosPolicy();
  policy.max_attempts = 1;
  policy.breaker.failure_threshold = 2;
  policy.breaker.open_cooldown_ms = 60;
  fleet::Router router(policy);
  router.AddWorker(0, workers_[0]->port());
  router.ProbeOnce();
  ASSERT_EQ(router.RoutableCount(), 1u);

  {
    // Every dispatch crashes: two requests reach the threshold and trip.
    fault::FaultConfig config;
    config.probability = 1.0;
    config.only_point = fault::points::kFleetWorkerGrade;
    config.code = StatusCode::kUnavailable;
    fault::ScopedFaultInjection chaos(config);

    EXPECT_EQ(router.RouteGrade(GradeBody("t-0")).status, 502);
    EXPECT_EQ(router.RouteGrade(GradeBody("t-1")).status, 502);
  }

  EXPECT_EQ(GaugeValue("jfeed_fleet_breaker_state", {{"worker", "0"}}), 2)
      << "breaker should be open";
  EXPECT_EQ(
      CounterValue("jfeed_fleet_breaker_trips_total", {{"worker", "0"}}), 1);

  // Open breaker: the fleet sheds instead of hammering the worker.
  obs::HttpResponse shed = router.RouteGrade(GradeBody("t-2"));
  EXPECT_EQ(shed.status, 503);
  ASSERT_EQ(shed.headers.size(), 1u);
  EXPECT_EQ(shed.headers[0].first, "Retry-After");
  EXPECT_GE(CounterValue("jfeed_fleet_shed_total", {}), 1);

  // Cooldown elapses; the injection is gone (worker "recovered"). The
  // next probe takes the half-open trial and re-admits the worker — no
  // student submission was spent on the recovery gamble.
  std::this_thread::sleep_for(std::chrono::milliseconds(90));
  router.ProbeOnce();
  EXPECT_EQ(GaugeValue("jfeed_fleet_breaker_state", {{"worker", "0"}}), 0)
      << "breaker should have closed via the half-open probe";
  EXPECT_EQ(GaugeValue("jfeed_fleet_worker_state", {{"worker", "0"}}), 2);
  EXPECT_EQ(router.RouteGrade(GradeBody("t-3")).status, 200);
}

TEST_F(FleetChaosTest, BlackholedProbesTakeIdleWorkerOutOfRotation) {
  StartWorkers(2);
  fleet::RouterPolicy policy = ChaosPolicy();
  policy.breaker.failure_threshold = 2;
  policy.down_after_probe_failures = 2;
  fleet::Router router(policy);
  router.AddWorker(0, workers_[0]->port());
  router.AddWorker(1, workers_[1]->port());
  router.ProbeOnce();
  ASSERT_EQ(router.RoutableCount(), 2u);

  {
    // All probes blackholed: with zero grade traffic, probe failures alone
    // must mark workers down and trip breakers.
    fault::FaultConfig config;
    config.probability = 1.0;
    config.only_point = fault::points::kFleetProbe;
    config.code = StatusCode::kTimeout;
    fault::ScopedFaultInjection chaos(config);
    router.ProbeOnce();
    router.ProbeOnce();
  }
  EXPECT_EQ(router.RoutableCount(), 0u);
  EXPECT_EQ(GaugeValue("jfeed_fleet_worker_state", {{"worker", "0"}}), 0);
  EXPECT_GE(
      CounterValue("jfeed_fleet_probe_failures_total", {{"worker", "0"}}), 2);

  // Probes heal; after the cooldown the fleet claws its way back without
  // any restart.
  std::this_thread::sleep_for(std::chrono::milliseconds(
      policy.breaker.open_cooldown_ms + 50));
  router.ProbeOnce();
  EXPECT_EQ(router.RoutableCount(), 2u);
  EXPECT_EQ(router.RouteGrade(GradeBody("healed")).status, 200);
}

TEST_F(FleetChaosTest, SlowResponsesAreRetriedLikeCrashes) {
  StartWorkers(2);
  fleet::Router router(ChaosPolicy());
  router.AddWorker(0, workers_[0]->port());
  router.AddWorker(1, workers_[1]->port());
  router.ProbeOnce();

  // A response that blows the deadline is indistinguishable from a crash
  // to the student: it must be retried the same way, with the kTimeout
  // code shaping the symptom.
  fault::FaultConfig config;
  config.seed = 11;
  config.probability = 0.5;
  config.only_point = fault::points::kFleetSlowResponse;
  config.code = StatusCode::kTimeout;
  fault::ScopedFaultInjection chaos(config);

  int ok = 0;
  for (int i = 0; i < 12; ++i) {
    obs::HttpResponse response =
        router.RouteGrade(GradeBody("slow-" + std::to_string(i)));
    if (response.status == 200) ++ok;
  }
  EXPECT_GE(ok, 8);
  EXPECT_GE(fault::Injector::Get().Hits(fault::points::kFleetSlowResponse),
            12);
}

#endif  // JFEED_OBS_DISABLED

}  // namespace
}  // namespace jfeed
