// Chaos integration test: sweeps deterministic fault injection over every
// registered injection point x every knowledge-base assignment and asserts
// the grading pipeline always degrades to a valid structured outcome —
// never a crash, never a hang, never an unclassified failure.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "kb/assignments.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sched/scheduler.h"
#include "service/pipeline.h"
#include "support/fault.h"

namespace jfeed::service {
namespace {

std::vector<std::string> AllAssignmentIds() {
  // Touch the knowledge base BEFORE any injection campaign is active: its
  // lazy construction parses pattern templates and must not see faults.
  return kb::KnowledgeBase::Get().assignment_ids();
}

/// The structural invariants every outcome must satisfy, fault or not.
void ExpectValidOutcome(const GradingOutcome& outcome,
                        const std::string& context) {
  SCOPED_TRACE(context);
  // Stage/tier/verdict agree with each other.
  if (outcome.tier == FeedbackTier::kParseDiagnostic) {
    EXPECT_EQ(outcome.verdict, Verdict::kNotGraded);
    EXPECT_FALSE(outcome.diagnostic.empty());
  } else {
    EXPECT_NE(outcome.verdict, Verdict::kNotGraded);
  }
  if (outcome.failure != FailureClass::kNone) {
    EXPECT_TRUE(outcome.degraded());
  }
  // Every stage that ran was timed with a sane wall clock.
  EXPECT_FALSE(outcome.timings.empty());
  for (const auto& timing : outcome.timings) {
    EXPECT_GE(timing.wall_ms, 0.0);
    EXPECT_LT(timing.wall_ms, 60'000.0);
  }
  // JSON rendering must never choke on a degraded outcome.
  std::string json = OutcomeToJson(outcome);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(ChaosTest, EveryPointTimesEveryAssignmentDegradesGracefully) {
  for (const auto& id : AllAssignmentIds()) {
    const auto& assignment = kb::KnowledgeBase::Get().assignment(id);
    std::string reference = assignment.Reference();
    for (const auto& point : fault::Injector::AllPoints()) {
      fault::FaultConfig config;
      config.only_point = point;  // Always fire at this point.
      GradingOutcome outcome;
      {
        fault::ScopedFaultInjection injection(config);
        GradingPipeline pipeline(assignment);
        outcome = pipeline.Grade(reference);
      }
      ExpectValidOutcome(outcome, id + " / " + point);
      EXPECT_TRUE(outcome.degraded()) << id << " / " << point;

      // The fault forces the documented rung of the degradation ladder.
      if (point == fault::points::kLexer ||
          point == fault::points::kParser) {
        EXPECT_EQ(outcome.tier, FeedbackTier::kParseDiagnostic)
            << id << " / " << point;
      } else if (point == fault::points::kEpdgBuilder ||
                 point == fault::points::kMatcher) {
        EXPECT_EQ(outcome.tier, FeedbackTier::kAstOnly)
            << id << " / " << point;
        EXPECT_NE(outcome.verdict, Verdict::kNotGraded)
            << id << " / " << point;
      } else if (point == fault::points::kInterpreterCall) {
        // Pattern feedback is unaffected; only the functional stage dies.
        EXPECT_EQ(outcome.tier, FeedbackTier::kFullEpdg)
            << id << " / " << point;
        EXPECT_FALSE(outcome.functional_ran) << id << " / " << point;
        EXPECT_EQ(outcome.failure, FailureClass::kInternalFault)
            << id << " / " << point;
      }
    }
  }
}

TEST(ChaosTest, ProbabilisticSweepNeverCrashes) {
  // Random-but-reproducible faults at every point simultaneously, across
  // several seeds: whatever fails, the outcome stays structured.
  for (const auto& id : AllAssignmentIds()) {
    const auto& assignment = kb::KnowledgeBase::Get().assignment(id);
    std::string reference = assignment.Reference();
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      fault::FaultConfig config;
      config.seed = seed;
      config.probability = 0.3;
      GradingOutcome outcome;
      {
        fault::ScopedFaultInjection injection(config);
        GradingPipeline pipeline(assignment);
        outcome = pipeline.Grade(reference);
      }
      ExpectValidOutcome(outcome,
                         id + " / seed " + std::to_string(seed));
    }
  }
}

TEST(ChaosTest, SameSeedReproducesTheSameOutcome) {
  const auto& assignment =
      kb::KnowledgeBase::Get().assignment("assignment1");
  std::string reference = assignment.Reference();
  auto grade_with_seed = [&](uint64_t seed) {
    fault::FaultConfig config;
    config.seed = seed;
    config.probability = 0.5;
    fault::ScopedFaultInjection injection(config);
    GradingPipeline pipeline(assignment);
    return pipeline.Grade(reference);
  };
  GradingOutcome first = grade_with_seed(42);
  GradingOutcome second = grade_with_seed(42);
  EXPECT_EQ(first.verdict, second.verdict);
  EXPECT_EQ(first.tier, second.tier);
  EXPECT_EQ(first.failure, second.failure);
  EXPECT_EQ(first.diagnostic, second.diagnostic);
}

// Multi-threaded chaos: a seeded always-fire campaign (probability 1.0,
// only_point) decides failure independently of the hit ordinal, so — per the
// ordinal-semantics contract documented in support/fault.h — every
// submission of a parallel batch must land on the same documented
// degradation-ladder rung at any worker count and any schedule. A poisoned
// worker degrades its own submission, never the batch.
TEST(ChaosTest, ParallelBatchUnderSeededCampaignLandsOnDocumentedRung) {
  const auto& assignment =
      kb::KnowledgeBase::Get().assignment("assignment1");
  std::vector<std::string> corpus(16, assignment.Reference());
  for (const auto& point : fault::Injector::AllPoints()) {
    fault::FaultConfig config;
    config.seed = 42;
    config.only_point = point;  // probability stays 1.0: ordinal-free.
    std::vector<service::GradingOutcome> outcomes;
    {
      fault::ScopedFaultInjection injection(config);
      sched::SchedulerOptions sopts;
      sopts.jobs = 8;
      outcomes = service::GradeBatchParallel(assignment, corpus, {}, sopts);
    }
    ASSERT_EQ(outcomes.size(), corpus.size());
    for (size_t i = 0; i < outcomes.size(); ++i) {
      const auto& outcome = outcomes[i];
      std::string context =
          point + " / parallel member " + std::to_string(i);
      ExpectValidOutcome(outcome, context);
      EXPECT_TRUE(outcome.degraded()) << context;
      if (point == fault::points::kLexer ||
          point == fault::points::kParser) {
        EXPECT_EQ(outcome.tier, FeedbackTier::kParseDiagnostic) << context;
      } else if (point == fault::points::kEpdgBuilder ||
                 point == fault::points::kMatcher) {
        EXPECT_EQ(outcome.tier, FeedbackTier::kAstOnly) << context;
        EXPECT_NE(outcome.verdict, Verdict::kNotGraded) << context;
      } else if (point == fault::points::kInterpreterCall) {
        EXPECT_EQ(outcome.tier, FeedbackTier::kFullEpdg) << context;
        EXPECT_FALSE(outcome.functional_ran) << context;
        EXPECT_EQ(outcome.failure, FailureClass::kInternalFault) << context;
      }
    }
  }
}

// With faults enabled the scheduler bypasses dedup and the result cache, so
// a probabilistic campaign actually exercises every submission — and after
// the campaign ends, no fault-degraded outcome is ever replayed from the
// cache to a healthy duplicate.
TEST(ChaosTest, FaultDegradedOutcomesNeverPoisonTheCache) {
  const auto& assignment =
      kb::KnowledgeBase::Get().assignment("assignment1");
  std::vector<std::string> corpus(4, assignment.Reference());
  sched::BatchScheduler scheduler(assignment);
  {
    fault::FaultConfig config;
    config.only_point = fault::points::kEpdgBuilder;
    fault::ScopedFaultInjection injection(config);
    sched::BatchStats stats;
    auto poisoned = scheduler.GradeBatchWithStats(corpus, &stats);
    EXPECT_EQ(stats.graded, corpus.size()) << "dedup not bypassed";
    for (const auto& outcome : poisoned) {
      EXPECT_EQ(outcome.tier, FeedbackTier::kAstOnly);
    }
  }
  // Campaign over: the same submissions grade healthy, not from a cache.
  auto healthy = scheduler.GradeBatch(corpus);
  for (const auto& outcome : healthy) {
    EXPECT_EQ(outcome.verdict, Verdict::kCorrect);
    EXPECT_FALSE(outcome.degraded());
  }
}

#ifndef JFEED_OBS_DISABLED

/// Every non-comment line of a Prometheus text dump is `name{labels} value`
/// or `name value`; anything else means Render() emitted garbage.
void ExpectRendersAsPrometheusText(const std::string& text) {
  ASSERT_FALSE(text.empty());
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    ASSERT_NE(end, std::string::npos) << "dump must end with a newline";
    std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    ASSERT_GT(space, 0u) << line;
    // The value after the last space must be a (possibly negative) integer.
    std::string value = line.substr(space + 1);
    ASSERT_FALSE(value.empty()) << line;
    size_t digits = value[0] == '-' ? 1 : 0;
    ASSERT_LT(digits, value.size()) << line;
    for (size_t i = digits; i < value.size(); ++i) {
      ASSERT_TRUE(value[i] >= '0' && value[i] <= '9') << line;
    }
    // The metric name starts with a letter or underscore.
    char first = line[0];
    ASSERT_TRUE(first == '_' || (first >= 'a' && first <= 'z') ||
                (first >= 'A' && first <= 'Z'))
        << line;
    // Braces, if present, are balanced and close before the value.
    size_t open = line.find('{');
    if (open != std::string::npos) {
      size_t close = line.rfind('}');
      ASSERT_NE(close, std::string::npos) << line;
      ASSERT_LT(close, space) << line;
      ASSERT_LT(open, close) << line;
    }
  }
}

// Observability coherence under faults: a campaign that forces rung drops
// must move the matching degraded-rung counters, must not leak an open
// span (every fault path unwinds through the spans' destructors), and must
// leave the registry rendering well-formed Prometheus text.
TEST(ChaosTest, MetricsAndTracesStayCoherentAfterFaultCampaign) {
  auto& registry = obs::Registry::Global();
  auto& tracer = obs::Tracer::Global();
  registry.ResetForTest();
  registry.set_enabled(true);
  tracer.Clear();
  tracer.Enable();

  obs::Counter* ast_only = registry.GetCounter(
      "jfeed_outcomes_total", "Graded submissions by feedback tier",
      {{"tier", "ast_only"}});
  obs::Counter* parse_diag = registry.GetCounter(
      "jfeed_outcomes_total", "Graded submissions by feedback tier",
      {{"tier", "parse_diagnostic"}});
  obs::Counter* internal_faults = registry.GetCounter(
      "jfeed_failures_total", "Grading failures by class",
      {{"class", "internal_fault"}});
  const int64_t ast_before = ast_only->Value();
  const int64_t diag_before = parse_diag->Value();
  const int64_t fault_before = internal_faults->Value();

  const auto& assignment =
      kb::KnowledgeBase::Get().assignment("assignment1");
  std::string reference = assignment.Reference();
  auto grade_with_fault = [&](const char* point) {
    fault::FaultConfig config;
    config.only_point = point;
    fault::ScopedFaultInjection injection(config);
    GradingPipeline pipeline(assignment);
    return pipeline.Grade(reference);
  };

  // An EPDG fault drops to the AST-only rung; a parser fault drops all the
  // way to the parse-diagnostic rung. Both count as internal faults.
  EXPECT_EQ(grade_with_fault(fault::points::kEpdgBuilder).tier,
            FeedbackTier::kAstOnly);
  EXPECT_EQ(grade_with_fault(fault::points::kParser).tier,
            FeedbackTier::kParseDiagnostic);

  EXPECT_EQ(ast_only->Value(), ast_before + 1);
  EXPECT_EQ(parse_diag->Value(), diag_before + 1);
  EXPECT_EQ(internal_faults->Value(), fault_before + 2);

  // No fault path left a span open, and the degraded runs still traced.
  EXPECT_EQ(tracer.OpenSpanCount(), 0);
  bool saw_grade_span = false;
  for (const auto& record : tracer.Snapshot()) {
    if (std::string(record.name) == "grade") saw_grade_span = true;
    EXPECT_GE(record.end_ns, record.start_ns);
  }
  EXPECT_TRUE(saw_grade_span);

  ExpectRendersAsPrometheusText(registry.Render());

  tracer.Disable();
  tracer.Clear();
  registry.set_enabled(false);
  registry.ResetForTest();
}

#endif  // JFEED_OBS_DISABLED

TEST(ChaosTest, BatchUnderFaultsYieldsOneOutcomePerSubmission) {
  const auto& assignment =
      kb::KnowledgeBase::Get().assignment("assignment1");
  fault::FaultConfig config;
  config.probability = 0.5;
  fault::ScopedFaultInjection injection(config);
  GradingPipeline pipeline(assignment);
  auto outcomes = pipeline.GradeBatch({
      assignment.Reference(),
      "void assignment1(int[] a) { int x = 1; }",
      "garbage (",
  });
  ASSERT_EQ(outcomes.size(), 3u);
  for (size_t i = 0; i < outcomes.size(); ++i) {
    ExpectValidOutcome(outcomes[i], "batch member " + std::to_string(i));
  }
}

}  // namespace
}  // namespace jfeed::service
