// Chaos integration test: sweeps deterministic fault injection over every
// registered injection point x every knowledge-base assignment and asserts
// the grading pipeline always degrades to a valid structured outcome —
// never a crash, never a hang, never an unclassified failure.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "kb/assignments.h"
#include "service/pipeline.h"
#include "support/fault.h"

namespace jfeed::service {
namespace {

std::vector<std::string> AllAssignmentIds() {
  // Touch the knowledge base BEFORE any injection campaign is active: its
  // lazy construction parses pattern templates and must not see faults.
  return kb::KnowledgeBase::Get().assignment_ids();
}

/// The structural invariants every outcome must satisfy, fault or not.
void ExpectValidOutcome(const GradingOutcome& outcome,
                        const std::string& context) {
  SCOPED_TRACE(context);
  // Stage/tier/verdict agree with each other.
  if (outcome.tier == FeedbackTier::kParseDiagnostic) {
    EXPECT_EQ(outcome.verdict, Verdict::kNotGraded);
    EXPECT_FALSE(outcome.diagnostic.empty());
  } else {
    EXPECT_NE(outcome.verdict, Verdict::kNotGraded);
  }
  if (outcome.failure != FailureClass::kNone) {
    EXPECT_TRUE(outcome.degraded());
  }
  // Every stage that ran was timed with a sane wall clock.
  EXPECT_FALSE(outcome.timings.empty());
  for (const auto& timing : outcome.timings) {
    EXPECT_GE(timing.wall_ms, 0.0);
    EXPECT_LT(timing.wall_ms, 60'000.0);
  }
  // JSON rendering must never choke on a degraded outcome.
  std::string json = OutcomeToJson(outcome);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(ChaosTest, EveryPointTimesEveryAssignmentDegradesGracefully) {
  for (const auto& id : AllAssignmentIds()) {
    const auto& assignment = kb::KnowledgeBase::Get().assignment(id);
    std::string reference = assignment.Reference();
    for (const auto& point : fault::Injector::AllPoints()) {
      fault::FaultConfig config;
      config.only_point = point;  // Always fire at this point.
      GradingOutcome outcome;
      {
        fault::ScopedFaultInjection injection(config);
        GradingPipeline pipeline(assignment);
        outcome = pipeline.Grade(reference);
      }
      ExpectValidOutcome(outcome, id + " / " + point);
      EXPECT_TRUE(outcome.degraded()) << id << " / " << point;

      // The fault forces the documented rung of the degradation ladder.
      if (point == fault::points::kLexer ||
          point == fault::points::kParser) {
        EXPECT_EQ(outcome.tier, FeedbackTier::kParseDiagnostic)
            << id << " / " << point;
      } else if (point == fault::points::kEpdgBuilder ||
                 point == fault::points::kMatcher) {
        EXPECT_EQ(outcome.tier, FeedbackTier::kAstOnly)
            << id << " / " << point;
        EXPECT_NE(outcome.verdict, Verdict::kNotGraded)
            << id << " / " << point;
      } else if (point == fault::points::kInterpreterCall) {
        // Pattern feedback is unaffected; only the functional stage dies.
        EXPECT_EQ(outcome.tier, FeedbackTier::kFullEpdg)
            << id << " / " << point;
        EXPECT_FALSE(outcome.functional_ran) << id << " / " << point;
        EXPECT_EQ(outcome.failure, FailureClass::kInternalFault)
            << id << " / " << point;
      }
    }
  }
}

TEST(ChaosTest, ProbabilisticSweepNeverCrashes) {
  // Random-but-reproducible faults at every point simultaneously, across
  // several seeds: whatever fails, the outcome stays structured.
  for (const auto& id : AllAssignmentIds()) {
    const auto& assignment = kb::KnowledgeBase::Get().assignment(id);
    std::string reference = assignment.Reference();
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      fault::FaultConfig config;
      config.seed = seed;
      config.probability = 0.3;
      GradingOutcome outcome;
      {
        fault::ScopedFaultInjection injection(config);
        GradingPipeline pipeline(assignment);
        outcome = pipeline.Grade(reference);
      }
      ExpectValidOutcome(outcome,
                         id + " / seed " + std::to_string(seed));
    }
  }
}

TEST(ChaosTest, SameSeedReproducesTheSameOutcome) {
  const auto& assignment =
      kb::KnowledgeBase::Get().assignment("assignment1");
  std::string reference = assignment.Reference();
  auto grade_with_seed = [&](uint64_t seed) {
    fault::FaultConfig config;
    config.seed = seed;
    config.probability = 0.5;
    fault::ScopedFaultInjection injection(config);
    GradingPipeline pipeline(assignment);
    return pipeline.Grade(reference);
  };
  GradingOutcome first = grade_with_seed(42);
  GradingOutcome second = grade_with_seed(42);
  EXPECT_EQ(first.verdict, second.verdict);
  EXPECT_EQ(first.tier, second.tier);
  EXPECT_EQ(first.failure, second.failure);
  EXPECT_EQ(first.diagnostic, second.diagnostic);
}

TEST(ChaosTest, BatchUnderFaultsYieldsOneOutcomePerSubmission) {
  const auto& assignment =
      kb::KnowledgeBase::Get().assignment("assignment1");
  fault::FaultConfig config;
  config.probability = 0.5;
  fault::ScopedFaultInjection injection(config);
  GradingPipeline pipeline(assignment);
  auto outcomes = pipeline.GradeBatch({
      assignment.Reference(),
      "void assignment1(int[] a) { int x = 1; }",
      "garbage (",
  });
  ASSERT_EQ(outcomes.size(), 3u);
  for (size_t i = 0; i < outcomes.size(); ++i) {
    ExpectValidOutcome(outcomes[i], "batch member " + std::to_string(i));
  }
}

}  // namespace
}  // namespace jfeed::service
