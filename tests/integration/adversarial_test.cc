// Adversarial-submission corpus: submissions crafted to hang, OOM, or flood
// the grader. Each one must come back as a structured GradingOutcome with
// the right failure class, within the configured wall-clock and heap
// budgets — never a crash, never an unbounded stall.

#include <gtest/gtest.h>

#include <chrono>
#include <string>

#include "kb/assignments.h"
#include "service/pipeline.h"

namespace jfeed::service {
namespace {

using Clock = std::chrono::steady_clock;

/// Budgets tight enough that the whole grade must finish in a few seconds.
PipelineOptions TightOptions() {
  PipelineOptions options;
  options.exec.deadline_ms = 200;
  options.exec.max_heap_bytes = 8ll << 20;  // 8 MiB.
  options.exec.max_output_bytes = 1 << 16;  // 64 KiB.
  options.budgets.functional_ms = 2'000;
  return options;
}

class AdversarialTest : public ::testing::Test {
 protected:
  GradingOutcome GradeTimed(const std::string& source) {
    const auto& assignment =
        kb::KnowledgeBase::Get().assignment("assignment1");
    GradingPipeline pipeline(assignment, TightOptions());
    auto start = Clock::now();
    GradingOutcome outcome = pipeline.Grade(source);
    elapsed_ms_ = std::chrono::duration_cast<std::chrono::milliseconds>(
                      Clock::now() - start)
                      .count();
    return outcome;
  }

  int64_t elapsed_ms_ = 0;
};

TEST_F(AdversarialTest, InfiniteLoopTimesOutPerTest) {
  GradingOutcome outcome =
      GradeTimed("void assignment1(int[] a) { while (true) { } }");
  EXPECT_EQ(outcome.stage_reached, Stage::kComplete);
  EXPECT_NE(outcome.verdict, Verdict::kCorrect);
  ASSERT_TRUE(outcome.functional_ran);
  EXPECT_GT(outcome.functional.timeouts, 0);
  // Per-test deadline is 200ms and the suite budget 2s; with slack for the
  // rest of the pipeline the whole grade must still be fast.
  EXPECT_LT(elapsed_ms_, 10'000);
}

TEST_F(AdversarialTest, DeepRecursionIsResourceExhausted) {
  GradingOutcome outcome =
      GradeTimed("void assignment1(int[] a) { assignment1(a); }");
  EXPECT_EQ(outcome.stage_reached, Stage::kComplete);
  EXPECT_NE(outcome.verdict, Verdict::kCorrect);
  ASSERT_TRUE(outcome.functional_ran);
  EXPECT_GT(outcome.functional.resource_exhausted, 0);
  EXPECT_LT(elapsed_ms_, 10'000);
}

TEST_F(AdversarialTest, HugeAllocationIsResourceExhausted) {
  GradingOutcome outcome = GradeTimed(
      "void assignment1(int[] a) { int[] big = new int[1073741824]; "
      "System.out.println(big.length); }");
  EXPECT_EQ(outcome.stage_reached, Stage::kComplete);
  EXPECT_NE(outcome.verdict, Verdict::kCorrect);
  ASSERT_TRUE(outcome.functional_ran);
  EXPECT_GT(outcome.functional.resource_exhausted, 0);
  EXPECT_LT(elapsed_ms_, 10'000);
}

TEST_F(AdversarialTest, OutputFloodIsResourceExhausted) {
  GradingOutcome outcome = GradeTimed(
      "void assignment1(int[] a) { while (true) { "
      "System.out.println(\"spam spam spam spam\"); } }");
  EXPECT_EQ(outcome.stage_reached, Stage::kComplete);
  EXPECT_NE(outcome.verdict, Verdict::kCorrect);
  ASSERT_TRUE(outcome.functional_ran);
  // The output budget (space) fires before the deadline (time) here.
  EXPECT_GT(outcome.functional.resource_exhausted, 0);
  EXPECT_LT(elapsed_ms_, 10'000);
}

TEST_F(AdversarialTest, ParseBombIsRejectedAtParseStage) {
  // 100k nested parens would blow the C++ stack in a guard-less
  // recursive-descent parser; the nesting-depth guard must reject it with a
  // classified error instead.
  std::string bomb = "void assignment1(int[] a) { int x = ";
  for (int i = 0; i < 100'000; ++i) bomb += '(';
  bomb += '1';
  for (int i = 0; i < 100'000; ++i) bomb += ')';
  bomb += "; }";
  GradingOutcome outcome = GradeTimed(bomb);
  EXPECT_EQ(outcome.verdict, Verdict::kNotGraded);
  EXPECT_EQ(outcome.tier, FeedbackTier::kParseDiagnostic);
  EXPECT_EQ(outcome.failure, FailureClass::kResourceExhausted);
  EXPECT_NE(outcome.diagnostic.find("nesting depth"), std::string::npos);
  EXPECT_LT(elapsed_ms_, 10'000);
}

TEST_F(AdversarialTest, StatementNestingBombIsAlsoRejected) {
  std::string bomb = "void assignment1(int[] a) { ";
  for (int i = 0; i < 50'000; ++i) bomb += "if (true) { ";
  bomb += "int x = 1;";
  for (int i = 0; i < 50'000; ++i) bomb += " }";
  bomb += " }";
  GradingOutcome outcome = GradeTimed(bomb);
  EXPECT_EQ(outcome.verdict, Verdict::kNotGraded);
  EXPECT_EQ(outcome.failure, FailureClass::kResourceExhausted);
  EXPECT_LT(elapsed_ms_, 10'000);
}

TEST_F(AdversarialTest, BatchSurvivesFullAdversarialCorpus) {
  const auto& assignment =
      kb::KnowledgeBase::Get().assignment("assignment1");
  GradingPipeline pipeline(assignment, TightOptions());
  auto outcomes = pipeline.GradeBatch({
      "void assignment1(int[] a) { while (true) { } }",
      "void assignment1(int[] a) { assignment1(a); }",
      assignment.Reference(),
  });
  ASSERT_EQ(outcomes.size(), 3u);
  // The healthy neighbor grades clean despite the adversaries around it.
  EXPECT_EQ(outcomes[2].verdict, Verdict::kCorrect);
  EXPECT_FALSE(outcomes[2].degraded());
}

}  // namespace
}  // namespace jfeed::service
