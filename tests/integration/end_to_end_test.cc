// Cross-module integration and property tests: the full pipeline
// (generator -> parser -> EPDG -> matcher -> feedback vs. interpreter ->
// functional verdict) over the knowledge base.

#include <gtest/gtest.h>

#include "core/submission_matcher.h"
#include "javalang/parser.h"
#include "javalang/printer.h"
#include "kb/assignments.h"
#include "testing/functional.h"

namespace jfeed {
namespace {

class EndToEndTest : public ::testing::TestWithParam<const char*> {
 protected:
  const kb::Assignment& assignment() const {
    return kb::KnowledgeBase::Get().assignment(GetParam());
  }
};

TEST_P(EndToEndTest, EverySingleErrorVariantParses) {
  const auto& a = assignment();
  const auto& sites = a.generator.sites();
  std::vector<size_t> choice(sites.size(), 0);
  for (size_t s = 0; s < sites.size(); ++s) {
    for (size_t v = 1; v < sites[s].variants.size(); ++v) {
      choice[s] = v;
      std::string source = a.generator.Instantiate(choice);
      EXPECT_TRUE(java::Parse(source).ok())
          << a.id << " site " << sites[s].name << " variant " << v << ":\n"
          << source;
    }
    choice[s] = 0;
  }
}

TEST_P(EndToEndTest, SingleErrorSoundness) {
  // Soundness of positive feedback: for every single-site deviation, if the
  // technique reports all-Correct the submission must actually pass the
  // functional tests. (The converse direction — functionally equivalent
  // variants that get flagged — is the paper's discrepancy column D and is
  // allowed.)
  const auto& a = assignment();
  auto reference = java::Parse(a.Reference());
  ASSERT_TRUE(reference.ok());
  auto expected = testing::ComputeExpectedOutputs(*reference, a.suite);
  ASSERT_TRUE(expected.ok());

  const auto& sites = a.generator.sites();
  std::vector<size_t> choice(sites.size(), 0);
  for (size_t s = 0; s < sites.size(); ++s) {
    for (size_t v = 1; v < sites[s].variants.size(); ++v) {
      choice[s] = v;
      std::string source = a.generator.Instantiate(choice);
      auto unit = java::Parse(source);
      ASSERT_TRUE(unit.ok());
      auto feedback = core::MatchSubmission(a.spec, *unit);
      ASSERT_TRUE(feedback.ok());
      if (feedback->AllCorrect()) {
        EXPECT_TRUE(testing::RunSuite(*unit, a.suite, *expected).passed)
            << a.id << ": positive feedback for a functionally wrong "
            << "submission (site " << sites[s].name << " variant '"
            << sites[s].variants[v] << "')";
      }
    }
    choice[s] = 0;
  }
}

TEST_P(EndToEndTest, FeedbackIsDeterministic) {
  const auto& a = assignment();
  uint64_t index = a.generator.SpaceSize() / 2;
  std::string source = a.generator.Generate(index);
  auto unit = java::Parse(source);
  ASSERT_TRUE(unit.ok());
  auto first = core::MatchSubmission(a.spec, *unit);
  auto second = core::MatchSubmission(a.spec, *unit);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->score, second->score);
  ASSERT_EQ(first->comments.size(), second->comments.size());
  for (size_t i = 0; i < first->comments.size(); ++i) {
    EXPECT_EQ(first->comments[i].kind, second->comments[i].kind);
    EXPECT_EQ(first->comments[i].message, second->comments[i].message);
    EXPECT_EQ(first->comments[i].details, second->comments[i].details);
  }
}

TEST_P(EndToEndTest, ReferencePrintingIsAFixedPoint) {
  const auto& a = assignment();
  auto unit = java::Parse(a.Reference());
  ASSERT_TRUE(unit.ok());
  std::string printed = java::UnitToString(*unit);
  auto reparsed = java::Parse(printed);
  ASSERT_TRUE(reparsed.ok()) << printed;
  EXPECT_EQ(java::UnitToString(*reparsed), printed);
}

TEST_P(EndToEndTest, PrettyPrintedReferenceGetsSameFeedback) {
  // Grading must be layout-independent: the pretty-printed reference and
  // the raw reference yield identical feedback.
  const auto& a = assignment();
  auto unit = java::Parse(a.Reference());
  ASSERT_TRUE(unit.ok());
  std::string printed = java::UnitToString(*unit);
  auto original = core::MatchSubmissionSource(a.spec, a.Reference());
  auto pretty = core::MatchSubmissionSource(a.spec, printed);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(pretty.ok());
  EXPECT_EQ(original->score, pretty->score);
  EXPECT_TRUE(pretty->AllCorrect());
}

TEST_P(EndToEndTest, FeedbackCommentCountIsStable) {
  // Every graded submission gets exactly P + C comments for a matched
  // single-method assignment (one per pattern, one per constraint).
  const auto& a = assignment();
  auto feedback = core::MatchSubmissionSource(a.spec, a.Reference());
  ASSERT_TRUE(feedback.ok());
  size_t pattern_uses = 0;
  for (const auto& m : a.spec.methods) pattern_uses += m.patterns.size();
  EXPECT_EQ(feedback->comments.size(),
            pattern_uses + a.spec.ConstraintCount());
}

INSTANTIATE_TEST_SUITE_P(
    AllAssignments, EndToEndTest,
    ::testing::Values("assignment1", "esc-LAB-3-P1-V1", "esc-LAB-3-P2-V1",
                      "esc-LAB-3-P2-V2", "esc-LAB-3-P3-V1",
                      "esc-LAB-3-P3-V2", "esc-LAB-3-P4-V1",
                      "esc-LAB-3-P4-V2", "mitx-derivatives",
                      "mitx-polynomials", "rit-all-g-medals",
                      "rit-medals-by-ath"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace jfeed
