// Golden equivalence suite for incremental resubmission grading (DESIGN.md
// §3d): for every assignment, a seeded resubmission chain graded cold (no
// method cache) and with the method cache enabled must produce
// byte-identical feedback — verdicts, tiers, comments, scores, functional
// results, even the matcher work counters. On top of equivalence it pins
// the cache-accounting contract: per-step methods_reused/methods_regraded
// match a fingerprint-level simulation of the cache, dispositions resolve
// to partial_hit exactly when methods were reused, and identical helper
// methods under two assignment ids never cross-hit.
//
// The chaos half covers the new cache.method_lookup injection point: a
// campaign forcing every lookup to fail must degrade to a healthy full
// regrade — same bytes, no ladder-rung drop, no poisoned entry — with the
// fallback counted in the cache stats.

#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "javalang/parser.h"
#include "kb/assignments.h"
#include "service/method_cache.h"
#include "service/pipeline.h"
#include "support/fault.h"
#include "testing/resubmission.h"

namespace jfeed {
namespace {

/// Everything observable about an outcome except wall-clock noise (stage
/// timings, arena bytes) and the cache accounting itself.
std::string DescribeOutcome(const service::GradingOutcome& o) {
  std::string out;
  out += service::VerdictName(o.verdict);
  out += "|";
  out += service::FeedbackTierName(o.tier);
  out += "|";
  out += service::StageName(o.stage_reached);
  out += "|";
  out += service::FailureClassName(o.failure);
  out += "|" + o.diagnostic + "\n";
  const auto& f = o.feedback;
  out += f.matched ? "matched " : "unmatched ";
  out += std::to_string(f.score) + " steps=" +
         std::to_string(f.match_stats.steps) + " regex=" +
         std::to_string(f.match_stats.regex_checks) + "\n";
  for (const auto& [q, h] : f.method_assignment) out += q + "=" + h + "\n";
  for (const auto& c : f.comments) {
    out += c.source_id + "|" + c.method + "|" +
           std::to_string(static_cast<int>(c.kind)) + "|" + c.message + "\n";
    for (const auto& d : c.details) out += "  " + d + "\n";
  }
  if (o.functional_ran) {
    out += "functional " + std::to_string(o.functional.passed) + " " +
           std::to_string(o.functional.tests_run) + " " +
           std::to_string(o.functional.tests_failed) + " " +
           o.functional.first_failure + "\n";
  }
  return out;
}

class ResubmissionGoldenTest : public ::testing::TestWithParam<const char*> {
 protected:
  const kb::Assignment& assignment() const {
    return kb::KnowledgeBase::Get().assignment(GetParam());
  }
};

TEST_P(ResubmissionGoldenTest, CachedFeedbackIsByteIdenticalToColdFeedback) {
  const auto& a = assignment();
  testing::ResubmissionChainOptions chain_options;
  chain_options.seed = 0x5eed0000 + static_cast<uint64_t>(a.id.size());
  chain_options.steps = 6;
  auto chain =
      testing::BuildResubmissionChain(a.id, a.generator, chain_options);

  service::GradingPipeline cold(a);
  service::PipelineOptions warm_options;
  warm_options.method_cache = std::make_shared<service::MethodCache>();
  service::GradingPipeline warm(a, warm_options);

  // Fingerprint-level simulation of the cache: a method reuses iff its
  // fingerprint was seen earlier in the chain (capacity is unbounded at
  // this scale, so the simulation is exact).
  std::set<uint64_t> seen;

  for (const auto& step : chain) {
    service::GradingOutcome cold_outcome = cold.Grade(step.source);
    service::GradingOutcome warm_outcome = warm.Grade(step.source);
    EXPECT_EQ(DescribeOutcome(cold_outcome), DescribeOutcome(warm_outcome))
        << a.id << " " << step.id << " ("
        << testing::ResubmitKindName(step.kind) << ")";

    // Cold grades never touch the method cache.
    EXPECT_EQ(cold_outcome.methods_reused, 0) << step.id;
    EXPECT_EQ(cold_outcome.methods_regraded, 0) << step.id;

    int expect_reused = 0;
    int expect_regraded = 0;
    auto unit = java::Parse(step.source);
    ASSERT_TRUE(unit.ok()) << step.id;
    for (const auto& method : unit->methods) {
      if (seen.count(method.fingerprint) > 0) {
        ++expect_reused;
      } else {
        ++expect_regraded;
        seen.insert(method.fingerprint);
      }
    }
    EXPECT_EQ(warm_outcome.methods_reused, expect_reused) << step.id;
    EXPECT_EQ(warm_outcome.methods_regraded, expect_regraded) << step.id;

    // Disposition contract: partial_hit exactly when methods were reused.
    const char* disposition =
        service::ResolveCacheDisposition("off", warm_outcome);
    if (expect_reused > 0) {
      EXPECT_STREQ(disposition, "partial_hit") << step.id;
    } else {
      EXPECT_STREQ(disposition, "off") << step.id;
    }

    // The ≥60% floor the bench gates on: any resubmission keeps at least
    // the two helper methods, i.e. two thirds of its methods.
    if (step.kind != testing::ResubmitKind::kInitial) {
      EXPECT_GE(warm_outcome.methods_reused, 2) << step.id;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAssignments, ResubmissionGoldenTest,
    ::testing::ValuesIn([]() {
      std::vector<const char*> ids;
      for (const auto& id : kb::KnowledgeBase::Get().assignment_ids()) {
        ids.push_back(id.c_str());
      }
      return ids;
    }()),
    [](const ::testing::TestParamInfo<const char*>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(ResubmissionIsolationTest, SharedMethodBodiesNeverCrossAssignments) {
  // Two different assignments, one shared cache. Every chain submission
  // carries the same two helper methods, so if keying by assignment id
  // ever broke, the second assignment's first grade would reuse them.
  const auto& kb = kb::KnowledgeBase::Get();
  auto ids = kb.assignment_ids();
  ASSERT_GE(ids.size(), 2u);
  const auto& a = kb.assignment(ids[0]);
  const auto& b = kb.assignment(ids[1]);

  auto cache = std::make_shared<service::MethodCache>();
  service::PipelineOptions options;
  options.method_cache = cache;
  service::GradingPipeline pipeline_a(a, options);
  service::GradingPipeline pipeline_b(b, options);

  testing::ResubmissionChainOptions chain_options;
  chain_options.steps = 2;
  auto chain_a = testing::BuildResubmissionChain(a.id, a.generator,
                                                 chain_options);
  for (const auto& step : chain_a) pipeline_a.Grade(step.source);

  auto chain_b = testing::BuildResubmissionChain(b.id, b.generator,
                                                 chain_options);
  service::GradingOutcome first_b = pipeline_b.Grade(chain_b[0].source);
  EXPECT_EQ(first_b.methods_reused, 0)
      << "helper methods leaked across assignment ids";
  EXPECT_EQ(first_b.methods_regraded, 3);
}

TEST(ResubmissionChaosTest, LookupFaultDegradesToHealthyFullRegrade) {
  const auto& kb = kb::KnowledgeBase::Get();
  const auto& a = kb.assignment(kb.assignment_ids().front());

  auto cache = std::make_shared<service::MethodCache>();
  service::PipelineOptions options;
  options.method_cache = cache;
  service::GradingPipeline warm(a, options);
  service::GradingPipeline cold(a);

  testing::ResubmissionChainOptions chain_options;
  chain_options.steps = 1;
  chain_options.duplicate_prob = 0.0;
  chain_options.comment_prob = 0.0;
  chain_options.rename_prob = 0.0;
  auto chain = testing::BuildResubmissionChain(a.id, a.generator,
                                               chain_options);

  // Warm the cache, then note its size: the campaign must not grow it.
  warm.Grade(chain[0].source);
  size_t size_before = cache->size();
  ASSERT_GT(size_before, 0u);

  service::GradingOutcome faulted;
  {
    fault::FaultConfig config;
    config.probability = 1.0;
    config.only_point = fault::points::kMethodCacheLookup;
    fault::ScopedFaultInjection campaign(config);
    faulted = warm.Grade(chain[1].source);
  }
  service::GradingOutcome reference = cold.Grade(chain[1].source);

  // Degrade-to-regrade, not a ladder rung: same bytes, healthy outcome.
  EXPECT_EQ(DescribeOutcome(faulted), DescribeOutcome(reference));
  EXPECT_EQ(faulted.failure, service::FailureClass::kNone);
  EXPECT_EQ(faulted.tier, service::FeedbackTier::kFullEpdg);
  EXPECT_EQ(faulted.methods_reused, 0);
  EXPECT_STREQ(service::ResolveCacheDisposition("off", faulted), "off");

  // Metrics coherence: the fallback was counted, nothing was inserted.
  service::MethodCacheStats stats = cache->stats();
  EXPECT_GE(stats.fallbacks, 1u);
  EXPECT_EQ(cache->size(), size_before);

  // And the campaign left no poison: the same resubmission now reuses the
  // helpers again and still matches the cold bytes.
  service::GradingOutcome after = warm.Grade(chain[1].source);
  EXPECT_EQ(DescribeOutcome(after), DescribeOutcome(reference));
  EXPECT_GE(after.methods_reused, 2);
}

}  // namespace
}  // namespace jfeed
