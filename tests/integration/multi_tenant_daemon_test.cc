// Multi-tenant jfeedd integration tests: per-line assignment routing on
// POST /grade, per-line 404/429 error objects, the all-shed -> HTTP 429 +
// Retry-After escalation, per-assignment /statusz and /events views, and
// the assignment-labeled metric families (DESIGN.md §5f/§6).

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "kb/assignments.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/daemon.h"
#include "tests/testutil/http_client.h"

#ifndef JFEED_OBS_DISABLED

namespace jfeed {
namespace {

using jfeed::testutil::HttpFetch;

constexpr const char* kTenantA = "assignment1";
constexpr const char* kTenantB = "mitx-polynomials";

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string RoutedLine(const std::string& assignment, const std::string& id,
                       const std::string& source) {
  return "{\"id\":\"" + id + "\",\"assignment\":\"" + assignment +
         "\",\"source\":\"" + JsonEscape(source) + "\"}\n";
}

std::vector<std::string> SplitLines(const std::string& body) {
  std::vector<std::string> lines;
  size_t pos = 0;
  while (pos < body.size()) {
    size_t eol = body.find('\n', pos);
    if (eol == std::string::npos) break;
    lines.push_back(body.substr(pos, eol - pos));
    pos = eol + 1;
  }
  return lines;
}

const kb::Assignment& Tenant(const char* id) {
  return kb::KnowledgeBase::Get().assignment(id);
}

class MultiTenantDaemonTest : public ::testing::Test {
 protected:
  void StartDaemon(service::DaemonOptions options) {
    // The registry is process-global; zero it so the exact-value metric
    // assertions below don't depend on which suites ran earlier.
    obs::Registry::Global().ResetForTest();
    obs::EventLog::Global().Clear();
    daemon_ = std::make_unique<service::GradingDaemon>(std::move(options));
    ASSERT_TRUE(daemon_->Start().ok());
    ASSERT_NE(daemon_->port(), 0);
  }

  void TearDown() override {
    if (daemon_ != nullptr) daemon_->Stop();
    daemon_.reset();
    obs::EventLog::Global().set_enabled(false);
    obs::EventLog::Global().Clear();
    obs::Registry::Global().set_enabled(false);
  }

  std::unique_ptr<service::GradingDaemon> daemon_;
};

TEST_F(MultiTenantDaemonTest, RoutesByAssignmentWithPerLine404) {
  service::DaemonOptions options;
  options.assignments = {kTenantA, kTenantB};
  options.jobs = 2;
  StartDaemon(std::move(options));

  std::string body =
      RoutedLine(kTenantA, "a-1", Tenant(kTenantA).Reference()) +
      RoutedLine(kTenantB, "b-1", Tenant(kTenantB).Reference()) +
      RoutedLine("no-such", "x-1", Tenant(kTenantA).Reference()) +
      "{\"id\":\"u-1\",\"source\":\"class C {}\"}\n";
  auto graded = HttpFetch(daemon_->port(), "POST", "/grade", body);
  ASSERT_TRUE(graded.ok);
  EXPECT_EQ(graded.status, 200);  // Mixed outcomes stay per-line.

  auto lines = SplitLines(graded.body);
  ASSERT_EQ(lines.size(), 4u) << graded.body;
  // Routed lines grade under their own assignment and say so.
  EXPECT_NE(lines[0].find("\"assignment\":\"assignment1\""),
            std::string::npos)
      << lines[0];
  EXPECT_NE(lines[0].find("\"verdict\":\"correct\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"assignment\":\"mitx-polynomials\""),
            std::string::npos)
      << lines[1];
  EXPECT_NE(lines[1].find("\"verdict\":\"correct\""), std::string::npos);
  // Unknown assignment: per-line 404 object, the rest of the batch intact.
  EXPECT_NE(lines[2].find("\"code\":404"), std::string::npos) << lines[2];
  EXPECT_NE(lines[2].find("\"assignment\":\"no-such\""), std::string::npos);
  // No assignment key and no unambiguous default: per-line error.
  EXPECT_NE(lines[3].find("\"error\""), std::string::npos) << lines[3];
  EXPECT_NE(lines[3].find("assignment"), std::string::npos) << lines[3];

  // The flight recorder stamped each event with its line's assignment.
  auto a_events =
      HttpFetch(daemon_->port(), "GET", "/events?assignment=assignment1");
  ASSERT_TRUE(a_events.ok);
  auto a_lines = SplitLines(a_events.body);
  ASSERT_EQ(a_lines.size(), 1u) << a_events.body;
  obs::WideEvent event;
  ASSERT_TRUE(obs::FromJson(a_lines[0], &event));
  EXPECT_EQ(event.assignment, "assignment1");
  EXPECT_EQ(event.submission_id, "a-1");

  auto b_events = HttpFetch(daemon_->port(), "GET",
                            "/events?assignment=mitx-polynomials");
  ASSERT_TRUE(b_events.ok);
  EXPECT_EQ(SplitLines(b_events.body).size(), 1u);

  // /statusz: multi-tenant identity plus the per-shard breakdown.
  auto statusz = HttpFetch(daemon_->port(), "GET", "/statusz");
  ASSERT_TRUE(statusz.ok);
  EXPECT_NE(statusz.body.find("\"assignment\":\"*\""), std::string::npos);
  EXPECT_NE(statusz.body.find(
                "\"assignments\":[\"assignment1\",\"mitx-polynomials\"]"),
            std::string::npos)
      << statusz.body.substr(0, 512);
  EXPECT_NE(statusz.body.find("\"shards\":["), std::string::npos);
  EXPECT_NE(statusz.body.find("\"assignment\":\"assignment1\",\"depth\":"),
            std::string::npos);

  // /metrics: the assignment label on the scheduler families, with the
  // unlabeled aggregate still present (§6 contract change).
  auto metrics = HttpFetch(daemon_->port(), "GET", "/metrics");
  ASSERT_TRUE(metrics.ok);
  EXPECT_NE(metrics.body.find(
                "jfeed_sched_jobs_total{assignment=\"assignment1\"}"),
            std::string::npos);
  EXPECT_NE(metrics.body.find("jfeed_sched_jobs_total 2"), std::string::npos)
      << "unlabeled aggregate lost";
  EXPECT_NE(metrics.body.find(
                "jfeed_grade_duration_us_count{assignment=\"assignment1\"}"),
            std::string::npos);
}

TEST_F(MultiTenantDaemonTest, ShedIsPerLineAnd429OnlyWhenTotal) {
  // Tiny quota, one worker: pin the worker + quota with a slow submission,
  // then spike the same assignment. A mixed batch stays 200 with a per-line
  // 429 object; a single-line request that sheds escalates to HTTP 429
  // with a Retry-After header.
  service::DaemonOptions options;
  options.assignments = {kTenantA, kTenantB};
  options.jobs = 1;
  options.shard_queue_capacity = 1;
  options.use_result_cache = false;
  // The pin below must hold its worker for real wall-clock time. A bare
  // `while (true)` burns the suite's 300k-step budget in milliseconds, so
  // the pin concatenates strings — each iteration copies the whole string,
  // so wall time outruns the step count. Lift the heap guard (it meters
  // cumulative allocation at GB/s) so the 1.5s exec deadline is the limit
  // that actually ends the pin.
  options.pipeline.exec.deadline_ms = 1500;
  options.pipeline.exec.max_heap_bytes = int64_t{1} << 40;
  options.pipeline.budgets.functional_ms = 1500;
  StartDaemon(std::move(options));

  const std::string slow =
      "void assignment1(int[] a) { String s = \"\"; while (true) { s = s + "
      "\"0123456789012345678901234567890123456789012345678901234567890123456"
      "789012345678901234567890123456789\"; } }";
  testutil::HttpResult slow_result;
  std::thread pin([this, &slow, &slow_result] {
    slow_result = HttpFetch(daemon_->port(), "POST", "/grade",
                            RoutedLine(kTenantA, "pin", slow));
  });
  // Wait until the daemon has admitted the slow submission (shard depth 1).
  for (int i = 0; i < 200; ++i) {
    auto statusz = HttpFetch(daemon_->port(), "GET", "/statusz");
    if (statusz.ok &&
        statusz.body.find("\"assignment\":\"assignment1\",\"depth\":1") !=
            std::string::npos) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // Single-line all-shed first: every line sheds, so the response never
  // waits on the (pinned) worker — it comes back as pure backpressure.
  auto shed = HttpFetch(daemon_->port(), "POST", "/grade",
                        RoutedLine(kTenantA, "spike-2",
                                   Tenant(kTenantA).Reference()));
  ASSERT_TRUE(shed.ok);
  EXPECT_EQ(shed.status, 429) << shed.body;
  EXPECT_NE(shed.headers.find("Retry-After:"), std::string::npos)
      << shed.headers;
  EXPECT_NE(shed.body.find("\"code\":429"), std::string::npos);

  // Mixed batch: tenant A sheds per-line, tenant B still grades -> 200.
  // Admission happens up front (tenant A still at quota), then the response
  // waits for calm-1 to grade behind the pin on the shared worker.
  std::string mixed =
      RoutedLine(kTenantA, "spike-1", Tenant(kTenantA).Reference()) +
      RoutedLine(kTenantB, "calm-1", Tenant(kTenantB).Reference());
  auto partial = HttpFetch(daemon_->port(), "POST", "/grade", mixed);
  ASSERT_TRUE(partial.ok);
  EXPECT_EQ(partial.status, 200) << partial.body;
  auto lines = SplitLines(partial.body);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"code\":429"), std::string::npos) << lines[0];
  EXPECT_NE(lines[0].find("\"retry_after_s\":"), std::string::npos);
  EXPECT_NE(lines[1].find("\"verdict\":\"correct\""), std::string::npos)
      << lines[1];

  pin.join();
  ASSERT_TRUE(slow_result.ok);
  EXPECT_EQ(slow_result.status, 200);

  // The sheds landed on the spiking tenant's counter only.
  auto metrics = HttpFetch(daemon_->port(), "GET", "/metrics");
  ASSERT_TRUE(metrics.ok);
  EXPECT_NE(metrics.body.find("jfeed_shed_total{assignment=\"assignment1\"} 2"),
            std::string::npos)
      << metrics.body.substr(0, 1024);
  EXPECT_EQ(metrics.body.find("jfeed_shed_total{assignment=\"mitx-polynomials\"} 1"),
            std::string::npos);
}

TEST_F(MultiTenantDaemonTest, SingleTenantModeKeepsUnroutedLinesWorking) {
  // Back-compat: a daemon started the old way (one assignment id) accepts
  // lines without an assignment key and stamps outcomes with its tenant.
  service::DaemonOptions options;
  options.assignment_id = kTenantA;
  options.jobs = 2;
  StartDaemon(std::move(options));

  std::string body = "{\"id\":\"legacy-1\",\"source\":\"" +
                     JsonEscape(Tenant(kTenantA).Reference()) + "\"}\n";
  auto graded = HttpFetch(daemon_->port(), "POST", "/grade", body);
  ASSERT_TRUE(graded.ok);
  EXPECT_EQ(graded.status, 200);
  auto lines = SplitLines(graded.body);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"assignment\":\"assignment1\""),
            std::string::npos)
      << lines[0];
  EXPECT_NE(lines[0].find("\"verdict\":\"correct\""), std::string::npos);

  auto statusz = HttpFetch(daemon_->port(), "GET", "/statusz");
  ASSERT_TRUE(statusz.ok);
  EXPECT_NE(statusz.body.find("\"assignment\":\"assignment1\""),
            std::string::npos);
}

TEST_F(MultiTenantDaemonTest, StartRejectsUnknownAndDuplicateAssignments) {
  {
    service::DaemonOptions options;
    options.assignments = {kTenantA, "no-such"};
    service::GradingDaemon daemon(std::move(options));
    Status status = daemon.Start();
    EXPECT_EQ(status.code(), StatusCode::kNotFound) << status.ToString();
  }
  {
    service::DaemonOptions options;
    options.assignments = {kTenantA, kTenantA};
    service::GradingDaemon daemon(std::move(options));
    Status status = daemon.Start();
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument)
        << status.ToString();
  }
  obs::Registry::Global().set_enabled(false);
  obs::EventLog::Global().set_enabled(false);
}

TEST_F(MultiTenantDaemonTest, DefaultLoadsEveryAssignment) {
  // Neither assignment_id nor assignments: the daemon serves the full
  // knowledge base — the one-process MOOC deployment.
  service::DaemonOptions options;
  options.jobs = 2;
  StartDaemon(std::move(options));

  auto statusz = HttpFetch(daemon_->port(), "GET", "/statusz");
  ASSERT_TRUE(statusz.ok);
  for (const auto& id : kb::KnowledgeBase::Get().assignment_ids()) {
    EXPECT_NE(statusz.body.find("\"" + id + "\""), std::string::npos) << id;
  }

  // Any tenant routes.
  auto graded = HttpFetch(
      daemon_->port(), "POST", "/grade",
      RoutedLine("rit-all-g-medals", "any-1",
                 Tenant("rit-all-g-medals").Reference()));
  ASSERT_TRUE(graded.ok);
  EXPECT_EQ(graded.status, 200);
  EXPECT_NE(graded.body.find("\"verdict\":\"correct\""), std::string::npos)
      << graded.body;
}

}  // namespace
}  // namespace jfeed

#endif  // JFEED_OBS_DISABLED
