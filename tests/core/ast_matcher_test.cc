#include "core/ast_matcher.h"

#include <gtest/gtest.h>

#include "core/expr_pattern.h"
#include "javalang/parser.h"
#include "javalang/printer.h"

namespace jfeed::core {
namespace {

AstTemplate Make(const std::string& source, std::set<std::string> vars,
                 AstTemplate::Options options = {}) {
  auto t = AstTemplate::Create(source, std::move(vars), options);
  EXPECT_TRUE(t.ok()) << t.status().ToString();
  return t.ok() ? std::move(*t) : AstTemplate();
}

java::ExprPtr ParseOrDie(const std::string& source) {
  auto e = java::ParseExpression(source);
  EXPECT_TRUE(e.ok()) << e.status().ToString();
  return std::move(*e);
}

TEST(AstMatcherTest, ExactStructuralMatch) {
  AstTemplate t = Make("x = 0", {"x"});
  EXPECT_TRUE(t.Matches(*ParseOrDie("i = 0"), {}));
  EXPECT_FALSE(t.Matches(*ParseOrDie("i = 1"), {}));
  EXPECT_FALSE(t.Matches(*ParseOrDie("i = 0.0"), {}));  // Different literal kind.
}

TEST(AstMatcherTest, SubtreeSearchSemantics) {
  // Like the regex backend, the template may match inside the content.
  AstTemplate t = Make("s[x]", {"s", "x"});
  EXPECT_TRUE(t.Matches(*ParseOrDie("odd = odd + a[i]"), {}));
  auto bindings = t.AllMatches(*ParseOrDie("odd = odd + a[i]"), {});
  ASSERT_EQ(bindings.size(), 1u);
  EXPECT_EQ(bindings[0].at("s"), "a");
  EXPECT_EQ(bindings[0].at("x"), "i");
}

TEST(AstMatcherTest, ImmuneToTextualPrefixTraps) {
  // The regex backend needs explicit anchoring to reject "% 100"; the AST
  // backend rejects it structurally.
  AstTemplate t = Make("n % 10", {"n"});
  EXPECT_TRUE(t.Matches(*ParseOrDie("d = v % 10"), {}));
  EXPECT_FALSE(t.Matches(*ParseOrDie("d = v % 100"), {}));
  AstTemplate update = Make("f = f * x", {"f", "x"});
  EXPECT_TRUE(update.Matches(*ParseOrDie("p = p * i"), {}));
  EXPECT_FALSE(update.Matches(*ParseOrDie("p = p * i + 1"), {}));
}

TEST(AstMatcherTest, CommutativityMatchesSwappedOperands) {
  // The paper's Fig. 8 pair differs in operand order; AST matching with
  // commutative operators accepts both spellings.
  AstTemplate t = Make("t = a + b", {"t", "a", "b"});
  EXPECT_TRUE(t.Matches(*ParseOrDie("next = x + y"), {}));
  EXPECT_TRUE(t.Matches(*ParseOrDie("next = y + x"), {}));
  AstTemplate strict =
      Make("t = a - b", {"t", "a", "b"});
  EXPECT_TRUE(strict.Matches(*ParseOrDie("d = p - q"), {}));
  // '-' is not commutative: both orders match but with different bindings.
  auto bindings = strict.AllMatches(*ParseOrDie("d = p - q"), {});
  ASSERT_EQ(bindings.size(), 1u);
  EXPECT_EQ(bindings[0].at("a"), "p");
}

TEST(AstMatcherTest, CommutativityCanBeDisabled) {
  AstTemplate::Options options;
  options.commutative = false;
  AstTemplate t = Make("x + 1", {"x"}, options);
  EXPECT_TRUE(t.Matches(*ParseOrDie("i + 1"), {}));
  EXPECT_FALSE(t.Matches(*ParseOrDie("1 + i"), {}));
}

TEST(AstMatcherTest, BindingConsistencyWithGamma) {
  AstTemplate t = Make("x % 2 == 1", {"x"});
  // γ pins x→i: content using j must not match.
  EXPECT_TRUE(t.Matches(*ParseOrDie("i % 2 == 1"), {{"x", "i"}}));
  EXPECT_FALSE(t.Matches(*ParseOrDie("j % 2 == 1"), {{"x", "i"}}));
}

TEST(AstMatcherTest, InjectiveBindings) {
  AstTemplate t = Make("x = y", {"x", "y"});
  // x and y must bind different submission variables.
  EXPECT_TRUE(t.Matches(*ParseOrDie("a = b"), {}));
  EXPECT_FALSE(t.Matches(*ParseOrDie("a = a"), {}));
  // ... also against already-bound variables in γ.
  EXPECT_FALSE(t.Matches(*ParseOrDie("a = b"), {{"z", "b"}}));
}

TEST(AstMatcherTest, MetavariablesBindOnlyVariables) {
  AstTemplate t = Make("x = 0", {"x"});
  // `a[i] = 0` — the target is not a plain variable.
  EXPECT_FALSE(t.Matches(*ParseOrDie("a[i] = 0"), {}));
  // Well-known class names are not variables.
  AstTemplate call = Make("v.close()", {"v"});
  EXPECT_TRUE(call.Matches(*ParseOrDie("s.close()"), {}));
}

TEST(AstMatcherTest, MethodCallsAndFields) {
  AstTemplate t = Make("x < s.length", {"x", "s"});
  EXPECT_TRUE(t.Matches(*ParseOrDie("i < a.length"), {}));
  EXPECT_FALSE(t.Matches(*ParseOrDie("i <= a.length"), {}));
  AstTemplate pow = Make("Math.pow(v, x)", {"v", "x"});
  EXPECT_TRUE(pow.Matches(*ParseOrDie("r + a[i] * Math.pow(q, i)"), {}));
  EXPECT_FALSE(pow.Matches(*ParseOrDie("Math.pow(q, 3)"), {}));
}

TEST(AstMatcherTest, RepeatedMetavariableWithinOneTemplate) {
  // Regression: a metavariable appearing twice in the same template must
  // bind the same submission variable both times (and never be silently
  // rebound by the commutative retry).
  AstTemplate t = Make("n = n / 10", {"n"});
  EXPECT_TRUE(t.Matches(*ParseOrDie("v = v / 10"), {}));
  EXPECT_FALSE(t.Matches(*ParseOrDie("v = w / 10"), {}));
  AstTemplate sum = Make("c = c + v", {"c", "v"});
  auto bindings = sum.AllMatches(*ParseOrDie("s = s + n"), {});
  ASSERT_EQ(bindings.size(), 1u);
  EXPECT_EQ(bindings[0].at("c"), "s");
  EXPECT_EQ(bindings[0].at("v"), "n");
  // Commutative spelling still binds c to the assignment target.
  auto swapped = sum.AllMatches(*ParseOrDie("s = n + s"), {});
  ASSERT_EQ(swapped.size(), 1u);
  EXPECT_EQ(swapped[0].at("c"), "s");
}

TEST(AstMatcherTest, MultipleSubtreeMatchesReported) {
  AstTemplate t = Make("s[x]", {"s", "x"});
  auto bindings = t.AllMatches(*ParseOrDie("a[i] + b[j]"), {});
  EXPECT_EQ(bindings.size(), 2u);
}

TEST(AstMatcherTest, EmptyTemplateNeverMatches) {
  AstTemplate t;
  EXPECT_TRUE(t.empty());
  EXPECT_FALSE(t.Matches(*ParseOrDie("x"), {}));
}

TEST(AstMatcherTest, InvalidTemplateRejected) {
  EXPECT_FALSE(AstTemplate::Create("x ([", {"x"}).ok());
  EXPECT_FALSE(AstTemplate::Create("", {"x"}).ok());
}

TEST(ContentToExprTest, PlainExpressionsPassThrough) {
  auto e = ContentToExpr("odd += a[i]");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(java::ExprToString(**e), "odd += a[i]");
}

TEST(ContentToExprTest, DeclarationsAreStripped) {
  auto e = ContentToExpr("int even = 0");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(java::ExprToString(**e), "even = 0");
  auto arr = ContentToExpr("double[] b = new double[a.length - 1]");
  ASSERT_TRUE(arr.ok());
  EXPECT_EQ(java::ExprToString(**arr), "b = new double[a.length - 1]");
}

TEST(ContentToExprTest, ReturnIsStripped) {
  auto e = ContentToExpr("return x + y");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(java::ExprToString(**e), "x + y");
}

TEST(ContentToExprTest, NonExpressionsRejected) {
  EXPECT_FALSE(ContentToExpr("break").ok());
  EXPECT_FALSE(ContentToExpr("return").ok());
}

TEST(AstVsRegexTest, AstBackendIsStricterWithoutAnchors) {
  // The precision comparison behind DESIGN.md's recommendation: the same
  // un-anchored template, two backends.
  auto regex = ExprPattern::Create("dn = dn / 10", {"dn"});
  ASSERT_TRUE(regex.ok());
  AstTemplate ast = Make("dn = dn / 10", {"dn"});
  // Both accept the correct content.
  EXPECT_TRUE(regex->Matches("n = n / 10", {{"dn", "n"}}));
  EXPECT_TRUE(ast.Matches(*ParseOrDie("n = n / 10"), {{"dn", "n"}}));
  // Only the AST backend rejects the "/ 100" trap without anchoring.
  EXPECT_TRUE(regex->Matches("n = n / 100", {{"dn", "n"}}));
  EXPECT_FALSE(ast.Matches(*ParseOrDie("n = n / 100"), {{"dn", "n"}}));
}

}  // namespace
}  // namespace jfeed::core
