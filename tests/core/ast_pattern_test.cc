// Integration of the AST matching backend (Sec. VII extension) with
// Algorithm 1: patterns built with NodeAst match structurally, fall back to
// the regex approximate template for the incorrect marking, and are immune
// to operand-order and textual-prefix variability.

#include <gtest/gtest.h>

#include <deque>

#include "core/pattern_matcher.h"
#include "javalang/parser.h"
#include "pdg/epdg.h"

namespace jfeed::core {
namespace {

pdg::Epdg BuildFrom(const std::string& source) {
  // EPDG nodes borrow statement ASTs from the compilation unit, so the
  // parsed units must outlive every graph handed back to a test.
  static auto* units = new std::deque<java::CompilationUnit>();
  auto unit = java::Parse(source);
  EXPECT_TRUE(unit.ok()) << unit.status().ToString();
  units->push_back(std::move(*unit));
  auto g = pdg::BuildEpdg(units->back().methods[0]);
  EXPECT_TRUE(g.ok()) << g.status().ToString();
  return std::move(*g);
}

/// An AST-flavoured odd-access pattern: same semantics as the library's
/// odd-positions, but every exact template is structural Java.
Pattern AstOddPattern() {
  auto p = PatternBuilder("ast-odd", "AST odd access")
               .Var("x")
               .Var("s")
               .NodeAst(PatternNodeType::kAssign, "x = 0", "x = -?\\d+",
                        "{x} is initialized to 0",
                        "{x} should be initialized to 0")
               .NodeAst(PatternNodeType::kCond, "x < s.length",
                        "x <= s\\.length", "{x} stays in bounds",
                        "{x} runs out of bounds")
               .NodeAst(PatternNodeType::kCond, "x % 2 == 1", "",
                        "{x} is checked for oddness", "")
               .NodeAst(PatternNodeType::kUntyped, "s[x]", "",
                        "{s} is accessed at {x}", "")
               .DataEdge(0, 1)
               .DataEdge(0, 2)
               .DataEdge(0, 3)
               .CtrlEdge(1, 2)
               .CtrlEdge(2, 3)
               .Present("Odd positions accessed (AST backend)")
               .Missing("Odd access missing")
               .Build();
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return std::move(*p);
}

constexpr const char* kCorrect = R"(
void f(int[] a) {
  int o = 0;
  for (int i = 0; i < a.length; i++)
    if (i % 2 == 1)
      o += a[i];
  System.out.println(o);
})";

TEST(AstPatternTest, MatchesCorrectSubmission) {
  pdg::Epdg g = BuildFrom(kCorrect);
  auto ms = MatchPattern(AstOddPattern(), g);
  ASSERT_EQ(ms.size(), 1u);
  EXPECT_TRUE(ms[0].IsFullyCorrect());
  EXPECT_EQ(ms[0].gamma.at("x"), "i");
  EXPECT_EQ(ms[0].gamma.at("s"), "a");
}

TEST(AstPatternTest, CommutativityAcceptsSwappedCondition) {
  // `1 == i % 2` — the regex backend would need an explicit alternation;
  // AST unification with commutative == accepts it directly.
  pdg::Epdg g = BuildFrom(R"(
      void f(int[] a) {
        int o = 0;
        for (int i = 0; i < a.length; i++)
          if (1 == i % 2)
            o += a[i];
      })");
  auto ms = MatchPattern(AstOddPattern(), g);
  ASSERT_EQ(ms.size(), 1u);
  EXPECT_TRUE(ms[0].IsFullyCorrect());
}

TEST(AstPatternTest, ApproxFallbackMarksIncorrect) {
  pdg::Epdg g = BuildFrom(R"(
      void f(int[] a) {
        int o = 0;
        for (int i = 0; i <= a.length; i++)
          if (i % 2 == 1)
            o += a[i];
      })");
  auto ms = MatchPattern(AstOddPattern(), g);
  ASSERT_EQ(ms.size(), 1u);
  EXPECT_FALSE(ms[0].IsFullyCorrect());
  EXPECT_EQ(ms[0].incorrect_nodes, (std::set<int>{1}));  // The bound node.
}

TEST(AstPatternTest, RejectsStructuralTraps) {
  // `i % 20 == 1` contains the text "i % 2" but is structurally different.
  pdg::Epdg g = BuildFrom(R"(
      void f(int[] a) {
        int o = 0;
        for (int i = 0; i < a.length; i++)
          if (i % 20 == 1)
            o += a[i];
      })");
  EXPECT_TRUE(MatchPattern(AstOddPattern(), g).empty());
}

TEST(AstPatternTest, MixedBackendsInteroperate) {
  // Regex and AST nodes in one pattern share the same γ.
  auto p = PatternBuilder("mixed", "mixed backends")
               .Var("c")
               .Var("v")
               .Node(PatternNodeType::kAssign, "c = 0", "",
                     "{c} starts at 0", "")
               .NodeAst(PatternNodeType::kAssign, "c = c + v", "",
                        "{c} accumulates {v}", "")
               .DataEdge(0, 1)
               .Build();
  ASSERT_TRUE(p.ok()) << p.status().ToString();
  pdg::Epdg g = BuildFrom(
      "void f(int n) { int s = 0; s = s + n; System.out.println(s); }");
  auto ms = MatchPattern(*p, g);
  ASSERT_EQ(ms.size(), 1u);
  EXPECT_EQ(ms[0].gamma.at("c"), "s");
  EXPECT_EQ(ms[0].gamma.at("v"), "n");
  // Commutativity: `s = n + s` matches too.
  pdg::Epdg g2 = BuildFrom(
      "void f(int n) { int s = 0; s = n + s; System.out.println(s); }");
  EXPECT_EQ(MatchPattern(*p, g2).size(), 1u);
}

TEST(AstPatternTest, DeclarationNodesExposeAssignAst) {
  // `int o = 0` is matched by the AST template `x = 0` because the EPDG
  // node carries the synthesized assignment expression.
  auto p = PatternBuilder("init", "init")
               .Var("x")
               .NodeAst(PatternNodeType::kAssign, "x = 0")
               .Build();
  ASSERT_TRUE(p.ok());
  pdg::Epdg g = BuildFrom("void f() { int o = 0; }");
  EXPECT_EQ(MatchPattern(*p, g).size(), 1u);
}

}  // namespace
}  // namespace jfeed::core
