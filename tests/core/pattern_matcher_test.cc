#include "core/pattern_matcher.h"

#include <gtest/gtest.h>

#include <deque>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "javalang/parser.h"
#include "pdg/epdg.h"
#include "pdg/match_index.h"
#include "tests/core/paper_patterns.h"

namespace jfeed::core {
namespace {

pdg::Epdg BuildFrom(const std::string& source) {
  // EPDG nodes borrow statement ASTs from the compilation unit, so the
  // parsed units must outlive every graph handed back to a test.
  static auto* units = new std::deque<java::CompilationUnit>();
  auto unit = java::Parse(source);
  EXPECT_TRUE(unit.ok()) << unit.status().ToString();
  units->push_back(std::move(*unit));
  auto g = pdg::BuildEpdg(units->back().methods[0]);
  EXPECT_TRUE(g.ok()) << g.status().ToString();
  return std::move(*g);
}

constexpr const char* kFigure2a = R"(
void assignment1(int[] a) {
  int even = 0;
  int odd = 0;
  for (int i = 0; i <= a.length; i++) {
    if (i % 2 == 1)
      odd += a[i];
    if (i % 2 == 1)
      even *= a[i];
  }
  System.out.println(odd);
  System.out.println(even);
})";

constexpr const char* kFigure2b = R"(
void assignment1(int[] a) {
  int o = 0, e = 1;
  int i = 0;
  while (i < a.length) {
    if (i % 2 == 1)
      o += a[i];
    if (i % 2 == 0)
      e *= a[i];
    i++;
  }
  System.out.print(o + ", " + e);
})";

std::string ContentOf(const pdg::Epdg& g, graph::NodeId id) {
  return std::string(g.NodeAt(id).content);
}

TEST(PatternMatcherTest, PublishedEmbeddingOfOddPositionsInFigure2a) {
  // Sec. III-B gives the embedding of p_o in the Fig. 3 EPDG: u0->v0 (the
  // parameter), u1->"int i = 0", u2->"i++", u3->"i <= a.length" (approx!),
  // u4->"i % 2 == 1", u5->"odd += a[i]"; γ = {s→a, x→i}.
  pdg::Epdg g = BuildFrom(kFigure2a);
  Pattern p = testutil::OddPositionsPattern();
  std::vector<Embedding> ms = MatchPattern(p, g);
  // Fig. 2a guards *both* accumulator updates with i % 2 == 1 (that is one
  // of its bugs), so the access pattern embeds at either if: 2 embeddings.
  ASSERT_EQ(ms.size(), 2u);
  const Embedding* found = nullptr;
  for (const auto& candidate : ms) {
    if (ContentOf(g, candidate.iota.at(5)) == "odd += a[i]") {
      found = &candidate;
    }
  }
  ASSERT_NE(found, nullptr);
  const Embedding& m = *found;
  EXPECT_EQ(m.gamma, (VarBinding{{"s", "a"}, {"x", "i"}}));
  EXPECT_EQ(ContentOf(g, m.iota.at(0)), "int[] a");
  EXPECT_EQ(ContentOf(g, m.iota.at(1)), "int i = 0");
  EXPECT_EQ(ContentOf(g, m.iota.at(2)), "i++");
  EXPECT_EQ(ContentOf(g, m.iota.at(3)), "i <= a.length");
  EXPECT_EQ(ContentOf(g, m.iota.at(4)), "i % 2 == 1");
  EXPECT_EQ(ContentOf(g, m.iota.at(5)), "odd += a[i]");
  // u3 only matched the approximate expression -> marked incorrect.
  EXPECT_EQ(m.incorrect_nodes, (std::set<int>{3}));
  EXPECT_FALSE(m.IsFullyCorrect());
}

TEST(PatternMatcherTest, CorrectSubmissionMatchesFullyCorrect) {
  pdg::Epdg g = BuildFrom(kFigure2b);
  Pattern p = testutil::OddPositionsPattern();
  std::vector<Embedding> ms = MatchPattern(p, g);
  ASSERT_EQ(ms.size(), 1u);
  EXPECT_TRUE(ms[0].IsFullyCorrect());
  EXPECT_EQ(ms[0].gamma.at("x"), "i");
  EXPECT_EQ(ms[0].gamma.at("s"), "a");
  EXPECT_EQ(ContentOf(g, ms[0].iota.at(5)), "o += a[i]");
}

TEST(PatternMatcherTest, CondAccumAddEmbedding) {
  pdg::Epdg g = BuildFrom(kFigure2a);
  Pattern p = testutil::CondAccumAddPattern();
  std::vector<Embedding> ms = MatchPattern(p, g);
  ASSERT_EQ(ms.size(), 1u);
  EXPECT_EQ(ms[0].gamma.at("c"), "odd");
  EXPECT_EQ(ContentOf(g, ms[0].iota.at(0)), "int odd = 0");
  EXPECT_EQ(ContentOf(g, ms[0].iota.at(3)), "odd += a[i]");
  EXPECT_TRUE(ms[0].IsFullyCorrect());
}

TEST(PatternMatcherTest, AssignPrintMatchesBothPrints) {
  pdg::Epdg g = BuildFrom(kFigure2a);
  Pattern p = testutil::AssignPrintPattern();
  std::vector<Embedding> ms = MatchPattern(p, g);
  // odd -> println(odd) and even -> println(even).
  ASSERT_EQ(ms.size(), 2u);
  std::set<std::string> printed;
  for (const auto& m : ms) printed.insert(m.gamma.at("y"));
  EXPECT_EQ(printed, (std::set<std::string>{"even", "odd"}));
}

TEST(PatternMatcherTest, MissingPatternYieldsNoEmbeddings) {
  pdg::Epdg g = BuildFrom(
      "void f(int[] a) { int s = 0; for (int i = 0; i < a.length; i++) "
      "s += a[i]; System.out.println(s); }");
  // No odd-position condition anywhere.
  Pattern p = testutil::OddPositionsPattern();
  EXPECT_TRUE(MatchPattern(p, g).empty());
}

TEST(PatternMatcherTest, EmptySearchSpaceShortCircuits) {
  pdg::Epdg g = BuildFrom("void f() { int x = 0; }");
  // Pattern requires a Cond node; the graph has none.
  Pattern p = testutil::CondAccumAddPattern();
  MatchStats stats;
  EXPECT_TRUE(MatchPattern(p, g, {}, &stats).empty());
  EXPECT_EQ(stats.steps, 0);
}

TEST(PatternMatcherTest, InjectiveIota) {
  // Two pattern nodes must not map to the same graph node.
  auto built = PatternBuilder("two-assigns", "two distinct assigns")
                   .Var("x")
                   .Var("y")
                   .Node(PatternNodeType::kAssign, "x = 0")
                   .Node(PatternNodeType::kAssign, "y = 0")
                   .Build();
  ASSERT_TRUE(built.ok());
  pdg::Epdg g = BuildFrom("void f() { int a = 0; }");
  EXPECT_TRUE(MatchPattern(*built, g).empty());
  pdg::Epdg g2 = BuildFrom("void f() { int a = 0; int b = 0; }");
  // Two graph nodes: embeddings (a,b) and (b,a).
  EXPECT_EQ(MatchPattern(*built, g2).size(), 2u);
}

TEST(PatternMatcherTest, GammaIsInjective) {
  // x and y must bind to *different* submission variables.
  auto built = PatternBuilder("swap", "two vars in one node")
                   .Var("x")
                   .Var("y")
                   .Node(PatternNodeType::kAssign, "x = y")
                   .Build();
  ASSERT_TRUE(built.ok());
  pdg::Epdg g = BuildFrom("void f(int b) { int a = b; }");
  auto ms = MatchPattern(*built, g);
  ASSERT_EQ(ms.size(), 1u);
  EXPECT_EQ(ms[0].gamma.at("x"), "a");
  EXPECT_EQ(ms[0].gamma.at("y"), "b");
  // `int a = a;` style self-assignment cannot match x = y.
  pdg::Epdg g2 = BuildFrom("void f() { int a = 0; a = a; }");
  EXPECT_TRUE(MatchPattern(*built, g2).empty());
}

TEST(PatternMatcherTest, FreshGraphVariablesMayExceedPatternVariables) {
  // DESIGN.md §3: |X| ≤ |Y| (injections), not |X| = |Y|. The graph node
  // `odd += a[i]` has three variables; the pattern node `s[x]` has two
  // (both already bound when the node is matched late) or fewer.
  pdg::Epdg g = BuildFrom(kFigure2a);
  Pattern p = testutil::OddPositionsPattern();
  EXPECT_FALSE(MatchPattern(p, g).empty());
}

TEST(PatternMatcherTest, EdgeOrientationIsChecked) {
  auto built = PatternBuilder("flow", "def before use")
                   .Var("x")
                   .Node(PatternNodeType::kAssign, "x = 1")
                   .Node(PatternNodeType::kCall, "print")
                   .DataEdge(0, 1)
                   .Build();
  ASSERT_TRUE(built.ok());
  pdg::Epdg ok = BuildFrom("void f() { int a = 1; System.out.print(a); }");
  EXPECT_EQ(MatchPattern(*built, ok).size(), 1u);
  // Reversed program order: print before def, no Data edge.
  pdg::Epdg bad = BuildFrom(
      "void f() { int a = 0; System.out.print(a); a = 1; }");
  EXPECT_TRUE(MatchPattern(*built, bad).empty());
}

TEST(PatternMatcherTest, EdgeTypeIsChecked) {
  auto ctrl = PatternBuilder("guarded", "guarded increment")
                  .Var("x")
                  .Node(PatternNodeType::kCond, "")
                  .Node(PatternNodeType::kAssign, "x \\+= 1|x\\+\\+")
                  .CtrlEdge(0, 1)
                  .Build();
  ASSERT_TRUE(ctrl.ok());
  pdg::Epdg guarded = BuildFrom(
      "void f(int c) { int n = 0; if (c > 0) n++; }");
  EXPECT_EQ(MatchPattern(*ctrl, guarded).size(), 1u);
  pdg::Epdg unguarded = BuildFrom("void f(int c) { int n = 0; n++; }");
  EXPECT_TRUE(MatchPattern(*ctrl, unguarded).empty());
}

TEST(PatternMatcherTest, MaxEmbeddingsTruncates) {
  // A one-node untyped pattern matches every node in the graph.
  auto built = PatternBuilder("any", "anything")
                   .Node(PatternNodeType::kUntyped, "")
                   .Build();
  ASSERT_TRUE(built.ok());
  pdg::Epdg g = BuildFrom(kFigure2a);
  MatchOptions options;
  options.max_embeddings = 3;
  MatchStats stats;
  auto ms = MatchPattern(*built, g, options, &stats);
  EXPECT_EQ(ms.size(), 3u);
  EXPECT_TRUE(stats.truncated);
}

TEST(PatternMatcherTest, CanonicalizationPrefersCorrectEmbedding) {
  // A node whose exact and approx templates both can match the same graph
  // node under different bindings must surface the correct variant.
  auto built = PatternBuilder("init", "initialize to zero")
                   .Var("x")
                   .Node(PatternNodeType::kAssign, "x = 0", "x = \\d+")
                   .Build();
  ASSERT_TRUE(built.ok());
  pdg::Epdg g = BuildFrom("void f() { int a = 0; }");
  auto ms = MatchPattern(*built, g);
  ASSERT_EQ(ms.size(), 1u);
  EXPECT_TRUE(ms[0].IsFullyCorrect());
}

TEST(PatternMatcherTest, ApproximateOnlyMatchMarkedIncorrect) {
  auto built = PatternBuilder("init", "initialize to zero")
                   .Var("x")
                   .Node(PatternNodeType::kAssign, "x = 0", "x = \\d+")
                   .Build();
  ASSERT_TRUE(built.ok());
  pdg::Epdg g = BuildFrom("void f() { int a = 7; }");
  auto ms = MatchPattern(*built, g);
  ASSERT_EQ(ms.size(), 1u);
  EXPECT_EQ(ms[0].incorrect_nodes, (std::set<int>{0}));
}

TEST(PatternMatcherTest, StatsAreAccumulated) {
  pdg::Epdg g = BuildFrom(kFigure2a);
  Pattern p = testutil::OddPositionsPattern();
  MatchStats stats;
  MatchPattern(p, g, {}, &stats);
  EXPECT_GT(stats.steps, 0);
  EXPECT_GT(stats.regex_checks, 0);
  EXPECT_FALSE(stats.truncated);
}

// ---------------------------------------------------------------------------
// Engine equivalence and the indexed-engine additions.

/// Serializes canonical embeddings byte-for-byte (ι, γ, incorrect marks, in
/// discovery order) so equivalence tests can require exact equality.
std::string Describe(const std::vector<Embedding>& ms) {
  std::string out;
  for (const auto& m : ms) {
    out += "m{";
    for (const auto& [u, v] : m.iota) {
      out += std::to_string(u) + "->" + std::to_string(v) + ",";
    }
    out += "|";
    for (const auto& [pv, sv] : m.gamma) out += pv + "=" + sv + ",";
    out += "|";
    for (int u : m.incorrect_nodes) out += std::to_string(u) + ",";
    out += "}\n";
  }
  return out;
}

std::vector<Pattern> AllTestPatterns() {
  return {testutil::OddPositionsPattern(), testutil::CondAccumAddPattern(),
          testutil::AssignPrintPattern()};
}

TEST(MatchEngineTest, EnginesProduceIdenticalCanonicalEmbeddings) {
  for (const char* source : {kFigure2a, kFigure2b}) {
    pdg::Epdg g = BuildFrom(source);
    for (const Pattern& p : AllTestPatterns()) {
      MatchOptions legacy;
      legacy.engine = MatchEngine::kLegacy;
      MatchOptions indexed;
      indexed.engine = MatchEngine::kIndexed;
      EXPECT_EQ(Describe(MatchPattern(p, g, legacy)),
                Describe(MatchPattern(p, g, indexed)))
          << p.id;
    }
  }
}

TEST(MatchEngineTest, SharedIndexOverloadMatchesThrowawayIndex) {
  pdg::Epdg g = BuildFrom(kFigure2a);
  pdg::MatchIndex index(g);
  for (const Pattern& p : AllTestPatterns()) {
    EXPECT_EQ(Describe(MatchPattern(p, g)),
              Describe(MatchPattern(p, g, index)))
        << p.id;
  }
}

TEST(MatchEngineTest, SignaturePruningReportsAndPreservesResults) {
  pdg::Epdg g = BuildFrom(kFigure2a);
  Pattern p = testutil::OddPositionsPattern();
  MatchOptions legacy;
  legacy.engine = MatchEngine::kLegacy;
  MatchStats legacy_stats;
  auto legacy_ms = MatchPattern(p, g, legacy, &legacy_stats);
  MatchStats indexed_stats;
  auto indexed_ms = MatchPattern(p, g, {}, &indexed_stats);
  EXPECT_EQ(Describe(legacy_ms), Describe(indexed_ms));
  // The connected pattern prunes at least one candidate, and every pruned
  // candidate is a step the backtracker never pays for.
  EXPECT_GT(indexed_stats.candidates_pruned, 0);
  EXPECT_LT(indexed_stats.steps, legacy_stats.steps);
}

TEST(MatchEngineTest, BindingIndependentTemplateChecksAreMemoized) {
  // Two variable-free nodes over a graph with repeated matching statements:
  // the same (pattern node, graph node) template check recurs under
  // different partial embeddings and must hit the memo.
  auto built = PatternBuilder("const-pair", "two literal prints")
                   .Node(PatternNodeType::kCall, "System\\.out\\.println")
                   .Node(PatternNodeType::kCall, "System\\.out\\.println")
                   .Build();
  ASSERT_TRUE(built.ok());
  pdg::Epdg g = BuildFrom(
      "void f() { System.out.println(1); System.out.println(2); "
      "System.out.println(3); }");
  MatchStats indexed_stats;
  auto indexed_ms = MatchPattern(*built, g, {}, &indexed_stats);
  MatchOptions legacy;
  legacy.engine = MatchEngine::kLegacy;
  MatchStats legacy_stats;
  auto legacy_ms = MatchPattern(*built, g, legacy, &legacy_stats);
  EXPECT_EQ(Describe(legacy_ms), Describe(indexed_ms));
  EXPECT_GT(indexed_stats.memo_hits, 0);
  EXPECT_LT(indexed_stats.regex_checks, legacy_stats.regex_checks);
}

// ---------------------------------------------------------------------------
// Truncation paths: both limits set MatchStats::truncated and the truncated
// result is still canonical (no two embeddings share an ι).

void ExpectCanonical(const std::vector<Embedding>& ms) {
  std::set<std::string> iotas;
  for (const auto& m : ms) {
    std::string key;
    for (const auto& [u, v] : m.iota) {
      key += std::to_string(u) + "->" + std::to_string(v) + ",";
    }
    EXPECT_TRUE(iotas.insert(key).second)
        << "duplicate iota in canonical result: " << key;
  }
}

class TruncationTest : public ::testing::TestWithParam<MatchEngine> {};

TEST_P(TruncationTest, MaxStepsSetsTruncatedAndStaysCanonical) {
  pdg::Epdg g = BuildFrom(kFigure2a);
  Pattern p = testutil::AssignPrintPattern();
  MatchOptions options;
  options.engine = GetParam();
  options.max_steps = 4;
  MatchStats stats;
  auto ms = MatchPattern(p, g, options, &stats);
  EXPECT_TRUE(stats.truncated);
  ExpectCanonical(ms);
}

TEST_P(TruncationTest, MaxEmbeddingsSetsTruncatedAndStaysCanonical) {
  auto built = PatternBuilder("any", "anything")
                   .Node(PatternNodeType::kUntyped, "")
                   .Build();
  ASSERT_TRUE(built.ok());
  pdg::Epdg g = BuildFrom(kFigure2a);
  MatchOptions options;
  options.engine = GetParam();
  options.max_embeddings = 3;
  MatchStats stats;
  auto ms = MatchPattern(*built, g, options, &stats);
  EXPECT_EQ(ms.size(), 3u);
  EXPECT_TRUE(stats.truncated);
  ExpectCanonical(ms);
}

TEST_P(TruncationTest, UntruncatedRunLeavesFlagClear) {
  pdg::Epdg g = BuildFrom(kFigure2b);
  Pattern p = testutil::OddPositionsPattern();
  MatchOptions options;
  options.engine = GetParam();
  MatchStats stats;
  auto ms = MatchPattern(p, g, options, &stats);
  EXPECT_FALSE(stats.truncated);
  EXPECT_EQ(ms.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(BothEngines, TruncationTest,
                         ::testing::Values(MatchEngine::kIndexed,
                                           MatchEngine::kLegacy),
                         [](const auto& info) {
                           return info.param == MatchEngine::kIndexed
                                      ? "Indexed"
                                      : "Legacy";
                         });

// ---------------------------------------------------------------------------
// Ordering heuristic on/off: the canonical embedding *set* is the same
// either way (order of discovery may differ, the collapsed set may not).

TEST(MatchEngineTest, OrderingHeuristicDoesNotChangeCanonicalSet) {
  for (const char* source : {kFigure2a, kFigure2b}) {
    pdg::Epdg g = BuildFrom(source);
    for (MatchEngine engine : {MatchEngine::kIndexed, MatchEngine::kLegacy}) {
      for (const Pattern& p : AllTestPatterns()) {
        MatchOptions with;
        with.engine = engine;
        with.use_ordering_heuristic = true;
        MatchOptions without = with;
        without.use_ordering_heuristic = false;
        auto set_of = [](std::vector<Embedding> ms) {
          std::set<std::string> out;
          for (auto& m : ms) {
            std::vector<Embedding> one;
            one.push_back(std::move(m));
            out.insert(Describe(one));
          }
          return out;
        };
        EXPECT_EQ(set_of(MatchPattern(p, g, with)),
                  set_of(MatchPattern(p, g, without)))
            << p.id;
      }
    }
  }
}

// Property sweep: every returned embedding satisfies Definition 7 — type
// compatibility, injective ι, all pattern edges present, and r or r̂
// matching under γ.
class EmbeddingValidityTest : public ::testing::TestWithParam<const char*> {};

TEST_P(EmbeddingValidityTest, AllEmbeddingsSatisfyDefinition7) {
  pdg::Epdg g = BuildFrom(GetParam());
  for (const Pattern& p :
       {testutil::OddPositionsPattern(), testutil::CondAccumAddPattern(),
        testutil::AssignPrintPattern()}) {
    for (const Embedding& m : MatchPattern(p, g)) {
      ASSERT_EQ(m.iota.size(), p.nodes.size());
      std::set<graph::NodeId> images;
      for (const auto& [u, v] : m.iota) {
        images.insert(v);
        EXPECT_TRUE(TypeMatches(p.nodes[u].type, g.NodeAt(v).type));
        const PatternNode& node = p.nodes[u];
        if (!node.exact.empty()) {
          bool exact = node.exact.Matches(g.NodeAt(v).content, m.gamma);
          bool approx = !node.approx.empty() &&
                        node.approx.Matches(g.NodeAt(v).content, m.gamma);
          EXPECT_TRUE(exact || approx)
              << p.id << " node " << u << " vs " << g.NodeAt(v).content;
          if (m.incorrect_nodes.count(u) == 0) {
            EXPECT_TRUE(exact);
          }
        }
      }
      EXPECT_EQ(images.size(), m.iota.size()) << "iota not injective";
      for (const auto& edge : p.edges) {
        EXPECT_TRUE(g.HasEdge(m.iota.at(edge.source), m.iota.at(edge.target),
                              edge.type))
            << p.id << " edge " << edge.source << "->" << edge.target;
      }
      std::set<std::string> bound;
      for (const auto& [pv, sv] : m.gamma) {
        EXPECT_TRUE(bound.insert(sv).second) << "gamma not injective";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Submissions, EmbeddingValidityTest,
    ::testing::Values(
        R"(void assignment1(int[] a) {
             int even = 0;
             int odd = 0;
             for (int i = 0; i <= a.length; i++) {
               if (i % 2 == 1) odd += a[i];
               if (i % 2 == 1) even *= a[i];
             }
             System.out.println(odd);
             System.out.println(even);
           })",
        R"(void assignment1(int[] a) {
             int o = 0, e = 1;
             int i = 0;
             while (i < a.length) {
               if (i % 2 == 1) o += a[i];
               if (i % 2 == 0) e *= a[i];
               i++;
             }
             System.out.print(o + ", " + e);
           })",
        R"(void assignment1(int[] a) {
             int x = 0, y = 1;
             for (int i = 0; i < a.length; i++)
               if (i % 2 == 1) x *= a[i];
             for (int i = 0; i < a.length; i++)
               if (i % 2 == 0) y += a[i];
             System.out.print("O: " + x + ", E: " + y);
           })",
        R"(void f(int n) {
             int s = 0;
             for (int i = 0; i < n; i++) if (i % 2 == 1) s += i;
             System.out.println(s);
           })"));

}  // namespace
}  // namespace jfeed::core
