#include "core/expr_pattern.h"

#include <gtest/gtest.h>

namespace jfeed::core {
namespace {

ExprPattern Make(const std::string& tmpl, std::set<std::string> vars) {
  auto r = ExprPattern::Create(tmpl, std::move(vars));
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? std::move(*r) : ExprPattern();
}

TEST(ExprPatternTest, LiteralTemplateSearches) {
  ExprPattern p = Make("x = 0", {"x"});
  EXPECT_TRUE(p.Matches("int i = 0", {{"x", "i"}}));
  EXPECT_TRUE(p.Matches("i = 0", {{"x", "i"}}));
  EXPECT_FALSE(p.Matches("int i = 1", {{"x", "i"}}));
  EXPECT_FALSE(p.Matches("int j = 0", {{"x", "i"}}));
}

TEST(ExprPatternTest, WholeWordVariableBoundaries) {
  ExprPattern p = Make("x = 0", {"x"});
  // `i` must not match inside `int` or inside `mini`.
  EXPECT_FALSE(p.Matches("mini = 1", {{"x", "i"}}));
  EXPECT_FALSE(p.Matches("int = 0", {{"x", "i"}}));  // Hypothetical content.
  EXPECT_TRUE(p.Matches("int i = 0", {{"x", "i"}}));
}

TEST(ExprPatternTest, UnboundVariableFailsMatch) {
  ExprPattern p = Make("x = 0", {"x"});
  EXPECT_FALSE(p.Matches("int i = 0", {}));
  EXPECT_FALSE(p.Matches("int i = 0", {{"y", "i"}}));
}

TEST(ExprPatternTest, EmptyPatternNeverMatches) {
  ExprPattern p;
  EXPECT_TRUE(p.empty());
  EXPECT_FALSE(p.Matches("anything", {}));
}

TEST(ExprPatternTest, RegexAlternation) {
  ExprPattern p = Make("x\\+\\+|x \\+= 1|x = x \\+ 1", {"x"});
  EXPECT_TRUE(p.Matches("i++", {{"x", "i"}}));
  EXPECT_TRUE(p.Matches("i += 1", {{"x", "i"}}));
  EXPECT_TRUE(p.Matches("i = i + 1", {{"x", "i"}}));
  EXPECT_FALSE(p.Matches("i += 2", {{"x", "i"}}));
  EXPECT_FALSE(p.Matches("j++", {{"x", "i"}}));
}

TEST(ExprPatternTest, ArrayAccessTemplate) {
  ExprPattern p = Make("s\\[x\\]", {"x", "s"});
  EXPECT_TRUE(p.Matches("odd += a[i]", {{"x", "i"}, {"s", "a"}}));
  EXPECT_FALSE(p.Matches("odd += a[j]", {{"x", "i"}, {"s", "a"}}));
  EXPECT_FALSE(p.Matches("odd += b[i]", {{"x", "i"}, {"s", "a"}}));
}

TEST(ExprPatternTest, FieldAccessTemplate) {
  ExprPattern p = Make("x < s\\.length", {"x", "s"});
  EXPECT_TRUE(p.Matches("i < a.length", {{"x", "i"}, {"s", "a"}}));
  EXPECT_FALSE(p.Matches("i <= a.length", {{"x", "i"}, {"s", "a"}}));
}

TEST(ExprPatternTest, ApproximateBoundCheck) {
  // The paper's u3 approximate expression: catches the common `<=` error.
  ExprPattern approx = Make("x <= s\\.length", {"x", "s"});
  EXPECT_TRUE(approx.Matches("i <= a.length", {{"x", "i"}, {"s", "a"}}));
}

TEST(ExprPatternTest, SubstitutedNamesAreEscaped) {
  // Variable values are regex-escaped; a submission variable named `a$b`
  // (legal in Java) must be treated literally.
  ExprPattern p = Make("x = 0", {"x"});
  EXPECT_TRUE(p.Matches("a$b = 0", {{"x", "a$b"}}));
  EXPECT_FALSE(p.Matches("axb = 0", {{"x", "a$b"}}));
}

TEST(ExprPatternTest, VariablesReported) {
  ExprPattern p = Make("c \\+= s\\[x\\]", {"x", "s", "c", "unused"});
  EXPECT_EQ(p.variables(), (std::set<std::string>{"c", "s", "x"}));
}

TEST(ExprPatternTest, InvalidRegexRejected) {
  auto r = ExprPattern::Create("x ([", {"x"});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ExprPatternTest, EscapedIdentifierIsNotAVariable) {
  // `\bx\b` — the escaped b must not be eaten as a variable named b.
  ExprPattern p = Make("\\bx\\b = 0", {"x", "b"});
  EXPECT_TRUE(p.Matches("i = 0", {{"x", "i"}}));
}

TEST(EnumerateInjectionsTest, EmptySourceYieldsOneEmptyBinding) {
  auto r = EnumerateInjections({}, {"a", "b"});
  ASSERT_EQ(r.size(), 1u);
  EXPECT_TRUE(r[0].empty());
}

TEST(EnumerateInjectionsTest, TooFewTargetsYieldsNothing) {
  EXPECT_TRUE(EnumerateInjections({"x", "y"}, {"a"}).empty());
}

TEST(EnumerateInjectionsTest, BijectionCount) {
  // 2 sources into 2 targets: 2 bijections.
  auto r = EnumerateInjections({"x", "y"}, {"a", "b"});
  EXPECT_EQ(r.size(), 2u);
}

TEST(EnumerateInjectionsTest, InjectionCount) {
  // 2 sources into 3 targets: 3 * 2 = 6 injections.
  auto r = EnumerateInjections({"x", "y"}, {"a", "b", "c"});
  EXPECT_EQ(r.size(), 6u);
  // All must be injective.
  for (const auto& binding : r) {
    EXPECT_NE(binding.at("x"), binding.at("y"));
  }
}

TEST(EnumerateInjectionsTest, PaperCombinationExample) {
  // Sec. IV: matching u3 of p_o over v4 tries {s→i, x→a} and {s→a, x→i}.
  auto r = EnumerateInjections({"s", "x"}, {"a", "i"});
  ASSERT_EQ(r.size(), 2u);
  ExprPattern bound = [] {
    auto p = ExprPattern::Create("x <= s\\.length", {"x", "s"});
    return std::move(*p);
  }();
  int matches = 0;
  for (const auto& gamma : r) {
    if (bound.Matches("i <= a.length", gamma)) ++matches;
  }
  // Only {s→a, x→i} produces a match.
  EXPECT_EQ(matches, 1);
}

}  // namespace
}  // namespace jfeed::core
