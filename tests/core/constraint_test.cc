#include "core/constraint.h"

#include <gtest/gtest.h>

#include "javalang/parser.h"
#include "pdg/epdg.h"
#include "tests/core/paper_patterns.h"

namespace jfeed::core {
namespace {

constexpr const char* kFigure2a = R"(
void assignment1(int[] a) {
  int even = 0;
  int odd = 0;
  for (int i = 0; i <= a.length; i++) {
    if (i % 2 == 1)
      odd += a[i];
    if (i % 2 == 1)
      even *= a[i];
  }
  System.out.println(odd);
  System.out.println(even);
})";

class ConstraintTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto unit = java::Parse(kFigure2a);
    ASSERT_TRUE(unit.ok());
    unit_ = std::move(*unit);  // The EPDG borrows the unit's ASTs.
    auto g = pdg::BuildEpdg(unit_.methods[0]);
    ASSERT_TRUE(g.ok());
    epdg_ = std::move(*g);
    odd_ = testutil::OddPositionsPattern();
    accum_ = testutil::CondAccumAddPattern();
    print_ = testutil::AssignPrintPattern();
    sets_[odd_.id] = MatchPattern(odd_, epdg_);
    sets_[accum_.id] = MatchPattern(accum_, epdg_);
    sets_[print_.id] = MatchPattern(print_, epdg_);
  }

  java::CompilationUnit unit_;  // Must outlive epdg_ (declared first).
  pdg::Epdg epdg_;
  Pattern odd_, accum_, print_;
  EmbeddingSets sets_;
};

TEST_F(ConstraintTest, EqualityConstraintFromThePaper) {
  // (p_o, u5, p_a, u3): the accessed odd position is the cumulatively
  // added expression — both map to "odd += a[i]".
  Constraint c = MakeEqualityConstraint("eq-odd-add", odd_.id, 5, accum_.id,
                                        3);
  EXPECT_EQ(CheckConstraint(c, epdg_, sets_, {}),
            ConstraintOutcome::kFulfilled);
}

TEST_F(ConstraintTest, EqualityConstraintViolatedWhenNodesDiffer) {
  // p_o.u1 (int i = 0) can never equal p_a.u3 (odd += a[i]).
  Constraint c = MakeEqualityConstraint("eq-bad", odd_.id, 1, accum_.id, 3);
  EXPECT_EQ(CheckConstraint(c, epdg_, sets_, {}),
            ConstraintOutcome::kViolated);
}

TEST_F(ConstraintTest, EdgeConstraintFromThePaper) {
  // (p_a, u3, p_p, u1, Data): the accumulated variable flows into the print.
  Constraint c = MakeEdgeConstraint("edge-add-print", accum_.id, 3,
                                    print_.id, 1, pdg::EdgeType::kData);
  EXPECT_EQ(CheckConstraint(c, epdg_, sets_, {}),
            ConstraintOutcome::kFulfilled);
}

TEST_F(ConstraintTest, EdgeConstraintWrongTypeViolated) {
  // There is no Ctrl edge from the accumulator update to the print.
  Constraint c = MakeEdgeConstraint("edge-ctrl", accum_.id, 3, print_.id, 1,
                                    pdg::EdgeType::kCtrl);
  EXPECT_EQ(CheckConstraint(c, epdg_, sets_, {}),
            ConstraintOutcome::kViolated);
}

TEST_F(ConstraintTest, ContainmentConstraintFromThePaper) {
  // (p_o, u5, "c += s[x]", {p_a}): the odd-access node is exactly the
  // accumulator update, with c from the supporting pattern.
  std::set<std::string> vars = {"x", "s", "c"};
  auto c = MakeContainmentConstraint("contain-add", odd_.id, 5,
                                     "c \\+= s\\[x\\]", vars, {accum_.id});
  ASSERT_TRUE(c.ok()) << c.status().ToString();
  EXPECT_EQ(CheckConstraint(*c, epdg_, sets_, {}),
            ConstraintOutcome::kFulfilled);
}

TEST_F(ConstraintTest, ContainmentConstraintViolated) {
  std::set<std::string> vars = {"x", "s", "c"};
  auto c = MakeContainmentConstraint("contain-mul", odd_.id, 5,
                                     "c \\*= s\\[x\\]", vars, {accum_.id});
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(CheckConstraint(*c, epdg_, sets_, {}),
            ConstraintOutcome::kViolated);
}

TEST_F(ConstraintTest, NotExpectedPatternPropagates) {
  Constraint c = MakeEqualityConstraint("eq", odd_.id, 5, accum_.id, 3);
  EXPECT_EQ(CheckConstraint(c, epdg_, sets_, {odd_.id}),
            ConstraintOutcome::kNotApplicable);
  EXPECT_EQ(CheckConstraint(c, epdg_, sets_, {accum_.id}),
            ConstraintOutcome::kNotApplicable);
}

TEST_F(ConstraintTest, MissingEmbeddingsAreNotApplicable) {
  EmbeddingSets empty_sets;
  Constraint c = MakeEqualityConstraint("eq", odd_.id, 5, accum_.id, 3);
  EXPECT_EQ(CheckConstraint(c, epdg_, empty_sets, {}),
            ConstraintOutcome::kNotApplicable);
}

TEST_F(ConstraintTest, WitnessCarriesMergedBindings) {
  Constraint c = MakeEdgeConstraint("edge-add-print", accum_.id, 3,
                                    print_.id, 1, pdg::EdgeType::kData,
                                    "{c} flows into the printed value {y}");
  VarBinding witness = ConstraintWitness(c, epdg_, sets_);
  EXPECT_EQ(witness.at("c"), "odd");
  EXPECT_EQ(witness.at("y"), "odd");
  EXPECT_EQ(InstantiateFeedback(c.feedback_ok, witness),
            "odd flows into the printed value odd");
}

TEST_F(ConstraintTest, ReferencedPatterns) {
  Constraint eq = MakeEqualityConstraint("eq", "a", 0, "b", 0);
  EXPECT_EQ(eq.ReferencedPatterns(), (std::vector<std::string>{"a", "b"}));
  auto contain = MakeContainmentConstraint("c", "main", 0, "x", {"x"},
                                           {"s1", "s2"});
  ASSERT_TRUE(contain.ok());
  EXPECT_EQ(contain->ReferencedPatterns(),
            (std::vector<std::string>{"main", "s1", "s2"}));
}

}  // namespace
}  // namespace jfeed::core
