#include "core/submission_matcher.h"

#include <gtest/gtest.h>

#include "javalang/parser.h"
#include "tests/core/paper_patterns.h"

namespace jfeed::core {
namespace {

constexpr const char* kFigure2a = R"(
void assignment1(int[] a) {
  int even = 0;
  int odd = 0;
  for (int i = 0; i <= a.length; i++) {
    if (i % 2 == 1)
      odd += a[i];
    if (i % 2 == 1)
      even *= a[i];
  }
  System.out.println(odd);
  System.out.println(even);
})";

constexpr const char* kFigure2b = R"(
void assignment1(int[] a) {
  int o = 0, e = 1;
  int i = 0;
  while (i < a.length) {
    if (i % 2 == 1)
      o += a[i];
    if (i % 2 == 0)
      e *= a[i];
    i++;
  }
  System.out.print(o + ", " + e);
})";

/// A reduced Assignment-1 spec built from the figure patterns: the odd
/// access, the conditional accumulation, two prints, plus the paper's
/// equality and edge constraints.
class SubmissionMatcherTest : public ::testing::Test {
 protected:
  SubmissionMatcherTest()
      : odd_(testutil::OddPositionsPattern()),
        accum_(testutil::CondAccumAddPattern()),
        print_(testutil::AssignPrintPattern()) {
    MethodSpec method;
    method.expected_name = "assignment1";
    method.patterns.push_back({&odd_, 1});
    method.patterns.push_back({&accum_, 1});
    method.patterns.push_back({&print_, 2});
    method.constraints.push_back(MakeEqualityConstraint(
        "odd-access-is-accumulated", odd_.id, 5, accum_.id, 3,
        "The odd positions you access are the ones you accumulate",
        "You should accumulate exactly the odd positions you access"));
    method.constraints.push_back(MakeEdgeConstraint(
        "sum-is-printed", accum_.id, 3, print_.id, 1, pdg::EdgeType::kData,
        "The accumulated sum {c} is printed",
        "The accumulated sum should be printed to console"));
    spec_.id = "assignment1-mini";
    spec_.title = "Assignment 1 (figures only)";
    spec_.methods.push_back(std::move(method));
  }

  const FeedbackComment* FindComment(const SubmissionFeedback& fb,
                                     const std::string& source_id) {
    for (const auto& c : fb.comments) {
      if (c.source_id == source_id) return &c;
    }
    return nullptr;
  }

  Pattern odd_, accum_, print_;
  AssignmentSpec spec_;
};

TEST_F(SubmissionMatcherTest, SpecCounts) {
  EXPECT_EQ(spec_.PatternCount(), 3u);
  EXPECT_EQ(spec_.ConstraintCount(), 2u);
}

TEST_F(SubmissionMatcherTest, CorrectSubmissionGetsAllFeedback) {
  auto fb = MatchSubmissionSource(spec_, kFigure2b);
  ASSERT_TRUE(fb.ok()) << fb.status().ToString();
  ASSERT_TRUE(fb->matched);
  // 3 pattern comments + 2 constraint comments.
  EXPECT_EQ(fb->comments.size(), 5u);
  const auto* odd_comment = FindComment(*fb, "odd-positions");
  ASSERT_NE(odd_comment, nullptr);
  EXPECT_EQ(odd_comment->kind, FeedbackKind::kCorrect);
  EXPECT_EQ(odd_comment->message,
            "You are correctly accessing odd positions sequentially in an "
            "array");
  const auto* eq = FindComment(*fb, "odd-access-is-accumulated");
  ASSERT_NE(eq, nullptr);
  EXPECT_EQ(eq->kind, FeedbackKind::kCorrect);
  const auto* edge = FindComment(*fb, "sum-is-printed");
  ASSERT_NE(edge, nullptr);
  EXPECT_EQ(edge->kind, FeedbackKind::kCorrect);
}

TEST_F(SubmissionMatcherTest, IncorrectSubmissionGetsPersonalizedDetails) {
  auto fb = MatchSubmissionSource(spec_, kFigure2a);
  ASSERT_TRUE(fb.ok()) << fb.status().ToString();
  ASSERT_TRUE(fb->matched);
  const auto* odd_comment = FindComment(*fb, "odd-positions");
  ASSERT_NE(odd_comment, nullptr);
  // Fig. 2a has *two* embeddings of the access pattern (both ifs use
  // i % 2 == 1), so the occurrence count differs from t̄ = 1.
  EXPECT_EQ(odd_comment->kind, FeedbackKind::kNotExpected);
}

TEST_F(SubmissionMatcherTest, BoundErrorSurfacesInNodeFeedback) {
  // Like Fig. 2a but with only one odd-guarded update, so the access
  // pattern embeds exactly once — with the <= bound error.
  const char* kSource = R"(
      void assignment1(int[] a) {
        int odd = 0;
        for (int i = 0; i <= a.length; i++) {
          if (i % 2 == 1)
            odd += a[i];
        }
        System.out.println(odd);
        System.out.println(odd);
      })";
  auto fb = MatchSubmissionSource(spec_, kSource);
  ASSERT_TRUE(fb.ok());
  const auto* odd_comment = FindComment(*fb, "odd-positions");
  ASSERT_NE(odd_comment, nullptr);
  EXPECT_EQ(odd_comment->kind, FeedbackKind::kIncorrect);
  bool found_bound_detail = false;
  for (const auto& d : odd_comment->details) {
    if (d == "i is out of bounds going beyond a.length - 1") {
      found_bound_detail = true;
    }
  }
  EXPECT_TRUE(found_bound_detail);
}

TEST_F(SubmissionMatcherTest, MissingPatternYieldsNotExpected) {
  const char* kSource = R"(
      void assignment1(int[] a) {
        System.out.println(0);
        System.out.println(0);
      })";
  auto fb = MatchSubmissionSource(spec_, kSource);
  ASSERT_TRUE(fb.ok());
  const auto* odd_comment = FindComment(*fb, "odd-positions");
  ASSERT_NE(odd_comment, nullptr);
  EXPECT_EQ(odd_comment->kind, FeedbackKind::kNotExpected);
  EXPECT_NE(odd_comment->message.find("consider using a loop"),
            std::string::npos);
  // Constraints referencing the missing pattern are NotExpected too.
  const auto* eq = FindComment(*fb, "odd-access-is-accumulated");
  ASSERT_NE(eq, nullptr);
  EXPECT_EQ(eq->kind, FeedbackKind::kNotExpected);
}

TEST_F(SubmissionMatcherTest, ScoreUsesLambda) {
  auto good = MatchSubmissionSource(spec_, kFigure2b);
  auto bad = MatchSubmissionSource(spec_, kFigure2a);
  ASSERT_TRUE(good.ok());
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(good->score, 5.0);  // 5 Correct comments.
  EXPECT_LT(bad->score, good->score);
  EXPECT_TRUE(good->AllCorrect());
  EXPECT_FALSE(bad->AllCorrect());
}

TEST_F(SubmissionMatcherTest, FewerMethodsThanExpectedIsUnmatched) {
  AssignmentSpec two = spec_;
  MethodSpec helper;
  helper.expected_name = "helper";
  two.methods.push_back(helper);
  auto fb = MatchSubmissionSource(two, kFigure2b);
  ASSERT_TRUE(fb.ok());
  EXPECT_FALSE(fb->matched);
  EXPECT_FALSE(fb->AllCorrect());
  EXPECT_TRUE(fb->comments.empty());
}

TEST_F(SubmissionMatcherTest, MethodCombinationsPickBestAssignment) {
  // The submission names its methods unexpectedly; Algorithm 2 must still
  // find the assignment with the best Λ.
  const char* kTwoMethods = R"(
      void blah(int[] a) {
        int unrelated = 3;
        System.out.println(unrelated);
      }
      void mine(int[] a) {
        int o = 0, e = 1;
        int i = 0;
        while (i < a.length) {
          if (i % 2 == 1)
            o += a[i];
          if (i % 2 == 0)
            e *= a[i];
          i++;
        }
        System.out.print(o + ", " + e);
      })";
  auto fb = MatchSubmissionSource(spec_, kTwoMethods);
  ASSERT_TRUE(fb.ok());
  ASSERT_TRUE(fb->matched);
  EXPECT_EQ(fb->method_assignment.at("assignment1"), "mine");
  EXPECT_TRUE(fb->AllCorrect());
}

TEST_F(SubmissionMatcherTest, BadPatternDetected) {
  // t̄ = 0: the index must not be updated twice in the loop. Build a tiny
  // bad-pattern: two increments of the same variable under one condition.
  auto double_inc =
      PatternBuilder("double-increment", "Index updated twice")
          .Var("x")
          .Node(PatternNodeType::kCond, "")
          .Node(PatternNodeType::kAssign, "x\\+\\+|x \\+= 1")
          .Node(PatternNodeType::kAssign, "x\\+\\+|x \\+= 1")
          .CtrlEdge(0, 1)
          .CtrlEdge(0, 2)
          .Present("Good: the loop index is updated exactly once")
          .Missing("You are updating the value of the index more than once "
                   "in a sentinel-controlled loop")
          .Build();
  ASSERT_TRUE(double_inc.ok());
  AssignmentSpec spec;
  spec.id = "bad-pattern-spec";
  MethodSpec method;
  method.expected_name = "f";
  method.patterns.push_back({&*double_inc, 0});
  spec.methods.push_back(std::move(method));

  auto clean = MatchSubmissionSource(
      spec, "void f(int n) { int i = 0; while (i < n) { i++; } }");
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean->comments[0].kind, FeedbackKind::kCorrect);

  auto dirty = MatchSubmissionSource(
      spec, "void f(int n) { int i = 0; while (i < n) { i++; i++; } }");
  ASSERT_TRUE(dirty.ok());
  EXPECT_EQ(dirty->comments[0].kind, FeedbackKind::kNotExpected);
  EXPECT_NE(dirty->comments[0].message.find("more than once"),
            std::string::npos);
}

TEST_F(SubmissionMatcherTest, ParseErrorPropagates) {
  auto fb = MatchSubmissionSource(spec_, "void f( {");
  EXPECT_FALSE(fb.ok());
  EXPECT_EQ(fb.status().code(), StatusCode::kParseError);
}

TEST_F(SubmissionMatcherTest, RenderFeedbackIsReadable) {
  auto fb = MatchSubmissionSource(spec_, kFigure2b);
  ASSERT_TRUE(fb.ok());
  std::string text = RenderFeedback(fb->comments);
  EXPECT_NE(text.find("[Correct]"), std::string::npos);
  EXPECT_NE(text.find("odd positions"), std::string::npos);
}

std::string DescribeFeedback(const SubmissionFeedback& f) {
  std::string out = f.matched ? "matched " : "unmatched ";
  out += std::to_string(f.score) + " steps=" +
         std::to_string(f.match_stats.steps) + " regex=" +
         std::to_string(f.match_stats.regex_checks) + "\n";
  for (const auto& [q, h] : f.method_assignment) out += q + "=" + h + "\n";
  for (const auto& c : f.comments) {
    out += c.source_id + "|" + c.method + "|" +
           std::to_string(static_cast<int>(c.kind)) + "|" + c.message + "\n";
    for (const auto& d : c.details) out += "  " + d + "\n";
  }
  return out;
}

TEST_F(SubmissionMatcherTest, MatchGraphsEquivalentToMatchSubmission) {
  // The incremental entry point over externally built per-method graphs
  // must reproduce MatchSubmission byte for byte, including match_stats —
  // the property that makes warm partial-hit grades indistinguishable from
  // cold ones.
  const char* sources[] = {kFigure2a, kFigure2b};
  for (const char* source : sources) {
    auto unit = java::Parse(source);
    ASSERT_TRUE(unit.ok());
    auto whole = MatchSubmission(spec_, *unit);
    ASSERT_TRUE(whole.ok());

    std::vector<pdg::Epdg> graphs;
    graphs.reserve(unit->methods.size());
    for (const auto& method : unit->methods) {
      auto graph = pdg::BuildEpdg(method);
      ASSERT_TRUE(graph.ok());
      graphs.push_back(std::move(*graph));
    }
    std::vector<MethodCellStore> stores(graphs.size());
    std::vector<MethodGraphRef> refs;
    for (size_t i = 0; i < graphs.size(); ++i) {
      refs.push_back({&graphs[i], &stores[i]});
    }
    auto cold = MatchSubmissionGraphs(spec_, refs);
    ASSERT_TRUE(cold.ok());
    EXPECT_EQ(DescribeFeedback(*whole), DescribeFeedback(*cold));

    // Second pass over the now-populated cell stores: every demanded cell
    // is served, and the result — including the per-cell stats summed into
    // match_stats — is byte-identical to the computing run.
    size_t cells = 0;
    for (const auto& store : stores) cells += store.size();
    EXPECT_GT(cells, 0u);
    auto warm = MatchSubmissionGraphs(spec_, refs);
    ASSERT_TRUE(warm.ok());
    EXPECT_EQ(DescribeFeedback(*cold), DescribeFeedback(*warm));
  }
}

TEST_F(SubmissionMatcherTest, MatchGraphsWithoutStoresAlsoMatches) {
  // Null cell stores are allowed: every cell recomputes per call.
  auto unit = java::Parse(kFigure2b);
  ASSERT_TRUE(unit.ok());
  auto graph = pdg::BuildEpdg(unit->methods[0]);
  ASSERT_TRUE(graph.ok());
  std::vector<MethodGraphRef> refs = {{&*graph, nullptr}};
  auto fb = MatchSubmissionGraphs(spec_, refs);
  ASSERT_TRUE(fb.ok());
  auto whole = MatchSubmission(spec_, *unit);
  ASSERT_TRUE(whole.ok());
  EXPECT_EQ(DescribeFeedback(*whole), DescribeFeedback(*fb));
}

TEST_F(SubmissionMatcherTest, CellStoreInsertKeepsFirstWriter) {
  MethodCellStore store;
  MethodCellValue first;
  first.score = 1.0;
  store.Insert(0, first);
  MethodCellValue second;
  second.score = 2.0;
  store.Insert(0, second);
  MethodCellValue out;
  ASSERT_TRUE(store.Find(0, &out));
  EXPECT_EQ(out.score, 1.0);
  EXPECT_FALSE(store.Find(1, &out));
  EXPECT_EQ(store.size(), 1u);
}

}  // namespace
}  // namespace jfeed::core
