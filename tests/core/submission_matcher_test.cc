#include "core/submission_matcher.h"

#include <gtest/gtest.h>

#include "javalang/parser.h"
#include "tests/core/paper_patterns.h"

namespace jfeed::core {
namespace {

constexpr const char* kFigure2a = R"(
void assignment1(int[] a) {
  int even = 0;
  int odd = 0;
  for (int i = 0; i <= a.length; i++) {
    if (i % 2 == 1)
      odd += a[i];
    if (i % 2 == 1)
      even *= a[i];
  }
  System.out.println(odd);
  System.out.println(even);
})";

constexpr const char* kFigure2b = R"(
void assignment1(int[] a) {
  int o = 0, e = 1;
  int i = 0;
  while (i < a.length) {
    if (i % 2 == 1)
      o += a[i];
    if (i % 2 == 0)
      e *= a[i];
    i++;
  }
  System.out.print(o + ", " + e);
})";

/// A reduced Assignment-1 spec built from the figure patterns: the odd
/// access, the conditional accumulation, two prints, plus the paper's
/// equality and edge constraints.
class SubmissionMatcherTest : public ::testing::Test {
 protected:
  SubmissionMatcherTest()
      : odd_(testutil::OddPositionsPattern()),
        accum_(testutil::CondAccumAddPattern()),
        print_(testutil::AssignPrintPattern()) {
    MethodSpec method;
    method.expected_name = "assignment1";
    method.patterns.push_back({&odd_, 1});
    method.patterns.push_back({&accum_, 1});
    method.patterns.push_back({&print_, 2});
    method.constraints.push_back(MakeEqualityConstraint(
        "odd-access-is-accumulated", odd_.id, 5, accum_.id, 3,
        "The odd positions you access are the ones you accumulate",
        "You should accumulate exactly the odd positions you access"));
    method.constraints.push_back(MakeEdgeConstraint(
        "sum-is-printed", accum_.id, 3, print_.id, 1, pdg::EdgeType::kData,
        "The accumulated sum {c} is printed",
        "The accumulated sum should be printed to console"));
    spec_.id = "assignment1-mini";
    spec_.title = "Assignment 1 (figures only)";
    spec_.methods.push_back(std::move(method));
  }

  const FeedbackComment* FindComment(const SubmissionFeedback& fb,
                                     const std::string& source_id) {
    for (const auto& c : fb.comments) {
      if (c.source_id == source_id) return &c;
    }
    return nullptr;
  }

  Pattern odd_, accum_, print_;
  AssignmentSpec spec_;
};

TEST_F(SubmissionMatcherTest, SpecCounts) {
  EXPECT_EQ(spec_.PatternCount(), 3u);
  EXPECT_EQ(spec_.ConstraintCount(), 2u);
}

TEST_F(SubmissionMatcherTest, CorrectSubmissionGetsAllFeedback) {
  auto fb = MatchSubmissionSource(spec_, kFigure2b);
  ASSERT_TRUE(fb.ok()) << fb.status().ToString();
  ASSERT_TRUE(fb->matched);
  // 3 pattern comments + 2 constraint comments.
  EXPECT_EQ(fb->comments.size(), 5u);
  const auto* odd_comment = FindComment(*fb, "odd-positions");
  ASSERT_NE(odd_comment, nullptr);
  EXPECT_EQ(odd_comment->kind, FeedbackKind::kCorrect);
  EXPECT_EQ(odd_comment->message,
            "You are correctly accessing odd positions sequentially in an "
            "array");
  const auto* eq = FindComment(*fb, "odd-access-is-accumulated");
  ASSERT_NE(eq, nullptr);
  EXPECT_EQ(eq->kind, FeedbackKind::kCorrect);
  const auto* edge = FindComment(*fb, "sum-is-printed");
  ASSERT_NE(edge, nullptr);
  EXPECT_EQ(edge->kind, FeedbackKind::kCorrect);
}

TEST_F(SubmissionMatcherTest, IncorrectSubmissionGetsPersonalizedDetails) {
  auto fb = MatchSubmissionSource(spec_, kFigure2a);
  ASSERT_TRUE(fb.ok()) << fb.status().ToString();
  ASSERT_TRUE(fb->matched);
  const auto* odd_comment = FindComment(*fb, "odd-positions");
  ASSERT_NE(odd_comment, nullptr);
  // Fig. 2a has *two* embeddings of the access pattern (both ifs use
  // i % 2 == 1), so the occurrence count differs from t̄ = 1.
  EXPECT_EQ(odd_comment->kind, FeedbackKind::kNotExpected);
}

TEST_F(SubmissionMatcherTest, BoundErrorSurfacesInNodeFeedback) {
  // Like Fig. 2a but with only one odd-guarded update, so the access
  // pattern embeds exactly once — with the <= bound error.
  const char* kSource = R"(
      void assignment1(int[] a) {
        int odd = 0;
        for (int i = 0; i <= a.length; i++) {
          if (i % 2 == 1)
            odd += a[i];
        }
        System.out.println(odd);
        System.out.println(odd);
      })";
  auto fb = MatchSubmissionSource(spec_, kSource);
  ASSERT_TRUE(fb.ok());
  const auto* odd_comment = FindComment(*fb, "odd-positions");
  ASSERT_NE(odd_comment, nullptr);
  EXPECT_EQ(odd_comment->kind, FeedbackKind::kIncorrect);
  bool found_bound_detail = false;
  for (const auto& d : odd_comment->details) {
    if (d == "i is out of bounds going beyond a.length - 1") {
      found_bound_detail = true;
    }
  }
  EXPECT_TRUE(found_bound_detail);
}

TEST_F(SubmissionMatcherTest, MissingPatternYieldsNotExpected) {
  const char* kSource = R"(
      void assignment1(int[] a) {
        System.out.println(0);
        System.out.println(0);
      })";
  auto fb = MatchSubmissionSource(spec_, kSource);
  ASSERT_TRUE(fb.ok());
  const auto* odd_comment = FindComment(*fb, "odd-positions");
  ASSERT_NE(odd_comment, nullptr);
  EXPECT_EQ(odd_comment->kind, FeedbackKind::kNotExpected);
  EXPECT_NE(odd_comment->message.find("consider using a loop"),
            std::string::npos);
  // Constraints referencing the missing pattern are NotExpected too.
  const auto* eq = FindComment(*fb, "odd-access-is-accumulated");
  ASSERT_NE(eq, nullptr);
  EXPECT_EQ(eq->kind, FeedbackKind::kNotExpected);
}

TEST_F(SubmissionMatcherTest, ScoreUsesLambda) {
  auto good = MatchSubmissionSource(spec_, kFigure2b);
  auto bad = MatchSubmissionSource(spec_, kFigure2a);
  ASSERT_TRUE(good.ok());
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(good->score, 5.0);  // 5 Correct comments.
  EXPECT_LT(bad->score, good->score);
  EXPECT_TRUE(good->AllCorrect());
  EXPECT_FALSE(bad->AllCorrect());
}

TEST_F(SubmissionMatcherTest, FewerMethodsThanExpectedIsUnmatched) {
  AssignmentSpec two = spec_;
  MethodSpec helper;
  helper.expected_name = "helper";
  two.methods.push_back(helper);
  auto fb = MatchSubmissionSource(two, kFigure2b);
  ASSERT_TRUE(fb.ok());
  EXPECT_FALSE(fb->matched);
  EXPECT_FALSE(fb->AllCorrect());
  EXPECT_TRUE(fb->comments.empty());
}

TEST_F(SubmissionMatcherTest, MethodCombinationsPickBestAssignment) {
  // The submission names its methods unexpectedly; Algorithm 2 must still
  // find the assignment with the best Λ.
  const char* kTwoMethods = R"(
      void blah(int[] a) {
        int unrelated = 3;
        System.out.println(unrelated);
      }
      void mine(int[] a) {
        int o = 0, e = 1;
        int i = 0;
        while (i < a.length) {
          if (i % 2 == 1)
            o += a[i];
          if (i % 2 == 0)
            e *= a[i];
          i++;
        }
        System.out.print(o + ", " + e);
      })";
  auto fb = MatchSubmissionSource(spec_, kTwoMethods);
  ASSERT_TRUE(fb.ok());
  ASSERT_TRUE(fb->matched);
  EXPECT_EQ(fb->method_assignment.at("assignment1"), "mine");
  EXPECT_TRUE(fb->AllCorrect());
}

TEST_F(SubmissionMatcherTest, BadPatternDetected) {
  // t̄ = 0: the index must not be updated twice in the loop. Build a tiny
  // bad-pattern: two increments of the same variable under one condition.
  auto double_inc =
      PatternBuilder("double-increment", "Index updated twice")
          .Var("x")
          .Node(PatternNodeType::kCond, "")
          .Node(PatternNodeType::kAssign, "x\\+\\+|x \\+= 1")
          .Node(PatternNodeType::kAssign, "x\\+\\+|x \\+= 1")
          .CtrlEdge(0, 1)
          .CtrlEdge(0, 2)
          .Present("Good: the loop index is updated exactly once")
          .Missing("You are updating the value of the index more than once "
                   "in a sentinel-controlled loop")
          .Build();
  ASSERT_TRUE(double_inc.ok());
  AssignmentSpec spec;
  spec.id = "bad-pattern-spec";
  MethodSpec method;
  method.expected_name = "f";
  method.patterns.push_back({&*double_inc, 0});
  spec.methods.push_back(std::move(method));

  auto clean = MatchSubmissionSource(
      spec, "void f(int n) { int i = 0; while (i < n) { i++; } }");
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean->comments[0].kind, FeedbackKind::kCorrect);

  auto dirty = MatchSubmissionSource(
      spec, "void f(int n) { int i = 0; while (i < n) { i++; i++; } }");
  ASSERT_TRUE(dirty.ok());
  EXPECT_EQ(dirty->comments[0].kind, FeedbackKind::kNotExpected);
  EXPECT_NE(dirty->comments[0].message.find("more than once"),
            std::string::npos);
}

TEST_F(SubmissionMatcherTest, ParseErrorPropagates) {
  auto fb = MatchSubmissionSource(spec_, "void f( {");
  EXPECT_FALSE(fb.ok());
  EXPECT_EQ(fb.status().code(), StatusCode::kParseError);
}

TEST_F(SubmissionMatcherTest, RenderFeedbackIsReadable) {
  auto fb = MatchSubmissionSource(spec_, kFigure2b);
  ASSERT_TRUE(fb.ok());
  std::string text = RenderFeedback(fb->comments);
  EXPECT_NE(text.find("[Correct]"), std::string::npos);
  EXPECT_NE(text.find("odd positions"), std::string::npos);
}

}  // namespace
}  // namespace jfeed::core
