// The three worked-example patterns of the paper (Figures 4, 5 and 6),
// shared by the core test suites. The production knowledge base (src/kb)
// contains richer versions; these stay close to the figures so the tests
// document the paper faithfully.

#ifndef JFEED_TESTS_CORE_PAPER_PATTERNS_H_
#define JFEED_TESTS_CORE_PAPER_PATTERNS_H_

#include "core/pattern.h"

namespace jfeed::core::testutil {

/// Fig. 4 — p_o: accessing odd positions sequentially in an array.
/// Variables: x (index), s (array). Nodes:
///   u0 Untyped  r: s                       (the array source)
///   u1 Assign   r: x = 0     r̂: x = \d+
///   u2 Assign   r: x++ | x += 1 | x = x + 1
///   u3 Cond     r: x < s.length   r̂: x <= s.length
///   u4 Cond     r: x % 2 == 1
///   u5 Untyped  r: s[x]
inline Pattern OddPositionsPattern() {
  auto p =
      PatternBuilder("odd-positions", "Accessing odd positions sequentially")
          .Var("x")
          .Var("s")
          .Node(PatternNodeType::kUntyped, "s")
          .Node(PatternNodeType::kAssign, "x = 0", "x = \\d+",
                "{x} is initialized to 0", "{x} should be initialized to 0")
          .Node(PatternNodeType::kAssign,
                "x\\+\\+|\\+\\+x|x \\+= 1|x = x \\+ 1", "",
                "{x} is incremented by 1", "{x} should be incremented by 1")
          .Node(PatternNodeType::kCond, "x < s\\.length",
                "x <= s\\.length", "{x} does not go beyond {s}.length - 1",
                "{x} is out of bounds going beyond {s}.length - 1")
          .Node(PatternNodeType::kCond, "x % 2 == 1", "",
                "You are using {x} % 2 == 1 to control that {x} is odd", "")
          .Node(PatternNodeType::kUntyped, "s\\[x\\]", "",
                "{x} is used exactly to access {s}",
                "You should access {s} by using {x} exactly")
          .DataEdge(0, 3)
          .DataEdge(0, 5)
          .DataEdge(1, 2)
          .DataEdge(1, 3)
          .DataEdge(1, 4)
          .DataEdge(1, 5)
          .CtrlEdge(3, 2)
          .CtrlEdge(3, 4)
          .CtrlEdge(4, 5)
          .Present("You are correctly accessing odd positions sequentially "
                   "in an array")
          .Missing("You are not accessing odd positions sequentially in an "
                   "array, please, consider using a loop and a condition; "
                   "recall that odd is computed by i % 2 == 1, where i is an "
                   "index variable")
          .Build();
  return std::move(*p);
}

/// Fig. 5 — p_a: conditional cumulatively adding. Variables: c.
///   u0 Assign r: c = 0   r̂: c = \d+
///   u1 Cond   (any condition)
///   u2 Cond   (any condition)
///   u3 Assign r: c += | c = c +
/// Edges: Ctrl u1->u2, Ctrl u2->u3, Data u0->u3.
inline Pattern CondAccumAddPattern() {
  auto p = PatternBuilder("cond-accum-add", "Conditional cumulatively adding")
               .Var("c")
               .Node(PatternNodeType::kAssign, "c = 0", "c = \\d+",
                     "{c} is initialized to 0",
                     "{c} should be initialized to 0")
               .Node(PatternNodeType::kCond, "")
               .Node(PatternNodeType::kCond, "")
               .Node(PatternNodeType::kAssign, "c \\+=|c = c \\+", "",
                     "{c} is cumulatively added", "")
               .CtrlEdge(1, 2)
               .CtrlEdge(2, 3)
               .DataEdge(0, 3)
               .Present("You are cumulatively adding {c} under a condition")
               .Missing("You are not cumulatively adding a variable under a "
                        "condition inside a loop")
               .Build();
  return std::move(*p);
}

/// Fig. 6 — p_p: assign and print to console. Variables: y.
///   u0 Assign r: y
///   u1 Call   r: System.out.print...(...y...)
/// Edge: Data u0->u1.
inline Pattern AssignPrintPattern() {
  auto p = PatternBuilder("assign-print", "Assign and print to console")
               .Var("y")
               .Node(PatternNodeType::kAssign, "y", "",
                     "{y} is assigned a value", "")
               .Node(PatternNodeType::kCall,
                     "System\\.out\\.print(ln)?\\(.*y", "",
                     "{y} is printed to console",
                     "{y} should be printed to console")
               .DataEdge(0, 1)
               .Present("You are printing {y} to console")
               .Missing("You should print your result to console")
               .Build();
  return std::move(*p);
}

}  // namespace jfeed::core::testutil

#endif  // JFEED_TESTS_CORE_PAPER_PATTERNS_H_
