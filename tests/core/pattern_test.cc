#include "core/pattern.h"

#include <gtest/gtest.h>

#include "tests/core/paper_patterns.h"

namespace jfeed::core {
namespace {

TEST(PatternTest, TypeMatching) {
  EXPECT_TRUE(TypeMatches(PatternNodeType::kAssign, pdg::NodeType::kAssign));
  EXPECT_FALSE(TypeMatches(PatternNodeType::kAssign, pdg::NodeType::kCond));
  EXPECT_TRUE(TypeMatches(PatternNodeType::kUntyped, pdg::NodeType::kAssign));
  EXPECT_TRUE(TypeMatches(PatternNodeType::kUntyped, pdg::NodeType::kDecl));
  EXPECT_TRUE(TypeMatches(PatternNodeType::kCond, pdg::NodeType::kCond));
  EXPECT_TRUE(TypeMatches(PatternNodeType::kReturn, pdg::NodeType::kReturn));
  EXPECT_TRUE(TypeMatches(PatternNodeType::kBreak, pdg::NodeType::kBreak));
  EXPECT_TRUE(TypeMatches(PatternNodeType::kCall, pdg::NodeType::kCall));
  EXPECT_TRUE(TypeMatches(PatternNodeType::kDecl, pdg::NodeType::kDecl));
}

TEST(PatternTest, BuilderProducesValidPattern) {
  Pattern p = testutil::OddPositionsPattern();
  EXPECT_EQ(p.id, "odd-positions");
  EXPECT_EQ(p.nodes.size(), 6u);
  EXPECT_EQ(p.edges.size(), 9u);
  EXPECT_TRUE(p.Validate().ok());
  EXPECT_EQ(p.Variables(), (std::set<std::string>{"s", "x"}));
}

TEST(PatternTest, ValidateRejectsOutOfRangeEdge) {
  auto p = PatternBuilder("bad", "bad")
               .Node(PatternNodeType::kAssign, "")
               .CtrlEdge(0, 5)
               .Build();
  EXPECT_FALSE(p.ok());
}

TEST(PatternTest, ValidateRejectsSelfLoop) {
  auto p = PatternBuilder("bad", "bad")
               .Node(PatternNodeType::kAssign, "")
               .CtrlEdge(0, 0)
               .Build();
  EXPECT_FALSE(p.ok());
}

TEST(PatternTest, ValidateRejectsEmptyPattern) {
  EXPECT_FALSE(PatternBuilder("empty", "no nodes").Build().ok());
}

TEST(PatternTest, ApproxVariablesMustBeSubsetOfExact) {
  // Definition 4: variables(r̂) ⊆ variables(r).
  auto p = PatternBuilder("bad", "bad")
               .Var("x")
               .Var("y")
               .Node(PatternNodeType::kAssign, "x = 0", "y = 0")
               .Build();
  EXPECT_FALSE(p.ok());
}

TEST(PatternTest, BuilderRejectsInvalidTemplate) {
  auto p = PatternBuilder("bad", "bad")
               .Var("x")
               .Node(PatternNodeType::kAssign, "x ([")
               .Build();
  EXPECT_FALSE(p.ok());
}

TEST(InstantiateFeedbackTest, SubstitutesBoundVariables) {
  EXPECT_EQ(InstantiateFeedback("{x} should be initialized to 0",
                                {{"x", "i"}}),
            "i should be initialized to 0");
  EXPECT_EQ(InstantiateFeedback("{x} is out of bounds going beyond "
                                "{s}.length - 1",
                                {{"x", "i"}, {"s", "a"}}),
            "i is out of bounds going beyond a.length - 1");
}

TEST(InstantiateFeedbackTest, UnboundVariablesKeepTheirName) {
  EXPECT_EQ(InstantiateFeedback("recall that odd is computed by {x} % 2 == 1",
                                {}),
            "recall that odd is computed by x % 2 == 1");
}

TEST(InstantiateFeedbackTest, PlainTextPassesThrough) {
  EXPECT_EQ(InstantiateFeedback("no placeholders here", {{"x", "i"}}),
            "no placeholders here");
  EXPECT_EQ(InstantiateFeedback("", {}), "");
}

TEST(InstantiateFeedbackTest, UnterminatedBraceKeptVerbatim) {
  EXPECT_EQ(InstantiateFeedback("weird { text", {}), "weird { text");
}

}  // namespace
}  // namespace jfeed::core
