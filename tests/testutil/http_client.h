#ifndef JFEED_TESTS_TESTUTIL_HTTP_CLIENT_H_
#define JFEED_TESTS_TESTUTIL_HTTP_CLIENT_H_

// Minimal blocking HTTP/1.1 client for exercising the introspection server
// in tests: one connection per request (the server answers Connection:
// close), raw POSIX sockets so the tests depend on nothing the server
// itself does not.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

namespace jfeed::testutil {

struct HttpResult {
  bool ok = false;          ///< Transport-level success (connected + parsed).
  int status = 0;           ///< HTTP status code.
  std::string headers;      ///< Raw header block (status line included).
  std::string body;
};

/// One HTTP exchange against 127.0.0.1:`port`. `body` non-empty implies a
/// Content-Length header; `extra_headers` are sent verbatim (e.g. a
/// traceparent). Reads until the server closes the connection.
inline HttpResult HttpFetch(
    uint16_t port, const std::string& method, const std::string& target,
    const std::string& body = "",
    const std::vector<std::pair<std::string, std::string>>& extra_headers =
        {}) {
  HttpResult result;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return result;

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return result;
  }

  std::string request = method + " " + target + " HTTP/1.1\r\n";
  request += "Host: 127.0.0.1\r\n";
  for (const auto& [name, value] : extra_headers) {
    request += name + ": " + value + "\r\n";
  }
  if (!body.empty()) {
    request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  request += "Connection: close\r\n\r\n";
  request += body;
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      ::close(fd);
      return result;
    }
    sent += static_cast<size_t>(n);
  }

  std::string response;
  char buffer[4096];
  while (true) {
    ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);

  size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) return result;
  result.headers = response.substr(0, header_end);
  result.body = response.substr(header_end + 4);
  if (std::sscanf(response.c_str(), "HTTP/1.1 %d", &result.status) != 1) {
    return result;
  }
  result.ok = true;
  return result;
}

}  // namespace jfeed::testutil

#endif  // JFEED_TESTS_TESTUTIL_HTTP_CLIENT_H_
