#include "graph/digraph.h"

#include <string>

#include <gtest/gtest.h>

namespace jfeed::graph {
namespace {

using TestGraph = Digraph<std::string, int>;

TEST(DigraphTest, EmptyGraph) {
  TestGraph g;
  EXPECT_EQ(g.NodeCount(), 0u);
  EXPECT_EQ(g.EdgeCount(), 0u);
}

TEST(DigraphTest, AddNodesAssignsDenseIds) {
  TestGraph g;
  EXPECT_EQ(g.AddNode("a"), 0);
  EXPECT_EQ(g.AddNode("b"), 1);
  EXPECT_EQ(g.AddNode("c"), 2);
  EXPECT_EQ(g.NodeCount(), 3u);
  EXPECT_EQ(g.NodeData(1), "b");
}

TEST(DigraphTest, EdgesIndexBothDirections) {
  TestGraph g;
  NodeId a = g.AddNode("a");
  NodeId b = g.AddNode("b");
  NodeId c = g.AddNode("c");
  g.AddEdge(a, b, 1);
  g.AddEdge(a, c, 2);
  g.AddEdge(b, c, 1);
  EXPECT_EQ(g.OutDegree(a), 2u);
  EXPECT_EQ(g.InDegree(c), 2u);
  EXPECT_EQ(g.OutDegree(c), 0u);
  EXPECT_EQ(g.InDegree(a), 0u);
}

TEST(DigraphTest, HasEdgeMatchesPayload) {
  TestGraph g;
  NodeId a = g.AddNode("a");
  NodeId b = g.AddNode("b");
  g.AddEdge(a, b, 1);
  EXPECT_TRUE(g.HasEdge(a, b, 1));
  EXPECT_FALSE(g.HasEdge(a, b, 2));
  EXPECT_FALSE(g.HasEdge(b, a, 1));
}

TEST(DigraphTest, ParallelEdgesAllowed) {
  TestGraph g;
  NodeId a = g.AddNode("a");
  NodeId b = g.AddNode("b");
  g.AddEdge(a, b, 1);
  g.AddEdge(a, b, 2);
  EXPECT_EQ(g.EdgeCount(), 2u);
  EXPECT_TRUE(g.HasEdge(a, b, 1));
  EXPECT_TRUE(g.HasEdge(a, b, 2));
}

TEST(DigraphTest, EdgeDataAccessible) {
  TestGraph g;
  NodeId a = g.AddNode("a");
  NodeId b = g.AddNode("b");
  EdgeId e = g.AddEdge(a, b, 42);
  EXPECT_EQ(g.GetEdge(e).source, a);
  EXPECT_EQ(g.GetEdge(e).target, b);
  EXPECT_EQ(g.GetEdge(e).data, 42);
}

TEST(DigraphTest, SelfLoop) {
  TestGraph g;
  NodeId a = g.AddNode("a");
  g.AddEdge(a, a, 9);
  EXPECT_TRUE(g.HasEdge(a, a, 9));
  EXPECT_EQ(g.OutDegree(a), 1u);
  EXPECT_EQ(g.InDegree(a), 1u);
}

TEST(DigraphTest, LargeGraphStressIsConsistent) {
  TestGraph g;
  constexpr int kN = 1000;
  for (int i = 0; i < kN; ++i) g.AddNode("n" + std::to_string(i));
  // Chain plus skip edges.
  for (int i = 0; i + 1 < kN; ++i) g.AddEdge(i, i + 1, 0);
  for (int i = 0; i + 10 < kN; i += 10) g.AddEdge(i, i + 10, 1);
  size_t total_out = 0, total_in = 0;
  for (int i = 0; i < kN; ++i) {
    total_out += g.OutDegree(i);
    total_in += g.InDegree(i);
  }
  EXPECT_EQ(total_out, g.EdgeCount());
  EXPECT_EQ(total_in, g.EdgeCount());
}

}  // namespace
}  // namespace jfeed::graph
