// Tests for the NDJSON batch front end's line codec: object and bare-string
// input forms, escape handling, malformed-line classification, and output
// line rendering.

#include "sched/batch_io.h"

#include <gtest/gtest.h>

namespace jfeed::sched {
namespace {

TEST(ParseBatchLineTest, ObjectFormWithIdAndSource) {
  auto line = ParseBatchLine(
      R"({"id": "s-17", "source": "void f() {\n  int x = 0;\n}"})");
  ASSERT_TRUE(line.ok()) << line.status().ToString();
  EXPECT_EQ(line->id, "s-17");
  EXPECT_EQ(line->source, "void f() {\n  int x = 0;\n}");
}

TEST(ParseBatchLineTest, BareStringForm) {
  auto line = ParseBatchLine(R"("int f() { return 1; }")");
  ASSERT_TRUE(line.ok()) << line.status().ToString();
  EXPECT_EQ(line->id, "");
  EXPECT_EQ(line->source, "int f() { return 1; }");
}

TEST(ParseBatchLineTest, IdIsOptionalUnknownKeysIgnored) {
  auto line = ParseBatchLine(
      R"({"student": "x", "source": "void f() {}", "lang": "java"})");
  ASSERT_TRUE(line.ok()) << line.status().ToString();
  EXPECT_EQ(line->id, "");
  EXPECT_EQ(line->source, "void f() {}");
}

TEST(ParseBatchLineTest, EscapesDecode) {
  auto line = ParseBatchLine(R"({"source": "s = \"q\\tq\" + 'é';"})");
  ASSERT_TRUE(line.ok()) << line.status().ToString();
  EXPECT_EQ(line->source, "s = \"q\\tq\" + '\xc3\xa9';");
}

TEST(ParseBatchLineTest, SurrogatePairDecodesToUtf8) {
  auto line = ParseBatchLine(R"("😀")");  // 😀 U+1F600
  ASSERT_TRUE(line.ok()) << line.status().ToString();
  EXPECT_EQ(line->source, "\xf0\x9f\x98\x80");
}

TEST(ParseBatchLineTest, MalformedLinesAreInvalidArgument) {
  EXPECT_EQ(ParseBatchLine("").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseBatchLine("   ").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseBatchLine("{\"id\": \"x\"}").status().code(),
            StatusCode::kInvalidArgument);  // No source key.
  EXPECT_EQ(ParseBatchLine("{\"source\": 42}").status().code(),
            StatusCode::kInvalidArgument);  // Non-string value.
  EXPECT_EQ(ParseBatchLine("\"unterminated").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseBatchLine("[1, 2]").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseBatchLine(R"("x" trailing)").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(BatchOutcomeToJsonTest, SplicesIdAndIndexIntoOutcome) {
  service::GradingOutcome outcome;
  outcome.verdict = service::Verdict::kCorrect;
  std::string json = BatchOutcomeToJson("stu-1", 12, outcome);
  EXPECT_EQ(json.rfind("{\"id\":\"stu-1\",\"index\":12,\"verdict\":", 0), 0u)
      << json;
  EXPECT_EQ(json.back(), '}');
  // Null id when the input line carried none.
  EXPECT_EQ(BatchOutcomeToJson("", 0, outcome).rfind("{\"id\":null,", 0), 0u);
}

TEST(BatchErrorToJsonTest, RendersError) {
  std::string json =
      BatchErrorToJson(3, Status::InvalidArgument("bad \"line\""));
  EXPECT_EQ(json,
            "{\"id\":null,\"index\":3,"
            "\"error\":\"InvalidArgument: bad \\\"line\\\"\"}");
}

}  // namespace
}  // namespace jfeed::sched
