// Unit tests for token-normalized fingerprinting and the content-addressed
// result cache: comment/whitespace duplicates hash identically, distinct
// token streams do not, eviction keeps hot entries, and concurrent access
// is safe.

#include "sched/result_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace jfeed::sched {
namespace {

service::GradingOutcome MakeOutcome(service::Verdict verdict,
                                    const std::string& diagnostic = "") {
  service::GradingOutcome outcome;
  outcome.verdict = verdict;
  outcome.diagnostic = diagnostic;
  return outcome;
}

TEST(TokenFingerprintTest, CommentsAndWhitespaceDoNotDefeatDedup) {
  const std::string base = "void f(int x) { int y = x + 1; }";
  const std::string commented =
      "// a student comment\nvoid f(int x) {\n  /* block */ int y = x + 1;\n}";
  const std::string reformatted =
      "void f( int x )\n{\n\tint y\t= x + 1;\n}\n\n";
  EXPECT_EQ(TokenFingerprint(base), TokenFingerprint(commented));
  EXPECT_EQ(TokenFingerprint(base), TokenFingerprint(reformatted));
}

TEST(TokenFingerprintTest, DifferentTokenStreamsDiffer) {
  EXPECT_NE(TokenFingerprint("int x = 0;"), TokenFingerprint("int x = 1;"));
  EXPECT_NE(TokenFingerprint("int x = 0;"), TokenFingerprint("int y = 0;"));
  // Adjacent-token gluing must not collide: "ab" vs "a b".
  EXPECT_NE(TokenFingerprint("ab"), TokenFingerprint("a b"));
}

TEST(TokenFingerprintTest, UnlexableSourceFallsBackToByteHash) {
  // The lexer rejects these; byte-identical copies still dedup.
  const std::string garbage = "int s = \"unterminated";
  EXPECT_EQ(TokenFingerprint(garbage), TokenFingerprint(garbage));
  EXPECT_NE(TokenFingerprint(garbage),
            TokenFingerprint(garbage + " "));  // Bytes differ -> key differs.
}

TEST(ResultCacheTest, LookupMissThenHit) {
  ResultCache cache;
  service::GradingOutcome out;
  EXPECT_FALSE(cache.Lookup("a1", 42, &out));
  cache.Insert("a1", 42, MakeOutcome(service::Verdict::kCorrect));
  ASSERT_TRUE(cache.Lookup("a1", 42, &out));
  EXPECT_EQ(out.verdict, service::Verdict::kCorrect);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(ResultCacheTest, KeyIncludesAssignmentId) {
  ResultCache cache;
  cache.Insert("a1", 42, MakeOutcome(service::Verdict::kCorrect));
  service::GradingOutcome out;
  // Same fingerprint, different assignment: a miss, never cross-served.
  EXPECT_FALSE(cache.Lookup("a2", 42, &out));
}

TEST(ResultCacheTest, SecondChanceEvictionKeepsHotEntries) {
  ResultCache cache(/*max_entries=*/4);
  for (uint64_t fp = 0; fp < 4; ++fp) {
    cache.Insert("a", fp, MakeOutcome(service::Verdict::kIncorrect));
  }
  service::GradingOutcome out;
  ASSERT_TRUE(cache.Lookup("a", 0, &out));  // Mark 0 and 1 hot.
  ASSERT_TRUE(cache.Lookup("a", 1, &out));
  cache.Insert("a", 100, MakeOutcome(service::Verdict::kCorrect));
  cache.Insert("a", 101, MakeOutcome(service::Verdict::kCorrect));
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.stats().evictions, 2u);
  EXPECT_TRUE(cache.Lookup("a", 0, &out)) << "hot entry was evicted";
  EXPECT_TRUE(cache.Lookup("a", 1, &out)) << "hot entry was evicted";
}

TEST(ResultCacheTest, ConcurrentMixedAccessIsSafe) {
  ResultCache cache(/*max_entries=*/64);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      for (uint64_t i = 0; i < 500; ++i) {
        uint64_t fp = (t * 131 + i) % 100;
        service::GradingOutcome out;
        if (!cache.Lookup("a", fp, &out)) {
          cache.Insert("a", fp, MakeOutcome(service::Verdict::kCorrect));
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_LE(cache.size(), 64u);
  auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, 2000u);
}

}  // namespace
}  // namespace jfeed::sched
