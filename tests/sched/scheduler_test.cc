// Scheduler correctness: parallel batch grading must be indistinguishable
// from sequential GradeBatch in everything the service contract promises —
// verdict, tier, failure class, feedback text, functional verdict — across
// every knowledge-base assignment, with results in input order. Plus
// admission backpressure, dedup accounting, and streaming Submit/Wait.

#include "sched/scheduler.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "kb/assignments.h"
#include "sched/result_cache.h"
#include "service/pipeline.h"
#include "synth/generator.h"

namespace jfeed::sched {
namespace {

const kb::Assignment& Assignment1() {
  return kb::KnowledgeBase::Get().assignment("assignment1");
}

/// The fields the scheduler guarantees byte-identical to sequential
/// grading (timings and position-bearing diagnostics of cached duplicates
/// are explicitly excluded; see ResultCache).
void ExpectEquivalent(const service::GradingOutcome& sequential,
                      const service::GradingOutcome& parallel,
                      const std::string& context) {
  SCOPED_TRACE(context);
  EXPECT_EQ(sequential.verdict, parallel.verdict);
  EXPECT_EQ(sequential.tier, parallel.tier);
  EXPECT_EQ(sequential.failure, parallel.failure);
  EXPECT_EQ(sequential.feedback.matched, parallel.feedback.matched);
  EXPECT_EQ(sequential.feedback.score, parallel.feedback.score);
  ASSERT_EQ(sequential.feedback.comments.size(),
            parallel.feedback.comments.size());
  for (size_t c = 0; c < sequential.feedback.comments.size(); ++c) {
    EXPECT_EQ(sequential.feedback.comments[c].kind,
              parallel.feedback.comments[c].kind);
    EXPECT_EQ(sequential.feedback.comments[c].message,
              parallel.feedback.comments[c].message);
    EXPECT_EQ(sequential.feedback.comments[c].details,
              parallel.feedback.comments[c].details);
  }
  EXPECT_EQ(sequential.functional_ran, parallel.functional_ran);
  if (sequential.functional_ran) {
    EXPECT_EQ(sequential.functional.passed, parallel.functional.passed);
    EXPECT_EQ(sequential.functional.tests_run, parallel.functional.tests_run);
    EXPECT_EQ(sequential.functional.tests_failed,
              parallel.functional.tests_failed);
  }
}

/// A small but adversarial corpus for one assignment: reference, error
/// variants, a comment/whitespace-perturbed duplicate of the reference,
/// a spec-mismatching-but-parseable member, and unparseable garbage.
std::vector<std::string> Corpus(const kb::Assignment& assignment) {
  std::vector<std::string> corpus;
  auto indexes = synth::SampleIndexes(assignment.generator.SpaceSize(), 5);
  for (uint64_t index : indexes) {
    corpus.push_back(assignment.generator.Generate(index));
  }
  corpus.push_back("// dup\n" + assignment.Reference() + "\n\n");
  corpus.push_back("void unrelated(int q) { q = q + 1; }");
  corpus.push_back("int broken( { ][");
  return corpus;
}

TEST(SchedulerDeterminismTest, ParallelMatchesSequentialOnAllAssignments) {
  for (const auto& id : kb::KnowledgeBase::Get().assignment_ids()) {
    const auto& assignment = kb::KnowledgeBase::Get().assignment(id);
    std::vector<std::string> corpus = Corpus(assignment);

    service::GradingPipeline pipeline(assignment);
    auto sequential = pipeline.GradeBatch(corpus);

    SchedulerOptions sopts;
    sopts.jobs = 8;
    auto parallel =
        service::GradeBatchParallel(assignment, corpus, {}, sopts);

    ASSERT_EQ(sequential.size(), parallel.size());
    for (size_t i = 0; i < corpus.size(); ++i) {
      ExpectEquivalent(sequential[i], parallel[i],
                       id + " / submission " + std::to_string(i));
    }
  }
}

TEST(SchedulerTest, ResultsComeBackInInputOrder) {
  // Mix fast (garbage) and slow (functional-suite) members; input order
  // must survive arbitrary completion order.
  // The two parse-failing members differ only in the line their error lands
  // on, so the diagnostics pin each outcome to its input slot.
  std::vector<std::string> corpus = {
      Assignment1().Reference(),
      "(",
      Assignment1().Reference(),
      "\n\n\n(",
  };
  SchedulerOptions sopts;
  sopts.jobs = 4;
  sopts.use_result_cache = false;  // Force all four through workers.
  BatchScheduler scheduler(Assignment1(), {}, sopts);
  auto outcomes = scheduler.GradeBatch(corpus);
  ASSERT_EQ(outcomes.size(), 4u);
  EXPECT_EQ(outcomes[0].verdict, service::Verdict::kCorrect);
  EXPECT_EQ(outcomes[1].verdict, service::Verdict::kNotGraded);
  EXPECT_NE(outcomes[1].diagnostic.find("line 1"), std::string::npos)
      << "order scrambled: " << outcomes[1].diagnostic;
  EXPECT_EQ(outcomes[2].verdict, service::Verdict::kCorrect);
  EXPECT_EQ(outcomes[3].verdict, service::Verdict::kNotGraded);
  EXPECT_NE(outcomes[3].diagnostic.find("line 4"), std::string::npos)
      << "order scrambled: " << outcomes[3].diagnostic;
}

TEST(SchedulerTest, DuplicatesAreGradedOnceAndAccounted) {
  std::vector<std::string> corpus;
  for (int i = 0; i < 6; ++i) corpus.push_back(Assignment1().Reference());
  corpus.push_back("// perturbed\n" + Assignment1().Reference());

  BatchScheduler scheduler(Assignment1());
  BatchStats stats;
  auto outcomes = scheduler.GradeBatchWithStats(corpus, &stats);
  ASSERT_EQ(outcomes.size(), 7u);
  EXPECT_EQ(stats.submissions, 7u);
  EXPECT_EQ(stats.graded, 1u);      // One pipeline run for all seven.
  EXPECT_EQ(stats.dedup_hits, 6u);  // Six coalesced onto it.
  for (const auto& outcome : outcomes) {
    EXPECT_EQ(outcome.verdict, service::Verdict::kCorrect);
  }

  // A second batch over the same content is served entirely from the
  // cache: with nothing in flight there is nothing to coalesce onto, so
  // every member counts as a cache hit, not a dedup hit.
  auto again = scheduler.GradeBatchWithStats(corpus, &stats);
  EXPECT_EQ(stats.graded, 0u);
  EXPECT_EQ(stats.cache_hits, 7u);
  EXPECT_EQ(stats.dedup_hits, 0u);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 1.0);
  EXPECT_EQ(again[0].verdict, service::Verdict::kCorrect);
}

TEST(SchedulerTest, SharedCachePersistsAcrossSchedulers) {
  auto shared = std::make_shared<ResultCache>();
  SchedulerOptions sopts;
  sopts.cache = shared;
  {
    BatchScheduler first(Assignment1(), {}, sopts);
    first.GradeBatch({Assignment1().Reference()});
  }
  EXPECT_EQ(shared->size(), 1u);
  {
    BatchScheduler second(Assignment1(), {}, sopts);
    BatchStats stats;
    second.GradeBatchWithStats({Assignment1().Reference()}, &stats);
    EXPECT_EQ(stats.cache_hits, 1u);
    EXPECT_EQ(stats.graded, 0u);
  }
}

TEST(SchedulerTest, SubmitReturnsUnavailableWhenQueueIsFull) {
  // One worker occupied by a slow submission, a one-slot queue already
  // holding a second: the third admission must be rejected, not buffered.
  service::PipelineOptions popts;
  popts.exec.deadline_ms = 400;
  popts.budgets.functional_ms = 400;
  SchedulerOptions sopts;
  sopts.jobs = 1;
  sopts.queue_capacity = 1;
  sopts.use_result_cache = false;
  BatchScheduler scheduler(Assignment1(), popts, sopts);

  const std::string slow =
      "void assignment1(int[] a) { while (true) { } }";
  uint64_t slow_ticket = 0;
  ASSERT_TRUE(scheduler.Submit(slow, &slow_ticket).ok());
  // Let the worker pick the slow job up so the queue is truly empty.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  uint64_t queued_ticket = 0;
  ASSERT_TRUE(scheduler.Submit(slow, &queued_ticket).ok());

  uint64_t rejected_ticket = 0;
  Status status = scheduler.Submit(slow, &rejected_ticket);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable) << status.ToString();

  // Both admitted submissions still complete and are retrievable.
  auto first = scheduler.Wait(slow_ticket);
  auto second = scheduler.Wait(queued_ticket);
  EXPECT_NE(first.verdict, service::Verdict::kCorrect);
  EXPECT_NE(second.verdict, service::Verdict::kCorrect);

  // With the queue drained, admission reopens.
  uint64_t retry_ticket = 0;
  EXPECT_TRUE(scheduler.Submit(slow, &retry_ticket).ok());
  scheduler.Wait(retry_ticket);
}

TEST(SchedulerTest, StreamingSubmitWaitRoundTrip) {
  SchedulerOptions sopts;
  sopts.jobs = 2;
  BatchScheduler scheduler(Assignment1(), {}, sopts);
  uint64_t good = 0, bad = 0;
  ASSERT_TRUE(scheduler.Submit(Assignment1().Reference(), &good).ok());
  ASSERT_TRUE(scheduler.Submit("garbage (", &bad).ok());
  EXPECT_EQ(scheduler.Wait(bad).verdict, service::Verdict::kNotGraded);
  EXPECT_EQ(scheduler.Wait(good).verdict, service::Verdict::kCorrect);
}

TEST(SchedulerTest, JobsClampedToAtLeastOne) {
  SchedulerOptions sopts;
  sopts.jobs = 0;
  BatchScheduler scheduler(Assignment1(), {}, sopts);
  EXPECT_EQ(scheduler.jobs(), 1);
  auto outcomes = scheduler.GradeBatch({Assignment1().Reference()});
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].verdict, service::Verdict::kCorrect);
}

}  // namespace
}  // namespace jfeed::sched
