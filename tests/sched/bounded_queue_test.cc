// Unit tests for the scheduler's bounded MPMC queue: FIFO order,
// backpressure on a full queue, clean close-and-drain semantics, and a
// multi-producer/multi-consumer smoke test.

#include "sched/bounded_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

namespace jfeed::sched {
namespace {

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(queue.TryPush(i));
  for (int i = 0; i < 5; ++i) {
    auto item = queue.Pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
}

TEST(BoundedQueueTest, TryPushAppliesBackpressureWhenFull) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  // Admission is rejected, not buffered: the queue never exceeds capacity.
  EXPECT_FALSE(queue.TryPush(3));
  EXPECT_EQ(queue.size(), 2u);
  // Draining one slot re-opens admission.
  ASSERT_TRUE(queue.Pop().has_value());
  EXPECT_TRUE(queue.TryPush(3));
  EXPECT_FALSE(queue.TryPush(4));
}

TEST(BoundedQueueTest, CapacityZeroClampsToOne) {
  BoundedQueue<int> queue(0);
  EXPECT_EQ(queue.capacity(), 1u);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_FALSE(queue.TryPush(2));
}

TEST(BoundedQueueTest, CloseDrainsThenSignalsEnd) {
  BoundedQueue<int> queue(4);
  ASSERT_TRUE(queue.TryPush(1));
  ASSERT_TRUE(queue.TryPush(2));
  queue.Close();
  // Closed: no further admission, blocking or not.
  EXPECT_FALSE(queue.TryPush(3));
  EXPECT_FALSE(queue.Push(3));
  // Already-admitted items drain in order before end-of-stream.
  EXPECT_EQ(queue.Pop().value_or(-1), 1);
  EXPECT_EQ(queue.Pop().value_or(-1), 2);
  EXPECT_FALSE(queue.Pop().has_value());
  EXPECT_FALSE(queue.Pop().has_value());  // Idempotent end-of-stream.
}

TEST(BoundedQueueTest, CloseWakesBlockedConsumer) {
  BoundedQueue<int> queue(2);
  std::atomic<bool> got_end{false};
  std::thread consumer([&] {
    got_end = !queue.Pop().has_value();
  });
  // Give the consumer a moment to block on the empty queue, then close.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.Close();
  consumer.join();
  EXPECT_TRUE(got_end);
}

TEST(BoundedQueueTest, BlockingPushWaitsForFreeSlot) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.TryPush(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    pushed = queue.Push(2);  // Blocks until the consumer frees the slot.
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed) << "Push returned while the queue was still full";
  EXPECT_EQ(queue.Pop().value_or(-1), 1);
  producer.join();
  EXPECT_TRUE(pushed);
  EXPECT_EQ(queue.Pop().value_or(-1), 2);
}

TEST(BoundedQueueTest, MpmcDeliversEveryItemExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 250;
  BoundedQueue<int> queue(8);
  std::mutex seen_mu;
  std::set<int> seen;

  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto item = queue.Pop()) {
        std::lock_guard<std::mutex> lock(seen_mu);
        EXPECT_TRUE(seen.insert(*item).second) << "duplicate " << *item;
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.Push(p * kPerProducer + i));
      }
    });
  }
  for (auto& t : producers) t.join();
  queue.Close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(seen.size(), static_cast<size_t>(kProducers * kPerProducer));
}

}  // namespace
}  // namespace jfeed::sched
