// Multi-tenant scheduler correctness: mixed-assignment batches must grade
// exactly like per-assignment pipelines, per-shard admission control must
// shed the spiking tenant and only the spiking tenant, and destruction must
// answer every admitted submission.

#include "sched/sharded_scheduler.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "kb/assignments.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/pipeline.h"
#include "synth/generator.h"

namespace jfeed::sched {
namespace {

std::vector<const kb::Assignment*> Assignments(
    std::initializer_list<const char*> ids) {
  std::vector<const kb::Assignment*> assignments;
  for (const char* id : ids) {
    assignments.push_back(&kb::KnowledgeBase::Get().assignment(id));
  }
  return assignments;
}

// Metric reads are meaningful only with real instruments; under
// -DJFEED_OBS=OFF the stubs report zero, so those assertions compile out
// while the admission-control behavior itself stays covered.
#ifndef JFEED_OBS_DISABLED
int64_t ShedCount(const std::string& assignment) {
  return obs::Registry::Global()
      .GetCounter("jfeed_shed_total", "", {{"assignment", assignment}})
      ->Value();
}

int64_t GradeCount(const std::string& assignment) {
  return obs::Registry::Global()
      .GetHistogram("jfeed_grade_duration_us", "",
                    {{"assignment", assignment}})
      ->Count();
}
#endif  // JFEED_OBS_DISABLED

class ShardedSchedulerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Registry::Global().ResetForTest();
    obs::Registry::Global().set_enabled(true);
  }
  void TearDown() override {
    obs::Registry::Global().set_enabled(false);
    obs::Registry::Global().ResetForTest();
  }
};

TEST_F(ShardedSchedulerTest, MixedBatchMatchesSingleTenantPipelines) {
  auto assignments = Assignments({"assignment1", "mitx-polynomials"});
  std::vector<MixedItem> items;
  for (const kb::Assignment* assignment : assignments) {
    auto indexes = synth::SampleIndexes(assignment->generator.SpaceSize(), 3);
    for (uint64_t index : indexes) {
      items.push_back(MixedItem{assignment->id, "",
                                assignment->generator.Generate(index)});
    }
  }

  ShardedSchedulerOptions sopts;
  sopts.jobs = 4;
  ShardedScheduler scheduler(assignments, {}, sopts);
  auto outcomes = scheduler.GradeMixedBatch(items);
  ASSERT_EQ(outcomes.size(), items.size());

  for (size_t i = 0; i < items.size(); ++i) {
    ASSERT_TRUE(outcomes[i].status.ok()) << outcomes[i].status.ToString();
    const auto& assignment =
        kb::KnowledgeBase::Get().assignment(items[i].assignment);
    service::GradingPipeline pipeline(assignment);
    service::GradingOutcome expected = pipeline.Grade(items[i].source);
    SCOPED_TRACE(items[i].assignment + " / item " + std::to_string(i));
    EXPECT_EQ(expected.verdict, outcomes[i].outcome.verdict);
    EXPECT_EQ(expected.tier, outcomes[i].outcome.tier);
    EXPECT_EQ(expected.failure, outcomes[i].outcome.failure);
  }
}

TEST_F(ShardedSchedulerTest, UnknownAssignmentIsPerItemNotFound) {
  ShardedScheduler scheduler(Assignments({"assignment1"}));
  const std::string reference =
      kb::KnowledgeBase::Get().assignment("assignment1").Reference();
  auto outcomes = scheduler.GradeMixedBatch({
      MixedItem{"assignment1", "good", reference},
      MixedItem{"no-such-assignment", "bad", reference},
  });
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_TRUE(outcomes[0].status.ok());
  EXPECT_EQ(outcomes[0].outcome.verdict, service::Verdict::kCorrect);
  EXPECT_EQ(outcomes[1].status.code(), StatusCode::kNotFound);

  uint64_t ticket = 0;
  Status status = scheduler.Submit("no-such-assignment", reference, "", &ticket);
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST_F(ShardedSchedulerTest, QuotaShedsSpikingShardOnly) {
  // One worker, quota 1: assignment1's second in-system submission must be
  // shed while the other shard's admission stays open. The slow first
  // submission pins the worker, so admission decisions are deterministic —
  // the quota counts queued AND grading work.
  service::PipelineOptions popts;
  popts.exec.deadline_ms = 400;
  popts.budgets.functional_ms = 400;
  ShardedSchedulerOptions sopts;
  sopts.jobs = 1;
  sopts.shard_queue_capacity = 1;
  sopts.use_result_cache = false;
  ShardedScheduler scheduler(
      Assignments({"assignment1", "mitx-polynomials"}), popts, sopts);

  const std::string slow =
      "void assignment1(int[] a) { while (true) { } }";
  uint64_t slow_ticket = 0;
  ASSERT_TRUE(
      scheduler.Submit("assignment1", slow, "spike-1", &slow_ticket).ok());
  EXPECT_EQ(scheduler.ShardDepth("assignment1"), 1u);

  // The spike: further assignment1 submissions shed immediately.
  uint64_t shed_ticket = 0;
  Status shed =
      scheduler.Submit("assignment1", slow, "spike-2", &shed_ticket);
  EXPECT_EQ(shed.code(), StatusCode::kUnavailable) << shed.ToString();
#ifndef JFEED_OBS_DISABLED
  EXPECT_EQ(ShedCount("assignment1"), 1);
#endif

  // The other tenant is unaffected: admission open, no sheds recorded.
  const auto& other = kb::KnowledgeBase::Get().assignment("mitx-polynomials");
  uint64_t other_ticket = 0;
  ASSERT_TRUE(scheduler
                  .Submit("mitx-polynomials", other.Reference(), "calm-1",
                          &other_ticket)
                  .ok());
#ifndef JFEED_OBS_DISABLED
  EXPECT_EQ(ShedCount("mitx-polynomials"), 0);
#endif

  // Every accepted submission is answered; the shed one consumed no slot.
  auto slow_outcome = scheduler.Wait(slow_ticket);
  EXPECT_NE(slow_outcome.verdict, service::Verdict::kCorrect);
  auto other_outcome = scheduler.Wait(other_ticket);
  EXPECT_EQ(other_outcome.verdict, service::Verdict::kCorrect);

  // Quota slots freed: the spiking assignment is admittable again, and the
  // per-assignment grade counters saw exactly the accepted submissions.
  uint64_t retry_ticket = 0;
  EXPECT_TRUE(scheduler
                  .Submit("assignment1",
                          kb::KnowledgeBase::Get()
                              .assignment("assignment1")
                              .Reference(),
                          "retry", &retry_ticket)
                  .ok());
  scheduler.Wait(retry_ticket);
#ifndef JFEED_OBS_DISABLED
  EXPECT_EQ(GradeCount("assignment1"), 2);
  EXPECT_EQ(GradeCount("mitx-polynomials"), 1);
  EXPECT_EQ(ShedCount("assignment1"), 1);
  EXPECT_EQ(ShedCount("mitx-polynomials"), 0);
#endif
}

TEST_F(ShardedSchedulerTest, SaturatedOnlyWhenEveryShardIsAtQuota) {
  service::PipelineOptions popts;
  popts.exec.deadline_ms = 400;
  popts.budgets.functional_ms = 400;
  ShardedSchedulerOptions sopts;
  sopts.jobs = 1;
  sopts.shard_queue_capacity = 1;
  sopts.use_result_cache = false;
  ShardedScheduler scheduler(
      Assignments({"assignment1", "mitx-polynomials"}), popts, sopts);
  EXPECT_FALSE(scheduler.Saturated());

  const std::string slow =
      "void assignment1(int[] a) { while (true) { } }";
  uint64_t a = 0, b = 0;
  ASSERT_TRUE(scheduler.Submit("assignment1", slow, "", &a).ok());
  EXPECT_FALSE(scheduler.Saturated());  // One shard still has room.
  ASSERT_TRUE(scheduler.Submit("mitx-polynomials", slow, "", &b).ok());
  EXPECT_TRUE(scheduler.Saturated());
  scheduler.Wait(a);
  scheduler.Wait(b);
  EXPECT_FALSE(scheduler.Saturated());
}

TEST_F(ShardedSchedulerTest, DrainUnderSpikeAnswersEveryAcceptedSubmission) {
  // A deadline-spike shaped mixed batch bigger than the quotas: every
  // accepted line gets an answer, every over-quota line a clean shed, and
  // nothing leaks — no open spans, shard depths back to zero.
  obs::Tracer::Global().Enable(1u << 10);
  auto assignments = Assignments({"assignment1", "mitx-polynomials"});
  ShardedSchedulerOptions sopts;
  sopts.jobs = 2;
  sopts.shard_queue_capacity = 4;
  ShardedScheduler scheduler(assignments, {}, sopts);

  std::vector<MixedItem> items;
  for (int burst = 0; burst < 30; ++burst) {
    const kb::Assignment* assignment = assignments[burst % 2];
    items.push_back(
        MixedItem{assignment->id, "s" + std::to_string(burst),
                  assignment->generator.Generate(
                      static_cast<uint64_t>(burst) %
                      assignment->generator.SpaceSize())});
  }
  BatchStats stats;
  auto outcomes = scheduler.GradeMixedBatch(items, &stats);
  ASSERT_EQ(outcomes.size(), items.size());
  size_t answered = 0, shed = 0;
  for (const auto& outcome : outcomes) {
    if (outcome.status.ok()) {
      ++answered;
      EXPECT_NE(outcome.outcome.verdict, service::Verdict::kNotGraded);
    } else {
      EXPECT_EQ(outcome.status.code(), StatusCode::kUnavailable);
      ++shed;
    }
  }
  EXPECT_EQ(answered + shed, items.size());
  EXPECT_GT(answered, 0u);
  EXPECT_EQ(scheduler.ShardDepth("assignment1"), 0u);
  EXPECT_EQ(scheduler.ShardDepth("mitx-polynomials"), 0u);
  EXPECT_EQ(obs::Tracer::Global().OpenSpanCount(), 0);
  obs::Tracer::Global().Disable();
}

TEST_F(ShardedSchedulerTest, CacheIsKeyedPerAssignment) {
  // The same token stream under two assignments must not cross-hit: the
  // cache key is (assignment, fingerprint).
  auto assignments = Assignments({"assignment1", "mitx-polynomials"});
  ShardedScheduler scheduler(assignments);
  const std::string source = "void unrelated(int q) { q = q + 1; }";
  BatchStats stats;
  auto first = scheduler.GradeMixedBatch(
      {MixedItem{"assignment1", "", source}}, &stats);
  EXPECT_EQ(stats.graded, 1u);
  auto second = scheduler.GradeMixedBatch(
      {MixedItem{"mitx-polynomials", "", source}}, &stats);
  EXPECT_EQ(stats.graded, 1u) << "cross-assignment cache hit";
  auto third = scheduler.GradeMixedBatch(
      {MixedItem{"assignment1", "", source}}, &stats);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.graded, 0u);
  EXPECT_EQ(third[0].disposition, std::string("hit"));
}

}  // namespace
}  // namespace jfeed::sched
