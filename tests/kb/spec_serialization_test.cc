// Round-trip tests for the assignment-specification text format.

#include <gtest/gtest.h>

#include "core/feedback.h"
#include "core/submission_matcher.h"
#include "kb/assignments.h"
#include "kb/serialization.h"

namespace jfeed::kb {
namespace {

TEST(SpecSerializationTest, RoundTripIsAFixedPointForAllAssignments) {
  const auto& kb = KnowledgeBase::Get();
  for (const auto& id : kb.assignment_ids()) {
    const core::AssignmentSpec& original = kb.assignment(id).spec;
    std::string first = SerializeSpec(original);
    auto parsed = ParseSpec(first, PatternLibrary::Get());
    ASSERT_TRUE(parsed.ok()) << id << ": " << parsed.status().ToString()
                             << "\n" << first;
    EXPECT_EQ(SerializeSpec(*parsed), first) << id;
    EXPECT_EQ(parsed->PatternCount(), original.PatternCount()) << id;
    EXPECT_EQ(parsed->ConstraintCount(), original.ConstraintCount()) << id;
  }
}

TEST(SpecSerializationTest, ParsedSpecGradesIdentically) {
  // The parsed specification must reproduce the exact feedback of the
  // compiled one — both on the reference and on an erroneous variant.
  const auto& assignment = KnowledgeBase::Get().assignment("assignment1");
  auto parsed = ParseSpec(SerializeSpec(assignment.spec),
                          PatternLibrary::Get());
  ASSERT_TRUE(parsed.ok());
  for (uint64_t index : {uint64_t{0}, uint64_t{12345}}) {
    std::string source = assignment.generator.Generate(index);
    auto original = core::MatchSubmissionSource(assignment.spec, source);
    auto reparsed = core::MatchSubmissionSource(*parsed, source);
    ASSERT_TRUE(original.ok());
    ASSERT_TRUE(reparsed.ok());
    EXPECT_EQ(original->score, reparsed->score) << index;
    ASSERT_EQ(original->comments.size(), reparsed->comments.size());
    for (size_t i = 0; i < original->comments.size(); ++i) {
      EXPECT_EQ(original->comments[i].kind, reparsed->comments[i].kind);
      EXPECT_EQ(original->comments[i].message,
                reparsed->comments[i].message);
    }
  }
}

TEST(SpecSerializationTest, HandAuthoredSpec) {
  const char* kText = R"(
assignment my-course-hw3
  title: Sum the odd positions
  method sumOdd
    use odd-positions 1
    use cond-accum-add 1
    use assign-print 1
    constraint equality tie odd-positions 5 cond-accum-add 3
      ok: the accessed position is the accumulated one
      fail: accumulate exactly the accessed position
    constraint edge flows cond-accum-add 3 assign-print 1 Data
    constraint containment shape odd-positions 5 cond-accum-add
      expr: c \+= s\[x\]$
  end
end
)";
  auto spec = ParseSpec(kText, PatternLibrary::Get());
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec->id, "my-course-hw3");
  ASSERT_EQ(spec->methods.size(), 1u);
  EXPECT_EQ(spec->methods[0].patterns.size(), 3u);
  EXPECT_EQ(spec->methods[0].constraints.size(), 3u);
  EXPECT_EQ(spec->methods[0].constraints[2].kind,
            core::ConstraintKind::kContainment);
}

TEST(SpecSerializationTest, UnknownPatternRejected) {
  auto spec = ParseSpec(
      "assignment a\n  method m\n    use no-such-pattern 1\n  end\nend\n",
      PatternLibrary::Get());
  EXPECT_FALSE(spec.ok());
  EXPECT_EQ(spec.status().code(), StatusCode::kNotFound);
}

TEST(SpecSerializationTest, MalformedInputRejected) {
  const auto& lib = PatternLibrary::Get();
  EXPECT_FALSE(ParseSpec("nonsense\n", lib).ok());
  EXPECT_FALSE(ParseSpec("assignment a\n  use x 1\n", lib).ok());  // No method.
  EXPECT_FALSE(ParseSpec("assignment a\n  method m\n", lib).ok());  // No end.
  EXPECT_FALSE(ParseSpec(
                   "assignment a\n  method m\n    constraint edge e "
                   "odd-positions 5 assign-print 1 Sideways\n  end\nend\n",
                   lib)
                   .ok());
}

}  // namespace
}  // namespace jfeed::kb
