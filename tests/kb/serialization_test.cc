#include "kb/serialization.h"

#include <gtest/gtest.h>

#include "kb/patterns.h"

namespace jfeed::kb {
namespace {

TEST(SerializationTest, RoundTripSimplePattern) {
  const core::Pattern& original = PatternLibrary::Get().at("init-zero");
  std::string text = SerializePattern(original);
  auto parsed = ParsePattern(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << text;
  EXPECT_EQ(parsed->id, original.id);
  EXPECT_EQ(parsed->name, original.name);
  EXPECT_EQ(parsed->nodes.size(), original.nodes.size());
  EXPECT_EQ(parsed->Variables(), original.Variables());
  EXPECT_EQ(parsed->feedback_present, original.feedback_present);
  EXPECT_EQ(parsed->feedback_missing, original.feedback_missing);
}

TEST(SerializationTest, RoundTripIsAFixedPointForEveryLibraryPattern) {
  // Property: serialize(parse(serialize(p))) == serialize(p) for all 24.
  for (const auto& id : PatternLibrary::Get().ids()) {
    const core::Pattern& original = PatternLibrary::Get().at(id);
    std::string first = SerializePattern(original);
    auto parsed = ParsePattern(first);
    ASSERT_TRUE(parsed.ok()) << id << ": " << parsed.status().ToString();
    EXPECT_EQ(SerializePattern(*parsed), first) << id;
    EXPECT_TRUE(parsed->Validate().ok()) << id;
    EXPECT_EQ(parsed->nodes.size(), original.nodes.size()) << id;
    EXPECT_EQ(parsed->edges.size(), original.edges.size()) << id;
  }
}

TEST(SerializationTest, ParsedTemplatesStillMatch) {
  const core::Pattern& original = PatternLibrary::Get().at("odd-positions");
  auto parsed = ParsePattern(SerializePattern(original));
  ASSERT_TRUE(parsed.ok());
  // Node 3 is the bound check: exact on <, approximate on <=.
  EXPECT_TRUE(parsed->nodes[3].exact.Matches("i < a.length",
                                             {{"x", "i"}, {"s", "a"}}));
  EXPECT_FALSE(parsed->nodes[3].exact.Matches("i <= a.length",
                                              {{"x", "i"}, {"s", "a"}}));
  EXPECT_TRUE(parsed->nodes[3].approx.Matches("i <= a.length",
                                              {{"x", "i"}, {"s", "a"}}));
}

TEST(SerializationTest, ExportContainsAllTwentyFour) {
  std::string text = ExportPatternLibrary();
  auto all = ParsePatterns(text);
  ASSERT_TRUE(all.ok()) << all.status().ToString();
  EXPECT_EQ(all->size(), 24u);
}

TEST(SerializationTest, CommentsAndBlankLinesIgnored) {
  const char* kText = R"(
# a comment
pattern tiny
  name: Tiny test pattern
  var: v

  # node follows
  node Assign
    exact: v = 0
end
)";
  auto parsed = ParsePattern(kText);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->id, "tiny");
  EXPECT_EQ(parsed->nodes.size(), 1u);
}

TEST(SerializationTest, HandAuthoredPatternWorks) {
  const char* kText = R"(
pattern guarded-reset
  name: Reset under a guard
  var: g
  node Cond
    exact: g < 0
  node Assign
    exact: g = 0
    correct: {g} is reset to 0
  edge Ctrl 0 1
  present: You reset {g} when it goes negative
  missing: The guarded reset is missing
end
)";
  auto parsed = ParsePattern(kText);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->edges.size(), 1u);
  EXPECT_EQ(parsed->edges[0].type, pdg::EdgeType::kCtrl);
  EXPECT_TRUE(parsed->nodes[0].exact.Matches("g < 0", {{"g", "g"}}));
}

TEST(SerializationTest, ErrorsAreReportedWithLineNumbers) {
  auto missing_end = ParsePattern("pattern p\n  name: x\n");
  EXPECT_FALSE(missing_end.ok());
  EXPECT_NE(missing_end.status().message().find("missing 'end'"),
            std::string::npos);

  auto bad_type = ParsePattern("pattern p\n  node Banana\nend\n");
  EXPECT_FALSE(bad_type.ok());
  EXPECT_NE(bad_type.status().message().find("Banana"), std::string::npos);

  auto bad_edge = ParsePattern(
      "pattern p\n  node Assign\n    exact: x\n  edge Sideways 0 1\nend\n");
  EXPECT_FALSE(bad_edge.ok());

  auto orphan_field = ParsePattern("pattern p\n  exact: x\nend\n");
  EXPECT_FALSE(orphan_field.ok());
  EXPECT_NE(orphan_field.status().message().find("before any node"),
            std::string::npos);

  auto unknown = ParsePattern("pattern p\n  flavor: vanilla\nend\n");
  EXPECT_FALSE(unknown.ok());
  EXPECT_NE(unknown.status().message().find("unknown directive"),
            std::string::npos);
}

TEST(SerializationTest, EdgeOutOfRangeRejectedByValidation) {
  auto parsed = ParsePattern(
      "pattern p\n  node Assign\n    exact: x\n  edge Data 0 7\nend\n");
  EXPECT_FALSE(parsed.ok());
}

TEST(SerializationTest, InvalidTemplateRejected) {
  auto parsed = ParsePattern(
      "pattern p\n  var: v\n  node Assign\n    exact: v ([\nend\n");
  EXPECT_FALSE(parsed.ok());
}

}  // namespace
}  // namespace jfeed::kb
