#include "kb/assignments.h"

#include <set>

#include <gtest/gtest.h>

#include "core/feedback.h"
#include "javalang/parser.h"

namespace jfeed::kb {
namespace {

TEST(PatternLibraryTest, HasTwentyFourUniquePatterns) {
  // Paper, contributions: "Our knowledge base contains twenty four unique
  // patterns".
  EXPECT_EQ(PatternLibrary::Get().size(), 24u);
}

TEST(PatternLibraryTest, AllPatternsValidate) {
  for (const auto& id : PatternLibrary::Get().ids()) {
    const core::Pattern& p = PatternLibrary::Get().at(id);
    EXPECT_TRUE(p.Validate().ok()) << id;
    EXPECT_FALSE(p.name.empty()) << id;
    EXPECT_FALSE(p.feedback_present.empty()) << id;
    EXPECT_FALSE(p.feedback_missing.empty()) << id;
  }
}

TEST(PatternLibraryTest, PatternVariablesAreGloballyDisjoint) {
  // Definition 10 requires disjoint variable sets across patterns combined
  // in containment constraints; the library guarantees it globally.
  std::set<std::string> seen;
  for (const auto& id : PatternLibrary::Get().ids()) {
    for (const auto& var : PatternLibrary::Get().at(id).Variables()) {
      EXPECT_TRUE(seen.insert(var).second)
          << "variable '" << var << "' reused by pattern " << id;
    }
  }
}

TEST(KnowledgeBaseTest, HasTwelveAssignments) {
  EXPECT_EQ(KnowledgeBase::Get().size(), 12u);
}

TEST(KnowledgeBaseTest, EveryPatternIsUsedSomewhere) {
  std::set<std::string> used;
  const auto& kb = KnowledgeBase::Get();
  for (const auto& id : kb.assignment_ids()) {
    for (const auto& method : kb.assignment(id).spec.methods) {
      for (const auto& use : method.patterns) {
        used.insert(use.pattern->id);
      }
    }
  }
  for (const auto& id : PatternLibrary::Get().ids()) {
    EXPECT_TRUE(used.count(id) > 0) << "pattern never used: " << id;
  }
}

struct TableOneRow {
  const char* id;
  uint64_t s;
  int p;
  int c;
};

// Table I of the paper: columns S, P, C.
constexpr TableOneRow kTableOne[] = {
    {"assignment1", 640000, 6, 4},
    {"esc-LAB-3-P1-V1", 442368, 7, 5},
    {"esc-LAB-3-P2-V1", 7077888, 8, 13},
    {"esc-LAB-3-P2-V2", 144, 4, 5},
    {"esc-LAB-3-P3-V1", 10368, 7, 6},
    {"esc-LAB-3-P3-V2", 589824, 8, 10},
    {"esc-LAB-3-P4-V1", 13824, 7, 6},
    {"esc-LAB-3-P4-V2", 9437184, 9, 14},
    {"mitx-derivatives", 576, 3, 4},
    {"mitx-polynomials", 768, 4, 4},
    {"rit-all-g-medals", 559872, 9, 7},
    {"rit-medals-by-ath", 746496, 9, 7},
};

class AssignmentTest : public ::testing::TestWithParam<TableOneRow> {};

TEST_P(AssignmentTest, SearchSpaceSizeMatchesTableOne) {
  const Assignment& a = KnowledgeBase::Get().assignment(GetParam().id);
  EXPECT_TRUE(a.generator.Validate().ok())
      << a.generator.Validate().ToString();
  EXPECT_EQ(a.generator.SpaceSize(), GetParam().s);
  EXPECT_EQ(a.paper_space_size, GetParam().s);
}

TEST_P(AssignmentTest, PatternAndConstraintCountsMatchTableOne) {
  const Assignment& a = KnowledgeBase::Get().assignment(GetParam().id);
  EXPECT_EQ(a.spec.PatternCount(), static_cast<size_t>(GetParam().p));
  EXPECT_EQ(a.spec.ConstraintCount(), static_cast<size_t>(GetParam().c));
}

TEST_P(AssignmentTest, ReferenceParses) {
  const Assignment& a = KnowledgeBase::Get().assignment(GetParam().id);
  auto unit = java::Parse(a.Reference());
  ASSERT_TRUE(unit.ok()) << unit.status().ToString() << "\n" << a.Reference();
  EXPECT_NE(unit->FindMethod(a.suite.method), nullptr);
}

TEST_P(AssignmentTest, ReferencePassesItsOwnFunctionalSuite) {
  const Assignment& a = KnowledgeBase::Get().assignment(GetParam().id);
  auto unit = java::Parse(a.Reference());
  ASSERT_TRUE(unit.ok());
  auto expected = testing::ComputeExpectedOutputs(*unit, a.suite);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  auto verdict = testing::RunSuite(*unit, a.suite, *expected);
  EXPECT_TRUE(verdict.passed) << verdict.first_failure;
}

TEST_P(AssignmentTest, ReferenceGetsAllCorrectFeedback) {
  const Assignment& a = KnowledgeBase::Get().assignment(GetParam().id);
  auto fb = core::MatchSubmissionSource(a.spec, a.Reference());
  ASSERT_TRUE(fb.ok()) << fb.status().ToString();
  ASSERT_TRUE(fb->matched);
  EXPECT_TRUE(fb->AllCorrect())
      << "reference feedback not all-Correct for " << a.id << ":\n"
      << core::RenderFeedback(fb->comments) << "\nreference:\n"
      << a.Reference();
}

TEST_P(AssignmentTest, SomeErrorVariantGetsNegativeFeedback) {
  // The all-last-variants submission is maximally wrong; the technique must
  // not report it all-Correct (it may fail to parse patterns entirely).
  const Assignment& a = KnowledgeBase::Get().assignment(GetParam().id);
  uint64_t worst = a.generator.SpaceSize() - 1;
  auto fb = core::MatchSubmissionSource(a.spec, a.generator.Generate(worst));
  ASSERT_TRUE(fb.ok()) << fb.status().ToString();
  EXPECT_FALSE(fb->AllCorrect());
}

INSTANTIATE_TEST_SUITE_P(
    TableOne, AssignmentTest, ::testing::ValuesIn(kTableOne),
    [](const ::testing::TestParamInfo<TableOneRow>& info) {
      std::string name = info.param.id;
      for (char& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(DiscrepancyClassTest, OddStartAtOneIsFunctionallyCorrectButFlagged) {
  // Paper Sec. VI-B, Assignment 1: "Seventeen submissions initialize the
  // index to access arrays as i = 1 ... however, our technique suggests
  // i = 0" — functionally equivalent for the odd accumulation, flagged by
  // the pattern.
  const Assignment& a = KnowledgeBase::Get().assignment("assignment1");
  // Site order: init_odd, init_even, odd_start, ... — odd_start is site 2.
  std::vector<size_t> choice(a.generator.sites().size(), 0);
  choice[2] = 1;  // odd_start = "1".
  std::string source = a.generator.Instantiate(choice);

  auto unit = java::Parse(source);
  ASSERT_TRUE(unit.ok());
  auto reference = java::Parse(a.Reference());
  ASSERT_TRUE(reference.ok());
  auto expected = testing::ComputeExpectedOutputs(*reference, a.suite);
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(testing::RunSuite(*unit, a.suite, *expected).passed);

  auto fb = core::MatchSubmissionSource(a.spec, source);
  ASSERT_TRUE(fb.ok());
  EXPECT_FALSE(fb->AllCorrect());
}

TEST(DiscrepancyClassTest, SwappedPrintOrderFailsTestsButFeedbackIsPositive) {
  // Paper Sec. VI-B: "Four submissions print to console in a different
  // order than expected by the functional tests, however, our technique is
  // independent of the order and provides correct feedback."
  const Assignment& a = KnowledgeBase::Get().assignment("assignment1");
  std::vector<size_t> choice(a.generator.sites().size(), 0);
  choice[12] = 1;  // print_first = "e".
  choice[13] = 1;  // print_second = "o".
  std::string source = a.generator.Instantiate(choice);

  auto unit = java::Parse(source);
  ASSERT_TRUE(unit.ok());
  auto reference = java::Parse(a.Reference());
  ASSERT_TRUE(reference.ok());
  auto expected = testing::ComputeExpectedOutputs(*reference, a.suite);
  ASSERT_TRUE(expected.ok());
  EXPECT_FALSE(testing::RunSuite(*unit, a.suite, *expected).passed);

  auto fb = core::MatchSubmissionSource(a.spec, source);
  ASSERT_TRUE(fb.ok());
  EXPECT_TRUE(fb->AllCorrect()) << core::RenderFeedback(fb->comments);
}

TEST(DiscrepancyClassTest, DuplicatedFieldPositionIsCaughtSemantically) {
  // Fig. 7's class: reading two fields with the same position condition is
  // functionally invisible (both sink into e) but semantically wrong; the
  // per-position containment constraints flag it.
  const Assignment& a = KnowledgeBase::Get().assignment("rit-all-g-medals");
  std::vector<size_t> choice(a.generator.sites().size(), 0);
  choice[1] = 1;  // fn_cond = "i % 5 == 2" (duplicates the last-name slot).
  std::string source = a.generator.Instantiate(choice);

  auto unit = java::Parse(source);
  ASSERT_TRUE(unit.ok());
  auto reference = java::Parse(a.Reference());
  ASSERT_TRUE(reference.ok());
  auto expected = testing::ComputeExpectedOutputs(*reference, a.suite);
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(testing::RunSuite(*unit, a.suite, *expected).passed);

  auto fb = core::MatchSubmissionSource(a.spec, source);
  ASSERT_TRUE(fb.ok());
  EXPECT_FALSE(fb->AllCorrect());
}

TEST(OlympicsFileTest, DeterministicAndWellFormed) {
  std::string f1 = testing::GenerateOlympicsFile(10, 42);
  std::string f2 = testing::GenerateOlympicsFile(10, 42);
  EXPECT_EQ(f1, f2);
  std::string f3 = testing::GenerateOlympicsFile(10, 43);
  EXPECT_NE(f1, f3);
  // 5 tokens per record.
  auto tokens = interp::TokenizeScannerInput(f1);
  EXPECT_EQ(tokens.size(), 50u);
  for (size_t i = 4; i < tokens.size(); i += 5) {
    EXPECT_EQ(tokens[i], "#");
  }
  for (size_t i = 2; i < tokens.size(); i += 5) {
    int medal = std::stoi(tokens[i]);
    EXPECT_GE(medal, 1);
    EXPECT_LE(medal, 3);
  }
}

}  // namespace
}  // namespace jfeed::kb
