// Tests for the Sec. VII pattern-variation extension: the i += 2 access
// strategy the paper lists as an explicit future-work example.

#include "kb/extensions.h"

#include <gtest/gtest.h>

#include "core/feedback.h"
#include "core/submission_matcher.h"
#include "javalang/parser.h"
#include "kb/assignments.h"
#include "testing/functional.h"

namespace jfeed::kb {
namespace {

// A correct Assignment 1 submission using the step-by-two strategy — the
// paper's third discrepancy class ("they update twice the value of i").
constexpr const char* kStepByTwo = R"(
void assignment1(int[] a) {
  int o = 0;
  int e = 1;
  for (int i = 1; i < a.length; i += 2)
    o += a[i];
  for (int j = 0; j < a.length; j += 2)
    e *= a[j];
  System.out.println(o);
  System.out.println(e);
})";

TEST(ExtensionsTest, VariationPatternsValidate) {
  const auto& ext = ExtensionLibrary::Get();
  EXPECT_TRUE(ext.even_positions_step().Validate().ok());
  EXPECT_TRUE(ext.odd_positions_step().Validate().ok());
  EXPECT_TRUE(ext.cond_accum_mul_direct().Validate().ok());
  EXPECT_TRUE(ext.cond_accum_add_direct().Validate().ok());
}

TEST(ExtensionsTest, StepSubmissionIsFunctionallyCorrect) {
  const auto& assignment = KnowledgeBase::Get().assignment("assignment1");
  auto unit = java::Parse(kStepByTwo);
  ASSERT_TRUE(unit.ok());
  auto reference = java::Parse(assignment.Reference());
  ASSERT_TRUE(reference.ok());
  auto expected = testing::ComputeExpectedOutputs(*reference,
                                                  assignment.suite);
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(testing::RunSuite(*unit, assignment.suite, *expected).passed);
}

TEST(ExtensionsTest, BaseSpecRejectsStepStrategy) {
  // Without variations this is the paper's documented discrepancy: correct
  // functionally, flagged by the patterns.
  const auto& assignment = KnowledgeBase::Get().assignment("assignment1");
  auto feedback = core::MatchSubmissionSource(assignment.spec, kStepByTwo);
  ASSERT_TRUE(feedback.ok());
  EXPECT_FALSE(feedback->AllCorrect());
}

TEST(ExtensionsTest, VariationsAcceptStepStrategy) {
  core::AssignmentSpec spec =
      KnowledgeBase::Get().assignment("assignment1").spec;
  ExtensionLibrary::Get().AttachAssignment1Variations(&spec);
  auto feedback = core::MatchSubmissionSource(spec, kStepByTwo);
  ASSERT_TRUE(feedback.ok()) << feedback.status().ToString();
  EXPECT_TRUE(feedback->AllCorrect())
      << core::RenderFeedback(feedback->comments);
  // The accepted comments mention the variation.
  bool variation_mentioned = false;
  for (const auto& c : feedback->comments) {
    if (c.message.find("accepted variation") != std::string::npos) {
      variation_mentioned = true;
    }
  }
  EXPECT_TRUE(variation_mentioned);
}

TEST(ExtensionsTest, VariationsStillAcceptThePrimaryStrategy) {
  core::AssignmentSpec spec =
      KnowledgeBase::Get().assignment("assignment1").spec;
  ExtensionLibrary::Get().AttachAssignment1Variations(&spec);
  const auto& assignment = KnowledgeBase::Get().assignment("assignment1");
  auto feedback =
      core::MatchSubmissionSource(spec, assignment.Reference());
  ASSERT_TRUE(feedback.ok());
  EXPECT_TRUE(feedback->AllCorrect())
      << core::RenderFeedback(feedback->comments);
  // The primary realization must not be reported as a variation.
  for (const auto& c : feedback->comments) {
    EXPECT_EQ(c.message.find("accepted variation"), std::string::npos);
  }
}

TEST(ExtensionsTest, VariationsStillRejectWrongSubmissions) {
  core::AssignmentSpec spec =
      KnowledgeBase::Get().assignment("assignment1").spec;
  ExtensionLibrary::Get().AttachAssignment1Variations(&spec);
  // Steps by two but starts odd access at 0 (sums even positions).
  const char* kWrong = R"(
      void assignment1(int[] a) {
        int o = 0;
        int e = 1;
        for (int i = 0; i < a.length; i += 2)
          o += a[i];
        for (int j = 0; j < a.length; j += 2)
          e *= a[j];
        System.out.println(o);
        System.out.println(e);
      })";
  auto feedback = core::MatchSubmissionSource(spec, kWrong);
  ASSERT_TRUE(feedback.ok());
  EXPECT_FALSE(feedback->AllCorrect());
}

TEST(ExtensionsTest, RemappedEmbeddingsSatisfyConstraints) {
  // The equality constraint (even-positions.5 == cond-accum-mul.3) must
  // hold through the slot re-mapping of both variations.
  core::AssignmentSpec spec =
      KnowledgeBase::Get().assignment("assignment1").spec;
  ExtensionLibrary::Get().AttachAssignment1Variations(&spec);
  auto feedback = core::MatchSubmissionSource(spec, kStepByTwo);
  ASSERT_TRUE(feedback.ok());
  for (const auto& c : feedback->comments) {
    if (c.source_id == "even-access-is-multiplied" ||
        c.source_id == "odd-access-is-summed") {
      EXPECT_EQ(c.kind, core::FeedbackKind::kCorrect) << c.source_id;
    }
  }
}

}  // namespace
}  // namespace jfeed::kb
