#include "baselines/clara_lite.h"

#include <gtest/gtest.h>

#include "javalang/parser.h"

namespace jfeed::baselines {
namespace {

using interp::Value;

java::CompilationUnit ParseOrDie(const std::string& source) {
  auto unit = java::Parse(source);
  EXPECT_TRUE(unit.ok()) << unit.status().ToString();
  return std::move(*unit);
}

// Fig. 8a — the reference solution (single loop, both accumulators).
constexpr const char* kFigure8a = R"(
void assignment1(int[] a) {
  int o = 0;
  int e = 1;
  int i = 0;
  while (i < a.length) {
    if (i % 2 == 1)
      o += a[i];
    if (i % 2 == 0)
      e *= a[i];
    i++;
  }
  System.out.print(e);
  System.out.print(o);
})";

// Fig. 8b — a correct submission with two loops (different trace shape).
constexpr const char* kFigure8b = R"(
void assignment1(int[] a) {
  int o = 0;
  int i = 0;
  while (i < a.length) {
    if (i % 2 == 1)
      o += a[i];
    i++;
  }
  i = 0;
  int e = 1;
  while (i < a.length) {
    if (i % 2 == 0)
      e *= a[i];
    i++;
  }
  System.out.print(e);
  System.out.print(o);
})";

std::vector<std::vector<Value>> Inputs() {
  return {{Value::IntArray({3, 5, 2, 4})}, {Value::IntArray({1, 2, 3})}};
}

TEST(ClaraLiteTest, TracesRecordEveryAssignment) {
  auto unit = ParseOrDie("void f(int n) { int s = 0; for (int i = 1; "
                         "i <= n; i++) s += i; System.out.println(s); }");
  auto traces = ClaraLite::CollectTraces(unit, "f", {{Value::Int(3)}});
  ASSERT_TRUE(traces.ok()) << traces.status().ToString();
  // s: 0, 1, 3, 6 — initialization plus three updates.
  EXPECT_EQ(traces->at("s"),
            (std::vector<std::string>{"0", "1", "3", "6"}));
  // i: 1, 2, 3, 4.
  EXPECT_EQ(traces->at("i"),
            (std::vector<std::string>{"1", "2", "3", "4"}));
  EXPECT_EQ(traces->at("<out>"), (std::vector<std::string>{"6\n"}));
}

TEST(ClaraLiteTest, IdenticalProgramsMatch) {
  auto unit = ParseOrDie(kFigure8a);
  auto t1 = ClaraLite::CollectTraces(unit, "assignment1", Inputs());
  ASSERT_TRUE(t1.ok());
  auto result = ClaraLite::Compare(*t1, *t1);
  EXPECT_TRUE(result.matched);
  EXPECT_EQ(result.unmatched_variables, 0);
}

TEST(ClaraLiteTest, RenamedVariablesStillMatch) {
  auto a = ParseOrDie("void f(int n) { int s = 0; for (int i = 1; i <= n; "
                      "i++) s += i; System.out.println(s); }");
  auto b = ParseOrDie("void f(int n) { int total = 0; for (int k = 1; "
                      "k <= n; k++) total += k; System.out.println(total); }");
  auto ta = ClaraLite::CollectTraces(a, "f", {{Value::Int(5)}});
  auto tb = ClaraLite::CollectTraces(b, "f", {{Value::Int(5)}});
  ASSERT_TRUE(ta.ok());
  ASSERT_TRUE(tb.ok());
  EXPECT_TRUE(ClaraLite::Compare(*ta, *tb).matched);
}

TEST(ClaraLiteTest, Figure8PairDoesNotMatch) {
  // The paper's Sec. VI-C example: both programs are functionally similar
  // but the two-loop version produces different whole traces, so CLARA
  // needs a separate reference for it. Our pattern matcher accepts both.
  auto ref = ParseOrDie(kFigure8a);
  auto sub = ParseOrDie(kFigure8b);
  auto tr = ClaraLite::CollectTraces(ref, "assignment1", Inputs());
  auto ts = ClaraLite::CollectTraces(sub, "assignment1", Inputs());
  ASSERT_TRUE(tr.ok());
  ASSERT_TRUE(ts.ok());
  auto result = ClaraLite::Compare(*tr, *ts);
  EXPECT_FALSE(result.matched);
  EXPECT_GT(result.unmatched_variables, 0);
}

TEST(ClaraLiteTest, WrongOutputDoesNotMatch) {
  auto a = ParseOrDie("void f(int n) { System.out.println(n); }");
  auto b = ParseOrDie("void f(int n) { System.out.println(n + 1); }");
  auto ta = ClaraLite::CollectTraces(a, "f", {{Value::Int(5)}});
  auto tb = ClaraLite::CollectTraces(b, "f", {{Value::Int(5)}});
  ASSERT_TRUE(ta.ok());
  ASSERT_TRUE(tb.ok());
  EXPECT_FALSE(ClaraLite::Compare(*ta, *tb).matched);
}

TEST(ClaraLiteTest, TraceBudgetExhaustsOnLargeInputs) {
  // The paper: "CLARA ... outputs a timeout error when k = 100,000, when
  // running such functional test takes milliseconds."
  auto unit = ParseOrDie("void f(int k) { int i = 0; int s = 0; while "
                         "(i < k) { s += i; i++; } System.out.println(s); }");
  size_t events = 0;
  auto traces = ClaraLite::CollectTraces(unit, "f", {{Value::Int(100000)}},
                                         {}, /*max_trace_events=*/50'000,
                                         &events);
  EXPECT_FALSE(traces.ok());
  EXPECT_EQ(traces.status().code(), StatusCode::kTimeout);
  EXPECT_GE(events, 50'000u);
}

TEST(ClaraLiteTest, ClusteringGroupsTraceEquivalentPrograms) {
  auto a = ParseOrDie(kFigure8a);
  auto b = ParseOrDie(kFigure8b);
  auto c = ParseOrDie(kFigure8a);  // Identical to a.
  auto clustering =
      ClaraLite::Cluster({&a, &b, &c}, "assignment1", Inputs());
  ASSERT_TRUE(clustering.ok()) << clustering.status().ToString();
  // a and c share a cluster; b is alone — two references needed where the
  // pattern approach needs none.
  ASSERT_EQ(clustering->clusters.size(), 2u);
  EXPECT_EQ(clustering->clusters[0], (std::vector<size_t>{0, 2}));
  EXPECT_EQ(clustering->clusters[1], (std::vector<size_t>{1}));
}

TEST(ClaraLiteTest, RuntimeErrorPropagates) {
  auto unit = ParseOrDie("void f(int n) { int[] a = new int[1]; "
                         "System.out.println(a[7]); }");
  auto traces = ClaraLite::CollectTraces(unit, "f", {{Value::Int(1)}});
  EXPECT_FALSE(traces.ok());
  EXPECT_EQ(traces.status().code(), StatusCode::kExecutionError);
}

}  // namespace
}  // namespace jfeed::baselines
