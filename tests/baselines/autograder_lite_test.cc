#include "baselines/autograder_lite.h"

#include <gtest/gtest.h>

#include "interp/value.h"

namespace jfeed::baselines {
namespace {

using interp::Value;
using synth::SubmissionTemplate;

/// A small factorial-style error model (4 sites, variant 0 correct).
SubmissionTemplate FactorialModel() {
  return SubmissionTemplate(
      "void f(int n) {\n"
      "  int ${init_p};\n"
      "  for (int i = ${start}; ${bound}; i++)\n"
      "    ${op};\n"
      "  System.out.println(p);\n"
      "}\n",
      {
          {"init_p", {"p = 1", "p = 0", "p = 2"}},
          {"start", {"1", "0", "2"}},
          {"bound", {"i <= n", "i < n", "i <= n + 1"}},
          {"op", {"p *= i", "p += i", "p *= i + 1"}},
      });
}

testing::FunctionalSuite FactorialSuite() {
  testing::FunctionalSuite suite;
  suite.method = "f";
  suite.inputs = {{Value::Int(1)}, {Value::Int(4)}, {Value::Int(6)}};
  return suite;
}

TEST(AutoGraderLiteTest, CorrectSubmissionNeedsNoRepair) {
  SubmissionTemplate model = FactorialModel();
  testing::FunctionalSuite suite = FactorialSuite();
  AutoGraderLite grader(model, suite);
  auto r = grader.Repair({0, 0, 0, 0});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->repaired);
  EXPECT_EQ(r->repairs, 0);
}

TEST(AutoGraderLiteTest, SingleErrorRepairedWithOneRule) {
  SubmissionTemplate model = FactorialModel();
  testing::FunctionalSuite suite = FactorialSuite();
  AutoGraderLite grader(model, suite);
  auto r = grader.Repair({1, 0, 0, 0});  // p = 0 instead of p = 1.
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->repaired);
  EXPECT_EQ(r->repairs, 1);
  ASSERT_EQ(r->repair_feedback.size(), 1u);
  EXPECT_EQ(r->repair_feedback[0], "change \"p = 0\" to \"p = 1\"");
}

TEST(AutoGraderLiteTest, MultipleErrorsNeedMultipleRules) {
  SubmissionTemplate model = FactorialModel();
  testing::FunctionalSuite suite = FactorialSuite();
  AutoGraderLite grader(model, suite);
  // p = 0 with p += i computes a sum; no single rule application restores
  // the factorial, but fixing both the initialization and the operator does.
  auto r = grader.Repair({1, 0, 0, 1});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->repaired);
  EXPECT_EQ(r->repairs, 2);
  EXPECT_EQ(r->repair_feedback.size(), 2u);
}

TEST(AutoGraderLiteTest, FunctionallyEquivalentErrorNeedsNoRepair) {
  // start = 0 multiplies by an extra... no: p *= i with i = 0 zeroes the
  // product, so use a model where a deviation is output-equivalent.
  SubmissionTemplate model(
      "void f(int n) {\n"
      "  int s = 0;\n"
      "  for (int i = ${start}; i <= n; i++)\n"
      "    s += i;\n"
      "  System.out.println(s);\n"
      "}\n",
      {{"start", {"1", "0", "2"}}});
  testing::FunctionalSuite suite;
  suite.method = "f";
  suite.inputs = {{Value::Int(3)}, {Value::Int(7)}};
  AutoGraderLite grader(model, suite);
  // Summing from 0 is functionally identical to summing from 1.
  auto r = grader.Repair({1});
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->repaired);
  EXPECT_EQ(r->repairs, 0);
}

TEST(AutoGraderLiteTest, SearchCostGrowsCombinatorially) {
  // The paper's scalability claim: candidates tried explodes with depth.
  SubmissionTemplate model = FactorialModel();
  testing::FunctionalSuite suite = FactorialSuite();
  AutoGraderLite grader(model, suite);
  auto one = grader.Repair({1, 0, 0, 0});
  auto three = grader.Repair({1, 2, 1, 2});
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(three.ok());
  ASSERT_TRUE(one->repaired);
  ASSERT_TRUE(three->repaired);
  EXPECT_GT(three->candidates_tried, 4 * one->candidates_tried);
}

TEST(AutoGraderLiteTest, BudgetExhaustionReported) {
  SubmissionTemplate model = FactorialModel();
  testing::FunctionalSuite suite = FactorialSuite();
  AutoGraderLite grader(model, suite);
  auto r = grader.Repair({1, 2, 1, 2}, /*max_repairs=*/4,
                         /*max_candidates=*/3);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->repaired);
  EXPECT_TRUE(r->budget_exhausted);
}

TEST(AutoGraderLiteTest, DepthLimitStopsSearch) {
  SubmissionTemplate model = FactorialModel();
  testing::FunctionalSuite suite = FactorialSuite();
  AutoGraderLite grader(model, suite);
  auto r = grader.Repair({1, 2, 1, 2}, /*max_repairs=*/1);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->repaired);
}

}  // namespace
}  // namespace jfeed::baselines
