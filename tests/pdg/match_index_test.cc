#include "pdg/match_index.h"

#include <gtest/gtest.h>

#include <deque>
#include <string>
#include <utility>

#include "javalang/parser.h"
#include "pdg/epdg.h"

namespace jfeed::pdg {
namespace {

Epdg BuildFrom(const std::string& source) {
  // EPDG nodes borrow statement ASTs from the compilation unit, so the
  // parsed units must outlive every graph handed back to a test.
  static auto* units = new std::deque<java::CompilationUnit>();
  auto unit = java::Parse(source);
  EXPECT_TRUE(unit.ok()) << unit.status().ToString();
  units->push_back(std::move(*unit));
  auto g = BuildEpdg(units->back().methods[0]);
  EXPECT_TRUE(g.ok()) << g.status().ToString();
  return std::move(*g);
}

graph::NodeId FindNode(const Epdg& g, const std::string& content) {
  for (size_t i = 0; i < g.NodeCount(); ++i) {
    auto id = static_cast<graph::NodeId>(i);
    if (g.NodeAt(id).content == content) return id;
  }
  ADD_FAILURE() << "node not found: " << content;
  return graph::kInvalidNode;
}

TEST(MatchIndexTest, BucketsPartitionNodesByTypeInAscendingIdOrder) {
  Epdg g = BuildFrom(
      "void f(int n) { int s = 0; for (int i = 0; i < n; i = i + 1) "
      "{ s = s + i; } System.out.println(s); }");
  MatchIndex index(g);

  EXPECT_EQ(index.NodeCount(), g.NodeCount());
  size_t bucketed = 0;
  for (int t = 0; t < DegreeSignature::kNodeTypes; ++t) {
    const auto& bucket = index.Bucket(static_cast<NodeType>(t));
    bucketed += bucket.size();
    for (size_t i = 0; i < bucket.size(); ++i) {
      EXPECT_EQ(static_cast<int>(g.NodeAt(bucket[i]).type), t);
      if (i > 0) {
        EXPECT_LT(bucket[i - 1], bucket[i]);
      }
    }
  }
  EXPECT_EQ(bucketed, g.NodeCount());
  for (size_t i = 0; i < index.AllNodes().size(); ++i) {
    EXPECT_EQ(index.AllNodes()[i], static_cast<graph::NodeId>(i));
  }
}

TEST(MatchIndexTest, SignaturesCountEdgesPerDirectionTypeAndNeighbor) {
  // "int x" flows into the return: x-decl has one data-out edge to a
  // kReturn neighbor, the return has two data-in edges from kDecl.
  Epdg g = BuildFrom("int add(int x, int y) { return x + y; }");
  MatchIndex index(g);
  graph::NodeId decl = FindNode(g, "int x");
  graph::NodeId ret = FindNode(g, "return x + y");

  const DegreeSignature& decl_sig = index.Signature(decl);
  const int data = static_cast<int>(EdgeType::kData);
  const int ret_type = static_cast<int>(NodeType::kReturn);
  const int decl_type = static_cast<int>(NodeType::kDecl);
  EXPECT_EQ(decl_sig.total[0][data], 1);  // one outgoing data edge
  EXPECT_EQ(decl_sig.typed[0][data][ret_type], 1);
  EXPECT_EQ(decl_sig.total[1][data], 0);  // nothing flows into a parameter

  const DegreeSignature& ret_sig = index.Signature(ret);
  EXPECT_EQ(ret_sig.total[1][data], 2);  // both parameters flow in
  EXPECT_EQ(ret_sig.typed[1][data][decl_type], 2);
  EXPECT_EQ(ret_sig.total[0][data], 0);
}

TEST(MatchIndexTest, CoversIsComponentWise) {
  DegreeSignature have;
  have.AddEdge(0, 0, 2);
  have.AddEdge(0, 0, 3);
  have.AddEdge(1, 1, -1);

  DegreeSignature need;
  EXPECT_TRUE(have.Covers(need));  // empty requirement always covered

  need.AddEdge(0, 0, 2);
  EXPECT_TRUE(have.Covers(need));

  need.AddEdge(1, 1, -1);
  EXPECT_TRUE(have.Covers(need));

  // A second (0,0) edge to the *same* typed neighbor exceeds what `have`
  // holds for that component even though the totals still cover.
  DegreeSignature over;
  over.AddEdge(0, 0, 2);
  over.AddEdge(0, 0, 2);
  EXPECT_FALSE(have.Covers(over));

  // More total edges than available in a direction/type pair.
  DegreeSignature too_many;
  too_many.AddEdge(1, 1, -1);
  too_many.AddEdge(1, 1, -1);
  EXPECT_FALSE(have.Covers(too_many));
}

TEST(MatchIndexTest, HashedHasEdgeAgreesWithAdjacencyScan) {
  Epdg g = BuildFrom(
      "void f(int n) { int s = 0; for (int i = 0; i < n; i = i + 1) "
      "{ if (i % 2 == 1) { s = s + i; } } System.out.println(s); }");
  // Cross-check the CSR row probe against a scan of the flat edge list for
  // every (source, target, type) triple.
  for (size_t s = 0; s < g.NodeCount(); ++s) {
    for (size_t t = 0; t < g.NodeCount(); ++t) {
      for (EdgeType type : {EdgeType::kCtrl, EdgeType::kData}) {
        bool scan = false;
        for (const Epdg::Edge& e : g.edges()) {
          if (e.source == static_cast<int>(s) &&
              e.target == static_cast<int>(t) && e.type == type) scan = true;
        }
        EXPECT_EQ(g.HasEdge(static_cast<int>(s), static_cast<int>(t), type),
                  scan)
            << s << "->" << t;
      }
    }
  }
}

}  // namespace
}  // namespace jfeed::pdg
