// Property/fuzz tests for the EPDG builder: random programs from a small
// statement grammar, checked against the structural invariants of
// Definitions 1-3. A seeded xorshift generator keeps runs reproducible.

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "javalang/parser.h"
#include "javalang/printer.h"
#include "pdg/epdg.h"

namespace jfeed::pdg {
namespace {

class ProgramFuzzer {
 public:
  explicit ProgramFuzzer(uint64_t seed) : state_(seed * 2654435761u + 1) {}

  std::string Generate() {
    vars_ = {"a", "b", "c"};
    std::string body;
    int statements = 2 + static_cast<int>(Next() % 6);
    for (int i = 0; i < statements; ++i) {
      body += Statement(2);
    }
    return "void fuzz(int a, int b, int c) {\n" + body + "}\n";
  }

 private:
  uint64_t Next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_;
  }

  std::string Var() { return vars_[Next() % vars_.size()]; }

  std::string Expr() {
    switch (Next() % 4) {
      case 0: return Var();
      case 1: return std::to_string(Next() % 10);
      case 2: return Var() + " + " + Var();
      default: return Var() + " % " + std::to_string(1 + Next() % 9);
    }
  }

  std::string Cond() {
    static const char* kOps[] = {"<", "<=", ">", ">=", "==", "!="};
    return Var() + " " + kOps[Next() % 6] + " " + Expr();
  }

  std::string Statement(int depth) {
    int kind = static_cast<int>(Next() % (depth > 0 ? 7 : 4));
    switch (kind) {
      case 0:
        return "  " + Var() + " = " + Expr() + ";\n";
      case 1:
        return "  " + Var() + " += " + Expr() + ";\n";
      case 2:
        return "  " + Var() + "++;\n";
      case 3: {
        std::string name = "v" + std::to_string(counter_++);
        vars_.push_back(name);
        return "  int " + name + " = " + Expr() + ";\n";
      }
      case 4:
        return "  if (" + Cond() + ") {\n  " + Statement(depth - 1) +
               "  }\n";
      case 5:
        return "  if (" + Cond() + ") {\n  " + Statement(depth - 1) +
               "  } else {\n  " + Statement(depth - 1) + "  }\n";
      default:
        return "  for (int i" + std::to_string(counter_) + " = 0; i" +
               std::to_string(counter_) + " < " + std::to_string(
                   1 + Next() % 5) + "; i" + std::to_string(counter_++) +
               "++) {\n  " + Statement(depth - 1) + "  }\n";
    }
  }

  uint64_t state_;
  std::vector<std::string> vars_;
  int counter_ = 0;
};

class EpdgFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(EpdgFuzzTest, InvariantsHoldOnRandomPrograms) {
  ProgramFuzzer fuzzer(static_cast<uint64_t>(GetParam()));
  std::string source = fuzzer.Generate();
  auto unit = java::Parse(source);
  ASSERT_TRUE(unit.ok()) << unit.status().ToString() << "\n" << source;
  auto graph = BuildEpdg(unit->methods[0]);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString() << "\n" << source;

  for (const Epdg::Edge& edge : graph->edges()) {
    const Node src = graph->NodeAt(edge.source);
    const Node dst = graph->NodeAt(edge.target);
    // Invariant 1: Ctrl edges only leave Cond nodes (Definition 2).
    if (edge.type == EdgeType::kCtrl) {
      EXPECT_EQ(src.type, NodeType::kCond) << source;
    } else {
      // Invariant 2: Data edges connect a definition to a reader.
      bool def_use = false;
      std::set<std::string> dst_reads = dst.ReadNames();
      for (const auto& w : src.WriteNames()) def_use |= dst_reads.count(w) > 0;
      EXPECT_TRUE(def_use) << src.content << " -> " << dst.content << "\n"
                           << source;
    }
    // Invariant 3: no self loops.
    EXPECT_NE(edge.source, edge.target) << source;
  }
  // Invariant 4: parameters come first as Decl nodes.
  ASSERT_GE(graph->NodeCount(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(graph->NodeAt(i).type, NodeType::kDecl);
  }
  // Invariant 5: the mentioned-variable view is always reads ∪ writes.
  for (size_t i = 0; i < graph->NodeCount(); ++i) {
    const Node node = graph->NodeAt(static_cast<graph::NodeId>(i));
    std::set<std::string> expected = node.ReadNames();
    std::set<std::string> writes = node.WriteNames();
    expected.insert(writes.begin(), writes.end());
    EXPECT_EQ(node.VarNames(), expected) << node.content;
  }
}

TEST_P(EpdgFuzzTest, BuildIsDeterministic) {
  ProgramFuzzer fuzzer(static_cast<uint64_t>(GetParam()) + 1000);
  std::string source = fuzzer.Generate();
  auto unit = java::Parse(source);
  ASSERT_TRUE(unit.ok());
  auto first = BuildEpdg(unit->methods[0]);
  auto second = BuildEpdg(unit->methods[0]);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->ToDot(), second->ToDot());
}

TEST_P(EpdgFuzzTest, PrettyPrintedProgramYieldsSameGraph) {
  // Building from the pretty-printed source must give an identical EPDG —
  // the graph depends on the program, not its layout.
  ProgramFuzzer fuzzer(static_cast<uint64_t>(GetParam()) + 2000);
  std::string source = fuzzer.Generate();
  auto unit = java::Parse(source);
  ASSERT_TRUE(unit.ok());
  auto reparsed = java::Parse(java::UnitToString(*unit));
  ASSERT_TRUE(reparsed.ok()) << java::UnitToString(*unit);
  auto first = BuildEpdg(unit->methods[0]);
  auto second = BuildEpdg(reparsed->methods[0]);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->ToDot(), second->ToDot());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EpdgFuzzTest, ::testing::Range(1, 41));

}  // namespace
}  // namespace jfeed::pdg
