#include <gtest/gtest.h>

#include <deque>

#include "javalang/parser.h"
#include "pdg/epdg.h"

namespace jfeed::pdg {
namespace {

Epdg BuildFrom(const std::string& source) {
  // EPDG nodes borrow statement ASTs from the compilation unit, so the
  // parsed units must outlive every graph handed back to a test.
  static auto* units = new std::deque<java::CompilationUnit>();
  auto unit = java::Parse(source);
  EXPECT_TRUE(unit.ok()) << unit.status().ToString();
  units->push_back(std::move(*unit));
  auto g = BuildEpdg(units->back().methods[0]);
  EXPECT_TRUE(g.ok()) << g.status().ToString();
  return std::move(*g);
}

graph::NodeId FindNode(const Epdg& g, const std::string& content) {
  for (size_t i = 0; i < g.NodeCount(); ++i) {
    auto id = static_cast<graph::NodeId>(i);
    if (g.NodeAt(id).content == content) return id;
  }
  ADD_FAILURE() << "node not found: " << content;
  return graph::kInvalidNode;
}

TEST(EpdgBuilderTest, ParametersBecomeDeclNodes) {
  Epdg g = BuildFrom("int add(int x, int y) { return x + y; }");
  EXPECT_EQ(g.NodeCount(), 3u);
  EXPECT_EQ(g.NodeAt(0).type, NodeType::kDecl);
  EXPECT_EQ(g.NodeAt(0).content, "int x");
  EXPECT_EQ(g.NodeAt(1).type, NodeType::kDecl);
  graph::NodeId ret = FindNode(g, "return x + y");
  EXPECT_EQ(g.NodeAt(ret).type, NodeType::kReturn);
  EXPECT_TRUE(g.HasEdge(0, ret, EdgeType::kData));
  EXPECT_TRUE(g.HasEdge(1, ret, EdgeType::kData));
}

TEST(EpdgBuilderTest, MultiDeclaratorSplitsIntoNodes) {
  Epdg g = BuildFrom("void f() { int o = 0, e = 1; }");
  EXPECT_EQ(g.NodeCount(), 2u);
  EXPECT_EQ(g.NodeAt(FindNode(g, "int o = 0")).type, NodeType::kAssign);
  EXPECT_EQ(g.NodeAt(FindNode(g, "int e = 1")).type, NodeType::kAssign);
}

TEST(EpdgBuilderTest, DeclWithoutInitStillDefines) {
  Epdg g = BuildFrom("void f() { int x; x = 3; int y = x; }");
  graph::NodeId decl = FindNode(g, "int x");
  graph::NodeId assign = FindNode(g, "x = 3");
  graph::NodeId use = FindNode(g, "int y = x");
  // The plain assignment kills the declaration definition.
  EXPECT_TRUE(g.HasEdge(assign, use, EdgeType::kData));
  EXPECT_FALSE(g.HasEdge(decl, use, EdgeType::kData));
}

TEST(EpdgBuilderTest, IfWithElseMergesBothBranches) {
  Epdg g = BuildFrom(
      "void f(int c) { int x = 0; if (c > 0) x = 1; else x = 2; "
      "System.out.println(x); }");
  graph::NodeId then_def = FindNode(g, "x = 1");
  graph::NodeId else_def = FindNode(g, "x = 2");
  graph::NodeId init = FindNode(g, "int x = 0");
  graph::NodeId print = FindNode(g, "System.out.println(x)");
  EXPECT_TRUE(g.HasEdge(then_def, print, EdgeType::kData));
  EXPECT_TRUE(g.HasEdge(else_def, print, EdgeType::kData));
  // Both branches reassign x, so the initialization cannot reach the print.
  EXPECT_FALSE(g.HasEdge(init, print, EdgeType::kData));
}

TEST(EpdgBuilderTest, IfWithoutElseAssumesConditionFulfilled) {
  // Sec. III-A: Data edges are not generated "considering that loop or if
  // conditions may not be fulfilled" — the branch definition wins.
  Epdg g = BuildFrom(
      "void f(int c) { int x = 0; if (c > 0) x = 1; "
      "System.out.println(x); }");
  graph::NodeId init = FindNode(g, "int x = 0");
  graph::NodeId branch_def = FindNode(g, "x = 1");
  graph::NodeId print = FindNode(g, "System.out.println(x)");
  EXPECT_TRUE(g.HasEdge(branch_def, print, EdgeType::kData));
  EXPECT_FALSE(g.HasEdge(init, print, EdgeType::kData));
}

TEST(EpdgBuilderTest, ElseBranchIsControlledByTheCondition) {
  Epdg g = BuildFrom("void f(int c) { if (c > 0) c = 1; else c = 2; }");
  graph::NodeId cond = FindNode(g, "c > 0");
  EXPECT_TRUE(g.HasEdge(cond, FindNode(g, "c = 1"), EdgeType::kCtrl));
  EXPECT_TRUE(g.HasEdge(cond, FindNode(g, "c = 2"), EdgeType::kCtrl));
}

TEST(EpdgBuilderTest, WhileLoopSingleIterationDataFlow) {
  Epdg g = BuildFrom(
      "void f(int n) { int i = 0; while (i < n) { i++; } "
      "System.out.println(i); }");
  graph::NodeId init = FindNode(g, "int i = 0");
  graph::NodeId cond = FindNode(g, "i < n");
  graph::NodeId inc = FindNode(g, "i++");
  graph::NodeId print = FindNode(g, "System.out.println(i)");
  EXPECT_TRUE(g.HasEdge(init, cond, EdgeType::kData));
  EXPECT_TRUE(g.HasEdge(init, inc, EdgeType::kData));
  EXPECT_TRUE(g.HasEdge(cond, inc, EdgeType::kCtrl));
  // After the loop (body executed once) the increment is the live def.
  EXPECT_TRUE(g.HasEdge(inc, print, EdgeType::kData));
  EXPECT_FALSE(g.HasEdge(init, print, EdgeType::kData));
  // No back edge.
  EXPECT_FALSE(g.HasEdge(inc, cond, EdgeType::kData));
}

TEST(EpdgBuilderTest, ForLoopInitNotControlledByCondition) {
  Epdg g = BuildFrom("void f(int n) { for (int i = 0; i < n; i++) n--; }");
  graph::NodeId init = FindNode(g, "int i = 0");
  graph::NodeId cond = FindNode(g, "i < n");
  EXPECT_FALSE(g.HasEdge(cond, init, EdgeType::kCtrl));
  EXPECT_TRUE(g.HasEdge(cond, FindNode(g, "i++"), EdgeType::kCtrl));
  EXPECT_TRUE(g.HasEdge(cond, FindNode(g, "n--"), EdgeType::kCtrl));
}

TEST(EpdgBuilderTest, ForWithoutConditionGetsTrueCond) {
  Epdg g = BuildFrom("void f() { for (;;) break; }");
  graph::NodeId cond = FindNode(g, "true");
  EXPECT_EQ(g.NodeAt(cond).type, NodeType::kCond);
  graph::NodeId brk = FindNode(g, "break");
  EXPECT_EQ(g.NodeAt(brk).type, NodeType::kBreak);
  EXPECT_TRUE(g.HasEdge(cond, brk, EdgeType::kCtrl));
}

TEST(EpdgBuilderTest, NestedLoopsNestCtrl) {
  Epdg g = BuildFrom(
      "void f(int n) { for (int i = 0; i < n; i++) "
      "for (int j = 0; j < n; j++) System.out.println(j); }");
  graph::NodeId outer = FindNode(g, "i < n");
  graph::NodeId inner = FindNode(g, "j < n");
  graph::NodeId print = FindNode(g, "System.out.println(j)");
  EXPECT_TRUE(g.HasEdge(outer, inner, EdgeType::kCtrl));
  EXPECT_TRUE(g.HasEdge(inner, print, EdgeType::kCtrl));
  EXPECT_FALSE(g.HasEdge(outer, print, EdgeType::kCtrl));
  // The inner loop init runs under the outer condition.
  graph::NodeId inner_init = FindNode(g, "int j = 0");
  EXPECT_TRUE(g.HasEdge(outer, inner_init, EdgeType::kCtrl));
}

TEST(EpdgBuilderTest, ArrayElementStoreIsWeakUpdate) {
  Epdg g = BuildFrom(
      "void f(int[] a, int[] b) { b[0] = 1; b[1] = 2; "
      "System.out.println(b[0]); }");
  graph::NodeId first = FindNode(g, "b[0] = 1");
  graph::NodeId second = FindNode(g, "b[1] = 2");
  graph::NodeId print = FindNode(g, "System.out.println(b[0])");
  // Weak update: both element stores remain reaching definitions of `b`.
  EXPECT_TRUE(g.HasEdge(first, print, EdgeType::kData));
  EXPECT_TRUE(g.HasEdge(second, print, EdgeType::kData));
  // And the parameter definition also survives.
  graph::NodeId param_b = FindNode(g, "int[] b");
  EXPECT_TRUE(g.HasEdge(param_b, print, EdgeType::kData));
}

TEST(EpdgBuilderTest, CallNodesForExpressionStatements) {
  Epdg g = BuildFrom("void f(Scanner s) { s.close(); }");
  graph::NodeId close = FindNode(g, "s.close()");
  EXPECT_EQ(g.NodeAt(close).type, NodeType::kCall);
  EXPECT_TRUE(g.HasEdge(FindNode(g, "Scanner s"), close, EdgeType::kData));
}

TEST(EpdgBuilderTest, DoWhileBodyControlledByCondition) {
  Epdg g = BuildFrom("void f(int n) { int i = 0; do { i++; } while (i < n); }");
  graph::NodeId cond = FindNode(g, "i < n");
  graph::NodeId inc = FindNode(g, "i++");
  EXPECT_TRUE(g.HasEdge(cond, inc, EdgeType::kCtrl));
  // Body executes before the condition reads i: data flows body -> cond.
  EXPECT_TRUE(g.HasEdge(inc, cond, EdgeType::kData));
}

TEST(EpdgBuilderTest, ReturnNodeContent) {
  Epdg g = BuildFrom("int f() { return 42; }");
  EXPECT_EQ(g.NodeAt(FindNode(g, "return 42")).type, NodeType::kReturn);
  Epdg g2 = BuildFrom("void f() { return; }");
  EXPECT_EQ(g2.NodeAt(FindNode(g2, "return")).type, NodeType::kReturn);
}

TEST(EpdgBuilderTest, ContinueUsesBreakNodeType) {
  Epdg g = BuildFrom(
      "void f(int n) { for (int i = 0; i < n; i++) { "
      "if (i % 2 == 0) continue; System.out.println(i); } }");
  graph::NodeId cont = FindNode(g, "continue");
  EXPECT_EQ(g.NodeAt(cont).type, NodeType::kBreak);
}

TEST(EpdgBuilderTest, BuildAllEpdgsCoversEveryMethod) {
  auto unit = java::Parse(
      "int f(int x) { return x; }\n"
      "int g(int y) { return y + 1; }");
  ASSERT_TRUE(unit.ok());
  auto graphs = BuildAllEpdgs(*unit);
  ASSERT_TRUE(graphs.ok());
  ASSERT_EQ(graphs->size(), 2u);
  EXPECT_EQ((*graphs)[0].method_name(), "f");
  EXPECT_EQ((*graphs)[1].method_name(), "g");
}

// Property sweep: every Data edge source must define a variable that the
// target reads, and every Ctrl edge source must be a Cond node.
class EdgeInvariantTest : public ::testing::TestWithParam<const char*> {};

TEST_P(EdgeInvariantTest, EdgesRespectDefinitions) {
  Epdg g = BuildFrom(GetParam());
  for (const Epdg::Edge& e : g.edges()) {
    const Node src = g.NodeAt(e.source);
    const Node dst = g.NodeAt(e.target);
    if (e.type == EdgeType::kCtrl) {
      EXPECT_EQ(src.type, NodeType::kCond)
          << "Ctrl edge from non-Cond node: " << src.content;
    } else {
      bool flows = false;
      std::set<std::string> dst_reads = dst.ReadNames();
      for (const auto& w : src.WriteNames()) {
        if (dst_reads.count(w) > 0) flows = true;
      }
      EXPECT_TRUE(flows) << "Data edge without def-use pair: " << src.content
                         << " -> " << dst.content;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Programs, EdgeInvariantTest,
    ::testing::Values(
        "void f(int n) { int s = 0; for (int i = 0; i < n; i++) s += i; "
        "System.out.println(s); }",
        "int fact(int n) { int f = 1; for (int i = 1; i <= n; i++) f *= i; "
        "return f; }",
        "void fib(int k) { int a = 1, b = 1; while (b <= k) { int c = a + b; "
        "a = b; b = c; } System.out.println(a); }",
        "void rev(int n) { int r = 0; while (n > 0) { r = r * 10 + n % 10; "
        "n = n / 10; } System.out.println(r); }",
        "void g(int[] a, int x) { double r = 0.0; for (int i = 0; "
        "i < a.length; i++) r += a[i] * Math.pow(x, i); "
        "System.out.println(r); }"));

}  // namespace
}  // namespace jfeed::pdg
