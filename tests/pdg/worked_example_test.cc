// Reproduces the paper's worked example: the extended program dependence
// graph of the Fig. 2a submission (Fig. 3), including the Data/Ctrl edge
// conventions of Sec. III-A.

#include <gtest/gtest.h>

#include "javalang/parser.h"
#include "pdg/epdg.h"

namespace jfeed::pdg {
namespace {

constexpr const char* kFigure2a = R"(
void assignment1(int[] a) {
  int even = 0;
  int odd = 0;
  for (int i = 0; i <= a.length; i++) {
    if (i % 2 == 1)
      odd += a[i];
    if (i % 2 == 1)
      even *= a[i];
  }
  System.out.println(odd);
  System.out.println(even);
})";

class WorkedExampleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto unit = java::Parse(kFigure2a);
    ASSERT_TRUE(unit.ok()) << unit.status().ToString();
    unit_ = std::move(*unit);  // The EPDG borrows the unit's ASTs.
    auto g = BuildEpdg(unit_.methods[0]);
    ASSERT_TRUE(g.ok()) << g.status().ToString();
    epdg_ = std::move(*g);
  }

  /// Finds the unique node with the given content; fails the test otherwise.
  graph::NodeId Find(const std::string& content) {
    graph::NodeId found = graph::kInvalidNode;
    for (size_t i = 0; i < epdg_.NodeCount(); ++i) {
      auto id = static_cast<graph::NodeId>(i);
      if (epdg_.NodeAt(id).content == content) {
        EXPECT_EQ(found, graph::kInvalidNode)
            << "content not unique: " << content;
        found = id;
      }
    }
    EXPECT_NE(found, graph::kInvalidNode) << "content not found: " << content;
    return found;
  }

  /// Finds the i-th node (0-based) with the given content.
  graph::NodeId FindNth(const std::string& content, int n) {
    int seen = 0;
    for (size_t i = 0; i < epdg_.NodeCount(); ++i) {
      auto id = static_cast<graph::NodeId>(i);
      if (epdg_.NodeAt(id).content == content) {
        if (seen == n) return id;
        ++seen;
      }
    }
    ADD_FAILURE() << "occurrence " << n << " of '" << content
                  << "' not found";
    return graph::kInvalidNode;
  }

  java::CompilationUnit unit_;  // Must outlive epdg_ (declared first).
  Epdg epdg_;
};

TEST_F(WorkedExampleTest, HasTwelveNodes) {
  // Fig. 3 shows v0..v11: the parameter Decl, four assignments, the loop
  // condition, two if conditions, two accumulator updates, two prints.
  EXPECT_EQ(epdg_.NodeCount(), 12u);
}

TEST_F(WorkedExampleTest, NodeTypesMatchDefinition1) {
  EXPECT_EQ(epdg_.NodeAt(Find("int[] a")).type, NodeType::kDecl);
  EXPECT_EQ(epdg_.NodeAt(Find("int even = 0")).type, NodeType::kAssign);
  EXPECT_EQ(epdg_.NodeAt(Find("int odd = 0")).type, NodeType::kAssign);
  EXPECT_EQ(epdg_.NodeAt(Find("int i = 0")).type, NodeType::kAssign);
  EXPECT_EQ(epdg_.NodeAt(Find("i <= a.length")).type, NodeType::kCond);
  EXPECT_EQ(epdg_.NodeAt(Find("i++")).type, NodeType::kAssign);
  EXPECT_EQ(epdg_.NodeAt(FindNth("i % 2 == 1", 0)).type, NodeType::kCond);
  EXPECT_EQ(epdg_.NodeAt(FindNth("i % 2 == 1", 1)).type, NodeType::kCond);
  EXPECT_EQ(epdg_.NodeAt(Find("odd += a[i]")).type, NodeType::kAssign);
  EXPECT_EQ(epdg_.NodeAt(Find("even *= a[i]")).type, NodeType::kAssign);
  EXPECT_EQ(epdg_.NodeAt(Find("System.out.println(odd)")).type,
            NodeType::kCall);
  EXPECT_EQ(epdg_.NodeAt(Find("System.out.println(even)")).type,
            NodeType::kCall);
}

TEST_F(WorkedExampleTest, CtrlEdgesAreTransitiveReduced) {
  graph::NodeId loop = Find("i <= a.length");
  graph::NodeId if1 = FindNth("i % 2 == 1", 0);
  graph::NodeId if2 = FindNth("i % 2 == 1", 1);
  graph::NodeId odd_update = Find("odd += a[i]");
  graph::NodeId even_update = Find("even *= a[i]");
  graph::NodeId inc = Find("i++");

  // The loop condition directly controls the two ifs and the update.
  EXPECT_TRUE(epdg_.HasEdge(loop, if1, EdgeType::kCtrl));
  EXPECT_TRUE(epdg_.HasEdge(loop, if2, EdgeType::kCtrl));
  EXPECT_TRUE(epdg_.HasEdge(loop, inc, EdgeType::kCtrl));
  // Each if directly controls its body.
  EXPECT_TRUE(epdg_.HasEdge(if1, odd_update, EdgeType::kCtrl));
  EXPECT_TRUE(epdg_.HasEdge(if2, even_update, EdgeType::kCtrl));
  // Transitive edges (loop -> body of the ifs) must not exist — the paper
  // removes them ("the resulting graph can be overloaded with redundant
  // relationships").
  EXPECT_FALSE(epdg_.HasEdge(loop, odd_update, EdgeType::kCtrl));
  EXPECT_FALSE(epdg_.HasEdge(loop, even_update, EdgeType::kCtrl));
  // Exactly five Ctrl edges total.
  EXPECT_EQ(epdg_.CountEdges(EdgeType::kCtrl), 5u);
}

TEST_F(WorkedExampleTest, DataEdgesFollowReachingDefinitions) {
  graph::NodeId param = Find("int[] a");
  graph::NodeId even_init = Find("int even = 0");
  graph::NodeId odd_init = Find("int odd = 0");
  graph::NodeId i_init = Find("int i = 0");
  graph::NodeId loop = Find("i <= a.length");
  graph::NodeId if1 = FindNth("i % 2 == 1", 0);
  graph::NodeId if2 = FindNth("i % 2 == 1", 1);
  graph::NodeId odd_update = Find("odd += a[i]");
  graph::NodeId even_update = Find("even *= a[i]");
  graph::NodeId inc = Find("i++");
  graph::NodeId print_odd = Find("System.out.println(odd)");
  graph::NodeId print_even = Find("System.out.println(even)");

  // The array parameter flows to every reader of `a`.
  EXPECT_TRUE(epdg_.HasEdge(param, loop, EdgeType::kData));
  EXPECT_TRUE(epdg_.HasEdge(param, odd_update, EdgeType::kData));
  EXPECT_TRUE(epdg_.HasEdge(param, even_update, EdgeType::kData));
  // The index initialization flows to all readers of `i` in the first
  // (and only, per the one-iteration convention) iteration.
  EXPECT_TRUE(epdg_.HasEdge(i_init, loop, EdgeType::kData));
  EXPECT_TRUE(epdg_.HasEdge(i_init, if1, EdgeType::kData));
  EXPECT_TRUE(epdg_.HasEdge(i_init, if2, EdgeType::kData));
  EXPECT_TRUE(epdg_.HasEdge(i_init, odd_update, EdgeType::kData));
  EXPECT_TRUE(epdg_.HasEdge(i_init, even_update, EdgeType::kData));
  EXPECT_TRUE(epdg_.HasEdge(i_init, inc, EdgeType::kData));
  // Accumulator initializations flow into the compound updates.
  EXPECT_TRUE(epdg_.HasEdge(odd_init, odd_update, EdgeType::kData));
  EXPECT_TRUE(epdg_.HasEdge(even_init, even_update, EdgeType::kData));
  // The updates (conditions assumed fulfilled) reach the prints.
  EXPECT_TRUE(epdg_.HasEdge(odd_update, print_odd, EdgeType::kData));
  EXPECT_TRUE(epdg_.HasEdge(even_update, print_even, EdgeType::kData));
}

TEST_F(WorkedExampleTest, ExcludedDataEdgesAbsent) {
  graph::NodeId odd_init = Find("int odd = 0");
  graph::NodeId i_init = Find("int i = 0");
  graph::NodeId inc = Find("i++");
  graph::NodeId loop = Find("i <= a.length");
  graph::NodeId if1 = FindNth("i % 2 == 1", 0);
  graph::NodeId print_odd = Find("System.out.println(odd)");

  // Paper, Sec. III-A: no Data edge v1 (odd = 0) -> println(odd); that edge
  // would only exist on the loop-not-entered path, which is excluded.
  EXPECT_FALSE(epdg_.HasEdge(odd_init, print_odd, EdgeType::kData));
  // No back edges: i++ feeding the loop condition or the if conditions
  // would require a second iteration.
  EXPECT_FALSE(epdg_.HasEdge(inc, loop, EdgeType::kData));
  EXPECT_FALSE(epdg_.HasEdge(inc, if1, EdgeType::kData));
  // i++ must not retroactively shadow the init's edges.
  EXPECT_TRUE(epdg_.HasEdge(i_init, loop, EdgeType::kData));
}

TEST_F(WorkedExampleTest, VariableSetsOnNodes) {
  const Node odd_update = epdg_.NodeAt(Find("odd += a[i]"));
  EXPECT_EQ(odd_update.VarNames(), (std::set<std::string>{"a", "i", "odd"}));
  EXPECT_EQ(odd_update.WriteNames(), (std::set<std::string>{"odd"}));
  const Node print_odd = epdg_.NodeAt(Find("System.out.println(odd)"));
  EXPECT_EQ(print_odd.VarNames(), (std::set<std::string>{"odd"}));
}

TEST_F(WorkedExampleTest, DotExportMentionsEveryNode) {
  std::string dot = epdg_.ToDot();
  EXPECT_NE(dot.find("odd += a[i]"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

}  // namespace
}  // namespace jfeed::pdg
