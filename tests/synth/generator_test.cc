#include "synth/generator.h"

#include <set>

#include <gtest/gtest.h>

namespace jfeed::synth {
namespace {

SubmissionTemplate MakeTemplate() {
  return SubmissionTemplate(
      "void f() {\n  int ${init};\n  ${op};\n}\n",
      {
          {"init", {"x = 0", "x = 1"}},
          {"op", {"x++", "x--", "x += 2"}},
      });
}

TEST(GeneratorTest, SpaceSizeIsProductOfVariantCounts) {
  EXPECT_EQ(MakeTemplate().SpaceSize(), 6u);
}

TEST(GeneratorTest, ValidateAcceptsWellFormedTemplate) {
  EXPECT_TRUE(MakeTemplate().Validate().ok());
}

TEST(GeneratorTest, ValidateRejectsOrphanSite) {
  SubmissionTemplate t("void f() { }", {{"ghost", {"a"}}});
  EXPECT_FALSE(t.Validate().ok());
}

TEST(GeneratorTest, ValidateRejectsOrphanHole) {
  SubmissionTemplate t("void f() { ${missing} }", {});
  EXPECT_FALSE(t.Validate().ok());
}

TEST(GeneratorTest, ValidateRejectsEmptyVariants) {
  SubmissionTemplate t("void f() { ${a} }", {{"a", {}}});
  EXPECT_FALSE(t.Validate().ok());
}

TEST(GeneratorTest, ValidateRejectsDuplicateSites) {
  SubmissionTemplate t("void f() { ${a} ${a} }",
                       {{"a", {"x"}}, {"a", {"y"}}});
  EXPECT_FALSE(t.Validate().ok());
}

TEST(GeneratorTest, IndexZeroIsAllCorrect) {
  SubmissionTemplate t = MakeTemplate();
  EXPECT_TRUE(t.IsAllCorrect(0));
  EXPECT_FALSE(t.IsAllCorrect(1));
  EXPECT_EQ(t.Generate(0), "void f() {\n  int x = 0;\n  x++;\n}\n");
}

TEST(GeneratorTest, MixedRadixDecoding) {
  SubmissionTemplate t = MakeTemplate();
  // Site 0 (radix 2) is least significant.
  EXPECT_EQ(t.Decode(0), (std::vector<size_t>{0, 0}));
  EXPECT_EQ(t.Decode(1), (std::vector<size_t>{1, 0}));
  EXPECT_EQ(t.Decode(2), (std::vector<size_t>{0, 1}));
  EXPECT_EQ(t.Decode(5), (std::vector<size_t>{1, 2}));
}

TEST(GeneratorTest, AllIndexesProduceDistinctSources) {
  SubmissionTemplate t = MakeTemplate();
  std::set<std::string> sources;
  for (uint64_t i = 0; i < t.SpaceSize(); ++i) {
    EXPECT_TRUE(sources.insert(t.Generate(i)).second) << i;
  }
}

TEST(GeneratorTest, ErrorCountCountsDeviations) {
  SubmissionTemplate t = MakeTemplate();
  EXPECT_EQ(t.ErrorCount(0), 0);
  EXPECT_EQ(t.ErrorCount(1), 1);  // init deviates.
  EXPECT_EQ(t.ErrorCount(2), 1);  // op deviates.
  EXPECT_EQ(t.ErrorCount(3), 2);  // Both deviate.
}

TEST(SampleIndexesTest, SmallSpaceReturnsEverything) {
  auto s = SampleIndexes(5, 100);
  EXPECT_EQ(s, (std::vector<uint64_t>{0, 1, 2, 3, 4}));
}

TEST(SampleIndexesTest, AlwaysIncludesReference) {
  auto s = SampleIndexes(1000000, 10);
  ASSERT_FALSE(s.empty());
  EXPECT_EQ(s[0], 0u);
  EXPECT_EQ(s.size(), 10u);
}

TEST(SampleIndexesTest, SamplesAreUniqueAndInRange) {
  auto s = SampleIndexes(640000, 500);
  std::set<uint64_t> unique(s.begin(), s.end());
  EXPECT_EQ(unique.size(), s.size());
  for (uint64_t i : s) EXPECT_LT(i, 640000u);
}

TEST(SampleIndexesTest, Deterministic) {
  EXPECT_EQ(SampleIndexes(7077888, 200), SampleIndexes(7077888, 200));
}

TEST(SampleIndexesTest, ZeroSpace) {
  EXPECT_TRUE(SampleIndexes(0, 10).empty());
}

}  // namespace
}  // namespace jfeed::synth
