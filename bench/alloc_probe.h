#ifndef JFEED_BENCH_ALLOC_PROBE_H_
#define JFEED_BENCH_ALLOC_PROBE_H_

#include <cstdint>

namespace jfeed::bench {

/// Process-wide count of global `operator new` calls (scalar, array,
/// aligned and nothrow forms) since program start. Defined in
/// alloc_probe.cc, which also overrides the global allocation functions —
/// linking that TU into a benchmark turns every heap allocation into a
/// counted one. The library targets never link it, so production binaries
/// keep the system allocator untouched.
int64_t AllocCount();

}  // namespace jfeed::bench

#endif  // JFEED_BENCH_ALLOC_PROBE_H_
