// Resubmission-chain benchmark for incremental grading (DESIGN.md §3d):
// for every assignment, a seeded fix-one-site resubmission chain is graded
// twice — cold (no method cache) and with the method-level content-addressed
// cache — and the report compares per-resubmission wall time and heap
// allocations. Before timing anything the harness cross-checks that both
// configurations produce byte-identical feedback on every chain step; the
// numbers are meaningless if the cache changes a single comment.
//
// The chain shape matches the dominant MOOC edit: the student fixes one
// wrong choice site per attempt while the rest of the file (here: two
// helper methods) is untouched, so two of three methods reuse on every
// resubmission. The method counters are fully deterministic given the
// seed, which is what lets CI gate the partial-hit rate exactly while the
// wall-clock ratios are trend-gated.
//
// JSON schema: jfeed-bench-resubmission-v1 (tools/compare_bench.py).

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "alloc_probe.h"
#include "kb/assignments.h"
#include "service/method_cache.h"
#include "service/pipeline.h"
#include "testing/resubmission.h"

namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Feedback bytes that must not change when the cache is on. Functional
/// execution is disabled in this bench (the golden suite covers it), so
/// the describe stops at the matcher output — including its work counters.
std::string Describe(const jfeed::service::GradingOutcome& o) {
  std::string out;
  out += jfeed::service::VerdictName(o.verdict);
  out += "|";
  out += jfeed::service::FeedbackTierName(o.tier);
  out += "|";
  out += jfeed::service::FailureClassName(o.failure);
  out += "|" + o.diagnostic + "|";
  const auto& f = o.feedback;
  out += f.matched ? "m" : "u";
  out += std::to_string(f.score) + "|" +
         std::to_string(f.match_stats.steps) + "|" +
         std::to_string(f.match_stats.regex_checks) + "\n";
  for (const auto& [q, h] : f.method_assignment) out += q + "=" + h + "\n";
  for (const auto& c : f.comments) {
    out += c.source_id + "|" + c.method + "|" + c.message + "\n";
    for (const auto& d : c.details) out += "  " + d + "\n";
  }
  return out;
}

struct AssignmentResult {
  std::string id;
  size_t resubmissions = 0;
  int64_t methods_total = 0;
  int64_t methods_reused = 0;
  int64_t methods_regraded = 0;
  size_t partial_hits = 0;  ///< Resubmissions that reused >= 1 method.
  double cold_ms = 0.0;     ///< Best (min) rep's wall time over resubmission
  double warm_ms = 0.0;     ///< grades — robust to noisy CI runners.
  int64_t cold_allocs = 0;  ///< Heap allocations over the same grades,
  int64_t warm_allocs = 0;  ///< rep 0 only (deterministic per rep).
  bool equivalent = true;
};

}  // namespace

int main(int argc, char** argv) {
  size_t steps = 8;
  int reps = 5;
  uint64_t seed = 1;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--steps") == 0 && i + 1 < argc) {
      steps = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--steps N] [--reps N] [--seed N] "
                   "[--json=PATH]\n",
                   argv[0]);
      return 1;
    }
  }
  if (reps < 1) reps = 1;

  const auto& kb = jfeed::kb::KnowledgeBase::Get();
  std::printf("resubmission chains: %zu fix-one-site steps per assignment, "
              "%d timed rep%s\n\n",
              steps, reps, reps == 1 ? "" : "s");
  std::printf("%-18s %10s %10s %10s %10s %10s\n", "assignment", "reuse",
              "cold ms", "warm ms", "speedup", "allocs");

  std::vector<AssignmentResult> results;
  bool all_equivalent = true;
  for (const auto& id : kb.assignment_ids()) {
    const auto& assignment = kb.assignment(id);
    jfeed::testing::ResubmissionChainOptions chain_options;
    chain_options.seed = seed;
    chain_options.steps = steps;
    // Pure fix-one-site chain — the dominant resubmission shape.
    chain_options.duplicate_prob = 0.0;
    chain_options.comment_prob = 0.0;
    chain_options.rename_prob = 0.0;
    auto chain = jfeed::testing::BuildResubmissionChain(
        id, assignment.generator, chain_options);

    AssignmentResult r;
    r.id = id;
    r.resubmissions = chain.size() - 1;

    jfeed::service::PipelineOptions cold_options;
    cold_options.run_functional = false;
    jfeed::service::PipelineOptions warm_options = cold_options;

    // Warmup pass (untimed): global regex cache, lazy pattern state.
    {
      jfeed::service::GradingPipeline warmup(assignment, cold_options);
      for (const auto& step : chain) warmup.Grade(step.source);
    }

    for (int rep = 0; rep < reps; ++rep) {
      // Fresh cache per rep so every rep measures the same warm-up curve:
      // the initial attempt fills the cache, each resubmission partially
      // hits it.
      warm_options.method_cache =
          std::make_shared<jfeed::service::MethodCache>();
      jfeed::service::GradingPipeline cold(assignment, cold_options);
      jfeed::service::GradingPipeline warm(assignment, warm_options);

      cold.Grade(chain[0].source);
      warm.Grade(chain[0].source);

      double rep_cold_ms = 0.0;
      double rep_warm_ms = 0.0;
      for (size_t i = 1; i < chain.size(); ++i) {
        int64_t a0 = jfeed::bench::AllocCount();
        Clock::time_point t0 = Clock::now();
        auto cold_outcome = cold.Grade(chain[i].source);
        rep_cold_ms += MillisSince(t0);
        int64_t a1 = jfeed::bench::AllocCount();
        Clock::time_point t1 = Clock::now();
        auto warm_outcome = warm.Grade(chain[i].source);
        rep_warm_ms += MillisSince(t1);
        int64_t a2 = jfeed::bench::AllocCount();
        if (rep == 0) {
          r.cold_allocs += a1 - a0;
          r.warm_allocs += a2 - a1;
        }

        if (Describe(cold_outcome) != Describe(warm_outcome)) {
          r.equivalent = false;
          std::fprintf(stderr, "FAIL: %s %s diverges with cache on\n",
                       id.c_str(), chain[i].id.c_str());
        }
        if (rep == 0) {
          // Deterministic counters: identical every rep, count once.
          r.methods_total +=
              warm_outcome.methods_reused + warm_outcome.methods_regraded;
          r.methods_reused += warm_outcome.methods_reused;
          r.methods_regraded += warm_outcome.methods_regraded;
          if (warm_outcome.methods_reused > 0) ++r.partial_hits;
        }
      }
      // Min over reps: a GC pause or a noisy CI neighbour inflates a rep,
      // never deflates one, so the minimum is the stable estimator.
      if (rep == 0 || rep_cold_ms < r.cold_ms) r.cold_ms = rep_cold_ms;
      if (rep == 0 || rep_warm_ms < r.warm_ms) r.warm_ms = rep_warm_ms;
    }
    all_equivalent &= r.equivalent;
    double reuse =
        r.methods_total > 0
            ? static_cast<double>(r.methods_reused) / r.methods_total
            : 0.0;
    double speedup = r.warm_ms > 0 ? r.cold_ms / r.warm_ms : 0.0;
    std::printf("%-18s %9.1f%% %10.2f %10.2f %9.2fx %4lld/%lld\n",
                id.c_str(), 100.0 * reuse, r.cold_ms, r.warm_ms, speedup,
                static_cast<long long>(
                    r.warm_allocs / static_cast<int64_t>(r.resubmissions)),
                static_cast<long long>(
                    r.cold_allocs / static_cast<int64_t>(r.resubmissions)));
    results.push_back(std::move(r));
  }

  AssignmentResult total;
  for (const auto& r : results) {
    total.resubmissions += r.resubmissions;
    total.methods_total += r.methods_total;
    total.methods_reused += r.methods_reused;
    total.methods_regraded += r.methods_regraded;
    total.partial_hits += r.partial_hits;
    total.cold_ms += r.cold_ms;
    total.warm_ms += r.warm_ms;
    total.cold_allocs += r.cold_allocs;
    total.warm_allocs += r.warm_allocs;
  }
  double hit_rate =
      total.methods_total > 0
          ? static_cast<double>(total.methods_reused) / total.methods_total
          : 0.0;
  double speedup = total.warm_ms > 0 ? total.cold_ms / total.warm_ms : 0.0;
  double alloc_ratio =
      total.cold_allocs > 0
          ? static_cast<double>(total.warm_allocs) / total.cold_allocs
          : 0.0;
  std::printf("\ntotal: %.1f%% of methods reused (%lld/%lld), "
              "per-resubmission speedup %.2fx, alloc ratio %.2f\n",
              100.0 * hit_rate,
              static_cast<long long>(total.methods_reused),
              static_cast<long long>(total.methods_total), speedup,
              alloc_ratio);
  std::printf("equivalence: %s\n",
              all_equivalent ? "cache-on feedback byte-identical to cold on "
                               "every chain step"
                             : "FAILED");

  if (!json_path.empty()) {
    std::string out = "{\n  \"schema\": \"jfeed-bench-resubmission-v1\",\n";
    out += "  \"config\": {\"steps\": " + std::to_string(steps) +
           ", \"reps\": " + std::to_string(reps) +
           ", \"seed\": " + std::to_string(seed) +
           ", \"assignments\": " + std::to_string(results.size()) + "},\n";
    out += "  \"totals\": {\n";
    out += "    \"submissions\": " +
           std::to_string(total.resubmissions + results.size()) + ",\n";
    out += "    \"resubmissions\": " + std::to_string(total.resubmissions) +
           ",\n";
    out += "    \"methods_total\": " + std::to_string(total.methods_total) +
           ",\n";
    out += "    \"methods_reused\": " +
           std::to_string(total.methods_reused) + ",\n";
    out += "    \"methods_regraded\": " +
           std::to_string(total.methods_regraded) + ",\n";
    out += "    \"partial_hits\": " + std::to_string(total.partial_hits) +
           ",\n";
    out += "    \"partial_hit_rate\": " + std::to_string(hit_rate) + ",\n";
    out += "    \"cold_wall_ms\": " + std::to_string(total.cold_ms) + ",\n";
    out += "    \"warm_wall_ms\": " + std::to_string(total.warm_ms) + ",\n";
    out += "    \"speedup\": " + std::to_string(speedup) + ",\n";
    out += "    \"cold_allocs\": " + std::to_string(total.cold_allocs) +
           ",\n";
    out += "    \"warm_allocs\": " + std::to_string(total.warm_allocs) +
           ",\n";
    out += "    \"alloc_ratio\": " + std::to_string(alloc_ratio) + ",\n";
    out += std::string("    \"equivalent\": ") +
           (all_equivalent ? "true" : "false") + "\n  },\n";
    out += "  \"assignments\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      double r_rate =
          r.methods_total > 0
              ? static_cast<double>(r.methods_reused) / r.methods_total
              : 0.0;
      double r_speedup = r.warm_ms > 0 ? r.cold_ms / r.warm_ms : 0.0;
      out += "    {\"id\": \"" + r.id + "\"" +
             ", \"partial_hit_rate\": " + std::to_string(r_rate) +
             ", \"speedup\": " + std::to_string(r_speedup) +
             ", \"cold_wall_ms\": " + std::to_string(r.cold_ms) +
             ", \"warm_wall_ms\": " + std::to_string(r.warm_ms) + "}";
      out += i + 1 < results.size() ? ",\n" : "\n";
    }
    out += "  ]\n}\n";
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fputs(out.c_str(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  return all_equivalent ? 0 : 1;
}
