// Sec. VI-C "Scalability" (CLARA): variable-trace collection cost grows
// with the dynamic iteration count — on large inputs it blows past any
// reasonable budget ("outputs a timeout error when k = 100,000, when
// running such functional test takes milliseconds") — while our static
// matching does not depend on the input at all.
//
// The demonstration program is the naive linear-scan strategy the paper's
// own P3-V2 discussion describes ("These assignments iterate from i=0 to
// i=m and compute the factorial of i every iteration"): its iteration count
// — and therefore its CLARA trace — is proportional to the input bound.

#include <chrono>
#include <cstdio>

#include "baselines/clara_lite.h"
#include "core/submission_matcher.h"
#include "javalang/parser.h"
#include "kb/assignments.h"
#include "testing/functional.h"

namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// A realistic novice submission to esc-LAB-3-P3-V2: test every value of
// [n, m] for factorial-ness instead of growing the factorial sequence.
constexpr const char* kLinearScan = R"(
void lab3p3v2(int n, int m) {
  int count = 0;
  for (int v = n; v <= m; v++) {
    long f = 1;
    int i = 1;
    while (f < v) {
      i++;
      f *= i;
    }
    if (f == v)
      count++;
  }
  System.out.println(count);
})";

}  // namespace

int main() {
  namespace baselines = jfeed::baselines;
  namespace testing = jfeed::testing;
  namespace java = jfeed::java;
  using jfeed::interp::Value;

  const auto& assignment =
      jfeed::kb::KnowledgeBase::Get().assignment("esc-LAB-3-P3-V2");
  auto submission = java::Parse(kLinearScan);
  if (!submission.ok()) return 1;

  std::printf(
      "CLARA-style trace collection vs. functional test vs. matching\n"
      "(esc-LAB-3-P3-V2, linear-scan student strategy)\n"
      "%-10s %14s %12s %14s %12s\n",
      "m", "trace events", "trace(ms)", "functional(ms)", "match(ms)");

  constexpr int64_t kTraceBudget = 400'000;
  for (int64_t m : {100, 1000, 10000, 100000}) {
    std::vector<std::vector<Value>> inputs = {{Value::Int(1), Value::Int(m)}};

    Clock::time_point t0 = Clock::now();
    size_t events = 0;
    auto traces = baselines::ClaraLite::CollectTraces(
        *submission, assignment.suite.method, inputs, {}, kTraceBudget,
        &events);
    double trace_ms = MillisSince(t0);
    bool trace_timeout = !traces.ok();

    testing::FunctionalSuite suite;
    suite.method = assignment.suite.method;
    suite.inputs = inputs;
    suite.exec_options.max_steps = 500'000'000;
    auto expected = testing::ComputeExpectedOutputs(*submission, suite);
    double functional_ms = -1;
    if (expected.ok()) {
      Clock::time_point t1 = Clock::now();
      testing::RunSuite(*submission, suite, *expected);
      functional_ms = MillisSince(t1);
    }

    Clock::time_point t2 = Clock::now();
    auto feedback =
        jfeed::core::MatchSubmission(assignment.spec, *submission);
    double match_ms = MillisSince(t2);
    (void)feedback;

    char trace_col[32];
    if (trace_timeout) {
      std::snprintf(trace_col, sizeof(trace_col), "timeout");
    } else {
      std::snprintf(trace_col, sizeof(trace_col), "%.2f", trace_ms);
    }
    std::printf("%-10lld %14zu %12s %14.2f %12.3f\n",
                static_cast<long long>(m), events, trace_col, functional_ms,
                match_ms);
  }
  std::printf(
      "\nShape check: trace collection cost grows linearly with the input "
      "bound and hits\nits budget, while the functional test stays cheap "
      "and static matching is flat\n(it never executes the program).\n");
  return 0;
}
