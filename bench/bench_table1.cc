// Regenerates Table I of the paper: for each of the twelve assignments,
// the search-space size S, average submission length L, average functional
// testing time T, pattern count P, constraint count C, average matching
// time M, and the number of discrepancies D between functional testing and
// the personalized feedback.
//
// The paper enumerates the full synthetic search space; by default this
// harness evaluates a deterministic sample per assignment (always including
// the reference) and extrapolates D, because the full 19.4M-submission sweep
// takes hours in a single-threaded run. Pass --samples N to change the
// sample size or --full to enumerate everything (small spaces are always
// enumerated exhaustively).
//
// --json=FILE additionally writes the Table I metrics as a machine-readable
// report (schema jfeed-bench-table1-v1): per-assignment coverage counters
// (space, sampled, evaluated, parse failures, discrepancies — deterministic
// for a fixed --samples) plus wall times (runner-dependent, reported for
// trend only). tools/compare_bench.py gates the deterministic fields
// against bench/baselines/BENCH_table1.json in CI.

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/submission_matcher.h"
#include "javalang/parser.h"
#include "kb/assignments.h"
#include "synth/generator.h"
#include "testing/functional.h"

namespace {

using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

int CountLines(const std::string& source) {
  int lines = 0;
  bool nonempty = false;
  for (char c : source) {
    if (c == '\n') {
      if (nonempty) ++lines;
      nonempty = false;
    } else if (!isspace(static_cast<unsigned char>(c))) {
      nonempty = true;
    }
  }
  if (nonempty) ++lines;
  return lines;
}

struct Row {
  std::string id;
  uint64_t space = 0;
  double avg_loc = 0;
  double avg_functional_us = 0;
  size_t patterns = 0;
  size_t constraints = 0;
  double avg_match_us = 0;
  uint64_t discrepancies = 0;
  uint64_t sampled = 0;  ///< Indexes drawn (evaluated + parse failures).
  uint64_t evaluated = 0;
  uint64_t parse_failures = 0;
  int paper_d = 0;
  double wall_ms = 0;  ///< Whole-assignment evaluation wall time.
};

Row EvaluateAssignment(const jfeed::kb::Assignment& assignment,
                       uint64_t samples) {
  namespace core = jfeed::core;
  namespace java = jfeed::java;
  namespace testing = jfeed::testing;

  Row row;
  row.id = assignment.id;
  row.space = assignment.generator.SpaceSize();
  row.patterns = assignment.spec.PatternCount();
  row.constraints = assignment.spec.ConstraintCount();
  row.paper_d = assignment.paper_discrepancies;

  auto reference = java::Parse(assignment.Reference());
  if (!reference.ok()) {
    std::fprintf(stderr, "reference of %s does not parse: %s\n",
                 assignment.id.c_str(),
                 reference.status().ToString().c_str());
    return row;
  }
  auto expected =
      testing::ComputeExpectedOutputs(*reference, assignment.suite);
  if (!expected.ok()) {
    std::fprintf(stderr, "reference of %s fails its suite: %s\n",
                 assignment.id.c_str(), expected.status().ToString().c_str());
    return row;
  }

  double total_loc = 0;
  double total_functional_us = 0;
  double total_match_us = 0;

  Clock::time_point assignment_start = Clock::now();
  for (uint64_t index :
       jfeed::synth::SampleIndexes(assignment.generator.SpaceSize(),
                                   samples)) {
    ++row.sampled;
    std::string source = assignment.generator.Generate(index);
    auto unit = java::Parse(source);
    if (!unit.ok()) {
      ++row.parse_failures;
      continue;
    }
    ++row.evaluated;
    total_loc += CountLines(source);

    Clock::time_point t0 = Clock::now();
    testing::FunctionalVerdict verdict =
        testing::RunSuite(*unit, assignment.suite, *expected);
    total_functional_us += MicrosSince(t0);

    Clock::time_point t1 = Clock::now();
    auto feedback = core::MatchSubmission(assignment.spec, *unit);
    total_match_us += MicrosSince(t1);
    if (!feedback.ok()) continue;

    bool feedback_positive = feedback->AllCorrect();
    if (verdict.passed != feedback_positive) ++row.discrepancies;
  }

  row.wall_ms = MicrosSince(assignment_start) / 1000.0;

  if (row.evaluated > 0) {
    row.avg_loc = total_loc / row.evaluated;
    row.avg_functional_us = total_functional_us / row.evaluated;
    row.avg_match_us = total_match_us / row.evaluated;
  }
  return row;
}

/// The machine-readable Table I report (schema jfeed-bench-table1-v1).
/// Coverage counters are deterministic for a fixed --samples; wall times
/// are runner-dependent and excluded from the CI comparison.
void WriteJsonReport(const char* path, uint64_t samples,
                     const std::vector<Row>& rows, double total_wall_ms) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  out << "{\n  \"schema\": \"jfeed-bench-table1-v1\",\n";
  out << "  \"samples\": " << samples << ",\n";
  out << "  \"assignments\": [\n";
  char buf[64];
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    out << "    {\"id\": \"" << row.id << "\", \"space\": " << row.space
        << ", \"patterns\": " << row.patterns
        << ", \"constraints\": " << row.constraints
        << ", \"sampled\": " << row.sampled
        << ", \"evaluated\": " << row.evaluated
        << ", \"parse_failures\": " << row.parse_failures
        << ", \"discrepancies\": " << row.discrepancies
        << ", \"paper_discrepancies\": " << row.paper_d;
    std::snprintf(buf, sizeof(buf), "%.2f", row.avg_loc);
    out << ", \"avg_loc\": " << buf;
    std::snprintf(buf, sizeof(buf), "%.1f", row.avg_functional_us);
    out << ", \"avg_functional_us\": " << buf;
    std::snprintf(buf, sizeof(buf), "%.1f", row.avg_match_us);
    out << ", \"avg_match_us\": " << buf;
    std::snprintf(buf, sizeof(buf), "%.1f", row.wall_ms);
    out << ", \"wall_ms\": " << buf << "}";
    out << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  out << "  ],\n";
  std::snprintf(buf, sizeof(buf), "%.1f", total_wall_ms);
  out << "  \"totals\": {\"assignments\": " << rows.size()
      << ", \"wall_ms\": " << buf << "}\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t samples = 2000;
  const char* json_out = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--samples") == 0 && i + 1 < argc) {
      samples = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--full") == 0) {
      samples = ~0ull;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_out = argv[i] + 7;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--samples N | --full] [--json=FILE]\n",
                   argv[0]);
      return 1;
    }
  }

  const auto& kb = jfeed::kb::KnowledgeBase::Get();
  std::printf(
      "Table I reproduction (samples per assignment: %" PRIu64 ")\n\n",
      samples);
  std::printf(
      "%-18s %10s %6s %9s %3s %3s %9s %10s %10s %8s\n", "Assignment", "S",
      "L", "T(us)", "P", "C", "M(us)", "D(sample)", "D(est)", "D(paper)");

  double total_match = 0;
  double total_functional = 0;
  double total_wall_ms = 0;
  std::vector<Row> rows;
  for (const auto& id : kb.assignment_ids()) {
    Row row = EvaluateAssignment(kb.assignment(id), samples);
    double scale = row.evaluated > 0
                       ? static_cast<double>(row.space) / row.evaluated
                       : 0;
    std::printf(
        "%-18s %10" PRIu64 " %6.2f %9.1f %3zu %3zu %9.1f %10" PRIu64
        " %10.0f %8d\n",
        row.id.c_str(), row.space, row.avg_loc, row.avg_functional_us,
        row.patterns, row.constraints, row.avg_match_us, row.discrepancies,
        row.discrepancies * scale, row.paper_d);
    total_match += row.avg_match_us;
    total_functional += row.avg_functional_us;
    total_wall_ms += row.wall_ms;
    rows.push_back(std::move(row));
  }
  std::printf(
      "\nAverages: functional testing %.1f us, pattern matching %.1f us "
      "per submission.\n",
      total_functional / rows.size(), total_match / rows.size());
  std::printf(
      "Shape checks: matching stays in the sub-millisecond range (paper: "
      "milliseconds),\nand is %s than running the functional tests.\n",
      total_match < total_functional ? "cheaper" : "NOT cheaper");
  if (json_out != nullptr) {
    WriteJsonReport(json_out, samples, rows, total_wall_ms);
  }
  return 0;
}
