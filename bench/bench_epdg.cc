// Front-end and EPDG-builder throughput: the fixed per-submission cost that
// precedes matching (part of the paper's column M, since their matching time
// includes building the extended program dependence graph with ANTLR +
// JGraphT).

#include <string>

#include <benchmark/benchmark.h>

#include "javalang/lexer.h"
#include "javalang/parser.h"
#include "kb/assignments.h"
#include "pdg/epdg.h"

namespace {

namespace java = jfeed::java;
namespace pdg = jfeed::pdg;

void BM_Lex(benchmark::State& state) {
  const auto& kb = jfeed::kb::KnowledgeBase::Get();
  std::string source =
      kb.assignment(kb.assignment_ids()[state.range(0)]).Reference();
  for (auto _ : state) {
    auto tokens = java::Lex(source);
    benchmark::DoNotOptimize(tokens);
  }
  state.SetLabel(kb.assignment_ids()[state.range(0)]);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(source.size()));
}
BENCHMARK(BM_Lex)->Arg(0)->Arg(10);

void BM_Parse(benchmark::State& state) {
  const auto& kb = jfeed::kb::KnowledgeBase::Get();
  std::string source =
      kb.assignment(kb.assignment_ids()[state.range(0)]).Reference();
  for (auto _ : state) {
    auto unit = java::Parse(source);
    benchmark::DoNotOptimize(unit);
  }
  state.SetLabel(kb.assignment_ids()[state.range(0)]);
}
BENCHMARK(BM_Parse)->DenseRange(0, 11);

void BM_BuildEpdg(benchmark::State& state) {
  const auto& kb = jfeed::kb::KnowledgeBase::Get();
  auto unit = java::Parse(
      kb.assignment(kb.assignment_ids()[state.range(0)]).Reference());
  for (auto _ : state) {
    auto graph = pdg::BuildEpdg(unit->methods[0]);
    benchmark::DoNotOptimize(graph);
  }
  state.SetLabel(kb.assignment_ids()[state.range(0)]);
}
BENCHMARK(BM_BuildEpdg)->DenseRange(0, 11);

void BM_ParseAndBuildScaling(benchmark::State& state) {
  // Methods with a growing number of statements: EPDG construction should
  // stay near-linear (data-edge fan-out is bounded by variable reuse).
  int statements = static_cast<int>(state.range(0));
  std::string source = "void f(int n) {\n  int s = 0;\n";
  for (int i = 0; i < statements; ++i) {
    source += "  s += " + std::to_string(i) + ";\n";
  }
  source += "  System.out.println(s);\n}\n";
  for (auto _ : state) {
    auto unit = java::Parse(source);
    auto graph = pdg::BuildEpdg(unit->methods[0]);
    benchmark::DoNotOptimize(graph);
  }
  state.SetComplexityN(statements);
}
BENCHMARK(BM_ParseAndBuildScaling)->Range(8, 512)->Complexity();

}  // namespace

BENCHMARK_MAIN();
