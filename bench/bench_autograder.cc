// Sec. VI-C "Scalability" (AutoGrader): repair-search cost explodes with
// the number of injected errors, while pattern matching stays flat. The
// paper: "Sketch can provide up to four repairs beyond which its performance
// degrades significantly."

#include <chrono>
#include <cstdio>
#include <vector>

#include "baselines/autograder_lite.h"
#include "core/submission_matcher.h"
#include "javalang/parser.h"
#include "kb/assignments.h"

namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Picks a choice vector with exactly `errors` sites deviating, preferring
/// deviations that are functionally meaningful (variant 1 of each site).
std::vector<size_t> ChoiceWithErrors(const jfeed::synth::SubmissionTemplate&
                                         model,
                                     int errors) {
  std::vector<size_t> choice(model.sites().size(), 0);
  int injected = 0;
  for (size_t s = 0; s < model.sites().size() && injected < errors; ++s) {
    if (model.sites()[s].variants.size() > 1) {
      choice[s] = 1;
      ++injected;
    }
  }
  return choice;
}

}  // namespace

int main() {
  const auto& assignment =
      jfeed::kb::KnowledgeBase::Get().assignment("assignment1");
  jfeed::baselines::AutoGraderLite grader(assignment.generator,
                                          assignment.suite);

  std::printf(
      "AutoGrader-style repair search vs. pattern matching (Assignment 1)\n"
      "%-8s %12s %14s %12s %14s\n",
      "errors", "repairs", "candidates", "search(ms)", "matching(ms)");

  for (int errors = 0; errors <= 6; ++errors) {
    std::vector<size_t> choice =
        ChoiceWithErrors(assignment.generator, errors);
    std::string source = assignment.generator.Instantiate(choice);

    Clock::time_point t0 = Clock::now();
    auto repair = grader.Repair(choice, /*max_repairs=*/6,
                                /*max_candidates=*/500000);
    double search_ms = MillisSince(t0);

    Clock::time_point t1 = Clock::now();
    auto feedback =
        jfeed::core::MatchSubmissionSource(assignment.spec, source);
    double match_ms = MillisSince(t1);

    if (!repair.ok() || !feedback.ok()) {
      std::fprintf(stderr, "run failed for %d errors\n", errors);
      continue;
    }
    char repairs[32];
    if (repair->repaired) {
      std::snprintf(repairs, sizeof(repairs), "%d", repair->repairs);
    } else {
      std::snprintf(repairs, sizeof(repairs), "%s",
                    repair->budget_exhausted ? "budget!" : "none<=6");
    }
    std::printf("%-8d %12s %14llu %12.2f %14.3f\n", errors, repairs,
                static_cast<unsigned long long>(repair->candidates_tried),
                search_ms, match_ms);
  }
  std::printf(
      "\nShape check: search cost grows combinatorially with the number of "
      "repairs\n(the paper's >=4-repair degradation); matching cost is "
      "independent of it.\n");
  return 0;
}
