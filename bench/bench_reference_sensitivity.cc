// Sec. VI-C "Reference solutions": CLARA needs one reference per trace
// shape of a correct solution (the Fig. 8 pair lands in different
// clusters), while a single pattern/constraint specification accepts all of
// them. This bench clusters a family of correct Assignment-1 variants by
// traces and shows the pattern spec marking every one of them Correct.

#include <cstdio>
#include <vector>

#include "baselines/clara_lite.h"
#include "core/submission_matcher.h"
#include "javalang/parser.h"
#include "kb/assignments.h"

namespace {

// Correct Assignment-1 solutions with different shapes: single loop /
// two loops / for vs while / different variable and print arrangements.
const char* kCorrectVariants[] = {
    // Fig. 8a — single while loop.
    R"(void assignment1(int[] a) {
      int o = 0;
      int e = 1;
      int i = 0;
      while (i < a.length) {
        if (i % 2 == 1)
          o += a[i];
        if (i % 2 == 0)
          e *= a[i];
        i++;
      }
      System.out.println(o);
      System.out.println(e);
    })",
    // Fig. 8b — two while loops.
    R"(void assignment1(int[] a) {
      int o = 0;
      int i = 0;
      while (i < a.length) {
        if (i % 2 == 1)
          o += a[i];
        i++;
      }
      i = 0;
      int e = 1;
      while (i < a.length) {
        if (i % 2 == 0)
          e *= a[i];
        i++;
      }
      System.out.println(o);
      System.out.println(e);
    })",
    // Two for loops (the knowledge-base reference shape).
    R"(void assignment1(int[] a) {
      int o = 0;
      int e = 1;
      for (int i = 0; i < a.length; i++)
        if (i % 2 == 1)
          o += a[i];
      for (int j = 0; j < a.length; j++)
        if (j % 2 == 0)
          e *= a[j];
      System.out.println(o);
      System.out.println(e);
    })",
    // Extra temporaries change the traces but not the semantics.
    R"(void assignment1(int[] a) {
      int o = 0;
      int e = 1;
      for (int i = 0; i < a.length; i++) {
        int v = a[i];
        if (i % 2 == 1)
          o += a[i];
        if (i % 2 == 0)
          e *= a[i];
      }
      System.out.println(o);
      System.out.println(e);
    })",
};

}  // namespace

int main() {
  namespace baselines = jfeed::baselines;
  namespace java = jfeed::java;
  using jfeed::interp::Value;

  const auto& assignment =
      jfeed::kb::KnowledgeBase::Get().assignment("assignment1");

  std::vector<java::CompilationUnit> units;
  for (const char* source : kCorrectVariants) {
    auto unit = java::Parse(source);
    if (!unit.ok()) {
      std::fprintf(stderr, "variant failed to parse: %s\n",
                   unit.status().ToString().c_str());
      return 1;
    }
    units.push_back(std::move(*unit));
  }

  std::vector<const java::CompilationUnit*> pointers;
  for (const auto& unit : units) pointers.push_back(&unit);
  std::vector<std::vector<Value>> inputs = {
      {Value::IntArray({3, 5, 2, 4})}, {Value::IntArray({1, 2, 3, 4, 5})}};
  auto clustering = baselines::ClaraLite::Cluster(pointers, "assignment1",
                                                  inputs);
  if (!clustering.ok()) {
    std::fprintf(stderr, "clustering failed: %s\n",
                 clustering.status().ToString().c_str());
    return 1;
  }

  std::printf("Reference-solution sensitivity (4 correct variants of "
              "Assignment 1)\n\n");
  std::printf("CLARA-style trace clustering: %zu clusters ->\n",
              clustering->clusters.size());
  for (size_t c = 0; c < clustering->clusters.size(); ++c) {
    std::printf("  cluster %zu: variants", c);
    for (size_t member : clustering->clusters[c]) {
      std::printf(" #%zu", member);
    }
    std::printf("\n");
  }
  std::printf("=> CLARA needs %zu reference solutions for these.\n\n",
              clustering->clusters.size());

  int accepted = 0;
  for (size_t i = 0; i < units.size(); ++i) {
    auto feedback = jfeed::core::MatchSubmission(assignment.spec, units[i]);
    bool positive = feedback.ok() && feedback->AllCorrect();
    std::printf("pattern spec on variant #%zu: %s\n", i,
                positive ? "all-Correct" : "negative feedback");
    if (positive) ++accepted;
  }
  std::printf(
      "=> one pattern/constraint specification accepts %d/%zu variants.\n",
      accepted, units.size());
  return 0;
}
