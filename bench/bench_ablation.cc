// Ablations of the design choices DESIGN.md calls out:
//   (a) the node-ordering heuristic of the backtracking matcher (Sec. IV:
//       "the performance depends on ... the processing order of the
//       pattern nodes");
//   (b) approximate expressions r̂ — without them, near-miss submissions
//       lose their Incorrect diagnosis and fall back to NotExpected;
//   (c) constraints — without them, Λ cannot separate submissions that
//       contain all the right pieces wired up wrongly;
//   (d) pattern variations (Sec. VII extension) — with them, the
//       alternative i += 2 strategy is accepted.

#include <chrono>
#include <cstdio>

#include "core/pattern_matcher.h"
#include "core/submission_matcher.h"
#include "javalang/parser.h"
#include "kb/assignments.h"
#include "kb/extensions.h"
#include "pdg/epdg.h"

namespace {

namespace core = jfeed::core;
namespace java = jfeed::java;

using Clock = std::chrono::steady_clock;

double MicrosSince(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

void OrderingAblation() {
  std::printf("(a) node-ordering heuristic (backtracking steps per "
              "pattern, Assignment 1 reference)\n");
  const auto& assignment =
      jfeed::kb::KnowledgeBase::Get().assignment("assignment1");
  auto unit = java::Parse(assignment.Reference());
  auto graph = jfeed::pdg::BuildEpdg(unit->methods[0]);
  std::printf("    %-18s %12s %12s\n", "pattern", "heuristic", "naive");
  for (const char* id :
       {"odd-positions", "even-positions", "cond-accum-add",
        "assign-print"}) {
    const core::Pattern& pattern = jfeed::kb::PatternLibrary::Get().at(id);
    core::MatchOptions with, without;
    without.use_ordering_heuristic = false;
    core::MatchStats stats_with, stats_without;
    core::MatchPattern(pattern, *graph, with, &stats_with);
    core::MatchPattern(pattern, *graph, without, &stats_without);
    std::printf("    %-18s %12lld %12lld\n", id,
                static_cast<long long>(stats_with.steps),
                static_cast<long long>(stats_without.steps));
  }
}

void ApproximateAblation() {
  std::printf("\n(b) approximate expressions r̂ (Fig. 2a-style bound "
              "error)\n");
  const char* kSubmission = R"(
      void assignment1(int[] a) {
        int o = 0;
        int e = 1;
        for (int i = 0; i <= a.length; i++)
          if (i % 2 == 1)
            o += a[i];
        for (int j = 0; j < a.length; j++)
          if (j % 2 == 0)
            e *= a[j];
        System.out.println(o);
        System.out.println(e);
      })";
  const auto& assignment =
      jfeed::kb::KnowledgeBase::Get().assignment("assignment1");
  auto feedback = core::MatchSubmissionSource(assignment.spec, kSubmission);
  // Strip the approximate templates and re-grade.
  core::AssignmentSpec stripped = assignment.spec;
  std::vector<core::Pattern> owned;
  owned.reserve(16);
  for (auto& method : stripped.methods) {
    for (auto& use : method.patterns) {
      core::Pattern copy = *use.pattern;
      for (auto& node : copy.nodes) node.approx = core::ExprPattern();
      owned.push_back(std::move(copy));
      use.pattern = &owned.back();
    }
  }
  auto stripped_feedback =
      core::MatchSubmissionSource(stripped, kSubmission);
  auto count_kinds = [](const core::SubmissionFeedback& fb, int* incorrect,
                        int* not_expected) {
    *incorrect = *not_expected = 0;
    for (const auto& c : fb.comments) {
      if (c.kind == core::FeedbackKind::kIncorrect) ++*incorrect;
      if (c.kind == core::FeedbackKind::kNotExpected) ++*not_expected;
    }
  };
  int inc_with, ne_with, inc_without, ne_without;
  count_kinds(*feedback, &inc_with, &ne_with);
  count_kinds(*stripped_feedback, &inc_without, &ne_without);
  std::printf(
      "    with r̂:    %d Incorrect (actionable) / %d NotExpected, Λ=%.1f\n"
      "    without r̂: %d Incorrect / %d NotExpected (diagnosis lost), "
      "Λ=%.1f\n",
      inc_with, ne_with, feedback->score, inc_without, ne_without,
      stripped_feedback->score);
}

void ConstraintAblation() {
  std::printf("\n(c) constraints (Fig. 2c: all pieces present, accumulators "
              "swapped)\n");
  const char* kSwapped = R"(
      void assignment1(int[] a) {
        int x = 1;
        int y = 0;
        for (int i = 1; i < a.length; i++)
          if (i % 2 == 1)
            x *= a[i];
        for (int j = 0; j < a.length; j++)
          if (j % 2 == 0)
            y += a[j];
        System.out.println(y);
        System.out.println(x);
      })";
  const auto& assignment =
      jfeed::kb::KnowledgeBase::Get().assignment("assignment1");
  auto with = core::MatchSubmissionSource(assignment.spec, kSwapped);
  core::AssignmentSpec stripped = assignment.spec;
  for (auto& method : stripped.methods) method.constraints.clear();
  auto without = core::MatchSubmissionSource(stripped, kSwapped);
  std::printf(
      "    with constraints:    Λ=%.1f, verdict %s\n"
      "    without constraints: Λ=%.1f, verdict %s\n",
      with->score, with->AllCorrect() ? "all-correct" : "negative",
      without->score, without->AllCorrect() ? "all-correct (wrongly!)"
                                            : "negative");
}

void VariationAblation() {
  std::printf("\n(d) pattern variations (i += 2 strategy)\n");
  const char* kStep = R"(
      void assignment1(int[] a) {
        int o = 0;
        int e = 1;
        for (int i = 1; i < a.length; i += 2)
          o += a[i];
        for (int j = 0; j < a.length; j += 2)
          e *= a[j];
        System.out.println(o);
        System.out.println(e);
      })";
  const auto& assignment =
      jfeed::kb::KnowledgeBase::Get().assignment("assignment1");
  Clock::time_point t0 = Clock::now();
  auto base = core::MatchSubmissionSource(assignment.spec, kStep);
  double base_us = MicrosSince(t0);
  core::AssignmentSpec with = assignment.spec;
  jfeed::kb::ExtensionLibrary::Get().AttachAssignment1Variations(&with);
  Clock::time_point t1 = Clock::now();
  auto extended = core::MatchSubmissionSource(with, kStep);
  double extended_us = MicrosSince(t1);
  std::printf(
      "    base spec:       verdict %s (Λ=%.1f) in %.0f us\n"
      "    with variations: verdict %s (Λ=%.1f) in %.0f us\n",
      base->AllCorrect() ? "all-correct" : "negative", base->score, base_us,
      extended->AllCorrect() ? "all-correct" : "negative", extended->score,
      extended_us);
}

void BackendAblation() {
  std::printf("\n(e) regex vs. AST expression-matching backends\n");
  // The same semantic template, two backends, over contents with a textual
  // prefix trap and a swapped-operand spelling.
  auto regex_pattern = core::PatternBuilder("regex-digit", "digit drop")
                           .Var("n")
                           .Node(core::PatternNodeType::kAssign,
                                 "n = n / 10")
                           .Build();
  auto ast_pattern = core::PatternBuilder("ast-digit", "digit drop")
                         .Var("m")
                         .NodeAst(core::PatternNodeType::kAssign,
                                  "m = m / 10")
                         .Build();
  struct Case {
    const char* label;
    const char* source;
  };
  const Case kCases[] = {
      {"exact content      ", "void f(int v) { v = v / 10; }"},
      {"prefix trap (/100) ", "void f(int v) { v = v / 100; }"},
  };
  for (const auto& c : kCases) {
    auto unit = java::Parse(c.source);
    auto graph = jfeed::pdg::BuildEpdg(unit->methods[0]);
    size_t regex_hits = core::MatchPattern(**&regex_pattern, *graph).size();
    size_t ast_hits = core::MatchPattern(**&ast_pattern, *graph).size();
    std::printf("    %s regex: %zu match(es), AST: %zu match(es)%s\n",
                c.label, regex_hits, ast_hits,
                regex_hits != ast_hits ? "  <- backend disagreement" : "");
  }
  std::printf("    (the AST backend needs no $-anchoring to reject the "
              "trap;\n     it also accepts swapped operands of commutative "
              "operators)\n");
}

}  // namespace

int main() {
  std::printf("Design-choice ablations\n\n");
  OrderingAblation();
  ApproximateAblation();
  ConstraintAblation();
  VariationAblation();
  BackendAblation();
  return 0;
}
