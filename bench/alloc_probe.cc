// Counting allocator shim for the benchmarks: overrides the global
// allocation functions with malloc/free plus an atomic counter, so a bench
// can report allocations-per-submission as a deterministic, CI-gateable
// number (wall times jitter on shared runners; allocation counts do not).
//
// Bench-only by construction: this TU lives in its own static library that
// just the benchmark executables link. Referencing AllocCount() pulls the
// whole object in, and with it the operator new/delete overrides.

#include "alloc_probe.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<int64_t> g_allocs{0};

void* CountedAlloc(std::size_t size) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size != 0 ? size : 1);
}

void* CountedAlignedAlloc(std::size_t size, std::size_t align) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  // aligned_alloc requires the size to be a multiple of the alignment.
  std::size_t padded = (size + align - 1) / align * align;
  return std::aligned_alloc(align, padded != 0 ? padded : align);
}

}  // namespace

namespace jfeed::bench {

int64_t AllocCount() { return g_allocs.load(std::memory_order_relaxed); }

}  // namespace jfeed::bench

void* operator new(std::size_t size) {
  void* p = CountedAlloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = CountedAlloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = CountedAlignedAlloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = CountedAlignedAlloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
