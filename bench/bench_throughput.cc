// Batch-grading throughput benchmark for the concurrent scheduler: grades a
// synthetic MOOC-scale corpus (default: 1000 Assignment 1 submissions drawn
// from ~200 distinct variants, the rest comment-perturbed resubmissions)
// and reports submissions/sec at 1/2/4/8 workers.
//
// Two sweeps:
//   - cache OFF: pure worker-pool scaling — every submission pays for a
//     full pipeline run, so the jobs-N/jobs-1 ratio is the parallel speedup.
//   - cache ON: the content-addressed result cache collapses token-identical
//     resubmissions (comments and whitespace do not defeat the fingerprint),
//     so the report adds the cache+dedup hit rate.
//
// Before timing anything, the harness cross-checks that the parallel engine
// is semantically equivalent to the sequential pipeline: verdict, feedback
// tier, failure class and feedback text must agree for every corpus member.
//
// Thread scaling is only observable when the host grants >1 hardware
// threads; on a single-core host the jobs sweep measures scheduling
// overhead, not speedup, and the report says so.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "alloc_probe.h"
#include "kb/assignments.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sched/scheduler.h"
#include "service/pipeline.h"
#include "synth/generator.h"

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Builds a corpus of `total` submissions with `distinct` token-distinct
/// variants; the remainder are resubmissions of earlier members perturbed
/// with a unique comment, so byte equality never short-circuits the
/// content-addressed cache — only token-normalized hashing can dedup them.
std::vector<std::string> BuildCorpus(const jfeed::kb::Assignment& assignment,
                                     size_t total, size_t distinct) {
  std::vector<std::string> variants;
  for (uint64_t index : jfeed::synth::SampleIndexes(
           assignment.generator.SpaceSize(), distinct)) {
    variants.push_back(assignment.generator.Generate(index));
  }
  std::vector<std::string> corpus;
  corpus.reserve(total);
  for (size_t i = 0; i < total; ++i) {
    if (i < variants.size()) {
      corpus.push_back(variants[i]);
    } else {
      corpus.push_back("// resubmission " + std::to_string(i) + "\n" +
                       variants[i % variants.size()] + "\n");
    }
  }
  return corpus;
}

bool Equivalent(const jfeed::service::GradingOutcome& a,
                const jfeed::service::GradingOutcome& b) {
  if (a.verdict != b.verdict || a.tier != b.tier || a.failure != b.failure) {
    return false;
  }
  if (a.feedback.comments.size() != b.feedback.comments.size()) return false;
  for (size_t i = 0; i < a.feedback.comments.size(); ++i) {
    if (a.feedback.comments[i].message != b.feedback.comments[i].message) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  size_t total = 1000;
  size_t distinct = 200;
  std::string assignment_id = "assignment1";
  std::string json_path;
  std::string metrics_path;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--submissions") == 0 && i + 1 < argc) {
      total = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--distinct") == 0 && i + 1 < argc) {
      distinct = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--assignment") == 0 && i + 1 < argc) {
      assignment_id = argv[++i];
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--metrics-out=", 14) == 0) {
      metrics_path = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_path = argv[i] + 12;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--submissions N] [--distinct N] "
                   "[--assignment id] [--json=PATH] [--metrics-out=PATH] "
                   "[--trace-out=PATH]\n",
                   argv[0]);
      return 1;
    }
  }

  const auto& kb = jfeed::kb::KnowledgeBase::Get();
  bool known = false;
  for (const auto& id : kb.assignment_ids()) known |= id == assignment_id;
  if (!known) {
    std::fprintf(stderr, "unknown assignment '%s'\n", assignment_id.c_str());
    return 1;
  }
  const auto& assignment = kb.assignment(assignment_id);
  std::vector<std::string> corpus = BuildCorpus(assignment, total, distinct);

  unsigned hw = std::thread::hardware_concurrency();
  std::printf("batch throughput: %zu submissions of %s (%zu distinct), "
              "%u hardware thread%s\n\n",
              corpus.size(), assignment_id.c_str(),
              std::min(distinct, corpus.size()), hw, hw == 1 ? "" : "s");

  // Equivalence gate: the numbers below are only meaningful if the parallel
  // engine grades exactly like the sequential pipeline.
  {
    jfeed::service::GradingPipeline pipeline(assignment);
    auto sequential = pipeline.GradeBatch(corpus);
    jfeed::sched::SchedulerOptions sopts;
    sopts.jobs = 4;
    auto parallel =
        jfeed::service::GradeBatchParallel(assignment, corpus, {}, sopts);
    for (size_t i = 0; i < corpus.size(); ++i) {
      if (!Equivalent(sequential[i], parallel[i])) {
        std::fprintf(stderr,
                     "FAIL: parallel outcome %zu diverges from sequential\n",
                     i);
        return 1;
      }
    }
    std::printf("equivalence: parallel == sequential on all %zu outcomes "
                "(verdict, tier, failure class, feedback text)\n\n",
                corpus.size());
  }

  std::printf("%-6s %12s %12s %10s %10s\n", "jobs", "cache", "sub/sec",
              "speedup", "hit rate");
  double base_rate = 0.0;
  std::string json_rows;
  for (bool cache_on : {false, true}) {
    for (int jobs : {1, 2, 4, 8}) {
      jfeed::sched::SchedulerOptions sopts;
      sopts.jobs = jobs;
      sopts.use_result_cache = cache_on;
      jfeed::sched::BatchScheduler scheduler(assignment, {}, sopts);
      jfeed::sched::BatchStats stats;
      Clock::time_point t0 = Clock::now();
      auto outcomes = scheduler.GradeBatchWithStats(corpus, &stats);
      double seconds = SecondsSince(t0);
      double rate = seconds > 0 ? corpus.size() / seconds : 0.0;
      if (!cache_on && jobs == 1) base_rate = rate;
      std::printf("%-6d %12s %12.1f %9.2fx %9.1f%%\n", jobs,
                  cache_on ? "on" : "off", rate,
                  base_rate > 0 ? rate / base_rate : 0.0,
                  100.0 * stats.HitRate());
      if (!json_rows.empty()) json_rows += ",\n";
      json_rows += "    {\"jobs\": " + std::to_string(jobs) +
                   ", \"cache\": " + (cache_on ? "true" : "false") +
                   ", \"submissions_per_sec\": " + std::to_string(rate) +
                   ", \"hit_rate\": " + std::to_string(stats.HitRate()) + "}";
      if (outcomes.size() != corpus.size()) {
        std::fprintf(stderr, "FAIL: %zu outcomes for %zu submissions\n",
                     outcomes.size(), corpus.size());
        return 1;
      }
    }
  }
  // Steady-state allocations per full Grade() on the pooled sequential
  // pipeline: first pass warms the arenas and lazy pattern state, second
  // pass is the number. Deterministic where the wall-clock rates above
  // jitter with the runner.
  int64_t allocs_per_submission = 0;
  {
    size_t probe_n = std::min<size_t>(corpus.size(), 100);
    std::vector<std::string> probe_corpus(corpus.begin(),
                                          corpus.begin() + probe_n);
    jfeed::service::GradingPipeline pipeline(assignment);
    pipeline.GradeBatch(probe_corpus);
    int64_t before = jfeed::bench::AllocCount();
    pipeline.GradeBatch(probe_corpus);
    allocs_per_submission = (jfeed::bench::AllocCount() - before) /
                            static_cast<int64_t>(probe_n);
    std::printf("\nsteady-state heap allocations: %lld per Grade() "
                "(pooled pipeline, %zu-submission probe)\n",
                static_cast<long long>(allocs_per_submission), probe_n);
  }

  // Observability overhead: the obs layer's acceptance bar is <5% wall time
  // with tracing AND metrics enabled versus a disabled registry. Both runs
  // use the contended configuration (jobs=4, cache off) so every submission
  // pays for the fully instrumented pipeline; with JFEED_OBS=OFF the stubs
  // make the instrumented run identical to the baseline.
  double obs_baseline_s = 0.0;
  double obs_instrumented_s = 0.0;
  {
    auto timed_run = [&assignment, &corpus] {
      jfeed::sched::SchedulerOptions sopts;
      sopts.jobs = 4;
      sopts.use_result_cache = false;
      jfeed::sched::BatchScheduler scheduler(assignment, {}, sopts);
      jfeed::sched::BatchStats stats;
      Clock::time_point t0 = Clock::now();
      scheduler.GradeBatchWithStats(corpus, &stats);
      return SecondsSince(t0);
    };
    obs_baseline_s = timed_run();
    jfeed::obs::Registry::Global().set_enabled(true);
    jfeed::obs::Tracer::Global().Enable();
    obs_instrumented_s = timed_run();
    double overhead_pct =
        obs_baseline_s > 0
            ? 100.0 * (obs_instrumented_s - obs_baseline_s) / obs_baseline_s
            : 0.0;
    std::printf(
        "\nobservability overhead (jobs=4, cache off): baseline %.3fs, "
        "tracing+metrics %.3fs, %+.1f%%\n",
        obs_baseline_s, obs_instrumented_s, overhead_pct);
  }
  if (!metrics_path.empty()) {
    std::FILE* f = std::fopen(metrics_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", metrics_path.c_str());
      return 1;
    }
    std::fputs(jfeed::obs::Registry::Global().Render().c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", metrics_path.c_str());
  }
  if (!trace_path.empty()) {
    std::FILE* f = std::fopen(trace_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      return 1;
    }
    std::fputs(jfeed::obs::Tracer::Global().ExportChromeJson().c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", trace_path.c_str());
  }
  jfeed::obs::Tracer::Global().Disable();
  jfeed::obs::Registry::Global().set_enabled(false);

  if (!json_path.empty()) {
    // Wall-clock rates vary with the runner; the JSON is an artifact for
    // tracking trends, not a CI gate.
    std::string out = "{\n  \"schema\": \"jfeed-bench-throughput-v1\",\n";
    out += "  \"assignment\": \"" + assignment_id + "\",\n";
    out += "  \"submissions\": " + std::to_string(corpus.size()) + ",\n";
    out += "  \"distinct\": " +
           std::to_string(std::min(distinct, corpus.size())) + ",\n";
    out += "  \"hardware_threads\": " + std::to_string(hw) + ",\n";
    out += "  \"allocs_per_submission\": " +
           std::to_string(allocs_per_submission) + ",\n";
    double overhead_pct =
        obs_baseline_s > 0
            ? 100.0 * (obs_instrumented_s - obs_baseline_s) / obs_baseline_s
            : 0.0;
    out += "  \"obs\": {\"baseline_s\": " + std::to_string(obs_baseline_s) +
           ", \"instrumented_s\": " + std::to_string(obs_instrumented_s) +
           ", \"overhead_pct\": " + std::to_string(overhead_pct) + "},\n";
    out += "  \"rows\": [\n" + json_rows + "\n  ]\n}\n";
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fputs(out.c_str(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
  }
  if (hw <= 1) {
    std::printf(
        "\nnote: single hardware thread — the jobs sweep measures scheduler "
        "overhead here;\nworker-pool speedup requires a multi-core host. The "
        "cache rows show the\ncontent-addressed dedup win, which is "
        "core-count independent.\n");
  }
  return 0;
}
