// Sec. IV: the subgraph-matching core is worst-case O(n^m) but fast in
// practice on intro-sized graphs. These microbenchmarks sweep the EPDG size
// (synthetic programs with a growing number of statements) and the pattern
// portfolio, and measure the end-to-end Algorithm 2 cost on the twelve
// knowledge-base references.

#include <string>

#include <benchmark/benchmark.h>

#include "core/pattern_matcher.h"
#include "core/submission_matcher.h"
#include "javalang/parser.h"
#include "kb/assignments.h"
#include "pdg/epdg.h"

namespace {

namespace core = jfeed::core;
namespace java = jfeed::java;
namespace pdg = jfeed::pdg;

/// Builds a program with `loops` copies of the odd-accumulation loop, so
/// the EPDG grows linearly and the pattern has many candidate regions.
std::string ProgramWithLoops(int loops) {
  std::string source = "void f(int[] a) {\n";
  for (int l = 0; l < loops; ++l) {
    std::string acc = "s" + std::to_string(l);
    std::string idx = "i" + std::to_string(l);
    source += "  int " + acc + " = 0;\n";
    source += "  for (int " + idx + " = 0; " + idx + " < a.length; " + idx +
              "++)\n";
    source += "    if (" + idx + " % 2 == 1)\n";
    source += "      " + acc + " += a[" + idx + "];\n";
    source += "  System.out.println(" + acc + ");\n";
  }
  source += "}\n";
  return source;
}

pdg::Epdg BuildGraph(const std::string& source) {
  auto unit = java::Parse(source);
  auto graph = pdg::BuildEpdg(unit->methods[0]);
  return std::move(*graph);
}

void BM_PatternMatchingGraphSize(benchmark::State& state) {
  pdg::Epdg graph = BuildGraph(ProgramWithLoops(
      static_cast<int>(state.range(0))));
  const core::Pattern& pattern =
      jfeed::kb::PatternLibrary::Get().at("odd-positions");
  for (auto _ : state) {
    auto embeddings = core::MatchPattern(pattern, graph);
    benchmark::DoNotOptimize(embeddings);
  }
  state.counters["nodes"] = static_cast<double>(graph.NodeCount());
  state.counters["edges"] = static_cast<double>(graph.EdgeCount());
}
BENCHMARK(BM_PatternMatchingGraphSize)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Arg(16);

void BM_PatternMatchingAllPatterns(benchmark::State& state) {
  // Every library pattern over the Assignment 1 reference graph.
  const auto& assignment =
      jfeed::kb::KnowledgeBase::Get().assignment("assignment1");
  pdg::Epdg graph = BuildGraph(assignment.Reference());
  const auto& library = jfeed::kb::PatternLibrary::Get();
  for (auto _ : state) {
    size_t total = 0;
    for (const auto& id : library.ids()) {
      total += core::MatchPattern(library.at(id), graph).size();
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_PatternMatchingAllPatterns);

void BM_SubmissionMatching(benchmark::State& state) {
  // Full Algorithm 2 (EPDG construction + patterns + constraints) per
  // knowledge-base assignment reference — the paper's per-submission M.
  const auto& kb = jfeed::kb::KnowledgeBase::Get();
  const auto& id = kb.assignment_ids()[state.range(0)];
  const auto& assignment = kb.assignment(id);
  auto unit = java::Parse(assignment.Reference());
  for (auto _ : state) {
    auto feedback = core::MatchSubmission(assignment.spec, *unit);
    benchmark::DoNotOptimize(feedback);
  }
  state.SetLabel(id);
}
BENCHMARK(BM_SubmissionMatching)->DenseRange(0, 11);

void BM_VariableCombinations(benchmark::State& state) {
  // Cost of the injection enumeration (Algorithm 1, line 19) as variable
  // counts grow.
  std::set<std::string> from, to;
  for (int i = 0; i < state.range(0); ++i) {
    from.insert("p" + std::to_string(i));
  }
  for (int i = 0; i < state.range(0) + 2; ++i) {
    to.insert("v" + std::to_string(i));
  }
  for (auto _ : state) {
    auto injections = core::EnumerateInjections(from, to);
    benchmark::DoNotOptimize(injections);
  }
}
BENCHMARK(BM_VariableCombinations)->DenseRange(1, 5);

}  // namespace

BENCHMARK_MAIN();
