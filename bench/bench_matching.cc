// Sec. IV: the subgraph-matching core is worst-case O(n^m) but fast in
// practice on intro-sized graphs. This binary has two halves:
//
//   1. The engine report (always runs): legacy vs. indexed match engine
//      over every knowledge-base assignment (Algorithm 2 on the reference
//      submission) plus the loops ablation workload, reporting
//      backtracking steps, template checks, pruning/memo counters, wall
//      time and index build time. `--json=PATH` additionally writes the
//      machine-readable BENCH_matching.json that CI diffs against the
//      checked-in baseline (step counts are deterministic; wall times are
//      informational only). The report fails (exit 1) when the engines
//      disagree on any feedback, so perf numbers can never be quoted from
//      a semantically wrong engine.
//
//   2. google-benchmark microbenches sweeping the EPDG size, the pattern
//      portfolio and the injection enumeration (skipped with
//      `--skip-microbench`; extra args go to the benchmark library).

#include <chrono>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "alloc_probe.h"
#include "core/pattern_matcher.h"
#include "core/submission_matcher.h"
#include "javalang/ast.h"
#include "javalang/parser.h"
#include "kb/assignments.h"
#include "obs/trace.h"
#include "pdg/epdg.h"
#include "pdg/match_index.h"
#include "support/arena.h"

namespace {

namespace core = jfeed::core;
namespace java = jfeed::java;
namespace pdg = jfeed::pdg;

using Clock = std::chrono::steady_clock;

/// Builds a program with `loops` copies of the odd-accumulation loop, so
/// the EPDG grows linearly and the pattern has many candidate regions.
std::string ProgramWithLoops(int loops) {
  std::string source = "void f(int[] a) {\n";
  for (int l = 0; l < loops; ++l) {
    std::string acc = "s" + std::to_string(l);
    std::string idx = "i" + std::to_string(l);
    source += "  int " + acc + " = 0;\n";
    source += "  for (int " + idx + " = 0; " + idx + " < a.length; " + idx +
              "++)\n";
    source += "    if (" + idx + " % 2 == 1)\n";
    source += "      " + acc + " += a[" + idx + "];\n";
    source += "  System.out.println(" + acc + ");\n";
  }
  source += "}\n";
  return source;
}

pdg::Epdg BuildGraph(const std::string& source) {
  auto unit = java::Parse(source);
  auto graph = pdg::BuildEpdg(unit->methods[0]);
  return std::move(*graph);
}

// ---------------------------------------------------------------------------
// Engine report.

struct EngineRun {
  core::MatchStats stats;
  double wall_us = 0.0;
};

struct AssignmentReport {
  std::string id;
  EngineRun legacy;
  EngineRun indexed;
  double index_build_us = 0.0;
  /// Heap allocations of one steady-state pooled hot-path run (parse +
  /// EPDG + index + match on recycled arenas) — deterministic, CI-gated.
  int64_t allocs_per_submission = 0;
};

/// Counts the heap allocations of one parse→EPDG→index→match run in the
/// configuration the grading pipeline uses in steady state: pooled
/// EpdgMemory and scratch arena, reset (not destroyed) between runs, with
/// AST nodes bump-allocated. The first rep warms the arena chunks and any
/// lazy pattern state; the last rep's count is the steady-state number.
int64_t MeasurePooledAllocs(const core::AssignmentSpec& spec,
                            const std::string& source) {
  pdg::EpdgMemory memory;
  jfeed::Arena scratch;
  core::SubmissionMatchOptions options;
  options.epdg_memory = &memory;
  options.match.scratch_arena = &scratch;
  constexpr int kReps = 3;
  int64_t allocs = 0;
  for (int r = 0; r < kReps; ++r) {
    memory.Reset();
    scratch.Reset();
    java::AstArenaScope ast_scope(&memory.arena);
    int64_t before = jfeed::bench::AllocCount();
    auto unit = java::Parse(source);
    if (!unit.ok()) return -1;
    auto feedback = core::MatchSubmission(spec, *unit, options);
    benchmark::DoNotOptimize(feedback);
    allocs = jfeed::bench::AllocCount() - before;
  }
  return allocs;
}

struct AblationReport {
  std::string workload;
  int64_t legacy_steps = 0;
  int64_t indexed_steps = 0;
  int64_t candidates_pruned = 0;
};

struct EngineReport {
  std::vector<AssignmentReport> assignments;
  AblationReport ablation;
  bool equivalent = true;
};

std::string FeedbackKey(const core::SubmissionFeedback& f) {
  std::string out = std::to_string(f.score);
  for (const auto& c : f.comments) {
    out += "|" + c.source_id + ":" + std::to_string(static_cast<int>(c.kind)) +
           ":" + c.message;
    for (const auto& d : c.details) out += ";" + d;
  }
  return out;
}

/// Grades `unit` with `engine`, returning the (deterministic) match stats
/// and the best wall time over `reps` runs.
EngineRun TimeSubmission(const core::AssignmentSpec& spec,
                         const java::CompilationUnit& unit,
                         core::MatchEngine engine, int reps,
                         std::string* feedback_key) {
  core::SubmissionMatchOptions options;
  options.match.engine = engine;
  EngineRun run;
  for (int r = 0; r < reps; ++r) {
    Clock::time_point t0 = Clock::now();
    auto feedback = core::MatchSubmission(spec, unit, options);
    double us =
        std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
    if (r == 0 || us < run.wall_us) run.wall_us = us;
    if (feedback.ok()) {
      run.stats = feedback->match_stats;
      if (feedback_key != nullptr) *feedback_key = FeedbackKey(*feedback);
    }
  }
  return run;
}

EngineReport RunEngineReport() {
  EngineReport report;
  const auto& kb = jfeed::kb::KnowledgeBase::Get();
  constexpr int kReps = 5;

  std::printf("match engine report: legacy vs. indexed, %zu assignments "
              "(reference submissions, best of %d runs)\n\n",
              kb.assignment_ids().size(), kReps);
  std::printf("  %-18s %10s %10s %8s %9s %8s %10s %10s %9s %7s\n",
              "assignment", "steps", "steps", "step", "pruned", "memo",
              "wall us", "wall us", "index us", "allocs");
  std::printf("  %-18s %10s %10s %8s %9s %8s %10s %10s %9s %7s\n", "",
              "legacy", "indexed", "ratio", "", "hits", "legacy", "indexed",
              "build", "pooled");

  for (const auto& id : kb.assignment_ids()) {
    const auto& assignment = kb.assignment(id);
    auto unit = java::Parse(assignment.Reference());
    if (!unit.ok()) continue;

    AssignmentReport ar;
    ar.id = id;
    std::string legacy_key, indexed_key;
    ar.legacy = TimeSubmission(assignment.spec, *unit,
                               core::MatchEngine::kLegacy, kReps,
                               &legacy_key);
    ar.indexed = TimeSubmission(assignment.spec, *unit,
                                core::MatchEngine::kIndexed, kReps,
                                &indexed_key);
    if (legacy_key != indexed_key) {
      std::fprintf(stderr, "FAIL: engines disagree on %s\n", id.c_str());
      report.equivalent = false;
    }

    // Index build cost, amortized over enough reps to be measurable.
    auto graphs = pdg::BuildAllEpdgs(*unit);
    if (graphs.ok()) {
      constexpr int kIndexReps = 200;
      Clock::time_point t0 = Clock::now();
      for (int r = 0; r < kIndexReps; ++r) {
        for (const auto& g : *graphs) {
          pdg::MatchIndex index(g);
          benchmark::DoNotOptimize(index);
        }
      }
      ar.index_build_us =
          std::chrono::duration<double, std::micro>(Clock::now() - t0)
              .count() /
          kIndexReps;
    }

    ar.allocs_per_submission =
        MeasurePooledAllocs(assignment.spec, assignment.Reference());

    double ratio = ar.indexed.stats.steps > 0
                       ? static_cast<double>(ar.legacy.stats.steps) /
                             static_cast<double>(ar.indexed.stats.steps)
                       : 0.0;
    std::printf("  %-18s %10lld %10lld %7.2fx %9lld %8lld %10.0f %10.0f "
                "%9.1f %7lld\n",
                id.c_str(), static_cast<long long>(ar.legacy.stats.steps),
                static_cast<long long>(ar.indexed.stats.steps), ratio,
                static_cast<long long>(ar.indexed.stats.candidates_pruned),
                static_cast<long long>(ar.indexed.stats.memo_hits),
                ar.legacy.wall_us, ar.indexed.wall_us, ar.index_build_us,
                static_cast<long long>(ar.allocs_per_submission));
    report.assignments.push_back(std::move(ar));
  }

  // Ablation workload: many near-identical candidate regions, where the
  // signature pruning has to pay for itself. Sums the four portfolio
  // patterns the ordering ablation uses.
  {
    constexpr int kLoops = 12;
    report.ablation.workload =
        "loops-" + std::to_string(kLoops) + " x 4 portfolio patterns";
    pdg::Epdg graph = BuildGraph(ProgramWithLoops(kLoops));
    pdg::MatchIndex index(graph);
    for (const char* pid : {"odd-positions", "even-positions",
                            "cond-accum-add", "assign-print"}) {
      const core::Pattern& pattern = jfeed::kb::PatternLibrary::Get().at(pid);
      core::MatchOptions legacy;
      legacy.engine = core::MatchEngine::kLegacy;
      core::MatchStats legacy_stats, indexed_stats;
      auto legacy_ms =
          core::MatchPattern(pattern, graph, legacy, &legacy_stats);
      auto indexed_ms =
          core::MatchPattern(pattern, graph, index, {}, &indexed_stats);
      if (legacy_ms.size() != indexed_ms.size()) {
        std::fprintf(stderr, "FAIL: engines disagree on ablation pattern %s\n",
                     pid);
        report.equivalent = false;
      }
      report.ablation.legacy_steps += legacy_stats.steps;
      report.ablation.indexed_steps += indexed_stats.steps;
      report.ablation.candidates_pruned += indexed_stats.candidates_pruned;
    }
    double ratio =
        report.ablation.indexed_steps > 0
            ? static_cast<double>(report.ablation.legacy_steps) /
                  static_cast<double>(report.ablation.indexed_steps)
            : 0.0;
    std::printf("\n  ablation workload (%s): legacy %lld steps, indexed %lld "
                "steps — %.2fx reduction, %lld candidates pruned\n",
                report.ablation.workload.c_str(),
                static_cast<long long>(report.ablation.legacy_steps),
                static_cast<long long>(report.ablation.indexed_steps), ratio,
                static_cast<long long>(report.ablation.candidates_pruned));
  }

  int64_t total_legacy = 0, total_indexed = 0, total_allocs = 0;
  for (const auto& ar : report.assignments) {
    total_legacy += ar.legacy.stats.steps;
    total_indexed += ar.indexed.stats.steps;
    total_allocs += ar.allocs_per_submission;
  }
  std::printf("  totals: legacy %lld steps, indexed %lld steps (%.2fx), "
              "%lld pooled allocs/submission\n",
              static_cast<long long>(total_legacy),
              static_cast<long long>(total_indexed),
              total_indexed > 0 ? static_cast<double>(total_legacy) /
                                      static_cast<double>(total_indexed)
                                : 0.0,
              static_cast<long long>(total_allocs));
  std::printf("  equivalence: %s\n\n",
              report.equivalent ? "legacy == indexed on all workloads"
                                : "FAILED");
  return report;
}

void AppendEngineRun(const char* name, const EngineRun& run,
                     std::string* out) {
  *out += std::string("\"") + name + "\": {";
  *out += "\"steps\": " + std::to_string(run.stats.steps) + ", ";
  *out += "\"regex_checks\": " + std::to_string(run.stats.regex_checks) +
          ", ";
  *out += "\"candidates_pruned\": " +
          std::to_string(run.stats.candidates_pruned) + ", ";
  *out += "\"memo_hits\": " + std::to_string(run.stats.memo_hits) + ", ";
  *out += "\"wall_us\": " + std::to_string(run.wall_us) + "}";
}

/// Writes the machine-readable report. Step/check counts are deterministic
/// and CI-diffable; wall_us and index_build_us vary with the host and are
/// informational.
bool WriteJson(const std::string& path, const EngineReport& report) {
  std::string out = "{\n  \"schema\": \"jfeed-bench-matching-v1\",\n";
  int64_t total_legacy = 0, total_indexed = 0, total_allocs = 0;
  out += "  \"assignments\": [\n";
  for (size_t i = 0; i < report.assignments.size(); ++i) {
    const AssignmentReport& ar = report.assignments[i];
    total_legacy += ar.legacy.stats.steps;
    total_indexed += ar.indexed.stats.steps;
    total_allocs += ar.allocs_per_submission;
    out += "    {\"id\": \"" + ar.id + "\", ";
    AppendEngineRun("legacy", ar.legacy, &out);
    out += ", ";
    AppendEngineRun("indexed", ar.indexed, &out);
    out += ", \"index_build_us\": " + std::to_string(ar.index_build_us);
    out += ", \"allocs_per_submission\": " +
           std::to_string(ar.allocs_per_submission) + "}";
    out += i + 1 < report.assignments.size() ? ",\n" : "\n";
  }
  out += "  ],\n";
  out += "  \"ablation\": {\"workload\": \"" + report.ablation.workload +
         "\", \"legacy_steps\": " +
         std::to_string(report.ablation.legacy_steps) +
         ", \"indexed_steps\": " +
         std::to_string(report.ablation.indexed_steps) +
         ", \"candidates_pruned\": " +
         std::to_string(report.ablation.candidates_pruned) + "},\n";
  out += "  \"totals\": {\"legacy_steps\": " + std::to_string(total_legacy) +
         ", \"indexed_steps\": " + std::to_string(total_indexed) +
         ", \"allocs_per_submission\": " + std::to_string(total_allocs) +
         "},\n";
  out += std::string("  \"equivalent\": ") +
         (report.equivalent ? "true" : "false") + "\n}\n";

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fputs(out.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

// ---------------------------------------------------------------------------
// google-benchmark microbenches.

void BM_PatternMatchingGraphSize(benchmark::State& state) {
  pdg::Epdg graph = BuildGraph(ProgramWithLoops(
      static_cast<int>(state.range(0))));
  const core::Pattern& pattern =
      jfeed::kb::PatternLibrary::Get().at("odd-positions");
  for (auto _ : state) {
    auto embeddings = core::MatchPattern(pattern, graph);
    benchmark::DoNotOptimize(embeddings);
  }
  state.counters["nodes"] = static_cast<double>(graph.NodeCount());
  state.counters["edges"] = static_cast<double>(graph.EdgeCount());
}
BENCHMARK(BM_PatternMatchingGraphSize)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Arg(16);

void BM_PatternMatchingSharedIndex(benchmark::State& state) {
  // The index amortization case Algorithm 2 hits: one graph, the whole
  // pattern portfolio, index built once outside the loop.
  pdg::Epdg graph = BuildGraph(ProgramWithLoops(
      static_cast<int>(state.range(0))));
  pdg::MatchIndex index(graph);
  const auto& library = jfeed::kb::PatternLibrary::Get();
  for (auto _ : state) {
    size_t total = 0;
    for (const auto& id : library.ids()) {
      total += core::MatchPattern(library.at(id), graph, index, {}).size();
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_PatternMatchingSharedIndex)->Arg(4)->Arg(16);

void BM_PatternMatchingAllPatterns(benchmark::State& state) {
  // Every library pattern over the Assignment 1 reference graph.
  const auto& assignment =
      jfeed::kb::KnowledgeBase::Get().assignment("assignment1");
  pdg::Epdg graph = BuildGraph(assignment.Reference());
  const auto& library = jfeed::kb::PatternLibrary::Get();
  for (auto _ : state) {
    size_t total = 0;
    for (const auto& id : library.ids()) {
      total += core::MatchPattern(library.at(id), graph).size();
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_PatternMatchingAllPatterns);

void BM_SubmissionMatching(benchmark::State& state) {
  // Full Algorithm 2 (EPDG construction + patterns + constraints) per
  // knowledge-base assignment reference — the paper's per-submission M.
  const auto& kb = jfeed::kb::KnowledgeBase::Get();
  const auto& id = kb.assignment_ids()[state.range(0)];
  const auto& assignment = kb.assignment(id);
  auto unit = java::Parse(assignment.Reference());
  for (auto _ : state) {
    auto feedback = core::MatchSubmission(assignment.spec, *unit);
    benchmark::DoNotOptimize(feedback);
  }
  state.SetLabel(id);
}
BENCHMARK(BM_SubmissionMatching)->DenseRange(0, 11);

void BM_VariableCombinations(benchmark::State& state) {
  // Cost of the injection enumeration (Algorithm 1, line 19) as variable
  // counts grow.
  std::set<std::string> from, to;
  for (int i = 0; i < state.range(0); ++i) {
    from.insert("p" + std::to_string(i));
  }
  for (int i = 0; i < state.range(0) + 2; ++i) {
    to.insert("v" + std::to_string(i));
  }
  for (auto _ : state) {
    auto injections = core::EnumerateInjections(from, to);
    benchmark::DoNotOptimize(injections);
  }
}
BENCHMARK(BM_VariableCombinations)->DenseRange(1, 5);

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string trace_path;
  bool skip_microbench = false;
  std::vector<char*> bench_args;
  bench_args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      trace_path = argv[i] + 12;
    } else if (std::strcmp(argv[i], "--skip-microbench") == 0) {
      skip_microbench = true;
    } else {
      bench_args.push_back(argv[i]);
    }
  }

  // Tracing covers the engine report (the corpus sweep both engines run),
  // giving a per-submission span breakdown to open in Perfetto.
  if (!trace_path.empty()) jfeed::obs::Tracer::Global().Enable();
  EngineReport report = RunEngineReport();
  if (!trace_path.empty()) {
    jfeed::obs::Tracer::Global().Disable();
    std::FILE* f = std::fopen(trace_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      return 1;
    }
    std::fputs(jfeed::obs::Tracer::Global().ExportChromeJson().c_str(), f);
    std::fclose(f);
    std::printf("wrote %s\n", trace_path.c_str());
  }
  if (!json_path.empty() && !WriteJson(json_path, report)) return 1;
  if (!report.equivalent) return 1;

  if (!skip_microbench) {
    int bench_argc = static_cast<int>(bench_args.size());
    benchmark::Initialize(&bench_argc, bench_args.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                               bench_args.data())) {
      return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  return 0;
}
