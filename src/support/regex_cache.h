#ifndef JFEED_SUPPORT_REGEX_CACHE_H_
#define JFEED_SUPPORT_REGEX_CACHE_H_

#include <cstdint>
#include <regex>
#include <string>
#include <unordered_map>
#include <vector>

namespace jfeed {

/// Caches compiled std::regex objects keyed by their pattern string.
/// Pattern matching instantiates the same regex template once per candidate
/// variable binding; submissions reuse a small vocabulary of variable names,
/// so the hit rate is high and compilation cost disappears from the hot path.
///
/// A single instance is not thread-safe; concurrent matching uses one cache
/// per thread via ThreadLocal(). There is deliberately no process-wide
/// shared instance any more: the old Global() singleton was mutable state
/// shared across threads and blocked the parallel batch scheduler.
///
/// When the cache is full it evicts with a CLOCK-style second-chance scan
/// instead of dropping everything: each hit sets an entry's reference bit,
/// and the eviction hand only reclaims entries whose bit is clear, so the
/// hot working set of a long batch survives overflow.
///
/// The pointer returned by Get() is valid until the next Get() call on the
/// same cache (a later insert may evict the entry).
class RegexCache {
 public:
  explicit RegexCache(size_t max_entries = 65536)
      : max_entries_(max_entries == 0 ? 1 : max_entries) {}

  RegexCache(const RegexCache&) = delete;
  RegexCache& operator=(const RegexCache&) = delete;

  /// Returns the compiled regex for `pattern`, or nullptr if the pattern is
  /// not a valid ECMAScript regex (negative results are cached too).
  const std::regex* Get(const std::string& pattern) {
    auto it = cache_.find(pattern);
    if (it != cache_.end()) {
      it->second.referenced = true;
      ++hits_;
      return it->second.valid ? &it->second.re : nullptr;
    }
    ++misses_;
    if (cache_.size() >= max_entries_) EvictOne();
    Entry& entry = cache_[pattern];
    clock_.push_back(pattern);
    try {
      entry.re = std::regex(pattern, std::regex::ECMAScript);
      entry.valid = true;
    } catch (const std::regex_error&) {
      entry.valid = false;
    }
    return entry.valid ? &entry.re : nullptr;
  }

  size_t size() const { return cache_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }

  /// Per-thread cache instance. Each scheduler worker (and the main thread)
  /// gets its own cache, so matching runs lock-free in parallel; the
  /// instance lives until its thread exits.
  static RegexCache& ThreadLocal() {
    thread_local RegexCache cache;
    return cache;
  }

 private:
  struct Entry {
    std::regex re;
    bool valid = false;
    bool referenced = false;  ///< Second-chance bit, set on every hit.
  };

  /// Advances the clock hand, granting one more round to recently-hit
  /// entries, and evicts the first entry found with a clear reference bit.
  /// Bounded by two sweeps of the ring, after which the entry under the
  /// hand is evicted unconditionally.
  void EvictOne() {
    for (size_t step = 0; step < 2 * clock_.size() + 1; ++step) {
      if (hand_ >= clock_.size()) hand_ = 0;
      auto it = cache_.find(clock_[hand_]);
      if (it != cache_.end() && it->second.referenced) {
        it->second.referenced = false;
        ++hand_;
        continue;
      }
      if (it != cache_.end()) cache_.erase(it);
      clock_[hand_] = std::move(clock_.back());
      clock_.pop_back();
      ++evictions_;
      return;
    }
  }

  size_t max_entries_;
  std::unordered_map<std::string, Entry> cache_;
  std::vector<std::string> clock_;  ///< Keys in eviction-scan order.
  size_t hand_ = 0;                 ///< Clock hand into `clock_`.
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace jfeed

#endif  // JFEED_SUPPORT_REGEX_CACHE_H_
