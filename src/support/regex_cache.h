#ifndef JFEED_SUPPORT_REGEX_CACHE_H_
#define JFEED_SUPPORT_REGEX_CACHE_H_

#include <cstdint>
#include <regex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "support/lite_regex.h"

namespace jfeed {

/// Caches compiled regex programs keyed by their pattern string. Pattern
/// matching instantiates the same regex template once per candidate
/// variable binding; submissions reuse a small vocabulary of variable
/// names, so the hit rate is high and compilation cost disappears from the
/// hot path.
///
/// Each entry is compiled for the LiteRegex Pike VM when the pattern fits
/// its subset (every knowledge-base template does), falling back to
/// std::regex otherwise. The distinction matters for allocator traffic:
/// Search() through LiteRegex is allocation-free at steady state, while a
/// single std::regex_search call allocates several times even on failure —
/// and template checks are the innermost operation of Algorithm 1.
///
/// A single instance is not thread-safe; concurrent matching uses one cache
/// per thread via ThreadLocal(). There is deliberately no process-wide
/// shared instance any more: the old Global() singleton was mutable state
/// shared across threads and blocked the parallel batch scheduler.
///
/// When the cache is full it evicts with a CLOCK-style second-chance scan
/// instead of dropping everything: each hit sets an entry's reference bit,
/// and the eviction hand only reclaims entries whose bit is clear, so the
/// hot working set of a long batch survives overflow.
///
/// The pointer returned by Get() is valid until the next Get()/Search()
/// call on the same cache (a later insert may evict the entry).
class RegexCache {
 public:
  explicit RegexCache(size_t max_entries = 65536)
      : max_entries_(max_entries == 0 ? 1 : max_entries) {}

  RegexCache(const RegexCache&) = delete;
  RegexCache& operator=(const RegexCache&) = delete;

  /// True when some substring of `text` matches `pattern`
  /// (std::regex_search semantics). Invalid patterns never match — the
  /// same contract Get() expresses by returning nullptr.
  bool Search(const std::string& pattern, std::string_view text) {
    Entry& entry = Lookup(pattern);
    if (entry.lite_ok) return entry.lite.Search(text, &scratch_);
    EnsureStdRegex(entry, pattern);
    if (!entry.re_valid) return false;
    return std::regex_search(text.begin(), text.end(), entry.re);
  }

  /// True when `pattern` is a valid regex (LiteRegex subset or ECMAScript).
  bool Valid(const std::string& pattern) {
    Entry& entry = Lookup(pattern);
    if (entry.lite_ok) return true;
    EnsureStdRegex(entry, pattern);
    return entry.re_valid;
  }

  /// Returns the compiled std::regex for `pattern`, or nullptr if the
  /// pattern is not a valid ECMAScript regex (negative results are cached
  /// too). Prefer Search(); this exists for callers that need the
  /// std::regex object itself.
  const std::regex* Get(const std::string& pattern) {
    Entry& entry = Lookup(pattern);
    EnsureStdRegex(entry, pattern);
    return entry.re_valid ? &entry.re : nullptr;
  }

  size_t size() const { return cache_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }

  /// Per-thread cache instance. Each scheduler worker (and the main thread)
  /// gets its own cache, so matching runs lock-free in parallel; the
  /// instance lives until its thread exits.
  static RegexCache& ThreadLocal() {
    thread_local RegexCache cache;
    return cache;
  }

 private:
  struct Entry {
    LiteRegex lite;
    std::regex re;
    bool lite_ok = false;
    bool re_compiled = false;
    /// Validity of the pattern; only authoritative once re_compiled or
    /// lite_ok (LiteRegex accepts only patterns that are valid ECMAScript).
    bool re_valid = true;
    bool referenced = false;  ///< Second-chance bit, set on every hit.
  };

  Entry& Lookup(const std::string& pattern) {
    auto it = cache_.find(pattern);
    if (it != cache_.end()) {
      it->second.referenced = true;
      ++hits_;
      return it->second;
    }
    ++misses_;
    if (cache_.size() >= max_entries_) EvictOne();
    Entry& entry = cache_[pattern];
    clock_.push_back(pattern);
    entry.lite_ok = LiteRegex::Compile(pattern, &entry.lite);
    return entry;
  }

  /// Lazily compiles the std::regex arm (skipped entirely for patterns the
  /// Pike VM handles — the common case — unless a caller asks via Get()).
  static void EnsureStdRegex(Entry& entry, const std::string& pattern) {
    if (entry.re_compiled) return;
    entry.re_compiled = true;
    try {
      entry.re = std::regex(pattern, std::regex::ECMAScript);
      entry.re_valid = true;
    } catch (const std::regex_error&) {
      entry.re_valid = false;
    }
  }

  /// Advances the clock hand, granting one more round to recently-hit
  /// entries, and evicts the first entry found with a clear reference bit.
  /// Bounded by two sweeps of the ring, after which the entry under the
  /// hand is evicted unconditionally.
  void EvictOne() {
    for (size_t step = 0; step < 2 * clock_.size() + 1; ++step) {
      if (hand_ >= clock_.size()) hand_ = 0;
      auto it = cache_.find(clock_[hand_]);
      if (it != cache_.end() && it->second.referenced) {
        it->second.referenced = false;
        ++hand_;
        continue;
      }
      if (it != cache_.end()) cache_.erase(it);
      clock_[hand_] = std::move(clock_.back());
      clock_.pop_back();
      ++evictions_;
      return;
    }
  }

  size_t max_entries_;
  std::unordered_map<std::string, Entry> cache_;
  std::vector<std::string> clock_;  ///< Keys in eviction-scan order.
  size_t hand_ = 0;                 ///< Clock hand into `clock_`.
  LiteRegexScratch scratch_;        ///< Reused by every Search() call.
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace jfeed

#endif  // JFEED_SUPPORT_REGEX_CACHE_H_
