#ifndef JFEED_SUPPORT_REGEX_CACHE_H_
#define JFEED_SUPPORT_REGEX_CACHE_H_

#include <regex>
#include <string>
#include <unordered_map>

namespace jfeed {

/// Caches compiled std::regex objects keyed by their pattern string.
/// Pattern matching instantiates the same regex template once per candidate
/// variable binding; submissions reuse a small vocabulary of variable names,
/// so the hit rate is high and compilation cost disappears from the hot path.
///
/// Not thread-safe; use one cache per matching thread (the library's matcher
/// is single-threaded, matching the paper's single-threaded evaluation).
class RegexCache {
 public:
  explicit RegexCache(size_t max_entries = 65536)
      : max_entries_(max_entries) {}

  /// Returns the compiled regex for `pattern`, or nullptr if the pattern is
  /// not a valid ECMAScript regex.
  const std::regex* Get(const std::string& pattern) {
    auto it = cache_.find(pattern);
    if (it != cache_.end()) return it->second.valid ? &it->second.re : nullptr;
    if (cache_.size() >= max_entries_) cache_.clear();
    Entry& entry = cache_[pattern];
    try {
      entry.re = std::regex(pattern, std::regex::ECMAScript);
      entry.valid = true;
    } catch (const std::regex_error&) {
      entry.valid = false;
    }
    return entry.valid ? &entry.re : nullptr;
  }

  size_t size() const { return cache_.size(); }

  /// Process-wide cache for single-threaded use.
  static RegexCache& Global() {
    static RegexCache* cache = new RegexCache();
    return *cache;
  }

 private:
  struct Entry {
    std::regex re;
    bool valid = false;
  };
  size_t max_entries_;
  std::unordered_map<std::string, Entry> cache_;
};

}  // namespace jfeed

#endif  // JFEED_SUPPORT_REGEX_CACHE_H_
