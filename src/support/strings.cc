#include "support/strings.h"

#include <cctype>

namespace jfeed {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Trim(std::string_view text) {
  size_t b = 0;
  size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return std::string(text.substr(b, e - b));
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string ReplaceAll(std::string_view text, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(text);
  std::string out;
  size_t pos = 0;
  while (true) {
    size_t hit = text.find(from, pos);
    if (hit == std::string_view::npos) {
      out.append(text.substr(pos));
      return out;
    }
    out.append(text.substr(pos, hit - pos));
    out.append(to);
    pos = hit + from.size();
  }
}

std::string RegexEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  RegexEscapeAppend(text, &out);
  return out;
}

void RegexEscapeAppend(std::string_view text, std::string* out) {
  static constexpr std::string_view kMeta = R"(\^$.|?*+()[]{})";
  for (char c : text) {
    if (kMeta.find(c) != std::string_view::npos) out->push_back('\\');
    out->push_back(c);
  }
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

bool IsIdentPart(char c) {
  return IsIdentStart(c) || std::isdigit(static_cast<unsigned char>(c));
}

}  // namespace jfeed
