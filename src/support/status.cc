#include "support/status.h"

namespace jfeed {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kSemanticError:
      return "SemanticError";
    case StatusCode::kExecutionError:
      return "ExecutionError";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace jfeed
