#ifndef JFEED_SUPPORT_FAULT_H_
#define JFEED_SUPPORT_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "support/status.h"

namespace jfeed::fault {

/// Canonical injection-point names. Each name marks one place in the
/// pipeline where `JFEED_FAULT_POINT` is invoked; the chaos tests sweep
/// `Injector::AllPoints()` and force a failure at each one in turn.
namespace points {
inline constexpr const char kLexer[] = "javalang.lex";
inline constexpr const char kParser[] = "javalang.parse";
inline constexpr const char kEpdgBuilder[] = "pdg.build_epdg";
inline constexpr const char kInterpreterCall[] = "interp.call";
inline constexpr const char kMatcher[] = "core.match_submission";

// Fleet points, crossed in the broker (src/fleet), not the grading
// pipeline — listed by Injector::FleetPoints(), NOT AllPoints(), because
// the pipeline chaos sweep asserts a degradation-ladder rung per point and
// these fire nowhere inside a single-process grade. Configure the
// campaign's `code` to shape the symptom (kUnavailable reads as a worker
// crash / connection reset, kTimeout as a deadline blowout).
/// A grade attempt dispatched to a worker dies mid-flight (worker crash).
inline constexpr const char kFleetWorkerGrade[] = "fleet.worker_grade";
/// A health probe is blackholed (worker alive but unreachable).
inline constexpr const char kFleetProbe[] = "fleet.probe";
/// A worker answered, but too slowly to count (forced deadline expiry).
inline constexpr const char kFleetSlowResponse[] = "fleet.slow_response";

// Crossed in service::MethodCache::Lookup. In NEITHER AllPoints() nor
// FleetPoints(): a failing lookup degrades to a healthy full regrade —
// same feedback, no ladder-rung drop — so the pipeline chaos sweep's
// "one rung per point" assertion doesn't apply; a dedicated chaos test
// asserts the degrade-to-regrade contract instead.
inline constexpr const char kMethodCacheLookup[] = "cache.method_lookup";
}  // namespace points

/// Configuration of one injection campaign. The decision whether a given
/// hit of a given point fails is a pure function of (seed, point name, hit
/// ordinal), so a campaign is exactly reproducible from its config — the
/// property RocksDB's SyncPoint-style tests rely on.
///
/// Ordinal semantics under concurrency: hit ordinals are GLOBAL, not
/// per-thread — MaybeFail serializes on the injector mutex and assigns each
/// crossing of a point the next ordinal in process-wide arrival order.
/// Consequences for the parallel batch scheduler:
///
///  - Campaigns whose decision ignores the ordinal — `probability == 1.0`
///    (with or without `only_point`) or `probability == 0.0` — are
///    schedule-independent: every submission lands on the same documented
///    degradation-ladder rung at any worker count, which is what the
///    multi-threaded chaos tests assert.
///  - Campaigns with `0 < probability < 1` stay reproducible only for a
///    fixed thread interleaving: worker scheduling decides which crossing
///    receives which ordinal, so per-submission outcomes may differ between
///    runs (the *set* of decisions drawn from (seed, point, ordinal) is
///    still deterministic). Single-threaded grading keeps the original
///    exact reproducibility.
///
/// The batch scheduler additionally bypasses its result cache and
/// duplicate-submission dedup while an injection campaign is enabled, so
/// every submission actually crosses the points a campaign targets.
struct FaultConfig {
  uint64_t seed = 1;
  /// Probability in [0, 1] that a hit fails. 1.0 = fail every hit.
  double probability = 1.0;
  /// When non-empty, only this point ever fails; all others pass through.
  std::string only_point;
  /// Status code carried by injected failures.
  StatusCode code = StatusCode::kInternal;
};

/// Process-wide deterministic fault injector, in the style of RocksDB's
/// SyncPoint: a registry of named points compiled into the production code
/// paths. Disabled (the default) it costs one relaxed atomic load per
/// crossing; compiling with JFEED_FAULT_INJECTION_DISABLED removes the
/// crossings entirely (see the JFEED_FAULT_POINT macro below).
class Injector {
 public:
  static Injector& Get();

  /// Starts an injection campaign; resets all hit counters.
  void Enable(const FaultConfig& config);
  /// Stops injecting. Hit counters remain readable until the next Enable.
  void Disable();

  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Called (via JFEED_FAULT_POINT) each time execution crosses `point`.
  /// Returns OK, or the configured failure status when the deterministic
  /// decision function fires for this hit.
  Status MaybeFail(const char* point);

  /// Number of times `point` was crossed since the last Enable.
  int64_t Hits(const std::string& point) const;

  /// The canonical list of registered grading-pipeline injection points
  /// (the set the per-assignment chaos sweep iterates).
  static std::vector<std::string> AllPoints();

  /// The broker-side fleet injection points (worker crash, probe
  /// blackhole, slow response), swept by the fleet chaos suite.
  static std::vector<std::string> FleetPoints();

 private:
  Injector() = default;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  FaultConfig config_;
  std::map<std::string, int64_t> hits_;
};

/// RAII enable/disable for tests: enables the injector for the lifetime of
/// the scope and restores the disabled state on exit.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(const FaultConfig& config) {
    Injector::Get().Enable(config);
  }
  ~ScopedFaultInjection() { Injector::Get().Disable(); }

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
};

}  // namespace jfeed::fault

/// Marks a fault-injection point inside a function returning Status or
/// Result<T>. Expands to nothing when JFEED_FAULT_INJECTION_DISABLED is
/// defined (the CMake option JFEED_FAULT_INJECTION=OFF), so release builds
/// can opt out at zero cost.
#ifdef JFEED_FAULT_INJECTION_DISABLED
#define JFEED_FAULT_POINT(point) \
  do {                           \
  } while (0)
#else
#define JFEED_FAULT_POINT(point)                                  \
  do {                                                            \
    if (::jfeed::fault::Injector::Get().enabled()) {              \
      ::jfeed::Status _jfeed_fault_status =                       \
          ::jfeed::fault::Injector::Get().MaybeFail(point);       \
      if (!_jfeed_fault_status.ok()) return _jfeed_fault_status;  \
    }                                                             \
  } while (0)
#endif

#endif  // JFEED_SUPPORT_FAULT_H_
