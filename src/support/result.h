#ifndef JFEED_SUPPORT_RESULT_H_
#define JFEED_SUPPORT_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "support/status.h"

namespace jfeed {

/// Holds either a value of type T or a non-OK Status, in the style of
/// arrow::Result. Accessing the value of an errored Result is a programming
/// error and asserts in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK Status (the common error path,
  /// enables JFEED_RETURN_IF_ERROR / JFEED_ASSIGN_OR_RETURN interop).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }

  /// The error status; Status::OK() when the Result holds a value.
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when errored.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace jfeed

/// Evaluates an expression producing Result<T>; on error returns the Status,
/// otherwise moves the value into `lhs` (which may be a declaration).
#define JFEED_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value();

#define JFEED_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define JFEED_ASSIGN_OR_RETURN_NAME(a, b) JFEED_ASSIGN_OR_RETURN_CONCAT(a, b)

#define JFEED_ASSIGN_OR_RETURN(lhs, expr)                                     \
  JFEED_ASSIGN_OR_RETURN_IMPL(                                                \
      JFEED_ASSIGN_OR_RETURN_NAME(_jfeed_result_, __LINE__), lhs, expr)

#endif  // JFEED_SUPPORT_RESULT_H_
