#ifndef JFEED_SUPPORT_LITE_REGEX_H_
#define JFEED_SUPPORT_LITE_REGEX_H_

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

namespace jfeed {

/// Reusable per-thread execution scratch for LiteRegex::Search. Sized to
/// the largest program it has run; steady-state searches do zero allocator
/// calls.
struct LiteRegexScratch {
  std::vector<uint64_t> mark;      ///< Per-instruction visited generation.
  std::vector<uint32_t> cur, nxt;  ///< Pike-VM thread lists.
  std::vector<uint32_t> stack;     ///< Epsilon-closure work stack.
  uint64_t generation = 0;
};

/// A compiled matcher for the regex subset the pattern templates actually
/// use, executed as a Pike VM (simultaneous NFA threads) so Search() is
/// linear-time and — given a warmed scratch — allocation-free. std::regex
/// allocates several times per call even on failure, and template checks
/// are the innermost operation of Algorithm 1; this engine is what lets the
/// matcher run with near-zero allocator traffic.
///
/// Supported (ECMAScript semantics, byte-wise input): literals, `.`,
/// escapes (`\d \D \w \W \s \S \b \B \n \t \r \f \v \0` and escaped
/// punctuation), character classes with ranges and negation, groups
/// (capturing or `(?:`) — captures are irrelevant to the boolean result —
/// alternation, greedy/lazy `* + ?`, and the `^`/`$` anchors. Anything
/// else (bounded repetition, lookaround, backreferences, \x/\u escapes)
/// makes Compile return false and the caller falls back to std::regex.
class LiteRegex {
 public:
  /// Compiles `pattern`. Returns false when the pattern uses unsupported
  /// syntax or is malformed; `*out` is unusable then.
  static bool Compile(std::string_view pattern, LiteRegex* out);

  /// True when some substring of `text` matches (std::regex_search
  /// semantics). Allocation-free once `scratch` has grown to this
  /// program's size.
  bool Search(std::string_view text, LiteRegexScratch* scratch) const;

  size_t ProgramSize() const { return prog_.size(); }

 private:
  enum class Op : uint8_t {
    kChar,   ///< Consume one byte equal to `arg`.
    kAny,    ///< Consume one byte that is not a line terminator.
    kClass,  ///< Consume one byte in class `arg`.
    kMatch,  ///< Accept.
    kSplit,  ///< Fork to `x` and `y`.
    kJmp,    ///< Continue at `x`.
    kBegin,  ///< Assert start of text.
    kEnd,    ///< Assert end of text.
    kWordB,  ///< Assert word boundary.
    kNWordB  ///< Assert not a word boundary.
  };

  struct Inst {
    Op op;
    uint8_t arg = 0;
    int32_t x = 0, y = 0;
  };

  using ClassBits = std::array<uint32_t, 8>;  ///< 256-bit byte-set.

  class Compiler;

  bool AddThread(uint32_t pc, std::string_view text, size_t pos,
                 std::vector<uint32_t>* list, LiteRegexScratch* scratch,
                 uint64_t gen) const;

  std::vector<Inst> prog_;
  std::vector<ClassBits> classes_;
};

}  // namespace jfeed

#endif  // JFEED_SUPPORT_LITE_REGEX_H_
