#ifndef JFEED_SUPPORT_STATUS_H_
#define JFEED_SUPPORT_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace jfeed {

/// Error categories used across the library. The set is deliberately small:
/// a grading pipeline either fails to understand its input (parse/semantic),
/// fails at runtime inside the student program (execution), runs out of time
/// (timeout) or out of a bounded resource (resource exhausted), or is misused
/// (invalid argument / not found).
///
/// kTimeout and kResourceExhausted are deliberately distinct: a timeout means
/// a *time* budget ran out (step budget, wall-clock deadline) while resource
/// exhaustion means a *space* budget did (heap bytes, output bytes, call
/// depth, nesting depth). Downstream consumers — the grading service's
/// failure taxonomy in particular — route the two differently.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kParseError,
  kSemanticError,
  kExecutionError,
  kTimeout,
  kResourceExhausted,
  kNotFound,
  kInternal,
  kUnavailable,
};

/// Returns a stable human-readable name for a status code ("ParseError"...).
const char* StatusCodeName(StatusCode code);

/// Arrow/RocksDB-style status object. The library does not use exceptions;
/// every fallible operation returns a Status (or a Result<T>, see result.h).
///
/// A Status is cheap to copy in the OK case (empty message) and carries a
/// code plus a context message otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status SemanticError(std::string msg) {
    return Status(StatusCode::kSemanticError, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// Admission-control rejection: the service is up but cannot accept the
  /// request right now (e.g. a bounded queue is full). Retryable.
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace jfeed

/// Propagates a non-OK Status to the caller. Usable in functions returning
/// Status or Result<T> (Result is implicitly constructible from Status).
#define JFEED_RETURN_IF_ERROR(expr)                 \
  do {                                              \
    ::jfeed::Status _status = (expr);               \
    if (!_status.ok()) return _status;              \
  } while (0)

#endif  // JFEED_SUPPORT_STATUS_H_
