#include "support/fault.h"

namespace jfeed::fault {

namespace {

/// splitmix64 — a small, well-distributed mixer; the decision function for
/// hit `n` of point `p` under seed `s` is a hash of (s, FNV(p), n), which
/// makes campaigns independent of point crossing order.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t Fnv1a(const char* s) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (; *s != '\0'; ++s) {
    h ^= static_cast<unsigned char>(*s);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

Injector& Injector::Get() {
  static Injector* injector = new Injector();
  return *injector;
}

void Injector::Enable(const FaultConfig& config) {
  std::lock_guard<std::mutex> lock(mu_);
  config_ = config;
  hits_.clear();
  enabled_.store(true, std::memory_order_relaxed);
}

void Injector::Disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

Status Injector::MaybeFail(const char* point) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_.load(std::memory_order_relaxed)) return Status::OK();
  int64_t ordinal = hits_[point]++;
  if (!config_.only_point.empty() && config_.only_point != point) {
    return Status::OK();
  }
  if (config_.probability <= 0.0) return Status::OK();
  if (config_.probability < 1.0) {
    uint64_t h = Mix(config_.seed ^ Fnv1a(point) ^
                     Mix(static_cast<uint64_t>(ordinal)));
    double roll =
        static_cast<double>(h >> 11) / static_cast<double>(1ull << 53);
    if (roll >= config_.probability) return Status::OK();
  }
  return Status(config_.code, std::string("injected fault at ") + point +
                                  " (hit " + std::to_string(ordinal) + ")");
}

int64_t Injector::Hits(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hits_.find(point);
  return it == hits_.end() ? 0 : it->second;
}

std::vector<std::string> Injector::AllPoints() {
  return {points::kLexer, points::kParser, points::kEpdgBuilder,
          points::kInterpreterCall, points::kMatcher};
}

std::vector<std::string> Injector::FleetPoints() {
  return {points::kFleetWorkerGrade, points::kFleetProbe,
          points::kFleetSlowResponse};
}

}  // namespace jfeed::fault
