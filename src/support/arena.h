#ifndef JFEED_SUPPORT_ARENA_H_
#define JFEED_SUPPORT_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

namespace jfeed {

/// A monotonic bump allocator: allocations are pointer bumps into chunked
/// blocks, nothing is freed individually, and Reset() recycles every normal
/// chunk in O(chunks) without returning memory to the system. The grading
/// hot path owns one arena per submission (pooled per scheduler worker), so
/// at steady state parse → EPDG → match runs with near-zero allocator
/// calls: the first submission grows the chunk list to the working-set
/// size, later submissions bump into the same memory.
///
/// Oversized requests (> the current chunk size) get a dedicated chunk that
/// IS returned to the system on Reset, so one pathological submission does
/// not pin its memory for the rest of the worker's life.
///
/// Not thread-safe; one arena belongs to one worker at a time.
class Arena {
 public:
  static constexpr size_t kMinChunkBytes = 4u << 10;
  static constexpr size_t kMaxChunkBytes = 1u << 20;

  explicit Arena(size_t first_chunk_bytes = kMinChunkBytes)
      : next_chunk_bytes_(ClampChunk(first_chunk_bytes)) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  ~Arena() {
    for (const Chunk& c : chunks_) ::operator delete(c.data);
    for (const Chunk& c : large_) ::operator delete(c.data);
  }

  /// Returns `bytes` of memory aligned to `align` (a power of two, at most
  /// alignof(std::max_align_t)). Never returns nullptr; zero-byte requests
  /// yield a valid one-past pointer.
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t)) {
    size_t off = (cursor_ + (align - 1)) & ~(align - 1);
    if (current_ < chunks_.size() && off + bytes <= chunks_[current_].size) {
      cursor_ = off + bytes;
      allocated_ += bytes;
      if (allocated_ > peak_) peak_ = allocated_;
      return chunks_[current_].data + off;
    }
    return AllocateSlow(bytes, align);
  }

  /// Constructs a T in the arena. The destructor is NOT run by the arena —
  /// callers either use trivially destructible types or run destructors
  /// themselves before Reset().
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    void* p = Allocate(sizeof(T), alignof(T));
    return new (p) T(std::forward<Args>(args)...);
  }

  /// Uninitialized array of n trivially-destructible Ts.
  template <typename T>
  T* AllocateArray(size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena arrays are never destroyed");
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  /// Copies `s` into the arena and returns a view of the copy.
  std::string_view StrDup(std::string_view s) {
    if (s.empty()) return {};
    char* p = static_cast<char*>(Allocate(s.size(), 1));
    std::memcpy(p, s.data(), s.size());
    return {p, s.size()};
  }

  /// Recycles the arena: every normal chunk is kept for reuse, dedicated
  /// large-object chunks are released, and the bump cursor rewinds. O(1)
  /// plus the large-chunk frees. All previously returned pointers are
  /// invalidated.
  void Reset() {
    for (const Chunk& c : large_) {
      reserved_ -= c.size;
      ::operator delete(c.data);
    }
    large_.clear();
    current_ = 0;
    cursor_ = 0;
    allocated_ = 0;
  }

  /// Bytes handed out since the last Reset — for a monotonic arena this is
  /// also the live high-water mark of the current cycle (the per-submission
  /// `arena_bytes_peak` the flight recorder reports).
  size_t bytes_allocated() const { return allocated_; }
  /// Highest bytes_allocated() ever observed across resets.
  size_t peak_bytes() const { return peak_; }
  /// Bytes of backing memory currently held (kept across Reset for normal
  /// chunks).
  size_t bytes_reserved() const { return reserved_; }
  size_t chunk_count() const { return chunks_.size() + large_.size(); }

 private:
  struct Chunk {
    char* data;
    size_t size;
  };

  static size_t ClampChunk(size_t bytes) {
    if (bytes < kMinChunkBytes) return kMinChunkBytes;
    if (bytes > kMaxChunkBytes) return kMaxChunkBytes;
    return bytes;
  }

  void* AllocateSlow(size_t bytes, size_t align) {
    // Fresh and recycled chunks start max_align-aligned, so `align` (a
    // power of two no larger than that) is satisfied at offset zero.
    (void)align;
    // Try the already-grown chunk list before minting new memory.
    while (current_ + 1 < chunks_.size()) {
      ++current_;
      cursor_ = 0;
      size_t off = 0;  // Fresh chunks are max_align-aligned.
      if (off + bytes <= chunks_[current_].size) {
        cursor_ = off + bytes;
        allocated_ += bytes;
        if (allocated_ > peak_) peak_ = allocated_;
        return chunks_[current_].data + off;
      }
    }
    if (bytes > next_chunk_bytes_) {
      // Oversized: dedicated chunk, released on Reset.
      char* p = static_cast<char*>(::operator new(bytes));
      large_.push_back({p, bytes});
      reserved_ += bytes;
      allocated_ += bytes;
      if (allocated_ > peak_) peak_ = allocated_;
      return p;
    }
    char* p = static_cast<char*>(::operator new(next_chunk_bytes_));
    chunks_.push_back({p, next_chunk_bytes_});
    reserved_ += next_chunk_bytes_;
    next_chunk_bytes_ = ClampChunk(next_chunk_bytes_ * 2);
    current_ = chunks_.size() - 1;
    cursor_ = bytes;
    allocated_ += bytes;
    if (allocated_ > peak_) peak_ = allocated_;
    return p;
  }

  std::vector<Chunk> chunks_;  ///< Normal chunks, kept across Reset.
  std::vector<Chunk> large_;   ///< Oversized chunks, freed on Reset.
  size_t current_ = 0;         ///< Index of the chunk being bumped.
  size_t cursor_ = 0;          ///< Bump offset within the current chunk.
  size_t next_chunk_bytes_;
  size_t allocated_ = 0;
  size_t peak_ = 0;
  size_t reserved_ = 0;
};

/// A minimal growable array living in an Arena: trivially destructible
/// payloads, grow-by-doubling that abandons the old block (the arena
/// reclaims it wholesale on Reset). This is the building block of the
/// structure-of-arrays EPDG: push during construction, then treat as a
/// frozen contiguous span.
template <typename T>
class ArenaVec {
  static_assert(std::is_trivially_copyable_v<T> &&
                    std::is_trivially_destructible_v<T>,
                "ArenaVec payloads live-and-die with the arena");

 public:
  ArenaVec() = default;
  explicit ArenaVec(Arena* arena) : arena_(arena) {}

  void Attach(Arena* arena) {
    arena_ = arena;
    data_ = nullptr;
    size_ = 0;
    capacity_ = 0;
  }

  void push_back(const T& value) {
    if (size_ == capacity_) Grow(size_ + 1);
    data_[size_++] = value;
  }

  /// Appends n default-initialized slots and returns a pointer to the first.
  T* Append(size_t n) {
    if (size_ + n > capacity_) Grow(size_ + n);
    T* out = data_ + size_;
    size_ += static_cast<uint32_t>(n);
    return out;
  }

  void resize(size_t n, const T& fill = T()) {
    if (n > capacity_) Grow(n);
    for (size_t i = size_; i < n; ++i) data_[i] = fill;
    size_ = static_cast<uint32_t>(n);
  }

  void clear() { size_ = 0; }

  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  T* data() { return data_; }
  const T* data() const { return data_; }
  T& back() { return data_[size_ - 1]; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  void Grow(size_t need) {
    size_t cap = capacity_ == 0 ? 8 : capacity_ * 2;
    while (cap < need) cap *= 2;
    T* bigger = static_cast<T*>(arena_->Allocate(cap * sizeof(T), alignof(T)));
    if (size_ > 0) std::memcpy(bigger, data_, size_ * sizeof(T));
    data_ = bigger;
    capacity_ = static_cast<uint32_t>(cap);
  }

  Arena* arena_ = nullptr;
  T* data_ = nullptr;
  uint32_t size_ = 0;
  uint32_t capacity_ = 0;
};

}  // namespace jfeed

#endif  // JFEED_SUPPORT_ARENA_H_
