#include "support/lite_regex.h"

#include <cstring>

namespace jfeed {

namespace {

constexpr size_t kMaxProgram = 4096;

bool IsWordByte(unsigned char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

bool IsLineTerminator(unsigned char c) { return c == '\n' || c == '\r'; }

void SetBit(std::array<uint32_t, 8>* bits, unsigned char c) {
  (*bits)[c >> 5] |= 1u << (c & 31);
}

bool TestBit(const std::array<uint32_t, 8>& bits, unsigned char c) {
  return (bits[c >> 5] >> (c & 31)) & 1u;
}

void AddDigitClass(std::array<uint32_t, 8>* bits) {
  for (unsigned char c = '0'; c <= '9'; ++c) SetBit(bits, c);
}

void AddWordClass(std::array<uint32_t, 8>* bits) {
  for (int c = 0; c < 256; ++c) {
    if (IsWordByte(static_cast<unsigned char>(c))) {
      SetBit(bits, static_cast<unsigned char>(c));
    }
  }
}

void AddSpaceClass(std::array<uint32_t, 8>* bits) {
  for (unsigned char c : {' ', '\t', '\n', '\r', '\f', '\v'}) SetBit(bits, c);
}

void Negate(std::array<uint32_t, 8>* bits) {
  for (uint32_t& word : *bits) word = ~word;
}

}  // namespace

/// Recursive-descent Thompson construction. The pattern is parsed and
/// emitted in one pass; alternation and quantifiers use the classic
/// patch-list technique (emit placeholder jumps, fill targets once known).
/// Compilation may allocate — it runs once per distinct regex text and is
/// cached; only Search is on the hot path.
class LiteRegex::Compiler {
 public:
  Compiler(std::string_view pattern, LiteRegex* out)
      : p_(pattern), out_(out) {}

  bool Run() {
    int32_t start_unused = 0;
    if (!ParseAlternation(&start_unused)) return false;
    if (pos_ != p_.size()) return false;  // Trailing ')' etc.
    Emit({Op::kMatch});
    return out_->prog_.size() <= kMaxProgram;
  }

 private:
  int32_t Emit(Inst inst) {
    out_->prog_.push_back(inst);
    return static_cast<int32_t>(out_->prog_.size()) - 1;
  }
  Inst& At(int32_t i) { return out_->prog_[static_cast<size_t>(i)]; }
  int32_t Here() const { return static_cast<int32_t>(out_->prog_.size()); }

  bool Eof() const { return pos_ >= p_.size(); }
  char Peek() const { return p_[pos_]; }

  /// alternation := concat ('|' concat)*
  bool ParseAlternation(int32_t* start) {
    *start = Here();
    int32_t first = 0;
    if (!ParseConcat(&first)) return false;
    std::vector<int32_t> ends;
    while (!Eof() && Peek() == '|') {
      ++pos_;
      // Wrap what we have: split(prev, next-branch), prev-body, jmp(out).
      // Insert the split *before* the already-emitted branch by emitting a
      // jump trampoline instead: we emit jmp-to-end after the branch, then
      // retroactively thread a split. Simpler: rebuild with explicit split
      // chain — emit split at the current tail that jumps back is not
      // possible with forward-only emission, so each '|' copies the classic
      // layout: we emit a Jmp after the existing branch, then a fresh
      // branch, and patch a Split inserted via a prefix trampoline.
      //
      // To keep emission strictly forward, alternation is handled by
      // chaining: before parsing each branch we know the previous branch's
      // range [branch_start, here). We append: Jmp(out) after it, then
      // the next branch. The entry Split is materialized as a chain of
      // splits emitted *in front of* each branch via PatchSplit below.
      ends.push_back(Emit({Op::kJmp}));
      int32_t next_branch = Here();
      // Retroactively turn the instruction stream into
      //   Split(branch_body, next_branch) ... by inserting a split — since
      // we cannot insert, we instead record that the previous branch entry
      // must be reachable alongside this one: emit the split now and jump
      // back? Forward-only VMs handle this by emitting the split first.
      // We achieve that by always prefixing every branch with a reserved
      // split slot (see ParseConcatWithSlot).
      (void)next_branch;
      // Reserved-slot scheme: `first` points at the reserved split of the
      // previous branch; fill it now.
      At(first).op = Op::kSplit;
      At(first).x = first + 1;
      At(first).y = Here();
      if (!ParseConcat(&first)) return false;
    }
    // The final branch's reserved slot stays a no-op jump to its own body.
    for (int32_t j : ends) {
      At(j).x = Here();
    }
    return true;
  }

  /// concat := repeat*   — prefixed by one reserved slot used by
  /// alternation to splice in a Split (it compiles to Jmp(+1) when unused).
  bool ParseConcat(int32_t* reserved_slot) {
    int32_t slot = Emit({Op::kJmp});
    At(slot).x = slot + 1;
    *reserved_slot = slot;
    while (!Eof() && Peek() != '|' && Peek() != ')') {
      if (!ParseRepeat()) return false;
    }
    return true;
  }

  /// repeat := atom ('*' | '+' | '?')? '?'?
  bool ParseRepeat() {
    int32_t atom_start = Here();
    if (!ParseAtom()) return false;
    if (Eof()) return true;
    char q = Peek();
    if (q != '*' && q != '+' && q != '?') return true;
    ++pos_;
    if (!Eof() && Peek() == '?') ++pos_;  // Lazy: same boolean language.
    if (q == '*') {
      // L1: split(L2, L3); L2: atom; jmp L1; L3:
      // Atom is already emitted at [atom_start, here); wrap it by moving it
      // one slot right is impossible — use the jump-around layout instead:
      //   atom_start: ... atom ...; split(atom_start, out)
      // which accepts one-or-more; for zero-or-more we additionally need a
      // way to skip the atom: prefix every atom with a reserved slot.
      int32_t split = Emit({Op::kSplit});
      At(split).x = atom_start;
      At(split).y = Here();
      // Zero-iteration path: the reserved slot in front of the atom (every
      // atom emits one, see ParseAtom) becomes a split to skip it.
      At(atom_start).op = Op::kSplit;
      At(atom_start).x = atom_start + 1;
      At(atom_start).y = Here();
    } else if (q == '+') {
      int32_t split = Emit({Op::kSplit});
      At(split).x = atom_start;
      At(split).y = Here();
    } else {  // '?'
      At(atom_start).op = Op::kSplit;
      At(atom_start).x = atom_start + 1;
      At(atom_start).y = Here();
    }
    return true;
  }

  /// atom := '(' alternation ')' | class | escape | '.' | '^' | '$' | char
  /// Every atom begins with one reserved Jmp(+1) slot so quantifiers can
  /// retrofit a zero-width bypass without instruction insertion.
  bool ParseAtom() {
    int32_t slot = Emit({Op::kJmp});
    At(slot).x = slot + 1;
    if (Eof()) return false;
    char c = Peek();
    ++pos_;
    switch (c) {
      case '(': {
        if (pos_ + 1 < p_.size() && Peek() == '?') {
          if (p_[pos_ + 1] == ':') {
            pos_ += 2;  // Non-capturing group.
          } else {
            return false;  // Lookaround / named groups: fallback.
          }
        }
        int32_t unused = 0;
        if (!ParseAlternation(&unused)) return false;
        if (Eof() || Peek() != ')') return false;
        ++pos_;
        return true;
      }
      case ')':
        return false;
      case '[':
        return ParseClass();
      case '.':
        Emit({Op::kAny});
        return true;
      case '^':
        Emit({Op::kBegin});
        return true;
      case '$':
        Emit({Op::kEnd});
        return true;
      case '*':
      case '+':
      case '?':
        return false;  // Quantifier with no atom.
      case '{':
      case '}':
        // ECMAScript tolerates literal braces outside quantifier position;
        // the templates never use bounded repetition, so treat a brace that
        // does not parse as {n,m} as a literal.
        Emit({Op::kChar, static_cast<uint8_t>(c)});
        return true;
      case '\\':
        return ParseEscape();
      default:
        Emit({Op::kChar, static_cast<uint8_t>(c)});
        return true;
    }
  }

  bool ParseEscape() {
    if (Eof()) return false;
    char c = Peek();
    ++pos_;
    ClassBits bits{};
    switch (c) {
      case 'd': AddDigitClass(&bits); break;
      case 'D': AddDigitClass(&bits); Negate(&bits); break;
      case 'w': AddWordClass(&bits); break;
      case 'W': AddWordClass(&bits); Negate(&bits); break;
      case 's': AddSpaceClass(&bits); break;
      case 'S': AddSpaceClass(&bits); Negate(&bits); break;
      case 'b': Emit({Op::kWordB}); return true;
      case 'B': Emit({Op::kNWordB}); return true;
      case 'n': Emit({Op::kChar, '\n'}); return true;
      case 't': Emit({Op::kChar, '\t'}); return true;
      case 'r': Emit({Op::kChar, '\r'}); return true;
      case 'f': Emit({Op::kChar, '\f'}); return true;
      case 'v': Emit({Op::kChar, '\v'}); return true;
      case '0': Emit({Op::kChar, 0}); return true;
      default:
        if (c >= '1' && c <= '9') return false;  // Backreference.
        if (c == 'x' || c == 'u' || c == 'c' || c == 'p' || c == 'P' ||
            c == 'k') {
          return false;  // Hex/unicode/control/property/named: fallback.
        }
        // Identity escape (includes \. \+ \[ \] \( \) \| \\ \/ \- etc.).
        Emit({Op::kChar, static_cast<uint8_t>(c)});
        return true;
    }
    EmitClass(bits);
    return true;
  }

  void EmitClass(const ClassBits& bits) {
    out_->classes_.push_back(bits);
    Emit({Op::kClass,
          static_cast<uint8_t>(out_->classes_.size() - 1)});
  }

  /// class := '[' '^'? item* ']'  with items: char, range, class escape.
  bool ParseClass() {
    if (out_->classes_.size() >= 255) return false;
    bool negate = false;
    if (!Eof() && Peek() == '^') {
      negate = true;
      ++pos_;
    }
    ClassBits bits{};
    while (true) {
      if (Eof()) return false;  // Unterminated class.
      char c = Peek();
      if (c == ']') {
        ++pos_;
        break;
      }
      ++pos_;
      unsigned char lo;
      bool lo_is_class = false;
      if (c == '\\') {
        if (Eof()) return false;
        char e = Peek();
        ++pos_;
        switch (e) {
          case 'd': AddDigitClass(&bits); lo_is_class = true; break;
          case 'w': AddWordClass(&bits); lo_is_class = true; break;
          case 's': AddSpaceClass(&bits); lo_is_class = true; break;
          case 'D': {
            ClassBits d{}; AddDigitClass(&d); Negate(&d);
            for (int i = 0; i < 8; ++i) bits[i] |= d[i];
            lo_is_class = true;
            break;
          }
          case 'W': {
            ClassBits w{}; AddWordClass(&w); Negate(&w);
            for (int i = 0; i < 8; ++i) bits[i] |= w[i];
            lo_is_class = true;
            break;
          }
          case 'S': {
            ClassBits s{}; AddSpaceClass(&s); Negate(&s);
            for (int i = 0; i < 8; ++i) bits[i] |= s[i];
            lo_is_class = true;
            break;
          }
          case 'n': lo = '\n'; break;
          case 't': lo = '\t'; break;
          case 'r': lo = '\r'; break;
          case 'f': lo = '\f'; break;
          case 'v': lo = '\v'; break;
          case 'b': lo = '\b'; break;  // Backspace inside a class.
          case '0': lo = 0; break;
          default:
            if (e >= '1' && e <= '9') return false;
            if (e == 'x' || e == 'u' || e == 'c') return false;
            lo = static_cast<unsigned char>(e);
            break;
        }
        if (lo_is_class) continue;
      } else {
        lo = static_cast<unsigned char>(c);
      }
      // Range?
      if (!Eof() && Peek() == '-' && pos_ + 1 < p_.size() &&
          p_[pos_ + 1] != ']') {
        ++pos_;
        char hc = Peek();
        ++pos_;
        unsigned char hi;
        if (hc == '\\') {
          if (Eof()) return false;
          char e = Peek();
          ++pos_;
          switch (e) {
            case 'n': hi = '\n'; break;
            case 't': hi = '\t'; break;
            case 'r': hi = '\r'; break;
            case 'f': hi = '\f'; break;
            case 'v': hi = '\v'; break;
            case '0': hi = 0; break;
            default:
              if ((e >= '1' && e <= '9') || e == 'x' || e == 'u' ||
                  e == 'c' || e == 'd' || e == 'w' || e == 's' || e == 'D' ||
                  e == 'W' || e == 'S') {
                return false;
              }
              hi = static_cast<unsigned char>(e);
              break;
          }
        } else {
          hi = static_cast<unsigned char>(hc);
        }
        if (lo > hi) return false;
        for (int b = lo; b <= hi; ++b) {
          SetBit(&bits, static_cast<unsigned char>(b));
        }
      } else {
        SetBit(&bits, lo);
      }
    }
    if (negate) Negate(&bits);
    EmitClass(bits);
    return true;
  }

  std::string_view p_;
  size_t pos_ = 0;
  LiteRegex* out_;
};

bool LiteRegex::Compile(std::string_view pattern, LiteRegex* out) {
  out->prog_.clear();
  out->classes_.clear();
  Compiler compiler(pattern, out);
  if (!compiler.Run()) {
    out->prog_.clear();
    out->classes_.clear();
    return false;
  }
  return true;
}

/// Adds pc to the thread list, following epsilon transitions (jumps,
/// splits, assertions evaluated at `pos`). Returns true when the Match
/// instruction is reachable — i.e. some match ends at `pos`.
bool LiteRegex::AddThread(uint32_t pc, std::string_view text, size_t pos,
                          std::vector<uint32_t>* list,
                          LiteRegexScratch* scratch, uint64_t gen) const {
  // Iterative closure with an explicit reusable stack (epsilon fan-out is
  // bounded by program size via the visited marks, so the stack grows at
  // most once to program size and is reused for every later call).
  std::vector<uint32_t>& stack = scratch->stack;
  stack.clear();
  stack.push_back(pc);
  while (!stack.empty()) {
    uint32_t cur = stack.back();
    stack.pop_back();
    if (scratch->mark[cur] == gen) continue;
    scratch->mark[cur] = gen;
    const Inst& inst = prog_[cur];
    switch (inst.op) {
      case Op::kJmp:
        stack.push_back(static_cast<uint32_t>(inst.x));
        break;
      case Op::kSplit:
        // Push y first so x (the preferred branch) is processed first;
        // order is irrelevant for the boolean result but keeps traversal
        // close to backtracking order.
        stack.push_back(static_cast<uint32_t>(inst.y));
        stack.push_back(static_cast<uint32_t>(inst.x));
        break;
      case Op::kBegin:
        if (pos == 0) stack.push_back(cur + 1);
        break;
      case Op::kEnd:
        if (pos == text.size()) stack.push_back(cur + 1);
        break;
      case Op::kWordB:
      case Op::kNWordB: {
        bool before =
            pos > 0 && IsWordByte(static_cast<unsigned char>(text[pos - 1]));
        bool after = pos < text.size() &&
                     IsWordByte(static_cast<unsigned char>(text[pos]));
        bool boundary = before != after;
        if (boundary == (inst.op == Op::kWordB)) stack.push_back(cur + 1);
        break;
      }
      case Op::kMatch:
        return true;
      default:
        list->push_back(cur);  // Consuming instruction; runs next step.
        break;
    }
  }
  return false;
}

bool LiteRegex::Search(std::string_view text,
                       LiteRegexScratch* scratch) const {
  if (prog_.empty()) return false;
  const size_t n = prog_.size();
  if (scratch->mark.size() < n) scratch->mark.resize(n, 0);
  std::vector<uint32_t>* cur = &scratch->cur;
  std::vector<uint32_t>* nxt = &scratch->nxt;
  cur->clear();
  uint64_t gen = ++scratch->generation;
  // Unanchored search: a fresh thread at program start joins at every
  // input position (the implicit leading .*?).
  if (AddThread(0, text, 0, cur, scratch, gen)) return true;
  for (size_t pos = 0; pos < text.size(); ++pos) {
    unsigned char c = static_cast<unsigned char>(text[pos]);
    nxt->clear();
    uint64_t next_gen = ++scratch->generation;
    for (size_t i = 0; i < cur->size(); ++i) {
      uint32_t pc = (*cur)[i];
      const Inst& inst = prog_[pc];
      bool consume = false;
      switch (inst.op) {
        case Op::kChar: consume = c == inst.arg; break;
        case Op::kAny: consume = !IsLineTerminator(c); break;
        case Op::kClass: consume = TestBit(classes_[inst.arg], c); break;
        default: break;  // Epsilon ops never reach the step list.
      }
      if (consume &&
          AddThread(pc + 1, text, pos + 1, nxt, scratch, next_gen)) {
        return true;
      }
    }
    // New potential match starting at pos + 1.
    if (AddThread(0, text, pos + 1, nxt, scratch, next_gen)) return true;
    std::swap(cur, nxt);
  }
  return false;
}

}  // namespace jfeed
