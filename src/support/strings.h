#ifndef JFEED_SUPPORT_STRINGS_H_
#define JFEED_SUPPORT_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace jfeed {

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `text` on any occurrence of `sep` (single character). Empty pieces
/// are kept, so Split("a,,b", ',') == {"a", "", "b"}.
std::vector<std::string> Split(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string Trim(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Replaces every occurrence of `from` (must be non-empty) with `to`.
std::string ReplaceAll(std::string_view text, std::string_view from,
                       std::string_view to);

/// Escapes regex metacharacters so `text` matches literally inside a regex.
std::string RegexEscape(std::string_view text);

/// Appends the escaped form of `text` to `*out` without allocating a
/// temporary (matcher hot path).
void RegexEscapeAppend(std::string_view text, std::string* out);

/// True when `c` can start a Java identifier.
bool IsIdentStart(char c);
/// True when `c` can continue a Java identifier.
bool IsIdentPart(char c);

}  // namespace jfeed

#endif  // JFEED_SUPPORT_STRINGS_H_
