#include "testing/functional.h"

#include <chrono>

#include "support/strings.h"

namespace jfeed::testing {

namespace {

/// Outputs are compared modulo leading/trailing whitespace, so a final
/// print vs println does not count as a functional difference.
std::string Normalize(const std::string& text) { return Trim(text); }

}  // namespace

Result<std::vector<std::string>> ComputeExpectedOutputs(
    const java::CompilationUnit& reference, const FunctionalSuite& suite) {
  interp::Interpreter interp(reference, suite.files);
  std::vector<std::string> expected;
  expected.reserve(suite.inputs.size());
  for (const auto& input : suite.inputs) {
    auto result = interp.Call(suite.method, input, suite.exec_options);
    if (!result.ok()) {
      return Status::Internal("reference solution failed on a test input: " +
                              result.status().ToString());
    }
    expected.push_back(result->stdout_text);
  }
  return expected;
}

FunctionalVerdict RunSuite(const java::CompilationUnit& submission,
                           const FunctionalSuite& suite,
                           const std::vector<std::string>& expected) {
  return RunSuiteGuarded(submission, suite, expected, suite.exec_options,
                         /*suite_deadline_ms=*/0);
}

FunctionalVerdict RunSuiteGuarded(const java::CompilationUnit& submission,
                                  const FunctionalSuite& suite,
                                  const std::vector<std::string>& expected,
                                  const interp::ExecOptions& exec,
                                  int64_t suite_deadline_ms) {
  FunctionalVerdict verdict;
  interp::Interpreter interp(submission, suite.files);
  auto suite_start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < suite.inputs.size(); ++i) {
    if (suite_deadline_ms > 0) {
      auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - suite_start);
      if (elapsed.count() > suite_deadline_ms) {
        // Abandon the rest of the suite: one pathological submission must
        // not hold the grading pipeline beyond its functional-stage budget.
        verdict.suite_deadline_hit = true;
        if (verdict.first_failure.empty()) {
          verdict.first_failure =
              "suite wall budget of " + std::to_string(suite_deadline_ms) +
              "ms exceeded after " + std::to_string(i) + " tests";
        }
        break;
      }
    }
    ++verdict.tests_run;
    auto result = interp.Call(suite.method, suite.inputs[i], exec);
    bool failed;
    std::string diagnostic;
    if (!result.ok()) {
      failed = true;
      diagnostic = result.status().ToString();
      if (result.status().code() == StatusCode::kTimeout) {
        ++verdict.timeouts;
      } else if (result.status().code() == StatusCode::kResourceExhausted) {
        ++verdict.resource_exhausted;
      }
    } else {
      verdict.interp_steps += result->steps;
      verdict.interp_heap_bytes += result->heap_bytes;
      verdict.interp_output_bytes += result->output_bytes;
      failed = Normalize(result->stdout_text) != Normalize(expected[i]);
      if (failed) {
        diagnostic = "expected \"" + expected[i] + "\", got \"" +
                     result->stdout_text + "\"";
      }
    }
    if (failed) {
      ++verdict.tests_failed;
      if (verdict.first_failure.empty()) {
        verdict.first_failure =
            "test " + std::to_string(i) + ": " + diagnostic;
      }
    }
  }
  verdict.passed = verdict.tests_failed == 0 && verdict.tests_run > 0 &&
                   !verdict.suite_deadline_hit;
  return verdict;
}

std::string GenerateOlympicsFile(int records, uint64_t seed) {
  static constexpr const char* kFirst[] = {"usain",  "michael", "simone",
                                           "katie",  "allyson", "carl",
                                           "nadia",  "mark",    "florence",
                                           "jesse"};
  static constexpr const char* kLast[] = {"bolt",    "phelps", "biles",
                                          "ledecky", "felix",  "lewis",
                                          "comaneci", "spitz",  "griffith",
                                          "owens"};
  // xorshift64* for deterministic, platform-independent pseudo-randomness.
  uint64_t state = seed != 0 ? seed : 0x9e3779b97f4a7c15ull;
  auto next = [&state]() {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545f4914f6cdd1dull;
  };
  std::string out;
  for (int i = 0; i < records; ++i) {
    uint64_t r = next();
    const char* first = kFirst[r % 10];
    const char* last = kLast[(r >> 8) % 10];
    int medal = static_cast<int>((r >> 16) % 3) + 1;       // 1..3
    int year = 1896 + 4 * static_cast<int>((r >> 24) % 31);  // 1896..2016
    out += first;
    out += ' ';
    out += last;
    out += ' ';
    out += std::to_string(medal);
    out += ' ';
    out += std::to_string(year);
    out += " #\n";  // '#' is the record separator token.
  }
  return out;
}

}  // namespace jfeed::testing
