#ifndef JFEED_TESTING_TRAFFIC_H_
#define JFEED_TESTING_TRAFFIC_H_

// Deadline-spike traffic model for jfeed-loadgen and the multi-tenant
// scheduler tests: a deterministic schedule of near-duplicate submissions
// shaped like a MOOC deadline day — a long quiet lead-in, then a ramp whose
// density keeps rising until the cutoff.
//
// Submissions come from the same error-model generators that synthesize the
// evaluation corpus (synth::SubmissionTemplate), mutated the way real
// resubmission streams are:
//   - a new "student" starts a chain at a random buggy point of the
//     search space;
//   - a resubmission fixes one injected error (steps one choice site back
//     to its correct variant) — the paper's model of incremental repair;
//   - some resubmissions are exact duplicates (panic re-sends) or append
//     only a comment, leaving the token stream — and therefore the result
//     cache key — unchanged.
// Chains are causally ordered: attempt N+1 always carries a later offset
// than attempt N, because events are dealt onto a pre-sorted timeline.
//
// Everything derives from TrafficOptions::seed via a xorshift64 generator,
// so a (assignments, options) pair always produces the identical schedule —
// the property the BENCH_loadgen baseline comparison depends on.
//
// This header deliberately depends on synth only (kb links against
// jfeed_testing, so the traffic model cannot reach back into kb); callers
// pass the per-assignment generators in.

#include <cstdint>
#include <string>
#include <vector>

#include "synth/generator.h"

namespace jfeed::testing {

/// One tenant of the generated traffic mix.
struct TrafficAssignment {
  std::string id;  ///< Knowledge-base assignment id (the routing key).
  /// Error-model generator for this assignment; must outlive the schedule
  /// build. Points at kb::Assignment::generator in practice.
  const synth::SubmissionTemplate* generator = nullptr;
};

struct TrafficOptions {
  uint64_t seed = 1;
  /// Total submissions across all assignments.
  size_t submissions = 1000;
  /// Quiet lead-in duration and the share of submissions trickling in
  /// during it.
  int64_t idle_ms = 2000;
  double idle_fraction = 0.05;
  /// Spike window after the lead-in; submission density rises toward its
  /// end (the deadline).
  int64_t spike_ms = 8000;
  /// Probability an event continues an existing resubmission chain rather
  /// than starting a new student.
  double resubmit_prob = 0.55;
  /// Given a resubmission: probability of an exact duplicate re-send, and
  /// of a token-preserving comment-only tweak. The remainder fixes one
  /// injected error.
  double duplicate_prob = 0.15;
  double comment_prob = 0.15;
};

/// One scheduled submission.
struct TrafficEvent {
  int64_t offset_ms = 0;   ///< Send time relative to schedule start.
  std::string assignment;  ///< Routing key.
  std::string id;          ///< "<assignment>-s<student>-r<attempt>".
  std::string source;      ///< Java submission text.
};

/// Builds the deadline-spike schedule: `options.submissions` events sorted
/// by offset_ms, mixed uniformly across `assignments`. Assignments must be
/// non-empty and every generator non-null with a non-trivial search space.
std::vector<TrafficEvent> BuildDeadlineSpikeSchedule(
    const std::vector<TrafficAssignment>& assignments,
    const TrafficOptions& options = TrafficOptions());

}  // namespace jfeed::testing

#endif  // JFEED_TESTING_TRAFFIC_H_
