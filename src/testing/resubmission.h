#ifndef JFEED_TESTING_RESUBMISSION_H_
#define JFEED_TESTING_RESUBMISSION_H_

// Seeded resubmission-chain corpus for the method-cache work (DESIGN.md
// §3d): one synthetic student iterating on one assignment, each attempt
// derived from the previous by exactly one edit kind —
//   - duplicate:    byte-identical panic re-send;
//   - comment-only: a trailing comment; the lexer strips it, so every
//                   method fingerprint (and the result-cache key) is
//                   unchanged;
//   - fix-one-site: the error model's incremental repair — one choice
//                   site steps back to its correct variant, touching only
//                   the template method;
//   - rename-local: renames a local variable inside one *helper* method,
//                   changing that helper's fingerprint but nothing the
//                   assignment spec grades.
//
// Every submission carries the same two deterministic helper methods after
// the template method. The knowledge base's assignments are single-method,
// so without the helpers a fix-one-site edit would invalidate the whole
// submission; with them, two of three methods are byte-identical across
// the edit — the method cache's partial-hit case the resubmission bench
// and the golden equivalence suite measure. The helpers are shared across
// assignments on purpose: identical method bodies under two assignment ids
// must NOT cross-hit (the cache keys by assignment), and the golden suite
// asserts exactly that.
//
// Everything derives from ResubmissionChainOptions::seed via xorshift64,
// so a (generator, options) pair always yields the identical chain — the
// property BENCH_resubmission's baseline comparison depends on.
//
// Like traffic.h, this header depends on synth only (kb links against
// jfeed_testing); callers pass the assignment's generator in.

#include <cstdint>
#include <string>
#include <vector>

#include "synth/generator.h"

namespace jfeed::testing {

/// xorshift64: deterministic, seedable, and good enough to drive a test
/// corpus (this is a load shape, not cryptography). Shared by the traffic
/// and resubmission generators.
struct XorShiftRng {
  uint64_t state;
  explicit XorShiftRng(uint64_t seed)
      : state(seed != 0 ? seed : 0x9e3779b97f4a7c15ull) {}
  uint64_t Next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
  uint64_t Below(uint64_t bound) { return bound == 0 ? 0 : Next() % bound; }
  double Unit() {
    return static_cast<double>(Next() >> 11) /
           static_cast<double>(1ull << 53);
  }
};

/// Mixed-radix inverse of SubmissionTemplate::Decode (site 0 least
/// significant).
uint64_t EncodeChoice(const synth::SubmissionTemplate& generator,
                      const std::vector<size_t>& choice);

/// One incremental repair: zero a random still-wrong choice site. Index 0
/// (all correct) maps to itself.
uint64_t FixOneError(const synth::SubmissionTemplate& generator,
                     uint64_t index, XorShiftRng* rng);

/// How one resubmission differs from the previous attempt.
enum class ResubmitKind {
  kInitial,      ///< First attempt (reference + `initial_errors` bugs).
  kDuplicate,    ///< Byte-identical re-send.
  kCommentOnly,  ///< Trailing comment appended; token stream unchanged.
  kFixOneSite,   ///< One error-model site repaired in the template method.
  kRenameLocal,  ///< A helper method's local variable renamed.
};

const char* ResubmitKindName(ResubmitKind kind);

/// One attempt of a resubmission chain.
struct ResubmissionStep {
  ResubmitKind kind = ResubmitKind::kInitial;
  std::string id;      ///< "<assignment>-r<attempt>", attempt from 1.
  std::string source;  ///< Template method + the two helper methods.
};

struct ResubmissionChainOptions {
  uint64_t seed = 1;
  /// Resubmissions after the initial attempt (chain length - 1).
  size_t steps = 8;
  /// Choice sites mutated away from the reference in the initial attempt
  /// (clamped to the template's site count). This is the synth error
  /// model's shape — a first attempt is mostly right with a few seeded
  /// bugs — so a pure fix-one-site chain converges after ~initial_errors
  /// repairs and the remainder of the chain exercises the full-reuse
  /// (duplicate resubmission) path. Zero starts at the reference solution.
  size_t initial_errors = 3;
  /// Edit-kind mix; the remainder of the probability mass is fix-one-site.
  /// Zero all three for a pure fix-one-site chain (the bench's shape).
  double duplicate_prob = 0.15;
  double comment_prob = 0.15;
  double rename_prob = 0.15;
};

/// Builds one deterministic chain over `generator`. Step 0 is an initial
/// submission with `initial_errors` seeded wrong choice sites; each later
/// step applies one seeded edit. Once every site is repaired, further
/// fix-one-site draws degrade to duplicates (the student is done and
/// panic-resends), so chains of any length are well-defined.
std::vector<ResubmissionStep> BuildResubmissionChain(
    const std::string& assignment_id,
    const synth::SubmissionTemplate& generator,
    const ResubmissionChainOptions& options = ResubmissionChainOptions());

}  // namespace jfeed::testing

#endif  // JFEED_TESTING_RESUBMISSION_H_
