#include "testing/traffic.h"

#include <algorithm>
#include <cmath>

namespace jfeed::testing {

namespace {

/// xorshift64: deterministic, seedable, and good enough to shuffle a
/// traffic mix (this is a load shape, not cryptography).
struct Rng {
  uint64_t state;
  explicit Rng(uint64_t seed) : state(seed != 0 ? seed : 0x9e3779b97f4a7c15ull) {}
  uint64_t Next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
  uint64_t Below(uint64_t bound) { return bound == 0 ? 0 : Next() % bound; }
  double Unit() {
    return static_cast<double>(Next() >> 11) /
           static_cast<double>(1ull << 53);
  }
};

/// Mixed-radix inverse of SubmissionTemplate::Decode (site 0 least
/// significant).
uint64_t Encode(const synth::SubmissionTemplate& generator,
                const std::vector<size_t>& choice) {
  uint64_t index = 0;
  uint64_t stride = 1;
  const auto& sites = generator.sites();
  for (size_t i = 0; i < sites.size(); ++i) {
    index += static_cast<uint64_t>(choice[i]) * stride;
    stride *= sites[i].variants.size();
  }
  return index;
}

/// One incremental repair: zero a random still-wrong choice site. Index 0
/// (all correct) maps to itself.
uint64_t FixOneError(const synth::SubmissionTemplate& generator,
                     uint64_t index, Rng* rng) {
  std::vector<size_t> choice = generator.Decode(index);
  std::vector<size_t> wrong;
  for (size_t i = 0; i < choice.size(); ++i) {
    if (choice[i] != 0) wrong.push_back(i);
  }
  if (wrong.empty()) return index;
  choice[wrong[rng->Below(wrong.size())]] = 0;
  return Encode(generator, choice);
}

/// An in-progress student: their current position in the search space.
struct Chain {
  size_t student = 0;
  uint64_t index = 0;
  int attempt = 1;
};

}  // namespace

std::vector<TrafficEvent> BuildDeadlineSpikeSchedule(
    const std::vector<TrafficAssignment>& assignments,
    const TrafficOptions& options) {
  std::vector<TrafficEvent> events;
  if (assignments.empty() || options.submissions == 0) return events;
  Rng rng(options.seed);

  // Timeline first: a sorted offset list the events are dealt onto in
  // order, which is what keeps resubmission chains causally ordered.
  // Idle lead-in offsets are uniform over [0, idle_ms); spike offsets use
  // sqrt(u) over [idle_ms, idle_ms + spike_ms) so density rises linearly
  // toward the deadline.
  std::vector<int64_t> offsets;
  offsets.reserve(options.submissions);
  size_t idle_count = static_cast<size_t>(
      static_cast<double>(options.submissions) * options.idle_fraction);
  if (idle_count > options.submissions) idle_count = options.submissions;
  for (size_t i = 0; i < idle_count; ++i) {
    offsets.push_back(static_cast<int64_t>(
        rng.Unit() * static_cast<double>(options.idle_ms)));
  }
  for (size_t i = idle_count; i < options.submissions; ++i) {
    offsets.push_back(options.idle_ms +
                      static_cast<int64_t>(
                          std::sqrt(rng.Unit()) *
                          static_cast<double>(options.spike_ms)));
  }
  std::sort(offsets.begin(), offsets.end());

  struct Tenant {
    const TrafficAssignment* assignment;
    std::vector<Chain> chains;
    size_t next_student = 1;
  };
  std::vector<Tenant> tenants;
  tenants.reserve(assignments.size());
  for (const auto& assignment : assignments) {
    tenants.push_back(Tenant{&assignment, {}, 1});
  }

  events.reserve(options.submissions);
  for (int64_t offset : offsets) {
    Tenant& tenant = tenants[rng.Below(tenants.size())];
    const synth::SubmissionTemplate& generator =
        *tenant.assignment->generator;
    uint64_t space = generator.SpaceSize();

    TrafficEvent event;
    event.offset_ms = offset;
    event.assignment = tenant.assignment->id;

    bool done = false;
    std::string comment;
    if (!tenant.chains.empty() && rng.Unit() < options.resubmit_prob) {
      size_t pick = rng.Below(tenant.chains.size());
      Chain& chain = tenant.chains[pick];
      ++chain.attempt;
      double kind = rng.Unit();
      if (kind < options.duplicate_prob) {
        // Panic re-send: byte-identical source.
      } else if (kind < options.duplicate_prob + options.comment_prob) {
        // Cosmetic tweak: the lexer strips comments, so the token
        // fingerprint — and the result-cache key — is unchanged.
        comment = "\n// attempt " + std::to_string(chain.attempt) + "\n";
      } else {
        chain.index = FixOneError(generator, chain.index, &rng);
        done = chain.index == 0;  // Correct now; the student is finished.
      }
      event.id = tenant.assignment->id + "-s" +
                 std::to_string(chain.student) + "-r" +
                 std::to_string(chain.attempt);
      event.source = generator.Generate(chain.index) + comment;
      if (done) {
        tenant.chains.erase(tenant.chains.begin() +
                            static_cast<ptrdiff_t>(pick));
      }
    } else {
      // A new student entering at a random buggy point of the space.
      Chain chain;
      chain.student = tenant.next_student++;
      chain.index = space > 1 ? 1 + rng.Below(space - 1) : 0;
      event.id = tenant.assignment->id + "-s" +
                 std::to_string(chain.student) + "-r1";
      event.source = generator.Generate(chain.index);
      if (chain.index != 0) tenant.chains.push_back(chain);
    }
    events.push_back(std::move(event));
  }
  return events;
}

}  // namespace jfeed::testing
