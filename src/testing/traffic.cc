#include "testing/traffic.h"

#include <algorithm>
#include <cmath>

#include "testing/resubmission.h"

namespace jfeed::testing {

namespace {

// The rng and the error-model mutators (EncodeChoice, FixOneError) are
// shared with the resubmission-chain generator — see resubmission.h.
using Rng = XorShiftRng;

/// An in-progress student: their current position in the search space.
struct Chain {
  size_t student = 0;
  uint64_t index = 0;
  int attempt = 1;
};

}  // namespace

std::vector<TrafficEvent> BuildDeadlineSpikeSchedule(
    const std::vector<TrafficAssignment>& assignments,
    const TrafficOptions& options) {
  std::vector<TrafficEvent> events;
  if (assignments.empty() || options.submissions == 0) return events;
  Rng rng(options.seed);

  // Timeline first: a sorted offset list the events are dealt onto in
  // order, which is what keeps resubmission chains causally ordered.
  // Idle lead-in offsets are uniform over [0, idle_ms); spike offsets use
  // sqrt(u) over [idle_ms, idle_ms + spike_ms) so density rises linearly
  // toward the deadline.
  std::vector<int64_t> offsets;
  offsets.reserve(options.submissions);
  size_t idle_count = static_cast<size_t>(
      static_cast<double>(options.submissions) * options.idle_fraction);
  if (idle_count > options.submissions) idle_count = options.submissions;
  for (size_t i = 0; i < idle_count; ++i) {
    offsets.push_back(static_cast<int64_t>(
        rng.Unit() * static_cast<double>(options.idle_ms)));
  }
  for (size_t i = idle_count; i < options.submissions; ++i) {
    offsets.push_back(options.idle_ms +
                      static_cast<int64_t>(
                          std::sqrt(rng.Unit()) *
                          static_cast<double>(options.spike_ms)));
  }
  std::sort(offsets.begin(), offsets.end());

  struct Tenant {
    const TrafficAssignment* assignment;
    std::vector<Chain> chains;
    size_t next_student = 1;
  };
  std::vector<Tenant> tenants;
  tenants.reserve(assignments.size());
  for (const auto& assignment : assignments) {
    tenants.push_back(Tenant{&assignment, {}, 1});
  }

  events.reserve(options.submissions);
  for (int64_t offset : offsets) {
    Tenant& tenant = tenants[rng.Below(tenants.size())];
    const synth::SubmissionTemplate& generator =
        *tenant.assignment->generator;
    uint64_t space = generator.SpaceSize();

    TrafficEvent event;
    event.offset_ms = offset;
    event.assignment = tenant.assignment->id;

    bool done = false;
    std::string comment;
    if (!tenant.chains.empty() && rng.Unit() < options.resubmit_prob) {
      size_t pick = rng.Below(tenant.chains.size());
      Chain& chain = tenant.chains[pick];
      ++chain.attempt;
      double kind = rng.Unit();
      if (kind < options.duplicate_prob) {
        // Panic re-send: byte-identical source.
      } else if (kind < options.duplicate_prob + options.comment_prob) {
        // Cosmetic tweak: the lexer strips comments, so the token
        // fingerprint — and the result-cache key — is unchanged.
        comment = "\n// attempt " + std::to_string(chain.attempt) + "\n";
      } else {
        chain.index = FixOneError(generator, chain.index, &rng);
        done = chain.index == 0;  // Correct now; the student is finished.
      }
      event.id = tenant.assignment->id + "-s" +
                 std::to_string(chain.student) + "-r" +
                 std::to_string(chain.attempt);
      event.source = generator.Generate(chain.index) + comment;
      if (done) {
        tenant.chains.erase(tenant.chains.begin() +
                            static_cast<ptrdiff_t>(pick));
      }
    } else {
      // A new student entering at a random buggy point of the space.
      Chain chain;
      chain.student = tenant.next_student++;
      chain.index = space > 1 ? 1 + rng.Below(space - 1) : 0;
      event.id = tenant.assignment->id + "-s" +
                 std::to_string(chain.student) + "-r1";
      event.source = generator.Generate(chain.index);
      if (chain.index != 0) tenant.chains.push_back(chain);
    }
    events.push_back(std::move(event));
  }
  return events;
}

}  // namespace jfeed::testing
