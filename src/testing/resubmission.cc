#include "testing/resubmission.h"

#include <algorithm>

namespace jfeed::testing {

namespace {

/// The two helper methods appended to every chain submission. The bodies
/// are in the grader's Java subset and independent of any assignment spec;
/// `renamed` switches the second helper's local between two names, which
/// is the rename-local edit (same structure, different token fingerprint).
std::string HelperMethods(bool renamed) {
  std::string out =
      "int chainHelperSum(int a, int b) {\n"
      "  int total = a + b;\n"
      "  return total;\n"
      "}\n";
  const char* local = renamed ? "doubled" : "scaled";
  out += "int chainHelperScale(int x) {\n  int ";
  out += local;
  out += " = x * 2;\n  return ";
  out += local;
  out += ";\n}\n";
  return out;
}

}  // namespace

uint64_t EncodeChoice(const synth::SubmissionTemplate& generator,
                      const std::vector<size_t>& choice) {
  uint64_t index = 0;
  uint64_t stride = 1;
  const auto& sites = generator.sites();
  for (size_t i = 0; i < sites.size(); ++i) {
    index += static_cast<uint64_t>(choice[i]) * stride;
    stride *= sites[i].variants.size();
  }
  return index;
}

uint64_t FixOneError(const synth::SubmissionTemplate& generator,
                     uint64_t index, XorShiftRng* rng) {
  std::vector<size_t> choice = generator.Decode(index);
  std::vector<size_t> wrong;
  for (size_t i = 0; i < choice.size(); ++i) {
    if (choice[i] != 0) wrong.push_back(i);
  }
  if (wrong.empty()) return index;
  choice[wrong[rng->Below(wrong.size())]] = 0;
  return EncodeChoice(generator, choice);
}

const char* ResubmitKindName(ResubmitKind kind) {
  switch (kind) {
    case ResubmitKind::kInitial: return "initial";
    case ResubmitKind::kDuplicate: return "duplicate";
    case ResubmitKind::kCommentOnly: return "comment_only";
    case ResubmitKind::kFixOneSite: return "fix_one_site";
    case ResubmitKind::kRenameLocal: return "rename_local";
  }
  return "unknown";
}

std::vector<ResubmissionStep> BuildResubmissionChain(
    const std::string& assignment_id,
    const synth::SubmissionTemplate& generator,
    const ResubmissionChainOptions& options) {
  XorShiftRng rng(options.seed);

  // Initial attempt: the reference solution with `initial_errors` distinct
  // choice sites flipped to a wrong variant — the synth error model's
  // "mostly right, a few bugs" shape (a uniformly random index would start
  // with nearly every site wrong, which no student submission does).
  const auto& sites = generator.sites();
  std::vector<size_t> choice(sites.size(), 0);
  std::vector<size_t> mutable_sites;
  for (size_t i = 0; i < sites.size(); ++i) {
    if (sites[i].variants.size() > 1) mutable_sites.push_back(i);
  }
  size_t errors = std::min(options.initial_errors, mutable_sites.size());
  for (size_t e = 0; e < errors; ++e) {
    // Partial Fisher-Yates: positions [0, e) already hold the picked sites.
    size_t pick = e + rng.Below(mutable_sites.size() - e);
    std::swap(mutable_sites[e], mutable_sites[pick]);
    size_t site = mutable_sites[e];
    choice[site] = 1 + rng.Below(sites[site].variants.size() - 1);
  }
  uint64_t index = EncodeChoice(generator, choice);

  // Chain state: the error-model position, the helper-rename toggle, and
  // the accumulated cosmetic comments (comment-only edits are cumulative —
  // a later fix still carries earlier attempts' comments, as a student's
  // file would).
  bool renamed = false;
  std::string comments;

  auto render = [&](uint64_t at) {
    return generator.Generate(at) + "\n" + HelperMethods(renamed) + comments;
  };

  std::vector<ResubmissionStep> chain;
  chain.reserve(options.steps + 1);
  ResubmissionStep initial;
  initial.kind = ResubmitKind::kInitial;
  initial.id = assignment_id + "-r1";
  initial.source = render(index);
  chain.push_back(std::move(initial));

  for (size_t step = 0; step < options.steps; ++step) {
    ResubmissionStep next;
    double draw = rng.Unit();
    if (draw < options.duplicate_prob) {
      next.kind = ResubmitKind::kDuplicate;
    } else if (draw < options.duplicate_prob + options.comment_prob) {
      next.kind = ResubmitKind::kCommentOnly;
      comments += "// attempt " + std::to_string(step + 2) + "\n";
    } else if (draw < options.duplicate_prob + options.comment_prob +
                          options.rename_prob) {
      next.kind = ResubmitKind::kRenameLocal;
      renamed = !renamed;
    } else {
      uint64_t repaired = FixOneError(generator, index, &rng);
      // All sites already correct: the student is done and panic-resends.
      next.kind = repaired == index ? ResubmitKind::kDuplicate
                                    : ResubmitKind::kFixOneSite;
      index = repaired;
    }
    next.id = assignment_id + "-r" + std::to_string(step + 2);
    next.source = render(index);
    chain.push_back(std::move(next));
  }
  return chain;
}

}  // namespace jfeed::testing
