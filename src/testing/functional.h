#ifndef JFEED_TESTING_FUNCTIONAL_H_
#define JFEED_TESTING_FUNCTIONAL_H_

#include <map>
#include <string>
#include <vector>

#include "interp/interpreter.h"
#include "javalang/ast.h"
#include "support/result.h"

namespace jfeed::testing {

/// A functional test suite for one assignment: the entry method, the input
/// tuples it is invoked with, and the in-memory files visible to Scanner.
/// Expected outputs are produced by running the reference solution — the
/// same self-consistent oracle construction the paper uses ("We generated a
/// set of functional tests to be performed over the previous submissions").
struct FunctionalSuite {
  std::string method;  ///< Entry method name.
  std::vector<std::vector<interp::Value>> inputs;
  std::map<std::string, std::string> files;
  interp::ExecOptions exec_options;
};

/// Verdict of running a suite over one submission.
struct FunctionalVerdict {
  bool passed = false;   ///< All tests produced the expected stdout.
  int tests_run = 0;
  int tests_failed = 0;  ///< Mismatched output or runtime error/timeout.
  std::string first_failure;  ///< Diagnostic for the first failing test.
};

/// Runs the reference solution over the suite inputs and returns the
/// expected stdout per input. Fails if the reference itself errors.
Result<std::vector<std::string>> ComputeExpectedOutputs(
    const java::CompilationUnit& reference, const FunctionalSuite& suite);

/// Runs the suite over `submission`, comparing against `expected` (from
/// ComputeExpectedOutputs). Runtime errors and timeouts count as failures,
/// exactly like a crashing JUnit test would.
FunctionalVerdict RunSuite(const java::CompilationUnit& submission,
                           const FunctionalSuite& suite,
                           const std::vector<std::string>& expected);

/// Generates the synthetic stand-in for the RIT `summer_olympics.txt`
/// dataset: `records` 5-field records (first-name, last-name, medal type
/// 1..3, year, separator token), deterministically derived from `seed`.
std::string GenerateOlympicsFile(int records, uint64_t seed);

}  // namespace jfeed::testing

#endif  // JFEED_TESTING_FUNCTIONAL_H_
