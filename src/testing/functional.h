#ifndef JFEED_TESTING_FUNCTIONAL_H_
#define JFEED_TESTING_FUNCTIONAL_H_

#include <map>
#include <string>
#include <vector>

#include "interp/interpreter.h"
#include "javalang/ast.h"
#include "support/result.h"

namespace jfeed::testing {

/// A functional test suite for one assignment: the entry method, the input
/// tuples it is invoked with, and the in-memory files visible to Scanner.
/// Expected outputs are produced by running the reference solution — the
/// same self-consistent oracle construction the paper uses ("We generated a
/// set of functional tests to be performed over the previous submissions").
struct FunctionalSuite {
  std::string method;  ///< Entry method name.
  std::vector<std::vector<interp::Value>> inputs;
  std::map<std::string, std::string> files;
  interp::ExecOptions exec_options;
};

/// Verdict of running a suite over one submission.
struct FunctionalVerdict {
  bool passed = false;   ///< All tests produced the expected stdout.
  int tests_run = 0;
  int tests_failed = 0;  ///< Mismatched output or runtime error/timeout.
  std::string first_failure;  ///< Diagnostic for the first failing test.
  // Failure-class counters (filled by RunSuiteGuarded) so the grading
  // service can tell "wrong answer" from "blew a budget".
  int timeouts = 0;            ///< Tests killed by a time budget.
  int resource_exhausted = 0;  ///< Tests killed by a space budget.
  bool suite_deadline_hit = false;  ///< Suite wall budget expired mid-run.
  // Interpreter resource spend summed over the suite's successful test
  // executions (failed calls abort before reporting usage) — the numbers
  // the per-submission flight recorder surfaces as interp_*.
  int64_t interp_steps = 0;
  int64_t interp_heap_bytes = 0;
  int64_t interp_output_bytes = 0;
};

/// Runs the reference solution over the suite inputs and returns the
/// expected stdout per input. Fails if the reference itself errors.
Result<std::vector<std::string>> ComputeExpectedOutputs(
    const java::CompilationUnit& reference, const FunctionalSuite& suite);

/// Runs the suite over `submission`, comparing against `expected` (from
/// ComputeExpectedOutputs). Runtime errors and timeouts count as failures,
/// exactly like a crashing JUnit test would.
FunctionalVerdict RunSuite(const java::CompilationUnit& submission,
                           const FunctionalSuite& suite,
                           const std::vector<std::string>& expected);

/// RunSuite with the grading service's resource guards: each test runs
/// under `exec` (overriding the suite's own options) and the suite as a
/// whole is abandoned once `suite_deadline_ms` of wall-clock has elapsed
/// (0 = unlimited; checked between tests). Abandoned tests are not counted
/// as run; the verdict carries `suite_deadline_hit` plus per-class failure
/// counters instead.
FunctionalVerdict RunSuiteGuarded(const java::CompilationUnit& submission,
                                  const FunctionalSuite& suite,
                                  const std::vector<std::string>& expected,
                                  const interp::ExecOptions& exec,
                                  int64_t suite_deadline_ms = 0);

/// Generates the synthetic stand-in for the RIT `summer_olympics.txt`
/// dataset: `records` 5-field records (first-name, last-name, medal type
/// 1..3, year, separator token), deterministically derived from `seed`.
std::string GenerateOlympicsFile(int records, uint64_t seed);

}  // namespace jfeed::testing

#endif  // JFEED_TESTING_FUNCTIONAL_H_
