#ifndef JFEED_JAVALANG_AST_H_
#define JFEED_JAVALANG_AST_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/arena.h"

namespace jfeed::java {

// ---------------------------------------------------------------------------
// Arena-backed node allocation
// ---------------------------------------------------------------------------

/// While an AstArenaScope is alive on a thread, every Expr/Stmt node
/// created on that thread is bump-allocated from its arena instead of the
/// heap; deleting such a node runs its destructor (members like strings
/// and child vectors are still freed normally) but returns no storage —
/// the node's bytes die with the arena. This keeps ExprPtr/StmtPtr
/// ownership semantics untouched while letting the grading hot path parse
/// into recycled memory.
///
/// Contract: every node allocated under a scope must be destroyed before
/// that arena is Reset() or destroyed. Scopes nest; destruction restores
/// the previous scope. Code that never opens a scope (tests, tools, the
/// synthetic generator) allocates from the heap exactly as before.
class AstArenaScope {
 public:
  // Scope open/close and current() live in ast.cc so every access to the
  // thread_local goes through its defining TU — GCC's UBSan emits bogus
  // "store to null pointer" reports for cross-TU TLS wrapper accesses
  // inlined from a header. Scopes open once per submission, so the
  // out-of-line call costs nothing on the hot path.
  explicit AstArenaScope(Arena* arena);
  ~AstArenaScope();
  AstArenaScope(const AstArenaScope&) = delete;
  AstArenaScope& operator=(const AstArenaScope&) = delete;

  /// The arena new Expr/Stmt nodes on this thread currently go to, or
  /// null for the heap.
  static Arena* current();

 private:
  Arena* prev_;
};

namespace internal {
/// Node storage for Expr/Stmt operator new: a tagged header in front of
/// the node records where the bytes came from so operator delete — which
/// may run long after the scope closed — frees heap nodes and leaves
/// arena nodes alone.
void* AllocateAstNode(std::size_t size);
void DeallocateAstNode(void* ptr) noexcept;
}  // namespace internal

// ---------------------------------------------------------------------------
// Types
// ---------------------------------------------------------------------------

/// Primitive and reference types of the Java subset. Reference types other
/// than String (Scanner, File) are carried as kClass with a class name.
enum class TypeKind {
  kInt,
  kLong,
  kDouble,
  kBoolean,
  kChar,
  kString,
  kVoid,
  kClass,
};

/// A (possibly array) type, e.g. `int[]` is {kInt, dims=1}.
struct Type {
  TypeKind kind = TypeKind::kInt;
  int array_dims = 0;
  std::string class_name;  ///< Only for kClass.

  bool operator==(const Type& other) const = default;

  /// Java spelling, e.g. "int[]", "String", "Scanner".
  std::string ToString() const;
};

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind {
  kIntLit,
  kLongLit,
  kDoubleLit,
  kBoolLit,
  kCharLit,
  kStringLit,
  kNullLit,
  kName,
  kArrayAccess,
  kFieldAccess,
  kMethodCall,
  kBinary,
  kUnary,
  kAssign,
  kConditional,
  kCast,
  kNewArray,
  kNewObject,
};

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kLt, kLe, kGt, kGe, kEq, kNe,
  kAnd, kOr,
};

enum class UnaryOp {
  kNeg,        // -x
  kNot,        // !x
  kPreInc,     // ++x
  kPreDec,     // --x
  kPostInc,    // x++
  kPostDec,    // x--
};

enum class AssignOp { kAssign, kAddAssign, kSubAssign, kMulAssign,
                      kDivAssign, kModAssign };

/// Java spelling of a binary operator ("+", "<=", "&&", ...).
const char* BinaryOpSpelling(BinaryOp op);
/// Java spelling of an assignment operator ("=", "+=", ...).
const char* AssignOpSpelling(AssignOp op);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// A single-struct expression node. Only the fields relevant for `kind` are
/// populated; this flat layout keeps cloning and walking simple, which the
/// PDG builder and the synthetic generator rely on heavily.
struct Expr {
  ExprKind kind;

  // Literals.
  int64_t int_value = 0;       // kIntLit / kLongLit / kCharLit
  double double_value = 0.0;   // kDoubleLit
  bool bool_value = false;     // kBoolLit
  std::string string_value;    // kStringLit (unescaped)

  std::string name;            // kName: identifier; kFieldAccess: field name;
                               // kMethodCall: method name; kNewObject: class.

  BinaryOp binary_op = BinaryOp::kAdd;   // kBinary
  UnaryOp unary_op = UnaryOp::kNeg;      // kUnary
  AssignOp assign_op = AssignOp::kAssign;  // kAssign

  Type type;                   // kCast / kNewArray element type.

  ExprPtr lhs;   // kBinary lhs; kAssign target; kArrayAccess array;
                 // kFieldAccess object; kMethodCall receiver (may be null);
                 // kUnary operand; kConditional condition; kCast operand;
                 // kNewArray length.
  ExprPtr rhs;   // kBinary rhs; kAssign value; kArrayAccess index;
                 // kConditional then-branch.
  ExprPtr third;  // kConditional else-branch.
  std::vector<ExprPtr> args;  // kMethodCall / kNewObject arguments;
                              // kNewArray initializer elements.

  int line = 0;  ///< Source line of the expression's first token.

  /// Deep copy.
  ExprPtr Clone() const;

  // Nodes honor the thread's AstArenaScope (see above); arrays of nodes
  // are never allocated, so only the scalar forms are overridden.
  static void* operator new(std::size_t size) {
    return internal::AllocateAstNode(size);
  }
  static void operator delete(void* ptr) noexcept {
    internal::DeallocateAstNode(ptr);
  }
};

// Convenience constructors (used pervasively by tests and the generator).
ExprPtr MakeIntLit(int64_t value);
ExprPtr MakeDoubleLit(double value);
ExprPtr MakeBoolLit(bool value);
ExprPtr MakeStringLit(std::string value);
ExprPtr MakeName(std::string name);
ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeUnary(UnaryOp op, ExprPtr operand);
ExprPtr MakeAssign(AssignOp op, ExprPtr target, ExprPtr value);
ExprPtr MakeArrayAccess(ExprPtr array, ExprPtr index);
ExprPtr MakeFieldAccess(ExprPtr object, std::string field);
ExprPtr MakeCall(ExprPtr receiver, std::string method,
                 std::vector<ExprPtr> args);

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind {
  kBlock,
  kLocalVarDecl,
  kExprStmt,
  kIf,
  kWhile,
  kDoWhile,
  kFor,
  kSwitch,
  kReturn,
  kBreak,
  kContinue,
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// One declarator of a local variable declaration (`int a = 0, b;` has two).
struct VarDeclarator {
  std::string name;
  ExprPtr init;  ///< May be null.
};

/// One `case label:` (or `default:` when `label` is null) arm of a switch,
/// with the statements up to the next label (fall-through preserved).
struct SwitchCase {
  ExprPtr label;  ///< Null for `default:`.
  std::vector<StmtPtr> body;
};

/// A single-struct statement node, same flat design as Expr.
struct Stmt {
  StmtKind kind;

  std::vector<StmtPtr> body;        // kBlock statements; also single-element
                                    // body of loops / then-branch via `body`.
  Type decl_type;                   // kLocalVarDecl
  std::vector<VarDeclarator> decls;  // kLocalVarDecl

  ExprPtr expr;   // kExprStmt expression; kIf/kWhile/kDoWhile/kFor condition;
                  // kReturn value (may be null).
  StmtPtr then_branch;  // kIf
  StmtPtr else_branch;  // kIf (may be null)
  StmtPtr loop_body;    // kWhile / kDoWhile / kFor

  StmtPtr for_init;             // kFor (may be null; decl or expr-stmt)
  std::vector<ExprPtr> for_update;  // kFor update expressions.
  std::vector<SwitchCase> switch_cases;  // kSwitch arms.

  int line = 0;

  /// Deep copy.
  StmtPtr Clone() const;

  // Same arena-aware allocation as Expr.
  static void* operator new(std::size_t size) {
    return internal::AllocateAstNode(size);
  }
  static void operator delete(void* ptr) noexcept {
    internal::DeallocateAstNode(ptr);
  }
};

StmtPtr MakeExprStmt(ExprPtr expr);
StmtPtr MakeBlock(std::vector<StmtPtr> stmts);

// ---------------------------------------------------------------------------
// Methods and compilation units
// ---------------------------------------------------------------------------

struct Param {
  Type type;
  std::string name;
};

/// A method of a submission. Modifiers are accepted by the parser but not
/// retained (intro assignments do not depend on them).
struct Method {
  Type return_type;
  std::string name;
  std::vector<Param> params;
  StmtPtr body;  ///< Always a kBlock.
  int line = 0;

  /// Content hash of this method's token slice (modifiers excluded), set by
  /// the parser; 0 for hand-built methods that never saw tokens. Keyed with
  /// the assignment id, this is the method-cache address (DESIGN.md §3d).
  uint64_t fingerprint = 0;
  /// Space-joined spelling of the same token slice; re-parsing it yields an
  /// AST equivalent to this method, which is how the method cache rebuilds
  /// a cached method in its own pinned arena. Empty for hand-built methods.
  std::string norm_source;

  Method Clone() const;

  /// "void assignment1(int[] a)" — used in diagnostics and feedback.
  std::string Signature() const;
};

/// A parsed submission: one or more methods (an optional `class X { ... }`
/// wrapper is accepted and discarded).
struct CompilationUnit {
  std::string class_name;  ///< Empty when the submission had bare methods.
  std::vector<Method> methods;

  CompilationUnit Clone() const;

  /// Returns the method with the given name, or nullptr.
  const Method* FindMethod(const std::string& name) const;
};

}  // namespace jfeed::java

#endif  // JFEED_JAVALANG_AST_H_
