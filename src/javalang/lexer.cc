#include "javalang/lexer.h"

#include <cctype>
#include <unordered_map>

#include "support/fault.h"

namespace jfeed::java {

namespace {

const std::unordered_map<std::string_view, TokenKind>& KeywordTable() {
  static const auto* kTable = new std::unordered_map<std::string_view,
                                                     TokenKind>{
      {"int", TokenKind::kKwInt},         {"long", TokenKind::kKwLong},
      {"double", TokenKind::kKwDouble},   {"boolean", TokenKind::kKwBoolean},
      {"char", TokenKind::kKwChar},       {"String", TokenKind::kKwString},
      {"void", TokenKind::kKwVoid},       {"if", TokenKind::kKwIf},
      {"else", TokenKind::kKwElse},       {"while", TokenKind::kKwWhile},
      {"for", TokenKind::kKwFor},         {"do", TokenKind::kKwDo},
      {"return", TokenKind::kKwReturn},   {"break", TokenKind::kKwBreak},
      {"continue", TokenKind::kKwContinue}, {"new", TokenKind::kKwNew},
      {"true", TokenKind::kKwTrue},       {"false", TokenKind::kKwFalse},
      {"null", TokenKind::kKwNull},       {"class", TokenKind::kKwClass},
      {"switch", TokenKind::kKwSwitch},   {"case", TokenKind::kKwCase},
      {"default", TokenKind::kKwDefault},
      {"public", TokenKind::kKwPublic},   {"private", TokenKind::kKwPrivate},
      {"static", TokenKind::kKwStatic},   {"final", TokenKind::kKwFinal},
  };
  return *kTable;
}

class LexerImpl {
 public:
  explicit LexerImpl(std::string_view source) : src_(source) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> tokens;
    while (true) {
      JFEED_RETURN_IF_ERROR(SkipWhitespaceAndComments());
      if (AtEnd()) break;
      JFEED_ASSIGN_OR_RETURN(Token token, NextToken());
      tokens.push_back(std::move(token));
    }
    Token eof;
    eof.kind = TokenKind::kEof;
    eof.line = line_;
    eof.column = column_;
    tokens.push_back(std::move(eof));
    return tokens;
  }

 private:
  bool AtEnd() const { return pos_ >= src_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char Advance() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  Status Error(const std::string& msg) const {
    return Status::ParseError(msg + " at line " + std::to_string(line_) +
                              ", column " + std::to_string(column_));
  }

  Status SkipWhitespaceAndComments() {
    while (!AtEnd()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == '/' && Peek(1) == '/') {
        while (!AtEnd() && Peek() != '\n') Advance();
      } else if (c == '/' && Peek(1) == '*') {
        Advance();
        Advance();
        while (!AtEnd() && !(Peek() == '*' && Peek(1) == '/')) Advance();
        if (AtEnd()) return Error("unterminated block comment");
        Advance();
        Advance();
      } else {
        break;
      }
    }
    return Status::OK();
  }

  Token Make(TokenKind kind, std::string text, int line, int column) const {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = line;
    t.column = column;
    return t;
  }

  Result<Token> NextToken() {
    int line = line_;
    int column = column_;
    char c = Peek();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$') {
      return LexIdentifier(line, column);
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      return LexNumber(line, column);
    }
    if (c == '"') return LexString(line, column);
    if (c == '\'') return LexChar(line, column);
    return LexOperator(line, column);
  }

  Result<Token> LexIdentifier(int line, int column) {
    std::string text;
    while (!AtEnd()) {
      char c = Peek();
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '$') {
        text.push_back(Advance());
      } else {
        break;
      }
    }
    auto it = KeywordTable().find(text);
    TokenKind kind =
        it != KeywordTable().end() ? it->second : TokenKind::kIdentifier;
    return Make(kind, std::move(text), line, column);
  }

  Result<Token> LexNumber(int line, int column) {
    std::string text;
    bool is_double = false;
    while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
      text.push_back(Advance());
    }
    if (Peek() == '.' && std::isdigit(static_cast<unsigned char>(Peek(1)))) {
      is_double = true;
      text.push_back(Advance());
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        text.push_back(Advance());
      }
    }
    if (Peek() == 'e' || Peek() == 'E') {
      size_t ahead = 1;
      if (Peek(1) == '+' || Peek(1) == '-') ahead = 2;
      if (std::isdigit(static_cast<unsigned char>(Peek(ahead)))) {
        is_double = true;
        for (size_t i = 0; i < ahead; ++i) text.push_back(Advance());
        while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
          text.push_back(Advance());
        }
      }
    }
    if (is_double) {
      Token t = Make(TokenKind::kDoubleLiteral, text, line, column);
      t.double_value = std::stod(text);
      return t;
    }
    bool is_long = false;
    if (Peek() == 'L' || Peek() == 'l') {
      is_long = true;
      text.push_back(Advance());
    }
    Token t = Make(is_long ? TokenKind::kLongLiteral : TokenKind::kIntLiteral,
                   text, line, column);
    errno = 0;
    const std::string digits =
        is_long ? text.substr(0, text.size() - 1) : text;
    char* end = nullptr;
    t.int_value = std::strtoll(digits.c_str(), &end, 10);
    if (errno != 0 || end != digits.c_str() + digits.size()) {
      return Error("integer literal out of range: " + text);
    }
    return t;
  }

  Result<Token> LexString(int line, int column) {
    Advance();  // Opening quote.
    std::string value;
    std::string raw = "\"";
    while (!AtEnd() && Peek() != '"') {
      char c = Advance();
      raw.push_back(c);
      if (c == '\\') {
        if (AtEnd()) return Error("unterminated string literal");
        char esc = Advance();
        raw.push_back(esc);
        switch (esc) {
          case 'n': value.push_back('\n'); break;
          case 't': value.push_back('\t'); break;
          case 'r': value.push_back('\r'); break;
          case '\\': value.push_back('\\'); break;
          case '"': value.push_back('"'); break;
          case '\'': value.push_back('\''); break;
          case '0': value.push_back('\0'); break;
          default:
            return Error(std::string("unsupported escape \\") + esc);
        }
      } else if (c == '\n') {
        return Error("unterminated string literal");
      } else {
        value.push_back(c);
      }
    }
    if (AtEnd()) return Error("unterminated string literal");
    Advance();  // Closing quote.
    raw.push_back('"');
    Token t = Make(TokenKind::kStringLiteral, std::move(raw), line, column);
    t.string_value = std::move(value);
    return t;
  }

  Result<Token> LexChar(int line, int column) {
    Advance();  // Opening quote.
    if (AtEnd()) return Error("unterminated char literal");
    char c = Advance();
    if (c == '\\') {
      if (AtEnd()) return Error("unterminated char literal");
      char esc = Advance();
      switch (esc) {
        case 'n': c = '\n'; break;
        case 't': c = '\t'; break;
        case '\\': c = '\\'; break;
        case '\'': c = '\''; break;
        case '"': c = '"'; break;
        case '0': c = '\0'; break;
        default:
          return Error(std::string("unsupported escape \\") + esc);
      }
    }
    if (AtEnd() || Peek() != '\'') return Error("unterminated char literal");
    Advance();  // Closing quote.
    Token t = Make(TokenKind::kCharLiteral, std::string(1, c), line, column);
    t.int_value = static_cast<unsigned char>(c);
    return t;
  }

  Result<Token> LexOperator(int line, int column) {
    char c = Advance();
    auto two = [&](char second, TokenKind with, TokenKind without) {
      if (Peek() == second) {
        Advance();
        return Make(with, std::string{c, second}, line, column);
      }
      return Make(without, std::string(1, c), line, column);
    };
    switch (c) {
      case '(': return Make(TokenKind::kLParen, "(", line, column);
      case ')': return Make(TokenKind::kRParen, ")", line, column);
      case '{': return Make(TokenKind::kLBrace, "{", line, column);
      case '}': return Make(TokenKind::kRBrace, "}", line, column);
      case '[': return Make(TokenKind::kLBracket, "[", line, column);
      case ']': return Make(TokenKind::kRBracket, "]", line, column);
      case ';': return Make(TokenKind::kSemi, ";", line, column);
      case ',': return Make(TokenKind::kComma, ",", line, column);
      case '.': return Make(TokenKind::kDot, ".", line, column);
      case '?': return Make(TokenKind::kQuestion, "?", line, column);
      case ':': return Make(TokenKind::kColon, ":", line, column);
      case '+':
        if (Peek() == '+') {
          Advance();
          return Make(TokenKind::kPlusPlus, "++", line, column);
        }
        return two('=', TokenKind::kPlusAssign, TokenKind::kPlus);
      case '-':
        if (Peek() == '-') {
          Advance();
          return Make(TokenKind::kMinusMinus, "--", line, column);
        }
        return two('=', TokenKind::kMinusAssign, TokenKind::kMinus);
      case '*': return two('=', TokenKind::kStarAssign, TokenKind::kStar);
      case '/': return two('=', TokenKind::kSlashAssign, TokenKind::kSlash);
      case '%':
        return two('=', TokenKind::kPercentAssign, TokenKind::kPercent);
      case '<': return two('=', TokenKind::kLe, TokenKind::kLt);
      case '>': return two('=', TokenKind::kGe, TokenKind::kGt);
      case '=': return two('=', TokenKind::kEq, TokenKind::kAssign);
      case '!': return two('=', TokenKind::kNe, TokenKind::kNot);
      case '&':
        if (Peek() == '&') {
          Advance();
          return Make(TokenKind::kAndAnd, "&&", line, column);
        }
        return Error("bitwise '&' is not supported");
      case '|':
        if (Peek() == '|') {
          Advance();
          return Make(TokenKind::kOrOr, "||", line, column);
        }
        return Error("bitwise '|' is not supported");
      default:
        return Error(std::string("unexpected character '") + c + "'");
    }
  }

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

Result<std::vector<Token>> Lex(std::string_view source) {
  JFEED_FAULT_POINT(fault::points::kLexer);
  return LexerImpl(source).Run();
}

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEof: return "<eof>";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kIntLiteral: return "int literal";
    case TokenKind::kLongLiteral: return "long literal";
    case TokenKind::kDoubleLiteral: return "double literal";
    case TokenKind::kStringLiteral: return "string literal";
    case TokenKind::kCharLiteral: return "char literal";
    case TokenKind::kKwInt: return "'int'";
    case TokenKind::kKwLong: return "'long'";
    case TokenKind::kKwDouble: return "'double'";
    case TokenKind::kKwBoolean: return "'boolean'";
    case TokenKind::kKwChar: return "'char'";
    case TokenKind::kKwString: return "'String'";
    case TokenKind::kKwVoid: return "'void'";
    case TokenKind::kKwIf: return "'if'";
    case TokenKind::kKwElse: return "'else'";
    case TokenKind::kKwWhile: return "'while'";
    case TokenKind::kKwFor: return "'for'";
    case TokenKind::kKwDo: return "'do'";
    case TokenKind::kKwReturn: return "'return'";
    case TokenKind::kKwBreak: return "'break'";
    case TokenKind::kKwContinue: return "'continue'";
    case TokenKind::kKwNew: return "'new'";
    case TokenKind::kKwTrue: return "'true'";
    case TokenKind::kKwFalse: return "'false'";
    case TokenKind::kKwNull: return "'null'";
    case TokenKind::kKwClass: return "'class'";
    case TokenKind::kKwSwitch: return "'switch'";
    case TokenKind::kKwCase: return "'case'";
    case TokenKind::kKwDefault: return "'default'";
    case TokenKind::kKwPublic: return "'public'";
    case TokenKind::kKwPrivate: return "'private'";
    case TokenKind::kKwStatic: return "'static'";
    case TokenKind::kKwFinal: return "'final'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kSemi: return "';'";
    case TokenKind::kComma: return "','";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kAssign: return "'='";
    case TokenKind::kPlusAssign: return "'+='";
    case TokenKind::kMinusAssign: return "'-='";
    case TokenKind::kStarAssign: return "'*='";
    case TokenKind::kSlashAssign: return "'/='";
    case TokenKind::kPercentAssign: return "'%='";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
    case TokenKind::kPlusPlus: return "'++'";
    case TokenKind::kMinusMinus: return "'--'";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kEq: return "'=='";
    case TokenKind::kNe: return "'!='";
    case TokenKind::kAndAnd: return "'&&'";
    case TokenKind::kOrOr: return "'||'";
    case TokenKind::kNot: return "'!'";
    case TokenKind::kQuestion: return "'?'";
    case TokenKind::kColon: return "':'";
  }
  return "<unknown>";
}

}  // namespace jfeed::java
