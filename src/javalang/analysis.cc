#include "javalang/analysis.h"

#include <array>

namespace jfeed::java {

namespace {

/// Which channel AddBaseVar reports the lvalue's base variable on.
enum class Channel { kRead, kWrite };

void Emit(VarSink* sink, Channel channel, const std::string& name) {
  if (channel == Channel::kRead) {
    sink->OnRead(name);
  } else {
    sink->OnWrite(name);
  }
}

/// Reports the variable at the root of an lvalue chain: for `a[i]` that is
/// `a`.
void AddBaseVar(const Expr& lvalue, Channel channel, VarSink* sink) {
  const Expr* e = &lvalue;
  while (e->kind == ExprKind::kArrayAccess ||
         e->kind == ExprKind::kFieldAccess) {
    e = e->lhs.get();
  }
  if (e->kind == ExprKind::kName && !IsWellKnownClassName(e->name)) {
    Emit(sink, channel, e->name);
  }
}

void Collect(const Expr& e, bool as_read_target, VarSink* sink);

void CollectChildrenAsReads(const Expr& e, VarSink* sink) {
  if (e.lhs) Collect(*e.lhs, /*as_read_target=*/true, sink);
  if (e.rhs) Collect(*e.rhs, true, sink);
  if (e.third) Collect(*e.third, true, sink);
  for (const auto& a : e.args) Collect(*a, true, sink);
}

void Collect(const Expr& e, bool as_read_target, VarSink* sink) {
  switch (e.kind) {
    case ExprKind::kName:
      if (as_read_target && !IsWellKnownClassName(e.name)) {
        sink->OnRead(e.name);
      }
      return;
    case ExprKind::kAssign: {
      // Target: written; read too for compound assignments. Array-element
      // stores read the index expression and count as a (weak) write of the
      // array variable.
      AddBaseVar(*e.lhs, Channel::kWrite, sink);
      if (e.assign_op != AssignOp::kAssign) {
        AddBaseVar(*e.lhs, Channel::kRead, sink);
      }
      if (e.lhs->kind == ExprKind::kArrayAccess) {
        AddBaseVar(*e.lhs, Channel::kRead, sink);  // The array object itself.
        Collect(*e.lhs->rhs, true, sink);          // Index expression.
      }
      Collect(*e.rhs, true, sink);
      return;
    }
    case ExprKind::kUnary:
      if (e.unary_op == UnaryOp::kPreInc || e.unary_op == UnaryOp::kPreDec ||
          e.unary_op == UnaryOp::kPostInc ||
          e.unary_op == UnaryOp::kPostDec) {
        AddBaseVar(*e.lhs, Channel::kWrite, sink);
        AddBaseVar(*e.lhs, Channel::kRead, sink);
        if (e.lhs->kind == ExprKind::kArrayAccess) {
          Collect(*e.lhs->rhs, true, sink);
        }
        return;
      }
      Collect(*e.lhs, true, sink);
      return;
    case ExprKind::kArrayAccess:
    case ExprKind::kFieldAccess:
    case ExprKind::kMethodCall:
    case ExprKind::kBinary:
    case ExprKind::kConditional:
    case ExprKind::kCast:
    case ExprKind::kNewArray:
    case ExprKind::kNewObject:
      CollectChildrenAsReads(e, sink);
      return;
    case ExprKind::kIntLit:
    case ExprKind::kLongLit:
    case ExprKind::kDoubleLit:
    case ExprKind::kBoolLit:
    case ExprKind::kCharLit:
    case ExprKind::kStringLit:
    case ExprKind::kNullLit:
      return;
  }
}

/// VarSink that materializes the classic read/write sets.
class SetSink final : public VarSink {
 public:
  void OnRead(const std::string& name) override { reads.insert(name); }
  void OnWrite(const std::string& name) override { writes.insert(name); }

  std::set<std::string> reads;
  std::set<std::string> writes;
};

}  // namespace

void VisitVars(const Expr& expr, VarSink* sink) {
  Collect(expr, /*as_read_target=*/true, sink);
}

bool IsWellKnownClassName(const std::string& name) {
  static constexpr std::array<std::string_view, 10> kNames = {
      "System", "Math",   "Integer", "Double", "String",
      "Long",   "Boolean", "Character", "File", "Arrays"};
  for (auto n : kNames) {
    if (name == n) return true;
  }
  return false;
}

std::set<std::string> VarsRead(const Expr& expr) {
  SetSink sink;
  VisitVars(expr, &sink);
  return std::move(sink.reads);
}

std::set<std::string> VarsWritten(const Expr& expr) {
  SetSink sink;
  VisitVars(expr, &sink);
  return std::move(sink.writes);
}

std::set<std::string> VarsMentioned(const Expr& expr) {
  SetSink sink;
  VisitVars(expr, &sink);
  sink.reads.insert(sink.writes.begin(), sink.writes.end());
  return std::move(sink.reads);
}

}  // namespace jfeed::java
