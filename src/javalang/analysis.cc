#include "javalang/analysis.h"

#include <array>

namespace jfeed::java {

namespace {

/// Adds the variable at the root of an lvalue chain: for `a[i]` that is `a`.
void AddBaseVar(const Expr& lvalue, std::set<std::string>* out) {
  const Expr* e = &lvalue;
  while (e->kind == ExprKind::kArrayAccess ||
         e->kind == ExprKind::kFieldAccess) {
    e = e->lhs.get();
  }
  if (e->kind == ExprKind::kName && !IsWellKnownClassName(e->name)) {
    out->insert(e->name);
  }
}

void Collect(const Expr& e, bool as_read_target, std::set<std::string>* reads,
             std::set<std::string>* writes);

void CollectChildrenAsReads(const Expr& e, std::set<std::string>* reads,
                            std::set<std::string>* writes) {
  if (e.lhs) Collect(*e.lhs, /*as_read_target=*/true, reads, writes);
  if (e.rhs) Collect(*e.rhs, true, reads, writes);
  if (e.third) Collect(*e.third, true, reads, writes);
  for (const auto& a : e.args) Collect(*a, true, reads, writes);
}

void Collect(const Expr& e, bool as_read_target, std::set<std::string>* reads,
             std::set<std::string>* writes) {
  switch (e.kind) {
    case ExprKind::kName:
      if (as_read_target && !IsWellKnownClassName(e.name)) {
        reads->insert(e.name);
      }
      return;
    case ExprKind::kAssign: {
      // Target: written; read too for compound assignments. Array-element
      // stores read the index expression and count as a (weak) write of the
      // array variable.
      AddBaseVar(*e.lhs, writes);
      if (e.assign_op != AssignOp::kAssign) {
        AddBaseVar(*e.lhs, reads);
      }
      if (e.lhs->kind == ExprKind::kArrayAccess) {
        AddBaseVar(*e.lhs, reads);  // Reading the array object itself.
        Collect(*e.lhs->rhs, true, reads, writes);  // Index expression.
      }
      Collect(*e.rhs, true, reads, writes);
      return;
    }
    case ExprKind::kUnary:
      if (e.unary_op == UnaryOp::kPreInc || e.unary_op == UnaryOp::kPreDec ||
          e.unary_op == UnaryOp::kPostInc ||
          e.unary_op == UnaryOp::kPostDec) {
        AddBaseVar(*e.lhs, writes);
        AddBaseVar(*e.lhs, reads);
        if (e.lhs->kind == ExprKind::kArrayAccess) {
          Collect(*e.lhs->rhs, true, reads, writes);
        }
        return;
      }
      Collect(*e.lhs, true, reads, writes);
      return;
    case ExprKind::kArrayAccess:
    case ExprKind::kFieldAccess:
    case ExprKind::kMethodCall:
    case ExprKind::kBinary:
    case ExprKind::kConditional:
    case ExprKind::kCast:
    case ExprKind::kNewArray:
    case ExprKind::kNewObject:
      CollectChildrenAsReads(e, reads, writes);
      return;
    case ExprKind::kIntLit:
    case ExprKind::kLongLit:
    case ExprKind::kDoubleLit:
    case ExprKind::kBoolLit:
    case ExprKind::kCharLit:
    case ExprKind::kStringLit:
    case ExprKind::kNullLit:
      return;
  }
}

}  // namespace

bool IsWellKnownClassName(const std::string& name) {
  static constexpr std::array<std::string_view, 10> kNames = {
      "System", "Math",   "Integer", "Double", "String",
      "Long",   "Boolean", "Character", "File", "Arrays"};
  for (auto n : kNames) {
    if (name == n) return true;
  }
  return false;
}

std::set<std::string> VarsRead(const Expr& expr) {
  std::set<std::string> reads, writes;
  Collect(expr, true, &reads, &writes);
  return reads;
}

std::set<std::string> VarsWritten(const Expr& expr) {
  std::set<std::string> reads, writes;
  Collect(expr, true, &reads, &writes);
  return writes;
}

std::set<std::string> VarsMentioned(const Expr& expr) {
  std::set<std::string> reads, writes;
  Collect(expr, true, &reads, &writes);
  reads.insert(writes.begin(), writes.end());
  return reads;
}

}  // namespace jfeed::java
