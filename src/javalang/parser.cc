#include "javalang/parser.h"

#include <utility>

#include "javalang/fingerprint.h"
#include "javalang/lexer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/fault.h"

namespace jfeed::java {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<CompilationUnit> ParseUnit() {
    CompilationUnit unit;
    SkipModifiers();
    if (Check(TokenKind::kKwClass)) {
      Advance();
      JFEED_ASSIGN_OR_RETURN(Token name, Expect(TokenKind::kIdentifier));
      unit.class_name = name.text;
      JFEED_RETURN_IF_ERROR(Expect(TokenKind::kLBrace).status());
      while (!Check(TokenKind::kRBrace) && !Check(TokenKind::kEof)) {
        JFEED_ASSIGN_OR_RETURN(Method m, ParseMethod());
        unit.methods.push_back(std::move(m));
      }
      JFEED_RETURN_IF_ERROR(Expect(TokenKind::kRBrace).status());
    } else {
      while (!Check(TokenKind::kEof)) {
        JFEED_ASSIGN_OR_RETURN(Method m, ParseMethod());
        unit.methods.push_back(std::move(m));
      }
    }
    JFEED_RETURN_IF_ERROR(Expect(TokenKind::kEof).status());
    if (unit.methods.empty()) {
      return Status::ParseError("submission contains no methods");
    }
    return unit;
  }

  Result<ExprPtr> ParseSingleExpression() {
    JFEED_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    JFEED_RETURN_IF_ERROR(Expect(TokenKind::kEof).status());
    return e;
  }

  Result<StmtPtr> ParseSingleStatement() {
    JFEED_ASSIGN_OR_RETURN(StmtPtr s, ParseStmt());
    JFEED_RETURN_IF_ERROR(Expect(TokenKind::kEof).status());
    return s;
  }

 private:
  // --- Token plumbing -----------------------------------------------------

  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool Check(TokenKind kind) const { return Peek().kind == kind; }
  Token Advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool Match(TokenKind kind) {
    if (!Check(kind)) return false;
    Advance();
    return true;
  }

  Status Error(const std::string& msg) const {
    const Token& t = Peek();
    return Status::ParseError(msg + " (found " + TokenKindName(t.kind) +
                              " at line " + std::to_string(t.line) +
                              ", column " + std::to_string(t.column) + ")");
  }

  Result<Token> Expect(TokenKind kind) {
    if (!Check(kind)) {
      return Error(std::string("expected ") + TokenKindName(kind));
    }
    return Advance();
  }

  void SkipModifiers() {
    while (Check(TokenKind::kKwPublic) || Check(TokenKind::kKwPrivate) ||
           Check(TokenKind::kKwStatic) || Check(TokenKind::kKwFinal)) {
      Advance();
    }
  }

  // --- Types --------------------------------------------------------------

  bool CheckTypeStart() const {
    switch (Peek().kind) {
      case TokenKind::kKwInt:
      case TokenKind::kKwLong:
      case TokenKind::kKwDouble:
      case TokenKind::kKwBoolean:
      case TokenKind::kKwChar:
      case TokenKind::kKwString:
      case TokenKind::kKwVoid:
        return true;
      case TokenKind::kIdentifier:
        // A class-typed declaration like `Scanner s = ...` — only when
        // followed by an identifier (disambiguates from expressions).
        return Peek(1).kind == TokenKind::kIdentifier;
      default:
        return false;
    }
  }

  Result<Type> ParseType() {
    Type type;
    switch (Peek().kind) {
      case TokenKind::kKwInt: type.kind = TypeKind::kInt; break;
      case TokenKind::kKwLong: type.kind = TypeKind::kLong; break;
      case TokenKind::kKwDouble: type.kind = TypeKind::kDouble; break;
      case TokenKind::kKwBoolean: type.kind = TypeKind::kBoolean; break;
      case TokenKind::kKwChar: type.kind = TypeKind::kChar; break;
      case TokenKind::kKwString: type.kind = TypeKind::kString; break;
      case TokenKind::kKwVoid: type.kind = TypeKind::kVoid; break;
      case TokenKind::kIdentifier:
        type.kind = TypeKind::kClass;
        type.class_name = Peek().text;
        break;
      default:
        return Error("expected a type");
    }
    Advance();
    while (Check(TokenKind::kLBracket) && Peek(1).kind == TokenKind::kRBracket) {
      Advance();
      Advance();
      ++type.array_dims;
    }
    return type;
  }

  // --- Methods ------------------------------------------------------------

  Result<Method> ParseMethod() {
    SkipModifiers();
    // Fingerprint the slice from the return type through the closing brace.
    // Modifiers are excluded on purpose: the parser discards them, so
    // `static int f(){...}` and `int f(){...}` grade identically and should
    // share a method-cache entry.
    size_t first = pos_;
    Method method;
    method.line = Peek().line;
    JFEED_ASSIGN_OR_RETURN(method.return_type, ParseType());
    JFEED_ASSIGN_OR_RETURN(Token name, Expect(TokenKind::kIdentifier));
    method.name = name.text;
    JFEED_RETURN_IF_ERROR(Expect(TokenKind::kLParen).status());
    if (!Check(TokenKind::kRParen)) {
      while (true) {
        Param param;
        JFEED_ASSIGN_OR_RETURN(param.type, ParseType());
        JFEED_ASSIGN_OR_RETURN(Token pname, Expect(TokenKind::kIdentifier));
        param.name = pname.text;
        method.params.push_back(std::move(param));
        if (!Match(TokenKind::kComma)) break;
      }
    }
    JFEED_RETURN_IF_ERROR(Expect(TokenKind::kRParen).status());
    JFEED_ASSIGN_OR_RETURN(method.body, ParseBlock());
    method.fingerprint = FingerprintTokenRange(tokens_, first, pos_);
    method.norm_source = NormalizeTokenRange(tokens_, first, pos_);
    return method;
  }

  // --- Statements ---------------------------------------------------------

  Result<StmtPtr> ParseBlock() {
    JFEED_RETURN_IF_ERROR(Expect(TokenKind::kLBrace).status());
    auto block = std::make_unique<Stmt>();
    block->kind = StmtKind::kBlock;
    block->line = Peek().line;
    while (!Check(TokenKind::kRBrace) && !Check(TokenKind::kEof)) {
      JFEED_ASSIGN_OR_RETURN(StmtPtr s, ParseStmt());
      block->body.push_back(std::move(s));
    }
    JFEED_RETURN_IF_ERROR(Expect(TokenKind::kRBrace).status());
    return StmtPtr(std::move(block));
  }

  Result<StmtPtr> ParseStmt() {
    JFEED_RETURN_IF_ERROR(EnterNested());
    auto result = ParseStmtInner();
    --depth_;
    return result;
  }

  Result<StmtPtr> ParseStmtInner() {
    switch (Peek().kind) {
      case TokenKind::kLBrace:
        return ParseBlock();
      case TokenKind::kKwIf:
        return ParseIf();
      case TokenKind::kKwWhile:
        return ParseWhile();
      case TokenKind::kKwDo:
        return ParseDoWhile();
      case TokenKind::kKwFor:
        return ParseFor();
      case TokenKind::kKwSwitch:
        return ParseSwitch();
      case TokenKind::kKwReturn:
        return ParseReturn();
      case TokenKind::kKwBreak: {
        auto s = std::make_unique<Stmt>();
        s->kind = StmtKind::kBreak;
        s->line = Peek().line;
        Advance();
        JFEED_RETURN_IF_ERROR(Expect(TokenKind::kSemi).status());
        return StmtPtr(std::move(s));
      }
      case TokenKind::kKwContinue: {
        auto s = std::make_unique<Stmt>();
        s->kind = StmtKind::kContinue;
        s->line = Peek().line;
        Advance();
        JFEED_RETURN_IF_ERROR(Expect(TokenKind::kSemi).status());
        return StmtPtr(std::move(s));
      }
      case TokenKind::kKwFinal:
        return ParseLocalDecl();
      default:
        if (CheckTypeStart()) return ParseLocalDecl();
        return ParseExprStmt();
    }
  }

  Result<StmtPtr> ParseLocalDecl() {
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::kLocalVarDecl;
    s->line = Peek().line;
    SkipModifiers();
    JFEED_ASSIGN_OR_RETURN(s->decl_type, ParseType());
    while (true) {
      VarDeclarator decl;
      JFEED_ASSIGN_OR_RETURN(Token name, Expect(TokenKind::kIdentifier));
      decl.name = name.text;
      if (Match(TokenKind::kAssign)) {
        JFEED_ASSIGN_OR_RETURN(decl.init, ParseExpr());
      }
      s->decls.push_back(std::move(decl));
      if (!Match(TokenKind::kComma)) break;
    }
    JFEED_RETURN_IF_ERROR(Expect(TokenKind::kSemi).status());
    return StmtPtr(std::move(s));
  }

  Result<StmtPtr> ParseExprStmt() {
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::kExprStmt;
    s->line = Peek().line;
    JFEED_ASSIGN_OR_RETURN(s->expr, ParseExpr());
    JFEED_RETURN_IF_ERROR(Expect(TokenKind::kSemi).status());
    return StmtPtr(std::move(s));
  }

  Result<StmtPtr> ParseIf() {
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::kIf;
    s->line = Peek().line;
    Advance();  // if
    JFEED_RETURN_IF_ERROR(Expect(TokenKind::kLParen).status());
    JFEED_ASSIGN_OR_RETURN(s->expr, ParseExpr());
    JFEED_RETURN_IF_ERROR(Expect(TokenKind::kRParen).status());
    JFEED_ASSIGN_OR_RETURN(s->then_branch, ParseStmt());
    if (Match(TokenKind::kKwElse)) {
      JFEED_ASSIGN_OR_RETURN(s->else_branch, ParseStmt());
    }
    return StmtPtr(std::move(s));
  }

  Result<StmtPtr> ParseWhile() {
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::kWhile;
    s->line = Peek().line;
    Advance();  // while
    JFEED_RETURN_IF_ERROR(Expect(TokenKind::kLParen).status());
    JFEED_ASSIGN_OR_RETURN(s->expr, ParseExpr());
    JFEED_RETURN_IF_ERROR(Expect(TokenKind::kRParen).status());
    JFEED_ASSIGN_OR_RETURN(s->loop_body, ParseStmt());
    return StmtPtr(std::move(s));
  }

  Result<StmtPtr> ParseDoWhile() {
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::kDoWhile;
    s->line = Peek().line;
    Advance();  // do
    JFEED_ASSIGN_OR_RETURN(s->loop_body, ParseStmt());
    if (!Match(TokenKind::kKwWhile)) return Error("expected 'while'");
    JFEED_RETURN_IF_ERROR(Expect(TokenKind::kLParen).status());
    JFEED_ASSIGN_OR_RETURN(s->expr, ParseExpr());
    JFEED_RETURN_IF_ERROR(Expect(TokenKind::kRParen).status());
    JFEED_RETURN_IF_ERROR(Expect(TokenKind::kSemi).status());
    return StmtPtr(std::move(s));
  }

  Result<StmtPtr> ParseFor() {
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::kFor;
    s->line = Peek().line;
    Advance();  // for
    JFEED_RETURN_IF_ERROR(Expect(TokenKind::kLParen).status());
    if (!Check(TokenKind::kSemi)) {
      if (CheckTypeStart()) {
        JFEED_ASSIGN_OR_RETURN(s->for_init, ParseLocalDecl());
      } else {
        auto init = std::make_unique<Stmt>();
        init->kind = StmtKind::kExprStmt;
        init->line = Peek().line;
        JFEED_ASSIGN_OR_RETURN(init->expr, ParseExpr());
        JFEED_RETURN_IF_ERROR(Expect(TokenKind::kSemi).status());
        s->for_init = std::move(init);
      }
    } else {
      Advance();  // empty init ';'
    }
    if (!Check(TokenKind::kSemi)) {
      JFEED_ASSIGN_OR_RETURN(s->expr, ParseExpr());
    }
    JFEED_RETURN_IF_ERROR(Expect(TokenKind::kSemi).status());
    if (!Check(TokenKind::kRParen)) {
      while (true) {
        JFEED_ASSIGN_OR_RETURN(ExprPtr u, ParseExpr());
        s->for_update.push_back(std::move(u));
        if (!Match(TokenKind::kComma)) break;
      }
    }
    JFEED_RETURN_IF_ERROR(Expect(TokenKind::kRParen).status());
    JFEED_ASSIGN_OR_RETURN(s->loop_body, ParseStmt());
    return StmtPtr(std::move(s));
  }

  Result<StmtPtr> ParseSwitch() {
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::kSwitch;
    s->line = Peek().line;
    Advance();  // switch
    JFEED_RETURN_IF_ERROR(Expect(TokenKind::kLParen).status());
    JFEED_ASSIGN_OR_RETURN(s->expr, ParseExpr());
    JFEED_RETURN_IF_ERROR(Expect(TokenKind::kRParen).status());
    JFEED_RETURN_IF_ERROR(Expect(TokenKind::kLBrace).status());
    bool seen_default = false;
    while (!Check(TokenKind::kRBrace) && !Check(TokenKind::kEof)) {
      SwitchCase arm;
      if (Match(TokenKind::kKwCase)) {
        JFEED_ASSIGN_OR_RETURN(arm.label, ParseExpr());
      } else if (Match(TokenKind::kKwDefault)) {
        if (seen_default) return Error("duplicate 'default' label");
        seen_default = true;
      } else {
        return Error("expected 'case' or 'default'");
      }
      JFEED_RETURN_IF_ERROR(Expect(TokenKind::kColon).status());
      while (!Check(TokenKind::kKwCase) && !Check(TokenKind::kKwDefault) &&
             !Check(TokenKind::kRBrace) && !Check(TokenKind::kEof)) {
        JFEED_ASSIGN_OR_RETURN(StmtPtr stmt, ParseStmt());
        arm.body.push_back(std::move(stmt));
      }
      s->switch_cases.push_back(std::move(arm));
    }
    JFEED_RETURN_IF_ERROR(Expect(TokenKind::kRBrace).status());
    return StmtPtr(std::move(s));
  }

  Result<StmtPtr> ParseReturn() {
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::kReturn;
    s->line = Peek().line;
    Advance();  // return
    if (!Check(TokenKind::kSemi)) {
      JFEED_ASSIGN_OR_RETURN(s->expr, ParseExpr());
    }
    JFEED_RETURN_IF_ERROR(Expect(TokenKind::kSemi).status());
    return StmtPtr(std::move(s));
  }

  // --- Expressions (precedence climbing) ----------------------------------

  /// Depth guard shared by the recursive entry points. A recursive-descent
  /// parser consumes one stack frame per nesting level, so an adversarial
  /// "parse bomb" ("((((...1...))))", "{{{{...}}}}", "!!!!...x") would
  /// otherwise overflow the host stack — a crash, not a diagnosis. 200
  /// levels is far beyond anything an intro-course submission contains.
  Status EnterNested() {
    if (++depth_ > kMaxNestingDepth) {
      --depth_;
      return Status::ResourceExhausted(
          "nesting depth exceeds " + std::to_string(kMaxNestingDepth) +
          " (line " + std::to_string(Peek().line) + ")");
    }
    return Status::OK();
  }

  Result<ExprPtr> ParseExpr() {
    JFEED_RETURN_IF_ERROR(EnterNested());
    auto result = ParseAssignment();
    --depth_;
    return result;
  }

  static bool IsLValue(const Expr& e) {
    return e.kind == ExprKind::kName || e.kind == ExprKind::kArrayAccess;
  }

  Result<ExprPtr> ParseAssignment() {
    JFEED_ASSIGN_OR_RETURN(ExprPtr lhs, ParseConditional());
    AssignOp op;
    switch (Peek().kind) {
      case TokenKind::kAssign: op = AssignOp::kAssign; break;
      case TokenKind::kPlusAssign: op = AssignOp::kAddAssign; break;
      case TokenKind::kMinusAssign: op = AssignOp::kSubAssign; break;
      case TokenKind::kStarAssign: op = AssignOp::kMulAssign; break;
      case TokenKind::kSlashAssign: op = AssignOp::kDivAssign; break;
      case TokenKind::kPercentAssign: op = AssignOp::kModAssign; break;
      default:
        return lhs;
    }
    if (!IsLValue(*lhs)) return Error("left side of assignment is not an lvalue");
    int line = Peek().line;
    Advance();
    JFEED_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAssignment());
    ExprPtr e = MakeAssign(op, std::move(lhs), std::move(rhs));
    e->line = line;
    return e;
  }

  Result<ExprPtr> ParseConditional() {
    JFEED_ASSIGN_OR_RETURN(ExprPtr cond, ParseOr());
    if (!Match(TokenKind::kQuestion)) return cond;
    JFEED_ASSIGN_OR_RETURN(ExprPtr then_e, ParseExpr());
    JFEED_RETURN_IF_ERROR(Expect(TokenKind::kColon).status());
    JFEED_ASSIGN_OR_RETURN(ExprPtr else_e, ParseConditional());
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kConditional;
    e->lhs = std::move(cond);
    e->rhs = std::move(then_e);
    e->third = std::move(else_e);
    return ExprPtr(std::move(e));
  }

  Result<ExprPtr> ParseOr() {
    JFEED_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (Check(TokenKind::kOrOr)) {
      Advance();
      JFEED_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = MakeBinary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    JFEED_ASSIGN_OR_RETURN(ExprPtr lhs, ParseEquality());
    while (Check(TokenKind::kAndAnd)) {
      Advance();
      JFEED_ASSIGN_OR_RETURN(ExprPtr rhs, ParseEquality());
      lhs = MakeBinary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseEquality() {
    JFEED_ASSIGN_OR_RETURN(ExprPtr lhs, ParseRelational());
    while (Check(TokenKind::kEq) || Check(TokenKind::kNe)) {
      BinaryOp op = Check(TokenKind::kEq) ? BinaryOp::kEq : BinaryOp::kNe;
      Advance();
      JFEED_ASSIGN_OR_RETURN(ExprPtr rhs, ParseRelational());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseRelational() {
    JFEED_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    while (true) {
      BinaryOp op;
      switch (Peek().kind) {
        case TokenKind::kLt: op = BinaryOp::kLt; break;
        case TokenKind::kLe: op = BinaryOp::kLe; break;
        case TokenKind::kGt: op = BinaryOp::kGt; break;
        case TokenKind::kGe: op = BinaryOp::kGe; break;
        default:
          return lhs;
      }
      Advance();
      JFEED_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
  }

  Result<ExprPtr> ParseAdditive() {
    JFEED_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (Check(TokenKind::kPlus) || Check(TokenKind::kMinus)) {
      BinaryOp op = Check(TokenKind::kPlus) ? BinaryOp::kAdd : BinaryOp::kSub;
      Advance();
      JFEED_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseMultiplicative() {
    JFEED_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (true) {
      BinaryOp op;
      switch (Peek().kind) {
        case TokenKind::kStar: op = BinaryOp::kMul; break;
        case TokenKind::kSlash: op = BinaryOp::kDiv; break;
        case TokenKind::kPercent: op = BinaryOp::kMod; break;
        default:
          return lhs;
      }
      Advance();
      JFEED_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
  }

  bool CheckCastStart() const {
    // "(" type ")" followed by something that can start a unary expression.
    if (!Check(TokenKind::kLParen)) return false;
    TokenKind k = Peek(1).kind;
    if (k != TokenKind::kKwInt && k != TokenKind::kKwLong &&
        k != TokenKind::kKwDouble && k != TokenKind::kKwChar) {
      return false;
    }
    return Peek(2).kind == TokenKind::kRParen;
  }

  Result<ExprPtr> ParseUnary() {
    JFEED_RETURN_IF_ERROR(EnterNested());
    auto result = ParseUnaryInner();
    --depth_;
    return result;
  }

  Result<ExprPtr> ParseUnaryInner() {
    int line = Peek().line;
    if (Check(TokenKind::kMinus)) {
      Advance();
      JFEED_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      // Fold a negated literal so "-1" prints and matches as a literal.
      if (operand->kind == ExprKind::kIntLit) {
        operand->int_value = -operand->int_value;
        return operand;
      }
      if (operand->kind == ExprKind::kDoubleLit) {
        operand->double_value = -operand->double_value;
        return operand;
      }
      ExprPtr e = MakeUnary(UnaryOp::kNeg, std::move(operand));
      e->line = line;
      return e;
    }
    if (Check(TokenKind::kNot)) {
      Advance();
      JFEED_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      ExprPtr e = MakeUnary(UnaryOp::kNot, std::move(operand));
      e->line = line;
      return e;
    }
    if (Check(TokenKind::kPlusPlus) || Check(TokenKind::kMinusMinus)) {
      UnaryOp op = Check(TokenKind::kPlusPlus) ? UnaryOp::kPreInc
                                               : UnaryOp::kPreDec;
      Advance();
      JFEED_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      if (!IsLValue(*operand)) return Error("operand of ++/-- is not an lvalue");
      ExprPtr e = MakeUnary(op, std::move(operand));
      e->line = line;
      return e;
    }
    if (CheckCastStart()) {
      Advance();  // (
      JFEED_ASSIGN_OR_RETURN(Type type, ParseType());
      JFEED_RETURN_IF_ERROR(Expect(TokenKind::kRParen).status());
      JFEED_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kCast;
      e->type = type;
      e->lhs = std::move(operand);
      e->line = line;
      return ExprPtr(std::move(e));
    }
    return ParsePostfix();
  }

  Result<ExprPtr> ParsePostfix() {
    JFEED_ASSIGN_OR_RETURN(ExprPtr e, ParsePrimary());
    while (true) {
      int line = Peek().line;
      if (Check(TokenKind::kLBracket)) {
        Advance();
        JFEED_ASSIGN_OR_RETURN(ExprPtr index, ParseExpr());
        JFEED_RETURN_IF_ERROR(Expect(TokenKind::kRBracket).status());
        e = MakeArrayAccess(std::move(e), std::move(index));
        e->line = line;
      } else if (Check(TokenKind::kDot)) {
        Advance();
        JFEED_ASSIGN_OR_RETURN(Token name, Expect(TokenKind::kIdentifier));
        if (Check(TokenKind::kLParen)) {
          JFEED_ASSIGN_OR_RETURN(std::vector<ExprPtr> args, ParseArgs());
          e = MakeCall(std::move(e), name.text, std::move(args));
        } else {
          e = MakeFieldAccess(std::move(e), name.text);
        }
        e->line = line;
      } else if (Check(TokenKind::kPlusPlus) ||
                 Check(TokenKind::kMinusMinus)) {
        UnaryOp op = Check(TokenKind::kPlusPlus) ? UnaryOp::kPostInc
                                                 : UnaryOp::kPostDec;
        if (!IsLValue(*e)) return Error("operand of ++/-- is not an lvalue");
        Advance();
        e = MakeUnary(op, std::move(e));
        e->line = line;
      } else {
        return e;
      }
    }
  }

  Result<std::vector<ExprPtr>> ParseArgs() {
    JFEED_RETURN_IF_ERROR(Expect(TokenKind::kLParen).status());
    std::vector<ExprPtr> args;
    if (!Check(TokenKind::kRParen)) {
      while (true) {
        JFEED_ASSIGN_OR_RETURN(ExprPtr a, ParseExpr());
        args.push_back(std::move(a));
        if (!Match(TokenKind::kComma)) break;
      }
    }
    JFEED_RETURN_IF_ERROR(Expect(TokenKind::kRParen).status());
    return args;
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    int line = t.line;
    switch (t.kind) {
      case TokenKind::kIntLiteral: {
        ExprPtr e = MakeIntLit(t.int_value);
        e->line = line;
        Advance();
        return e;
      }
      case TokenKind::kLongLiteral: {
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kLongLit;
        e->int_value = t.int_value;
        e->line = line;
        Advance();
        return ExprPtr(std::move(e));
      }
      case TokenKind::kDoubleLiteral: {
        ExprPtr e = MakeDoubleLit(t.double_value);
        e->line = line;
        Advance();
        return e;
      }
      case TokenKind::kStringLiteral: {
        ExprPtr e = MakeStringLit(t.string_value);
        e->line = line;
        Advance();
        return e;
      }
      case TokenKind::kCharLiteral: {
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kCharLit;
        e->int_value = t.int_value;
        e->line = line;
        Advance();
        return ExprPtr(std::move(e));
      }
      case TokenKind::kKwTrue:
      case TokenKind::kKwFalse: {
        ExprPtr e = MakeBoolLit(t.kind == TokenKind::kKwTrue);
        e->line = line;
        Advance();
        return e;
      }
      case TokenKind::kKwNull: {
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kNullLit;
        e->line = line;
        Advance();
        return ExprPtr(std::move(e));
      }
      case TokenKind::kIdentifier: {
        std::string name = t.text;
        Advance();
        if (Check(TokenKind::kLParen)) {
          JFEED_ASSIGN_OR_RETURN(std::vector<ExprPtr> args, ParseArgs());
          ExprPtr e = MakeCall(nullptr, name, std::move(args));
          e->line = line;
          return e;
        }
        ExprPtr e = MakeName(std::move(name));
        e->line = line;
        return e;
      }
      case TokenKind::kKwNew:
        return ParseNew();
      case TokenKind::kLParen: {
        Advance();
        JFEED_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        JFEED_RETURN_IF_ERROR(Expect(TokenKind::kRParen).status());
        return e;
      }
      default:
        return Error("expected an expression");
    }
  }

  Result<ExprPtr> ParseNew() {
    int line = Peek().line;
    Advance();  // new
    JFEED_ASSIGN_OR_RETURN(Type type, ParseTypeBase());
    if (Check(TokenKind::kLBracket)) {
      Advance();
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kNewArray;
      e->type = type;
      e->line = line;
      if (!Check(TokenKind::kRBracket)) {
        JFEED_ASSIGN_OR_RETURN(e->lhs, ParseExpr());
      }
      JFEED_RETURN_IF_ERROR(Expect(TokenKind::kRBracket).status());
      if (Check(TokenKind::kLBrace)) {
        // `new int[] {1, 2, 3}` initializer form.
        Advance();
        if (!Check(TokenKind::kRBrace)) {
          while (true) {
            JFEED_ASSIGN_OR_RETURN(ExprPtr elem, ParseExpr());
            e->args.push_back(std::move(elem));
            if (!Match(TokenKind::kComma)) break;
          }
        }
        JFEED_RETURN_IF_ERROR(Expect(TokenKind::kRBrace).status());
      }
      return ExprPtr(std::move(e));
    }
    if (type.kind != TypeKind::kClass && type.kind != TypeKind::kString) {
      return Error("cannot instantiate a primitive type with 'new'");
    }
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kNewObject;
    e->name = type.kind == TypeKind::kString ? "String" : type.class_name;
    e->line = line;
    JFEED_ASSIGN_OR_RETURN(e->args, ParseArgs());
    return ExprPtr(std::move(e));
  }

  /// Parses a type without array suffix (used after `new`, where `[` starts
  /// the dimension expression instead).
  Result<Type> ParseTypeBase() {
    Type type;
    switch (Peek().kind) {
      case TokenKind::kKwInt: type.kind = TypeKind::kInt; break;
      case TokenKind::kKwLong: type.kind = TypeKind::kLong; break;
      case TokenKind::kKwDouble: type.kind = TypeKind::kDouble; break;
      case TokenKind::kKwBoolean: type.kind = TypeKind::kBoolean; break;
      case TokenKind::kKwChar: type.kind = TypeKind::kChar; break;
      case TokenKind::kKwString: type.kind = TypeKind::kString; break;
      case TokenKind::kIdentifier:
        type.kind = TypeKind::kClass;
        type.class_name = Peek().text;
        break;
      default:
        return Error("expected a type after 'new'");
    }
    Advance();
    return type;
  }

  static constexpr int kMaxNestingDepth = 200;

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int depth_ = 0;  ///< Current statement/expression nesting level.
};

}  // namespace

Result<CompilationUnit> Parse(std::string_view source) {
  JFEED_FAULT_POINT(fault::points::kParser);
  obs::Span lex_span("lex");
  auto tokens = Lex(source);
  lex_span.End();
  if (!tokens.ok()) return tokens.status();
  static obs::Histogram* lex_tokens = obs::Registry::Global().GetHistogram(
      "jfeed_lex_tokens", "Tokens produced per successfully lexed source");
  lex_tokens->Record(static_cast<int64_t>(tokens->size()));
  obs::Span parse_span("parse_unit");
  return Parser(std::move(*tokens)).ParseUnit();
}

Result<ExprPtr> ParseExpression(std::string_view source) {
  JFEED_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(source));
  return Parser(std::move(tokens)).ParseSingleExpression();
}

Result<StmtPtr> ParseStatement(std::string_view source) {
  JFEED_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(source));
  return Parser(std::move(tokens)).ParseSingleStatement();
}

}  // namespace jfeed::java
