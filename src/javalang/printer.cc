#include "javalang/printer.h"

#include <sstream>

namespace jfeed::java {

namespace {

/// Precedence levels, higher binds tighter. Mirrors the parser.
int Precedence(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kAssign: return 1;
    case ExprKind::kConditional: return 2;
    case ExprKind::kBinary:
      switch (e.binary_op) {
        case BinaryOp::kOr: return 3;
        case BinaryOp::kAnd: return 4;
        case BinaryOp::kEq:
        case BinaryOp::kNe: return 5;
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe: return 6;
        case BinaryOp::kAdd:
        case BinaryOp::kSub: return 7;
        case BinaryOp::kMul:
        case BinaryOp::kDiv:
        case BinaryOp::kMod: return 8;
      }
      return 8;
    case ExprKind::kUnary:
    case ExprKind::kCast: return 9;
    default: return 10;  // Primary / postfix.
  }
}

std::string EscapeString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      default: out.push_back(c);
    }
  }
  out.push_back('"');
  return out;
}

std::string FormatDouble(double value) {
  std::ostringstream os;
  os << value;
  std::string s = os.str();
  // Guarantee the literal reads as a double.
  if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
      s.find("inf") == std::string::npos && s.find("nan") == std::string::npos) {
    s += ".0";
  }
  return s;
}

void PrintExpr(const Expr& e, int parent_prec, std::string* out);

/// Prints a child expression, parenthesizing when it binds looser than the
/// context requires.
void PrintChild(const Expr& child, int min_prec, std::string* out) {
  if (Precedence(child) < min_prec) {
    out->push_back('(');
    PrintExpr(child, 0, out);
    out->push_back(')');
  } else {
    PrintExpr(child, min_prec, out);
  }
}

void PrintExpr(const Expr& e, int /*parent_prec*/, std::string* out) {
  switch (e.kind) {
    case ExprKind::kIntLit:
      out->append(std::to_string(e.int_value));
      return;
    case ExprKind::kLongLit:
      out->append(std::to_string(e.int_value));
      out->push_back('L');
      return;
    case ExprKind::kDoubleLit:
      out->append(FormatDouble(e.double_value));
      return;
    case ExprKind::kBoolLit:
      out->append(e.bool_value ? "true" : "false");
      return;
    case ExprKind::kCharLit: {
      out->push_back('\'');
      char c = static_cast<char>(e.int_value);
      switch (c) {
        case '\n': out->append("\\n"); break;
        case '\t': out->append("\\t"); break;
        case '\\': out->append("\\\\"); break;
        case '\'': out->append("\\'"); break;
        default: out->push_back(c);
      }
      out->push_back('\'');
      return;
    }
    case ExprKind::kStringLit:
      out->append(EscapeString(e.string_value));
      return;
    case ExprKind::kNullLit:
      out->append("null");
      return;
    case ExprKind::kName:
      out->append(e.name);
      return;
    case ExprKind::kArrayAccess:
      PrintChild(*e.lhs, 10, out);
      out->push_back('[');
      PrintExpr(*e.rhs, 0, out);
      out->push_back(']');
      return;
    case ExprKind::kFieldAccess:
      PrintChild(*e.lhs, 10, out);
      out->push_back('.');
      out->append(e.name);
      return;
    case ExprKind::kMethodCall: {
      if (e.lhs) {
        PrintChild(*e.lhs, 10, out);
        out->push_back('.');
      }
      out->append(e.name);
      out->push_back('(');
      for (size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) out->append(", ");
        PrintExpr(*e.args[i], 0, out);
      }
      out->push_back(')');
      return;
    }
    case ExprKind::kBinary: {
      int prec = Precedence(e);
      PrintChild(*e.lhs, prec, out);
      out->push_back(' ');
      out->append(BinaryOpSpelling(e.binary_op));
      out->push_back(' ');
      // Right child of a left-associative operator needs strictly higher
      // precedence to avoid reassociation on re-parse.
      PrintChild(*e.rhs, prec + 1, out);
      return;
    }
    case ExprKind::kUnary: {
      switch (e.unary_op) {
        case UnaryOp::kNeg:
          out->push_back('-');
          PrintChild(*e.lhs, 9, out);
          return;
        case UnaryOp::kNot:
          out->push_back('!');
          PrintChild(*e.lhs, 9, out);
          return;
        case UnaryOp::kPreInc:
          out->append("++");
          PrintChild(*e.lhs, 10, out);
          return;
        case UnaryOp::kPreDec:
          out->append("--");
          PrintChild(*e.lhs, 10, out);
          return;
        case UnaryOp::kPostInc:
          PrintChild(*e.lhs, 10, out);
          out->append("++");
          return;
        case UnaryOp::kPostDec:
          PrintChild(*e.lhs, 10, out);
          out->append("--");
          return;
      }
      return;
    }
    case ExprKind::kAssign:
      PrintChild(*e.lhs, 10, out);
      out->push_back(' ');
      out->append(AssignOpSpelling(e.assign_op));
      out->push_back(' ');
      PrintChild(*e.rhs, 1, out);
      return;
    case ExprKind::kConditional:
      PrintChild(*e.lhs, 3, out);
      out->append(" ? ");
      PrintExpr(*e.rhs, 0, out);
      out->append(" : ");
      PrintChild(*e.third, 2, out);
      return;
    case ExprKind::kCast:
      out->push_back('(');
      out->append(e.type.ToString());
      out->append(") ");
      PrintChild(*e.lhs, 9, out);
      return;
    case ExprKind::kNewArray: {
      out->append("new ");
      out->append(e.type.ToString());
      out->push_back('[');
      if (e.lhs) PrintExpr(*e.lhs, 0, out);
      out->push_back(']');
      if (!e.args.empty()) {
        out->append(" {");
        for (size_t i = 0; i < e.args.size(); ++i) {
          if (i > 0) out->append(", ");
          PrintExpr(*e.args[i], 0, out);
        }
        out->push_back('}');
      }
      return;
    }
    case ExprKind::kNewObject: {
      out->append("new ");
      out->append(e.name);
      out->push_back('(');
      for (size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) out->append(", ");
        PrintExpr(*e.args[i], 0, out);
      }
      out->push_back(')');
      return;
    }
  }
}

void Indent(int level, std::string* out) {
  for (int i = 0; i < level; ++i) out->append("    ");
}

void PrintStmt(const Stmt& s, int indent, std::string* out);

/// Prints a statement as the body of a control structure: blocks inline
/// after the header; other statements on the next line, indented.
void PrintBody(const Stmt& body, int indent, std::string* out) {
  if (body.kind == StmtKind::kBlock) {
    out->append(" ");
    PrintStmt(body, indent, out);
  } else {
    out->append("\n");
    PrintStmt(body, indent + 1, out);
  }
}

void PrintStmt(const Stmt& s, int indent, std::string* out) {
  switch (s.kind) {
    case StmtKind::kBlock: {
      // A block's opening brace is assumed to be placed by the caller when
      // used as a control-structure body; standalone blocks start indented.
      if (out->empty() || out->back() == '\n') Indent(indent, out);
      out->append("{\n");
      for (const auto& child : s.body) {
        PrintStmt(*child, indent + 1, out);
      }
      Indent(indent, out);
      out->append("}\n");
      return;
    }
    case StmtKind::kLocalVarDecl: {
      Indent(indent, out);
      out->append(s.decl_type.ToString());
      out->push_back(' ');
      for (size_t i = 0; i < s.decls.size(); ++i) {
        if (i > 0) out->append(", ");
        out->append(s.decls[i].name);
        if (s.decls[i].init) {
          out->append(" = ");
          PrintExpr(*s.decls[i].init, 0, out);
        }
      }
      out->append(";\n");
      return;
    }
    case StmtKind::kExprStmt:
      Indent(indent, out);
      PrintExpr(*s.expr, 0, out);
      out->append(";\n");
      return;
    case StmtKind::kIf: {
      Indent(indent, out);
      out->append("if (");
      PrintExpr(*s.expr, 0, out);
      out->append(")");
      PrintBody(*s.then_branch, indent, out);
      if (s.else_branch) {
        // Re-open the line when the then-branch ended with a block.
        if (!out->empty() && out->back() == '\n') {
          out->pop_back();
          if (s.then_branch->kind == StmtKind::kBlock) {
            out->append(" else");
          } else {
            out->append("\n");
            Indent(indent, out);
            out->append("else");
          }
        }
        PrintBody(*s.else_branch, indent, out);
      }
      return;
    }
    case StmtKind::kWhile:
      Indent(indent, out);
      out->append("while (");
      PrintExpr(*s.expr, 0, out);
      out->append(")");
      PrintBody(*s.loop_body, indent, out);
      return;
    case StmtKind::kDoWhile: {
      Indent(indent, out);
      out->append("do");
      PrintBody(*s.loop_body, indent, out);
      if (!out->empty() && out->back() == '\n') out->pop_back();
      out->append(" while (");
      PrintExpr(*s.expr, 0, out);
      out->append(");\n");
      return;
    }
    case StmtKind::kFor: {
      Indent(indent, out);
      out->append("for (");
      if (s.for_init) {
        std::string init;
        PrintStmt(*s.for_init, 0, &init);
        // Strip the trailing ";\n" -> ";" and inline.
        while (!init.empty() && (init.back() == '\n' || init.back() == ' ')) {
          init.pop_back();
        }
        out->append(init);
      } else {
        out->push_back(';');
      }
      out->push_back(' ');
      if (s.expr) PrintExpr(*s.expr, 0, out);
      out->append("; ");
      for (size_t i = 0; i < s.for_update.size(); ++i) {
        if (i > 0) out->append(", ");
        PrintExpr(*s.for_update[i], 0, out);
      }
      out->append(")");
      PrintBody(*s.loop_body, indent, out);
      return;
    }
    case StmtKind::kSwitch: {
      Indent(indent, out);
      out->append("switch (");
      PrintExpr(*s.expr, 0, out);
      out->append(") {\n");
      for (const auto& arm : s.switch_cases) {
        Indent(indent + 1, out);
        if (arm.label) {
          out->append("case ");
          PrintExpr(*arm.label, 0, out);
          out->append(":\n");
        } else {
          out->append("default:\n");
        }
        for (const auto& stmt : arm.body) {
          PrintStmt(*stmt, indent + 2, out);
        }
      }
      Indent(indent, out);
      out->append("}\n");
      return;
    }
    case StmtKind::kReturn:
      Indent(indent, out);
      out->append("return");
      if (s.expr) {
        out->push_back(' ');
        PrintExpr(*s.expr, 0, out);
      }
      out->append(";\n");
      return;
    case StmtKind::kBreak:
      Indent(indent, out);
      out->append("break;\n");
      return;
    case StmtKind::kContinue:
      Indent(indent, out);
      out->append("continue;\n");
      return;
  }
}

}  // namespace

std::string ExprToString(const Expr& expr) {
  std::string out;
  PrintExpr(expr, 0, &out);
  return out;
}

void AppendExprToString(const Expr& expr, std::string* out) {
  PrintExpr(expr, 0, out);
}

std::string StmtToString(const Stmt& stmt, int indent) {
  std::string out;
  PrintStmt(stmt, indent, &out);
  return out;
}

std::string MethodToString(const Method& method) {
  std::string out = method.Signature();
  out.append(" ");
  if (method.body) {
    PrintStmt(*method.body, 0, &out);
  } else {
    out.append("{}\n");
  }
  return out;
}

std::string UnitToString(const CompilationUnit& unit) {
  std::string out;
  bool wrapped = !unit.class_name.empty();
  if (wrapped) {
    out.append("class ");
    out.append(unit.class_name);
    out.append(" {\n\n");
  }
  for (size_t i = 0; i < unit.methods.size(); ++i) {
    if (i > 0) out.append("\n");
    std::string method = MethodToString(unit.methods[i]);
    if (wrapped) {
      // Indent the method by one level inside the class body.
      std::string indented;
      size_t start = 0;
      while (start < method.size()) {
        size_t end = method.find('\n', start);
        if (end == std::string::npos) end = method.size();
        if (end > start) {
          indented.append("    ");
          indented.append(method, start, end - start);
        }
        indented.push_back('\n');
        start = end + 1;
      }
      out.append(indented);
    } else {
      out.append(method);
    }
  }
  if (wrapped) out.append("}\n");
  return out;
}

}  // namespace jfeed::java
