#ifndef JFEED_JAVALANG_PRINTER_H_
#define JFEED_JAVALANG_PRINTER_H_

#include <string>

#include "javalang/ast.h"

namespace jfeed::java {

/// Renders an expression to its normalized Java spelling: binary and
/// assignment operators are surrounded by single spaces, array accesses and
/// calls are compact (`a[i]`, `f(x, y)`), parentheses are re-inserted only
/// where precedence requires them. This spelling is the canonical content
/// string of EPDG nodes and the text that pattern expressions match against.
std::string ExprToString(const Expr& expr);

/// Same spelling, appended to *out. The EPDG builder renders every node
/// content through one reused buffer, so steady-state rendering allocates
/// nothing once the buffer has grown to the longest expression.
void AppendExprToString(const Expr& expr, std::string* out);

/// Renders a statement (possibly multi-line, `indent` leading levels).
std::string StmtToString(const Stmt& stmt, int indent = 0);

/// Renders a full method as Java source.
std::string MethodToString(const Method& method);

/// Renders a compilation unit as Java source (including the class wrapper
/// when `unit.class_name` is non-empty).
std::string UnitToString(const CompilationUnit& unit);

}  // namespace jfeed::java

#endif  // JFEED_JAVALANG_PRINTER_H_
