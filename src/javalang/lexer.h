#ifndef JFEED_JAVALANG_LEXER_H_
#define JFEED_JAVALANG_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "javalang/token.h"
#include "support/result.h"

namespace jfeed::java {

/// Tokenizes `source` (a Java subset: identifiers, keywords, int/long/double/
/// String/char literals, arithmetic/relational/logical operators, compound
/// assignments, ++/--, punctuation). Line (// ...) and block (/* ... */)
/// comments are skipped. The returned vector always ends with a kEof token.
Result<std::vector<Token>> Lex(std::string_view source);

}  // namespace jfeed::java

#endif  // JFEED_JAVALANG_LEXER_H_
