#ifndef JFEED_JAVALANG_PARSER_H_
#define JFEED_JAVALANG_PARSER_H_

#include <string_view>

#include "javalang/ast.h"
#include "support/result.h"

namespace jfeed::java {

/// Parses a full submission: either a bare sequence of method declarations or
/// a single `class Name { ...methods... }` wrapper (modifiers `public`,
/// `private`, `static`, `final` are accepted and ignored).
Result<CompilationUnit> Parse(std::string_view source);

/// Parses a single expression (used by tests and by pattern tooling).
Result<ExprPtr> ParseExpression(std::string_view source);

/// Parses a single statement.
Result<StmtPtr> ParseStatement(std::string_view source);

}  // namespace jfeed::java

#endif  // JFEED_JAVALANG_PARSER_H_
