#ifndef JFEED_JAVALANG_ANALYSIS_H_
#define JFEED_JAVALANG_ANALYSIS_H_

#include <set>
#include <string>

#include "javalang/ast.h"

namespace jfeed::java {

/// True for identifiers that name well-known classes rather than variables
/// (System, Math, Integer, ...). Such names are excluded from variable sets.
bool IsWellKnownClassName(const std::string& name);

/// Variables whose value the expression reads. The target of a plain `=` is
/// not read; targets of compound assignments and ++/-- are. An array-element
/// store `a[i] = v` reads `i` and `v` but also `a` (the array object).
std::set<std::string> VarsRead(const Expr& expr);

/// Variables the expression (re)assigns: assignment targets and ++/--
/// operands. For an array-element store the array variable is reported.
std::set<std::string> VarsWritten(const Expr& expr);

/// All variables mentioned (reads plus writes); this is the paper's
/// `Variables(c)` for a graph-node content.
std::set<std::string> VarsMentioned(const Expr& expr);

}  // namespace jfeed::java

#endif  // JFEED_JAVALANG_ANALYSIS_H_
