#ifndef JFEED_JAVALANG_ANALYSIS_H_
#define JFEED_JAVALANG_ANALYSIS_H_

#include <set>
#include <string>

#include "javalang/ast.h"

namespace jfeed::java {

/// True for identifiers that name well-known classes rather than variables
/// (System, Math, Integer, ...). Such names are excluded from variable sets.
bool IsWellKnownClassName(const std::string& name);

/// Receives variable occurrences as VisitVars walks an expression. A name
/// may be reported more than once (and on both channels); implementations
/// that need set semantics deduplicate themselves.
class VarSink {
 public:
  virtual ~VarSink() = default;
  virtual void OnRead(const std::string& name) = 0;
  virtual void OnWrite(const std::string& name) = 0;
};

/// Streams every variable the expression reads or writes to `sink`, in AST
/// walk order. This is the single definition of read/write semantics; the
/// set-returning helpers below are thin wrappers over it. The target of a
/// plain `=` is not read; targets of compound assignments and ++/-- are.
/// An array-element store `a[i] = v` reads `i` and `v` but also `a` (the
/// array object), and reports a write of `a`.
void VisitVars(const Expr& expr, VarSink* sink);

/// Variables whose value the expression reads.
std::set<std::string> VarsRead(const Expr& expr);

/// Variables the expression (re)assigns: assignment targets and ++/--
/// operands. For an array-element store the array variable is reported.
std::set<std::string> VarsWritten(const Expr& expr);

/// All variables mentioned (reads plus writes); this is the paper's
/// `Variables(c)` for a graph-node content.
std::set<std::string> VarsMentioned(const Expr& expr);

}  // namespace jfeed::java

#endif  // JFEED_JAVALANG_ANALYSIS_H_
