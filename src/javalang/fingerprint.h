#ifndef JFEED_JAVALANG_FINGERPRINT_H_
#define JFEED_JAVALANG_FINGERPRINT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "javalang/token.h"

namespace jfeed::java {

/// 64-bit content hash of the token slice [begin, end): each token's kind
/// and spelling is folded into an FNV-1a/splitmix chain. Positions
/// (line/column) are deliberately excluded, so two slices that differ only
/// in comments, whitespace, or line layout hash identically — the edit
/// granularity resubmission caching keys on. The same chain hashes whole
/// submissions (sched::TokenFingerprint) and single methods
/// (Method::fingerprint), so the two namespaces are kept collision-coherent
/// by construction.
uint64_t FingerprintTokenRange(const std::vector<Token>& tokens, size_t begin,
                               size_t end);

/// Fingerprint of a full lexed stream, trailing kEof included — the whole-
/// submission form used by the content-addressed result cache.
uint64_t FingerprintTokenStream(const std::vector<Token>& tokens);

/// Fallback hash for sources the lexer rejects: raw bytes under a distinct
/// domain tag, so unlexable garbage still dedups byte-identical copies and
/// can never collide with a token-stream hash.
uint64_t FingerprintRawBytes(std::string_view bytes);

/// Canonical source text of the token slice [begin, end): the tokens'
/// spellings joined by single spaces. Re-lexing the result yields a
/// kind/text-identical stream (punctuation tokens carry their spelling),
/// which is what lets a method cache rebuild a method's AST from its
/// normalized text alone, away from the submission it came from.
std::string NormalizeTokenRange(const std::vector<Token>& tokens, size_t begin,
                                size_t end);

}  // namespace jfeed::java

#endif  // JFEED_JAVALANG_FINGERPRINT_H_
