#include "javalang/fingerprint.h"

namespace jfeed::java {

namespace {

/// splitmix64 finalizer — the same mixer the fault injector uses; good
/// avalanche for cheap.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t FoldBytes(uint64_t h, std::string_view bytes) {
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;  // FNV-1a prime.
  }
  return h;
}

}  // namespace

uint64_t FingerprintTokenRange(const std::vector<Token>& tokens, size_t begin,
                               size_t end) {
  uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a offset basis.
  if (end > tokens.size()) end = tokens.size();
  for (size_t i = begin; i < end; ++i) {
    const Token& token = tokens[i];
    h = Mix(h ^ static_cast<uint64_t>(token.kind));
    h = FoldBytes(h, token.text);
    h *= 0x100000001b3ull;  // Separator: "ab"+"c" != "a"+"bc".
  }
  return Mix(h);
}

uint64_t FingerprintTokenStream(const std::vector<Token>& tokens) {
  return FingerprintTokenRange(tokens, 0, tokens.size());
}

uint64_t FingerprintRawBytes(std::string_view bytes) {
  return Mix(FoldBytes(0x6a66656564726177ull /* "jfeedraw" */, bytes));
}

namespace {

/// Appends one token's canonical source spelling. Token::text is already
/// the source spelling for every kind except kCharLiteral, whose text is
/// the bare decoded character — re-quote (and re-escape) it so the result
/// lexes back to the same token.
void AppendSpelling(const Token& token, std::string* out) {
  if (token.kind != TokenKind::kCharLiteral) {
    out->append(token.text);
    return;
  }
  char c = token.text.empty() ? '\0' : token.text[0];
  out->push_back('\'');
  switch (c) {
    case '\n': out->append("\\n"); break;
    case '\t': out->append("\\t"); break;
    case '\\': out->append("\\\\"); break;
    case '\'': out->append("\\'"); break;
    case '\0': out->append("\\0"); break;
    default: out->push_back(c); break;
  }
  out->push_back('\'');
}

}  // namespace

std::string NormalizeTokenRange(const std::vector<Token>& tokens, size_t begin,
                                size_t end) {
  if (end > tokens.size()) end = tokens.size();
  if (begin >= end) return std::string();
  size_t bytes = 0;
  for (size_t i = begin; i < end; ++i) bytes += tokens[i].text.size() + 4;
  std::string out;
  out.reserve(bytes);
  for (size_t i = begin; i < end; ++i) {
    if (i > begin) out.push_back(' ');
    AppendSpelling(tokens[i], &out);
  }
  return out;
}

}  // namespace jfeed::java
