#include "javalang/ast.h"

#include <new>

namespace jfeed::java {

namespace {
thread_local Arena* g_ast_arena = nullptr;
}  // namespace

AstArenaScope::AstArenaScope(Arena* arena) : prev_(g_ast_arena) {
  g_ast_arena = arena;
}

AstArenaScope::~AstArenaScope() { g_ast_arena = prev_; }

Arena* AstArenaScope::current() { return g_ast_arena; }

namespace internal {

namespace {
// A max_align_t-sized header keeps the node itself correctly aligned while
// leaving one byte to record the storage origin. operator delete may run
// on a different thread, or after the scope that allocated the node has
// closed, so the tag — not the current scope — decides whether to free.
constexpr std::size_t kHeaderSize = alignof(std::max_align_t);
constexpr unsigned char kHeapTag = 0x5a;
constexpr unsigned char kArenaTag = 0xa5;
}  // namespace

void* AllocateAstNode(std::size_t size) {
  Arena* arena = AstArenaScope::current();
  unsigned char* base;
  if (arena != nullptr) {
    base = static_cast<unsigned char*>(
        arena->Allocate(kHeaderSize + size, alignof(std::max_align_t)));
  } else {
    base = static_cast<unsigned char*>(::operator new(kHeaderSize + size));
  }
  base[0] = arena != nullptr ? kArenaTag : kHeapTag;
  return base + kHeaderSize;
}

void DeallocateAstNode(void* ptr) noexcept {
  if (ptr == nullptr) return;
  unsigned char* base = static_cast<unsigned char*>(ptr) - kHeaderSize;
  if (base[0] == kHeapTag) ::operator delete(base);
  // Arena-tagged storage is reclaimed wholesale by Arena::Reset().
}

}  // namespace internal

std::string Type::ToString() const {
  std::string base;
  switch (kind) {
    case TypeKind::kInt: base = "int"; break;
    case TypeKind::kLong: base = "long"; break;
    case TypeKind::kDouble: base = "double"; break;
    case TypeKind::kBoolean: base = "boolean"; break;
    case TypeKind::kChar: base = "char"; break;
    case TypeKind::kString: base = "String"; break;
    case TypeKind::kVoid: base = "void"; break;
    case TypeKind::kClass: base = class_name; break;
  }
  for (int i = 0; i < array_dims; ++i) base += "[]";
  return base;
}

const char* BinaryOpSpelling(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kEq: return "==";
    case BinaryOp::kNe: return "!=";
    case BinaryOp::kAnd: return "&&";
    case BinaryOp::kOr: return "||";
  }
  return "?";
}

const char* AssignOpSpelling(AssignOp op) {
  switch (op) {
    case AssignOp::kAssign: return "=";
    case AssignOp::kAddAssign: return "+=";
    case AssignOp::kSubAssign: return "-=";
    case AssignOp::kMulAssign: return "*=";
    case AssignOp::kDivAssign: return "/=";
    case AssignOp::kModAssign: return "%=";
  }
  return "?";
}

ExprPtr Expr::Clone() const {
  auto out = std::make_unique<Expr>();
  out->kind = kind;
  out->int_value = int_value;
  out->double_value = double_value;
  out->bool_value = bool_value;
  out->string_value = string_value;
  out->name = name;
  out->binary_op = binary_op;
  out->unary_op = unary_op;
  out->assign_op = assign_op;
  out->type = type;
  out->line = line;
  if (lhs) out->lhs = lhs->Clone();
  if (rhs) out->rhs = rhs->Clone();
  if (third) out->third = third->Clone();
  out->args.reserve(args.size());
  for (const auto& a : args) out->args.push_back(a->Clone());
  return out;
}

StmtPtr Stmt::Clone() const {
  auto out = std::make_unique<Stmt>();
  out->kind = kind;
  out->decl_type = decl_type;
  out->line = line;
  out->body.reserve(body.size());
  for (const auto& s : body) out->body.push_back(s->Clone());
  out->decls.reserve(decls.size());
  for (const auto& d : decls) {
    VarDeclarator vd;
    vd.name = d.name;
    if (d.init) vd.init = d.init->Clone();
    out->decls.push_back(std::move(vd));
  }
  if (expr) out->expr = expr->Clone();
  if (then_branch) out->then_branch = then_branch->Clone();
  if (else_branch) out->else_branch = else_branch->Clone();
  if (loop_body) out->loop_body = loop_body->Clone();
  if (for_init) out->for_init = for_init->Clone();
  out->for_update.reserve(for_update.size());
  for (const auto& u : for_update) out->for_update.push_back(u->Clone());
  out->switch_cases.reserve(switch_cases.size());
  for (const auto& sc : switch_cases) {
    SwitchCase copy;
    if (sc.label) copy.label = sc.label->Clone();
    copy.body.reserve(sc.body.size());
    for (const auto& s : sc.body) copy.body.push_back(s->Clone());
    out->switch_cases.push_back(std::move(copy));
  }
  return out;
}

Method Method::Clone() const {
  Method out;
  out.return_type = return_type;
  out.name = name;
  out.params = params;
  out.line = line;
  out.fingerprint = fingerprint;
  out.norm_source = norm_source;
  if (body) out.body = body->Clone();
  return out;
}

std::string Method::Signature() const {
  std::string out = return_type.ToString() + " " + name + "(";
  for (size_t i = 0; i < params.size(); ++i) {
    if (i > 0) out += ", ";
    out += params[i].type.ToString() + " " + params[i].name;
  }
  out += ")";
  return out;
}

CompilationUnit CompilationUnit::Clone() const {
  CompilationUnit out;
  out.class_name = class_name;
  out.methods.reserve(methods.size());
  for (const auto& m : methods) out.methods.push_back(m.Clone());
  return out;
}

const Method* CompilationUnit::FindMethod(const std::string& name) const {
  for (const auto& m : methods) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

ExprPtr MakeIntLit(int64_t value) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kIntLit;
  e->int_value = value;
  return e;
}

ExprPtr MakeDoubleLit(double value) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kDoubleLit;
  e->double_value = value;
  return e;
}

ExprPtr MakeBoolLit(bool value) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBoolLit;
  e->bool_value = value;
  return e;
}

ExprPtr MakeStringLit(std::string value) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kStringLit;
  e->string_value = std::move(value);
  return e;
}

ExprPtr MakeName(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kName;
  e->name = std::move(name);
  return e;
}

ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->binary_op = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

ExprPtr MakeUnary(UnaryOp op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->unary_op = op;
  e->lhs = std::move(operand);
  return e;
}

ExprPtr MakeAssign(AssignOp op, ExprPtr target, ExprPtr value) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kAssign;
  e->assign_op = op;
  e->lhs = std::move(target);
  e->rhs = std::move(value);
  return e;
}

ExprPtr MakeArrayAccess(ExprPtr array, ExprPtr index) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kArrayAccess;
  e->lhs = std::move(array);
  e->rhs = std::move(index);
  return e;
}

ExprPtr MakeFieldAccess(ExprPtr object, std::string field) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kFieldAccess;
  e->lhs = std::move(object);
  e->name = std::move(field);
  return e;
}

ExprPtr MakeCall(ExprPtr receiver, std::string method,
                 std::vector<ExprPtr> args) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kMethodCall;
  e->lhs = std::move(receiver);
  e->name = std::move(method);
  e->args = std::move(args);
  return e;
}

StmtPtr MakeExprStmt(ExprPtr expr) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::kExprStmt;
  s->expr = std::move(expr);
  return s;
}

StmtPtr MakeBlock(std::vector<StmtPtr> stmts) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::kBlock;
  s->body = std::move(stmts);
  return s;
}

}  // namespace jfeed::java
