#ifndef JFEED_JAVALANG_TOKEN_H_
#define JFEED_JAVALANG_TOKEN_H_

#include <cstdint>
#include <string>

namespace jfeed::java {

/// Token kinds of the Java subset understood by the front end. Punctuation
/// kinds carry their spelling in Token::text as well, so diagnostics and the
/// printer never need a reverse table.
enum class TokenKind {
  kEof = 0,
  kIdentifier,
  kIntLiteral,
  kLongLiteral,
  kDoubleLiteral,
  kStringLiteral,
  kCharLiteral,

  // Keywords.
  kKwInt,
  kKwLong,
  kKwDouble,
  kKwBoolean,
  kKwChar,
  kKwString,   // Treated as a keyword type for convenience.
  kKwVoid,
  kKwIf,
  kKwElse,
  kKwWhile,
  kKwFor,
  kKwDo,
  kKwReturn,
  kKwBreak,
  kKwContinue,
  kKwNew,
  kKwTrue,
  kKwFalse,
  kKwNull,
  kKwClass,
  kKwSwitch,
  kKwCase,
  kKwDefault,
  kKwPublic,
  kKwPrivate,
  kKwStatic,
  kKwFinal,

  // Punctuation / operators.
  kLParen,     // (
  kRParen,     // )
  kLBrace,     // {
  kRBrace,     // }
  kLBracket,   // [
  kRBracket,   // ]
  kSemi,       // ;
  kComma,      // ,
  kDot,        // .
  kAssign,     // =
  kPlusAssign, kMinusAssign, kStarAssign, kSlashAssign, kPercentAssign,
  kPlus, kMinus, kStar, kSlash, kPercent,
  kPlusPlus, kMinusMinus,
  kLt, kLe, kGt, kGe, kEq, kNe,
  kAndAnd, kOrOr, kNot,
  kQuestion, kColon,
};

/// Returns a short printable name for a token kind (for diagnostics).
const char* TokenKindName(TokenKind kind);

/// A lexed token. Literal values are stored pre-parsed so the parser does
/// not re-interpret text.
struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;       ///< Source spelling (identifier name, literal text).
  int line = 0;           ///< 1-based source line.
  int column = 0;         ///< 1-based source column.
  int64_t int_value = 0;  ///< Valid for kIntLiteral / kLongLiteral / kCharLiteral.
  double double_value = 0.0;  ///< Valid for kDoubleLiteral.
  std::string string_value;   ///< Valid for kStringLiteral (unescaped).
};

}  // namespace jfeed::java

#endif  // JFEED_JAVALANG_TOKEN_H_
