#ifndef JFEED_OBS_SLO_H_
#define JFEED_OBS_SLO_H_

// Per-assignment SLO / error-budget accounting for the grading fleet.
//
// Each assignment (tenant) gets two objectives over a rolling budget
// window: a latency objective (a grade is "good" when its end-to-end
// duration — the same admitted→published interval jfeed_grade_duration_us
// records — is at or under `latency_threshold_us`) and an availability
// objective (a shed submission is always a bad event). The error budget is
// the fraction of bad events the availability target permits:
// `1 - target`. Burn rate is the classic SRE multi-window form
//
//   burn = (bad / total) / (1 - target)
//
// evaluated over a short (fast) and a medium (slow) window: burn 1.0 means
// the tenant spends its budget exactly as fast as the window allows, 14x
// means a fast-burn page. jfeedd surfaces the numbers on /sloz, exports
// them as jfeed_slo_* metrics (DESIGN.md §6), and degrades /healthz while
// any tenant fast-burns — the load balancer steers away *before* the
// admission quota starts shedding. The broker aggregates worker /sloz
// bodies with AggregateSloz().
//
// Events land on per-second slots in a fixed ring (window_s slots), so
// recording is O(1) and a snapshot is one pass over the ring — no
// per-event allocation on the grading hot path. The tracker is
// runtime-gated (Configure() arms it; default off) and, being plain
// accounting with no recording side channel, compiles identically in both
// JFEED_OBS modes — under JFEED_OBS_DISABLED the jfeed_slo_* metric writes
// hit the metrics stubs and vanish.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace jfeed::obs {

/// Tunables for every assignment served by one daemon. Defaults are
/// deliberately generous (30 s latency, 99.9% availability, 50-event
/// minimum) so an unconfigured daemon never degrades health on SLO burn;
/// deployments tighten them via the jfeedd --slo-* flags.
struct SloPolicy {
  int64_t latency_threshold_us = 30'000'000;  ///< "good" iff <= this.
  int64_t availability_target_ppm = 999'000;  ///< 999000 = 99.9%.
  int64_t window_s = 3600;       ///< Error-budget (and ring) window.
  int64_t fast_window_s = 60;    ///< Fast burn-rate window.
  int64_t slow_window_s = 600;   ///< Slow burn-rate window.
  int64_t fast_burn_threshold_milli = 14'000;  ///< 14x in milli-units.
  int64_t slow_burn_threshold_milli = 6'000;   ///< 6x in milli-units.
  /// Events required inside a burn window before its alert can fire —
  /// keeps one unlucky grade on an idle tenant from paging.
  int64_t min_events = 50;
};

/// One assignment's SLO state as reported by Snapshot() and /sloz.
struct AssignmentSlo {
  std::string assignment;
  // Cumulative since Configure():
  int64_t events_total = 0;
  int64_t good_total = 0;
  int64_t bad_total = 0;   ///< Slow grades + sheds.
  int64_t shed_total = 0;  ///< Subset of bad_total.
  // Rolling budget window:
  int64_t window_events = 0;
  int64_t window_bad = 0;
  int64_t budget_consumed_ppm = 0;  ///< May exceed 1e6 when blown.
  int64_t budget_remaining_ppm = 1'000'000;  ///< Clamped at 0.
  // Burn windows:
  int64_t fast_events = 0;
  int64_t fast_bad = 0;
  int64_t slow_events = 0;
  int64_t slow_bad = 0;
  int64_t burn_rate_fast_milli = 0;
  int64_t burn_rate_slow_milli = 0;
  bool fast_burn = false;
  bool slow_burn = false;
};

class SloTracker {
 public:
  SloTracker() = default;

  /// The process-wide tracker the scheduler feeds and /sloz reads.
  static SloTracker& Global();

  /// Steady-clock seconds — the time base every Record/Snapshot expects.
  /// Taken as a parameter (rather than read internally) so tests can drive
  /// window roll-over without sleeping.
  static int64_t NowS();

  /// Arms the tracker with `policy`, dropping all prior state.
  void Configure(const SloPolicy& policy);
  /// Disarms and drops all state (test isolation / daemon shutdown).
  void Disable();
  bool enabled() const;
  SloPolicy policy() const;

  /// A grade completed for `assignment` after `latency_us` in the system.
  void RecordGrade(const std::string& assignment, int64_t latency_us,
                   int64_t now_s);
  /// An admission-quota shed for `assignment`: an availability-bad event.
  void RecordShed(const std::string& assignment, int64_t now_s);

  /// Per-assignment state, assignments in lexicographic order.
  std::vector<AssignmentSlo> Snapshot(int64_t now_s) const;

  /// True while any assignment's fast window burns over threshold — the
  /// /healthz degradation signal.
  bool FastBurnAny(int64_t now_s) const;

  /// The /sloz response body: policy plus per-assignment budget state,
  /// each assignment carrying the jfeed_grade_duration_us exemplars that
  /// link its latency buckets to concrete trace ids.
  std::string RenderSlozJson(int64_t now_s) const;

 private:
  /// One second of events; `sec` guards against ring-lap staleness.
  struct Slot {
    int64_t sec = -1;
    int64_t total = 0;
    int64_t bad = 0;
  };
  struct Tenant {
    int64_t good_total = 0;
    int64_t bad_total = 0;
    int64_t shed_total = 0;
    std::vector<Slot> slots;  ///< window_s slots, indexed by sec % window_s.
  };

  void RecordEvent(const std::string& assignment, bool bad, bool shed,
                   int64_t now_s);
  AssignmentSlo SummarizeLocked(const std::string& assignment,
                                const Tenant& tenant, int64_t now_s) const;
  void ExportMetricsLocked(const std::string& assignment,
                           const AssignmentSlo& slo) const;

  mutable std::mutex mu_;
  bool enabled_ = false;
  SloPolicy policy_;
  std::map<std::string, Tenant> tenants_;  ///< Ordered for stable output.
};

/// Broker-side aggregation: parses the /sloz bodies scraped from each
/// worker (`{worker id, body}` pairs), sums the per-assignment event and
/// window counts across workers, and re-derives budget and burn numbers
/// from the sums under the first body's policy. Returns a /sloz-shaped
/// JSON object with an extra "workers" count. Unparseable bodies are
/// skipped (a worker mid-restart must not break the fleet view).
std::string AggregateSloz(
    const std::vector<std::pair<int, std::string>>& worker_bodies);

}  // namespace jfeed::obs

#endif  // JFEED_OBS_SLO_H_
