#ifndef JFEED_OBS_HTTP_SERVER_H_
#define JFEED_OBS_HTTP_SERVER_H_

// Minimal dependency-free HTTP/1.1 server over POSIX sockets — the
// transport for the live-introspection endpoints (/metrics, /healthz,
// /statusz, /tracez, /events) and the jfeedd grading daemon's POST /grade.
//
// Deliberately small: loopback-oriented, one request per connection
// (Connection: close), no TLS, no chunked encoding, no keep-alive. That is
// the whole feature set a Prometheus scraper, a curl-wielding operator, or
// the daemon smoke test needs, and it keeps the attack surface of a grader
// that executes untrusted student code as thin as the feature allows.
//
// Threading: Start() spawns one accept thread plus a small fixed pool of
// connection workers pulling accepted sockets from a bounded queue, so a
// slow client can stall at most one worker, never the accept loop. All
// handler callbacks run on worker threads and must therefore be
// thread-safe; the introspection handlers are (Registry::Render and
// Tracer::Snapshot aggregate under their own locks).
//
// Compiling with JFEED_OBS=OFF (-DJFEED_OBS_DISABLED) replaces the server
// with a stub whose Start() fails with a clear error — the daemon refuses
// to run without its monitoring surface rather than serving blind.

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "support/status.h"

#ifndef JFEED_OBS_DISABLED
#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#endif

namespace jfeed::obs {

/// One parsed request as handed to a handler. Only the pieces the
/// introspection surface needs: method, path (query string split off),
/// headers (trace propagation reads `traceparent`), and the body (POST
/// /grade's NDJSON submissions).
struct HttpRequest {
  std::string method;  ///< "GET", "POST", ... (uppercase as sent).
  std::string path;    ///< Decoded-enough path, e.g. "/metrics".
  std::string query;   ///< Raw query string without the '?', may be empty.
  /// Request headers in arrival order, names lowercased (header names are
  /// case-insensitive on the wire), values whitespace-trimmed.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;    ///< Request body (Content-Length framed).
};

/// First value of header `name` (lowercase) in `request`, or "" if absent.
std::string RequestHeader(const HttpRequest& request, const std::string& name);

/// One response as produced by a handler. The server adds the status line,
/// Content-Length and Connection: close framing.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  /// Extra headers appended verbatim (name, value) — e.g. the Retry-After
  /// the broker attaches to fleet-wide 503 shedding.
  std::vector<std::pair<std::string, std::string>> headers;
};

/// Handler for one path. Runs on a connection-worker thread.
using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

/// Reason phrase for the handful of status codes the service emits.
const char* HttpStatusText(int status);

#ifdef JFEED_OBS_DISABLED

// ---------------------------------------------------------------------------
// Compile-time-disabled stub: registering handlers is a no-op and Start()
// fails loudly, so a JFEED_OBS=OFF build cannot silently serve nothing.
// ---------------------------------------------------------------------------

class HttpServer {
 public:
  struct Options {
    uint16_t port = 0;
    int workers = 4;
    size_t max_request_bytes = 8u << 20;
    size_t backlog = 64;
    int64_t io_deadline_ms = 10'000;
  };

  HttpServer() {}
  explicit HttpServer(Options) {}
  ~HttpServer() = default;
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  void Handle(const std::string&, HttpHandler) {}
  Status Start() {
    return Status::Internal(
        "introspection HTTP server compiled out (JFEED_OBS=OFF); rebuild "
        "with -DJFEED_OBS=ON to serve /metrics, /healthz, /statusz, "
        "/tracez, /events");
  }
  void Stop() {}
  uint16_t port() const { return 0; }
  bool serving() const { return false; }
};

#else  // JFEED_OBS_DISABLED

class HttpServer {
 public:
  struct Options {
    /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (read it
    /// back from port() after Start()).
    uint16_t port = 0;
    /// Connection-worker threads. Clamped to >= 1.
    int workers = 4;
    /// Hard cap on one request (request line + headers + body); larger
    /// requests are answered 413 and the connection closed. Generous enough
    /// for multi-submission NDJSON grade bodies, small enough that a
    /// malicious client cannot balloon the daemon.
    size_t max_request_bytes = 8u << 20;
    /// Accepted-socket queue bound; connections beyond it are answered 503
    /// by the accept thread instead of piling up unboundedly.
    size_t backlog = 64;
    /// Per-connection I/O deadline (slowloris guard): a client that has not
    /// delivered a complete request within this budget is answered 408 and
    /// disconnected, so a half-sent request can occupy a connection worker
    /// for at most this long. The same budget bounds response writes to a
    /// non-reading client. 0 disables the guard.
    int64_t io_deadline_ms = 10'000;
  };

  HttpServer();  ///< Equivalent to HttpServer(Options{}).
  explicit HttpServer(Options options);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers `handler` for exact-match `path`. Must be called before
  /// Start(); the route table is immutable while serving (that is what
  /// makes dispatch lock-free on workers).
  void Handle(const std::string& path, HttpHandler handler);

  /// Binds 127.0.0.1:port, spawns the accept thread and workers. Fails
  /// (kUnavailable) when the port is taken or sockets are unavailable.
  Status Start();

  /// Stops accepting, drains in-flight connections, joins all threads.
  /// Idempotent; also run by the destructor.
  void Stop();

  /// The bound port (the ephemeral pick when Options.port was 0); 0 before
  /// Start().
  uint16_t port() const { return port_; }

  bool serving() const { return serving_.load(std::memory_order_relaxed); }

 private:
  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(int fd);

  Options options_;
  std::vector<std::pair<std::string, HttpHandler>> routes_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> serving_{false};

  std::mutex mu_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;  ///< Accepted fds awaiting a worker.
  bool closing_ = false;

  std::thread accept_thread_;
  std::vector<std::thread> workers_;
};

#endif  // JFEED_OBS_DISABLED

}  // namespace jfeed::obs

#endif  // JFEED_OBS_HTTP_SERVER_H_
