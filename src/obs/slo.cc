#include "obs/slo.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "obs/metrics.h"

namespace jfeed::obs {
namespace {

void AppendJsonEscaped(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
}

/// Budget fraction in [1e-6, 1]: the share of events allowed to be bad.
double BudgetFraction(const SloPolicy& policy) {
  int64_t budget_ppm = 1'000'000 - policy.availability_target_ppm;
  if (budget_ppm < 1) budget_ppm = 1;  // A 100% target still needs a floor.
  return static_cast<double>(budget_ppm) / 1e6;
}

int64_t BurnMilli(int64_t bad, int64_t total, const SloPolicy& policy) {
  if (total <= 0) return 0;
  double bad_fraction =
      static_cast<double>(bad) / static_cast<double>(total);
  return std::llround(1000.0 * bad_fraction / BudgetFraction(policy));
}

/// Fills every derived field of `slo` from its raw counts. Shared by the
/// in-process snapshot and the broker-side aggregation so both report the
/// same arithmetic.
void DeriveBudget(const SloPolicy& policy, AssignmentSlo* slo) {
  slo->events_total = slo->good_total + slo->bad_total;
  double allowed = static_cast<double>(slo->window_events) *
                   BudgetFraction(policy);
  if (slo->window_bad <= 0 || allowed <= 0.0) {
    slo->budget_consumed_ppm = 0;
  } else {
    slo->budget_consumed_ppm = std::llround(
        1e6 * static_cast<double>(slo->window_bad) / allowed);
  }
  slo->budget_remaining_ppm =
      std::max<int64_t>(0, 1'000'000 - slo->budget_consumed_ppm);
  slo->burn_rate_fast_milli = BurnMilli(slo->fast_bad, slo->fast_events,
                                        policy);
  slo->burn_rate_slow_milli = BurnMilli(slo->slow_bad, slo->slow_events,
                                        policy);
  slo->fast_burn = slo->fast_events >= policy.min_events &&
                   slo->burn_rate_fast_milli >=
                       policy.fast_burn_threshold_milli;
  slo->slow_burn = slo->slow_events >= policy.min_events &&
                   slo->burn_rate_slow_milli >=
                       policy.slow_burn_threshold_milli;
}

void AppendPolicyJson(const SloPolicy& policy, std::string* out) {
  *out += "{\"latency_threshold_us\":";
  *out += std::to_string(policy.latency_threshold_us);
  *out += ",\"availability_target_ppm\":";
  *out += std::to_string(policy.availability_target_ppm);
  *out += ",\"window_s\":";
  *out += std::to_string(policy.window_s);
  *out += ",\"fast_window_s\":";
  *out += std::to_string(policy.fast_window_s);
  *out += ",\"slow_window_s\":";
  *out += std::to_string(policy.slow_window_s);
  *out += ",\"fast_burn_threshold_milli\":";
  *out += std::to_string(policy.fast_burn_threshold_milli);
  *out += ",\"slow_burn_threshold_milli\":";
  *out += std::to_string(policy.slow_burn_threshold_milli);
  *out += ",\"min_events\":";
  *out += std::to_string(policy.min_events);
  *out += "}";
}

void AppendAssignmentJson(const AssignmentSlo& slo, bool with_exemplars,
                          std::string* out) {
  *out += "{\"assignment\":\"";
  AppendJsonEscaped(slo.assignment, out);
  *out += "\",\"events_total\":";
  *out += std::to_string(slo.events_total);
  *out += ",\"good_total\":";
  *out += std::to_string(slo.good_total);
  *out += ",\"bad_total\":";
  *out += std::to_string(slo.bad_total);
  *out += ",\"shed_total\":";
  *out += std::to_string(slo.shed_total);
  *out += ",\"window_events\":";
  *out += std::to_string(slo.window_events);
  *out += ",\"window_bad\":";
  *out += std::to_string(slo.window_bad);
  *out += ",\"budget_consumed_ppm\":";
  *out += std::to_string(slo.budget_consumed_ppm);
  *out += ",\"budget_remaining_ppm\":";
  *out += std::to_string(slo.budget_remaining_ppm);
  *out += ",\"fast_events\":";
  *out += std::to_string(slo.fast_events);
  *out += ",\"fast_bad\":";
  *out += std::to_string(slo.fast_bad);
  *out += ",\"slow_events\":";
  *out += std::to_string(slo.slow_events);
  *out += ",\"slow_bad\":";
  *out += std::to_string(slo.slow_bad);
  *out += ",\"burn_rate_fast_milli\":";
  *out += std::to_string(slo.burn_rate_fast_milli);
  *out += ",\"burn_rate_slow_milli\":";
  *out += std::to_string(slo.burn_rate_slow_milli);
  *out += ",\"fast_burn\":";
  *out += slo.fast_burn ? "true" : "false";
  *out += ",\"slow_burn\":";
  *out += slo.slow_burn ? "true" : "false";
  if (with_exemplars) {
    *out += ",\"exemplars\":[";
    auto exemplars =
        Registry::Global()
            .GetHistogram("jfeed_grade_duration_us",
                          "end-to-end grade duration in microseconds",
                          {{"assignment", slo.assignment}})
            ->Exemplars();
    for (size_t i = 0; i < exemplars.size(); ++i) {
      if (i > 0) *out += ",";
      *out += "{\"le_us\":";
      *out += std::to_string(Histogram::BucketBound(exemplars[i].first));
      *out += ",\"latency_us\":";
      *out += std::to_string(exemplars[i].second.value);
      *out += ",\"trace_id\":\"";
      AppendJsonEscaped(exemplars[i].second.trace_id, out);
      *out += "\"}";
    }
    *out += "]";
  }
  *out += "}";
}

// --- Minimal field extraction for AggregateSloz -----------------------------
// Parses only the flat JSON this file itself renders; enough structure
// awareness (quoted-key search) to never confuse "events_total" with
// "window_events".

bool FindNumberField(const std::string& obj, const std::string& key,
                     int64_t* out) {
  std::string needle = "\"" + key + "\":";
  size_t pos = obj.find(needle);
  if (pos == std::string::npos) return false;
  pos += needle.size();
  bool negative = pos < obj.size() && obj[pos] == '-';
  if (negative) ++pos;
  if (pos >= obj.size() || obj[pos] < '0' || obj[pos] > '9') return false;
  int64_t value = 0;
  while (pos < obj.size() && obj[pos] >= '0' && obj[pos] <= '9') {
    value = value * 10 + (obj[pos] - '0');
    ++pos;
  }
  *out = negative ? -value : value;
  return true;
}

bool FindStringField(const std::string& obj, const std::string& key,
                     std::string* out) {
  std::string needle = "\"" + key + "\":\"";
  size_t pos = obj.find(needle);
  if (pos == std::string::npos) return false;
  pos += needle.size();
  size_t end = obj.find('"', pos);
  if (end == std::string::npos) return false;
  *out = obj.substr(pos, end - pos);
  return true;
}

/// Splits the "assignments":[...] array of a /sloz body into its top-level
/// objects, tolerating the nested exemplar objects inside each.
std::vector<std::string> SplitAssignmentObjects(const std::string& body) {
  std::vector<std::string> out;
  size_t array_pos = body.find("\"assignments\":[");
  if (array_pos == std::string::npos) return out;
  size_t i = array_pos + std::string("\"assignments\":[").size();
  int depth = 0;
  size_t start = 0;
  bool in_string = false;
  for (; i < body.size(); ++i) {
    char c = body[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      if (depth == 0) start = i;
      ++depth;
    } else if (c == '}') {
      --depth;
      if (depth == 0) out.push_back(body.substr(start, i - start + 1));
    } else if (c == ']' && depth == 0) {
      break;
    }
  }
  return out;
}

SloPolicy ParsePolicy(const std::string& body) {
  SloPolicy policy;
  FindNumberField(body, "latency_threshold_us", &policy.latency_threshold_us);
  FindNumberField(body, "availability_target_ppm",
                  &policy.availability_target_ppm);
  FindNumberField(body, "window_s", &policy.window_s);
  FindNumberField(body, "fast_window_s", &policy.fast_window_s);
  FindNumberField(body, "slow_window_s", &policy.slow_window_s);
  FindNumberField(body, "fast_burn_threshold_milli",
                  &policy.fast_burn_threshold_milli);
  FindNumberField(body, "slow_burn_threshold_milli",
                  &policy.slow_burn_threshold_milli);
  FindNumberField(body, "min_events", &policy.min_events);
  return policy;
}

}  // namespace

// --- SloTracker -------------------------------------------------------------

SloTracker& SloTracker::Global() {
  static SloTracker* tracker = new SloTracker();
  return *tracker;
}

int64_t SloTracker::NowS() {
  return std::chrono::duration_cast<std::chrono::seconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SloTracker::Configure(const SloPolicy& policy) {
  std::lock_guard<std::mutex> lock(mu_);
  policy_ = policy;
  if (policy_.window_s < 1) policy_.window_s = 1;
  if (policy_.fast_window_s < 1) policy_.fast_window_s = 1;
  if (policy_.slow_window_s < 1) policy_.slow_window_s = 1;
  policy_.fast_window_s = std::min(policy_.fast_window_s, policy_.window_s);
  policy_.slow_window_s = std::min(policy_.slow_window_s, policy_.window_s);
  tenants_.clear();
  enabled_ = true;
}

void SloTracker::Disable() {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_ = false;
  tenants_.clear();
}

bool SloTracker::enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return enabled_;
}

SloPolicy SloTracker::policy() const {
  std::lock_guard<std::mutex> lock(mu_);
  return policy_;
}

void SloTracker::RecordGrade(const std::string& assignment,
                             int64_t latency_us, int64_t now_s) {
  RecordEvent(assignment, latency_us > policy().latency_threshold_us,
              /*shed=*/false, now_s);
}

void SloTracker::RecordShed(const std::string& assignment, int64_t now_s) {
  RecordEvent(assignment, /*bad=*/true, /*shed=*/true, now_s);
}

void SloTracker::RecordEvent(const std::string& assignment, bool bad,
                             bool shed, int64_t now_s) {
  AssignmentSlo slo;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!enabled_) return;
    Tenant& tenant = tenants_[assignment];
    if (tenant.slots.empty()) {
      tenant.slots.resize(static_cast<size_t>(policy_.window_s));
    }
    Slot& slot =
        tenant.slots[static_cast<size_t>(now_s % policy_.window_s)];
    if (slot.sec != now_s) {
      slot.sec = now_s;
      slot.total = 0;
      slot.bad = 0;
    }
    ++slot.total;
    if (bad) {
      ++slot.bad;
      ++tenant.bad_total;
      if (shed) ++tenant.shed_total;
    } else {
      ++tenant.good_total;
    }
    slo = SummarizeLocked(assignment, tenant, now_s);
    ExportMetricsLocked(assignment, slo);
  }
  Registry::Global()
      .GetCounter("jfeed_slo_events_total",
                  "SLO events by assignment and budget result",
                  {{"assignment", assignment},
                   {"result", bad ? "bad" : "good"}})
      ->Increment();
}

AssignmentSlo SloTracker::SummarizeLocked(const std::string& assignment,
                                          const Tenant& tenant,
                                          int64_t now_s) const {
  AssignmentSlo slo;
  slo.assignment = assignment;
  slo.good_total = tenant.good_total;
  slo.bad_total = tenant.bad_total;
  slo.shed_total = tenant.shed_total;
  for (const Slot& slot : tenant.slots) {
    if (slot.sec < 0) continue;
    int64_t age = now_s - slot.sec;
    if (age < 0 || age >= policy_.window_s) continue;
    slo.window_events += slot.total;
    slo.window_bad += slot.bad;
    if (age < policy_.fast_window_s) {
      slo.fast_events += slot.total;
      slo.fast_bad += slot.bad;
    }
    if (age < policy_.slow_window_s) {
      slo.slow_events += slot.total;
      slo.slow_bad += slot.bad;
    }
  }
  DeriveBudget(policy_, &slo);
  return slo;
}

void SloTracker::ExportMetricsLocked(const std::string& assignment,
                                     const AssignmentSlo& slo) const {
  Registry& registry = Registry::Global();
  registry
      .GetGauge("jfeed_slo_budget_remaining_ppm",
                "rolling-window error budget remaining, parts per million",
                {{"assignment", assignment}})
      ->Set(slo.budget_remaining_ppm);
  registry
      .GetGauge("jfeed_slo_burn_rate_milli",
                "error-budget burn rate in milli-units (1000 = 1x)",
                {{"assignment", assignment}, {"window", "fast"}})
      ->Set(slo.burn_rate_fast_milli);
  registry
      .GetGauge("jfeed_slo_burn_rate_milli",
                "error-budget burn rate in milli-units (1000 = 1x)",
                {{"assignment", assignment}, {"window", "slow"}})
      ->Set(slo.burn_rate_slow_milli);
  registry
      .GetGauge("jfeed_slo_fast_burn",
                "1 while the assignment's fast burn window is over threshold",
                {{"assignment", assignment}})
      ->Set(slo.fast_burn ? 1 : 0);
}

std::vector<AssignmentSlo> SloTracker::Snapshot(int64_t now_s) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<AssignmentSlo> out;
  out.reserve(tenants_.size());
  for (const auto& [assignment, tenant] : tenants_) {
    out.push_back(SummarizeLocked(assignment, tenant, now_s));
  }
  return out;
}

bool SloTracker::FastBurnAny(int64_t now_s) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) return false;
  for (const auto& [assignment, tenant] : tenants_) {
    if (SummarizeLocked(assignment, tenant, now_s).fast_burn) return true;
  }
  return false;
}

std::string SloTracker::RenderSlozJson(int64_t now_s) const {
  SloPolicy policy;
  std::vector<AssignmentSlo> assignments;
  {
    std::lock_guard<std::mutex> lock(mu_);
    policy = policy_;
    assignments.reserve(tenants_.size());
    for (const auto& [assignment, tenant] : tenants_) {
      assignments.push_back(SummarizeLocked(assignment, tenant, now_s));
    }
  }
  std::string out = "{\"policy\":";
  AppendPolicyJson(policy, &out);
  out += ",\"assignments\":[";
  for (size_t i = 0; i < assignments.size(); ++i) {
    if (i > 0) out += ",";
    out += "\n";
    AppendAssignmentJson(assignments[i], /*with_exemplars=*/true, &out);
  }
  out += "\n]}\n";
  return out;
}

// --- AggregateSloz ----------------------------------------------------------

std::string AggregateSloz(
    const std::vector<std::pair<int, std::string>>& worker_bodies) {
  SloPolicy policy;
  bool have_policy = false;
  int workers = 0;
  std::map<std::string, AssignmentSlo> merged;
  for (const auto& [worker_id, body] : worker_bodies) {
    (void)worker_id;
    std::vector<std::string> objects = SplitAssignmentObjects(body);
    if (body.find("\"policy\":") == std::string::npos) continue;
    if (!have_policy) {
      policy = ParsePolicy(body);
      have_policy = true;
    }
    ++workers;
    for (const std::string& obj : objects) {
      std::string assignment;
      if (!FindStringField(obj, "assignment", &assignment)) continue;
      AssignmentSlo& slo = merged[assignment];
      slo.assignment = assignment;
      int64_t value = 0;
      if (FindNumberField(obj, "good_total", &value)) slo.good_total += value;
      if (FindNumberField(obj, "bad_total", &value)) slo.bad_total += value;
      if (FindNumberField(obj, "shed_total", &value)) slo.shed_total += value;
      if (FindNumberField(obj, "window_events", &value)) {
        slo.window_events += value;
      }
      if (FindNumberField(obj, "window_bad", &value)) slo.window_bad += value;
      if (FindNumberField(obj, "fast_events", &value)) {
        slo.fast_events += value;
      }
      if (FindNumberField(obj, "fast_bad", &value)) slo.fast_bad += value;
      if (FindNumberField(obj, "slow_events", &value)) {
        slo.slow_events += value;
      }
      if (FindNumberField(obj, "slow_bad", &value)) slo.slow_bad += value;
    }
  }
  std::string out = "{\"workers\":";
  out += std::to_string(workers);
  out += ",\"policy\":";
  AppendPolicyJson(policy, &out);
  out += ",\"assignments\":[";
  bool first = true;
  for (auto& [assignment, slo] : merged) {
    DeriveBudget(policy, &slo);
    if (!first) out += ",";
    first = false;
    out += "\n";
    AppendAssignmentJson(slo, /*with_exemplars=*/false, &out);
  }
  out += "\n]}\n";
  return out;
}

}  // namespace jfeed::obs
