#ifndef JFEED_OBS_EVENT_LOG_H_
#define JFEED_OBS_EVENT_LOG_H_

// Per-submission flight recorder.
//
// Where metrics aggregate ("N submissions timed out today") and traces
// decompose time ("the match stage took 40% of this run"), the flight
// recorder answers the third operational question: *exactly why did
// submission X get feedback Y*. Every graded submission emits one wide
// event — a single flat record carrying the verdict, the degradation-
// ladder rung, cache disposition, matcher work counters, interpreter
// resource spend and per-stage wall times — into a bounded in-memory ring.
// The daemon serves the ring at /events; `grade --events-out=` streams the
// same records to a file as NDJSON, one JSON object per line.
//
// The ring is bounded: when full, the oldest event is overwritten and the
// `jfeed_events_dropped_total` counter (part of the DESIGN.md §6 metric
// contract) increments, so a dashboard can tell "quiet service" from
// "recorder wrapping faster than anyone scrapes it".
//
// Schema stability: WideEvent's field names as rendered by ToJson() are
// part of the monitoring interface (DESIGN.md §6b). Adding a field is
// backward compatible; renaming or removing one is a breaking change that
// must be called out in CHANGES.md. FromJson() accepts unknown fields for
// the same forward-compatibility reason.
//
// Like the rest of src/obs, the recorder is runtime-gated (nothing records
// until set_enabled(true)) and compiles to no-op stubs under JFEED_OBS=OFF.

#include <cstdint>
#include <string>
#include <vector>

#ifndef JFEED_OBS_DISABLED
#include <atomic>
#include <mutex>
#endif

namespace jfeed::obs {

/// One graded submission, flattened. Strings hold the stable lowercase
/// names the pipeline already exposes (VerdictName, FeedbackTierName,
/// FailureClassName); numeric fields are exact, not sampled.
struct WideEvent {
  uint64_t seq = 0;          ///< Recorder-assigned, dense from 1.
  int64_t unix_ms = 0;       ///< Wall-clock completion time (ms since epoch).
  std::string submission_id; ///< Caller-chosen id; may be empty.
  /// Distributed-trace join keys (trace_context.h): the 32-hex trace id
  /// minted at the outermost entry point (broker, daemon, or CLI) and the
  /// 16-hex id of the span that graded this submission. Empty when tracing
  /// was off — the one id that links this record to broker attempt spans
  /// and the federated /tracez timeline.
  std::string trace_id;
  std::string span_id;
  std::string assignment;    ///< Knowledge-base assignment id.
  std::string verdict;       ///< correct|incorrect|spec_mismatch|not_graded.
  std::string tier;          ///< full_epdg|ast_only|parse_diagnostic.
  std::string failure_class; ///< none|parse_error|timeout|...
  /// Cache disposition: "hit" (served from the result cache), "dedup"
  /// (coalesced onto an in-flight duplicate), "miss" (looked up, graded),
  /// "off" (no lookup attempted), "partial_hit" (graded, but at least one
  /// method was reused from the method cache — see methods_reused below).
  std::string cache;
  bool degraded = false;
  std::string diagnostic;    ///< Status text that forced a rung drop.
  double score = 0.0;
  int64_t match_steps = 0;
  int64_t match_regex_checks = 0;
  /// Bytes bump-allocated from the per-submission arenas (EPDG memory +
  /// matcher scratch) while grading — the hot path's memory footprint.
  int64_t arena_bytes_peak = 0;
  /// Incremental-grading accounting (cache disposition "partial_hit"):
  /// methods served from the method cache vs. methods (re)graded. Both
  /// zero when no method cache was configured.
  int64_t methods_reused = 0;
  int64_t methods_regraded = 0;
  int64_t interp_steps = 0;
  int64_t interp_heap_bytes = 0;
  int64_t interp_output_bytes = 0;
  int64_t functional_tests_run = 0;
  int64_t functional_tests_failed = 0;
  double parse_ms = 0.0;
  double epdg_ms = 0.0;
  double match_ms = 0.0;
  double functional_ms = 0.0;
};

/// Renders one event as a single-line JSON object (no trailing newline) —
/// the NDJSON record format of /events and --events-out.
std::string ToJson(const WideEvent& event);

/// Parses one ToJson() line back into `*event`. Unknown fields are
/// ignored; a missing field keeps its default. Returns false on input that
/// is not a flat JSON object (the round-trip tests and offline tooling use
/// this; the serving path never parses).
bool FromJson(const std::string& json, WideEvent* event);

#ifdef JFEED_OBS_DISABLED

// ---------------------------------------------------------------------------
// Compile-time-disabled stub.
// ---------------------------------------------------------------------------

class EventLog {
 public:
  static constexpr size_t kDefaultCapacity = 1024;
  static EventLog& Global() {
    static EventLog log;
    return log;
  }
  void set_enabled(bool) {}
  bool enabled() const { return false; }
  void SetCapacity(size_t) {}
  size_t capacity() const { return 0; }
  void Append(WideEvent) {}
  std::vector<WideEvent> Snapshot() const { return {}; }
  std::string RenderNdjson(size_t = 0) const { return ""; }
  int64_t DroppedCount() const { return 0; }
  size_t size() const { return 0; }
  void Clear() {}
};

#else  // JFEED_OBS_DISABLED

/// Bounded ring of the most recent wide events. Append is O(1) under one
/// mutex — it runs once per graded submission (milliseconds of work), so
/// unlike the metrics hot path it does not need sharding.
class EventLog {
 public:
  static constexpr size_t kDefaultCapacity = 1024;

  static EventLog& Global();

  /// Master switch, mirroring Registry::set_enabled: while disabled (the
  /// default) Append is a relaxed load and an early return.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Resizes the ring; the newest min(size, capacity) events survive.
  void SetCapacity(size_t capacity);
  size_t capacity() const;

  /// Records one event (stamps seq; the caller fills everything else).
  /// No-op while disabled. Overwrites the oldest event when full and
  /// increments jfeed_events_dropped_total.
  void Append(WideEvent event);

  /// Oldest-to-newest copy of the ring.
  std::vector<WideEvent> Snapshot() const;

  /// The ring as NDJSON, oldest first; `limit` keeps only the newest N
  /// events (0 = all). The /events endpoint body.
  std::string RenderNdjson(size_t limit = 0) const;

  /// Events overwritten by ring wrap-around since the last Clear() — the
  /// same number jfeed_events_dropped_total carries.
  int64_t DroppedCount() const;

  size_t size() const;

  /// Drops every recorded event and resets seq + dropped. Test isolation.
  void Clear();

 private:
  EventLog() = default;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<WideEvent> ring_;  ///< Ring storage, capacity-bounded.
  size_t capacity_ = kDefaultCapacity;
  size_t next_ = 0;              ///< Overwrite position once full.
  uint64_t next_seq_ = 1;
  int64_t dropped_ = 0;
};

#endif  // JFEED_OBS_DISABLED

}  // namespace jfeed::obs

#endif  // JFEED_OBS_EVENT_LOG_H_
