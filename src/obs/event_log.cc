#include "obs/event_log.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace jfeed::obs {

namespace {

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

/// Renders a double with enough precision to round-trip millisecond
/// timings ("%.6g" keeps 1234.56 exact and avoids 17-digit noise).
void AppendDouble(double value, std::string* out) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  *out += buf;
}

}  // namespace

std::string ToJson(const WideEvent& e) {
  std::string out = "{";
  auto str = [&out](const char* name, const std::string& value,
                    bool first = false) {
    if (!first) out += ",";
    out += std::string("\"") + name + "\":";
    AppendJsonString(value, &out);
  };
  auto num = [&out](const char* name, int64_t value) {
    out += std::string(",\"") + name + "\":" + std::to_string(value);
  };
  auto dbl = [&out](const char* name, double value) {
    out += std::string(",\"") + name + "\":";
    AppendDouble(value, &out);
  };
  num("seq", static_cast<int64_t>(e.seq));
  // seq opened with a comma; strip it so the object starts cleanly.
  out.erase(1, 1);
  num("unix_ms", e.unix_ms);
  str("id", e.submission_id);
  str("trace_id", e.trace_id);
  str("span_id", e.span_id);
  str("assignment", e.assignment);
  str("verdict", e.verdict);
  str("tier", e.tier);
  str("failure_class", e.failure_class);
  str("cache", e.cache);
  out += ",\"degraded\":";
  out += e.degraded ? "true" : "false";
  str("diagnostic", e.diagnostic);
  dbl("score", e.score);
  num("match_steps", e.match_steps);
  num("match_regex_checks", e.match_regex_checks);
  num("arena_bytes_peak", e.arena_bytes_peak);
  num("methods_reused", e.methods_reused);
  num("methods_regraded", e.methods_regraded);
  num("interp_steps", e.interp_steps);
  num("interp_heap_bytes", e.interp_heap_bytes);
  num("interp_output_bytes", e.interp_output_bytes);
  num("functional_tests_run", e.functional_tests_run);
  num("functional_tests_failed", e.functional_tests_failed);
  dbl("parse_ms", e.parse_ms);
  dbl("epdg_ms", e.epdg_ms);
  dbl("match_ms", e.match_ms);
  dbl("functional_ms", e.functional_ms);
  out += "}";
  return out;
}

namespace {

// --- Flat-object JSON scanner for FromJson ----------------------------------
//
// WideEvent NDJSON is a flat object of string / number / bool values, so a
// full JSON parser would be overkill; this scanner handles exactly that
// grammar (and skips unknown values of those shapes, for forward
// compatibility).

void SkipSpace(const std::string& s, size_t* pos) {
  while (*pos < s.size() &&
         std::isspace(static_cast<unsigned char>(s[*pos]))) {
    ++*pos;
  }
}

bool ParseString(const std::string& s, size_t* pos, std::string* out) {
  if (*pos >= s.size() || s[*pos] != '"') return false;
  ++*pos;
  out->clear();
  while (*pos < s.size()) {
    char c = s[*pos];
    if (c == '"') {
      ++*pos;
      return true;
    }
    if (c != '\\') {
      out->push_back(c);
      ++*pos;
      continue;
    }
    if (++*pos >= s.size()) return false;
    char esc = s[(*pos)++];
    switch (esc) {
      case '"': out->push_back('"'); break;
      case '\\': out->push_back('\\'); break;
      case '/': out->push_back('/'); break;
      case 'b': out->push_back('\b'); break;
      case 'f': out->push_back('\f'); break;
      case 'n': out->push_back('\n'); break;
      case 'r': out->push_back('\r'); break;
      case 't': out->push_back('\t'); break;
      case 'u': {
        if (*pos + 4 > s.size()) return false;
        long cp = std::strtol(s.substr(*pos, 4).c_str(), nullptr, 16);
        *pos += 4;
        // ToJson only \u-escapes control bytes (< 0x20), so one UTF-8 byte
        // suffices for everything the recorder itself writes; larger code
        // points from foreign producers are preserved best-effort.
        if (cp < 0x80) {
          out->push_back(static_cast<char>(cp));
        } else {
          out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
          out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        }
        break;
      }
      default:
        return false;
    }
  }
  return false;
}

bool ParseNumber(const std::string& s, size_t* pos, double* out) {
  const char* start = s.c_str() + *pos;
  char* end = nullptr;
  double v = std::strtod(start, &end);
  if (end == start) return false;
  *pos += static_cast<size_t>(end - start);
  *out = v;
  return true;
}

}  // namespace

bool FromJson(const std::string& json, WideEvent* event) {
  size_t pos = 0;
  SkipSpace(json, &pos);
  if (pos >= json.size() || json[pos] != '{') return false;
  ++pos;
  *event = WideEvent();
  while (true) {
    SkipSpace(json, &pos);
    if (pos < json.size() && json[pos] == '}') return true;
    std::string key;
    if (!ParseString(json, &pos, &key)) return false;
    SkipSpace(json, &pos);
    if (pos >= json.size() || json[pos] != ':') return false;
    ++pos;
    SkipSpace(json, &pos);
    if (pos >= json.size()) return false;

    if (json[pos] == '"') {
      std::string value;
      if (!ParseString(json, &pos, &value)) return false;
      if (key == "id") event->submission_id = value;
      else if (key == "trace_id") event->trace_id = value;
      else if (key == "span_id") event->span_id = value;
      else if (key == "assignment") event->assignment = value;
      else if (key == "verdict") event->verdict = value;
      else if (key == "tier") event->tier = value;
      else if (key == "failure_class") event->failure_class = value;
      else if (key == "cache") event->cache = value;
      else if (key == "diagnostic") event->diagnostic = value;
    } else if (json.compare(pos, 4, "true") == 0) {
      pos += 4;
      if (key == "degraded") event->degraded = true;
    } else if (json.compare(pos, 5, "false") == 0) {
      pos += 5;
      if (key == "degraded") event->degraded = false;
    } else {
      double value = 0;
      if (!ParseNumber(json, &pos, &value)) return false;
      if (key == "seq") event->seq = static_cast<uint64_t>(value);
      else if (key == "unix_ms") event->unix_ms = static_cast<int64_t>(value);
      else if (key == "score") event->score = value;
      else if (key == "match_steps") {
        event->match_steps = static_cast<int64_t>(value);
      } else if (key == "match_regex_checks") {
        event->match_regex_checks = static_cast<int64_t>(value);
      } else if (key == "arena_bytes_peak") {
        event->arena_bytes_peak = static_cast<int64_t>(value);
      } else if (key == "methods_reused") {
        event->methods_reused = static_cast<int64_t>(value);
      } else if (key == "methods_regraded") {
        event->methods_regraded = static_cast<int64_t>(value);
      } else if (key == "interp_steps") {
        event->interp_steps = static_cast<int64_t>(value);
      } else if (key == "interp_heap_bytes") {
        event->interp_heap_bytes = static_cast<int64_t>(value);
      } else if (key == "interp_output_bytes") {
        event->interp_output_bytes = static_cast<int64_t>(value);
      } else if (key == "functional_tests_run") {
        event->functional_tests_run = static_cast<int64_t>(value);
      } else if (key == "functional_tests_failed") {
        event->functional_tests_failed = static_cast<int64_t>(value);
      } else if (key == "parse_ms") {
        event->parse_ms = value;
      } else if (key == "epdg_ms") {
        event->epdg_ms = value;
      } else if (key == "match_ms") {
        event->match_ms = value;
      } else if (key == "functional_ms") {
        event->functional_ms = value;
      }
    }
    SkipSpace(json, &pos);
    if (pos < json.size() && json[pos] == ',') {
      ++pos;
      continue;
    }
    if (pos < json.size() && json[pos] == '}') return true;
    return false;
  }
}

}  // namespace jfeed::obs

#ifndef JFEED_OBS_DISABLED

#include "obs/metrics.h"

namespace jfeed::obs {

namespace {

/// Contract metric (DESIGN.md §6): events lost to ring wrap-around.
Counter* DroppedTotal() {
  static Counter* counter = Registry::Global().GetCounter(
      "jfeed_events_dropped_total",
      "Flight-recorder wide events overwritten by ring wrap-around");
  return counter;
}

}  // namespace

EventLog& EventLog::Global() {
  // Leaked like the Registry: Append can run from worker threads whose
  // thread_local destructors must never outlive the log.
  static EventLog* log = [] {
    // Register the contract drop counter eagerly so /metrics exposes it at
    // zero from the first scrape — a dashboard alerting on its rate must
    // not confuse "no drops yet" with "metric missing".
    DroppedTotal();
    return new EventLog();
  }();
  return *log;
}

void EventLog::SetCapacity(size_t capacity) {
  if (capacity == 0) capacity = 1;
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity == capacity_) return;
  // Re-linearize oldest-first into the new ring, keeping the newest events.
  std::vector<WideEvent> ordered;
  ordered.reserve(ring_.size());
  if (ring_.size() == capacity_) {
    for (size_t i = 0; i < ring_.size(); ++i) {
      ordered.push_back(ring_[(next_ + i) % ring_.size()]);
    }
  } else {
    ordered = ring_;
  }
  if (ordered.size() > capacity) {
    ordered.erase(ordered.begin(),
                  ordered.end() - static_cast<ptrdiff_t>(capacity));
  }
  ring_ = std::move(ordered);
  capacity_ = capacity;
  next_ = ring_.size() == capacity ? 0 : ring_.size();
}

size_t EventLog::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void EventLog::Append(WideEvent event) {
  if (!enabled()) return;
  bool dropped = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    event.seq = next_seq_++;
    if (ring_.size() < capacity_) {
      ring_.push_back(std::move(event));
    } else {
      ring_[next_] = std::move(event);
      next_ = (next_ + 1) % capacity_;
      ++dropped_;
      dropped = true;
    }
  }
  // Outside the lock: the counter has its own synchronization.
  if (dropped) DroppedTotal()->Increment();
}

std::vector<WideEvent> EventLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<WideEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() == capacity_) {
    for (size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(next_ + i) % ring_.size()]);
    }
  } else {
    out = ring_;
  }
  return out;
}

std::string EventLog::RenderNdjson(size_t limit) const {
  std::vector<WideEvent> events = Snapshot();
  size_t start = 0;
  if (limit > 0 && events.size() > limit) start = events.size() - limit;
  std::string out;
  for (size_t i = start; i < events.size(); ++i) {
    out += ToJson(events[i]);
    out += "\n";
  }
  return out;
}

int64_t EventLog::DroppedCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

size_t EventLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

void EventLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
  next_seq_ = 1;
  dropped_ = 0;
}

}  // namespace jfeed::obs

#endif  // JFEED_OBS_DISABLED
