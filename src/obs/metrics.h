#ifndef JFEED_OBS_METRICS_H_
#define JFEED_OBS_METRICS_H_

// Lock-cheap metrics registry for the grading service.
//
// Three instrument kinds, Prometheus semantics:
//   Counter   — monotonically increasing int64 (events, bytes, steps).
//   Gauge     — instantaneous int64 (queue depth, live workers).
//   Histogram — int64 samples bucketed into fixed log2-scale buckets
//               (durations in µs, step counts, byte sizes).
//
// Counters and histograms write to `thread_local` shards: an increment is
// one relaxed atomic add on a cell no other thread writes, so instrumented
// hot paths never contend on a registry lock. Shards are aggregated on
// scrape (`Registry::Render()` / `Value()`), and a dying thread folds its
// cells into the owning instrument's retired sum, so counts survive worker
// churn in the batch scheduler.
//
// The registry is runtime-gated: until a sink flips `set_enabled(true)`
// (the `--metrics-out` flag, a test, a scrape loop), every Increment /
// Record is a single relaxed load and an early return. Compiling with
// JFEED_OBS=OFF (-DJFEED_OBS_DISABLED) replaces the whole API with inline
// no-op stubs, removing even that load.
//
// Metric-name stability contract: names listed in DESIGN.md §6 are part of
// the service's monitoring interface — renaming one is a breaking change
// and must be called out in CHANGES.md.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#ifndef JFEED_OBS_DISABLED
#include <atomic>
#include <array>
#include <memory>
#include <mutex>
#endif

namespace jfeed::obs {

/// Label set of one instrument instance, e.g. {{"stage", "parse"}}. Baked
/// into the instrument at Get* time; (name, labels) identifies the cell.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Last sample that landed in a histogram bucket, tagged with the trace
/// that produced it (the OpenMetrics "exemplar" idea): a p99 bucket in
/// jfeed_grade_duration_us links to a concrete trace id to pull from
/// /tracez. Kept out of Render() — the Prometheus 0.0.4 text format has no
/// exemplar syntax and MergeWorkerMetrics must keep parsing expositions —
/// and surfaced through the /sloz JSON endpoint instead.
struct HistogramExemplar {
  int64_t value = 0;
  std::string trace_id;
};

#ifdef JFEED_OBS_DISABLED

// ---------------------------------------------------------------------------
// Compile-time-disabled stubs: the full surface, each call inlined away.
// ---------------------------------------------------------------------------

class Counter {
 public:
  void Increment(int64_t = 1) {}
  int64_t Value() const { return 0; }
};

class Gauge {
 public:
  void Set(int64_t) {}
  void Add(int64_t) {}
  int64_t Value() const { return 0; }
};

class Histogram {
 public:
  static constexpr int kBucketCount = 32;
  static int64_t BucketBound(int) { return 0; }
  void Record(int64_t) {}
  void RecordWithExemplar(int64_t, const std::string&) {}
  int64_t Count() const { return 0; }
  int64_t Sum() const { return 0; }
  std::vector<std::pair<int, HistogramExemplar>> Exemplars() const {
    return {};
  }
};

class Registry {
 public:
  static Registry& Global() {
    static Registry registry;
    return registry;
  }
  Counter* GetCounter(const std::string&, const std::string&,
                      const Labels& = {}) {
    static Counter counter;
    return &counter;
  }
  Gauge* GetGauge(const std::string&, const std::string&,
                  const Labels& = {}) {
    static Gauge gauge;
    return &gauge;
  }
  Histogram* GetHistogram(const std::string&, const std::string&,
                          const Labels& = {}) {
    static Histogram histogram;
    return &histogram;
  }
  std::string Render() const {
    return "# jfeed observability compiled out (JFEED_OBS=OFF)\n";
  }
  void set_enabled(bool) {}
  bool enabled() const { return false; }
  void ResetForTest() {}
};

#else  // JFEED_OBS_DISABLED

/// Monotonically increasing counter. Increment() is wait-free against other
/// instrumented threads: each thread adds to its own shard cell.
class Counter {
 public:
  /// No-op while the registry is disabled.
  void Increment(int64_t delta = 1);

  /// Retired sum plus every live thread cell — the scrape-time aggregate.
  int64_t Value() const;

 private:
  friend class Registry;
  Counter() = default;

  std::atomic<int64_t>& Cell();
  void Retire(const std::atomic<int64_t>* cell);
  void ResetLocked();

  std::atomic<int64_t> retired_{0};
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<std::atomic<int64_t>>> cells_;
};

/// Instantaneous value. Set/Add race benignly (last writer wins) on a
/// single shared atomic — gauges are read far more often than written, and
/// "latest observed" is the semantics a queue-depth gauge wants.
class Gauge {
 public:
  void Set(int64_t value);
  void Add(int64_t delta);
  int64_t Value() const;

 private:
  friend class Registry;
  Gauge() = default;
  std::atomic<int64_t> value_{0};
};

/// Fixed log2-bucket histogram of non-negative int64 samples. Bucket i
/// counts samples <= 2^i (bucket 0: <= 1); the last bucket is +Inf. 32
/// buckets cover 1..2^30 before saturating — microsecond durations up to
/// ~18 minutes, byte sizes up to 1 GiB — with zero configuration, which is
/// what keeps the shards fixed-size and the Record path branch-free.
class Histogram {
 public:
  static constexpr int kBucketCount = 32;

  /// Index of the bucket counting `value` (log2 scale, clamped).
  static int BucketIndex(int64_t value);
  /// Inclusive upper bound of bucket `index`; INT64_MAX for the last.
  static int64_t BucketBound(int index);

  /// No-op while the registry is disabled.
  void Record(int64_t value);

  /// Record(value), additionally remembering {value, trace_id} as the
  /// exemplar of the bucket the sample landed in (last writer wins; an
  /// empty trace_id degrades to a plain Record). One mutex-guarded write —
  /// only call on paths that already cost a grade, not per-token loops.
  void RecordWithExemplar(int64_t value, const std::string& trace_id);

  int64_t Count() const;
  int64_t Sum() const;
  /// Cumulative count of samples <= BucketBound(index), Prometheus `le`
  /// semantics.
  int64_t CumulativeCount(int index) const;

  /// (bucket index, exemplar) for every bucket holding one, ascending by
  /// index. Cleared by Registry::ResetForTest().
  std::vector<std::pair<int, HistogramExemplar>> Exemplars() const;

 private:
  friend class Registry;
  Histogram() = default;

  struct Shard {
    std::array<std::atomic<int64_t>, kBucketCount> buckets{};
    std::atomic<int64_t> count{0};
    std::atomic<int64_t> sum{0};
  };

  Shard& Cell();
  void Retire(const Shard* shard);
  void ResetLocked();

  Shard retired_;
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<Shard>> shards_;

  mutable std::mutex exemplar_mu_;
  std::array<HistogramExemplar, kBucketCount> exemplars_{};
};

/// Process-wide instrument registry. Get* calls are idempotent: the same
/// (name, labels) pair always returns the same instrument, so call sites
/// cache the pointer in a function-local static and pay the registry lock
/// once per process. Instruments are never deleted — ResetForTest() zeroes
/// values but keeps every pointer valid.
class Registry {
 public:
  static Registry& Global();

  Counter* GetCounter(const std::string& name, const std::string& help,
                      const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  const Labels& labels = {});
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          const Labels& labels = {});

  /// Prometheus text exposition: one # HELP / # TYPE block per family,
  /// families and label sets in lexicographic order (deterministic output
  /// for tests and diffable dumps).
  std::string Render() const;

  /// Runtime master switch. Disabled (the default) every instrument write
  /// is a relaxed load + early return; reads (Value, Render) always work.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Zeroes every instrument (counters, gauges, histogram shards) without
  /// invalidating instrument pointers. Test isolation only.
  void ResetForTest();

 private:
  Registry() = default;

  enum class Kind { kCounter, kGauge, kHistogram };
  struct Family {
    std::string name;
    std::string help;
    Kind kind;
    /// Parallel vectors: one instrument per registered label set.
    std::vector<Labels> label_sets;
    std::vector<std::unique_ptr<Counter>> counters;
    std::vector<std::unique_ptr<Gauge>> gauges;
    std::vector<std::unique_ptr<Histogram>> histograms;
  };

  Family* GetFamilyLocked(const std::string& name, const std::string& help,
                          Kind kind);

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Family>> families_;
};

#endif  // JFEED_OBS_DISABLED

}  // namespace jfeed::obs

#endif  // JFEED_OBS_METRICS_H_
