#include "obs/trace.h"

#ifndef JFEED_OBS_DISABLED

#include <algorithm>
#include <cstdio>

namespace jfeed::obs {

namespace {

/// The thread's innermost live span — the implicit parent of the next Span
/// constructed without an explicit one. Maintained by Span::Begin/End.
thread_local const Span* g_current_span = nullptr;

void AppendEscaped(const char* s, std::string* out) {
  for (; *s != '\0'; ++s) {
    char c = *s;
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
}

}  // namespace

// --- Tracer -----------------------------------------------------------------

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {
  unix_epoch_us_ = std::chrono::duration_cast<std::chrono::microseconds>(
                       std::chrono::system_clock::now().time_since_epoch())
                       .count();
}

Tracer& Tracer::Global() {
  // Leaked on purpose: thread_local ring handles are registered here and
  // must never outlive the registry they fold into.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Enable(size_t ring_capacity) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ring_capacity_ = ring_capacity == 0 ? 1 : ring_capacity;
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    ring->records.clear();
    ring->next = 0;
    ring->dropped = 0;
  }
}

int64_t Tracer::NowNs() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

Tracer::Ring& Tracer::ThreadRing() {
  thread_local std::shared_ptr<Ring> local;
  if (local == nullptr) {
    local = std::make_shared<Ring>();
    local->tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    local->capacity = ring_capacity_;
    rings_.push_back(local);
  }
  return *local;
}

void Tracer::RecordSpan(SpanRecord record) {
  Ring& ring = ThreadRing();
  record.tid = ring.tid;
  std::lock_guard<std::mutex> lock(ring.mu);
  if (ring.records.size() < ring.capacity) {
    ring.records.push_back(std::move(record));
    return;
  }
  // Full: overwrite the oldest slot (the ring wrapped `next` times already).
  ring.records[ring.next] = std::move(record);
  ring.next = (ring.next + 1) % ring.capacity;
  ++ring.dropped;
}

int64_t Tracer::DroppedCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    total += ring->dropped;
  }
  return total;
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::vector<SpanRecord> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& ring : rings_) {
      std::lock_guard<std::mutex> ring_lock(ring->mu);
      // Chronological per ring: the slots from `next` onward are the older
      // half once the ring has wrapped.
      for (size_t i = ring->next; i < ring->records.size(); ++i) {
        out.push_back(ring->records[i]);
      }
      for (size_t i = 0; i < ring->next; ++i) {
        out.push_back(ring->records[i]);
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_ns != b.start_ns ? a.start_ns < b.start_ns
                                              : a.id < b.id;
            });
  return out;
}

std::string Tracer::ExportChromeJson(int pid,
                                     const std::string& process_name) const {
  std::vector<SpanRecord> records = Snapshot();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[96];
  bool first = true;
  if (!process_name.empty()) {
    out += "\n{\"ph\":\"M\",\"pid\":";
    out += std::to_string(pid);
    out += ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"";
    AppendEscaped(process_name.c_str(), &out);
    out += "\"}}";
    first = false;
  }
  for (const SpanRecord& r : records) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"ph\":\"X\",\"pid\":";
    out += std::to_string(pid);
    out += ",\"tid\":";
    out += std::to_string(r.tid);
    out += ",\"name\":\"";
    AppendEscaped(r.name, &out);
    // ts/dur in microseconds (the unit the trace_event format mandates),
    // unix-aligned so exports from separate processes share one timeline.
    std::snprintf(buf, sizeof(buf), "\",\"ts\":%.3f,\"dur\":%.3f",
                  static_cast<double>(unix_epoch_us_) +
                      static_cast<double>(r.start_ns) / 1e3,
                  static_cast<double>(r.end_ns - r.start_ns) / 1e3);
    out += buf;
    out += ",\"args\":{\"id\":";
    out += std::to_string(r.id);
    out += ",\"parent\":";
    out += std::to_string(r.parent_id);
    if ((r.trace_hi | r.trace_lo) != 0) {
      out += ",\"trace_id\":\"";
      out += TraceIdHex(TraceContext{r.trace_hi, r.trace_lo, 0});
      out += "\"";
    }
    if (!r.detail.empty()) {
      out += ",\"detail\":\"";
      AppendEscaped(r.detail.c_str(), &out);
      out += "\"";
    }
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

// --- Span -------------------------------------------------------------------

void Span::Begin(const char* name, uint64_t parent_id, uint64_t trace_hi,
                 uint64_t trace_lo) {
  Tracer& tracer = Tracer::Global();
  if (!tracer.enabled()) return;  // id_ stays 0: not recording.
  name_ = name;
  id_ = tracer.NextSpanId();
  parent_id_ = parent_id;
  if ((trace_hi | trace_lo) != 0) {
    trace_hi_ = trace_hi;
    trace_lo_ = trace_lo;
  } else {
    // Root of a new local trace: mint, so every span belongs to some trace
    // and a later hop always has a context to propagate.
    TraceContext minted = MintTraceContext();
    trace_hi_ = minted.trace_hi;
    trace_lo_ = minted.trace_lo;
  }
  start_ns_ = tracer.NowNs();
  ended_ = false;
  tracer.open_spans_.fetch_add(1, std::memory_order_relaxed);
  prev_current_ = g_current_span;
  g_current_span = this;
}

Span::Span(const char* name) {
  const Span* parent = g_current_span;
  Begin(name, parent != nullptr ? parent->id_ : 0,
        parent != nullptr ? parent->trace_hi_ : 0,
        parent != nullptr ? parent->trace_lo_ : 0);
}

Span::Span(const char* name, const Span& parent) {
  Begin(name, parent.id_, parent.trace_hi_, parent.trace_lo_);
}

Span::Span(const char* name, const TraceContext& remote) {
  if (remote.valid()) {
    Begin(name, remote.span_id, remote.trace_hi, remote.trace_lo);
  } else {
    const Span* parent = g_current_span;
    Begin(name, parent != nullptr ? parent->id_ : 0,
          parent != nullptr ? parent->trace_hi_ : 0,
          parent != nullptr ? parent->trace_lo_ : 0);
  }
}

void Span::Annotate(const std::string& detail) {
  if (id_ == 0) return;
  if (!detail_.empty()) detail_ += ' ';
  detail_ += detail;
}

void Span::End() {
  if (ended_) return;
  ended_ = true;
  Tracer& tracer = Tracer::Global();
  SpanRecord record;
  record.name = name_;
  record.id = id_;
  record.parent_id = parent_id_;
  record.trace_hi = trace_hi_;
  record.trace_lo = trace_lo_;
  record.start_ns = start_ns_;
  record.end_ns = tracer.NowNs();
  record.detail = std::move(detail_);
  // Restore the implicit-parent chain even if an inner span was ended out
  // of order (defensive; RAII nesting makes this the common case anyway).
  if (g_current_span == this) g_current_span = prev_current_;
  tracer.open_spans_.fetch_add(-1, std::memory_order_relaxed);
  tracer.RecordSpan(record);
}

}  // namespace jfeed::obs

#endif  // JFEED_OBS_DISABLED
