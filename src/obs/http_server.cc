#include "obs/http_server.h"

namespace jfeed::obs {

const char* HttpStatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 502: return "Bad Gateway";
    case 503: return "Service Unavailable";
  }
  return "Unknown";
}

std::string RequestHeader(const HttpRequest& request,
                          const std::string& name) {
  for (const auto& [header_name, value] : request.headers) {
    if (header_name == name) return value;
  }
  return "";
}

}  // namespace jfeed::obs

#ifndef JFEED_OBS_DISABLED

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

namespace jfeed::obs {

namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Arms SO_RCVTIMEO/SO_SNDTIMEO so no single recv/send on this connection
/// can block longer than `ms` — the per-call half of the slowloris guard
/// (the total-elapsed half lives in ReadRequest/WriteAll).
void ArmSocketTimeouts(int fd, int64_t ms) {
  if (ms <= 0) return;
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// Writes the whole buffer, riding out EINTR and partial writes. SIGPIPE is
/// avoided with MSG_NOSIGNAL — a client that hangs up mid-response must not
/// kill the daemon. `deadline_abs_ms` (0 = none) bounds total wall time
/// against a connected-but-not-reading client.
bool WriteAll(int fd, const char* data, size_t size, int64_t deadline_abs_ms) {
  size_t sent = 0;
  while (sent < size) {
    if (deadline_abs_ms != 0 && NowMs() >= deadline_abs_ms) return false;
    ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // EAGAIN from SO_SNDTIMEO lands here: drop the client.
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

void WriteResponse(int fd, const HttpResponse& response,
                   int64_t deadline_abs_ms = 0) {
  std::string head = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     HttpStatusText(response.status) +
                     "\r\nContent-Type: " + response.content_type +
                     "\r\nContent-Length: " +
                     std::to_string(response.body.size());
  for (const auto& [name, value] : response.headers) {
    head += "\r\n" + name + ": " + value;
  }
  head += "\r\nConnection: close\r\n\r\n";
  if (WriteAll(fd, head.data(), head.size(), deadline_abs_ms)) {
    WriteAll(fd, response.body.data(), response.body.size(),
             deadline_abs_ms);
  }
}

/// Reads until the blank line ending the headers, then Content-Length more
/// bytes. Returns false (and sends the right 4xx) on malformed or oversized
/// input. The parse is deliberately strict-but-simple: request line +
/// headers; no continuation lines, no chunked bodies. `deadline_abs_ms`
/// (0 = none) is the slowloris guard: a request not complete by then is
/// answered 408 — trickling bytes cannot hold a worker slot forever.
bool ReadRequest(int fd, size_t max_bytes, int64_t deadline_abs_ms,
                 HttpRequest* request, HttpResponse* error) {
  std::string data;
  size_t header_end = std::string::npos;
  char buffer[4096];
  while (header_end == std::string::npos) {
    if (data.size() > max_bytes) {
      error->status = 413;
      error->body = "request headers exceed limit\n";
      return false;
    }
    if (deadline_abs_ms != 0 && NowMs() >= deadline_abs_ms) {
      error->status = 408;
      error->body = "request read deadline exceeded\n";
      return false;
    }
    ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // SO_RCVTIMEO expired — re-check the total deadline above.
      continue;
    }
    if (n <= 0) {
      error->status = 400;
      error->body = "connection closed before headers completed\n";
      return false;
    }
    data.append(buffer, static_cast<size_t>(n));
    header_end = data.find("\r\n\r\n");
  }

  // Request line: METHOD SP target SP version.
  size_t line_end = data.find("\r\n");
  std::string line = data.substr(0, line_end);
  size_t sp1 = line.find(' ');
  size_t sp2 = line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1 ||
      line.compare(sp2 + 1, 5, "HTTP/") != 0) {
    error->status = 400;
    error->body = "malformed request line\n";
    return false;
  }
  request->method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  size_t question = target.find('?');
  request->path = target.substr(0, question);
  if (question != std::string::npos) {
    request->query = target.substr(question + 1);
  }

  // Headers: Content-Length frames the body; everything else is handed to
  // the handler (lowercased name, trimmed value) for things like the
  // traceparent context the fleet propagates.
  size_t body_size = 0;
  size_t pos = line_end + 2;
  while (pos < header_end) {
    size_t eol = data.find("\r\n", pos);
    std::string header = data.substr(pos, eol - pos);
    pos = eol + 2;
    size_t colon = header.find(':');
    if (colon == std::string::npos) continue;
    std::string name = header.substr(0, colon);
    for (char& c : name) c = static_cast<char>(std::tolower(c));
    std::string value = header.substr(colon + 1);
    size_t value_begin = value.find_first_not_of(" \t");
    size_t value_end = value.find_last_not_of(" \t");
    value = value_begin == std::string::npos
                ? ""
                : value.substr(value_begin, value_end - value_begin + 1);
    request->headers.emplace_back(name, value);
    if (name == "content-length") {
      char* end = nullptr;
      const char* text = header.c_str() + colon + 1;
      while (*text == ' ' || *text == '\t') ++text;
      unsigned long long v = std::strtoull(text, &end, 10);
      if (end == text) {
        error->status = 400;
        error->body = "malformed Content-Length\n";
        return false;
      }
      body_size = static_cast<size_t>(v);
    }
  }

  size_t total = header_end + 4 + body_size;
  if (total > max_bytes) {
    error->status = 413;
    error->body = "request body exceeds limit\n";
    return false;
  }
  while (data.size() < total) {
    if (deadline_abs_ms != 0 && NowMs() >= deadline_abs_ms) {
      error->status = 408;
      error->body = "request read deadline exceeded\n";
      return false;
    }
    ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) continue;
    if (n <= 0) {
      error->status = 400;
      error->body = "connection closed mid-body\n";
      return false;
    }
    data.append(buffer, static_cast<size_t>(n));
  }
  request->body = data.substr(header_end + 4, body_size);
  return true;
}

}  // namespace

HttpServer::HttpServer() : HttpServer(Options()) {}

HttpServer::HttpServer(Options options) : options_(options) {
  if (options_.workers < 1) options_.workers = 1;
  if (options_.backlog == 0) options_.backlog = 1;
}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Handle(const std::string& path, HttpHandler handler) {
  routes_.emplace_back(path, std::move(handler));
}

Status HttpServer::Start() {
  if (serving_.load(std::memory_order_relaxed)) {
    return Status::Internal("server already started");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Unavailable(std::string("socket(): ") +
                               std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status status = Status::Unavailable(
        "bind(127.0.0.1:" + std::to_string(options_.port) +
        "): " + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 64) < 0) {
    Status status =
        Status::Unavailable(std::string("listen(): ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  {
    std::lock_guard<std::mutex> lock(mu_);
    closing_ = false;
  }
  serving_.store(true, std::memory_order_relaxed);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  workers_.reserve(static_cast<size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void HttpServer::Stop() {
  if (!serving_.exchange(false, std::memory_order_relaxed)) return;
  // shutdown() unblocks the accept(2) the accept thread is parked in; the
  // thread then sees serving_ == false and exits.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    closing_ = true;
  }
  queue_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
  workers_.clear();
  listen_fd_ = -1;
}

void HttpServer::AcceptLoop() {
  while (serving_.load(std::memory_order_relaxed)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // ECONNABORTED and friends are transient; a closed listen socket
      // (Stop) lands here too and the serving_ check exits the loop.
      continue;
    }
    bool enqueued = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!closing_ && pending_.size() < options_.backlog) {
        pending_.push_back(fd);
        enqueued = true;
      }
    }
    if (enqueued) {
      queue_cv_.notify_one();
    } else {
      // Shed load at the door: a full worker queue answers 503 immediately
      // instead of letting connections (and client timeouts) pile up.
      HttpResponse busy;
      busy.status = 503;
      busy.body = "server busy\n";
      WriteResponse(fd, busy);
      ::close(fd);
    }
  }
}

void HttpServer::WorkerLoop() {
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] { return closing_ || !pending_.empty(); });
      if (pending_.empty()) return;  // Closing and drained.
      fd = pending_.front();
      pending_.pop_front();
    }
    ServeConnection(fd);
    ::close(fd);
  }
}

void HttpServer::ServeConnection(int fd) {
  // Slowloris guard: one total I/O budget for the connection, enforced as
  // a wall deadline re-checked between recv/send calls, with SO_RCVTIMEO /
  // SO_SNDTIMEO armed to a short tick so no single syscall can overshoot
  // the deadline by more than that tick.
  int64_t deadline_abs_ms = 0;
  if (options_.io_deadline_ms > 0) {
    deadline_abs_ms = NowMs() + options_.io_deadline_ms;
    int64_t tick = options_.io_deadline_ms < 1000 ? options_.io_deadline_ms
                                                  : 1000;
    ArmSocketTimeouts(fd, tick);
  }

  HttpRequest request;
  HttpResponse error;
  if (!ReadRequest(fd, options_.max_request_bytes, deadline_abs_ms, &request,
                   &error)) {
    // The read deadline may already be spent (that is what a 408 means);
    // the error write gets its own fresh budget so the client hears why.
    int64_t write_deadline =
        options_.io_deadline_ms > 0 ? NowMs() + options_.io_deadline_ms : 0;
    WriteResponse(fd, error, write_deadline);
    return;
  }
  for (const auto& [path, handler] : routes_) {
    if (path == request.path) {
      // The handler itself (grading) is not under the I/O deadline; only
      // the response write is, so a dead client cannot park the worker.
      HttpResponse response = handler(request);
      int64_t write_deadline =
          options_.io_deadline_ms > 0 ? NowMs() + options_.io_deadline_ms
                                      : 0;
      WriteResponse(fd, response, write_deadline);
      return;
    }
  }
  HttpResponse not_found;
  not_found.status = 404;
  not_found.body = "no handler for " + request.path + "\n";
  WriteResponse(fd, not_found,
                options_.io_deadline_ms > 0
                    ? NowMs() + options_.io_deadline_ms
                    : 0);
}

}  // namespace jfeed::obs

#endif  // JFEED_OBS_DISABLED
