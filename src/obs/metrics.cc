#include "obs/metrics.h"

#ifndef JFEED_OBS_DISABLED

#include <algorithm>
#include <bit>
#include <unordered_map>

namespace jfeed::obs {

namespace {

/// Escapes a label value for the Prometheus text format: backslash,
/// double-quote and newline are the three characters the exposition format
/// requires escaped inside `label="..."`.
std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

/// Escapes HELP text: the format requires backslash and newline escaped on
/// `# HELP` lines (double quotes are legal there). Without this a help
/// string containing a newline splits the line and corrupts every metric
/// after it.
std::string EscapeHelp(const std::string& help) {
  std::string out;
  out.reserve(help.size());
  for (char c : help) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

/// Renders `{k1="v1",k2="v2"}` (plus an optional trailing `le`); empty
/// labels render as nothing unless `le` forces braces.
std::string RenderLabels(const Labels& labels, const std::string& le = "") {
  if (labels.empty() && le.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out += ",";
    first = false;
    out += key + "=\"" + EscapeLabelValue(value) + "\"";
  }
  if (!le.empty()) {
    if (!first) out += ",";
    out += "le=\"" + le + "\"";
  }
  out += "}";
  return out;
}

}  // namespace

// --- Counter ----------------------------------------------------------------

std::atomic<int64_t>& Counter::Cell() {
  // One cell per (thread, counter). The map's destructor folds every cell
  // into its owner's retired sum, so a scheduler's worker threads can come
  // and go without losing counts or leaking shards. The registry is leaked
  // (never destroyed), so the owners outlive every thread_local destructor.
  struct ThreadCells {
    std::unordered_map<Counter*, std::shared_ptr<std::atomic<int64_t>>> cells;
    ~ThreadCells() {
      for (auto& [counter, cell] : cells) counter->Retire(cell.get());
    }
  };
  thread_local ThreadCells local;
  auto& slot = local.cells[this];
  if (slot == nullptr) {
    slot = std::make_shared<std::atomic<int64_t>>(0);
    std::lock_guard<std::mutex> lock(mu_);
    cells_.push_back(slot);
  }
  return *slot;
}

void Counter::Increment(int64_t delta) {
  if (!Registry::Global().enabled()) return;
  Cell().fetch_add(delta, std::memory_order_relaxed);
}

int64_t Counter::Value() const {
  // retired_ is read under mu_ so a concurrent Retire (which removes a cell
  // and folds it into retired_ under the same lock) is seen atomically.
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = retired_.load(std::memory_order_relaxed);
  for (const auto& cell : cells_) {
    total += cell->load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Retire(const std::atomic<int64_t>* cell) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i].get() == cell) {
      retired_.fetch_add(cells_[i]->load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
      cells_.erase(cells_.begin() + static_cast<ptrdiff_t>(i));
      return;
    }
  }
}

void Counter::ResetLocked() {
  retired_.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& cell : cells_) cell->store(0, std::memory_order_relaxed);
}

// --- Gauge ------------------------------------------------------------------

void Gauge::Set(int64_t value) {
  if (!Registry::Global().enabled()) return;
  value_.store(value, std::memory_order_relaxed);
}

void Gauge::Add(int64_t delta) {
  if (!Registry::Global().enabled()) return;
  value_.fetch_add(delta, std::memory_order_relaxed);
}

int64_t Gauge::Value() const {
  return value_.load(std::memory_order_relaxed);
}

// --- Histogram --------------------------------------------------------------

int Histogram::BucketIndex(int64_t value) {
  if (value <= 1) return 0;
  int index = std::bit_width(static_cast<uint64_t>(value - 1));
  return index < kBucketCount ? index : kBucketCount - 1;
}

int64_t Histogram::BucketBound(int index) {
  if (index >= kBucketCount - 1) return INT64_MAX;
  return int64_t{1} << index;
}

Histogram::Shard& Histogram::Cell() {
  struct ThreadShards {
    std::unordered_map<Histogram*, std::shared_ptr<Shard>> shards;
    ~ThreadShards() {
      for (auto& [histogram, shard] : shards) histogram->Retire(shard.get());
    }
  };
  thread_local ThreadShards local;
  auto& slot = local.shards[this];
  if (slot == nullptr) {
    slot = std::make_shared<Shard>();
    std::lock_guard<std::mutex> lock(mu_);
    shards_.push_back(slot);
  }
  return *slot;
}

void Histogram::Record(int64_t value) {
  if (!Registry::Global().enabled()) return;
  if (value < 0) value = 0;
  Shard& shard = Cell();
  shard.buckets[static_cast<size_t>(BucketIndex(value))].fetch_add(
      1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
}

void Histogram::RecordWithExemplar(int64_t value,
                                   const std::string& trace_id) {
  Record(value);
  if (!Registry::Global().enabled() || trace_id.empty()) return;
  if (value < 0) value = 0;
  std::lock_guard<std::mutex> lock(exemplar_mu_);
  HistogramExemplar& slot =
      exemplars_[static_cast<size_t>(BucketIndex(value))];
  slot.value = value;
  slot.trace_id = trace_id;
}

std::vector<std::pair<int, HistogramExemplar>> Histogram::Exemplars() const {
  std::vector<std::pair<int, HistogramExemplar>> out;
  std::lock_guard<std::mutex> lock(exemplar_mu_);
  for (int i = 0; i < kBucketCount; ++i) {
    if (!exemplars_[static_cast<size_t>(i)].trace_id.empty()) {
      out.emplace_back(i, exemplars_[static_cast<size_t>(i)]);
    }
  }
  return out;
}

int64_t Histogram::Count() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = retired_.count.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    total += shard->count.load(std::memory_order_relaxed);
  }
  return total;
}

int64_t Histogram::Sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = retired_.sum.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    total += shard->sum.load(std::memory_order_relaxed);
  }
  return total;
}

int64_t Histogram::CumulativeCount(int index) const {
  int64_t total = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (int b = 0; b <= index && b < kBucketCount; ++b) {
    total += retired_.buckets[static_cast<size_t>(b)].load(
        std::memory_order_relaxed);
    for (const auto& shard : shards_) {
      total += shard->buckets[static_cast<size_t>(b)].load(
          std::memory_order_relaxed);
    }
  }
  return total;
}

void Histogram::Retire(const Shard* shard) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i].get() != shard) continue;
    for (int b = 0; b < kBucketCount; ++b) {
      retired_.buckets[static_cast<size_t>(b)].fetch_add(
          shards_[i]->buckets[static_cast<size_t>(b)].load(
              std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
    retired_.count.fetch_add(
        shards_[i]->count.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    retired_.sum.fetch_add(shards_[i]->sum.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
    shards_.erase(shards_.begin() + static_cast<ptrdiff_t>(i));
    return;
  }
}

void Histogram::ResetLocked() {
  std::lock_guard<std::mutex> lock(mu_);
  auto zero = [](Shard& shard) {
    for (auto& bucket : shard.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0, std::memory_order_relaxed);
  };
  zero(retired_);
  for (auto& shard : shards_) zero(*shard);
  std::lock_guard<std::mutex> exemplar_lock(exemplar_mu_);
  for (auto& exemplar : exemplars_) exemplar = HistogramExemplar{};
}

// --- Registry ---------------------------------------------------------------

Registry& Registry::Global() {
  // Leaked on purpose: instrument cells are folded back by thread_local
  // destructors, which must never outlive the registry.
  static Registry* registry = new Registry();
  return *registry;
}

Registry::Family* Registry::GetFamilyLocked(const std::string& name,
                                            const std::string& help,
                                            Kind kind) {
  for (auto& family : families_) {
    if (family->name == name) return family.get();
  }
  auto family = std::make_unique<Family>();
  family->name = name;
  family->help = help;
  family->kind = kind;
  families_.push_back(std::move(family));
  return families_.back().get();
}

Counter* Registry::GetCounter(const std::string& name,
                              const std::string& help, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = GetFamilyLocked(name, help, Kind::kCounter);
  for (size_t i = 0; i < family->label_sets.size(); ++i) {
    if (family->label_sets[i] == labels) return family->counters[i].get();
  }
  family->label_sets.push_back(labels);
  family->counters.emplace_back(new Counter());
  family->gauges.emplace_back(nullptr);
  family->histograms.emplace_back(nullptr);
  return family->counters.back().get();
}

Gauge* Registry::GetGauge(const std::string& name, const std::string& help,
                          const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = GetFamilyLocked(name, help, Kind::kGauge);
  for (size_t i = 0; i < family->label_sets.size(); ++i) {
    if (family->label_sets[i] == labels) return family->gauges[i].get();
  }
  family->label_sets.push_back(labels);
  family->counters.emplace_back(nullptr);
  family->gauges.emplace_back(new Gauge());
  family->histograms.emplace_back(nullptr);
  return family->gauges.back().get();
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  const std::string& help,
                                  const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* family = GetFamilyLocked(name, help, Kind::kHistogram);
  for (size_t i = 0; i < family->label_sets.size(); ++i) {
    if (family->label_sets[i] == labels) return family->histograms[i].get();
  }
  family->label_sets.push_back(labels);
  family->counters.emplace_back(nullptr);
  family->gauges.emplace_back(nullptr);
  family->histograms.emplace_back(new Histogram());
  return family->histograms.back().get();
}

std::string Registry::Render() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Deterministic output: families by name, instances by rendered labels.
  std::vector<const Family*> ordered;
  ordered.reserve(families_.size());
  for (const auto& family : families_) ordered.push_back(family.get());
  std::sort(ordered.begin(), ordered.end(),
            [](const Family* a, const Family* b) { return a->name < b->name; });

  std::string out;
  for (const Family* family : ordered) {
    out += "# HELP " + family->name + " " + EscapeHelp(family->help) + "\n";
    out += "# TYPE " + family->name + " ";
    switch (family->kind) {
      case Kind::kCounter: out += "counter\n"; break;
      case Kind::kGauge: out += "gauge\n"; break;
      case Kind::kHistogram: out += "histogram\n"; break;
    }
    std::vector<size_t> order(family->label_sets.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [family](size_t a, size_t b) {
      return RenderLabels(family->label_sets[a]) <
             RenderLabels(family->label_sets[b]);
    });
    for (size_t i : order) {
      const Labels& labels = family->label_sets[i];
      switch (family->kind) {
        case Kind::kCounter:
          out += family->name + RenderLabels(labels) + " " +
                 std::to_string(family->counters[i]->Value()) + "\n";
          break;
        case Kind::kGauge:
          out += family->name + RenderLabels(labels) + " " +
                 std::to_string(family->gauges[i]->Value()) + "\n";
          break;
        case Kind::kHistogram: {
          const Histogram& histogram = *family->histograms[i];
          for (int b = 0; b < Histogram::kBucketCount; ++b) {
            std::string le = b == Histogram::kBucketCount - 1
                                 ? "+Inf"
                                 : std::to_string(Histogram::BucketBound(b));
            out += family->name + "_bucket" + RenderLabels(labels, le) + " " +
                   std::to_string(histogram.CumulativeCount(b)) + "\n";
          }
          out += family->name + "_sum" + RenderLabels(labels) + " " +
                 std::to_string(histogram.Sum()) + "\n";
          out += family->name + "_count" + RenderLabels(labels) + " " +
                 std::to_string(histogram.Count()) + "\n";
          break;
        }
      }
    }
  }
  return out;
}

void Registry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& family : families_) {
    for (size_t i = 0; i < family->label_sets.size(); ++i) {
      if (family->counters[i] != nullptr) family->counters[i]->ResetLocked();
      if (family->gauges[i] != nullptr) {
        family->gauges[i]->value_.store(0, std::memory_order_relaxed);
      }
      if (family->histograms[i] != nullptr) {
        family->histograms[i]->ResetLocked();
      }
    }
  }
}

}  // namespace jfeed::obs

#endif  // JFEED_OBS_DISABLED
