#ifndef JFEED_OBS_TRACE_H_
#define JFEED_OBS_TRACE_H_

// Structured tracing for the grading pipeline.
//
// A Span is an RAII scope: construction stamps a monotonic-clock start,
// destruction (or End()) stamps the end and appends one fixed-size record
// to the calling thread's ring buffer. Parents are explicit — pass the
// parent Span to nest under it — or implicit: a Span constructed without a
// parent nests under the thread's innermost live span, which is how a
// `lex` span inside java::Parse lands under the pipeline's `parse` stage
// span without the parser knowing about the pipeline.
//
// Every span belongs to a 128-bit distributed trace (trace_context.h).
// Children inherit the trace of their parent; a root span either mints a
// fresh trace or — via the remote-parent constructor taking a
// TraceContext — adopts one parsed from an incoming `traceparent` header,
// which is how a broker-side routing attempt and the worker-side pipeline
// spans end up on one timeline. Span::context() hands the {trace id, span
// id} pair onward for the next hop.
//
// The tracer is runtime-gated: until Tracer::Enable() runs, constructing a
// Span is one relaxed atomic load and nothing is recorded. Recording is
// per-thread (one uncontended mutex per ring), so tracing a parallel batch
// never serializes workers. ExportChromeJson(pid) renders every recorded
// span as Chrome trace_event complete events ("ph":"X") — the format
// Perfetto and chrome://tracing open directly; timestamps are unix-aligned
// microseconds so exports from different processes (broker + workers)
// splice onto one timeline, `pid` keys the process lane, and cross-thread
// parentage plus the trace id ride in args.
//
// Span names must be string literals (or otherwise outlive the tracer):
// records store the pointer, not a copy. Annotate() attaches a small
// free-form detail string (worker id, retry cause, ...) copied into the
// record.
//
// Compiling with JFEED_OBS=OFF (-DJFEED_OBS_DISABLED) replaces the API
// with inline no-op stubs.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace_context.h"

#ifndef JFEED_OBS_DISABLED
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#endif

namespace jfeed::obs {

/// One completed span, as stored in a thread ring and returned by
/// Tracer::Snapshot(). Timestamps are nanoseconds since the tracer epoch.
struct SpanRecord {
  const char* name = "";
  uint64_t id = 0;
  uint64_t parent_id = 0;   ///< 0 = root span.
  uint64_t trace_hi = 0;    ///< 128-bit trace id this span belongs to.
  uint64_t trace_lo = 0;
  uint32_t tid = 0;         ///< Tracer-assigned thread index, dense from 1.
  int64_t start_ns = 0;
  int64_t end_ns = 0;
  std::string detail;       ///< Annotate() payload; empty for most spans.
};

#ifdef JFEED_OBS_DISABLED

// ---------------------------------------------------------------------------
// Compile-time-disabled stubs.
// ---------------------------------------------------------------------------

class Span;

class Tracer {
 public:
  static constexpr size_t kDefaultRingCapacity = size_t{1} << 15;
  static Tracer& Global() {
    static Tracer tracer;
    return tracer;
  }
  void Enable(size_t = kDefaultRingCapacity) {}
  void Disable() {}
  bool enabled() const { return false; }
  void Clear() {}
  std::vector<SpanRecord> Snapshot() const { return {}; }
  std::string ExportChromeJson(int = 1, const std::string& = "") const {
    return "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}\n";
  }
  int64_t OpenSpanCount() const { return 0; }
  int64_t DroppedCount() const { return 0; }
};

class Span {
 public:
  explicit Span(const char*) {}
  Span(const char*, const Span&) {}
  Span(const char*, const TraceContext&) {}
  ~Span() = default;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  void End() {}
  void Annotate(const std::string&) {}
  uint64_t id() const { return 0; }
  bool recording() const { return false; }
  TraceContext context() const { return TraceContext{}; }
};

#else  // JFEED_OBS_DISABLED

class Span;

/// Process-wide trace recorder: a registry of per-thread span rings plus
/// the master enable switch and the export/snapshot surface.
class Tracer {
 public:
  static constexpr size_t kDefaultRingCapacity = size_t{1} << 15;

  static Tracer& Global();

  /// Starts recording. `ring_capacity` bounds the number of retained spans
  /// per thread; when a ring is full the oldest span is overwritten (and
  /// DroppedCount() grows). Applies to rings created after this call;
  /// already-registered rings keep their capacity. Idempotent.
  void Enable(size_t ring_capacity = kDefaultRingCapacity);

  /// Stops recording new spans. Spans already begun still record their end
  /// (their ring slot exists); recorded spans remain exportable.
  void Disable();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Drops every recorded span and resets the dropped counter. Live spans
  /// are unaffected (they record on End as usual).
  void Clear();

  /// Every completed span across all threads, sorted by start time.
  std::vector<SpanRecord> Snapshot() const;

  /// Chrome trace_event JSON (object form, "traceEvents" array of "ph":"X"
  /// complete events; ts/dur in unix-aligned microseconds, comparable
  /// across processes). `pid` labels every event so multi-process exports
  /// federate without lane collisions; a non-empty `process_name` prepends
  /// a process_name metadata event Perfetto shows as the lane title. Open
  /// in Perfetto (https://ui.perfetto.dev) or chrome://tracing.
  std::string ExportChromeJson(int pid = 1,
                               const std::string& process_name = "") const;

  /// Number of spans begun but not yet ended — 0 after any well-nested
  /// unit of work, which is what the chaos suite asserts after a fault
  /// campaign (no fault path may leak an open span).
  int64_t OpenSpanCount() const {
    return open_spans_.load(std::memory_order_relaxed);
  }

  /// Spans overwritten by ring wrap-around since the last Clear().
  int64_t DroppedCount() const;

 private:
  friend class Span;

  struct Ring {
    std::mutex mu;
    std::vector<SpanRecord> records;  ///< Ring storage, capacity-bounded.
    size_t capacity = kDefaultRingCapacity;
    size_t next = 0;        ///< Overwrite position once full.
    int64_t dropped = 0;    ///< Records overwritten by wrap-around.
    uint32_t tid = 0;
  };

  Tracer();

  /// The calling thread's ring, registered on first use. The registry holds
  /// a shared_ptr, so records survive thread exit until Clear().
  Ring& ThreadRing();

  int64_t NowNs() const;
  uint64_t NextSpanId() {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordSpan(SpanRecord record);

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_span_id_{1};
  std::atomic<int64_t> open_spans_{0};
  std::atomic<uint32_t> next_tid_{1};
  std::chrono::steady_clock::time_point epoch_;
  int64_t unix_epoch_us_ = 0;  ///< Unix time of epoch_, for export ts.
  size_t ring_capacity_ = kDefaultRingCapacity;
  mutable std::mutex mu_;  ///< Guards rings_ and ring_capacity_.
  std::vector<std::shared_ptr<Ring>> rings_;
};

/// RAII trace span. See the file comment for parenting rules.
class Span {
 public:
  /// Begins a span nested under the thread's innermost live span (root if
  /// none; a root mints a fresh trace id). Records nothing when the tracer
  /// is disabled.
  explicit Span(const char* name);
  /// Begins a span with an explicit parent handle, on the parent's trace.
  /// A non-recording parent (tracer was off when it began) yields a root.
  Span(const char* name, const Span& parent);
  /// Remote-parent constructor: begins a span on the trace named by a
  /// context parsed from an incoming traceparent header, parented under
  /// remote.span_id. An invalid context degrades to the implicit-parent
  /// rule above, so callers can pass a default TraceContext untested.
  Span(const char* name, const TraceContext& remote);
  ~Span() { End(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Ends the span early; idempotent (the destructor then does nothing).
  void End();

  /// Attaches a detail string to the record (appended, space-separated,
  /// when called more than once). No-op on a non-recording span.
  void Annotate(const std::string& detail);

  /// 0 when the span is not recording (tracer disabled at construction).
  uint64_t id() const { return id_; }
  bool recording() const { return id_ != 0; }

  /// This span's {trace id, span id} — the context to propagate to the
  /// next hop. Invalid (all-zero) when not recording.
  TraceContext context() const {
    return TraceContext{trace_hi_, trace_lo_, id_};
  }

 private:
  void Begin(const char* name, uint64_t parent_id, uint64_t trace_hi,
             uint64_t trace_lo);

  const char* name_ = "";
  uint64_t id_ = 0;
  uint64_t parent_id_ = 0;
  uint64_t trace_hi_ = 0;
  uint64_t trace_lo_ = 0;
  int64_t start_ns_ = 0;
  std::string detail_;
  const Span* prev_current_ = nullptr;
  bool ended_ = true;
};

#endif  // JFEED_OBS_DISABLED

}  // namespace jfeed::obs

#endif  // JFEED_OBS_TRACE_H_
