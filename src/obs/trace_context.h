#ifndef JFEED_OBS_TRACE_CONTEXT_H_
#define JFEED_OBS_TRACE_CONTEXT_H_

// W3C trace-context propagation for the grading fleet.
//
// A TraceContext names one distributed trace: a 128-bit trace id minted at
// the outermost entry point (broker POST /grade, jfeedd /grade, or the
// grade CLI) plus the 64-bit id of the span that is the parent on the
// remote side of a hop. It travels between processes as a `traceparent`
// HTTP header in the W3C Trace Context wire format:
//
//   00-<32 lowercase hex trace-id>-<16 lowercase hex parent-id>-<2 hex flags>
//
// ParseTraceparent applies the W3C validation rules: the version octet
// must be two lowercase hex digits and not "ff"; version 00 headers must
// be exactly 55 characters; headers from well-formed FUTURE versions are
// accepted by reading the version-00 prefix (forward compatibility per
// spec); an all-zero trace id or parent id is invalid. Callers that
// receive an invalid header mint a fresh root instead of failing the
// request — ContextFromHeader wraps that policy and counts rejects on
// jfeed_trace_context_invalid_total.
//
// Unlike the span machinery in trace.h, everything here is plain string
// and arithmetic code with no recording side effects, so it is available
// unchanged in both JFEED_OBS modes (under JFEED_OBS_DISABLED the invalid
// counter is the metrics stub and increments vanish).

#include <cstdint>
#include <string>

namespace jfeed::obs {

struct TraceContext {
  uint64_t trace_hi = 0;  ///< High 64 bits of the 128-bit trace id.
  uint64_t trace_lo = 0;  ///< Low 64 bits of the 128-bit trace id.
  uint64_t span_id = 0;   ///< Remote parent span id; 0 = root of the trace.

  /// True when this names a trace at all (W3C forbids all-zero trace ids).
  bool valid() const { return (trace_hi | trace_lo) != 0; }
};

/// Mints a fresh root context: a random non-zero 128-bit trace id with no
/// parent span. Thread-safe; each thread advances its own generator.
TraceContext MintTraceContext();

/// Lowercase 32-hex-digit trace id, e.g. "4bf92f3577b34da6a3ce929d0e0e4736".
std::string TraceIdHex(const TraceContext& ctx);

/// Lowercase 16-hex-digit span id.
std::string SpanIdHex(uint64_t span_id);

/// Renders `ctx` as a version-00 traceparent header value with the
/// sampled flag set. `ctx.span_id` is the parent-id field; W3C forbids an
/// all-zero parent, so a root context (span_id == 0) is rendered with the
/// trace id's low word standing in as the parent id.
std::string FormatTraceparent(const TraceContext& ctx);

/// Parses a traceparent header value. Returns true and fills `out` when
/// the header is valid under the rules in the file comment; returns false
/// (leaving `out` untouched) otherwise.
bool ParseTraceparent(const std::string& header, TraceContext* out);

/// Adoption policy for HTTP entry points: parse `header` if present and
/// valid; otherwise mint a fresh root. A non-empty header that fails
/// validation increments jfeed_trace_context_invalid_total — the grade
/// itself is never 4xx-ed over a bad traceparent.
TraceContext ContextFromHeader(const std::string& header);

}  // namespace jfeed::obs

#endif  // JFEED_OBS_TRACE_CONTEXT_H_
