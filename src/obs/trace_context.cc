#include "obs/trace_context.h"

#include <chrono>
#include <cstdio>
#include <random>

#include "obs/metrics.h"

namespace jfeed::obs {
namespace {

// xoshiro-style splitmix advance: cheap, full-period, and seeded per
// thread from entropy + clock so two workers never mint colliding traces.
uint64_t NextRandom() {
  thread_local uint64_t state = [] {
    std::random_device rd;
    uint64_t seed = (static_cast<uint64_t>(rd()) << 32) ^ rd();
    seed ^= static_cast<uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    return seed | 1;
  }();
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

bool IsLowerHex(char c) {
  return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
}

/// Parses exactly `digits` lowercase hex characters at `s`; returns false
/// on any uppercase or non-hex character (W3C requires lowercase).
bool ParseHexField(const char* s, int digits, uint64_t* out) {
  uint64_t value = 0;
  for (int i = 0; i < digits; ++i) {
    char c = s[i];
    if (!IsLowerHex(c)) return false;
    value = (value << 4) | static_cast<uint64_t>(
                               c <= '9' ? c - '0' : c - 'a' + 10);
  }
  *out = value;
  return true;
}

}  // namespace

TraceContext MintTraceContext() {
  TraceContext ctx;
  do {
    ctx.trace_hi = NextRandom();
    ctx.trace_lo = NextRandom();
  } while ((ctx.trace_hi | ctx.trace_lo) == 0);
  return ctx;
}

std::string TraceIdHex(const TraceContext& ctx) {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(ctx.trace_hi),
                static_cast<unsigned long long>(ctx.trace_lo));
  return buf;
}

std::string SpanIdHex(uint64_t span_id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(span_id));
  return buf;
}

std::string FormatTraceparent(const TraceContext& ctx) {
  uint64_t parent = ctx.span_id != 0 ? ctx.span_id : ctx.trace_lo;
  char buf[56];
  std::snprintf(buf, sizeof(buf), "00-%016llx%016llx-%016llx-01",
                static_cast<unsigned long long>(ctx.trace_hi),
                static_cast<unsigned long long>(ctx.trace_lo),
                static_cast<unsigned long long>(parent));
  return buf;
}

bool ParseTraceparent(const std::string& header, TraceContext* out) {
  // Layout: vv-<32 hex>-<16 hex>-ff  → 55 chars for version 00; future
  // versions may append "-..." suffixes but must keep this prefix.
  constexpr size_t kV0Len = 55;
  if (header.size() < kV0Len) return false;
  const char* s = header.c_str();

  uint64_t version = 0;
  if (!ParseHexField(s, 2, &version)) return false;
  if (version == 0xff) return false;  // Explicitly forbidden by the spec.
  if (version == 0) {
    if (header.size() != kV0Len) return false;
  } else {
    // Future version: read the version-00 prefix; anything longer must
    // continue with a dash-separated suffix we ignore.
    if (header.size() > kV0Len && s[kV0Len] != '-') return false;
  }
  if (s[2] != '-' || s[35] != '-' || s[52] != '-') return false;

  TraceContext ctx;
  uint64_t flags = 0;
  if (!ParseHexField(s + 3, 16, &ctx.trace_hi)) return false;
  if (!ParseHexField(s + 19, 16, &ctx.trace_lo)) return false;
  if (!ParseHexField(s + 36, 16, &ctx.span_id)) return false;
  if (!ParseHexField(s + 53, 2, &flags)) return false;
  if ((ctx.trace_hi | ctx.trace_lo) == 0) return false;  // All-zero trace.
  if (ctx.span_id == 0) return false;                    // All-zero parent.

  *out = ctx;
  return true;
}

TraceContext ContextFromHeader(const std::string& header) {
  if (!header.empty()) {
    TraceContext ctx;
    if (ParseTraceparent(header, &ctx)) return ctx;
    Registry::Global()
        .GetCounter("jfeed_trace_context_invalid_total",
                    "traceparent headers rejected by W3C validation", {})
        ->Increment();
  }
  return MintTraceContext();
}

}  // namespace jfeed::obs
