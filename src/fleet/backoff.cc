#include "fleet/backoff.h"

namespace jfeed::fleet {

namespace {

/// xorshift64: small, fast, and good enough for retry jitter. Never yields
/// state 0, so seed 0 is nudged to a fixed constant.
uint64_t NextRandom(uint64_t* state) {
  uint64_t x = *state;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  *state = x;
  return x;
}

}  // namespace

Backoff::Backoff(BackoffPolicy policy, uint64_t seed)
    : policy_(policy), rng_state_(seed != 0 ? seed : 0x9e3779b97f4a7c15ull) {
  if (policy_.base_ms < 1) policy_.base_ms = 1;
  if (policy_.max_ms < policy_.base_ms) policy_.max_ms = policy_.base_ms;
  if (policy_.jitter < 0.0) policy_.jitter = 0.0;
  if (policy_.jitter >= 1.0) policy_.jitter = 0.99;
}

int64_t Backoff::NextDelayMs() {
  // Saturating double: shifting past max_ms stops growing instead of
  // overflowing for large attempt counts.
  int64_t delay = policy_.base_ms;
  for (int i = 0; i < attempt_ && delay < policy_.max_ms; ++i) {
    delay *= 2;
  }
  if (delay > policy_.max_ms) delay = policy_.max_ms;
  ++attempt_;
  if (policy_.jitter > 0.0) {
    // Uniform in [delay * (1 - j), delay * (1 + j)], never below 1 ms.
    double unit = static_cast<double>(NextRandom(&rng_state_) >> 11) /
                  static_cast<double>(1ull << 53);
    double spread = static_cast<double>(delay) * policy_.jitter;
    double jittered =
        static_cast<double>(delay) - spread + unit * 2.0 * spread;
    delay = jittered < 1.0 ? 1 : static_cast<int64_t>(jittered);
  }
  return delay;
}

}  // namespace jfeed::fleet
