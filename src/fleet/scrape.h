#ifndef JFEED_FLEET_SCRAPE_H_
#define JFEED_FLEET_SCRAPE_H_

// Fleet-wide scrape aggregation: the broker's /metrics must show one
// coherent Prometheus exposition for the whole fleet, not force operators
// to discover and scrape N ephemeral worker ports. MergeWorkerMetrics
// rewrites each worker's exposition text so every sample carries a
// worker="<id>" label, then regroups samples family by family (Prometheus
// requires each family's samples to be contiguous under one # HELP/# TYPE
// block — naive concatenation of two workers' dumps is invalid exposition).
//
// Families appear in first-seen order across workers, samples within a
// family in (worker order, original order) — deterministic output for a
// deterministic input, same as Registry::Render().

#include <string>
#include <utility>
#include <vector>

namespace jfeed::fleet {

/// One worker's scrape: {worker id label value, exposition text}.
using WorkerScrape = std::pair<std::string, std::string>;

/// Merges per-worker Prometheus text expositions into one, injecting
/// worker="<id>" as the first label of every sample line. # HELP/# TYPE
/// comments are kept from the first worker that emitted the family;
/// unparseable lines are dropped rather than corrupting the output.
std::string MergeWorkerMetrics(const std::vector<WorkerScrape>& scrapes);

/// Splices Chrome trace_event documents ({"traceEvents":[...]}, the
/// obs::Tracer::ExportChromeJson shape) into one document — the broker's
/// /tracez federation. Each export already carries its own pid (the broker
/// passes ?pid=<worker id + 1> when scraping) and unix-aligned timestamps,
/// so one Perfetto load of the result shows broker routing spans and every
/// worker's pipeline spans on a single timeline. Exports without a
/// traceEvents array (a worker mid-restart answered garbage) are skipped.
std::string StitchChromeTraces(const std::vector<std::string>& exports);

}  // namespace jfeed::fleet

#endif  // JFEED_FLEET_SCRAPE_H_
