#include "fleet/http_client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

namespace jfeed::fleet {

namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// RAII socket close.
struct Fd {
  int fd = -1;
  ~Fd() {
    if (fd >= 0) ::close(fd);
  }
};

/// Waits until `fd` is ready for `events` or the deadline passes. Returns
/// OK on ready, kTimeout past the deadline, kUnavailable on poll error.
Status WaitReady(int fd, short events, int64_t deadline_ms_abs) {
  for (;;) {
    int64_t remaining = deadline_ms_abs - NowMs();
    if (remaining <= 0) return Status::Timeout("worker I/O deadline");
    pollfd p{};
    p.fd = fd;
    p.events = events;
    int n = ::poll(&p, 1, static_cast<int>(remaining));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("poll(): ") +
                                 std::strerror(errno));
    }
    if (n == 0) return Status::Timeout("worker I/O deadline");
    return Status::OK();
  }
}

}  // namespace

Result<HttpReply> Fetch(uint16_t port, const std::string& method,
                        const std::string& target, const std::string& body,
                        int64_t deadline_ms) {
  return Fetch(port, method, target, body, {}, deadline_ms);
}

Result<HttpReply> Fetch(uint16_t port, const std::string& method,
                        const std::string& target, const std::string& body,
                        const HttpHeaders& extra_headers,
                        int64_t deadline_ms) {
  const int64_t deadline_abs = NowMs() + deadline_ms;

  Fd sock;
  sock.fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (sock.fd < 0) {
    return Status::Unavailable(std::string("socket(): ") +
                               std::strerror(errno));
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(sock.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    if (errno != EINPROGRESS) {
      return Status::Unavailable(std::string("connect(): ") +
                                 std::strerror(errno));
    }
    Status ready = WaitReady(sock.fd, POLLOUT, deadline_abs);
    if (!ready.ok()) return ready;
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(sock.fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      return Status::Unavailable(std::string("connect(): ") +
                                 std::strerror(err));
    }
  }

  std::string request = method + " " + target + " HTTP/1.1\r\n";
  request += "Host: 127.0.0.1\r\n";
  for (const auto& [name, value] : extra_headers) {
    request += name + ": " + value + "\r\n";
  }
  if (!body.empty()) {
    request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  request += "Connection: close\r\n\r\n";
  request += body;

  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(sock.fd, request.data() + sent, request.size() - sent,
                       MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      Status ready = WaitReady(sock.fd, POLLOUT, deadline_abs);
      if (!ready.ok()) return ready;
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::Unavailable(std::string("send(): ") +
                               std::strerror(errno));
  }

  // Read until the peer closes (Connection: close framing) or the header
  // block plus Content-Length bytes have arrived, whichever is first.
  std::string response;
  size_t header_end = std::string::npos;
  size_t body_size = std::string::npos;  // Unknown until headers parsed.
  char buffer[8192];
  for (;;) {
    ssize_t n = ::recv(sock.fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      response.append(buffer, static_cast<size_t>(n));
    } else if (n == 0) {
      break;  // Peer closed.
    } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
      Status ready = WaitReady(sock.fd, POLLIN, deadline_abs);
      if (!ready.ok()) return ready;
      continue;
    } else if (errno == EINTR) {
      continue;
    } else {
      return Status::Unavailable(std::string("recv(): ") +
                                 std::strerror(errno));
    }

    if (header_end == std::string::npos) {
      header_end = response.find("\r\n\r\n");
      if (header_end != std::string::npos) {
        size_t cl = response.find("Content-Length:");
        if (cl == std::string::npos) cl = response.find("content-length:");
        if (cl != std::string::npos && cl < header_end) {
          body_size = static_cast<size_t>(
              std::strtoull(response.c_str() + cl + 15, nullptr, 10));
        }
      }
    }
    if (header_end != std::string::npos && body_size != std::string::npos &&
        response.size() >= header_end + 4 + body_size) {
      break;  // Full framed response in hand; no need to await the close.
    }
  }

  if (header_end == std::string::npos) {
    header_end = response.find("\r\n\r\n");
  }
  if (header_end == std::string::npos) {
    return Status::Unavailable(
        "connection closed before response headers completed");
  }
  HttpReply reply;
  if (std::sscanf(response.c_str(), "HTTP/1.1 %d", &reply.status) != 1) {
    return Status::Internal("malformed HTTP status line from worker");
  }
  size_t status_line_end = response.find("\r\n");
  if (status_line_end != std::string::npos &&
      status_line_end + 2 <= header_end) {
    reply.headers =
        response.substr(status_line_end + 2, header_end - status_line_end - 2);
  }
  std::string payload = response.substr(header_end + 4);
  if (body_size != std::string::npos) {
    if (payload.size() < body_size) {
      return Status::Unavailable("connection closed mid-response");
    }
    payload.resize(body_size);
  }
  reply.body = std::move(payload);
  return reply;
}

std::string HeaderValue(const std::string& headers, const std::string& name) {
  size_t pos = 0;
  while (pos < headers.size()) {
    size_t eol = headers.find("\r\n", pos);
    if (eol == std::string::npos) eol = headers.size();
    size_t colon = headers.find(':', pos);
    if (colon != std::string::npos && colon < eol &&
        colon - pos == name.size()) {
      bool match = true;
      for (size_t i = 0; i < name.size(); ++i) {
        char a = headers[pos + i];
        char b = name[i];
        if (a >= 'A' && a <= 'Z') a = static_cast<char>(a - 'A' + 'a');
        if (b >= 'A' && b <= 'Z') b = static_cast<char>(b - 'A' + 'a');
        if (a != b) {
          match = false;
          break;
        }
      }
      if (match) {
        size_t start = colon + 1;
        while (start < eol && (headers[start] == ' ' || headers[start] == '\t')) {
          ++start;
        }
        size_t end = eol;
        while (end > start &&
               (headers[end - 1] == ' ' || headers[end - 1] == '\t' ||
                headers[end - 1] == '\r')) {
          --end;
        }
        return headers.substr(start, end - start);
      }
    }
    pos = eol + 2;
  }
  return "";
}

}  // namespace jfeed::fleet
