#include "fleet/scrape.h"

#include <map>

namespace jfeed::fleet {

namespace {

/// Metric name of a sample line: the identifier before '{' or ' '. For
/// family grouping, histogram series suffixes (_bucket/_sum/_count) must
/// collapse onto their base family, matching how # TYPE names them.
std::string FamilyName(const std::string& sample_name) {
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    size_t n = std::string(suffix).size();
    if (sample_name.size() > n &&
        sample_name.compare(sample_name.size() - n, n, suffix) == 0) {
      return sample_name.substr(0, sample_name.size() - n);
    }
  }
  return sample_name;
}

struct Family {
  std::vector<std::string> comments;  ///< # HELP / # TYPE, first worker's.
  std::vector<std::string> samples;   ///< Rewritten sample lines.
};

}  // namespace

std::string StitchChromeTraces(const std::vector<std::string>& exports) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const std::string& doc : exports) {
    // The array body sits between "traceEvents":[ and the document's last
    // ']' — trace events contain no ']' outside string values, and any
    // inside one precedes the array close, so rfind is the matching brace.
    size_t open = doc.find("\"traceEvents\":[");
    if (open == std::string::npos) continue;
    size_t start = open + 15;
    size_t close = doc.rfind(']');
    if (close == std::string::npos || close < start) continue;
    std::string body = doc.substr(start, close - start);
    if (body.find_first_not_of(" \t\r\n") == std::string::npos) continue;
    if (!first) out += ",";
    first = false;
    out += body;
  }
  out += "\n]}\n";
  return out;
}

std::string MergeWorkerMetrics(const std::vector<WorkerScrape>& scrapes) {
  std::vector<std::string> family_order;
  std::map<std::string, Family> families;

  for (const auto& [worker, text] : scrapes) {
    size_t pos = 0;
    while (pos < text.size()) {
      size_t eol = text.find('\n', pos);
      if (eol == std::string::npos) eol = text.size();
      std::string line = text.substr(pos, eol - pos);
      pos = eol + 1;
      if (line.empty()) continue;

      if (line[0] == '#') {
        // "# HELP name ..." / "# TYPE name ..." — third token is the name.
        size_t first = line.find(' ');
        size_t second =
            first == std::string::npos ? first : line.find(' ', first + 1);
        size_t third =
            second == std::string::npos ? second : line.find(' ', second + 1);
        if (second == std::string::npos) continue;
        std::string name = line.substr(
            second + 1,
            (third == std::string::npos ? line.size() : third) - second - 1);
        if (name.empty()) continue;
        auto [it, inserted] = families.try_emplace(name);
        if (inserted) family_order.push_back(name);
        // Keep the comment block of the first worker that scraped it.
        bool already = false;
        for (const auto& c : it->second.comments) already |= c == line;
        if (!already && it->second.samples.empty()) {
          it->second.comments.push_back(line);
        }
        continue;
      }

      // Sample line: name{labels} value  |  name value.
      size_t brace = line.find('{');
      size_t space = line.find(' ');
      if (space == std::string::npos) continue;  // No value: drop.
      std::string rewritten;
      std::string sample_name;
      if (brace != std::string::npos && brace < space) {
        sample_name = line.substr(0, brace);
        rewritten = sample_name + "{worker=\"" + worker + "\"," +
                    line.substr(brace + 1);
        // An empty label set "name{} value" would leave a dangling comma.
        size_t comma = rewritten.find(",}");
        if (comma != std::string::npos) rewritten.erase(comma, 1);
      } else {
        sample_name = line.substr(0, space);
        rewritten = sample_name + "{worker=\"" + worker + "\"}" +
                    line.substr(space);
      }
      if (sample_name.empty()) continue;
      std::string name = FamilyName(sample_name);
      auto [it, inserted] = families.try_emplace(name);
      if (inserted) family_order.push_back(name);
      it->second.samples.push_back(std::move(rewritten));
    }
  }

  std::string out;
  for (const auto& name : family_order) {
    const Family& family = families[name];
    for (const auto& comment : family.comments) {
      out += comment;
      out += "\n";
    }
    for (const auto& sample : family.samples) {
      out += sample;
      out += "\n";
    }
  }
  return out;
}

}  // namespace jfeed::fleet
