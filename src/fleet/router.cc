#include "fleet/router.h"

#include <algorithm>
#include <chrono>

#include "fleet/http_client.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/fault.h"

namespace jfeed::fleet {

namespace {

/// One grade attempt against a worker. A Result-returning function so the
/// fleet fault points compose with JFEED_FAULT_POINT: `fleet.worker_grade`
/// simulates the worker dying before it answers, `fleet.slow_response` a
/// reply that arrives past the deadline (campaign `code` picks the Status).
Result<HttpReply> AttemptGrade(uint16_t port, const std::string& body,
                               const HttpHeaders& headers,
                               int64_t deadline_ms) {
  JFEED_FAULT_POINT(fault::points::kFleetWorkerGrade);
  JFEED_FAULT_POINT(fault::points::kFleetSlowResponse);
  return Fetch(port, "POST", "/grade", body, headers, deadline_ms);
}

/// One health probe against a worker, with its own fault point so chaos
/// tests can blackhole probes without touching grade traffic.
Result<HttpReply> AttemptProbe(uint16_t port, int64_t deadline_ms) {
  JFEED_FAULT_POINT(fault::points::kFleetProbe);
  return Fetch(port, "GET", "/healthz", "", deadline_ms);
}

obs::HttpResponse JsonError(int status, const std::string& message) {
  obs::HttpResponse response;
  response.status = status;
  response.content_type = "application/json";
  response.body = "{\"error\":\"" + message + "\"}\n";
  return response;
}

obs::Counter* RequestsTotal(const char* result) {
  return obs::Registry::Global().GetCounter(
      "jfeed_fleet_requests_total",
      "Grade requests seen by the broker, by final result.",
      {{"result", result}});
}

}  // namespace

const char* WorkerHealthName(WorkerHealth health) {
  switch (health) {
    case WorkerHealth::kDown:
      return "down";
    case WorkerHealth::kDegraded:
      return "degraded";
    case WorkerHealth::kUp:
      return "up";
  }
  return "unknown";
}

int WorkerHealthValue(WorkerHealth health) {
  switch (health) {
    case WorkerHealth::kDown:
      return 0;
    case WorkerHealth::kDegraded:
      return 1;
    case WorkerHealth::kUp:
      return 2;
  }
  return 0;
}

Router::Router(RouterPolicy policy, uint64_t seed)
    : policy_(policy), seed_(seed) {
  if (policy_.max_attempts < 1) policy_.max_attempts = 1;
  if (policy_.down_after_probe_failures < 1) {
    policy_.down_after_probe_failures = 1;
  }
}

Router::~Router() { Stop(); }

int64_t Router::NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Router::AddWorker(int id, uint16_t port) {
  std::lock_guard<std::mutex> lock(mu_);
  Worker worker;
  worker.id = id;
  worker.port = port;
  worker.breaker = std::make_unique<CircuitBreaker>(policy_.breaker);
  PublishWorkerGauges(worker);
  workers_.push_back(std::move(worker));
  obs::Registry::Global()
      .GetGauge("jfeed_fleet_workers", "Workers registered with the broker.")
      ->Set(static_cast<int64_t>(workers_.size()));
}

void Router::SetWorkerPort(int id, uint16_t port) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Worker& worker : workers_) {
    if (worker.id != id) continue;
    worker.port = port;
    ++worker.generation;
    worker.health = WorkerHealth::kDown;
    worker.probe_failures = 0;
    // Fresh process, fresh breaker: the restart already paid the penalty
    // (supervisor backoff); probing re-admits the worker on first contact.
    worker.breaker = std::make_unique<CircuitBreaker>(policy_.breaker);
    PublishWorkerGauges(worker);
    return;
  }
}

void Router::SetWorkerDown(int id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Worker& worker : workers_) {
    if (worker.id != id) continue;
    ++worker.generation;
    worker.health = WorkerHealth::kDown;
    PublishWorkerGauges(worker);
    return;
  }
}

void Router::Start() {
  ProbeOnce();
  std::lock_guard<std::mutex> lock(probe_mu_);
  if (probe_thread_.joinable()) return;
  probe_stop_ = false;
  probe_thread_ = std::thread(&Router::ProbeLoop, this);
}

void Router::Stop() {
  {
    std::lock_guard<std::mutex> lock(probe_mu_);
    probe_stop_ = true;
  }
  probe_cv_.notify_all();
  if (probe_thread_.joinable()) probe_thread_.join();
}

void Router::ProbeLoop() {
  std::unique_lock<std::mutex> lock(probe_mu_);
  while (!probe_stop_) {
    probe_cv_.wait_for(lock,
                       std::chrono::milliseconds(policy_.probe_interval_ms),
                       [this] { return probe_stop_; });
    if (probe_stop_) return;
    lock.unlock();
    ProbeOnce();
    lock.lock();
  }
}

void Router::ProbeOnce() {
  size_t count;
  {
    std::lock_guard<std::mutex> lock(mu_);
    count = workers_.size();
  }
  for (size_t i = 0; i < count; ++i) ProbeWorker(i);
}

void Router::ProbeWorker(size_t index) {
  int id;
  uint16_t port;
  int64_t generation;
  bool half_open_trial = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (index >= workers_.size()) return;
    Worker& worker = workers_[index];
    id = worker.id;
    port = worker.port;
    generation = worker.generation;
    // A tripped breaker only re-admits a worker through a probe: Allow()
    // hands the probe the single half-open trial. While the cooldown still
    // runs there is nothing to learn — skip the network round-trip.
    BreakerState state = worker.breaker->state();
    if (state != BreakerState::kClosed) {
      if (!worker.breaker->Allow(NowMs())) {
        PublishWorkerGauges(worker);
        return;
      }
      half_open_trial = true;
      PublishWorkerGauges(worker);
    }
  }

  // Network I/O happens outside the router lock.
  Result<HttpReply> reply = AttemptProbe(port, policy_.probe_deadline_ms);

  std::lock_guard<std::mutex> lock(mu_);
  if (index >= workers_.size()) return;
  Worker& worker = workers_[index];
  if (worker.id != id || worker.generation != generation) return;

  if (reply.ok()) {
    worker.probe_failures = 0;
    // Any well-formed HTTP answer proves the transport: it resolves a
    // half-open trial as success even when the worker reports 503
    // (draining/saturated is a routing fact, not a breaker fact).
    if (half_open_trial) worker.breaker->RecordSuccess();
    worker.health = reply.value().status == 200 ? WorkerHealth::kUp
                                                : WorkerHealth::kDegraded;
  } else {
    obs::Registry::Global()
        .GetCounter("jfeed_fleet_probe_failures_total",
                    "Health probes that failed at the transport level.",
                    {{"worker", std::to_string(id)}})
        ->Increment();
    ++worker.probe_failures;
    if (worker.probe_failures >= policy_.down_after_probe_failures) {
      worker.health = WorkerHealth::kDown;
    }
    int64_t trips_before = worker.breaker->trips();
    worker.breaker->RecordFailure(NowMs());
    int64_t tripped = worker.breaker->trips() - trips_before;
    if (tripped > 0) {
      obs::Registry::Global()
          .GetCounter("jfeed_fleet_breaker_trips_total",
                      "Circuit-breaker transitions into the open state.",
                      {{"worker", std::to_string(id)}})
          ->Increment(tripped);
    }
  }
  PublishWorkerGauges(worker);
}

bool Router::PickWorker(const std::vector<int>& tried, int* id,
                        uint16_t* port, int64_t* generation) {
  std::lock_guard<std::mutex> lock(mu_);
  if (workers_.empty()) return false;
  size_t n = workers_.size();
  // Two passes from the round-robin cursor: first prefer routable workers
  // this request has not tried yet, then accept a retried one — retrying
  // the same worker beats failing the student outright.
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t step = 0; step < n; ++step) {
      Worker& worker = workers_[(rr_next_ + step) % n];
      if (worker.health != WorkerHealth::kUp) continue;
      if (worker.breaker->state() != BreakerState::kClosed) continue;
      bool already_tried = std::find(tried.begin(), tried.end(), worker.id) !=
                           tried.end();
      if (pass == 0 && already_tried) continue;
      *id = worker.id;
      *port = worker.port;
      *generation = worker.generation;
      rr_next_ = (rr_next_ + step + 1) % n;
      return true;
    }
  }
  return false;
}

void Router::RecordAttemptOutcome(int id, int64_t generation, bool success) {
  std::lock_guard<std::mutex> lock(mu_);
  for (Worker& worker : workers_) {
    if (worker.id != id) continue;
    // The attempt raced a restart: its outcome describes a process that no
    // longer exists, so it must not poison (or absolve) the fresh one.
    if (worker.generation != generation) return;
    if (success) {
      worker.breaker->RecordSuccess();
    } else {
      int64_t trips_before = worker.breaker->trips();
      worker.breaker->RecordFailure(NowMs());
      int64_t tripped = worker.breaker->trips() - trips_before;
      if (tripped > 0) {
        obs::Registry::Global()
            .GetCounter("jfeed_fleet_breaker_trips_total",
                        "Circuit-breaker transitions into the open state.",
                        {{"worker", std::to_string(id)}})
            ->Increment(tripped);
      }
    }
    PublishWorkerGauges(worker);
    return;
  }
}

void Router::PublishWorkerGauges(const Worker& worker) {
  obs::Labels labels{{"worker", std::to_string(worker.id)}};
  obs::Registry::Global()
      .GetGauge("jfeed_fleet_worker_state",
                "Probed worker health (0 down, 1 degraded, 2 up).", labels)
      ->Set(WorkerHealthValue(worker.health));
  obs::Registry::Global()
      .GetGauge("jfeed_fleet_breaker_state",
                "Per-worker circuit breaker (0 closed, 1 half_open, 2 open).",
                labels)
      ->Set(BreakerStateValue(worker.breaker->state()));
}

obs::HttpResponse Router::RouteGrade(const std::string& body,
                                     const obs::TraceContext& ctx) {
  // The whole routing episode is one span on the request's trace; each
  // attempt below is a child, so a retry renders as sibling attempts.
  obs::Span route_span("fleet.route", ctx);
  int64_t started_us = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now().time_since_epoch())
                           .count();
  auto record_duration = [started_us] {
    int64_t ended_us = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now().time_since_epoch())
                           .count();
    obs::Registry::Global()
        .GetHistogram("jfeed_fleet_request_duration_us",
                      "Broker-side grade request latency, microseconds.")
        ->Record(ended_us - started_us);
  };

  // Queue-depth shedding: beyond the in-flight cap the fleet answers fast
  // with a retry hint instead of queueing requests into a stall.
  if (inflight_.fetch_add(1, std::memory_order_acq_rel) >=
      policy_.max_inflight) {
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    obs::Registry::Global()
        .GetCounter("jfeed_fleet_shed_total",
                    "Requests shed with 503 + Retry-After.")
        ->Increment();
    RequestsTotal("shed")->Increment();
    record_duration();
    obs::HttpResponse response =
        JsonError(503, "grading fleet at capacity; retry shortly");
    response.headers.emplace_back("Retry-After",
                                  std::to_string(policy_.retry_after_s));
    return response;
  }

  Backoff backoff(policy_.retry_backoff,
                  seed_ ^ request_counter_.fetch_add(
                              1, std::memory_order_relaxed));
  std::vector<int> tried;
  Status last_error = Status::OK();

  for (int attempt = 0; attempt < policy_.max_attempts; ++attempt) {
    int id;
    uint16_t port;
    int64_t generation;
    if (!PickWorker(tried, &id, &port, &generation)) {
      // Nothing routable: every worker is down, draining, or has an open
      // breaker. Shed rather than queue — the probe loop is the recovery
      // path, and Retry-After tells the client when to come back.
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
      obs::Registry::Global()
          .GetCounter("jfeed_fleet_shed_total",
                      "Requests shed with 503 + Retry-After.")
          ->Increment();
      RequestsTotal("shed")->Increment();
      record_duration();
      obs::HttpResponse response =
          JsonError(503, "no healthy grading worker available; retry shortly");
      response.headers.emplace_back("Retry-After",
                                    std::to_string(policy_.retry_after_s));
      return response;
    }
    tried.push_back(id);

    if (attempt > 0) {
      obs::Registry::Global()
          .GetCounter("jfeed_fleet_retries_total",
                      "Grade attempts re-dispatched to another worker.")
          ->Increment();
      std::this_thread::sleep_for(
          std::chrono::milliseconds(backoff.NextDelayMs()));
    }

    // One child span per routing attempt: the worker id, the breaker
    // admission (PickWorker only dispatches through a closed breaker) and —
    // on a retry — what drove it. The attempt's own context rides the hop
    // as a `traceparent` header, so the worker-side pipeline spans and wide
    // event join this trace.
    obs::Span attempt_span("fleet.attempt");
    attempt_span.Annotate("worker=" + std::to_string(id));
    attempt_span.Annotate("breaker=closed");
    if (attempt > 0) {
      attempt_span.Annotate(std::string("retry_cause=") +
                            StatusCodeName(last_error.code()));
    }
    HttpHeaders hop_headers;
    obs::TraceContext hop_ctx =
        attempt_span.recording() ? attempt_span.context() : ctx;
    if (hop_ctx.valid()) {
      hop_headers.emplace_back("traceparent", obs::FormatTraceparent(hop_ctx));
    }

    Result<HttpReply> reply =
        AttemptGrade(port, body, hop_headers, policy_.request_deadline_ms);
    if (reply.ok()) {
      attempt_span.Annotate("status=" + std::to_string(reply.value().status));
    } else {
      attempt_span.Annotate(std::string("error=") +
                            StatusCodeName(reply.status().code()));
    }

    if (reply.ok() && reply.value().status < 500) {
      // The worker's own answer — including 4xx per-request rejections,
      // which are the client's fault and must never be retried.
      RecordAttemptOutcome(id, generation, /*success=*/true);
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
      RequestsTotal("ok")->Increment();
      record_duration();
      obs::HttpResponse response;
      response.status = reply.value().status;
      // jfeedd answers a successful /grade in NDJSON, errors in JSON.
      response.content_type = reply.value().status == 200
                                  ? "application/x-ndjson; charset=utf-8"
                                  : "application/json";
      // A worker-side 429 (every line of the request shed by admission
      // control) relays as-is — no retry, it is the tenant's backpressure —
      // and its Retry-After hint travels with it.
      std::string retry_after =
          HeaderValue(reply.value().headers, "Retry-After");
      if (!retry_after.empty()) {
        response.headers.emplace_back("Retry-After", std::move(retry_after));
      }
      response.body = std::move(reply.value().body);
      return response;
    }

    last_error = reply.ok()
                     ? Status::Unavailable(
                           "worker answered HTTP " +
                           std::to_string(reply.value().status))
                     : reply.status();
    RecordAttemptOutcome(id, generation, /*success=*/false);
  }

  inflight_.fetch_sub(1, std::memory_order_acq_rel);
  RequestsTotal("error")->Increment();
  record_duration();
  return JsonError(502, "grading failed after " +
                            std::to_string(policy_.max_attempts) +
                            " attempts: " + last_error.ToString());
}

std::vector<Router::WorkerSnapshot> Router::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<WorkerSnapshot> snapshots;
  snapshots.reserve(workers_.size());
  for (const Worker& worker : workers_) {
    WorkerSnapshot snapshot;
    snapshot.id = worker.id;
    snapshot.port = worker.port;
    snapshot.health = worker.health;
    snapshot.breaker = worker.breaker->state();
    snapshot.breaker_trips = worker.breaker->trips();
    snapshots.push_back(snapshot);
  }
  return snapshots;
}

size_t Router::RoutableCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t count = 0;
  for (const Worker& worker : workers_) {
    if (worker.health == WorkerHealth::kUp &&
        worker.breaker->state() == BreakerState::kClosed) {
      ++count;
    }
  }
  return count;
}

}  // namespace jfeed::fleet
