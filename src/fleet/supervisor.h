#ifndef JFEED_FLEET_SUPERVISOR_H_
#define JFEED_FLEET_SUPERVISOR_H_

// The process-ownership half of jfeed-broker: forks one child process per
// worker slot, watches for deaths, and restarts the dead — the classic
// supervision-tree leaf, specialised to a fixed-size fleet.
//
//   fork/exec     each slot runs the command produced by a CommandBuilder
//                 callback (worker id + pre-picked loopback port in, argv
//                 out), so tests can supervise /bin/sh as easily as the
//                 broker supervises jfeedd.
//   reaping       a reaper thread polls waitpid(WNOHANG) and reports every
//                 death through the OnWorkerDown callback before any
//                 restart is attempted, so the router can stop sending
//                 traffic into the corpse's port immediately.
//   restart storm a per-slot exponential backoff (fleet/backoff.h) paces
//                 restarts; a worker that stays up past healthy_uptime_ms
//                 resets its slot's backoff, so one crashy deploy does not
//                 tax the next. Each restart gets a freshly picked port and
//                 is announced via OnWorkerUp (the router resets health and
//                 breaker state for the new process generation).
//   drain         Drain() forwards SIGTERM to every worker's process group
//                 (each child leads its own group, so helpers the worker
//                 forked are reached too; jfeedd turns
//                 that into its graceful drain: finish in-flight grades,
//                 503 on /healthz), waits up to a grace budget, then
//                 SIGKILLs stragglers. No restarts happen while draining.
//
// The supervisor knows nothing about HTTP, health or breakers — it deals in
// pids and exit statuses only. The Router owns the liveness view; the two
// meet in the Broker, which wires OnWorkerDown/OnWorkerUp to
// Router::SetWorkerDown/SetWorkerPort.

#include <sys/types.h>

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fleet/backoff.h"
#include "support/result.h"
#include "support/status.h"

namespace jfeed::fleet {

/// Produces the argv for one worker slot. Called on every (re)start with
/// the slot's worker id and the freshly picked loopback port the child must
/// bind. argv[0] is the executable path.
using CommandBuilder =
    std::function<std::vector<std::string>(int worker_id, uint16_t port)>;

struct SupervisorOptions {
  /// Worker slots to keep filled.
  int workers = 3;
  /// Restart pacing per slot (doubles per consecutive crash, jittered).
  BackoffPolicy restart_backoff{200, 10'000, 0.2};
  /// Uptime after which a slot's crash streak is forgiven and its restart
  /// backoff reset.
  int64_t healthy_uptime_ms = 5'000;
  /// Reaper poll interval (also bounds restart-due wakeup latency).
  int64_t reap_interval_ms = 50;
  /// Drain(): grace between SIGTERM and SIGKILL.
  int64_t drain_grace_ms = 10'000;
};

class Supervisor {
 public:
  explicit Supervisor(SupervisorOptions options, CommandBuilder command,
                      uint64_t seed = 1);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Called (from the reaper thread) the moment a worker's death is reaped,
  /// before any restart. Register before Start().
  void OnWorkerDown(std::function<void(int worker_id)> callback);
  /// Called after a worker (re)starts: new pid is running and will bind
  /// `port`. Also fired for the initial spawns. Register before Start().
  void OnWorkerUp(std::function<void(int worker_id, uint16_t port)> callback);

  /// Picks ports, spawns all workers, starts the reaper thread.
  Status Start();

  /// SIGTERM every live worker, wait up to drain_grace_ms, SIGKILL the
  /// rest. Disables restarts. Idempotent.
  void Drain();

  /// Drain (if not already) and join the reaper. Run by the destructor.
  void Stop();

  /// Point-in-time view of one slot for /statusz and tests.
  struct WorkerSnapshot {
    int id = 0;
    pid_t pid = -1;  ///< -1 when the slot is between processes.
    uint16_t port = 0;
    int64_t restarts = 0;
  };
  std::vector<WorkerSnapshot> Snapshot() const;

  /// Total restarts across all slots (initial spawns not counted).
  int64_t TotalRestarts() const;

  /// The pid currently filling slot `worker_id`, or -1. Tests use this to
  /// aim a kill(2) at a specific worker.
  pid_t WorkerPid(int worker_id) const;

  /// Picks a free loopback port by binding :0 and reading it back. Exposed
  /// for tests and the broker's own listener.
  static Result<uint16_t> PickFreePort();

 private:
  struct Slot {
    int id = 0;
    pid_t pid = -1;
    uint16_t port = 0;
    int64_t started_at_ms = 0;
    int64_t restart_due_ms = 0;  ///< 0 = not awaiting restart.
    int64_t restarts = 0;
    Backoff backoff;
    explicit Slot(const BackoffPolicy& policy, uint64_t seed)
        : backoff(policy, seed) {}
  };

  void ReaperLoop();
  /// Spawns slot `index`'s process (expects mu_ held). Returns false when
  /// fork/exec could not even be attempted.
  bool SpawnLocked(size_t index);
  /// Signals the worker's process group (workers lead their own group),
  /// falling back to the bare pid if the group no longer exists.
  static void KillWorkerGroup(pid_t pid, int signo);

  static int64_t NowMs();

  SupervisorOptions options_;
  CommandBuilder command_;
  uint64_t seed_;

  std::function<void(int)> on_down_;
  std::function<void(int, uint16_t)> on_up_;

  mutable std::mutex mu_;
  std::vector<Slot> slots_;
  bool draining_ = false;
  bool stopping_ = false;

  std::condition_variable reaper_cv_;
  std::thread reaper_thread_;
};

}  // namespace jfeed::fleet

#endif  // JFEED_FLEET_SUPERVISOR_H_
