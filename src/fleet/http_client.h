#ifndef JFEED_FLEET_HTTP_CLIENT_H_
#define JFEED_FLEET_HTTP_CLIENT_H_

// Deadline-bounded loopback HTTP/1.1 client — how the broker talks to its
// jfeedd workers (POST /grade forwarding, /healthz probes, /metrics and
// /statusz scrape aggregation). The transport twin of obs::HttpServer: one
// request per connection, Connection: close, no TLS, POSIX sockets only.
//
// Every call carries one wall deadline covering connect + send + receive,
// enforced with non-blocking sockets and poll(2); a worker that accepts the
// connection and then stalls (the fault the fleet.slow_response injection
// point simulates) costs the broker at most the deadline, never a hung
// thread. Failure taxonomy on the Status:
//
//   kUnavailable  connect refused / reset / premature close — the worker
//                 process is gone or dying; retryable on another worker.
//   kTimeout      the deadline expired mid-exchange; retryable.
//   kInternal     the peer spoke, but not HTTP — a bug, not an outage.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "support/result.h"

namespace jfeed::fleet {

/// Extra request headers, sent verbatim as "Name: value" lines.
using HttpHeaders = std::vector<std::pair<std::string, std::string>>;

/// One parsed response. `status` is the HTTP code; `body` the full payload;
/// `headers` the raw header block (every line after the status line, CRLF
/// separated) for callers that relay response metadata — the router copies
/// a worker's Retry-After through to the client this way.
struct HttpReply {
  int status = 0;
  std::string headers;
  std::string body;
};

/// One blocking HTTP exchange against 127.0.0.1:`port`, bounded by
/// `deadline_ms` of wall time end to end. A non-empty `body` is sent with a
/// Content-Length header.
Result<HttpReply> Fetch(uint16_t port, const std::string& method,
                        const std::string& target, const std::string& body,
                        int64_t deadline_ms);

/// Same exchange with extra request headers — how the broker forwards the
/// W3C `traceparent` context on every routing attempt.
Result<HttpReply> Fetch(uint16_t port, const std::string& method,
                        const std::string& target, const std::string& body,
                        const HttpHeaders& extra_headers, int64_t deadline_ms);

/// Case-insensitive lookup of one header's value in HttpReply::headers;
/// "" when absent. Leading/trailing whitespace is trimmed.
std::string HeaderValue(const std::string& headers, const std::string& name);

}  // namespace jfeed::fleet

#endif  // JFEED_FLEET_HTTP_CLIENT_H_
