#include "fleet/broker.h"

#include <string>
#include <utility>

#include "fleet/http_client.h"
#include "fleet/scrape.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/trace.h"

namespace jfeed::fleet {

namespace {

const char kJfeedBrokerVersion[] = "0.6.0";

obs::HttpResponse JsonResponse(int status, std::string body) {
  obs::HttpResponse response;
  response.status = status;
  response.content_type = "application/json";
  response.body = std::move(body);
  response.body += "\n";
  return response;
}

}  // namespace

Broker::Broker(BrokerOptions options)
    : options_(std::move(options)), router_(options_.router) {
  if (options_.workers < 1) options_.workers = 1;

  // Register every slot up front with port 0 (kDown, unroutable): the
  // supervisor's OnWorkerUp then only ever has to SetWorkerPort, which
  // also resets breaker and health for the new process generation.
  for (int id = 0; id < options_.workers; ++id) router_.AddWorker(id, 0);
}

Broker::~Broker() { Stop(); }

Status Broker::Start() {
  if (!options_.worker_command) {
    return Status::InvalidArgument("BrokerOptions.worker_command not set");
  }
  if (started_.load(std::memory_order_relaxed)) {
    return Status::Internal("broker already started");
  }

  // The registry is runtime-gated; without this every jfeed_fleet_*
  // increment is a no-op (the daemon does the same in its Start()).
  obs::Registry::Global().set_enabled(true);
  // Routing spans (broker.grade -> fleet.route -> fleet.attempt) are the
  // broker's half of the stitched /tracez timeline.
  if (options_.trace_ring_capacity > 0) {
    obs::Tracer::Global().Enable(options_.trace_ring_capacity);
  }

  SupervisorOptions supervisor_options = options_.supervisor;
  supervisor_options.workers = options_.workers;
  supervisor_ = std::make_unique<Supervisor>(supervisor_options,
                                             options_.worker_command);
  supervisor_->OnWorkerDown([this](int id) { router_.SetWorkerDown(id); });
  supervisor_->OnWorkerUp(
      [this](int id, uint16_t port) { router_.SetWorkerPort(id, port); });

  JFEED_RETURN_IF_ERROR(supervisor_->Start());
  router_.Start();

  obs::HttpServer::Options server_options;
  server_options.port = options_.port;
  server_options.workers = options_.http_workers;
  server_ = std::make_unique<obs::HttpServer>(server_options);
  server_->Handle("/grade",
                  [this](const obs::HttpRequest& r) { return HandleGrade(r); });
  server_->Handle("/metrics", [this](const obs::HttpRequest& r) {
    return HandleMetrics(r);
  });
  server_->Handle("/healthz", [this](const obs::HttpRequest& r) {
    return HandleHealthz(r);
  });
  server_->Handle("/statusz", [this](const obs::HttpRequest& r) {
    return HandleStatusz(r);
  });
  server_->Handle("/tracez", [this](const obs::HttpRequest& r) {
    return HandleTracez(r);
  });
  server_->Handle("/sloz", [this](const obs::HttpRequest& r) {
    return HandleSloz(r);
  });
  Status started = server_->Start();
  if (!started.ok()) {
    router_.Stop();
    supervisor_->Stop();
    return started;
  }
  started_.store(true, std::memory_order_relaxed);
  return Status::OK();
}

void Broker::BeginDrain() {
  bool expected = false;
  if (!draining_.compare_exchange_strong(expected, true)) return;
  // Workers receive SIGTERM and run their own drain: finish every accepted
  // grade, answer /healthz 503, exit. The broker stops admitting new work
  // the moment draining_ flips (HandleGrade checks it first).
  if (supervisor_) supervisor_->Drain();
}

void Broker::Stop() {
  BeginDrain();
  router_.Stop();
  if (server_) server_->Stop();
  if (supervisor_) supervisor_->Stop();
  started_.store(false, std::memory_order_relaxed);
}

uint16_t Broker::port() const { return server_ ? server_->port() : 0; }

obs::HttpResponse Broker::HandleGrade(const obs::HttpRequest& request) {
  if (request.method != "POST") {
    return JsonResponse(405, "{\"error\":\"POST /grade only\"}");
  }
  if (draining()) {
    obs::HttpResponse response = JsonResponse(
        503, "{\"error\":\"broker draining; not accepting submissions\"}");
    response.headers.emplace_back("Retry-After", "10");
    return response;
  }
  if (request.body.empty()) {
    return JsonResponse(400, "{\"error\":\"empty body\"}");
  }
  // The outermost trace entry point: adopt the client's traceparent or
  // mint the root here. Everything below — routing attempts, retries, the
  // worker's pipeline and wide event — joins this trace.
  obs::TraceContext ctx =
      obs::ContextFromHeader(obs::RequestHeader(request, "traceparent"));
  obs::Span request_span("broker.grade", ctx);
  return router_.RouteGrade(
      request.body, request_span.recording() ? request_span.context() : ctx);
}

obs::HttpResponse Broker::HandleMetrics(const obs::HttpRequest&) {
  // The broker's own registry carries only jfeed_fleet_* families (plus
  // whatever obs instruments this process touches), so concatenating it
  // with the merged per-worker expositions cannot collide on a family.
  std::vector<WorkerScrape> scrapes;
  for (const Router::WorkerSnapshot& worker : router_.Snapshot()) {
    if (worker.port == 0 || worker.health == WorkerHealth::kDown) continue;
    Result<HttpReply> reply = Fetch(worker.port, "GET", "/metrics", "",
                                    options_.scrape_deadline_ms);
    if (!reply.ok() || reply.value().status != 200) continue;
    scrapes.emplace_back(std::to_string(worker.id),
                         std::move(reply.value().body));
  }
  obs::HttpResponse response;
  response.content_type = "text/plain; version=0.0.4; charset=utf-8";
  response.body = obs::Registry::Global().Render();
  response.body += MergeWorkerMetrics(scrapes);
  return response;
}

obs::HttpResponse Broker::HandleHealthz(const obs::HttpRequest&) {
  size_t routable = router_.RoutableCount();
  const char* status = "ok";
  int http_status = 200;
  if (draining()) {
    status = "draining";
    http_status = 503;
  } else if (routable == 0) {
    // Every worker is down, degraded, or breaker-open: the fleet cannot
    // accept a grade right now, though probes may re-admit one any moment.
    status = "unavailable";
    http_status = 503;
  }
  std::string body = "{\"status\":\"";
  body += status;
  body += "\",\"routable_workers\":" + std::to_string(routable);
  body += ",\"workers\":" + std::to_string(options_.workers);
  body += "}";
  return JsonResponse(http_status, std::move(body));
}

obs::HttpResponse Broker::HandleStatusz(const obs::HttpRequest&) {
  std::vector<Router::WorkerSnapshot> routed = router_.Snapshot();
  std::vector<Supervisor::WorkerSnapshot> supervised =
      supervisor_ ? supervisor_->Snapshot()
                  : std::vector<Supervisor::WorkerSnapshot>();

  std::string body = "{\"build\":{\"version\":\"";
  body += kJfeedBrokerVersion;
  body += "\",\"role\":\"broker\"}";
  body += ",\"draining\":";
  body += draining() ? "true" : "false";
  body += ",\"routable_workers\":" + std::to_string(router_.RoutableCount());
  body += ",\"workers\":[";
  for (size_t i = 0; i < routed.size(); ++i) {
    const Router::WorkerSnapshot& worker = routed[i];
    if (i > 0) body += ",";
    body += "{\"id\":" + std::to_string(worker.id);
    body += ",\"port\":" + std::to_string(worker.port);
    body += ",\"health\":\"";
    body += WorkerHealthName(worker.health);
    body += "\",\"breaker\":\"";
    body += BreakerStateName(worker.breaker);
    body += "\",\"breaker_trips\":" + std::to_string(worker.breaker_trips);
    for (const Supervisor::WorkerSnapshot& slot : supervised) {
      if (slot.id != worker.id) continue;
      body += ",\"pid\":" + std::to_string(slot.pid);
      body += ",\"restarts\":" + std::to_string(slot.restarts);
      break;
    }
    // Embed the worker's own /statusz verbatim — it is a JSON object, so
    // splicing it in keeps the whole document valid JSON.
    std::string statusz = "null";
    if (worker.port != 0 && worker.health != WorkerHealth::kDown) {
      Result<HttpReply> reply = Fetch(worker.port, "GET", "/statusz", "",
                                      options_.scrape_deadline_ms);
      if (reply.ok() && reply.value().status == 200 &&
          !reply.value().body.empty() && reply.value().body[0] == '{') {
        statusz = std::move(reply.value().body);
        while (!statusz.empty() &&
               (statusz.back() == '\n' || statusz.back() == '\r')) {
          statusz.pop_back();
        }
      }
    }
    body += ",\"statusz\":" + statusz;
    body += "}";
  }
  body += "]}";
  return JsonResponse(200, std::move(body));
}

obs::HttpResponse Broker::HandleTracez(const obs::HttpRequest&) {
  // The federated fleet trace: broker routing spans as pid 0 spliced with
  // every reachable worker's export as pid <worker id + 1> — stable pids,
  // so the same worker lands on the same Perfetto track across scrapes.
  std::vector<std::string> exports;
  exports.push_back(obs::Tracer::Global().ExportChromeJson(0, "jfeed-broker"));
  for (const Router::WorkerSnapshot& worker : router_.Snapshot()) {
    if (worker.port == 0 || worker.health == WorkerHealth::kDown) continue;
    Result<HttpReply> reply =
        Fetch(worker.port, "GET",
              "/tracez?format=chrome&pid=" + std::to_string(worker.id + 1), "",
              options_.scrape_deadline_ms);
    if (!reply.ok() || reply.value().status != 200) continue;
    exports.push_back(std::move(reply.value().body));
  }
  return JsonResponse(200, StitchChromeTraces(exports));
}

obs::HttpResponse Broker::HandleSloz(const obs::HttpRequest&) {
  std::vector<std::pair<int, std::string>> worker_bodies;
  for (const Router::WorkerSnapshot& worker : router_.Snapshot()) {
    if (worker.port == 0 || worker.health == WorkerHealth::kDown) continue;
    Result<HttpReply> reply = Fetch(worker.port, "GET", "/sloz", "",
                                    options_.scrape_deadline_ms);
    if (!reply.ok() || reply.value().status != 200) continue;
    worker_bodies.emplace_back(worker.id, std::move(reply.value().body));
  }
  return JsonResponse(200, obs::AggregateSloz(worker_bodies));
}

}  // namespace jfeed::fleet
