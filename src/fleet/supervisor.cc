#include "fleet/supervisor.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/metrics.h"
#include "support/result.h"

namespace jfeed::fleet {

Supervisor::Supervisor(SupervisorOptions options, CommandBuilder command,
                       uint64_t seed)
    : options_(options), command_(std::move(command)), seed_(seed) {
  if (options_.workers < 1) options_.workers = 1;
  for (int i = 0; i < options_.workers; ++i) {
    slots_.emplace_back(options_.restart_backoff,
                        seed_ ^ (0x9e3779b97f4a7c15ull * (i + 1)));
    slots_.back().id = i;
  }
}

Supervisor::~Supervisor() { Stop(); }

int64_t Supervisor::NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void Supervisor::KillWorkerGroup(pid_t pid, int signo) {
  // Workers lead their own process group (setpgid at spawn); signalling
  // the group reaches helper processes the worker may have forked. Fall
  // back to the single pid if the group is already gone.
  if (::kill(-pid, signo) != 0) ::kill(pid, signo);
}

Result<uint16_t> Supervisor::PickFreePort() {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Unavailable(std::string("socket: ") + strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int saved = errno;
    ::close(fd);
    return Status::Unavailable(std::string("bind: ") + strerror(saved));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    int saved = errno;
    ::close(fd);
    return Status::Unavailable(std::string("getsockname: ") + strerror(saved));
  }
  uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  // The port is free *now*; the child re-binds it shortly. The race window
  // is real but tiny on loopback, and a lost race surfaces as a failed
  // bind -> child exit -> supervised restart with a fresh pick.
  return port;
}

void Supervisor::OnWorkerDown(std::function<void(int)> callback) {
  on_down_ = std::move(callback);
}

void Supervisor::OnWorkerUp(std::function<void(int, uint16_t)> callback) {
  on_up_ = std::move(callback);
}

bool Supervisor::SpawnLocked(size_t index) {
  Slot& slot = slots_[index];
  Result<uint16_t> port = PickFreePort();
  if (!port.ok()) return false;
  std::vector<std::string> argv_strings = command_(slot.id, port.value());
  if (argv_strings.empty()) return false;

  std::vector<char*> argv;
  argv.reserve(argv_strings.size() + 1);
  for (std::string& arg : argv_strings) argv.push_back(arg.data());
  argv.push_back(nullptr);

  pid_t pid = ::fork();
  if (pid < 0) return false;
  if (pid == 0) {
    // Child. Lead a fresh process group so Drain can signal the whole
    // worker subtree — a worker that forks helpers (or a /bin/sh that
    // forks instead of exec'ing) must not orphan them past shutdown.
    ::setpgid(0, 0);
    // Restore default signal dispositions (the broker blocks
    // SIGTERM/SIGINT for sigwait; the worker must be able to die by them).
    signal(SIGTERM, SIG_DFL);
    signal(SIGINT, SIG_DFL);
    signal(SIGPIPE, SIG_DFL);
    ::execv(argv[0], argv.data());
    _exit(127);  // exec failed; the reaper restarts with backoff.
  }
  // Both sides call setpgid so the group exists before either races
  // ahead; EACCES after the child exec'd just means it already won.
  ::setpgid(pid, pid);

  slot.pid = pid;
  slot.port = port.value();
  slot.started_at_ms = NowMs();
  slot.restart_due_ms = 0;
  return true;
}

Status Supervisor::Start() {
  std::unique_lock<std::mutex> lock(mu_);
  if (reaper_thread_.joinable()) {
    return Status::Internal("supervisor already started");
  }
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (!SpawnLocked(i)) {
      return Status::Unavailable("failed to spawn worker " +
                                 std::to_string(slots_[i].id));
    }
  }
  std::vector<std::pair<int, uint16_t>> started;
  for (const Slot& slot : slots_) started.emplace_back(slot.id, slot.port);
  lock.unlock();
  if (on_up_) {
    for (const auto& [id, port] : started) on_up_(id, port);
  }
  lock.lock();
  stopping_ = false;
  reaper_thread_ = std::thread(&Supervisor::ReaperLoop, this);
  return Status::OK();
}

void Supervisor::ReaperLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    reaper_cv_.wait_for(lock,
                        std::chrono::milliseconds(options_.reap_interval_ms),
                        [this] { return stopping_; });
    if (stopping_) return;

    // Reap deaths.
    for (size_t i = 0; i < slots_.size(); ++i) {
      Slot& slot = slots_[i];
      if (slot.pid <= 0) continue;
      int wstatus = 0;
      pid_t reaped = ::waitpid(slot.pid, &wstatus, WNOHANG);
      if (reaped != slot.pid) continue;

      int64_t now = NowMs();
      // A long healthy run forgives the crash streak: restart pacing is
      // for crash loops, not for the occasional casualty.
      if (now - slot.started_at_ms >= options_.healthy_uptime_ms) {
        slot.backoff.Reset();
      }
      slot.pid = -1;
      if (!draining_) {
        slot.restart_due_ms = now + slot.backoff.NextDelayMs();
      }
      int dead_id = slot.id;
      lock.unlock();
      if (on_down_) on_down_(dead_id);
      lock.lock();
    }

    if (draining_) continue;

    // Restart slots whose backoff has elapsed.
    for (size_t i = 0; i < slots_.size(); ++i) {
      Slot& slot = slots_[i];
      if (slot.pid > 0 || slot.restart_due_ms == 0) continue;
      if (NowMs() < slot.restart_due_ms) continue;
      if (!SpawnLocked(i)) {
        // Could not spawn (fork failure / port exhaustion): re-arm with
        // the next backoff step rather than spinning.
        slot.restart_due_ms = NowMs() + slot.backoff.NextDelayMs();
        continue;
      }
      ++slot.restarts;
      obs::Registry::Global()
          .GetCounter("jfeed_fleet_restarts_total",
                      "Worker processes restarted by the supervisor.",
                      {{"worker", std::to_string(slot.id)}})
          ->Increment();
      int up_id = slot.id;
      uint16_t up_port = slot.port;
      lock.unlock();
      if (on_up_) on_up_(up_id, up_port);
      lock.lock();
    }
  }
}

void Supervisor::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  if (draining_) return;
  draining_ = true;
  std::vector<pid_t> live;
  for (Slot& slot : slots_) {
    slot.restart_due_ms = 0;
    if (slot.pid > 0) {
      live.push_back(slot.pid);
      KillWorkerGroup(slot.pid, SIGTERM);
    }
  }
  lock.unlock();

  // Grace period: wait for children to drain and exit on their own. The
  // reaper keeps running and reaps them; we poll our snapshot of pids.
  int64_t deadline = NowMs() + options_.drain_grace_ms;
  while (NowMs() < deadline) {
    bool any_live = false;
    {
      std::lock_guard<std::mutex> relock(mu_);
      for (const Slot& slot : slots_) {
        if (slot.pid > 0) any_live = true;
      }
    }
    if (!any_live) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  std::lock_guard<std::mutex> relock(mu_);
  for (Slot& slot : slots_) {
    if (slot.pid > 0) KillWorkerGroup(slot.pid, SIGKILL);
  }
  (void)live;
}

void Supervisor::Stop() {
  Drain();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  reaper_cv_.notify_all();
  if (reaper_thread_.joinable()) reaper_thread_.join();
  // Final synchronous reap so no zombies outlive the supervisor.
  std::lock_guard<std::mutex> lock(mu_);
  for (Slot& slot : slots_) {
    if (slot.pid <= 0) continue;
    int wstatus = 0;
    if (::waitpid(slot.pid, &wstatus, 0) == slot.pid) slot.pid = -1;
  }
}

std::vector<Supervisor::WorkerSnapshot> Supervisor::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<WorkerSnapshot> snapshots;
  snapshots.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    WorkerSnapshot snapshot;
    snapshot.id = slot.id;
    snapshot.pid = slot.pid;
    snapshot.port = slot.port;
    snapshot.restarts = slot.restarts;
    snapshots.push_back(snapshot);
  }
  return snapshots;
}

int64_t Supervisor::TotalRestarts() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const Slot& slot : slots_) total += slot.restarts;
  return total;
}

pid_t Supervisor::WorkerPid(int worker_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Slot& slot : slots_) {
    if (slot.id == worker_id) return slot.pid;
  }
  return -1;
}

}  // namespace jfeed::fleet
