#include "fleet/breaker.h"

namespace jfeed::fleet {

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kHalfOpen: return "half_open";
    case BreakerState::kOpen: return "open";
  }
  return "unknown";
}

int BreakerStateValue(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return 0;
    case BreakerState::kHalfOpen: return 1;
    case BreakerState::kOpen: return 2;
  }
  return -1;
}

CircuitBreaker::CircuitBreaker(BreakerPolicy policy) : policy_(policy) {
  if (policy_.failure_threshold < 1) policy_.failure_threshold = 1;
  if (policy_.open_cooldown_ms < 0) policy_.open_cooldown_ms = 0;
}

bool CircuitBreaker::Allow(int64_t now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (now_ms - opened_at_ms_ < policy_.open_cooldown_ms) return false;
      state_ = BreakerState::kHalfOpen;
      trial_outstanding_ = true;
      return true;
    case BreakerState::kHalfOpen:
      // One trial at a time; further callers wait for its verdict.
      if (trial_outstanding_) return false;
      trial_outstanding_ = true;
      return true;
  }
  return false;
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  consecutive_failures_ = 0;
  trial_outstanding_ = false;
  state_ = BreakerState::kClosed;
}

void CircuitBreaker::RecordFailure(int64_t now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case BreakerState::kClosed:
      if (++consecutive_failures_ >= policy_.failure_threshold) {
        state_ = BreakerState::kOpen;
        opened_at_ms_ = now_ms;
        ++trips_;
      }
      break;
    case BreakerState::kHalfOpen:
      // The trial failed: back to open, cooldown restarts from now.
      state_ = BreakerState::kOpen;
      opened_at_ms_ = now_ms;
      trial_outstanding_ = false;
      ++trips_;
      break;
    case BreakerState::kOpen:
      // Late failure report from a request admitted before the trip;
      // nothing to do, the breaker is already open.
      break;
  }
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

int64_t CircuitBreaker::trips() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trips_;
}

}  // namespace jfeed::fleet
