#ifndef JFEED_FLEET_BACKOFF_H_
#define JFEED_FLEET_BACKOFF_H_

// Deterministic exponential backoff with jitter — the retry/restart pacing
// primitive of the broker fleet. Two consumers with different horizons
// share it: the router waits out transient worker failures between grade
// retries (tens of milliseconds), and the supervisor spaces restarts of a
// crash-looping worker (hundreds of milliseconds to seconds) so a worker
// that dies on boot cannot pin a core with a fork storm.
//
// Jitter matters even on one host: a fleet-wide hiccup (all workers
// draining at once) fails many queued requests together, and un-jittered
// retries would re-arrive as one synchronized thundering herd. The jitter
// source is a private xorshift64 stream seeded at construction, so a test
// that fixes the seed sees an exactly reproducible delay sequence — the
// same determinism contract as support/fault.h.

#include <cstdint>

namespace jfeed::fleet {

/// Shape of one backoff schedule: delay(n) = min(base * 2^n, max), then
/// jittered into [delay * (1 - jitter), delay * (1 + jitter)].
struct BackoffPolicy {
  int64_t base_ms = 50;
  int64_t max_ms = 2000;
  /// Jitter fraction in [0, 1). 0 makes the schedule exact.
  double jitter = 0.2;
};

class Backoff {
 public:
  explicit Backoff(BackoffPolicy policy, uint64_t seed = 1);

  /// Delay before the next attempt; advances the attempt counter. The
  /// un-jittered schedule doubles from base_ms and saturates at max_ms.
  int64_t NextDelayMs();

  /// Back to attempt 0 — called after a success (router) or once a worker
  /// has stayed alive long enough to count as healthy (supervisor).
  void Reset() { attempt_ = 0; }

  int attempt() const { return attempt_; }

 private:
  BackoffPolicy policy_;
  uint64_t rng_state_;
  int attempt_ = 0;
};

}  // namespace jfeed::fleet

#endif  // JFEED_FLEET_BACKOFF_H_
