#ifndef JFEED_FLEET_BREAKER_H_
#define JFEED_FLEET_BREAKER_H_

// Per-worker circuit breaker for the grading fleet, the classic three-state
// machine:
//
//   closed ──(consecutive failures reach threshold)──> open
//   open ──(cooldown elapses; Allow grants ONE trial)──> half-open
//   half-open ──(trial succeeds)──> closed
//   half-open ──(trial fails)──> open (cooldown restarts)
//
// The router consults the breaker before routing a grade request to a
// worker, and the health-probe loop uses its half-open trial slot: a worker
// that tripped its breaker is re-admitted by a cheap /healthz probe
// succeeding, never by gambling a student submission on it. Failures feed
// in from both directions (failed grade attempts and failed probes), so a
// worker that dies while idle still trips without any request traffic.
//
// All transitions take an explicit `now_ms` monotonic timestamp instead of
// reading a clock, which makes every state trajectory unit-testable without
// sleeping.

#include <cstdint>
#include <mutex>

namespace jfeed::fleet {

enum class BreakerState { kClosed, kHalfOpen, kOpen };

/// Stable name for logs / JSON ("closed", "half_open", "open").
const char* BreakerStateName(BreakerState state);

/// Gauge encoding of a state (0 closed, 1 half_open, 2 open) — the value
/// jfeed_fleet_breaker_state{worker=...} reports.
int BreakerStateValue(BreakerState state);

struct BreakerPolicy {
  /// Consecutive failures that trip closed -> open.
  int failure_threshold = 3;
  /// How long an open breaker refuses everything before it grants one
  /// half-open trial.
  int64_t open_cooldown_ms = 1000;
};

class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerPolicy policy = BreakerPolicy());

  /// May a request be sent now? Closed: always. Open: false until the
  /// cooldown elapses, at which point the breaker moves to half-open and
  /// this call grants the single trial (returns true exactly once per
  /// cooldown). Half-open: false while the granted trial is outstanding.
  bool Allow(int64_t now_ms);

  /// Outcome of a request or probe that was allowed through.
  void RecordSuccess();
  void RecordFailure(int64_t now_ms);

  BreakerState state() const;
  /// Times the breaker transitioned into open (initial trips and half-open
  /// re-trips both count).
  int64_t trips() const;

 private:
  mutable std::mutex mu_;
  BreakerPolicy policy_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  int64_t opened_at_ms_ = 0;
  bool trial_outstanding_ = false;
  int64_t trips_ = 0;
};

}  // namespace jfeed::fleet

#endif  // JFEED_FLEET_BREAKER_H_
