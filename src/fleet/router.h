#ifndef JFEED_FLEET_ROUTER_H_
#define JFEED_FLEET_ROUTER_H_

// The routing half of jfeed-broker: given a set of jfeedd worker endpoints
// on loopback, forward each POST /grade body to a healthy worker and make
// worker failure a routine, recoverable event. The machinery, in the order
// a request meets it:
//
//   shedding      an in-flight cap; beyond it the fleet answers 503 +
//                 Retry-After immediately instead of queueing into a stall.
//   selection     round-robin over workers that are (a) probing healthy
//                 and (b) whose circuit breaker admits traffic.
//   deadline      every attempt is bounded by request_deadline_ms of wall
//                 time via the fleet HTTP client.
//   retry         a transport failure, timeout or worker 5xx is retried on
//                 a *different* worker (same worker only when no other
//                 exists), with exponential backoff + jitter between
//                 attempts, at most max_attempts total. Safe because
//                 grading is deterministic and side-effect-free per
//                 submission (and the worker's ResultCache makes an
//                 accidental re-grade a cache hit) — see DESIGN.md §5e.
//   breaker       per-worker circuit breaker (fleet/breaker.h): repeated
//                 failures stop traffic to a worker; a succeeding health
//                 probe in half-open state re-admits it.
//
// A background probe thread polls each worker's /healthz: 200 -> up,
// 503 -> degraded (alive but draining/saturated — not routable, breaker
// untouched), transport failure -> down after a failure streak (and fed to
// the breaker, so an idle dead worker still trips). Probes double as the
// breaker's half-open trials: recovery never gambles a student submission.
//
// The router does not own worker processes — the Supervisor does, calling
// SetWorkerPort/SetWorkerDown as it restarts them. That split keeps every
// routing behaviour unit-testable against plain in-process HTTP servers.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fleet/backoff.h"
#include "fleet/breaker.h"
#include "obs/http_server.h"
#include "obs/trace_context.h"

namespace jfeed::fleet {

enum class WorkerHealth { kDown, kDegraded, kUp };

/// Stable name for JSON/logs ("down", "degraded", "up").
const char* WorkerHealthName(WorkerHealth health);

/// Gauge encoding (0 down, 1 degraded, 2 up) —
/// jfeed_fleet_worker_state{worker=...}.
int WorkerHealthValue(WorkerHealth health);

struct RouterPolicy {
  /// Wall deadline per grade attempt (connect + send + receive).
  int64_t request_deadline_ms = 60'000;
  /// Total tries per request (first attempt + retries).
  int max_attempts = 3;
  BackoffPolicy retry_backoff{25, 500, 0.2};
  BreakerPolicy breaker;
  /// Health probe cadence and per-probe deadline.
  int64_t probe_interval_ms = 250;
  int64_t probe_deadline_ms = 1'000;
  /// Consecutive probe transport failures before a worker is marked down.
  int down_after_probe_failures = 2;
  /// In-flight grade requests beyond which new ones are shed with 503 +
  /// Retry-After (queue-depth shedding).
  size_t max_inflight = 64;
  /// Value of the Retry-After header (seconds) on shed responses.
  int retry_after_s = 1;
};

class Router {
 public:
  explicit Router(RouterPolicy policy = RouterPolicy(), uint64_t seed = 1);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Registers a worker endpoint before Start(). Workers begin kDown and
  /// become routable on their first successful probe.
  void AddWorker(int id, uint16_t port);

  /// Supervisor hook: worker `id` restarted on (possibly new) `port`.
  /// Resets its breaker and health so probing re-admits it cleanly.
  void SetWorkerPort(int id, uint16_t port);

  /// Supervisor hook: worker `id`'s process died — stop routing to it now
  /// instead of waiting for probes to notice.
  void SetWorkerDown(int id);

  /// Starts the probe thread (one immediate sweep, then every
  /// probe_interval_ms).
  void Start();
  /// Stops probing. Idempotent; also run by the destructor.
  void Stop();

  /// Routes one POST /grade body and returns the response to relay to the
  /// client: the worker's own response (any status < 500), or a broker
  /// 503/502 with a JSON error body when the fleet cannot serve it.
  ///
  /// `ctx` is the request's distributed-trace context (the broker's adopted
  /// or minted traceparent). The route opens a fleet.route span under it
  /// and every attempt a fleet.attempt child annotated with the worker id
  /// and, on retries, the cause — so a retried request shows up as sibling
  /// attempt spans on one trace. The per-attempt span's context is
  /// forwarded to the worker as a `traceparent` header, stitching the
  /// worker-side pipeline into the same trace. An invalid (default) ctx
  /// falls back to the tracer's implicit parenting.
  obs::HttpResponse RouteGrade(const std::string& body,
                               const obs::TraceContext& ctx);
  obs::HttpResponse RouteGrade(const std::string& body) {
    return RouteGrade(body, obs::TraceContext());
  }

  /// Point-in-time view of one worker for /healthz, /statusz and tests.
  struct WorkerSnapshot {
    int id = 0;
    uint16_t port = 0;
    WorkerHealth health = WorkerHealth::kDown;
    BreakerState breaker = BreakerState::kClosed;
    int64_t breaker_trips = 0;
  };
  std::vector<WorkerSnapshot> Snapshot() const;

  /// Workers currently eligible for new grade traffic.
  size_t RoutableCount() const;

  /// Runs one probe sweep synchronously (tests; Start() also uses it).
  void ProbeOnce();

 private:
  struct Worker {
    int id = 0;
    uint16_t port = 0;
    /// Bumped by SetWorkerPort so results from attempts/probes that raced
    /// a restart are dropped instead of poisoning the fresh worker.
    int64_t generation = 0;
    WorkerHealth health = WorkerHealth::kDown;
    int probe_failures = 0;
    std::unique_ptr<CircuitBreaker> breaker;
  };

  void ProbeLoop();
  void ProbeWorker(size_t index);
  /// Picks the next routable worker round-robin, preferring ones not in
  /// `tried`. Returns false when nothing is routable at all.
  bool PickWorker(const std::vector<int>& tried, int* id, uint16_t* port,
                  int64_t* generation);
  void RecordAttemptOutcome(int id, int64_t generation, bool success);
  void PublishWorkerGauges(const Worker& worker);

  static int64_t NowMs();

  RouterPolicy policy_;
  uint64_t seed_;

  mutable std::mutex mu_;
  std::vector<Worker> workers_;
  size_t rr_next_ = 0;

  std::atomic<size_t> inflight_{0};
  std::atomic<uint64_t> request_counter_{0};

  std::mutex probe_mu_;
  std::condition_variable probe_cv_;
  bool probe_stop_ = false;
  std::thread probe_thread_;
};

}  // namespace jfeed::fleet

#endif  // JFEED_FLEET_ROUTER_H_
