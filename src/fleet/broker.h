#ifndef JFEED_FLEET_BROKER_H_
#define JFEED_FLEET_BROKER_H_

// jfeed-broker: the fault-isolation front end for a fleet of jfeedd
// workers. One broker process owns N supervised jfeedd child processes
// (fleet/supervisor.h), routes POST /grade across the healthy ones with
// retries and per-worker circuit breakers (fleet/router.h), and exposes a
// single aggregated introspection surface:
//
//   POST /grade    forwarded to a healthy worker; transparent retry onto a
//                  different worker on crash/timeout; 503 + Retry-After
//                  when the fleet is saturated or has no routable worker.
//   GET /metrics   the broker's own jfeed_fleet_* instruments plus every
//                  reachable worker's metrics merged into one exposition,
//                  each worker sample tagged worker="<id>".
//   GET /healthz   fleet readiness: ok / draining / unavailable.
//   GET /statusz   fleet topology — per worker: pid, port, probed health,
//                  breaker state, restart count, and the worker's own
//                  /statusz embedded verbatim.
//   GET /tracez    the stitched fleet trace: the broker's own routing spans
//                  (pid 0) spliced with every reachable worker's
//                  /tracez?format=chrome export (pid = worker id + 1) into
//                  one Chrome/Perfetto trace_event document.
//   GET /sloz      fleet SLO view: every worker's /sloz aggregated per
//                  assignment (obs::AggregateSloz).
//
// Every routing attempt forwards the request's W3C traceparent (adopted
// from the client or minted here) to the worker, so one trace id follows a
// submission through broker retry onto the worker that finally grades it.
//
// Lifecycle mirrors jfeedd: Start() spawns the fleet and serves;
// BeginDrain() flips /healthz to 503, stops admitting grades, and forwards
// SIGTERM to every worker (each finishes its in-flight grades before
// exiting); Stop() tears everything down. A worker crash is invisible to
// clients beyond latency: the supervisor restarts it with backoff while
// the router sends traffic elsewhere.
//
// Like the daemon, the broker refuses to run blind: with JFEED_OBS=OFF the
// HTTP server is a stub whose Start() fails loudly.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fleet/router.h"
#include "fleet/supervisor.h"
#include "obs/http_server.h"
#include "support/status.h"

namespace jfeed::fleet {

struct BrokerOptions {
  /// Broker listen port on 127.0.0.1; 0 picks an ephemeral port.
  uint16_t port = 0;
  /// Worker processes to supervise.
  int workers = 3;
  /// Builds each worker's argv from (worker id, port) — typically the
  /// jfeedd command line with --port and --worker-id filled in.
  CommandBuilder worker_command;
  RouterPolicy router;
  SupervisorOptions supervisor;
  /// Broker-side HTTP connection workers.
  int http_workers = 4;
  /// Deadline for scraping one worker's /metrics, /statusz, /tracez or
  /// /sloz during aggregation.
  int64_t scrape_deadline_ms = 2'000;
  /// Broker-side tracer ring capacity per thread (0 = tracing off; the
  /// stitched /tracez then shows worker spans only).
  size_t trace_ring_capacity = 1u << 12;
};

class Broker {
 public:
  explicit Broker(BrokerOptions options);
  ~Broker();

  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  /// Spawns the worker fleet, starts probing, binds the HTTP front end.
  Status Start();

  /// Graceful shutdown, phase 1: stop admitting grade requests (/healthz
  /// 503, POST /grade 503), SIGTERM the fleet and wait for workers to
  /// finish their in-flight grades. Idempotent.
  void BeginDrain();

  /// Graceful shutdown, phase 2: stop probing, stop serving, reap the
  /// fleet. Run by the destructor.
  void Stop();

  uint16_t port() const;
  bool draining() const {
    return draining_.load(std::memory_order_relaxed);
  }

  Router& router() { return router_; }
  Supervisor& supervisor() { return *supervisor_; }

 private:
  obs::HttpResponse HandleGrade(const obs::HttpRequest& request);
  obs::HttpResponse HandleMetrics(const obs::HttpRequest& request);
  obs::HttpResponse HandleHealthz(const obs::HttpRequest& request);
  obs::HttpResponse HandleStatusz(const obs::HttpRequest& request);
  obs::HttpResponse HandleTracez(const obs::HttpRequest& request);
  obs::HttpResponse HandleSloz(const obs::HttpRequest& request);

  BrokerOptions options_;
  Router router_;
  std::unique_ptr<Supervisor> supervisor_;
  std::unique_ptr<obs::HttpServer> server_;
  std::atomic<bool> draining_{false};
  std::atomic<bool> started_{false};
};

}  // namespace jfeed::fleet

#endif  // JFEED_FLEET_BROKER_H_
