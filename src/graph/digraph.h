#ifndef JFEED_GRAPH_DIGRAPH_H_
#define JFEED_GRAPH_DIGRAPH_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/ids.h"

namespace jfeed::graph {

/// A directed multigraph with user payloads on nodes (N) and edges (E),
/// adjacency indexed in both directions. Replaces the JGraphT dependency of
/// the original implementation. Nodes and edges are append-only, which is
/// all the EPDG pipeline needs and keeps ids stable.
template <typename N, typename E>
class Digraph {
 public:
  struct Edge {
    NodeId source;
    NodeId target;
    E data;
  };

  Digraph() = default;

  /// Adds a node and returns its id.
  NodeId AddNode(N data) {
    nodes_.push_back(std::move(data));
    out_edges_.emplace_back();
    in_edges_.emplace_back();
    return static_cast<NodeId>(nodes_.size() - 1);
  }

  /// Adds a directed edge; parallel edges are allowed.
  EdgeId AddEdge(NodeId source, NodeId target, E data) {
    Edge e{source, target, std::move(data)};
    edges_.push_back(std::move(e));
    EdgeId id = static_cast<EdgeId>(edges_.size() - 1);
    out_edges_[source].push_back(id);
    in_edges_[target].push_back(id);
    return id;
  }

  size_t NodeCount() const { return nodes_.size(); }
  size_t EdgeCount() const { return edges_.size(); }

  const N& NodeData(NodeId id) const { return nodes_[id]; }
  N& NodeData(NodeId id) { return nodes_[id]; }

  const Edge& GetEdge(EdgeId id) const { return edges_[id]; }

  /// Ids of edges leaving `node`.
  const std::vector<EdgeId>& OutEdges(NodeId node) const {
    return out_edges_[node];
  }
  /// Ids of edges entering `node`.
  const std::vector<EdgeId>& InEdges(NodeId node) const {
    return in_edges_[node];
  }

  /// True when an edge source -> target with payload equal to `data` exists.
  bool HasEdge(NodeId source, NodeId target, const E& data) const {
    for (EdgeId eid : out_edges_[source]) {
      const Edge& e = edges_[eid];
      if (e.target == target && e.data == data) return true;
    }
    return false;
  }

  /// Out-degree counting parallel edges.
  size_t OutDegree(NodeId node) const { return out_edges_[node].size(); }
  size_t InDegree(NodeId node) const { return in_edges_[node].size(); }

 private:
  std::vector<N> nodes_;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_edges_;
  std::vector<std::vector<EdgeId>> in_edges_;
};

}  // namespace jfeed::graph

#endif  // JFEED_GRAPH_DIGRAPH_H_
