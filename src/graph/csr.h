#ifndef JFEED_GRAPH_CSR_H_
#define JFEED_GRAPH_CSR_H_

#include <cstddef>
#include <cstdint>

#include "support/arena.h"

namespace jfeed::graph {

/// Compressed-sparse-row adjacency over dense 0-based node ids, frozen from
/// an unsorted edge list in two counting passes. Entries are caller-packed
/// 32-bit payloads (the EPDG packs `(neighbor << 2) | edge_type`), so one
/// row scan answers "is there an edge of this type to that node" with pure
/// integer compares over contiguous memory. All storage lives in an Arena;
/// the struct itself is a POD view that dies with it.
class Csr {
 public:
  /// Builds rows for `node_count` nodes from `edge_count` edges, where edge
  /// e leaves `keys[e]` and carries payload `payloads[e]`. Within a row,
  /// payloads keep edge-list order (the counting sort is stable).
  void Build(Arena* arena, size_t node_count, size_t edge_count,
             const uint32_t* keys, const uint32_t* payloads) {
    n_ = static_cast<uint32_t>(node_count);
    uint32_t* offsets = arena->AllocateArray<uint32_t>(node_count + 1);
    for (size_t i = 0; i <= node_count; ++i) offsets[i] = 0;
    for (size_t e = 0; e < edge_count; ++e) ++offsets[keys[e] + 1];
    for (size_t i = 0; i < node_count; ++i) offsets[i + 1] += offsets[i];
    offsets_ = offsets;
    entries_ = arena->AllocateArray<uint32_t>(edge_count);
    // `cursor` doubles as scratch: shift offsets back after filling.
    uint32_t* cursor = arena->AllocateArray<uint32_t>(node_count);
    for (size_t i = 0; i < node_count; ++i) cursor[i] = offsets_[i];
    for (size_t e = 0; e < edge_count; ++e) {
      entries_[cursor[keys[e]]++] = payloads[e];
    }
  }

  /// Row [begin, end) of packed payloads for node `id`.
  const uint32_t* RowBegin(uint32_t id) const {
    return entries_ + offsets_[id];
  }
  const uint32_t* RowEnd(uint32_t id) const {
    return entries_ + offsets_[id + 1];
  }
  size_t RowSize(uint32_t id) const {
    return offsets_[id + 1] - offsets_[id];
  }

  uint32_t node_count() const { return n_; }

 private:
  const uint32_t* offsets_ = nullptr;  ///< n_ + 1 row boundaries.
  uint32_t* entries_ = nullptr;        ///< Packed payloads, row-major.
  uint32_t n_ = 0;
};

}  // namespace jfeed::graph

#endif  // JFEED_GRAPH_CSR_H_
