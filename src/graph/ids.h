#ifndef JFEED_GRAPH_IDS_H_
#define JFEED_GRAPH_IDS_H_

#include <cstdint>

namespace jfeed::graph {

/// Node identifier inside a graph (dense, 0-based).
using NodeId = int32_t;
/// Edge identifier inside a graph (dense, 0-based).
using EdgeId = int32_t;

inline constexpr NodeId kInvalidNode = -1;

}  // namespace jfeed::graph

#endif  // JFEED_GRAPH_IDS_H_
