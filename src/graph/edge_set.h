#ifndef JFEED_GRAPH_EDGE_SET_H_
#define JFEED_GRAPH_EDGE_SET_H_

#include <cstdint>
#include <unordered_set>

#include "graph/digraph.h"

namespace jfeed::graph {

/// O(1) membership index over typed edges. `Digraph::HasEdge` scans the
/// source's out-adjacency, which makes every edge probe O(out-degree); the
/// matching engine probes edges in its innermost loop (Definition 7
/// condition 2), so graph owners keep one of these alongside the digraph.
///
/// The edge payload is collapsed to a small integer tag by the caller
/// (EPDGs have two edge types), so one 64-bit key encodes
/// (source, target, tag) collision-free: dense node ids stay below 2^30
/// (Digraph ids are append-only int32) and tags fit in 2 bits.
class TypedEdgeSet {
 public:
  TypedEdgeSet() = default;

  void Reserve(size_t edges) { keys_.reserve(edges); }

  /// Records edge source -> target with payload tag `tag` (0..3).
  void Insert(NodeId source, NodeId target, int tag) {
    keys_.insert(Key(source, target, tag));
  }

  /// True when Insert(source, target, tag) happened. O(1) expected.
  bool Contains(NodeId source, NodeId target, int tag) const {
    return keys_.count(Key(source, target, tag)) > 0;
  }

  size_t size() const { return keys_.size(); }

 private:
  static uint64_t Key(NodeId source, NodeId target, int tag) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(source)) << 32) |
           (static_cast<uint64_t>(static_cast<uint32_t>(target)) << 2) |
           static_cast<uint64_t>(tag & 0x3);
  }

  std::unordered_set<uint64_t> keys_;
};

}  // namespace jfeed::graph

#endif  // JFEED_GRAPH_EDGE_SET_H_
