#ifndef JFEED_KB_PATTERNS_H_
#define JFEED_KB_PATTERNS_H_

#include <map>
#include <string>
#include <vector>

#include "core/pattern.h"

namespace jfeed::kb {

/// The knowledge base of reusable patterns (paper Sec. I: "Our knowledge
/// base contains twenty four unique patterns"). Pattern variables are
/// globally unique across patterns so that containment constraints — which
/// require disjoint variable sets (Definition 10) — can combine any of them.
class PatternLibrary {
 public:
  /// The process-wide library (built once, immutable afterwards).
  static const PatternLibrary& Get();

  /// Looks up a pattern; aborts on an unknown id (programming error).
  const core::Pattern& at(const std::string& id) const;

  bool contains(const std::string& id) const {
    return patterns_.count(id) > 0;
  }

  /// Ids in deterministic (insertion) order.
  const std::vector<std::string>& ids() const { return ids_; }

  size_t size() const { return patterns_.size(); }

 private:
  PatternLibrary();
  void Add(core::Pattern pattern);

  std::map<std::string, core::Pattern> patterns_;
  std::vector<std::string> ids_;
};

}  // namespace jfeed::kb

#endif  // JFEED_KB_PATTERNS_H_
