#ifndef JFEED_KB_EXTENSIONS_H_
#define JFEED_KB_EXTENSIONS_H_

#include "core/submission_matcher.h"
#include "kb/patterns.h"

namespace jfeed::kb {

/// Pattern variations — the paper's Sec. VII future work, implemented. The
/// canonical example from the paper: "a student can access even positions
/// in an array using if (i % 2 == 0) or updating twice the value of i
/// (i += 2)." These variation patterns live outside the 24-pattern library
/// (they are alternatives of library patterns, not new semantics).
class ExtensionLibrary {
 public:
  static const ExtensionLibrary& Get();

  /// Even positions accessed by stepping the index by two
  /// (for (i = 0; i < a.length; i += 2) ... a[i] ...).
  const core::Pattern& even_positions_step() const {
    return even_positions_step_;
  }

  /// Cumulative multiplication directly under the loop condition (no inner
  /// guard — the i += 2 style needs none).
  const core::Pattern& cond_accum_mul_direct() const {
    return cond_accum_mul_direct_;
  }

  /// Odd positions accessed by stepping the index by two starting at 1.
  const core::Pattern& odd_positions_step() const {
    return odd_positions_step_;
  }

  /// Cumulative addition directly under the loop condition.
  const core::Pattern& cond_accum_add_direct() const {
    return cond_accum_add_direct_;
  }

  /// Attaches the step-by-two variations to an Assignment 1 specification
  /// (in place), so submissions using the alternative strategy are graded
  /// Correct instead of NotExpected. This resolves the paper's third
  /// Assignment 1 discrepancy class ("they update twice the value of i,
  /// which is a different way of accessing even positions not currently
  /// allowed by our patterns").
  void AttachAssignment1Variations(core::AssignmentSpec* spec) const;

 private:
  ExtensionLibrary();

  core::Pattern even_positions_step_;
  core::Pattern odd_positions_step_;
  core::Pattern cond_accum_mul_direct_;
  core::Pattern cond_accum_add_direct_;
};

}  // namespace jfeed::kb

#endif  // JFEED_KB_EXTENSIONS_H_
