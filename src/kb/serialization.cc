#include "kb/serialization.h"

#include <sstream>

#include "kb/patterns.h"
#include "support/strings.h"

namespace jfeed::kb {

namespace {

using core::Pattern;
using core::PatternNode;
using core::PatternNodeType;

const char* NodeTypeKeyword(PatternNodeType type) {
  return core::PatternNodeTypeName(type);
}

Result<PatternNodeType> ParseNodeType(const std::string& word) {
  if (word == "Assign") return PatternNodeType::kAssign;
  if (word == "Break") return PatternNodeType::kBreak;
  if (word == "Call") return PatternNodeType::kCall;
  if (word == "Cond") return PatternNodeType::kCond;
  if (word == "Decl") return PatternNodeType::kDecl;
  if (word == "Return") return PatternNodeType::kReturn;
  if (word == "Untyped") return PatternNodeType::kUntyped;
  return Status::ParseError("unknown pattern node type: " + word);
}

/// Emits "key: value" lines only for non-empty values.
void EmitField(const std::string& indent, const std::string& key,
               const std::string& value, std::string* out) {
  if (value.empty()) return;
  *out += indent + key + ": " + value + "\n";
}

}  // namespace

std::string SerializePattern(const Pattern& pattern) {
  std::string out = "pattern " + pattern.id + "\n";
  EmitField("  ", "name", pattern.name, &out);
  for (const auto& var : pattern.Variables()) {
    out += "  var: " + var + "\n";
  }
  for (const auto& node : pattern.nodes) {
    out += std::string("  node ") + NodeTypeKeyword(node.type) + "\n";
    EmitField("    ", "exact", node.exact.text(), &out);
    EmitField("    ", "approx", node.approx.text(), &out);
    EmitField("    ", "correct", node.feedback_correct, &out);
    EmitField("    ", "incorrect", node.feedback_incorrect, &out);
  }
  for (const auto& edge : pattern.edges) {
    out += "  edge " + std::string(pdg::EdgeTypeName(edge.type)) + " " +
           std::to_string(edge.source) + " " + std::to_string(edge.target) +
           "\n";
  }
  EmitField("  ", "present", pattern.feedback_present, &out);
  EmitField("  ", "missing", pattern.feedback_missing, &out);
  out += "end\n";
  return out;
}

namespace {

/// Incremental builder used by the parser; collects raw fields first so
/// that `var:` lines may appear anywhere before the nodes that use them.
struct RawNode {
  PatternNodeType type = PatternNodeType::kUntyped;
  std::string exact, approx, correct, incorrect;
};

Result<Pattern> BuildPattern(const std::string& id, const std::string& name,
                             const std::set<std::string>& variables,
                             const std::vector<RawNode>& nodes,
                             const std::vector<core::Pattern::Edge>& edges,
                             const std::string& present,
                             const std::string& missing) {
  core::PatternBuilder builder(id, name);
  for (const auto& var : variables) builder.Var(var);
  for (const auto& node : nodes) {
    builder.Node(node.type, node.exact, node.approx, node.correct,
                 node.incorrect);
  }
  for (const auto& edge : edges) {
    if (edge.type == pdg::EdgeType::kCtrl) {
      builder.CtrlEdge(edge.source, edge.target);
    } else {
      builder.DataEdge(edge.source, edge.target);
    }
  }
  builder.Present(present);
  builder.Missing(missing);
  return builder.Build();
}

}  // namespace

Result<Pattern> ParsePattern(const std::string& text) {
  auto patterns = ParsePatterns(text);
  JFEED_RETURN_IF_ERROR(patterns.status());
  if (patterns->size() != 1) {
    return Status::ParseError("expected exactly one pattern block, found " +
                              std::to_string(patterns->size()));
  }
  return std::move(patterns->front());
}

Result<std::vector<Pattern>> ParsePatterns(const std::string& text) {
  std::vector<Pattern> out;
  std::istringstream lines(text);
  std::string line;
  int line_number = 0;

  bool in_pattern = false;
  std::string id, name, present, missing;
  std::set<std::string> variables;
  std::vector<RawNode> nodes;
  std::vector<core::Pattern::Edge> edges;

  auto error = [&](const std::string& msg) {
    return Status::ParseError(msg + " at line " +
                              std::to_string(line_number));
  };

  while (std::getline(lines, line)) {
    ++line_number;
    std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;

    if (!in_pattern) {
      if (StartsWith(trimmed, "pattern ")) {
        in_pattern = true;
        id = Trim(trimmed.substr(8));
        name.clear();
        present.clear();
        missing.clear();
        variables.clear();
        nodes.clear();
        edges.clear();
        if (id.empty()) return error("pattern block without an id");
        continue;
      }
      return error("expected 'pattern <id>', found: " + trimmed);
    }

    if (trimmed == "end") {
      JFEED_ASSIGN_OR_RETURN(
          Pattern pattern,
          BuildPattern(id, name, variables, nodes, edges, present, missing));
      out.push_back(std::move(pattern));
      in_pattern = false;
      continue;
    }
    if (StartsWith(trimmed, "node ")) {
      JFEED_ASSIGN_OR_RETURN(PatternNodeType type,
                             ParseNodeType(Trim(trimmed.substr(5))));
      RawNode node;
      node.type = type;
      nodes.push_back(std::move(node));
      continue;
    }
    if (StartsWith(trimmed, "edge ")) {
      std::istringstream fields(trimmed.substr(5));
      std::string type_word;
      int source = -1, target = -1;
      fields >> type_word >> source >> target;
      if (fields.fail()) return error("malformed edge line: " + trimmed);
      core::Pattern::Edge edge;
      if (type_word == "Ctrl") {
        edge.type = pdg::EdgeType::kCtrl;
      } else if (type_word == "Data") {
        edge.type = pdg::EdgeType::kData;
      } else {
        return error("unknown edge type: " + type_word);
      }
      edge.source = source;
      edge.target = target;
      edges.push_back(edge);
      continue;
    }
    size_t colon = trimmed.find(": ");
    if (colon == std::string::npos && EndsWith(trimmed, ":")) {
      colon = trimmed.size() - 1;  // "key:" with empty value.
    }
    if (colon == std::string::npos) {
      return error("expected 'key: value', found: " + trimmed);
    }
    std::string key = trimmed.substr(0, colon);
    std::string value =
        colon + 2 <= trimmed.size() ? trimmed.substr(colon + 2) : "";
    if (key == "name") {
      name = value;
    } else if (key == "var") {
      variables.insert(value);
    } else if (key == "present") {
      present = value;
    } else if (key == "missing") {
      missing = value;
    } else if (key == "exact" || key == "approx" || key == "correct" ||
               key == "incorrect") {
      if (nodes.empty()) {
        return error("'" + key + "' before any node");
      }
      RawNode& node = nodes.back();
      if (key == "exact") node.exact = value;
      if (key == "approx") node.approx = value;
      if (key == "correct") node.correct = value;
      if (key == "incorrect") node.incorrect = value;
    } else {
      return error("unknown directive: " + key);
    }
  }
  if (in_pattern) {
    return Status::ParseError("pattern block '" + id + "' missing 'end'");
  }
  return out;
}

std::string SerializePatterns(
    const std::vector<const Pattern*>& all) {
  std::string out;
  for (size_t i = 0; i < all.size(); ++i) {
    if (i > 0) out += "\n";
    out += SerializePattern(*all[i]);
  }
  return out;
}

std::string ExportPatternLibrary() {
  const auto& library = PatternLibrary::Get();
  std::vector<const Pattern*> all;
  for (const auto& id : library.ids()) {
    all.push_back(&library.at(id));
  }
  std::string header =
      "# jfeed knowledge base — 24 reusable patterns (paper Sec. I).\n"
      "# Format: see kb/serialization.h. Regenerate with "
      "ExportPatternLibrary().\n\n";
  return header + SerializePatterns(all);
}

}  // namespace jfeed::kb

namespace jfeed::kb {

namespace {

std::string ConstraintKindKeyword(core::ConstraintKind kind) {
  switch (kind) {
    case core::ConstraintKind::kEquality: return "equality";
    case core::ConstraintKind::kEdgeExistence: return "edge";
    case core::ConstraintKind::kContainment: return "containment";
  }
  return "?";
}

}  // namespace

std::string SerializeSpec(const core::AssignmentSpec& spec) {
  std::string out = "assignment " + spec.id + "\n";
  if (!spec.title.empty()) out += "  title: " + spec.title + "\n";
  for (const auto& method : spec.methods) {
    out += "  method " + method.expected_name + "\n";
    for (const auto& use : method.patterns) {
      if (use.pattern == nullptr) continue;
      out += "    use " + use.pattern->id + " " +
             std::to_string(use.expected_count) + "\n";
    }
    for (const auto& constraint : method.constraints) {
      out += "    constraint " + ConstraintKindKeyword(constraint.kind) +
             " " + constraint.id + " " + constraint.pattern_i + " " +
             std::to_string(constraint.node_i);
      if (constraint.kind == core::ConstraintKind::kContainment) {
        // '-' marks an empty supporting set.
        out += " " + (constraint.supporting.empty()
                          ? std::string("-")
                          : Join(constraint.supporting, ","));
      } else {
        out += " " + constraint.pattern_j + " " +
               std::to_string(constraint.node_j);
        if (constraint.kind == core::ConstraintKind::kEdgeExistence) {
          out += std::string(" ") + pdg::EdgeTypeName(constraint.edge_type);
        }
      }
      out += "\n";
      if (constraint.kind == core::ConstraintKind::kContainment) {
        out += "      expr: " + constraint.expr.text() + "\n";
      }
      if (!constraint.feedback_ok.empty()) {
        out += "      ok: " + constraint.feedback_ok + "\n";
      }
      if (!constraint.feedback_fail.empty()) {
        out += "      fail: " + constraint.feedback_fail + "\n";
      }
    }
    out += "  end\n";
  }
  out += "end\n";
  return out;
}

Result<core::AssignmentSpec> ParseSpec(const std::string& text,
                                       const PatternLibrary& library) {
  core::AssignmentSpec spec;
  std::istringstream lines(text);
  std::string line;
  int line_number = 0;
  bool in_assignment = false;
  core::MethodSpec* method = nullptr;
  core::Constraint* constraint = nullptr;

  auto error = [&](const std::string& msg) {
    return Status::ParseError(msg + " at line " +
                              std::to_string(line_number));
  };
  auto pattern_ref = [&](const std::string& id)
      -> Result<const core::Pattern*> {
    if (!library.contains(id)) {
      return Status::NotFound("unknown pattern id: " + id);
    }
    return &library.at(id);
  };

  while (std::getline(lines, line)) {
    ++line_number;
    std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;

    if (!in_assignment) {
      if (!StartsWith(trimmed, "assignment ")) {
        return error("expected 'assignment <id>'");
      }
      spec.id = Trim(trimmed.substr(11));
      in_assignment = true;
      continue;
    }
    if (trimmed == "end") {
      if (method != nullptr) {
        method = nullptr;
        constraint = nullptr;
        continue;
      }
      return spec;  // End of the assignment block.
    }
    if (StartsWith(trimmed, "title: ")) {
      spec.title = trimmed.substr(7);
      continue;
    }
    if (StartsWith(trimmed, "method ")) {
      spec.methods.emplace_back();
      method = &spec.methods.back();
      method->expected_name = Trim(trimmed.substr(7));
      constraint = nullptr;
      continue;
    }
    if (method == nullptr) return error("directive outside a method block");
    if (StartsWith(trimmed, "use ")) {
      std::istringstream fields(trimmed.substr(4));
      std::string id;
      int count = 1;
      fields >> id >> count;
      if (fields.fail()) return error("malformed use line");
      JFEED_ASSIGN_OR_RETURN(const core::Pattern* pattern, pattern_ref(id));
      core::PatternUse use;
      use.pattern = pattern;
      use.expected_count = count;
      method->patterns.push_back(std::move(use));
      constraint = nullptr;
      continue;
    }
    if (StartsWith(trimmed, "constraint ")) {
      std::istringstream fields(trimmed.substr(11));
      std::string kind_word, id;
      fields >> kind_word >> id;
      core::Constraint c;
      c.id = id;
      if (kind_word == "equality" || kind_word == "edge") {
        std::string pi, pj, edge_word;
        int ni = 0, nj = 0;
        fields >> pi >> ni >> pj >> nj;
        if (fields.fail()) return error("malformed constraint line");
        JFEED_RETURN_IF_ERROR(pattern_ref(pi).status());
        JFEED_RETURN_IF_ERROR(pattern_ref(pj).status());
        if (kind_word == "edge") {
          fields >> edge_word;
          pdg::EdgeType type;
          if (edge_word == "Ctrl") {
            type = pdg::EdgeType::kCtrl;
          } else if (edge_word == "Data") {
            type = pdg::EdgeType::kData;
          } else {
            return error("unknown edge type: " + edge_word);
          }
          c = core::MakeEdgeConstraint(id, pi, ni, pj, nj, type);
        } else {
          c = core::MakeEqualityConstraint(id, pi, ni, pj, nj);
        }
      } else if (kind_word == "containment") {
        std::string main_id, supports_word;
        int node = 0;
        fields >> main_id >> node >> supports_word;
        if (fields.fail()) return error("malformed containment line");
        JFEED_ASSIGN_OR_RETURN(const core::Pattern* main_pattern,
                               pattern_ref(main_id));
        std::vector<std::string> supports;
        std::set<std::string> vars = main_pattern->Variables();
        for (const auto& support_id :
             supports_word == "-" ? std::vector<std::string>{}
                                  : Split(supports_word, ',')) {
          if (support_id.empty()) continue;
          JFEED_ASSIGN_OR_RETURN(const core::Pattern* support,
                                 pattern_ref(support_id));
          supports.push_back(support_id);
          auto sv = support->Variables();
          vars.insert(sv.begin(), sv.end());
        }
        // The expr line follows; remember enough to build when we see it.
        c.kind = core::ConstraintKind::kContainment;
        c.pattern_i = main_id;
        c.node_i = node;
        c.supporting = std::move(supports);
        // Store the variable set via a placeholder expr; replaced on
        // `expr:`. We keep the vars in the constraint via re-creation.
        method->constraints.push_back(std::move(c));
        constraint = &method->constraints.back();
        continue;
      } else {
        return error("unknown constraint kind: " + kind_word);
      }
      method->constraints.push_back(std::move(c));
      constraint = &method->constraints.back();
      continue;
    }
    if (StartsWith(trimmed, "expr: ")) {
      if (constraint == nullptr ||
          constraint->kind != core::ConstraintKind::kContainment) {
        return error("'expr:' outside a containment constraint");
      }
      std::set<std::string> vars =
          library.at(constraint->pattern_i).Variables();
      for (const auto& support_id : constraint->supporting) {
        auto sv = library.at(support_id).Variables();
        vars.insert(sv.begin(), sv.end());
      }
      auto rebuilt = core::MakeContainmentConstraint(
          constraint->id, constraint->pattern_i, constraint->node_i,
          trimmed.substr(6), vars, constraint->supporting,
          constraint->feedback_ok, constraint->feedback_fail);
      JFEED_RETURN_IF_ERROR(rebuilt.status());
      *constraint = std::move(*rebuilt);
      continue;
    }
    if (StartsWith(trimmed, "ok: ")) {
      if (constraint == nullptr) return error("'ok:' outside a constraint");
      constraint->feedback_ok = trimmed.substr(4);
      continue;
    }
    if (StartsWith(trimmed, "fail: ")) {
      if (constraint == nullptr) {
        return error("'fail:' outside a constraint");
      }
      constraint->feedback_fail = trimmed.substr(6);
      continue;
    }
    return error("unknown directive: " + trimmed);
  }
  return Status::ParseError("assignment block missing 'end'");
}

}  // namespace jfeed::kb
